// Package clare is the public API of the CLARE reproduction: an
// integrated Prolog data/knowledge base system in which large predicates
// live on (simulated) disk behind a two-stage clause-retrieval engine —
// FS1, a superimposed-codeword-plus-mask-bits index filter, and FS2, a
// microprogrammed partial test unification engine — while the host Prolog
// machine performs full unification and resolution on the survivors.
//
// Reproduces: Kam-Fai Wong and M. Howard Williams, "A Type Driven Hardware
// Engine for Prolog Clause Retrieval over a Large Knowledge Base",
// ISCA 1989.
//
// Quick start:
//
//	kb, _ := clare.NewKB(clare.Defaults())
//	kb.ConsultString(`grandparent(X,Z) :- parent(X,Y), parent(Y,Z).`)
//	kb.LoadDiskPredicateString("family", `
//	    parent(tom, bob).
//	    parent(bob, ann).
//	`)
//	sols, _ := kb.Query("grandparent(tom, W)", 0)
package clare

import (
	"fmt"
	"io"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/disk"
	"clare/internal/engine"
	"clare/internal/fs2"
	"clare/internal/parse"
	"clare/internal/plan"
	"clare/internal/scw"
	"clare/internal/term"
)

// SearchMode selects how a disk-resident predicate is searched — the four
// CRS modes of §2.2.
type SearchMode = core.SearchMode

// The four search modes.
const (
	ModeSoftware = core.ModeSoftware
	ModeFS1      = core.ModeFS1
	ModeFS2      = core.ModeFS2
	ModeFS1FS2   = core.ModeFS1FS2
)

// Solution is one query answer: variable name → resolved term.
type Solution = engine.Solution

// Retrieval reports one CLARE search call with per-stage statistics.
type Retrieval = core.Retrieval

// Options configures a knowledge base.
type Options struct {
	// Disk is the drive model disk-resident predicates live on.
	Disk disk.Model
	// CodewordWidth and CodewordBits configure the FS1 index (SCW+MB).
	CodewordWidth int
	CodewordBits  int
	// MaskBits toggles the mask-bit extension (ablation only; disabling
	// it makes FS1 unsound for variable-bearing heads).
	MaskBits bool
	// CrossBinding toggles the FS2 cross-binding checks.
	CrossBinding bool
	// Mode pins the search mode for every retrieval; nil selects per
	// query via the CRS heuristic (or the adaptive planner, see Planner).
	Mode *SearchMode
	// Planner arms the adaptive cost-based mode planner: auto-mode
	// retrievals (nil Mode) pick their search mode per query from
	// learned per-predicate statistics instead of the static heuristic.
	Planner bool
	// Boards is the number of FS2 board + drive units in the simulated
	// chassis (0 means 1 — the paper's single-board setup). Each
	// concurrent retrieval leases one unit, so N boards serve N
	// retrievals in parallel.
	Boards int
	// StreamChunkEntries sets how many secondary-file entries FS1 hands
	// downstream per pipeline chunk in fs1+fs2 mode (0 derives one disk
	// track's worth).
	StreamChunkEntries int
	// QueryCacheSize bounds the query-encoding cache (0 means the
	// default; negative disables it).
	QueryCacheSize int
	// Engine selects the execution engine: "sim" (or empty — the
	// cycle-accurate simulation, the default) or "native" (the
	// vectorized host engine: identical candidates, wall-clock
	// throughput as the first-class metric, no cycle model for FS2).
	Engine string
	// ScanWorkers sets how many goroutines a native FS1 columnar scan is
	// partitioned across (0 derives GOMAXPROCS, negative forces serial).
	// Results are bit-identical at any worker count; the sim engine
	// ignores it.
	ScanWorkers int
	// Out receives Prolog output (write/1 etc.); nil means os.Stdout.
	Out io.Writer
}

// Defaults mirrors the paper's configuration: Fujitsu M2351A disk, 64-bit
// codewords with mask bits, level-3 + cross-binding FS2 microprogram,
// heuristic mode selection.
func Defaults() Options {
	return Options{
		Disk:          disk.FujitsuM2351A,
		CodewordWidth: scw.DefaultParams.Width,
		CodewordBits:  scw.DefaultParams.BitsPerKey,
		MaskBits:      true,
		CrossBinding:  true,
	}
}

// KB is an integrated Prolog knowledge base: a Prolog machine for small
// (memory-resident) modules plus a CLARE retriever for large
// (disk-resident) predicates, per the PDBM architecture (§2).
type KB struct {
	// Machine is the host Prolog engine.
	Machine *engine.Machine
	// Retriever is the CLARE pipeline.
	Retriever *core.Retriever
	// Server is the Clause Retrieval Server wrapped around the retriever.
	Server *crs.Server

	opts    Options
	session *crs.Session
}

// NewKB builds a knowledge base.
func NewKB(opts Options) (*KB, error) {
	mp := fs2.MPLevel3XB
	if !opts.CrossBinding {
		mp = fs2.MPLevel3
	}
	cfg := core.Config{
		Disk: opts.Disk,
		SCW: scw.Params{
			Width:      opts.CodewordWidth,
			BitsPerKey: opts.CodewordBits,
			MaskBits:   opts.MaskBits,
		},
		Microprogram:       mp,
		Boards:             opts.Boards,
		StreamChunkEntries: opts.StreamChunkEntries,
		QueryCacheSize:     opts.QueryCacheSize,
		ScanWorkers:        opts.ScanWorkers,
	}
	if opts.Planner {
		cfg.Planner = plan.New(plan.Config{})
	}
	var err error
	if cfg.Engine, err = core.ParseEngine(opts.Engine); err != nil {
		return nil, err
	}
	r, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	m := engine.New()
	if opts.Out != nil {
		m.Out = opts.Out
	}
	srv := crs.NewServer(r)
	return &KB{
		Machine:   m,
		Retriever: r,
		Server:    srv,
		opts:      opts,
		session:   srv.OpenSession(),
	}, nil
}

// ConsultString loads Prolog source into the host machine (a small,
// memory-resident module).
func (kb *KB) ConsultString(src string) error { return kb.Machine.ConsultString(src) }

// LoadDiskPredicate installs clauses as a disk-resident predicate managed
// by CLARE. All clauses must share one functor/arity; order is preserved.
func (kb *KB) LoadDiskPredicate(module string, clauses []core.ClauseTerm) error {
	if err := kb.Server.Load(module, clauses); err != nil {
		return err
	}
	head := term.Deref(clauses[0].Head)
	var pi engine.Indicator
	switch h := head.(type) {
	case term.Atom:
		pi = engine.Indicator{Name: string(h)}
	case *term.Compound:
		pi = engine.Indicator{Name: h.Functor, Arity: len(h.Args)}
	default:
		return fmt.Errorf("clare: %v is not callable", head)
	}
	mod := kb.Machine.Module("user")
	proc := mod.Proc(pi, true)
	proc.Source = &core.Source{R: kb.Retriever, Mode: kb.opts.Mode}
	return nil
}

// LoadDiskPredicateString parses Prolog source (facts and rules of ONE
// predicate) and installs it as a disk-resident predicate.
func (kb *KB) LoadDiskPredicateString(module, src string) error {
	p, err := parse.NewWithOps(src, kb.Machine.Ops())
	if err != nil {
		return err
	}
	ts, err := p.ReadAll()
	if err != nil {
		return err
	}
	clauses := make([]core.ClauseTerm, 0, len(ts))
	for _, t := range ts {
		if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
			clauses = append(clauses, core.ClauseTerm{Head: c.Args[0], Body: c.Args[1]})
			continue
		}
		clauses = append(clauses, core.ClauseTerm{Head: t})
	}
	if len(clauses) == 0 {
		return fmt.Errorf("clare: no clauses in source")
	}
	return kb.LoadDiskPredicate(module, clauses)
}

// Query runs a Prolog query through the host machine (which retrieves
// disk-resident predicates through CLARE) and returns up to max solutions
// (max <= 0 means all).
func (kb *KB) Query(src string, max int) ([]Solution, error) {
	return kb.Machine.Query(src, max)
}

// Prove reports whether the goal has at least one solution.
func (kb *KB) Prove(src string) (bool, error) { return kb.Machine.ProveString(src) }

// Retrieve runs one raw CLARE search call (no resolution) and returns the
// retrieval with its per-stage statistics. goal is Edinburgh source.
func (kb *KB) Retrieve(goal string, mode SearchMode) (*Retrieval, error) {
	g, err := parse.Term(goal)
	if err != nil {
		return nil, err
	}
	return kb.session.Retrieve(g, &mode)
}

// RetrieveAuto is Retrieve with heuristic mode selection.
func (kb *KB) RetrieveAuto(goal string) (*Retrieval, error) {
	g, err := parse.Term(goal)
	if err != nil {
		return nil, err
	}
	return kb.session.Retrieve(g, nil)
}

// FS2Stats exposes the accumulated FS2 statistics, aggregated across
// every board in the chassis.
func (kb *KB) FS2Stats() fs2.Stats { return kb.Retriever.FS2Stats() }

// DiskStats exposes the accumulated simulated-disk statistics, aggregated
// across every drive in the chassis.
func (kb *KB) DiskStats() disk.Stats { return kb.Retriever.DiskStats() }

// QueryCacheStats reports the query-encoding cache's hit/miss counters.
func (kb *KB) QueryCacheStats() core.QueryCacheStats { return kb.Retriever.QueryCache() }

// Table1 returns the derived FS2 operation times (the paper's Table 1).
func Table1() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for code, d := range fs2.Table1() {
		out[code.String()] = d
	}
	return out
}
