package clare_test

import (
	"fmt"

	"clare"
)

// The canonical flow: a rule module in memory, a fact predicate on
// simulated disk behind the two-stage filter, and a query across both.
func ExampleKB_Query() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		panic(err)
	}
	if err := kb.ConsultString(`grandparent(X, Z) :- parent(X, Y), parent(Y, Z).`); err != nil {
		panic(err)
	}
	if err := kb.LoadDiskPredicateString("family", `
		parent(tom, bob).
		parent(bob, ann).
	`); err != nil {
		panic(err)
	}
	sols, err := kb.Query("grandparent(tom, W)", 0)
	if err != nil {
		panic(err)
	}
	for _, s := range sols {
		fmt.Println(s)
	}
	// Output:
	// W = ann
}

// Raw retrieval exposes the candidate funnel the paper's architecture is
// about: what survives FS1, what survives FS2.
func ExampleKB_Retrieve() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		panic(err)
	}
	if err := kb.LoadDiskPredicateString("family", `
		married_couple(fred, wilma).
		married_couple(pat, pat).
		married_couple(barney, betty).
	`); err != nil {
		panic(err)
	}
	rt, err := kb.Retrieve("married_couple(S, S)", clare.ModeFS2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clauses=%d candidates=%d\n", rt.Stats.TotalClauses, rt.Stats.AfterFS2)
	// Output:
	// clauses=3 candidates=1
}

// Table1 reproduces the paper's headline table from the simulated
// datapath.
func ExampleTable1() {
	tbl := clare.Table1()
	fmt.Println("MATCH:", tbl["MATCH"])
	fmt.Println("QUERY_CROSS_BOUND_FETCH:", tbl["QUERY_CROSS_BOUND_FETCH"])
	// Output:
	// MATCH: 105ns
	// QUERY_CROSS_BOUND_FETCH: 235ns
}
