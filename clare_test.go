package clare

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/term"
)

func newKB(t *testing.T, opts Options) *KB {
	t.Helper()
	opts.Out = &strings.Builder{}
	kb, err := NewKB(opts)
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestQuickstartFlow(t *testing.T) {
	kb := newKB(t, Defaults())
	if err := kb.ConsultString(`grandparent(X, Z) :- parent(X, Y), parent(Y, Z).`); err != nil {
		t.Fatal(err)
	}
	if err := kb.LoadDiskPredicateString("family", `
		parent(tom, bob).
		parent(tom, liz).
		parent(bob, ann).
		parent(bob, pat).
	`); err != nil {
		t.Fatal(err)
	}
	sols, err := kb.Query("grandparent(tom, W)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 || sols[0]["W"].String() != "ann" || sols[1]["W"].String() != "pat" {
		t.Errorf("solutions = %v", sols)
	}
	// The disk predicate really went through the pipeline.
	if kb.FS2Stats().ClausesExamined == 0 {
		t.Error("FS2 board saw no clauses — retrieval bypassed CLARE")
	}
	if kb.DiskStats().BytesRead == 0 {
		t.Error("no disk traffic recorded")
	}
}

func TestDiskRulesExecute(t *testing.T) {
	kb := newKB(t, Defaults())
	if err := kb.ConsultString(`bird(tweety). bird(sam). penguin(sam).`); err != nil {
		t.Fatal(err)
	}
	if err := kb.LoadDiskPredicateString("flying", `
		fly(superman).
		fly(X) :- bird(X), \+ penguin(X).
	`); err != nil {
		t.Fatal(err)
	}
	sols, err := kb.Query("fly(W)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 || sols[0]["W"].String() != "superman" || sols[1]["W"].String() != "tweety" {
		t.Errorf("solutions = %v (disk-resident rule order must hold)", sols)
	}
}

func TestRetrieveStats(t *testing.T) {
	kb := newKB(t, Defaults())
	var clauses []core.ClauseTerm
	for i := 0; i < 64; i++ {
		h := term.New("item", term.Int(int64(i%8)), term.Int(int64(i)))
		clauses = append(clauses, core.ClauseTerm{Head: h})
	}
	if err := kb.LoadDiskPredicate("items", clauses); err != nil {
		t.Fatal(err)
	}
	rt, err := kb.Retrieve("item(3, X)", ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.TotalClauses != 64 {
		t.Errorf("total = %d", rt.Stats.TotalClauses)
	}
	if rt.Stats.AfterFS2 < 8 || rt.Stats.AfterFS2 > rt.Stats.AfterFS1 {
		t.Errorf("stage counts = %d → %d", rt.Stats.AfterFS1, rt.Stats.AfterFS2)
	}
	trueU, _, err := rt.Evaluate()
	if err != nil || trueU != 8 {
		t.Errorf("true unifiers = %d, %v", trueU, err)
	}
	// Auto mode works too.
	rt2, err := kb.RetrieveAuto("item(3, X)")
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Mode != ModeFS1FS2 {
		t.Errorf("auto mode = %v", rt2.Mode)
	}
}

func TestTable1Export(t *testing.T) {
	tbl := Table1()
	if tbl["MATCH"] != 105*time.Nanosecond {
		t.Errorf("MATCH = %v", tbl["MATCH"])
	}
	if tbl["QUERY_CROSS_BOUND_FETCH"] != 235*time.Nanosecond {
		t.Errorf("QXB = %v", tbl["QUERY_CROSS_BOUND_FETCH"])
	}
	if len(tbl) != 7 {
		t.Errorf("ops = %d", len(tbl))
	}
}

func TestPinnedMode(t *testing.T) {
	opts := Defaults()
	m := ModeSoftware
	opts.Mode = &m
	kb := newKB(t, opts)
	if err := kb.LoadDiskPredicateString("m", "p(a). p(b)."); err != nil {
		t.Fatal(err)
	}
	if ok, err := kb.Prove("p(a)"); err != nil || !ok {
		t.Fatalf("prove = %v, %v", ok, err)
	}
	// Software mode never touches the FS2 board.
	if kb.FS2Stats().ClausesExamined != 0 {
		t.Error("software mode used the FS2 board")
	}
}

func TestBadInputs(t *testing.T) {
	kb := newKB(t, Defaults())
	if err := kb.LoadDiskPredicateString("m", ""); err == nil {
		t.Error("empty disk predicate should fail")
	}
	if err := kb.LoadDiskPredicateString("m", "p(a"); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := kb.Retrieve("p(", ModeFS2); err == nil {
		t.Error("bad goal should fail")
	}
	badOpts := Defaults()
	badOpts.CodewordWidth = 0
	if _, err := NewKB(badOpts); err == nil {
		t.Error("bad options should fail")
	}
}

func TestSharedVariableEndToEnd(t *testing.T) {
	// The paper's running example, through the public API.
	kb := newKB(t, Defaults())
	if err := kb.LoadDiskPredicateString("family", `
		married_couple(fred, wilma).
		married_couple(pat, pat).
		married_couple(barney, betty).
		married_couple(lee, lee).
	`); err != nil {
		t.Fatal(err)
	}
	sols, err := kb.Query("married_couple(S, S)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %v", sols)
	}
	rt, err := kb.Retrieve("married_couple(S, S)", ModeFS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.AfterFS2 != 2 {
		t.Errorf("FS2 candidates = %d, want only the 2 same-name couples", rt.Stats.AfterFS2)
	}
}

// TestEndToEndModeAgreement is the system-level soundness property: on a
// randomized knowledge base, every search mode yields exactly the same set
// of TRUE unifiers (the candidate sets may differ — that is the filters'
// precision — but full unification downstream must recover identical
// answers).
func TestEndToEndModeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	atoms := []string{"a", "b", "c", "d"}
	randArg := func() term.Term {
		switch rng.Intn(6) {
		case 0:
			return term.Atom(atoms[rng.Intn(len(atoms))])
		case 1:
			return term.Int(int64(rng.Intn(4)))
		case 2:
			return term.NewVar("V")
		case 3:
			return term.New("f", term.Atom(atoms[rng.Intn(len(atoms))]))
		case 4:
			return term.List(term.Int(int64(rng.Intn(3))))
		default:
			return term.New("g", term.Int(int64(rng.Intn(2))), term.Atom(atoms[rng.Intn(len(atoms))]))
		}
	}

	kb := newKB(t, Defaults())
	var clauses []core.ClauseTerm
	for i := 0; i < 120; i++ {
		clauses = append(clauses, core.ClauseTerm{
			Head: term.New("r", randArg(), randArg()),
		})
	}
	if err := kb.LoadDiskPredicate("rand", clauses); err != nil {
		t.Fatal(err)
	}

	for qi := 0; qi < 25; qi++ {
		var goal term.Term
		if qi%5 == 0 {
			v := term.NewVar("S")
			goal = term.New("r", v, v) // shared-variable probe
		} else {
			goal = term.New("r", randArg(), randArg())
		}
		goalSrc := goal.String()
		var want int = -1
		for _, mode := range []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2} {
			rt, err := kb.Retrieve(goalSrc, mode)
			if err != nil {
				t.Fatalf("%s %v: %v", goalSrc, mode, err)
			}
			trueU, _, err := rt.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			if want == -1 {
				want = trueU
			} else if trueU != want {
				t.Errorf("%s: %v finds %d true unifiers, software found %d", goalSrc, mode, trueU, want)
			}
		}
	}
}

func TestNativeEngineFacade(t *testing.T) {
	load := func(engine string) *KB {
		opts := Defaults()
		opts.Engine = engine
		kb := newKB(t, opts)
		if err := kb.LoadDiskPredicateString("family", `
			parent(tom, bob).
			parent(tom, liz).
			parent(bob, ann).
			parent(bob, pat).
		`); err != nil {
			t.Fatal(err)
		}
		return kb
	}
	sim, native := load("sim"), load("native")
	for _, mode := range []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2} {
		srt, err := sim.Retrieve("parent(tom, X)", mode)
		if err != nil {
			t.Fatal(err)
		}
		nrt, err := native.Retrieve("parent(tom, X)", mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(srt.Candidates) != len(nrt.Candidates) {
			t.Fatalf("%v: sim %d candidates, native %d", mode, len(srt.Candidates), len(nrt.Candidates))
		}
		for i := range srt.Candidates {
			if srt.Candidates[i].Addr != nrt.Candidates[i].Addr {
				t.Errorf("%v: candidate %d: addr %d vs %d", mode, i, srt.Candidates[i].Addr, nrt.Candidates[i].Addr)
			}
		}
	}
	// Query/1 answers through the native pipeline too.
	sols, err := native.Query("parent(bob, W)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 || sols[0]["W"].String() != "ann" || sols[1]["W"].String() != "pat" {
		t.Errorf("native solutions = %v", sols)
	}
	if _, err := NewKB(Options{Engine: "turbo"}); err == nil {
		t.Error("Engine \"turbo\" accepted, want error")
	}
}
