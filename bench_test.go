package clare

// The benchmark harness: one benchmark per table and figure in the
// paper's evaluation, plus the ablations called out in DESIGN.md.
// Wall-clock numbers measure the simulator; the paper-comparable
// quantities are emitted as custom metrics:
//
//	sim-ns/op   simulated hardware time per operation (Table 1)
//	sim-MB/s    simulated stream rate
//	cand/query  candidates surviving the filter per query
//	fdrop%      false-drop percentage among survivors
//
// cmd/clarebench prints the same experiments as human-readable tables and
// EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/disk"
	"clare/internal/fs2"
	"clare/internal/parse"
	"clare/internal/pdbmbench"
	"clare/internal/pif"
	"clare/internal/ptu"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/workload"
)

// --- Table 1: execution times of the FS2 hardware functions --------------

// table1Case drives one specific hardware operation: a query/head pair
// whose single argument comparison executes exactly the wanted op (after
// any prerequisite ops).
type table1Case struct {
	op    fs2.OpCode
	query string
	head  string
}

var table1Cases = []table1Case{
	{fs2.OpMatch, "p(a)", "p(a)"},
	{fs2.OpDBStore, "p(a)", "p(X)"},
	{fs2.OpQueryStore, "p(X)", "p(a)"},
	{fs2.OpDBFetch, "p(a, a)", "p(A, A)"},
	{fs2.OpQueryFetch, "p(X, X)", "p(a, a)"},
	{fs2.OpDBCrossBoundFetch, "p(X, a, b)", "p(A, a, A)"},
	// The query variable X is first cross-bound to Y through the clause's
	// shared A, then re-used against the constant c: case 6c.
	{fs2.OpQueryCrossBoundFetch, "p(X, Y, X)", "p(A, A, c)"},
}

func benchTable1(b *testing.B, tc table1Case) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	e := fs2.New()
	e.SetMode(fs2.ModeMicroprogramming)
	if err := e.LoadMicroprogram(fs2.MPLevel3XB); err != nil {
		b.Fatal(err)
	}
	q, err := enc.Encode(parse.MustTerm(tc.query), pif.QuerySide)
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(fs2.ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		b.Fatal(err)
	}
	h, err := enc.Encode(parse.MustTerm(tc.head), pif.DBSide)
	if err != nil {
		b.Fatal(err)
	}
	recs := []fs2.Record{{Addr: 0, Enc: h}}
	e.SetMode(fs2.ModeSearch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if e.Stats.OpCount(tc.op) == 0 {
		b.Fatalf("case did not execute %v (counts %v)", tc.op, e.Stats.OpCounts)
	}
	b.ReportMetric(float64(e.OpTime(tc.op).Nanoseconds()), "sim-ns/op")
}

func BenchmarkTable1_MATCH(b *testing.B)       { benchTable1(b, table1Cases[0]) }
func BenchmarkTable1_DB_STORE(b *testing.B)    { benchTable1(b, table1Cases[1]) }
func BenchmarkTable1_QUERY_STORE(b *testing.B) { benchTable1(b, table1Cases[2]) }
func BenchmarkTable1_DB_FETCH(b *testing.B)    { benchTable1(b, table1Cases[3]) }
func BenchmarkTable1_QUERY_FETCH(b *testing.B) { benchTable1(b, table1Cases[4]) }
func BenchmarkTable1_DB_CROSS_BOUND_FETCH(b *testing.B) {
	benchTable1(b, table1Cases[5])
}
func BenchmarkTable1_QUERY_CROSS_BOUND_FETCH(b *testing.B) {
	benchTable1(b, table1Cases[6])
}

// --- Figures 6–12: per-route timing calculations --------------------------

// The route sums are derived data; the benchmark recomputes them from the
// component catalogue each iteration and reports the figure's headline
// number. Wall time measures the derivation cost (trivially cheap); the
// metric is the reproduced figure value.
func benchFigure(b *testing.B, op fs2.OpCode) {
	ops := fs2.Operations()
	var total int64
	for i := 0; i < b.N; i++ {
		total = ops[op].Time().Nanoseconds()
	}
	b.ReportMetric(float64(total), "sim-ns/op")
}

func BenchmarkFigure6_MATCH(b *testing.B)    { benchFigure(b, fs2.OpMatch) }
func BenchmarkFigure7_DB_STORE(b *testing.B) { benchFigure(b, fs2.OpDBStore) }
func BenchmarkFigure8_QUERY_STORE(b *testing.B) {
	benchFigure(b, fs2.OpQueryStore)
}
func BenchmarkFigure9_DB_FETCH(b *testing.B) { benchFigure(b, fs2.OpDBFetch) }
func BenchmarkFigure10_QUERY_FETCH(b *testing.B) {
	benchFigure(b, fs2.OpQueryFetch)
}
func BenchmarkFigure11_DB_CROSS_BOUND_FETCH(b *testing.B) {
	benchFigure(b, fs2.OpDBCrossBoundFetch)
}
func BenchmarkFigure12_QUERY_CROSS_BOUND_FETCH(b *testing.B) {
	benchFigure(b, fs2.OpQueryCrossBoundFetch)
}

// --- Figure 1: the partial test unification algorithm ---------------------

// BenchmarkFigure1_PartialTestUnification measures the software reference
// of the Figure 1 algorithm (level 3 + cross binding) over a structured
// workload — the executable form of the figure.
func BenchmarkFigure1_PartialTestUnification(b *testing.B) {
	s := workload.Structured{Name: "shape", Facts: 256, DeepVariety: 4, Seed: 42}
	cls := s.Clauses()
	heads := make([]term.Term, len(cls))
	for i, c := range cls {
		heads[i] = c.Head
	}
	// A partially instantiated probe: the x coordinate and one tag pinned,
	// the rest variable — selective enough to filter, loose enough to
	// keep survivors.
	query := term.New("shape",
		term.NewVar("K"),
		term.New("point", term.Int(3), term.NewVar("Y"), term.NewVar("D")),
		term.List(term.NewVar("T1"), term.Atom("tag2")))
	b.ResetTimer()
	pass := 0
	for i := 0; i < b.N; i++ {
		pass = 0
		for _, h := range heads {
			if ptu.Match(query, h, ptu.FS2Config) {
				pass++
			}
		}
	}
	b.ReportMetric(float64(pass), "cand/query")
}

// --- Table A1: the PIF data-type scheme -----------------------------------

// BenchmarkTableA1_PIFCodec measures encode+decode round trips across all
// the Table A1 type categories; correctness (tag values, categories) is
// asserted in internal/pif's tests.
func BenchmarkTableA1_PIFCodec(b *testing.B) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	dec := pif.NewDecoder(syms)
	terms := []term.Term{
		parse.MustTerm("p(atom, 42, -17, 2.5)"),
		parse.MustTerm("p(X, Y, X, _)"),
		parse.MustTerm("p(f(1, g(2)), [a,b,c], [h|T])"),
		parse.MustTerm("married_couple(S, S)"),
	}
	b.ResetTimer()
	bytes := 0
	for i := 0; i < b.N; i++ {
		for _, t := range terms {
			e, err := enc.Encode(t, pif.DBSide)
			if err != nil {
				b.Fatal(err)
			}
			bytes += e.SizeBytes()
			if _, err := dec.Decode(e); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "pif-B/op")
}

// --- R1: FS2 worst-case rate vs disk delivery rate (§4) -------------------

// BenchmarkFilterRateVsDisk streams a worst-case clause set (every
// argument forcing QUERY_CROSS_BOUND_FETCH chains) through FS2 and
// compares the simulated filter rate with the disks' delivery rates.
func BenchmarkFilterRateVsDisk(b *testing.B) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	e := fs2.New()
	e.SetMode(fs2.ModeMicroprogramming)
	if err := e.LoadMicroprogram(fs2.MPLevel3XB); err != nil {
		b.Fatal(err)
	}
	// Worst case: shared query variables resolving through db variables.
	q, err := enc.Encode(parse.MustTerm("w(X, X, X, X)"), pif.QuerySide)
	if err != nil {
		b.Fatal(err)
	}
	e.SetMode(fs2.ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		b.Fatal(err)
	}
	var recs []fs2.Record
	for i := 0; i < 64; i++ {
		h, err := enc.Encode(parse.MustTerm("w(A, b, A, A)"), pif.DBSide)
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, fs2.Record{Addr: uint32(i), Enc: h})
	}
	e.SetMode(fs2.ModeSearch)
	b.ResetTimer()
	var res fs2.SearchResult
	for i := 0; i < b.N; i++ {
		res, err = e.Search(recs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bytes := 0
	for _, r := range recs {
		bytes += r.Enc.SizeBytes()
	}
	simRate := float64(bytes) / res.MatchTime.Seconds() / 1e6
	b.ReportMetric(simRate, "sim-MB/s")
	b.ReportMetric(fs2.WorstCaseRate()/1e6, "worst-MB/s")
	b.ReportMetric(disk.FujitsuM2351A.TransferRate/1e6, "disk-MB/s")
	if fs2.WorstCaseRate() <= disk.FujitsuM2351A.TransferRate {
		b.Fatal("§4 claim violated: disk outruns the FS2 worst case")
	}
}

// --- R2: FS1 scan rate and secondary-file size ratio (§2.1/§4) ------------

func BenchmarkFS1ScanRate(b *testing.B) {
	enc, err := scw.NewEncoder(scw.DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	ix := scw.NewIndex(enc)
	rel := workload.Relation{Name: "emp", Facts: 4096, Domain: 256, Arity: 3, Seed: 9}
	for i, c := range rel.Clauses() {
		if err := ix.Add(c.Head, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	qd, err := enc.EncodeQuery(rel.Probe(17))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res scw.ScanResult
	for i := 0; i < b.N; i++ {
		res = ix.Scan(qd)
	}
	b.StopTimer()
	b.ReportMetric(float64(res.BytesScanned)/res.Elapsed.Seconds()/1e6, "sim-MB/s")
	b.ReportMetric(float64(res.BytesScanned), "index-B")
}

// --- D1: false drops from truncation and codeword width -------------------

func BenchmarkFalseDropsArity(b *testing.B) {
	for _, arity := range []int{4, 8, 12, 13, 16} {
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			wf := workload.WideFacts{Name: "wide", Facts: 128, Arity: arity, DifferOnlyAt: arity - 1}
			enc, err := scw.NewEncoder(scw.DefaultParams)
			if err != nil {
				b.Fatal(err)
			}
			ix := scw.NewIndex(enc)
			for i, c := range wf.Clauses() {
				if err := ix.Add(c.Head, uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			qd, err := enc.EncodeQuery(wf.Probe(0))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res scw.ScanResult
			for i := 0; i < b.N; i++ {
				res = ix.Scan(qd)
			}
			b.StopTimer()
			// One true unifier; everything else surviving is a false drop.
			fd := float64(len(res.Addrs)-1) / float64(ix.Len()) * 100
			b.ReportMetric(fd, "fdrop%")
		})
	}
}

func BenchmarkFalseDropsCodewordWidth(b *testing.B) {
	for _, width := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			enc, err := scw.NewEncoder(scw.Params{Width: width, BitsPerKey: 3, MaskBits: true})
			if err != nil {
				b.Fatal(err)
			}
			rel := workload.Relation{Name: "emp", Facts: 1024, Domain: 512, Arity: 2, Seed: 5}
			cls := rel.Clauses()
			ix := scw.NewIndex(enc)
			for i, c := range cls {
				if err := ix.Add(c.Head, uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			qd, err := enc.EncodeQuery(rel.Probe(3))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res scw.ScanResult
			for i := 0; i < b.N; i++ {
				res = ix.Scan(qd)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Addrs)), "cand/query")
		})
	}
}

// --- D2: the shared-variable pathology (§2.1) ------------------------------

func BenchmarkSharedVariable(b *testing.B) {
	fam := workload.Family{Couples: 256, SameEvery: 8}
	for _, mode := range []core.SearchMode{core.ModeFS1, core.ModeFS1FS2} {
		b.Run(mode.String(), func(b *testing.B) {
			r, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.AddClauses("family", fam.Clauses()); err != nil {
				b.Fatal(err)
			}
			goal := parse.MustTerm("married_couple(S, S)")
			b.ResetTimer()
			var rt *core.Retrieval
			for i := 0; i < b.N; i++ {
				rt, err = r.Retrieve(goal, mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(rt.Candidates)), "cand/query")
			trueU, falseD, err := rt.Evaluate()
			if err != nil {
				b.Fatal(err)
			}
			if trueU != fam.SameNameCount() {
				b.Fatalf("lost true unifiers: %d", trueU)
			}
			b.ReportMetric(float64(falseD)/float64(len(rt.Candidates)+1)*100, "fdrop%")
		})
	}
}

// --- M1: the four search modes -------------------------------------------

func BenchmarkSearchModes(b *testing.B) {
	rel := workload.Relation{Name: "emp", Facts: 512, Domain: 64, Arity: 3, Seed: 3}
	for _, mode := range []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2} {
		b.Run(mode.String(), func(b *testing.B) {
			r, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.AddClauses("m", rel.Clauses()); err != nil {
				b.Fatal(err)
			}
			goal := rel.Probe(11)
			b.ResetTimer()
			var rt *core.Retrieval
			for i := 0; i < b.N; i++ {
				rt, err = r.Retrieve(goal, mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(rt.Stats.Total.Microseconds()), "sim-us/query")
			b.ReportMetric(float64(len(rt.Candidates)), "cand/query")
		})
	}
}

// --- W1: Warren-scale knowledge base -------------------------------------

func BenchmarkWarrenScale(b *testing.B) {
	for _, scale := range []float64{0.0005, 0.001, 0.002} {
		b.Run(fmt.Sprintf("scale%g", scale), func(b *testing.B) {
			w := workload.WarrenKB{Scale: scale, Seed: 1}
			preds := w.Generate()
			r, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			total := 0
			for _, p := range preds {
				if _, err := r.AddClauses("warren", p.Clauses); err != nil {
					b.Fatal(err)
				}
				total += len(p.Clauses)
			}
			goal := term.New(preds[0].Name, term.Atom("e1"), term.NewVar("V"))
			b.ResetTimer()
			var rt *core.Retrieval
			for i := 0; i < b.N; i++ {
				rt, err = r.Retrieve(goal, core.ModeFS1FS2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(total), "kb-clauses")
			b.ReportMetric(float64(rt.Stats.Total.Microseconds()), "sim-us/query")
		})
	}
}

// --- L15: the matching-level trade-off (§2.2) -----------------------------

func BenchmarkMatchingLevels(b *testing.B) {
	s := workload.Structured{Name: "shape", Facts: 512, DeepVariety: 3, Seed: 8}
	cls := s.Clauses()
	heads := make([]term.Term, len(cls))
	for i, c := range cls {
		heads[i] = c.Head
	}
	query := s.ProbeStructure(3, 4, 1, 2, 0)
	configs := []ptu.Config{
		{Level: ptu.Level1},
		{Level: ptu.Level2},
		{Level: ptu.Level3},
		{Level: ptu.Level3, CrossBinding: true},
		{Level: ptu.Level4},
		{Level: ptu.Level5},
	}
	for _, cfg := range configs {
		b.Run(cfg.String(), func(b *testing.B) {
			b.ResetTimer()
			pass := 0
			for i := 0; i < b.N; i++ {
				pass = 0
				for _, h := range heads {
					if ptu.Match(query, h, cfg) {
						pass++
					}
				}
			}
			b.ReportMetric(float64(pass), "cand/query")
		})
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationMaskBits: SCW with and without the mask-bit extension
// on a rule-intensive predicate. Without mask bits the filter loses true
// unifiers (unsound); the benchmark reports the lost-match count.
func BenchmarkAblationMaskBits(b *testing.B) {
	rules := workload.Rules{Name: "fly", Rules: 64, Facts: 64, Seed: 2}
	cls := rules.Clauses()
	for _, mask := range []bool{true, false} {
		name := "mask-on"
		if !mask {
			name = "mask-off"
		}
		b.Run(name, func(b *testing.B) {
			enc, err := scw.NewEncoder(scw.Params{Width: 64, BitsPerKey: 3, MaskBits: mask})
			if err != nil {
				b.Fatal(err)
			}
			ix := scw.NewIndex(enc)
			for i, c := range cls {
				if err := ix.Add(c.Head, uint32(i)); err != nil {
					b.Fatal(err)
				}
			}
			goal := parse.MustTerm("fly(c3, class3)")
			qd, err := enc.EncodeQuery(goal)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res scw.ScanResult
			for i := 0; i < b.N; i++ {
				res = ix.Scan(qd)
			}
			b.StopTimer()
			// Count lost true unifiers (rule heads fly(X, class3) unify).
			lost := 0
			surviving := map[uint32]bool{}
			for _, a := range res.Addrs {
				surviving[a] = true
			}
			for i, c := range cls {
				if ptu.Match(goal, c.Head, ptu.Config{Level: ptu.Level5}) && !surviving[uint32(i)] {
					lost++
				}
			}
			b.ReportMetric(float64(lost), "lost-unifiers")
			b.ReportMetric(float64(len(res.Addrs)), "cand/query")
		})
	}
}

// BenchmarkAblationDoubleBuffer compares the pipelined stream time
// (max(transfer, match), the Double Buffer's effect) with the
// single-buffer alternative (transfer + match).
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	rel := workload.Relation{Name: "emp", Facts: 1024, Domain: 8, Arity: 3, Seed: 4}
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.AddClauses("m", rel.Clauses()); err != nil {
		b.Fatal(err)
	}
	goal := rel.Probe(2)
	b.ResetTimer()
	var rt *core.Retrieval
	for i := 0; i < b.N; i++ {
		rt, err = r.Retrieve(goal, core.ModeFS2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	double := rt.Stats.Total
	single := rt.Stats.DiskFetch + rt.Stats.FS2Match
	b.ReportMetric(float64(double.Microseconds()), "sim-us/double-buffer")
	b.ReportMetric(float64(single.Microseconds()), "sim-us/single-buffer")
	if single < double {
		b.Fatal("single buffer cannot beat the pipelined double buffer")
	}
}

// BenchmarkAblationDispatch compares the Map-ROM style table dispatch on
// ⟨db-tag, query-tag⟩ pairs against a nested-conditional decoder — the
// "type driven" design choice in the paper's title, measured on the
// simulator's critical path.
func BenchmarkAblationDispatch(b *testing.B) {
	// Tag pairs drawn from the full PIF tag set.
	tags := []pif.Tag{
		pif.TagAnonVar, pif.TagFirstDV, pif.TagSubDV, pif.TagFirstQV, pif.TagSubQV,
		pif.TagAtomPtr, pif.TagFloatPtr, pif.Tag(pif.TagIntBase) | 3,
		pif.GroupStructInline | 2, pif.GroupStructPtr, pif.GroupListInline | 1,
		pif.GroupUListInline | 2, pif.GroupListPtr | 4, pif.GroupUListPtr,
	}
	classify := func(t pif.Tag) int {
		switch {
		case t == pif.TagAnonVar:
			return 0
		case pif.IsVariable(t):
			return 1
		case pif.IsInt(t):
			return 2
		case t == pif.TagAtomPtr || t == pif.TagFloatPtr:
			return 3
		case pif.IsList(t):
			return 4
		default:
			return 5
		}
	}
	// Map-ROM: a flat 256×256 routine table indexed by the raw tag pair.
	var rom [65536]uint8
	for _, a := range tags {
		for _, bb := range tags {
			rom[int(a)<<8|int(bb)] = uint8(classify(a)*6 + classify(bb))
		}
	}
	b.Run("map-rom", func(b *testing.B) {
		var sink uint8
		for i := 0; i < b.N; i++ {
			for _, a := range tags {
				for _, bb := range tags {
					sink ^= rom[int(a)<<8|int(bb)]
				}
			}
		}
		_ = sink
	})
	b.Run("conditionals", func(b *testing.B) {
		var sink uint8
		for i := 0; i < b.N; i++ {
			for _, a := range tags {
				for _, bb := range tags {
					sink ^= uint8(classify(a)*6 + classify(bb))
				}
			}
		}
		_ = sink
	})
}

// --- CONC: multi-board concurrent retrieval scaling ------------------------

// BenchmarkConcurrentRetrieval measures aggregate retrieval throughput
// over the Warren-style KB as the chassis grows from the paper's single
// board to 8 boards, under 1..16 concurrent clients. Every concurrent
// result is checked byte-identical (by candidate address list) to the
// serial single-board path.
//
// Two throughput figures come out of each run: wall-clock queries/s
// (the Go simulator's own speed — bounded by the host's cores) and
// sim-q/s, the modeled hardware throughput obtained by scheduling each
// retrieval's simulated service time over the chassis (core.Makespan).
// sim-q/s is the paper-comparable scaling curve: it grows near-linearly
// with the board count until the client count is the limit.
func BenchmarkConcurrentRetrieval(b *testing.B) {
	w := workload.WarrenKB{Scale: 0.001, Seed: 1}
	preds := w.Generate()

	// Serial reference: candidates per goal from a single-board chassis.
	ref, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range preds {
		if _, err := ref.AddClauses("warren", p.Clauses); err != nil {
			b.Fatal(err)
		}
	}
	nGoals := len(preds)
	if nGoals > 8 {
		nGoals = 8
	}
	goals := make([]term.Term, nGoals)
	want := make([]string, nGoals)
	for i := 0; i < nGoals; i++ {
		goals[i] = term.New(preds[i].Name, term.Atom("e1"), term.NewVar("V"))
		rt, err := ref.Retrieve(goals[i], core.ModeFS1FS2)
		if err != nil {
			b.Fatal(err)
		}
		want[i] = fmt.Sprint(candidateAddrs(rt))
	}

	for _, boards := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Boards = boards
		r, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range preds {
			if _, err := r.AddClauses("warren", p.Clauses); err != nil {
				b.Fatal(err)
			}
		}
		for _, clients := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("boards%d/clients%d", boards, clients), func(b *testing.B) {
				var next atomic.Int64
				var wg sync.WaitGroup
				var mu sync.Mutex
				service := make([]time.Duration, b.N)
				b.ResetTimer()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1) - 1
							if i >= int64(b.N) {
								return
							}
							g := int(i) % nGoals
							rt, err := r.Retrieve(goals[g], core.ModeFS1FS2)
							if err != nil {
								b.Error(err)
								return
							}
							if got := fmt.Sprint(candidateAddrs(rt)); got != want[g] {
								b.Errorf("goal %d: candidates %s, want %s", g, got, want[g])
								return
							}
							mu.Lock()
							service[i] = rt.Stats.Total
							mu.Unlock()
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
				makespan := core.Makespan(service, boards, clients)
				b.ReportMetric(float64(b.N)/makespan.Seconds(), "sim-q/s")
			})
		}
	}
}

func candidateAddrs(rt *core.Retrieval) []uint32 {
	out := make([]uint32, len(rt.Candidates))
	for i, sc := range rt.Candidates {
		out[i] = sc.Addr
	}
	return out
}

// --- PDBM database benchmark suite (refs [6,7]) ----------------------------

func BenchmarkPDBMSelection(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		for _, mode := range []core.SearchMode{core.ModeSoftware, core.ModeFS1FS2} {
			b.Run(fmt.Sprintf("n%d/%v", n, mode), func(b *testing.B) {
				var pts []pdbmbench.SelectionPoint
				var err error
				for i := 0; i < b.N; i++ {
					pts, err = pdbmbench.Selection([]int{n}, []core.SearchMode{mode})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(pts[0].SimTime.Microseconds()), "sim-us/query")
				b.ReportMetric(float64(pts[0].Candidates), "cand/query")
			})
		}
	}
}

func BenchmarkPDBMJoin(b *testing.B) {
	var res *pdbmbench.JoinResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pdbmbench.Join(256, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Answers), "answers")
	b.ReportMetric(float64(res.Inferences), "inferences")
}

func BenchmarkPDBMUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pdbmbench.Update(200, 2, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveReverseLIPS(b *testing.B) {
	var res *pdbmbench.LIPSResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pdbmbench.NaiveReverse(30, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LIPS, "LIPS")
}
