// mixedrel demonstrates the §1 "mixed relation": rules and facts coexist
// in ONE disk-resident predicate in user-specified order — exactly what
// coupled Prolog/relational systems disallow and the integrated PDBM
// design supports. Clause order is semantically significant: the cut in
// the first rule must see the clauses in the stored order.
package main

import (
	"fmt"
	"log"

	"clare"
)

func main() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// Memory-resident support predicates.
	err = kb.ConsultString(`
		bird(tweety). bird(sam). bird(pingu).
		penguin(pingu).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// One disk-resident predicate mixing facts and rules, order mattering:
	// the superman fact must answer before the general rule enumerates
	// birds, and pingu must be excluded by negation.
	err = kb.LoadDiskPredicateString("flying", `
		fly(superman).
		fly(X) :- bird(X), \+ penguin(X).
		fly(concorde).
	`)
	if err != nil {
		log.Fatal(err)
	}

	sols, err := kb.Query("fly(W)", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("?- fly(W).   % mixed facts and rules, user order preserved")
	for _, s := range sols {
		fmt.Printf("   %v\n", s)
	}

	// Retrieval view: the rule head fly(X) carries a variable, so its FS1
	// index entry is masked; a ground probe still cannot lose it.
	rt, err := kb.Retrieve("fly(tweety)", clare.ModeFS1FS2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretrieval for fly(tweety): %d of %d clauses are candidates\n",
		rt.Stats.AfterFS2, rt.Stats.TotalClauses)
	heads, bodies, err := rt.DecodeCandidates()
	if err != nil {
		log.Fatal(err)
	}
	for i := range heads {
		if bodies[i].String() == "true" {
			fmt.Printf("   %v.\n", heads[i])
		} else {
			fmt.Printf("   %v :- %v.\n", heads[i], bodies[i])
		}
	}

	if ok, err := kb.Prove("fly(pingu)"); err != nil || ok {
		log.Fatalf("fly(pingu) = %v, %v — penguins must not fly", ok, err)
	}
	fmt.Println("\nfly(pingu) correctly fails (negation through the disk-resident rule).")
}
