// Quickstart: build an integrated knowledge base, keep a small rule module
// in memory, put a fact predicate on (simulated) disk behind CLARE, and
// query across both — the paper's integrated-implementation approach (§1).
package main

import (
	"fmt"
	"log"

	"clare"
)

func main() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// A small module: stays in main memory, handled by the Prolog engine.
	err = kb.ConsultString(`
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
		sibling(X, Y) :- parent(P, X), parent(P, Y), X \== Y.
	`)
	if err != nil {
		log.Fatal(err)
	}

	// A large predicate: disk resident, retrieved through the two-stage
	// CLARE filter.
	err = kb.LoadDiskPredicateString("family", `
		parent(tom, bob).
		parent(tom, liz).
		parent(bob, ann).
		parent(bob, pat).
		parent(pat, jim).
	`)
	if err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"grandparent(tom, W)",
		"sibling(ann, S)",
		"grandparent(G, jim)",
	} {
		sols, err := kb.Query(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("?- %s.\n", q)
		for _, s := range sols {
			fmt.Printf("   %v\n", s)
		}
	}

	// Under the hood: every parent/2 call streamed PIF clauses through
	// the FS2 board.
	st := kb.FS2Stats()
	fmt.Printf("\nFS2 board: %d clauses examined, %d matched, %d hardware ops, %v simulated match time\n",
		st.ClausesExamined, st.ClausesMatched, st.TotalOps(), st.MatchTime)
	fmt.Printf("disk: %d bytes read in %d accesses, %v simulated\n",
		kb.DiskStats().BytesRead, kb.DiskStats().Accesses, kb.DiskStats().Elapsed)
}
