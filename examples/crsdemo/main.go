// crsdemo runs the full client/server stack in one process: a Clause
// Retrieval Server over TCP, three concurrent clients issuing retrievals
// in different modes, and a transactional update — the "simultaneous
// access by multiple clients" the CRS is specified to support (§2.2).
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/workload"
)

func main() {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	srv := crs.NewServer(r)
	fam := workload.Family{Couples: 500, SameEvery: 25}
	if err := srv.Load("family", fam.Clauses()); err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()
	fmt.Printf("crsd serving %d clauses on %s\n\n", fam.Couples, addr)

	// Three clients, three modes, concurrently.
	var wg sync.WaitGroup
	queries := []struct{ mode, goal string }{
		{"fs1+fs2", "married_couple(husband7, X)"},
		{"fs2", "married_couple(S, S)"},
		{"auto", "married_couple(X, wife123)"},
	}
	results := make([]string, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, mode, goal string) {
			defer wg.Done()
			c, err := crs.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			res, err := c.Retrieve(mode, goal)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = fmt.Sprintf("client %d (%s) %-30s → %d candidates  [%s]",
				i+1, mode, goal, len(res.Clauses), res.Stats)
		}(i, q.mode, q.goal)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(r)
	}

	// A transactional append, visible to a subsequent reader.
	writer, err := crs.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	if err := writer.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := writer.Assert("married_couple(romeo, juliet)"); err != nil {
		log.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncommitted married_couple(romeo, juliet) in a transaction")

	reader, err := crs.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	res, err := reader.Retrieve("auto", "married_couple(romeo, W)")
	if err != nil {
		log.Fatal(err)
	}
	for _, cl := range res.Clauses {
		fmt.Printf("reader sees: %s\n", cl)
	}
	fmt.Printf("served by mode: %v\n", srv.Served())
}
