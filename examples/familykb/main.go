// familykb reproduces the paper's §2.1 motivating pathology: the query
// married_couple(Same_surname, Same_surname) "would result in the
// retrieval of the entire predicate" under codeword indexing alone,
// because shared variables are invisible to superimposed codewords. The
// FS2 cross-binding check is the cure. This example shows the candidate
// funnel per search mode on a 2,000-couple knowledge base.
package main

import (
	"fmt"
	"log"
	"strings"

	"clare"
	"clare/internal/workload"
)

func main() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	fam := workload.Family{Couples: 2000, SameEvery: 50} // 40 same-name couples
	var src strings.Builder
	for _, c := range fam.Clauses() {
		fmt.Fprintf(&src, "%s.\n", c.Head)
	}
	if err := kb.LoadDiskPredicateString("family", src.String()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("knowledge base: %d married_couple facts, %d with equal partners\n\n",
		fam.Couples, fam.SameNameCount())
	fmt.Println("query: married_couple(Same, Same)")

	for _, mode := range []clare.SearchMode{clare.ModeFS1, clare.ModeFS2, clare.ModeFS1FS2} {
		rt, err := kb.Retrieve("married_couple(S, S)", mode)
		if err != nil {
			log.Fatal(err)
		}
		trueU, falseD, err := rt.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v  %5d candidates  (%d true, %d false drops)  simulated %v\n",
			mode, len(rt.Candidates), trueU, falseD, rt.Stats.Total)
	}

	// Through the Prolog engine with heuristic mode selection — the CRS
	// notices the cross-bound variables and picks FS2.
	rt, err := kb.RetrieveAuto("married_couple(S, S)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCRS heuristic picked: %v\n", rt.Mode)

	sols, err := kb.Query("married_couple(P, P)", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first answers:")
	for _, s := range sols {
		fmt.Printf("  %v\n", s)
	}
}
