// warrenkb scales toward Warren's "medium-size knowledge based system"
// (§1: ≈3000 predicates, 30000 rules, 3 million facts, 30 MB). The
// example builds a 1/500-scale instance, loads every predicate behind
// CLARE, and measures retrieval latency as the KB grows — the regime
// where in-memory Prolog systems of the era gave up (the paper's footnote:
// ≈60k clauses on a 4 MB Sun3/160).
package main

import (
	"fmt"
	"log"

	"clare"
	"clare/internal/core"
	"clare/internal/term"
	"clare/internal/workload"
)

func main() {
	kb, err := clare.NewKB(clare.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	w := workload.WarrenKB{Scale: 0.002, Seed: 7}
	p, r, f := w.Dimensions()
	fmt.Printf("generating Warren KB at scale %g: %d predicates, %d rules, %d facts\n",
		w.Scale, p, r, f)

	preds := w.Generate()
	totalClauses := 0
	for _, pred := range preds {
		clauses := make([]core.ClauseTerm, len(pred.Clauses))
		copy(clauses, pred.Clauses)
		if err := kb.LoadDiskPredicate("warren", clauses); err != nil {
			log.Fatal(err)
		}
		totalClauses += len(clauses)
	}
	fmt.Printf("loaded %d clauses across %d disk-resident predicates\n\n", totalClauses, len(preds))

	// Probe the largest predicate at several selectivities.
	for _, probe := range []string{"e1", "e7", "e55"} {
		goal := term.New(preds[0].Name, term.Atom(probe), term.NewVar("V")).String()
		rt, err := kb.Retrieve(goal, clare.ModeFS1FS2)
		if err != nil {
			log.Fatal(err)
		}
		trueU, falseD, err := rt.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("?- %s.\n", goal)
		fmt.Printf("   %d clauses → FS1 %d → FS2 %d (%d true, %d false drops), simulated %v\n",
			rt.Stats.TotalClauses, rt.Stats.AfterFS1, rt.Stats.AfterFS2, trueU, falseD, rt.Stats.Total)
	}

	// The aux/1 predicate the rules call lives in memory.
	if err := kb.ConsultString("aux(X) :- atom(X)."); err != nil {
		log.Fatal(err)
	}
	goal := fmt.Sprintf("%s(e1, V)", preds[0].Name)
	sols, err := kb.Query(goal, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst resolution answers for %s:\n", goal)
	for _, s := range sols {
		fmt.Printf("   %v\n", s)
	}
}
