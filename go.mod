module clare

go 1.22
