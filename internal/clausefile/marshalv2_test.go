package clausefile

import (
	"bytes"
	"fmt"
	"testing"

	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
)

// buildMixed builds a predicate with ground facts, variable-bearing
// heads (masked index entries), and rules — every record shape the
// store formats must carry.
func buildMixed(t testing.TB, n int) (*PredFile, *symtab.Table) {
	t.Helper()
	syms := symtab.New()
	b, err := NewBuilder("zoo", "animal", 2, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			if err := b.Add(parse.MustTerm(fmt.Sprintf("animal(cat%d, meows)", i)), term.Atom("true")); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := b.Add(term.New("animal", term.NewVar("X"), term.Atom(fmt.Sprintf("sound%d", i))),
				term.Atom("true")); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := b.Add(parse.MustTerm(fmt.Sprintf("animal(dog%d, Noise)", i)),
				parse.MustTerm(fmt.Sprintf("barks(dog%d, Noise)", i))); err != nil {
				t.Fatal(err)
			}
		default:
			if err := b.Add(parse.MustTerm(fmt.Sprintf("animal(f(bird%d, g(%d)), chirps)", i, i)),
				term.Atom("true")); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build(), syms
}

// equalFiles asserts two decoded predicate files are indistinguishable:
// identity, per-clause addressing and sizes, every record's metadata and
// words, and the secondary index bytes.
func equalFiles(t *testing.T, label string, a, b *PredFile) {
	t.Helper()
	if a.Module != b.Module || a.Functor != b.Functor || a.Arity != b.Arity {
		t.Fatalf("%s: identity %s:%s/%d vs %s:%s/%d",
			label, a.Module, a.Functor, a.Arity, b.Module, b.Functor, b.Arity)
	}
	if a.Len() != b.Len() || a.SizeBytes() != b.SizeBytes() {
		t.Fatalf("%s: len/size %d/%d vs %d/%d", label, a.Len(), a.SizeBytes(), b.Len(), b.SizeBytes())
	}
	ai, err := a.Index().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bi, err := b.Index().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ai, bi) {
		t.Fatalf("%s: secondary index bytes differ", label)
	}
	for i := range a.All() {
		sa, sb := a.All()[i], b.All()[i]
		if sa.Addr != sb.Addr || sa.Seq != sb.Seq || sa.SizeBytes != sb.SizeBytes {
			t.Fatalf("%s: clause %d framing %d/%d/%d vs %d/%d/%d",
				label, i, sa.Addr, sa.Seq, sa.SizeBytes, sb.Addr, sb.Seq, sb.SizeBytes)
		}
		equalRecords(t, fmt.Sprintf("%s: clause %d head", label, i), sa.Head, sb.Head)
		equalRecords(t, fmt.Sprintf("%s: clause %d clause", label, i), sa.Clause, sb.Clause)
	}
}

func equalRecords(t *testing.T, label string, a, b *pif.Encoded) {
	t.Helper()
	if a.Functor != b.Functor || a.Arity != b.Arity || a.Side != b.Side || a.NumVars != b.NumVars {
		t.Fatalf("%s: record identity %s/%d side %d vars %d vs %s/%d side %d vars %d",
			label, a.Functor, a.Arity, a.Side, a.NumVars, b.Functor, b.Arity, b.Side, b.NumVars)
	}
	if len(a.Args) != len(b.Args) || len(a.Heap) != len(b.Heap) || len(a.VarNames) != len(b.VarNames) {
		t.Fatalf("%s: section lengths %d/%d/%d vs %d/%d/%d", label,
			len(a.Args), len(a.Heap), len(a.VarNames), len(b.Args), len(b.Heap), len(b.VarNames))
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			t.Fatalf("%s: arg word %d: %v vs %v", label, i, a.Args[i], b.Args[i])
		}
	}
	for i := range a.Heap {
		if a.Heap[i] != b.Heap[i] {
			t.Fatalf("%s: heap word %d: %v vs %v", label, i, a.Heap[i], b.Heap[i])
		}
	}
	for i := range a.VarNames {
		if a.VarNames[i] != b.VarNames[i] {
			t.Fatalf("%s: var name %d: %q vs %q", label, i, a.VarNames[i], b.VarNames[i])
		}
	}
}

// TestV2RoundTripEquivalence: any predicate marshalled in the mappable
// v2 layout decodes identically through every path — the heap decoder,
// the zero-copy mapped decoder, and (for reference) the v1 format — with
// per-clause SizeBytes invariant across formats, so disk accounting and
// stats never depend on which store built them.
func TestV2RoundTripEquivalence(t *testing.T) {
	orig, syms := buildMixed(t, 41)
	v1, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := orig.MarshalBinaryV2()
	if err != nil {
		t.Fatal(err)
	}
	fromV1, err := Unmarshal(v1, syms)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Unmarshal(v2, syms)
	if err != nil {
		t.Fatal(err)
	}
	mappedF, mapped, err := UnmarshalMapped(v2, syms)
	if err != nil {
		t.Fatal(err)
	}
	if hostLittleEndian && !mapped {
		t.Error("aligned v2 blob on a little-endian host should decode zero-copy")
	}
	equalFiles(t, "orig vs v1", orig, fromV1)
	equalFiles(t, "orig vs v2-heap", orig, heap)
	equalFiles(t, "v2-heap vs v2-mapped", heap, mappedF)
}

// TestV2UnalignedFallsBackToHeap: a v2 blob sitting at an odd address
// cannot be viewed zero-copy; the mapped decoder must fall back to the
// heap with identical results rather than fault.
func TestV2UnalignedFallsBackToHeap(t *testing.T) {
	orig, syms := buildMixed(t, 9)
	v2, err := orig.MarshalBinaryV2()
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(v2)+1)
	copy(shifted[1:], v2)
	f, mapped, err := UnmarshalMapped(shifted[1:], syms)
	if err != nil {
		t.Fatal(err)
	}
	if mapped {
		t.Error("misaligned buffer claimed the zero-copy path")
	}
	equalFiles(t, "orig vs misaligned", orig, f)
}

// TestV2CorruptionFailsClosed: every strict prefix of a v2 blob fails
// with an error (never a panic, never a silently short file), through
// both decode paths.
func TestV2CorruptionFailsClosed(t *testing.T) {
	orig, syms := buildMixed(t, 17)
	v2, err := orig.MarshalBinaryV2()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(v2); n++ {
		if _, err := Unmarshal(v2[:n], syms); err == nil {
			t.Fatalf("heap decode of %d/%d-byte prefix succeeded", n, len(v2))
		}
		if _, _, err := UnmarshalMapped(v2[:n], syms); err == nil {
			t.Fatalf("mapped decode of %d/%d-byte prefix succeeded", n, len(v2))
		}
	}
	// Single-byte flips must never panic; erroring or decoding to some
	// file are both acceptable (flipping a symbol-offset byte can still
	// parse).
	for n := 0; n < len(v2); n += 3 {
		bad := append([]byte(nil), v2...)
		bad[n] ^= 0x5A
		_, _ = Unmarshal(bad, syms)
		_, _, _ = UnmarshalMapped(bad, syms)
	}
}

// FuzzSlabMap drives both decode paths over arbitrary bytes: no input
// may panic, and whenever both the heap and the mapped decoder accept an
// input they must produce indistinguishable files.
func FuzzSlabMap(f *testing.F) {
	orig, _ := buildMixed(f, 13)
	if v2, err := orig.MarshalBinaryV2(); err == nil {
		f.Add(v2)
	}
	if v1, err := orig.MarshalBinary(); err == nil {
		f.Add(v1)
	}
	f.Add([]byte{})
	f.Add([]byte{0xDB, 0x0F, 0x11, 0xE6, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		syms := symtab.New()
		heap, herr := Unmarshal(data, syms)
		mappedF, _, merr := UnmarshalMapped(data, syms)
		if (herr == nil) != (merr == nil) {
			t.Fatalf("decode paths disagree: heap err = %v, mapped err = %v", herr, merr)
		}
		if herr != nil {
			return
		}
		equalFiles(t, "heap vs mapped", heap, mappedF)
	})
}
