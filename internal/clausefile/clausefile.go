// Package clausefile implements the compiled clause files of the PDBM
// store: "predicates with the same functor names and arities are stored in
// a compiled clause file. For fast searching in large files, codewords are
// generated for facts and rule heads and these are maintained in a
// secondary file" (§2.1).
//
// Each stored clause carries two PIF encodings: the HEAD encoding — the
// argument stream FS2 walks during partial test unification — and the full
// CLAUSE encoding (head and body wrapped in one term so variable sharing
// survives), used to reconstruct the clause for full unification and
// resolution on the host. The secondary file is the SCW+MB index over the
// head encodings.
package clausefile

import (
	"fmt"

	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
)

// clauseWrapper is the functor wrapping head and body in the full clause
// encoding.
const clauseWrapper = ":-"

// MaxRecordBytes is the largest clause record the system accepts: the FS2
// Result Memory gives each satisfier a 512-byte slot (its 9-bit offset
// counter, §3.2), so clause records must fit one slot. Enforced at compile
// time, as the PDBM compiler would.
const MaxRecordBytes = 512

// StoredClause is one record of a compiled clause file.
type StoredClause struct {
	// Addr is the record's byte offset in the file — the address the
	// secondary index and the Result Memory traffic in.
	Addr uint32
	// Seq is the clause's user-order position.
	Seq int
	// Head is the head-argument PIF encoding (DB-side variable tags).
	Head *pif.Encoded
	// Clause is the ':-'(Head, Body) PIF encoding for reconstruction.
	Clause *pif.Encoded
	// SizeBytes is the record's on-disk size.
	SizeBytes int
}

// PredFile is the compiled clause file for one predicate.
type PredFile struct {
	Module  string
	Functor string
	Arity   int
	Symbols *symtab.Table

	clauses []*StoredClause
	index   *scw.Index
	size    int
}

// Builder accumulates clauses for one predicate.
type Builder struct {
	file *PredFile
	penc *pif.Encoder
	ienc *scw.Encoder
}

// NewBuilder starts a compiled clause file for module:functor/arity using
// the shared symbol table and SCW parameters.
func NewBuilder(module, functor string, arity int, syms *symtab.Table, params scw.Params) (*Builder, error) {
	ienc, err := scw.NewEncoder(params)
	if err != nil {
		return nil, err
	}
	return &Builder{
		file: &PredFile{
			Module:  module,
			Functor: functor,
			Arity:   arity,
			Symbols: syms,
			index:   scw.NewIndex(ienc),
		},
		penc: pif.NewEncoder(syms),
		ienc: ienc,
	}, nil
}

// Add appends one clause (body term.Atom("true") for facts) in user order.
func (b *Builder) Add(head, body term.Term) error {
	pi, args, ok := principal(head)
	if !ok {
		return fmt.Errorf("clausefile: %v is not a callable head", head)
	}
	if pi != b.file.Functor || len(args) != b.file.Arity {
		return fmt.Errorf("clausefile: head %v does not belong to %s/%d", head, b.file.Functor, b.file.Arity)
	}
	headEnc, err := b.penc.Encode(head, pif.DBSide)
	if err != nil {
		return fmt.Errorf("clausefile: encoding head %v: %w", head, err)
	}
	clauseEnc, err := b.penc.Encode(term.New(clauseWrapper, head, body), pif.DBSide)
	if err != nil {
		return fmt.Errorf("clausefile: encoding clause for %v: %w", head, err)
	}
	addr := uint32(b.file.size)
	if err := b.file.index.Add(head, addr); err != nil {
		return err
	}
	headBytes, err := headEnc.MarshalBinary()
	if err != nil {
		return err
	}
	clauseBytes, err := clauseEnc.MarshalBinary()
	if err != nil {
		return err
	}
	recSize := 8 + len(headBytes) + len(clauseBytes) // two length prefixes
	if recSize > MaxRecordBytes {
		return fmt.Errorf("clausefile: clause %v compiles to %d bytes, exceeding the %d-byte result-memory slot",
			head, recSize, MaxRecordBytes)
	}
	sc := &StoredClause{
		Addr:      addr,
		Seq:       len(b.file.clauses),
		Head:      headEnc,
		Clause:    clauseEnc,
		SizeBytes: recSize,
	}
	b.file.clauses = append(b.file.clauses, sc)
	b.file.size += recSize
	return nil
}

// Build finalises the file.
func (b *Builder) Build() *PredFile { return b.file }

func principal(t term.Term) (string, []term.Term, bool) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t), nil, true
	case *term.Compound:
		return t.Functor, t.Args, true
	}
	return "", nil, false
}

// Len is the clause count.
func (f *PredFile) Len() int { return len(f.clauses) }

// SizeBytes is the compiled clause file size.
func (f *PredFile) SizeBytes() int { return f.size }

// IndexSizeBytes is the secondary file size — "generally much smaller"
// than the clause file (§2.1).
func (f *PredFile) IndexSizeBytes() int { return f.index.SizeBytes() }

// Index exposes the secondary file.
func (f *PredFile) Index() *scw.Index { return f.index }

// All returns every stored clause in user order.
func (f *PredFile) All() []*StoredClause { return f.clauses }

// ByAddrs returns the stored clauses at the given addresses, preserving
// the given (clause) order. Unknown addresses are errors — the index never
// fabricates them.
func (f *PredFile) ByAddrs(addrs []uint32) ([]*StoredClause, error) {
	byAddr := make(map[uint32]*StoredClause, len(f.clauses))
	for _, sc := range f.clauses {
		byAddr[sc.Addr] = sc
	}
	out := make([]*StoredClause, 0, len(addrs))
	for _, a := range addrs {
		sc, ok := byAddr[a]
		if !ok {
			return nil, fmt.Errorf("clausefile: no clause at address %d", a)
		}
		out = append(out, sc)
	}
	return out, nil
}

// DecodeClause reconstructs the head and body terms of a stored clause,
// with head/body variable sharing intact.
func (f *PredFile) DecodeClause(sc *StoredClause) (head, body term.Term, err error) {
	dec := pif.NewDecoder(f.Symbols)
	whole, err := dec.Decode(sc.Clause)
	if err != nil {
		return nil, nil, err
	}
	c, ok := whole.(*term.Compound)
	if !ok || c.Functor != clauseWrapper || len(c.Args) != 2 {
		return nil, nil, fmt.Errorf("clausefile: record at %d is not a clause", sc.Addr)
	}
	return c.Args[0], c.Args[1], nil
}

// fileMagic marks a serialised compiled clause file.
const fileMagic = 0xDB0F11E5
