package clausefile

import (
	"encoding/binary"
	"fmt"

	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/symtab"
)

// Serialised v2 layout — the mappable store format. The header and
// per-record metadata stay big-endian like v1, but every record's
// Args/Heap words are hoisted into one shared little-endian word section,
// 8-byte aligned relative to the blob start:
//
//	magic     uint32 (fileMagic2)
//	modLen    uint16, module bytes
//	funLen    uint16, functor bytes
//	arity     uint16
//	count     uint32
//	idxLen    uint32, secondary index blob (scw.Index)
//	wordCount uint32
//	pad       zero bytes to an 8-byte boundary (relative to blob start)
//	words     wordCount x uint32 little-endian (host word order)
//	records: per clause
//	    headLen   uint32, head PIF meta record
//	    clauseLen uint32, clause PIF meta record
//
// Records consume the word section in order (head args, head heap,
// clause args, clause heap, clause by clause), so no record stores word
// offsets. When the blob itself sits 8-aligned in a read-only mapping on
// a little-endian host, the word section is decoded zero-copy: Args/Heap
// become views straight into the mapping. Anywhere else (big-endian
// hosts, misaligned buffers, plain io.Reader loads) the same bytes
// decode through the heap with identical results.

// fileMagic2 marks a v2 (mappable) serialised clause file.
const fileMagic2 = 0xDB0F11E6

// wordAlign is the alignment of the word section relative to the blob
// start. 8 exceeds the 4 bytes uint32 views need, leaving headroom for
// future 64-bit words.
const wordAlign = 8

// MarshalBinaryV2 serialises the compiled clause file in the mappable v2
// layout. Unmarshal accepts both formats; UnmarshalMapped additionally
// decodes v2 word sections zero-copy.
func (f *PredFile) MarshalBinaryV2() ([]byte, error) {
	idx, err := f.index.MarshalBinary()
	if err != nil {
		return nil, err
	}
	wordCount := 0
	for _, sc := range f.clauses {
		wordCount += len(sc.Head.Args) + len(sc.Head.Heap) + len(sc.Clause.Args) + len(sc.Clause.Heap)
	}
	buf := make([]byte, 0, 64+len(idx)+4*wordCount+f.size)
	var tmp [4]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put32(fileMagic2)
	if len(f.Module) > 0xFFFF || len(f.Functor) > 0xFFFF || f.Arity > 0xFFFF {
		return nil, fmt.Errorf("clausefile: header fields too large")
	}
	put16(uint16(len(f.Module)))
	buf = append(buf, f.Module...)
	put16(uint16(len(f.Functor)))
	buf = append(buf, f.Functor...)
	put16(uint16(f.Arity))
	put32(uint32(len(f.clauses)))
	put32(uint32(len(idx)))
	buf = append(buf, idx...)
	put32(uint32(wordCount))
	for len(buf)%wordAlign != 0 {
		buf = append(buf, 0)
	}
	putWords := func(ws []pif.Word) {
		for _, w := range ws {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(w))
			buf = append(buf, tmp[:4]...)
		}
	}
	for _, sc := range f.clauses {
		putWords(sc.Head.Args)
		putWords(sc.Head.Heap)
		putWords(sc.Clause.Args)
		putWords(sc.Clause.Heap)
	}
	for _, sc := range f.clauses {
		hb, err := sc.Head.MarshalBinaryMeta()
		if err != nil {
			return nil, err
		}
		cb, err := sc.Clause.MarshalBinaryMeta()
		if err != nil {
			return nil, err
		}
		put32(uint32(len(hb)))
		buf = append(buf, hb...)
		put32(uint32(len(cb)))
		buf = append(buf, cb...)
	}
	return buf, nil
}

// UnmarshalMapped parses a serialised clause file, decoding a v2 word
// section zero-copy when the buffer allows it (little-endian host, word
// section 4-byte aligned in memory — guaranteed when data is a read-only
// mapping of a kbc-built store). It reports whether the zero-copy path
// was taken; v1 blobs and misaligned buffers decode through the heap
// with identical results. Corrupt or truncated input fails with an
// error, never a panic.
func UnmarshalMapped(data []byte, syms *symtab.Table) (*PredFile, bool, error) {
	if len(data) >= 4 && binary.BigEndian.Uint32(data) == fileMagic2 {
		return unmarshalV2(data, syms, true)
	}
	f, err := Unmarshal(data, syms)
	return f, false, err
}

func unmarshalV2(data []byte, syms *symtab.Table, zeroCopy bool) (*PredFile, bool, error) {
	r := &reader{data: data}
	if m := r.u32(); m != fileMagic2 {
		return nil, false, fmt.Errorf("clausefile: bad v2 magic 0x%08x", m)
	}
	f := &PredFile{Symbols: syms}
	f.Module = string(r.bytes(int(r.u16())))
	f.Functor = string(r.bytes(int(r.u16())))
	f.Arity = int(r.u16())
	count := int(r.u32())
	idxBlob := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, false, r.err
	}
	idx, err := scw.UnmarshalIndex(idxBlob)
	if err != nil {
		return nil, false, err
	}
	f.index = idx
	wordCount := int(r.u32())
	for r.err == nil && r.pos%wordAlign != 0 {
		r.bytes(1)
	}
	if wordCount < 0 || int64(wordCount)*4 > int64(len(data)) {
		return nil, false, fmt.Errorf("clausefile: word section of %d words exceeds blob", wordCount)
	}
	wb := r.bytes(wordCount * 4)
	if r.err != nil {
		return nil, false, r.err
	}
	var words []pif.Word
	mapped := false
	if zeroCopy {
		words, mapped = wordsView(wb)
	}
	if !mapped {
		words = make([]pif.Word, wordCount)
		for i := range words {
			words[i] = pif.Word(binary.LittleEndian.Uint32(wb[4*i:]))
		}
	}
	wv := pif.NewWordView(words)
	addr := uint32(0)
	for i := 0; i < count; i++ {
		hb := r.bytes(int(r.u32()))
		cb := r.bytes(int(r.u32()))
		if r.err != nil {
			return nil, false, r.err
		}
		var he, ce pif.Encoded
		if err := he.UnmarshalBinaryMeta(hb, wv); err != nil {
			return nil, false, fmt.Errorf("clausefile: record %d head: %w", i, err)
		}
		if err := ce.UnmarshalBinaryMeta(cb, wv); err != nil {
			return nil, false, fmt.Errorf("clausefile: record %d clause: %w", i, err)
		}
		// The v1-equivalent record size: meta bytes plus 4 bytes per
		// word, so disk accounting is bit-identical across formats.
		recSize := 8 + len(hb) + 4*(len(he.Args)+len(he.Heap)) + len(cb) + 4*(len(ce.Args)+len(ce.Heap))
		f.clauses = append(f.clauses, &StoredClause{
			Addr: addr, Seq: i, Head: &he, Clause: &ce, SizeBytes: recSize,
		})
		addr += uint32(recSize)
		f.size += recSize
	}
	if r.pos != len(data) {
		return nil, false, fmt.Errorf("clausefile: %d trailing bytes", len(data)-r.pos)
	}
	if left := wv.Remaining(); left != 0 {
		return nil, false, fmt.Errorf("clausefile: %d unconsumed slab words", left)
	}
	return f, mapped, nil
}
