package clausefile

import (
	"encoding/binary"
	"fmt"

	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/symtab"
)

// Serialised layout (big-endian):
//
//	magic    uint32
//	modLen   uint16, module bytes
//	funLen   uint16, functor bytes
//	arity    uint16
//	count    uint32
//	idxLen   uint32, secondary index blob (scw.Index)
//	records: per clause
//	    headLen   uint32, head PIF record
//	    clauseLen uint32, clause PIF record
//
// The symbol table is NOT serialised here: it is shared across the whole
// knowledge base and persisted by the KB layer; addresses and PIF content
// fields are stable only relative to that table.

// MarshalBinary serialises the compiled clause file and its secondary
// index.
func (f *PredFile) MarshalBinary() ([]byte, error) {
	idx, err := f.index.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64+len(idx)+f.size)
	var tmp [4]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put32(fileMagic)
	if len(f.Module) > 0xFFFF || len(f.Functor) > 0xFFFF || f.Arity > 0xFFFF {
		return nil, fmt.Errorf("clausefile: header fields too large")
	}
	put16(uint16(len(f.Module)))
	buf = append(buf, f.Module...)
	put16(uint16(len(f.Functor)))
	buf = append(buf, f.Functor...)
	put16(uint16(f.Arity))
	put32(uint32(len(f.clauses)))
	put32(uint32(len(idx)))
	buf = append(buf, idx...)
	for _, sc := range f.clauses {
		hb, err := sc.Head.MarshalBinary()
		if err != nil {
			return nil, err
		}
		cb, err := sc.Clause.MarshalBinary()
		if err != nil {
			return nil, err
		}
		put32(uint32(len(hb)))
		buf = append(buf, hb...)
		put32(uint32(len(cb)))
		buf = append(buf, cb...)
	}
	return buf, nil
}

// Unmarshal parses a serialised compiled clause file (either format)
// against the shared symbol table, decoding through the heap. Use
// UnmarshalMapped to decode a v2 blob zero-copy out of a mapping.
func Unmarshal(data []byte, syms *symtab.Table) (*PredFile, error) {
	if len(data) >= 4 && binary.BigEndian.Uint32(data) == fileMagic2 {
		f, _, err := unmarshalV2(data, syms, false)
		return f, err
	}
	r := &reader{data: data}
	if m := r.u32(); m != fileMagic {
		return nil, fmt.Errorf("clausefile: bad magic 0x%08x", m)
	}
	f := &PredFile{Symbols: syms}
	f.Module = string(r.bytes(int(r.u16())))
	f.Functor = string(r.bytes(int(r.u16())))
	f.Arity = int(r.u16())
	count := int(r.u32())
	idxLen := int(r.u32())
	idxBlob := r.bytes(idxLen)
	if r.err != nil {
		return nil, r.err
	}
	idx, err := scw.UnmarshalIndex(idxBlob)
	if err != nil {
		return nil, err
	}
	f.index = idx
	addr := uint32(0)
	// One word arena for the whole predicate: every record's Args/Heap
	// become views into the slab (len(data)/4 words bounds the total).
	slab := pif.NewSlab(len(data) / 4)
	for i := 0; i < count; i++ {
		hb := r.bytes(int(r.u32()))
		cb := r.bytes(int(r.u32()))
		if r.err != nil {
			return nil, r.err
		}
		var he, ce pif.Encoded
		if err := he.UnmarshalBinaryInto(hb, slab); err != nil {
			return nil, fmt.Errorf("clausefile: record %d head: %w", i, err)
		}
		if err := ce.UnmarshalBinaryInto(cb, slab); err != nil {
			return nil, fmt.Errorf("clausefile: record %d clause: %w", i, err)
		}
		recSize := 8 + len(hb) + len(cb)
		f.clauses = append(f.clauses, &StoredClause{
			Addr: addr, Seq: i, Head: &he, Clause: &ce, SizeBytes: recSize,
		})
		addr += uint32(recSize)
		f.size += recSize
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("clausefile: %d trailing bytes", len(data)-r.pos)
	}
	return f, nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("clausefile: truncated at byte %d", r.pos)
		return false
	}
	return true
}

func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || !r.need(n) {
		return nil
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v
}
