package clausefile

import (
	"fmt"
	"testing"

	"clare/internal/parse"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/unify"
)

func buildFamily(t *testing.T) (*PredFile, *symtab.Table) {
	t.Helper()
	syms := symtab.New()
	b, err := NewBuilder("family", "married_couple", 2, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	heads := []string{
		"married_couple(fred, wilma)",
		"married_couple(barney, betty)",
		"married_couple(pat, pat)",
	}
	for _, h := range heads {
		if err := b.Add(parse.MustTerm(h), term.Atom("true")); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), syms
}

func TestBuildBasics(t *testing.T) {
	f, _ := buildFamily(t)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.SizeBytes() <= 0 || f.IndexSizeBytes() <= 0 {
		t.Error("sizes should be positive")
	}
	// The §2.1 size relation: the secondary file is much smaller than the
	// clause file.
	if f.IndexSizeBytes() >= f.SizeBytes() {
		t.Errorf("index %dB should be smaller than clause file %dB",
			f.IndexSizeBytes(), f.SizeBytes())
	}
	// Addresses are increasing and start at 0.
	all := f.All()
	if all[0].Addr != 0 {
		t.Errorf("first addr = %d", all[0].Addr)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Addr <= all[i-1].Addr {
			t.Error("addresses not increasing")
		}
		if all[i].Seq != i {
			t.Errorf("seq[%d] = %d", i, all[i].Seq)
		}
	}
}

func TestHeadMismatchRejected(t *testing.T) {
	syms := symtab.New()
	b, err := NewBuilder("m", "p", 2, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(parse.MustTerm("q(a, b)"), term.Atom("true")); err == nil {
		t.Error("wrong functor should be rejected")
	}
	if err := b.Add(parse.MustTerm("p(a)"), term.Atom("true")); err == nil {
		t.Error("wrong arity should be rejected")
	}
	if err := b.Add(term.Int(3), term.Atom("true")); err == nil {
		t.Error("non-callable head should be rejected")
	}
}

func TestDecodeClauseSharing(t *testing.T) {
	syms := symtab.New()
	b, err := NewBuilder("m", "grandparent", 2, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	rule := parse.MustTerm("grandparent(X, Z) :- parent(X, Y), parent(Y, Z)")
	rc := rule.(*term.Compound)
	if err := b.Add(rc.Args[0], rc.Args[1]); err != nil {
		t.Fatal(err)
	}
	f := b.Build()
	head, body, err := f.DecodeClause(f.All()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Head/body sharing: X in head must be the same variable as X in
	// body.
	hv := term.Vars(head, nil)
	bv := term.Vars(body, nil)
	if len(hv) != 2 {
		t.Fatalf("head vars = %d", len(hv))
	}
	shared := 0
	for _, v := range hv {
		for _, w := range bv {
			if v == w {
				shared++
			}
		}
	}
	if shared != 2 {
		t.Errorf("head/body share %d vars, want 2", shared)
	}
	if !unify.Unifiable(head, parse.MustTerm("grandparent(A, B)")) {
		t.Error("decoded head shape wrong")
	}
}

func TestByAddrs(t *testing.T) {
	f, _ := buildFamily(t)
	all := f.All()
	got, err := f.ByAddrs([]uint32{all[2].Addr, all[0].Addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 0 {
		t.Errorf("ByAddrs order not preserved: %v", got)
	}
	if _, err := f.ByAddrs([]uint32{99999}); err == nil {
		t.Error("unknown address should error")
	}
}

func TestIndexScanFindsClauses(t *testing.T) {
	f, _ := buildFamily(t)
	ienc, err := scw.NewEncoder(scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := ienc.EncodeQuery(parse.MustTerm("married_couple(fred, X)"))
	if err != nil {
		t.Fatal(err)
	}
	res := f.Index().Scan(qd)
	scs, err := f.ByAddrs(res.Addrs)
	if err != nil {
		t.Fatal(err)
	}
	foundFred := false
	for _, sc := range scs {
		head, _, err := f.DecodeClause(sc)
		if err != nil {
			t.Fatal(err)
		}
		if unify.Unifiable(head, parse.MustTerm("married_couple(fred, W)")) {
			foundFred = true
		}
	}
	if !foundFred {
		t.Error("index scan lost the fred clause")
	}
}

func TestSerialisationRoundTrip(t *testing.T) {
	syms := symtab.New()
	b, err := NewBuilder("zoo", "animal", 2, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		head := parse.MustTerm(fmt.Sprintf("animal(sp%d, f(%d, [a,b|T]))", i, i))
		body := term.Term(term.Atom("true"))
		if i%3 == 0 {
			body = parse.MustTerm(fmt.Sprintf("helper(%d)", i))
		}
		if err := b.Add(head, body); err != nil {
			t.Fatal(err)
		}
	}
	f := b.Build()
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Unmarshal(data, syms)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Module != "zoo" || f2.Functor != "animal" || f2.Arity != 2 {
		t.Fatalf("header = %s:%s/%d", f2.Module, f2.Functor, f2.Arity)
	}
	if f2.Len() != f.Len() || f2.SizeBytes() != f.SizeBytes() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", f2.Len(), f2.SizeBytes(), f.Len(), f.SizeBytes())
	}
	for i := range f.All() {
		a, b := f.All()[i], f2.All()[i]
		if a.Addr != b.Addr || a.SizeBytes != b.SizeBytes {
			t.Errorf("record %d framing differs", i)
		}
		h1, b1, err1 := f.DecodeClause(a)
		h2, b2, err2 := f2.DecodeClause(b)
		if err1 != nil || err2 != nil {
			t.Fatalf("decode errs: %v %v", err1, err2)
		}
		if h1.String() != h2.String() || b1.String() != b2.String() {
			t.Errorf("record %d clauses differ:\n%v :- %v\n%v :- %v", i, h1, b1, h2, b2)
		}
	}
	// Index survives too.
	ienc, _ := scw.NewEncoder(scw.DefaultParams)
	qd, _ := ienc.EncodeQuery(parse.MustTerm("animal(sp3, X)"))
	r1, r2 := f.Index().Scan(qd), f2.Index().Scan(qd)
	if len(r1.Addrs) != len(r2.Addrs) {
		t.Error("index behaviour changed after round trip")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	syms := symtab.New()
	if _, err := Unmarshal([]byte{1, 2, 3}, syms); err == nil {
		t.Error("garbage should fail")
	}
	f, _ := buildFamily(t)
	data, _ := f.MarshalBinary()
	if _, err := Unmarshal(data[:len(data)-3], syms); err == nil {
		t.Error("truncated file should fail")
	}
	if _, err := Unmarshal(append(data, 9), syms); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestRuleAndFactMixPreservesOrder(t *testing.T) {
	// The paper's §1 point: rules and facts coexist in one predicate in
	// user order — coupled systems cannot do this, the PDBM store must.
	syms := symtab.New()
	b, err := NewBuilder("m", "fly", 1, syms, scw.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	add := func(cl string) {
		t.Helper()
		tt := parse.MustTerm(cl)
		if c, ok := tt.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
			if err := b.Add(c.Args[0], c.Args[1]); err != nil {
				t.Fatal(err)
			}
			return
		}
		if err := b.Add(tt, term.Atom("true")); err != nil {
			t.Fatal(err)
		}
	}
	add("fly(tweety)")
	add("fly(X) :- bird(X), \\+ penguin(X)")
	add("fly(superman)")
	f := b.Build()
	if f.Len() != 3 {
		t.Fatal("expected 3 clauses")
	}
	_, body1, _ := f.DecodeClause(f.All()[1])
	if body1.Indicator() != ",/2" {
		t.Errorf("rule body = %v", body1)
	}
	_, body2, _ := f.DecodeClause(f.All()[2])
	if !term.Equal(body2, term.Atom("true")) {
		t.Errorf("fact body = %v", body2)
	}
}
