package clausefile

import (
	"unsafe"

	"clare/internal/pif"
)

// hostLittleEndian reports whether uint32 loads read little-endian bytes
// — the condition for viewing the store's little-endian word section
// without decoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// wordsView reinterprets a little-endian word section as []pif.Word
// without copying. It refuses (second return false) on big-endian hosts
// and misaligned buffers — the callers then fall back to the heap
// decode, so a store built anywhere loads everywhere.
func wordsView(b []byte) ([]pif.Word, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(pif.Word(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*pif.Word)(unsafe.Pointer(&b[0])), len(b)/4), true
}
