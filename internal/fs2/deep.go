package fs2

// Levels 4 and 5 in "hardware": the paper investigated matching levels up
// to full-structure comparison with cross-binding checks but rejected
// levels 4 and 5 because "the cost and complexity of the matching hardware
// ... are high" (§2.2). This file implements those levels in the simulator
// anyway — the natural what-if study: microprograms MPLevel4 and MPLevel5
// walk pointer forms into the clause heap and keep position-based variable
// bindings, so structure comparison is exact at any depth.
//
// The single remaining approximation is the binding of an open list's tail
// variable, which binds to the remainder's SHAPE (as in level 3) rather
// than the remainder itself — PIF has no word addressing the middle of an
// in-line element run. The approximation only ever over-accepts, so the
// soundness invariant is untouched.

import (
	"clare/internal/pif"
)

// Extended microprograms: the levels the hardware did not build.
var (
	// MPLevel4 compares full structures, no cross-binding checks.
	MPLevel4 = Microprogram{Name: "level4", CompareContent: true, DescendElements: true, DescendFull: true}
	// MPLevel5 is full-depth comparison plus cross-binding checks — the
	// closest a filter can get to full unification.
	MPLevel5 = Microprogram{Name: "level5", CompareContent: true, DescendElements: true, DescendFull: true, CrossBinding: true}
)

// ref addresses a term inside one side's encoded clause: a word slice (the
// argument stream or the heap), the side's heap for following pointers,
// and a position.
type ref struct {
	words []pif.Word
	heap  []pif.Word
	pos   int
}

func (r ref) word() pif.Word { return r.words[r.pos] }

// deepMatchClause is the matchClause driver for DescendFull microprograms.
func (e *Engine) deepMatchClause(db *pif.Encoded) bool {
	if e.countFn == nil {
		e.countFn = e.countOp
	}
	m := &clauseMatch{e: e, mp: e.mp, db: db, q: e.query, count: e.countFn}
	// Position-based variable stores.
	e.dbRef = resizeRefs(e.dbRef, db.NumVars)
	e.qRef = resizeRefs(e.qRef, e.query.NumVars)
	e.dbRefBound = resizeBools(e.dbRefBound, db.NumVars)
	e.qRefBound = resizeBools(e.qRefBound, e.query.NumVars)

	qPos, dbPos := 0, 0
	for i := 0; i < db.Arity; i++ {
		dRef := ref{words: db.Args, heap: db.Heap, pos: dbPos}
		qRef := ref{words: m.q.Args, heap: m.q.Heap, pos: qPos}
		qNext := qPos + runLen(m.q.Args, qPos)
		dbNext := dbPos + runLen(db.Args, dbPos)
		if !m.deepRun(dRef, qRef) {
			return false
		}
		qPos, dbPos = qNext, dbNext
	}
	return true
}

func resizeRefs(s []ref, n int) []ref {
	if cap(s) < n {
		return make([]ref, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = ref{}
	}
	return s
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// deepRun compares the terms at d and q to full depth.
func (m *clauseMatch) deepRun(d, q ref) bool {
	dw, qw := d.word(), q.word()
	if dw.Tag() == pif.TagAnonVar || qw.Tag() == pif.TagAnonVar {
		return true
	}
	if pif.IsVariable(dw.Tag()) {
		return m.deepVar(dw, q, true)
	}
	if pif.IsVariable(qw.Tag()) {
		return m.deepVar(qw, d, false)
	}

	dComplex, qComplex := pif.IsComplex(dw.Tag()), pif.IsComplex(qw.Tag())
	if dComplex != qComplex {
		return false
	}
	if !dComplex {
		m.countOp(OpMatch)
		return m.concreteEqual(dw, qw)
	}
	return m.deepComplex(d, q)
}

// shape is a normalised complex term: the pointer/in-line distinction
// resolved away.
type shape struct {
	isList  bool
	open    bool
	functor uint32 // structures only
	elems   []ref
	tail    *ref // open lists: the tail variable word
}

// normalize loads a complex term's shape, following pointers into the heap.
func normalize(r ref) (shape, bool) {
	w := r.word()
	t := w.Tag()
	var sh shape
	switch pif.Group(t) {
	case pif.GroupStructInline:
		sh.functor = w.Content()
		n := pif.InlineArity(t)
		p := r.pos + 1
		for i := 0; i < n; i++ {
			sh.elems = append(sh.elems, ref{words: r.words, heap: r.heap, pos: p})
			p += runLen(r.words, p)
		}
		return sh, true
	case pif.GroupStructPtr:
		sh.functor = w.Content()
		if r.pos+1 >= len(r.words) {
			return sh, false
		}
		off := int(uint32(r.words[r.pos+1]))
		if off+1 >= len(r.heap) {
			return sh, false
		}
		n := int(r.heap[off])
		p := off + 2
		for i := 0; i < n; i++ {
			sh.elems = append(sh.elems, ref{words: r.heap, heap: r.heap, pos: p})
			p += runLen(r.heap, p)
		}
		return sh, true
	case pif.GroupListInline, pif.GroupUListInline:
		sh.isList = true
		sh.open = pif.IsUnterminated(t)
		n := pif.InlineArity(t)
		p := r.pos + 1
		for i := 0; i < n; i++ {
			sh.elems = append(sh.elems, ref{words: r.words, heap: r.heap, pos: p})
			p += runLen(r.words, p)
		}
		if sh.open {
			tr := ref{words: r.words, heap: r.heap, pos: p}
			sh.tail = &tr
		}
		return sh, true
	case pif.GroupListPtr, pif.GroupUListPtr:
		sh.isList = true
		sh.open = pif.IsUnterminated(t)
		off := int(w.Content())
		if off >= len(r.heap) {
			return sh, false
		}
		n := int(r.heap[off])
		p := off + 1
		for i := 0; i < n; i++ {
			sh.elems = append(sh.elems, ref{words: r.heap, heap: r.heap, pos: p})
			p += runLen(r.heap, p)
		}
		if sh.open {
			tr := ref{words: r.heap, heap: r.heap, pos: p}
			sh.tail = &tr
		}
		return sh, true
	}
	return sh, false
}

// deepComplex compares two complex terms exactly.
func (m *clauseMatch) deepComplex(d, q ref) bool {
	m.countOp(OpMatch) // header comparison
	ds, ok := normalize(d)
	if !ok {
		return true // malformed encodings pass (defensive, sound)
	}
	qs, ok := normalize(q)
	if !ok {
		return true
	}
	if ds.isList != qs.isList {
		return false
	}
	if !ds.isList {
		if ds.functor != qs.functor && m.mp.CompareContent {
			return false
		}
		if len(ds.elems) != len(qs.elems) {
			return false
		}
		for i := range ds.elems {
			if !m.deepRun(ds.elems[i], qs.elems[i]) {
				return false
			}
		}
		return true
	}
	// Lists: exact length logic on the true element counts.
	dn, qn := len(ds.elems), len(qs.elems)
	switch {
	case !ds.open && !qs.open:
		if dn != qn {
			return false
		}
	case ds.open && !qs.open:
		if dn > qn {
			return false
		}
	case !ds.open && qs.open:
		if qn > dn {
			return false
		}
	}
	n := dn
	if qn < n {
		n = qn
	}
	for i := 0; i < n; i++ {
		if !m.deepRun(ds.elems[i], qs.elems[i]) {
			return false
		}
	}
	if m.mp.CrossBinding {
		// Open tails bind to the remainder's shape (see file comment).
		if ds.open && ds.tail != nil {
			remTag := pif.GroupListInline
			if qs.open {
				remTag = pif.GroupUListInline
			}
			rem := pif.MakeWord(remTag|pif.Tag(qn-n), 0)
			if !m.deepVarWord(ds.tail.word(), rem, true) {
				return false
			}
		}
		if qs.open && !ds.open && qs.tail != nil {
			rem := pif.MakeWord(pif.GroupListInline|pif.Tag(dn-n), 0)
			if !m.deepVarWord(qs.tail.word(), rem, false) {
				return false
			}
		}
	}
	return true
}

// deepVar handles a variable word against an opposing ref with
// position-based bindings.
func (m *clauseMatch) deepVar(v pif.Word, other ref, isDB bool) bool {
	if !m.mp.CrossBinding {
		if isDB {
			m.countOp(OpDBStore)
		} else {
			m.countOp(OpQueryStore)
		}
		return true
	}
	cur := v
	hops := 0
	const limit = 2 * pif.MaxVarSlots
	for hops < limit {
		mem, bound, ok := m.refStoreFor(cur)
		if !ok {
			return true
		}
		slot := int(cur.Content())
		if !bound[slot] {
			m.chargeVarOps(v, false, hops)
			if m.sameVarCell(cur, other.word()) {
				return true
			}
			mem[slot] = other
			bound[slot] = true
			return true
		}
		target := mem[slot]
		tw := target.word()
		if pif.IsVariable(tw.Tag()) && tw.Tag() != pif.TagAnonVar {
			cur = tw
			hops++
			continue
		}
		// Bound to a concrete term: compare it against other.
		m.chargeVarOps(v, true, hops+1)
		return m.deepRun(target, other)
	}
	return true // pathological cycle: pass (sound)
}

// deepVarWord is deepVar for synthesised value words that have no ref
// (remainder shapes): consistency degrades to word-level comparison.
func (m *clauseMatch) deepVarWord(v, value pif.Word, isDB bool) bool {
	if !m.mp.CrossBinding {
		return true
	}
	mem, bound, ok := m.refStoreFor(v)
	if !ok {
		return true
	}
	slot := int(v.Content())
	if !bound[slot] {
		m.chargeVarOps(v, false, 0)
		// Synthesised words live in a one-word slice of their own.
		mem[slot] = ref{words: []pif.Word{value}, heap: nil, pos: 0}
		bound[slot] = true
		return true
	}
	m.chargeVarOps(v, true, 1)
	tw := mem[slot].word()
	if pif.IsVariable(tw.Tag()) {
		return true
	}
	return m.concreteEqual(tw, value)
}

// refStoreFor returns the position-based store for a variable word.
func (m *clauseMatch) refStoreFor(v pif.Word) ([]ref, []bool, bool) {
	slot := int(v.Content())
	switch v.Tag() {
	case pif.TagFirstDV, pif.TagSubDV:
		if slot >= len(m.e.dbRef) {
			return nil, nil, false
		}
		return m.e.dbRef, m.e.dbRefBound, true
	case pif.TagFirstQV, pif.TagSubQV:
		if slot >= len(m.e.qRef) {
			return nil, nil, false
		}
		return m.e.qRef, m.e.qRefBound, true
	}
	return nil, nil, false
}
