package fs2

import (
	"strings"
	"testing"

	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/symtab"
)

func TestMicrowordFields(t *testing.T) {
	w := MakeMicroword(MIExec, uint8(OpDBStore), 0x0123, 0xDEADBEEF)
	if w.Op() != MIExec {
		t.Errorf("op = %v", w.Op())
	}
	if w.A() != uint8(OpDBStore) {
		t.Errorf("a = %d", w.A())
	}
	if w.Addr() != 0x0123 {
		t.Errorf("addr = %04x", w.Addr())
	}
	if w.Control() != 0xDEADBEEF {
		t.Errorf("control = %08x", w.Control())
	}
}

func TestMicrowordIs64Bits(t *testing.T) {
	// Fields must tile the 64-bit word without overlap.
	w := MakeMicroword(MicroOp(0xFF), 0xFF, 0xFFFF, 0xFFFFFFFF)
	if uint64(w) != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("full word = %016x", uint64(w))
	}
	zero := MakeMicroword(0, 0, 0, 0)
	if uint64(zero) != 0 {
		t.Errorf("zero word = %016x", uint64(zero))
	}
}

func TestAssembleStandardPrograms(t *testing.T) {
	for _, cfg := range []Microprogram{MPLevel1, MPLevel2, MPLevel3, MPLevel3XB} {
		p, err := Assemble(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(p.Words) == 0 || len(p.Words) > WCSWords {
			t.Errorf("%s: %d words", cfg.Name, len(p.Words))
		}
		// Every hardware operation has a routine, with one EXEC per
		// figure cycle.
		ops := Operations()
		for code, def := range ops {
			addr, ok := p.Routines[def.Name]
			if !ok {
				t.Fatalf("%s: missing routine %s", cfg.Name, def.Name)
			}
			for cyc := 0; cyc < len(def.Cycles); cyc++ {
				w := p.Words[int(addr)+cyc]
				if w.Op() != MIExec || OpCode(w.A()) != code {
					t.Errorf("%s: routine %s word %d = %v", cfg.Name, def.Name, cyc, w)
				}
			}
		}
		// The ROM must dispatch every class pair that can occur.
		if p.ROM.Len() == 0 {
			t.Errorf("%s: empty map ROM", cfg.Name)
		}
		if _, ok := p.ROM.Lookup(ClassSimple, ClassSimple); !ok {
			t.Errorf("%s: no vector for simple×simple", cfg.Name)
		}
	}
}

func TestMapROMDispatchReflectsLevel(t *testing.T) {
	p3, err := Assemble(MPLevel3XB)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(MPLevel2)
	if err != nil {
		t.Fatal(err)
	}
	a3, _ := p3.ROM.Lookup(ClassComplex, ClassComplex)
	a2, _ := p2.ROM.Lookup(ClassComplex, ClassComplex)
	if a3 != p3.Routines["elements"] {
		t.Error("level 3 should dispatch complex pairs to the element loop")
	}
	if a2 != p2.Routines["MATCH"] {
		t.Error("level 2 should dispatch complex pairs to plain MATCH")
	}
}

func TestListingReadable(t *testing.T) {
	p, err := Assemble(MPLevel3XB)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	for _, want := range []string{"poll:", "MATCH:", "QUERY_CROSS_BOUND_FETCH:", "EXEC", "DISPATCH", "element_loop:"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestLoadAssembledProtocol(t *testing.T) {
	e := New()
	if _, err := e.LoadAssembled(MPLevel3XB); err == nil {
		t.Fatal("LoadAssembled outside Microprogramming mode should fail")
	}
	e.SetMode(ModeMicroprogramming)
	prog, err := e.LoadAssembled(MPLevel3XB)
	if err != nil {
		t.Fatal(err)
	}
	img := e.WCSImage()
	if len(img) != len(prog.Words) {
		t.Fatalf("WCS image %d words, program %d", len(img), len(prog.Words))
	}
	for i := range img {
		if img[i] != prog.Words[i] {
			t.Fatalf("WCS word %d differs", i)
		}
	}
	if e.Program() != prog {
		t.Error("Program() should return the loaded program")
	}

	// The assembled load is behaviourally identical to the direct load:
	// run the shared-variable case through it.
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	q, err := enc.Encode(parse.MustTerm("mc(S, S)"), pif.QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMode(ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	h1, _ := enc.Encode(parse.MustTerm("mc(a, b)"), pif.DBSide)
	h2, _ := enc.Encode(parse.MustTerm("mc(c, c)"), pif.DBSide)
	e.SetMode(ModeSearch)
	res, err := e.Search([]Record{{Addr: 0, Enc: h1}, {Addr: 1, Enc: h2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != 1 {
		t.Errorf("matches = %v, want [1]", res.Matches)
	}
}

func TestControlBitsDocumentRoutes(t *testing.T) {
	// The MATCH cycle drives Sel1, Sel3, Sel6 and the comparator.
	c := controlBitsFor(OpMatch, 0)
	for _, bit := range []uint32{CtrlSel1Left, CtrlSel3Right, CtrlSel6Left, CtrlCompareEn} {
		if c&bit == 0 {
			t.Errorf("MATCH control bits missing %08x (got %08x)", bit, c)
		}
	}
	if c&CtrlDBMemWrite != 0 {
		t.Error("MATCH must not write DB memory")
	}
	// DB_STORE's final action is the DB memory write.
	c = controlBitsFor(OpDBStore, 0)
	if c&CtrlDBMemWrite == 0 {
		t.Error("DB_STORE control bits missing the DB memory write")
	}
	// Out-of-range cycles yield zero.
	if controlBitsFor(OpMatch, 5) != 0 {
		t.Error("out-of-range cycle should have no control bits")
	}
}

func TestMapROMLookupMiss(t *testing.T) {
	m := NewMapROM()
	if _, ok := m.Lookup(ClassSimple, ClassSimple); ok {
		t.Error("empty ROM should miss")
	}
	m.Set(ClassSimple, ClassSimple, 42)
	if a, ok := m.Lookup(ClassSimple, ClassSimple); !ok || a != 42 {
		t.Errorf("lookup = %d, %v", a, ok)
	}
	if m.Len() != 1 {
		t.Errorf("len = %d", m.Len())
	}
}
