package fs2

import (
	"testing"

	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/termgen"
)

// nativeFor builds a NativeMatcher with the query loaded.
func nativeFor(t testing.TB, enc *pif.Encoder, query term.Term, mp Microprogram) *NativeMatcher {
	t.Helper()
	nm, err := NewNativeMatcher(mp)
	if err != nil {
		t.Fatal(err)
	}
	q, err := enc.Encode(query, pif.QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	return nm
}

// TestNativeMatcherDifferential is the FS2 half of the issue's
// differential oracle: over ≥10k generated query/head pairs (shared
// variables, open lists, near-misses) and every non-DescendFull
// microprogram, the native matcher must agree with the simulated board
// clause by clause — same accept/reject, same cross-binding reject
// classification.
func TestNativeMatcherDifferential(t *testing.T) {
	mps := []Microprogram{MPLevel1, MPLevel2, MPLevel3, MPLevel3XB}
	const pairsPerMP = 2500
	for _, mp := range mps {
		gen := termgen.New(int64(len(mp.Name))*7919 + 13)
		syms := symtab.New()
		enc := pif.NewEncoder(syms)
		for i := 0; i < pairsPerMP; i++ {
			arity := 1 + i%4
			query, head := gen.Pair("p", arity)
			q, err := enc.Encode(query, pif.QuerySide)
			if err != nil {
				continue // e.g. a mutated improper list: not encodable, not retrievable
			}
			h, err := enc.Encode(head, pif.DBSide)
			if err != nil {
				continue
			}

			e := New()
			e.SetMode(ModeMicroprogramming)
			if err := e.LoadMicroprogram(mp); err != nil {
				t.Fatal(err)
			}
			e.SetMode(ModeSetQuery)
			if err := e.SetQuery(q); err != nil {
				t.Fatal(err)
			}
			e.SetMode(ModeSearch)
			res, err := e.Search([]Record{{Addr: 7, Enc: h}})
			if err != nil {
				t.Fatal(err)
			}
			simPass := len(res.Matches) == 1

			nm, err := NewNativeMatcher(mp)
			if err != nil {
				t.Fatal(err)
			}
			if err := nm.SetQuery(q); err != nil {
				t.Fatal(err)
			}
			natPass := nm.Match(h)

			if simPass != natPass {
				t.Fatalf("mp=%s pair %d: sim=%v native=%v\n  query %v\n  head  %v",
					mp.Name, i, simPass, natPass, query, head)
			}
			if !simPass {
				simXB := res.RejectsXB == 1
				if simXB != nm.LastRejectXB() {
					t.Fatalf("mp=%s pair %d: reject cause sim xb=%v native xb=%v\n  query %v\n  head  %v",
						mp.Name, i, simXB, nm.LastRejectXB(), query, head)
				}
			}
		}
	}
}

// TestNativeMatcherReuse checks one matcher survives query reloads and
// repeated clauses without state leaking between comparisons.
func TestNativeMatcherReuse(t *testing.T) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	nm, err := NewNativeMatcher(MPLevel3XB)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q, h string
		want bool
	}{
		{"p(X, X)", "p(a, a)", true},
		{"p(X, X)", "p(a, b)", false}, // must not inherit the previous binding
		{"p(X, X)", "p(A, A)", true},
		{"q(1)", "q(1)", true},
		{"q(1)", "q(2)", false},
	}
	for _, c := range cases {
		qt, err := parse.Term(c.q)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := parse.Term(c.h)
		if err != nil {
			t.Fatal(err)
		}
		q, err := enc.Encode(qt, pif.QuerySide)
		if err != nil {
			t.Fatal(err)
		}
		h, err := enc.Encode(ht, pif.DBSide)
		if err != nil {
			t.Fatal(err)
		}
		if err := nm.SetQuery(q); err != nil {
			t.Fatal(err)
		}
		if got := nm.Match(h); got != c.want {
			t.Errorf("%s vs %s: got %v, want %v", c.q, c.h, got, c.want)
		}
	}
}

// TestNativeMatcherRejectsDeep pins the construction-time contract: the
// native engine does not run the levels-4/5 what-if microprograms.
func TestNativeMatcherRejectsDeep(t *testing.T) {
	for _, mp := range []Microprogram{MPLevel4, MPLevel5} {
		if _, err := NewNativeMatcher(mp); err == nil {
			t.Errorf("NewNativeMatcher(%s) succeeded, want error", mp.Name)
		}
	}
}

// TestNativeMatcherZeroAlloc enforces the allocation discipline on the
// steady-state match path.
func TestNativeMatcherZeroAlloc(t *testing.T) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	gen := termgen.New(99)
	query, _ := gen.Pair("p", 3)
	nm := nativeFor(t, enc, query, MPLevel3XB)
	var heads []*pif.Encoded
	for len(heads) < 64 {
		_, head := gen.Pair("p", 3)
		h, err := enc.Encode(head, pif.DBSide)
		if err != nil {
			continue // unencodable mutant (improper list)
		}
		heads = append(heads, h)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, h := range heads {
			nm.Match(h)
		}
	})
	if allocs != 0 {
		t.Fatalf("Match allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkMatchEngine and BenchmarkMatchNative expose the FS2 kernel
// speedup in isolation.
func benchPairs(b *testing.B) (*pif.Encoder, *pif.Encoded, []Record) {
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	gen := termgen.New(7)
	query, _ := gen.Pair("p", 3)
	q, err := enc.Encode(query, pif.QuerySide)
	if err != nil {
		b.Fatal(err)
	}
	var recs []Record
	for len(recs) < 256 {
		_, head := gen.Pair("p", 3)
		h, err := enc.Encode(head, pif.DBSide)
		if err != nil {
			continue // unencodable mutant (improper list)
		}
		recs = append(recs, Record{Addr: uint32(len(recs)), Enc: h})
	}
	return enc, q, recs
}

func BenchmarkMatchEngine(b *testing.B) {
	_, q, recs := benchPairs(b)
	e := New()
	e.SetMode(ModeMicroprogramming)
	if err := e.LoadMicroprogram(MPLevel3XB); err != nil {
		b.Fatal(err)
	}
	e.SetMode(ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		b.Fatal(err)
	}
	e.SetMode(ModeSearch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchNative(b *testing.B) {
	_, q, recs := benchPairs(b)
	nm, err := NewNativeMatcher(MPLevel3XB)
	if err != nil {
		b.Fatal(err)
	}
	if err := nm.SetQuery(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recs {
			nm.Match(r.Enc)
		}
	}
}
