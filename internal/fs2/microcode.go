package fs2

// This file models the Writable Control Store at the microword level
// (§3.1, Figure 3): 2048 microinstructions of 64 bits, a 2910A-style
// microprogram controller, and the Map ROM whose address port is driven by
// the type fields of the db-data and Q-data buses.
//
// The behavioural simulator in match.go is the authoritative matcher; the
// microword layer underneath exists so the host-visible WCS protocol is
// real: microprograms are ASSEMBLED into 64-bit words, loaded through
// Microprogramming mode word by word, disassembled back, and bounded by
// the 2048-word store. The standard microprograms (levels 1–3 ± cross
// binding) are provided as source and their assembled forms drive the
// matcher's configuration flags.

import (
	"fmt"
	"strings"

	"clare/internal/hw"
)

// WCS capacity: "The RAM can hold a maximum of 2048 microprogram
// instructions, each 64 bits wide" (§3.1).
const (
	WCSWords      = 2048
	MicrowordBits = 64
)

// MicroOp is the operation field of a microinstruction.
type MicroOp uint8

const (
	// MIPoll busy-waits on conditional-code bit 0 (clause ready).
	MIPoll MicroOp = iota
	// MIDispatch jumps through the Map ROM on the ⟨db,query⟩ type pair.
	MIDispatch
	// MIExec executes one TUE hardware operation (OpCode in the A field).
	MIExec
	// MILoadCounters loads the db and query element counters.
	MILoadCounters
	// MIDecCounters decrements both counters; CC reflects zero.
	MIDecCounters
	// MIBranch jumps to the address field unconditionally.
	MIBranch
	// MIBranchCC jumps when the selected condition-code bit is set.
	MIBranchCC
	// MIAccept marks the clause a satisfier and returns to polling.
	MIAccept
	// MIReject abandons the clause and returns to polling.
	MIReject
	// MIHalt stops the sequencer (end of loaded program).
	MIHalt
)

func (op MicroOp) String() string {
	switch op {
	case MIPoll:
		return "POLL"
	case MIDispatch:
		return "DISPATCH"
	case MIExec:
		return "EXEC"
	case MILoadCounters:
		return "LDCNT"
	case MIDecCounters:
		return "DECCNT"
	case MIBranch:
		return "BR"
	case MIBranchCC:
		return "BRCC"
	case MIAccept:
		return "ACCEPT"
	case MIReject:
		return "REJECT"
	case MIHalt:
		return "HALT"
	}
	return fmt.Sprintf("MI?%d", uint8(op))
}

// Microword is one 64-bit WCS word. Field layout (bits, high to low):
//
//	63..56  op       MicroOp
//	55..48  a        operand A (e.g. the TUE OpCode for EXEC, CC bit for BRCC)
//	47..32  addr     branch / dispatch base address (16 bits; ≤ 2047 used)
//	31..0   control  raw TUE control bits (selector paths, register enables)
//
// The control field documents the datapath setting of the cycle — the
// microassembler fills it from the operation's routes so a disassembly
// shows which selectors the cycle drives.
type Microword uint64

// MakeMicroword assembles the fields.
func MakeMicroword(op MicroOp, a uint8, addr uint16, control uint32) Microword {
	return Microword(uint64(op)<<56 | uint64(a)<<48 | uint64(addr)<<32 | uint64(control))
}

// Op returns the operation field.
func (w Microword) Op() MicroOp { return MicroOp(w >> 56) }

// A returns operand A.
func (w Microword) A() uint8 { return uint8(w >> 48) }

// Addr returns the branch address field.
func (w Microword) Addr() uint16 { return uint16(w >> 32) }

// Control returns the raw TUE control bits.
func (w Microword) Control() uint32 { return uint32(w) }

// String disassembles the word.
func (w Microword) String() string {
	switch w.Op() {
	case MIExec:
		return fmt.Sprintf("%-8s %v", w.Op(), OpCode(w.A()))
	case MIBranch, MIBranchCC, MIDispatch:
		return fmt.Sprintf("%-8s @%04x", w.Op(), w.Addr())
	default:
		return w.Op().String()
	}
}

// TUE control bits for the control field: one bit per selector branch and
// register enable, named after Figure 5.
const (
	CtrlSel1Left uint32 = 1 << iota
	CtrlSel1Right
	CtrlSel2Left
	CtrlSel2Right
	CtrlSel3Left
	CtrlSel3Right
	CtrlSel4Left
	CtrlSel4Right
	CtrlSel5Left
	CtrlSel5Right
	CtrlSel6Left
	CtrlSel6Right
	CtrlReg1En
	CtrlReg3En
	CtrlDBMemWrite
	CtrlQMemWrite
	CtrlCompareEn
)

// controlBitsFor derives the control field for one cycle of an operation
// from its routes — purely documentary, but it makes disassembly faithful.
func controlBitsFor(op OpCode, cycle int) uint32 {
	var c uint32
	ops := Operations()
	def, ok := ops[op]
	if !ok || cycle >= len(def.Cycles) {
		return 0
	}
	steps := append([]hw.Component{}, def.Cycles[cycle].DBRoute.Steps...)
	steps = append(steps, def.Cycles[cycle].QueryRoute.Steps...)
	for _, comp := range steps {
		switch comp.Name {
		case "Sel1":
			c |= CtrlSel1Left
		case "Sel2":
			c |= CtrlSel2Left
		case "Sel3":
			c |= CtrlSel3Right
		case "Sel4":
			c |= CtrlSel4Left
		case "Sel5":
			c |= CtrlSel5Right
		case "Sel6":
			c |= CtrlSel6Left
		case "Reg1":
			c |= CtrlReg1En
		case "Reg3":
			c |= CtrlReg3En
		}
	}
	if cycle == len(def.Cycles)-1 {
		switch def.Final.Name {
		case "comparison":
			c |= CtrlCompareEn
		case "DB Memory write":
			c |= CtrlDBMemWrite
		case "Query Memory write":
			c |= CtrlQMemWrite
		}
	}
	return c
}

// MapROM is the jump-vector table addressed by the ⟨db type, query type⟩
// pair: "Depending on the combination of the type fields, different
// microprogram routines are invoked" (§3.1).
type MapROM struct {
	vectors map[uint16]uint16 // (dbClass<<8 | qClass) → routine address
}

// Type classes the Map ROM distinguishes (Appendix 1's three categories
// plus the variable sub-kinds the routines need).
const (
	ClassAnon uint8 = iota
	ClassFirstVar
	ClassSubVar
	ClassSimple
	ClassComplex
)

// NewMapROM returns an empty ROM.
func NewMapROM() *MapROM { return &MapROM{vectors: make(map[uint16]uint16)} }

// Set installs a jump vector.
func (m *MapROM) Set(dbClass, qClass uint8, addr uint16) {
	m.vectors[uint16(dbClass)<<8|uint16(qClass)] = addr
}

// Lookup returns the routine address for a type-class pair.
func (m *MapROM) Lookup(dbClass, qClass uint8) (uint16, bool) {
	a, ok := m.vectors[uint16(dbClass)<<8|uint16(qClass)]
	return a, ok
}

// Len reports the number of installed vectors.
func (m *MapROM) Len() int { return len(m.vectors) }

// Program is an assembled microprogram: the WCS image, the Map ROM, and
// the behavioural flags the routines implement.
type Program struct {
	Name   string
	Words  []Microword
	ROM    *MapROM
	Config Microprogram
	// Routines maps routine labels to WCS addresses (for diagnostics).
	Routines map[string]uint16
}

// Listing renders the assembled program like a microassembler listing.
func (p *Program) Listing() string {
	labels := make(map[uint16]string, len(p.Routines))
	for name, addr := range p.Routines {
		labels[addr] = name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; microprogram %q — %d words of %d\n", p.Name, len(p.Words), WCSWords)
	for i, w := range p.Words {
		if l, ok := labels[uint16(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %04x  %016x  %s\n", i, uint64(w), w)
	}
	return b.String()
}

// Assemble builds the WCS image for a behavioural microprogram: a polling
// loop, the Map ROM dispatch, and one routine per hardware operation (each
// EXEC cycle per figure cycle), exactly the structure §3.1 describes.
func Assemble(cfg Microprogram) (*Program, error) {
	p := &Program{
		Name:     cfg.Name,
		ROM:      NewMapROM(),
		Config:   cfg,
		Routines: make(map[string]uint16),
	}
	emit := func(w Microword) uint16 {
		addr := uint16(len(p.Words))
		p.Words = append(p.Words, w)
		return addr
	}
	label := func(name string) uint16 {
		addr := uint16(len(p.Words))
		p.Routines[name] = addr
		return addr
	}

	// Entry: poll for a clause in the Double Buffer, then walk arguments
	// by dispatching through the Map ROM; DISPATCH with no matching
	// vector (end of clause) falls through to ACCEPT.
	label("poll")
	emit(MakeMicroword(MIPoll, 0, 0, 0))
	walk := label("walk")
	emit(MakeMicroword(MIDispatch, 0, walk, 0))
	emit(MakeMicroword(MIAccept, 0, 0, 0))
	label("reject")
	rejectAddr := emit(MakeMicroword(MIReject, 0, 0, 0))

	// One routine per hardware operation: EXEC each figure cycle, then
	// branch on the comparator's HIT bit — back to the walk on hit,
	// to reject otherwise. Store operations succeed unconditionally.
	ops := Operations()
	routineOrder := []OpCode{OpMatch, OpDBStore, OpQueryStore, OpDBFetch,
		OpQueryFetch, OpDBCrossBoundFetch, OpQueryCrossBoundFetch}
	addrs := make(map[OpCode]uint16, len(routineOrder))
	for _, code := range routineOrder {
		def := ops[code]
		addrs[code] = label(def.Name)
		for cyc := range def.Cycles {
			emit(MakeMicroword(MIExec, uint8(code), 0, controlBitsFor(code, cyc)))
		}
		switch code {
		case OpDBStore, OpQueryStore:
			emit(MakeMicroword(MIBranch, 0, walk, 0))
		default:
			emit(MakeMicroword(MIBranchCC, 1 /* HIT */, walk, 0))
			emit(MakeMicroword(MIBranch, 0, rejectAddr, 0))
		}
	}

	// Complex-term element loop: load counters, per-element dispatch,
	// decrement until either counter is zero (§3.1).
	label("elements")
	emit(MakeMicroword(MILoadCounters, 0, 0, 0))
	elemLoop := label("element_loop")
	emit(MakeMicroword(MIDispatch, 0, elemLoop, 0))
	emit(MakeMicroword(MIDecCounters, 0, 0, 0))
	emit(MakeMicroword(MIBranchCC, 0 /* counters zero */, walk, 0))
	emit(MakeMicroword(MIBranch, 0, elemLoop, 0))
	emit(MakeMicroword(MIHalt, 0, 0, 0))

	if len(p.Words) > WCSWords {
		return nil, fmt.Errorf("fs2: microprogram %q needs %d words, WCS holds %d", cfg.Name, len(p.Words), WCSWords)
	}

	// Map ROM vectors: the type-pair dispatch of the matching algorithm.
	// Variable cases route to the store/fetch routines; concrete pairs to
	// MATCH; complex pairs to the element loop (levels ≥ 3 only).
	m := p.ROM
	for _, q := range []uint8{ClassAnon, ClassFirstVar, ClassSubVar, ClassSimple, ClassComplex} {
		m.Set(ClassFirstVar, q, addrs[OpDBStore])
		m.Set(ClassSubVar, q, addrs[OpDBFetch])
	}
	m.Set(ClassSimple, ClassFirstVar, addrs[OpQueryStore])
	m.Set(ClassComplex, ClassFirstVar, addrs[OpQueryStore])
	m.Set(ClassSimple, ClassSubVar, addrs[OpQueryFetch])
	m.Set(ClassComplex, ClassSubVar, addrs[OpQueryFetch])
	m.Set(ClassSimple, ClassSimple, addrs[OpMatch])
	if cfg.DescendElements {
		m.Set(ClassComplex, ClassComplex, p.Routines["elements"])
	} else {
		m.Set(ClassComplex, ClassComplex, addrs[OpMatch])
	}
	return p, nil
}

// LoadAssembled assembles cfg and loads the image through the §3 protocol
// word by word, verifying capacity. It then installs the behavioural
// configuration exactly as LoadMicroprogram does. Requires
// Microprogramming mode.
func (e *Engine) LoadAssembled(cfg Microprogram) (*Program, error) {
	if e.mode != ModeMicroprogramming {
		return nil, fmt.Errorf("%w: LoadAssembled in %v", ErrWrongMode, e.mode)
	}
	prog, err := Assemble(cfg)
	if err != nil {
		return nil, err
	}
	e.wcs = e.wcs[:0]
	for _, w := range prog.Words {
		if len(e.wcs) >= WCSWords {
			return nil, fmt.Errorf("fs2: WCS overflow during load")
		}
		e.wcs = append(e.wcs, w)
	}
	e.program = prog
	e.mp = cfg
	e.loaded = true
	return prog, nil
}

// WCSImage returns a copy of the loaded control-store image (empty when
// the microprogram was installed behaviourally via LoadMicroprogram).
func (e *Engine) WCSImage() []Microword {
	out := make([]Microword, len(e.wcs))
	copy(out, e.wcs)
	return out
}

// Program returns the assembled program if LoadAssembled was used.
func (e *Engine) Program() *Program { return e.program }
