package fs2

import (
	"testing"
	"time"

	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/symtab"
	"clare/internal/term"
)

// TestTable1 pins the derived execution times to the paper's Table 1.
func TestTable1(t *testing.T) {
	want := map[OpCode]time.Duration{
		OpMatch:                105 * time.Nanosecond,
		OpDBStore:              95 * time.Nanosecond,
		OpQueryStore:           115 * time.Nanosecond,
		OpDBFetch:              105 * time.Nanosecond,
		OpQueryFetch:           170 * time.Nanosecond,
		OpDBCrossBoundFetch:    170 * time.Nanosecond,
		OpQueryCrossBoundFetch: 235 * time.Nanosecond,
	}
	got := Table1()
	for op, w := range want {
		if got[op] != w {
			t.Errorf("Table 1 %v = %v, want %v", op, got[op], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("Table 1 has %d operations, want %d", len(got), len(want))
	}
}

// TestFigureRouteTimings checks the per-route intermediate numbers the
// figures print.
func TestFigureRouteTimings(t *testing.T) {
	ops := Operations()
	ns := func(d time.Duration) int64 { return d.Nanoseconds() }

	m := ops[OpMatch]
	if ns(m.Cycles[0].DBRoute.Time()) != 40 || ns(m.Cycles[0].QueryRoute.Time()) != 75 {
		t.Errorf("MATCH routes = %d/%d ns, want 40/75 (Figure 6)",
			ns(m.Cycles[0].DBRoute.Time()), ns(m.Cycles[0].QueryRoute.Time()))
	}
	ds := ops[OpDBStore]
	if ns(ds.Cycles[0].DBRoute.Time()) != 60 || ns(ds.Cycles[0].QueryRoute.Time()) != 75 {
		t.Errorf("DB_STORE routes = %d/%d ns, want 60/75 (Figure 7)",
			ns(ds.Cycles[0].DBRoute.Time()), ns(ds.Cycles[0].QueryRoute.Time()))
	}
	qs := ops[OpQueryStore]
	if ns(qs.Cycles[0].DBRoute.Time()) != 80 || ns(qs.Cycles[0].QueryRoute.Time()) != 20 {
		t.Errorf("QUERY_STORE routes = %d/%d ns, want 80/20 (Figure 8)",
			ns(qs.Cycles[0].DBRoute.Time()), ns(qs.Cycles[0].QueryRoute.Time()))
	}
	df := ops[OpDBFetch]
	if ns(df.Cycles[0].DBRoute.Time()) != 65 || ns(df.Cycles[0].QueryRoute.Time()) != 75 {
		t.Errorf("DB_FETCH routes = %d/%d ns, want 65/75 (Figure 9)",
			ns(df.Cycles[0].DBRoute.Time()), ns(df.Cycles[0].QueryRoute.Time()))
	}
	qf := ops[OpQueryFetch]
	if ns(qf.Cycles[0].QueryRoute.Time()) != 120 || ns(qf.Cycles[1].QueryRoute.Time()) != 20 {
		t.Errorf("QUERY_FETCH query routes = %d/%d ns, want 120/20 (Figure 10)",
			ns(qf.Cycles[0].QueryRoute.Time()), ns(qf.Cycles[1].QueryRoute.Time()))
	}
	dx := ops[OpDBCrossBoundFetch]
	if ns(dx.Cycles[0].QueryRoute.Time()) != 75 || ns(dx.Cycles[1].DBRoute.Time()) != 65 {
		t.Errorf("DB_XB_FETCH cycle routes = %d/%d ns, want 75/65 (Figure 11)",
			ns(dx.Cycles[0].QueryRoute.Time()), ns(dx.Cycles[1].DBRoute.Time()))
	}
	qx := ops[OpQueryCrossBoundFetch]
	if ns(qx.Cycles[0].QueryRoute.Time()) != 95 ||
		ns(qx.Cycles[1].QueryRoute.Time()) != 65 ||
		ns(qx.Cycles[2].QueryRoute.Time()) != 45 {
		t.Errorf("QUERY_XB_FETCH cycle routes = %d/%d/%d ns, want 95/65/45 (Figure 12)",
			ns(qx.Cycles[0].QueryRoute.Time()), ns(qx.Cycles[1].QueryRoute.Time()),
			ns(qx.Cycles[2].QueryRoute.Time()))
	}
}

func TestWorstCase(t *testing.T) {
	op, d := WorstCaseOp()
	if op != OpQueryCrossBoundFetch || d != 235*time.Nanosecond {
		t.Errorf("worst case = %v %v, want QUERY_CROSS_BOUND_FETCH 235ns", op, d)
	}
	rate := WorstCaseRate()
	if rate < 4.2e6 || rate > 4.3e6 {
		t.Errorf("worst-case rate = %.3g B/s, want ≈4.25 MB/s", rate)
	}
}

func TestModeBits(t *testing.T) {
	// §3's operational-mode table.
	cases := []struct {
		m      Mode
		b0, b1 uint8
	}{
		{ModeReadResult, 0, 0},
		{ModeSearch, 0, 1},
		{ModeMicroprogramming, 1, 0},
		{ModeSetQuery, 1, 1},
	}
	for _, c := range cases {
		b0, b1 := c.m.ControlBits()
		if b0 != c.b0 || b1 != c.b1 {
			t.Errorf("%v bits = %d,%d want %d,%d", c.m, b0, b1, c.b0, c.b1)
		}
		if ModeFromBits(c.b0, c.b1) != c.m {
			t.Errorf("ModeFromBits(%d,%d) = %v", c.b0, c.b1, ModeFromBits(c.b0, c.b1))
		}
	}
}

// rig builds an engine with a loaded query, following the §3 protocol:
// microprogram → set query → search.
type rig struct {
	e   *Engine
	enc *pif.Encoder
}

func newRig(t *testing.T, query string, mp Microprogram) *rig {
	t.Helper()
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	e := New()
	e.SetMode(ModeMicroprogramming)
	if err := e.LoadMicroprogram(mp); err != nil {
		t.Fatal(err)
	}
	q, err := enc.Encode(parse.MustTerm(query), pif.QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMode(ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	e.SetMode(ModeSearch)
	return &rig{e: e, enc: enc}
}

func (r *rig) records(t *testing.T, heads ...string) []Record {
	t.Helper()
	recs := make([]Record, len(heads))
	for i, h := range heads {
		enc, err := r.enc.Encode(parse.MustTerm(h), pif.DBSide)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = Record{Addr: uint32(i), Enc: enc}
	}
	return recs
}

func (r *rig) search(t *testing.T, heads ...string) SearchResult {
	t.Helper()
	res, err := r.e.Search(r.records(t, heads...))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestModeProtocolEnforced(t *testing.T) {
	e := New()
	if err := e.LoadMicroprogram(MPLevel3XB); err == nil {
		t.Error("LoadMicroprogram outside Microprogramming mode should fail")
	}
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	q, _ := enc.Encode(parse.MustTerm("p(a)"), pif.QuerySide)
	if err := e.SetQuery(q); err == nil {
		t.Error("SetQuery outside Set Query mode should fail")
	}
	if _, err := e.Search(nil); err == nil {
		t.Error("Search outside Search mode should fail")
	}
	e.SetMode(ModeSearch)
	if _, err := e.Search(nil); err == nil {
		t.Error("Search without microprogram should fail")
	}
	e.SetMode(ModeMicroprogramming)
	if err := e.LoadMicroprogram(MPLevel3XB); err != nil {
		t.Fatal(err)
	}
	e.SetMode(ModeSearch)
	if _, err := e.Search(nil); err == nil {
		t.Error("Search without query should fail")
	}
	// DB-side encodings are rejected as queries.
	e.SetMode(ModeSetQuery)
	dbq, _ := enc.Encode(parse.MustTerm("p(X)"), pif.DBSide)
	if err := e.SetQuery(dbq); err == nil {
		t.Error("SetQuery with DB-side encoding should fail")
	}
}

func TestGroundMatch(t *testing.T) {
	r := newRig(t, "likes(mary, wine)", MPLevel3XB)
	res := r.search(t, "likes(mary, wine)", "likes(john, wine)", "likes(mary, beer)")
	if len(res.Matches) != 1 || res.Matches[0] != 0 {
		t.Errorf("matches = %v, want [0]", res.Matches)
	}
	if !r.e.MatchFound() {
		t.Error("control bit b7 should be set after a match")
	}
	r.e.SetMode(ModeReadResult)
	addrs, err := r.e.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != 0 {
		t.Errorf("ReadResult = %v", addrs)
	}
}

func TestVariableMatch(t *testing.T) {
	r := newRig(t, "p(X, 1)", MPLevel3XB)
	res := r.search(t, "p(a, 1)", "p(b, 2)", "p(C, D)", "p(k, 1)")
	want := []uint32{0, 2, 3}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
}

// TestSharedVariableCrossBinding is the headline behaviour: FS2's
// cross-binding check rejects married_couple(fred, wilma) for the query
// married_couple(S, S) — the false drops FS1 cannot avoid (§2.1).
func TestSharedVariableCrossBinding(t *testing.T) {
	r := newRig(t, "married_couple(S, S)", MPLevel3XB)
	res := r.search(t,
		"married_couple(fred, wilma)",
		"married_couple(pat, pat)",
		"married_couple(A, A)",
		"married_couple(B, C)", // unifies: B=C=S
		"married_couple(x, y)",
	)
	want := []uint32{1, 2, 3}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
	// Without cross-binding every clause survives.
	r2 := newRig(t, "married_couple(S, S)", MPLevel3)
	res2 := r2.search(t,
		"married_couple(fred, wilma)",
		"married_couple(pat, pat)",
	)
	if len(res2.Matches) != 2 {
		t.Errorf("without XB matches = %v, want all", res2.Matches)
	}
}

// TestPaperCrossBindingExample is §3.3.6's own example: query f(X,a,b)
// against clause f(A,a,A).
func TestPaperCrossBindingExample(t *testing.T) {
	r := newRig(t, "f(X, a, b)", MPLevel3XB)
	res := r.search(t, "f(A, a, A)")
	if len(res.Matches) != 1 {
		t.Error("f(X,a,b) vs f(A,a,A) unifies (X=A=b) and must pass")
	}
	if r.e.Stats.OpCount(OpDBCrossBoundFetch)+r.e.Stats.OpCount(OpQueryCrossBoundFetch) == 0 {
		t.Error("the example should exercise a cross-bound fetch")
	}
	// And the rejecting variant.
	r2 := newRig(t, "f(c, a, b)", MPLevel3XB)
	res2 := r2.search(t, "f(A, a, A)")
	if len(res2.Matches) != 0 {
		t.Error("f(c,a,b) vs f(A,a,A) cannot unify; cross-binding must reject")
	}
}

func TestOperationAccounting(t *testing.T) {
	r := newRig(t, "p(a, b)", MPLevel3XB)
	r.search(t, "p(a, b)")
	if got := r.e.Stats.OpCount(OpMatch); got != 2 {
		t.Errorf("MATCH count = %d, want 2 (two ground argument pairs)", got)
	}
	if r.e.Stats.MatchTime != 2*105*time.Nanosecond {
		t.Errorf("match time = %v, want 210ns", r.e.Stats.MatchTime)
	}

	r2 := newRig(t, "p(a)", MPLevel3XB)
	r2.search(t, "p(X)") // first DB variable → DB_STORE
	if got := r2.e.Stats.OpCount(OpDBStore); got != 1 {
		t.Errorf("DB_STORE count = %d, want 1", got)
	}

	r3 := newRig(t, "p(X)", MPLevel3XB)
	r3.search(t, "p(a)") // first query variable → QUERY_STORE
	if got := r3.e.Stats.OpCount(OpQueryStore); got != 1 {
		t.Errorf("QUERY_STORE count = %d, want 1", got)
	}

	r4 := newRig(t, "p(a, a)", MPLevel3XB)
	r4.search(t, "p(A, A)") // store then fetch+compare
	if got := r4.e.Stats.OpCount(OpDBFetch); got != 1 {
		t.Errorf("DB_FETCH count = %d, want 1", got)
	}

	r5 := newRig(t, "p(X, X)", MPLevel3XB)
	r5.search(t, "p(a, a)") // query store then query fetch
	if got := r5.e.Stats.OpCount(OpQueryFetch); got != 1 {
		t.Errorf("QUERY_FETCH count = %d, want 1", got)
	}
}

func TestStructureMatching(t *testing.T) {
	r := newRig(t, "p(f(1, 2))", MPLevel3XB)
	res := r.search(t,
		"p(f(1, 2))", // exact
		"p(f(1, 3))", // first-level element differs → reject
		"p(f(1))",    // arity differs → reject
		"p(g(1, 2))", // functor differs → reject
		"p(f(X, 2))", // var element → pass
	)
	want := []uint32{0, 4}
	if len(res.Matches) != 2 || res.Matches[0] != want[0] || res.Matches[1] != want[1] {
		t.Errorf("matches = %v, want %v", res.Matches, want)
	}
}

func TestLevel3DepthLimit(t *testing.T) {
	// Differences at depth 2 are invisible to level 3 (false drops), but
	// visible to nothing in the hardware — they go to full unification.
	r := newRig(t, "p(f(g(1)))", MPLevel3XB)
	res := r.search(t, "p(f(g(1)))", "p(f(g(2)))", "p(f(h(1)))")
	// g(2): depth-2 difference → passes (false drop). h(1): first-level
	// element functor differs → rejected.
	want := []uint32{0, 1}
	if len(res.Matches) != 2 || res.Matches[0] != want[0] || res.Matches[1] != want[1] {
		t.Errorf("matches = %v, want %v", res.Matches, want)
	}
}

func TestListMatching(t *testing.T) {
	r := newRig(t, "p([1, 2, 3])", MPLevel3XB)
	res := r.search(t,
		"p([1, 2, 3])",  // exact
		"p([1, 2])",     // closed lengths differ → reject
		"p([1, 2, 4])",  // element differs → reject
		"p([1, 2, X])",  // var element → pass
		"p([1, 2 | T])", // open list, fits → pass
		"p(f(1, 2, 3))", // structure, not list → reject
	)
	want := []uint32{0, 3, 4}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
}

func TestUnlimitedListQueries(t *testing.T) {
	r := newRig(t, "p([a, b | T])", MPLevel3XB)
	res := r.search(t,
		"p([a, b, c, d])", // open 2 ≤ closed 4 → pass
		"p([a])",          // open 2 > closed 1 → reject
		"p([a, x, y])",    // second element differs → reject
		"p([a, b])",       // exactly the prefix → pass
	)
	want := []uint32{0, 3}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
}

func TestMicroprogramLevels(t *testing.T) {
	heads := []string{
		"p(a)",    // true unifier for p(a)
		"p(b)",    // same type, different content
		"p(1)",    // different type
		"p(f(x))", // complex
	}
	// Level 1: type only — p(b) passes, p(1) and p(f(x)) rejected.
	r1 := newRig(t, "p(a)", MPLevel1)
	res1 := r1.search(t, heads...)
	if len(res1.Matches) != 2 || res1.Matches[0] != 0 || res1.Matches[1] != 1 {
		t.Errorf("level 1 matches = %v, want [0 1]", res1.Matches)
	}
	// Level 2: content too — only p(a).
	r2 := newRig(t, "p(a)", MPLevel2)
	res2 := r2.search(t, heads...)
	if len(res2.Matches) != 1 || res2.Matches[0] != 0 {
		t.Errorf("level 2 matches = %v, want [0]", res2.Matches)
	}
	// Level 2 vs 3 on first-level elements.
	heads2 := []string{"q(f(1))", "q(f(2))", "q(g(1))"}
	r3 := newRig(t, "q(f(1))", MPLevel2)
	res3 := r3.search(t, heads2...)
	if len(res3.Matches) != 2 { // level 2 sees functor f≠g but not elements
		t.Errorf("level 2 matches = %v, want f(1) and f(2)", res3.Matches)
	}
	r4 := newRig(t, "q(f(1))", MPLevel3)
	res4 := r4.search(t, heads2...)
	if len(res4.Matches) != 1 {
		t.Errorf("level 3 matches = %v, want only f(1)", res4.Matches)
	}
}

func TestResultMemoryLimits(t *testing.T) {
	// More satisfiers than the 6-bit counter can address.
	r := newRig(t, "n(X)", MPLevel3XB)
	heads := make([]string, ResultSlots+10)
	for i := range heads {
		heads[i] = "n(k)"
	}
	res := r.search(t, heads...)
	if len(res.Matches) != ResultSlots {
		t.Errorf("matches = %d, want capped at %d", len(res.Matches), ResultSlots)
	}
	if !res.Overflowed || r.e.Stats.ResultOverflows != 10 {
		t.Errorf("overflow accounting = %v / %d", res.Overflowed, r.e.Stats.ResultOverflows)
	}
}

func TestDoubleBufferToggles(t *testing.T) {
	r := newRig(t, "p(a)", MPLevel3XB)
	r.search(t, "p(a)", "p(b)", "p(c)")
	if r.e.buffer.Loads != 3 || r.e.buffer.Toggles != 3 {
		t.Errorf("buffer loads/toggles = %d/%d, want 3/3", r.e.buffer.Loads, r.e.buffer.Toggles)
	}
}

func TestAnonymousVariableSkips(t *testing.T) {
	r := newRig(t, "p(_, 1)", MPLevel3XB)
	res := r.search(t, "p(anything, 1)", "p(other, 2)")
	if len(res.Matches) != 1 || res.Matches[0] != 0 {
		t.Errorf("matches = %v, want [0]", res.Matches)
	}
}

func TestWrongFunctorOrArityRejected(t *testing.T) {
	r := newRig(t, "p(a)", MPLevel3XB)
	res := r.search(t, "q(a)", "p(a, b)", "p(a)")
	if len(res.Matches) != 1 || res.Matches[0] != 2 {
		t.Errorf("matches = %v, want [2]", res.Matches)
	}
}

func TestStatsAccumulateAcrossSearches(t *testing.T) {
	r := newRig(t, "p(a)", MPLevel3XB)
	r.search(t, "p(a)")
	r.search(t, "p(b)")
	if r.e.Stats.ClausesExamined != 2 {
		t.Errorf("ClausesExamined = %d", r.e.Stats.ClausesExamined)
	}
	if r.e.Stats.ClausesMatched != 1 {
		t.Errorf("ClausesMatched = %d", r.e.Stats.ClausesMatched)
	}
	if r.e.Stats.BytesExamined != 8 { // two 1-word clauses
		t.Errorf("BytesExamined = %d", r.e.Stats.BytesExamined)
	}
	if r.e.Stats.TotalOps() == 0 {
		t.Error("TotalOps should be positive")
	}
}

func TestBreakdownsCoverAllFigures(t *testing.T) {
	bds := Breakdowns()
	if len(bds) != 7 {
		t.Fatalf("breakdowns = %d, want 7", len(bds))
	}
	figs := map[int]bool{}
	for _, op := range bds {
		figs[op.Figure] = true
	}
	for f := 6; f <= 12; f++ {
		if !figs[f] {
			t.Errorf("figure %d missing from breakdowns", f)
		}
	}
}

func TestSearchResultMatchTimePerSearch(t *testing.T) {
	r := newRig(t, "p(a, b, c)", MPLevel3XB)
	res1 := r.search(t, "p(a, b, c)")
	res2 := r.search(t, "p(a, b, c)")
	if res1.MatchTime != res2.MatchTime || res1.MatchTime != 3*105*time.Nanosecond {
		t.Errorf("per-search times = %v, %v; want 315ns each", res1.MatchTime, res2.MatchTime)
	}
}

func TestBigStructurePointers(t *testing.T) {
	// Arity-40 structures: pointer form at top level.
	args := make([]string, 40)
	for i := range args {
		args[i] = "k"
	}
	big := "big(" + args[0]
	for _, a := range args[1:] {
		big += "," + a
	}
	big += ")"

	r := newRig(t, "p("+big+")", MPLevel3XB)
	res := r.search(t, "p("+big+")", "p(f(1))", "p(X)")
	// The exact pointer pair passes (functor+>31 arity agree); f(1) has
	// known arity 1 vs >31 → rejected; the variable passes.
	want := []uint32{0, 2}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
}

func TestQueryVarBindingsResetBetweenClauses(t *testing.T) {
	// X binds differently per clause; bindings must not leak across.
	r := newRig(t, "p(X, X)", MPLevel3XB)
	res := r.search(t, "p(a, a)", "p(b, b)", "p(a, b)")
	want := []uint32{0, 1}
	if len(res.Matches) != 2 || res.Matches[0] != want[0] || res.Matches[1] != want[1] {
		t.Errorf("matches = %v, want %v", res.Matches, want)
	}
}

func TestNestedListElements(t *testing.T) {
	r := newRig(t, "p([[1,2],[3]])", MPLevel3XB)
	res := r.search(t,
		"p([[1,2],[3]])",   // shapes agree → pass
		"p([[1,2],[3,4]])", // nested arity differs → reject (shape visible in tag)
		"p([[9,9],[3]])",   // nested CONTENT differs → pass (level 3 false drop)
		"p([[1,2]])",       // outer length differs → reject
	)
	want := []uint32{0, 2}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
}

func TestFloatsAndInts(t *testing.T) {
	r := newRig(t, "p(2.5, 7)", MPLevel3XB)
	res := r.search(t,
		"p(2.5, 7)", // exact
		"p(2.5, 8)", // int differs
		"p(3.5, 7)", // float differs
		"p(7, 2.5)", // types swapped
	)
	if len(res.Matches) != 1 || res.Matches[0] != 0 {
		t.Errorf("matches = %v, want [0]", res.Matches)
	}
}

func TestNegativeIntegers(t *testing.T) {
	r := newRig(t, "p(-5)", MPLevel3XB)
	res := r.search(t, "p(-5)", "p(5)", "p(-6)")
	if len(res.Matches) != 1 || res.Matches[0] != 0 {
		t.Errorf("matches = %v, want [0]", res.Matches)
	}
}

func TestTermRoundTripHelper(t *testing.T) {
	// Guard the helper itself: term package Cons behaviour under rename
	// used throughout the rig.
	tt := parse.MustTerm("p(X, X)")
	if !term.HasSharedVars(tt) {
		t.Fatal("rig helper sanity failed")
	}
}
