package fs2

// Cross-validation of the hardware simulation against the software
// reference (package ptu) and the unification oracle (package unify):
//
//  1. SOUNDNESS: if query and head unify, FS2 must pass the clause —
//     under every microprogram.
//  2. REFERENCE AGREEMENT: whenever the ptu level-3+XB reference passes a
//     pair, FS2 must pass it too (FS2 works on PIF words and sees strictly
//     less than the term-level reference, so it may pass more — never
//     less).

import (
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/ptu"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/unify"
)

// fs2Match runs one query/head pair through a fresh engine.
func fs2Match(t testing.TB, query, head term.Term, mp Microprogram) bool {
	t.Helper()
	syms := symtab.New()
	enc := pif.NewEncoder(syms)
	e := New()
	e.SetMode(ModeMicroprogramming)
	if err := e.LoadMicroprogram(mp); err != nil {
		t.Fatal(err)
	}
	q, err := enc.Encode(query, pif.QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	e.SetMode(ModeSetQuery)
	if err := e.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	h, err := enc.Encode(head, pif.DBSide)
	if err != nil {
		t.Fatal(err)
	}
	if h.SizeBytes() > ResultSlotBytes {
		// The compiled-clause store rejects records beyond one Result
		// Memory slot (clausefile.MaxRecordBytes), so the board never
		// sees them; the generator occasionally builds such monsters.
		return true
	}
	e.SetMode(ModeSearch)
	res, err := e.Search([]Record{{Addr: 0, Enc: h}})
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Matches) == 1
}

var crossValPairs = []struct{ q, h string }{
	{"p(a)", "p(a)"},
	{"p(a)", "p(b)"},
	{"p(X)", "p(a)"},
	{"p(a)", "p(Y)"},
	{"p(X, X)", "p(a, a)"},
	{"p(X, X)", "p(a, b)"},
	{"p(X, X)", "p(A, A)"},
	{"p(X, X)", "p(A, b)"},
	{"p(X, Y)", "p(A, A)"},
	{"f(X, a, b)", "f(A, a, A)"},
	{"f(c, a, b)", "f(A, a, A)"},
	{"p(f(1))", "p(f(1))"},
	{"p(f(1))", "p(f(2))"},
	{"p(f(g(1)))", "p(f(g(2)))"},
	{"p([1,2,3])", "p([1,2,3])"},
	{"p([1,2,3])", "p([1,2])"},
	{"p([1,2|T])", "p([1,2,3,4])"},
	{"p([1,2|T])", "p([1])"},
	{"p([X|T], X)", "p([a,b], a)"},
	{"p([X|T], X)", "p([a,b], c)"},
	{"p(_, _)", "p(q, r)"},
	{"mc(S, S)", "mc(fred, wilma)"},
	{"mc(S, S)", "mc(pat, pat)"},
	{"p(2.5)", "p(2.5)"},
	{"p(2.5)", "p(3)"},
	{"p(X, f(X))", "p(a, f(a))"},
	{"p(X, f(X))", "p(a, f(b))"},
	{"p(X, f(X))", "p(A, f(B))"},
}

func TestSoundnessAgainstUnification(t *testing.T) {
	mps := []Microprogram{MPLevel1, MPLevel2, MPLevel3, MPLevel3XB}
	for _, pr := range crossValPairs {
		qt, ht := parse.MustTerm(pr.q), parse.MustTerm(pr.h)
		if !unify.Unifiable(qt, term.Rename(ht)) {
			continue
		}
		for _, mp := range mps {
			if !fs2Match(t, qt, ht, mp) {
				t.Errorf("%s: FS2 rejected true unifier (%s, %s)", mp.Name, pr.q, pr.h)
			}
		}
	}
}

func TestAgreementWithPTUReference(t *testing.T) {
	for _, pr := range crossValPairs {
		qt, ht := parse.MustTerm(pr.q), parse.MustTerm(pr.h)
		ref := ptu.Match(qt, ht, ptu.FS2Config)
		got := fs2Match(t, qt, ht, MPLevel3XB)
		if ref && !got {
			t.Errorf("reference passes (%s, %s) but FS2 rejects", pr.q, pr.h)
		}
		// The interesting diagnostic: where they disagree, FS2 must be
		// the more permissive one AND the pair must be a non-unifier.
		if got && !ref {
			if unify.Unifiable(qt, term.Rename(ht)) {
				t.Errorf("FS2 passes a unifier (%s, %s) the reference rejects — reference unsound?", pr.q, pr.h)
			}
		}
	}
}

// TestQuickSoundness drives generated term pairs through the full chain:
// parse-free generation → PIF encode → FS2 search, checked against the
// unification oracle.
func TestQuickSoundness(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0), genXTerm(int(s2), 1))
		ht := term.New("p", genXTerm(int(s2), 2), genXTerm(int(s1), 3))
		if !unify.Unifiable(qt, term.Rename(ht)) {
			return true
		}
		return fs2Match(t, qt, ht, MPLevel3XB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickReferenceAgreement: ptu-pass ⇒ fs2-pass over generated pairs.
func TestQuickReferenceAgreement(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0), genXTerm(int(s2), 1))
		ht := term.New("p", genXTerm(int(s2), 2), genXTerm(int(s1), 3))
		if !ptu.Match(qt, ht, ptu.FS2Config) {
			return true
		}
		return fs2Match(t, qt, ht, MPLevel3XB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevelMonotone: over generated pairs, each stronger microprogram
// passes a subset of the weaker one's survivors.
func TestQuickLevelMonotone(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0))
		ht := term.New("p", genXTerm(int(s2), 1))
		l1 := fs2Match(t, qt, ht, MPLevel1)
		l2 := fs2Match(t, qt, ht, MPLevel2)
		l3 := fs2Match(t, qt, ht, MPLevel3)
		xb := fs2Match(t, qt, ht, MPLevel3XB)
		// l2 ⇒ l1, l3 ⇒ l2, xb ⇒ l3.
		return (!l2 || l1) && (!l3 || l2) && (!xb || l3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// genXTerm builds deterministic terms with shared variables and every PIF
// category, from a seed.
func genXTerm(seed, salt int) term.Term {
	v := term.NewVar("V")
	switch (seed + salt) % 10 {
	case 0:
		return term.Atom([]string{"a", "b", "c"}[seed%3])
	case 1:
		return term.Int(int64(seed%7 - 3))
	case 2:
		return term.Float(float64(seed%3) + 0.25)
	case 3:
		return v
	case 4:
		return term.New("f", genXTerm(seed/2, salt+1))
	case 5:
		return term.New("g", v, v)
	case 6:
		return term.List(genXTerm(seed/2, salt+1), genXTerm(seed/3, salt+2))
	case 7:
		return term.ListTail(term.NewVar("T"), genXTerm(seed/2, salt+1))
	case 8:
		return term.New("h", genXTerm(seed/3, salt+1), genXTerm(seed/5, salt+2), v)
	default:
		return term.NewVar("_")
	}
}
