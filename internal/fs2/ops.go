// Package fs2 simulates the second-stage CLARE filter (§3): a
// microprogram-sequenced partial test unification engine consisting of the
// Writable Control Store (WCS), the Test Unification Engine (TUE), the
// Double Buffer and the Result Memory.
//
// The simulation is route- and cycle-accurate at the level the paper
// reports: every hardware operation carries the exact datapath routes of
// Figures 6–12, so Table 1 falls out of the component delays rather than
// being hard-coded; and the matching behaviour implements the Figure 1
// level-3 algorithm with cross-binding checks directly on PIF words, the
// same representation the hardware walks.
package fs2

import (
	"time"

	"clare/internal/hw"
)

// OpCode names one of the seven FS2 hardware operations (§3.3.1–3.3.7).
type OpCode uint8

const (
	// OpMatch compares two simple/complex-header words (§3.3.1).
	OpMatch OpCode = iota
	// OpDBStore handles a first-occurrence database variable (§3.3.2).
	OpDBStore
	// OpQueryStore handles a first-occurrence query variable (§3.3.3).
	OpQueryStore
	// OpDBFetch handles a subsequent database variable (§3.3.4).
	OpDBFetch
	// OpQueryFetch handles a subsequent query variable (§3.3.5).
	OpQueryFetch
	// OpDBCrossBoundFetch chases a database variable bound to a query
	// variable (§3.3.6).
	OpDBCrossBoundFetch
	// OpQueryCrossBoundFetch chases a query variable bound to a database
	// variable (§3.3.7).
	OpQueryCrossBoundFetch
	numOps
)

func (op OpCode) String() string {
	switch op {
	case OpMatch:
		return "MATCH"
	case OpDBStore:
		return "DB_STORE"
	case OpQueryStore:
		return "QUERY_STORE"
	case OpDBFetch:
		return "DB_FETCH"
	case OpQueryFetch:
		return "QUERY_FETCH"
	case OpDBCrossBoundFetch:
		return "DB_CROSS_BOUND_FETCH"
	case OpQueryCrossBoundFetch:
		return "QUERY_CROSS_BOUND_FETCH"
	}
	return "OP?"
}

// Operations returns the seven operations with the datapath routes drawn
// in Figures 6–12. Execution times are computed from component delays —
// see Table1 below.
func Operations() map[OpCode]hw.Operation {
	return map[OpCode]hw.Operation{
		OpMatch: {
			Name:   "MATCH",
			Figure: 6,
			Cycles: []hw.Cycle{{
				// db: Double Buffer → In-bus → Sel1 → A-port (40ns).
				DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.Sel1),
				// query: Sel6 → Query Memory → Sel3 → B-port (75ns).
				QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Sel3),
			}},
			Final: hw.Comparator,
		},
		OpDBStore: {
			Name:   "DB_STORE",
			Figure: 7,
			Cycles: []hw.Cycle{{
				// db: Double Buffer → Sel1 → Sel2 → A address port (60ns).
				DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.Sel1, hw.Sel2),
				// query: Sel6 → Query Memory → Reg3 → data input (75ns).
				QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Reg3),
			}},
			Final: hw.DBMemWrite,
		},
		OpQueryStore: {
			Name:   "QUERY_STORE",
			Figure: 8,
			Cycles: []hw.Cycle{{
				// db: Double Buffer → Sel1 → Sel5 → Sel4 → input port (80ns).
				DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.Sel1, hw.Sel5, hw.Sel4),
				// query: Sel6 → address port (20ns).
				QueryRoute: hw.NewRoute(hw.Sel6),
			}},
			Final: hw.QueryMemWrite,
		},
		OpDBFetch: {
			Name:   "DB_FETCH",
			Figure: 9,
			Cycles: []hw.Cycle{{
				// db: Double Buffer → DB Memory B port → Sel1 → A-port (65ns).
				DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.DBMemRead, hw.Sel1),
				// query: as MATCH (75ns).
				QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Sel3),
			}},
			Final: hw.Comparator,
		},
		OpQueryFetch: {
			Name:   "QUERY_FETCH",
			Figure: 10,
			Cycles: []hw.Cycle{
				{
					Name: "first cycle",
					// db: Double Buffer → Sel1 → A-port, concurrent (40ns).
					DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.Sel1),
					// query: Sel6 → Query Memory → Sel3 → Sel2 → DB Memory
					// A address port, data extracted (120ns).
					QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Sel3, hw.Sel2, hw.DBMemRead),
				},
				{
					Name: "second cycle",
					// query: binding → Sel3 → B-port (20ns).
					QueryRoute: hw.NewRoute(hw.Sel3),
				},
			},
			Final: hw.Comparator,
		},
		OpDBCrossBoundFetch: {
			Name:   "DB_CROSS_BOUND_FETCH",
			Figure: 11,
			Cycles: []hw.Cycle{
				{
					Name: "first cycle",
					// db: Double Buffer → DB Memory → Reg1 (65ns).
					DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.DBMemRead, hw.Reg1),
					// query: Sel6 → Query Memory → Sel3 (75ns).
					QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Sel3),
				},
				{
					Name: "second cycle",
					// db: Reg1 → DB Memory → Sel1 → A-port (65ns).
					DBRoute: hw.NewRoute(hw.Reg1, hw.DBMemRead, hw.Sel1),
				},
			},
			Final: hw.Comparator,
		},
		OpQueryCrossBoundFetch: {
			Name:   "QUERY_CROSS_BOUND_FETCH",
			Figure: 12,
			Cycles: []hw.Cycle{
				{
					Name: "first cycle",
					// db: Double Buffer → Sel1 → A-port (40ns).
					DBRoute: hw.NewRoute(hw.DoubleBuffer, hw.Sel1),
					// query: Sel6 → Query Memory → Sel3 → Sel2 → A address
					// port (95ns).
					QueryRoute: hw.NewRoute(hw.Sel6, hw.QueryMemRead, hw.Sel3, hw.Sel2),
				},
				{
					Name: "second cycle",
					// query: DB Memory → Sel3 → Sel2 (binding recycled,
					// 65ns).
					QueryRoute: hw.NewRoute(hw.DBMemRead, hw.Sel3, hw.Sel2),
				},
				{
					Name: "third cycle",
					// query: DB Memory → Sel3 → B-port (45ns).
					QueryRoute: hw.NewRoute(hw.DBMemRead, hw.Sel3),
				},
			},
			Final: hw.Comparator,
		},
	}
}

// Table1 returns each operation's execution time computed from its routes
// — the reproduction of the paper's Table 1.
func Table1() map[OpCode]time.Duration {
	out := make(map[OpCode]time.Duration, numOps)
	for code, op := range Operations() {
		out[code] = op.Time()
	}
	return out
}

// WorstCaseOp returns the slowest operation and its time — the paper uses
// it to derive the FS2 worst-case filtering rate (§4).
func WorstCaseOp() (OpCode, time.Duration) {
	var worst OpCode
	var wt time.Duration
	for code, d := range Table1() {
		if d > wt || (d == wt && code > worst) {
			worst, wt = code, d
		}
	}
	return worst, wt
}

// WorstCaseRate is the §4 throughput computation. The TUE comparator is an
// 8-bit device, so the paper rates the filter at one BYTE per operation
// time: 1 / 235ns ≈ 4.25 Mbytes/second worst case — still faster than the
// ≈2 MB/s peak of the disks feeding it.
func WorstCaseRate() float64 {
	_, wt := WorstCaseOp()
	return 1 / wt.Seconds()
}
