package fs2

import (
	"fmt"

	"clare/internal/pif"
)

// NativeMatcher runs the FS2 matching microroutines directly on PIF
// words, with no board protocol, no Double Buffer or Result Memory
// simulation, and no per-operation cycle accounting — the native
// engine's steady-state filter. It embeds fixed-capacity variable stores
// (MaxVarSlots per side, the TUE's own limit), so Match performs zero
// allocations; reuse one matcher per retrieval, via a pool.
//
// The matcher shares clauseMatch with the simulated board verbatim, so
// its accept/reject decisions are identical to Engine.Search under the
// same microprogram — the equivalence the differential tests pin down.
type NativeMatcher struct {
	mp Microprogram
	q  *pif.Encoded

	qMem    [pif.MaxVarSlots]pif.Word
	qBound  [pif.MaxVarSlots]bool
	dbMem   [pif.MaxVarSlots]pif.Word
	dbBound [pif.MaxVarSlots]bool

	m clauseMatch
}

// NewNativeMatcher returns a matcher for mp. DescendFull microprograms
// (the levels-4/5 what-if studies) need the simulator's position-based
// ref stores and are rejected; the native engine covers the shipped
// level-1..3(+xb) algorithms only.
func NewNativeMatcher(mp Microprogram) (*NativeMatcher, error) {
	if mp.DescendFull {
		return nil, fmt.Errorf("fs2: native matcher does not support DescendFull microprogram %q", mp.Name)
	}
	n := &NativeMatcher{mp: mp}
	n.m.mp = mp
	return n, nil
}

// Microprogram returns the matcher's microprogram.
func (n *NativeMatcher) Microprogram() Microprogram { return n.mp }

// SetQuery loads the query the following Match calls filter against.
func (n *NativeMatcher) SetQuery(q *pif.Encoded) error {
	if q.Side != pif.QuerySide {
		return fmt.Errorf("fs2: query must be encoded with query-side variable tags")
	}
	nv := q.NumVars
	if nv > pif.MaxVarSlots {
		nv = pif.MaxVarSlots // unreachable via the encoder; defensive
	}
	n.q = q
	n.m.q = q
	n.m.qMem = n.qMem[:nv]
	n.m.qBound = n.qBound[:nv]
	return nil
}

// Match reports whether the clause head passes partial test unification
// against the loaded query. It resets both variable stores per clause,
// exactly like the board ("DB Memory is reset to pointing to itself at
// the beginning of each clause input", §3.3).
func (n *NativeMatcher) Match(db *pif.Encoded) bool {
	n.m.xbReject = false
	if db.Functor != n.q.Functor || db.Arity != n.q.Arity {
		return false
	}
	nv := db.NumVars
	if nv > pif.MaxVarSlots {
		nv = pif.MaxVarSlots // defensive; encoder-produced clauses fit
	}
	n.m.db = db
	n.m.dbMem = n.dbMem[:nv]
	n.m.dbBound = n.dbBound[:nv]
	for i := range n.m.dbBound {
		n.m.dbBound[i] = false
	}
	for i := range n.m.qBound {
		n.m.qBound[i] = false
	}
	return n.m.matchArgs()
}

// LastRejectXB reports whether the most recent failing Match was
// rejected by a variable cross-binding consistency check rather than a
// plain level-3 mismatch (the EXPLAIN reject split).
func (n *NativeMatcher) LastRejectXB() bool { return n.m.xbReject }
