package fs2

// Double Buffer and Result Memory models (§3.2, Figure 4).

// ResultSlotBytes is one Result Memory satisfier slot: the address
// generator's lower 9 bits (A0–A8) give 512 bytes per clause.
const ResultSlotBytes = 512

// ResultSlots is the satisfier capacity: the upper 6 bits (A9–A14) of the
// address generator count satisfiers, so 64 slots — 32 KB total, "large
// enough to contain all clause satisfiers of one disk track, the worst
// case of a single FS2 search call".
const ResultSlots = 64

// ResultMemoryBytes is the total Result Memory capacity (32 KB).
const ResultMemoryBytes = ResultSlotBytes * ResultSlots

// DoubleBuffer models the two alternating input banks. One bank fills from
// disk while the other is matched; the toggle flip-flop alternates roles
// whenever the input side fills (§3.2).
type DoubleBuffer struct {
	// inputBank is the bank currently receiving disk data (0 or 1).
	inputBank int
	// Loads counts clauses accepted; Toggles counts bank switches.
	Loads   int
	Toggles int
	// MaxClauseBytes is the largest clause seen (bank occupancy).
	MaxClauseBytes int
}

// Load accepts one clause of the given size into the input bank and
// toggles the banks, making the clause available for matching.
func (b *DoubleBuffer) Load(sizeBytes int) {
	b.Loads++
	b.Toggles++
	b.inputBank = 1 - b.inputBank
	if sizeBytes > b.MaxClauseBytes {
		b.MaxClauseBytes = sizeBytes
	}
}

// InputBank reports which bank is currently wired for input.
func (b *DoubleBuffer) InputBank() int { return b.inputBank }

// ResultMemory models the 32 KB satisfier store with its two-counter
// address generator: a 6-bit satisfier counter (incremented per match) and
// a 9-bit offset counter (reset after every clause).
type ResultMemory struct {
	addrs []uint32
	// BytesStored is the satisfier bytes written.
	BytesStored int
}

// Reset clears the memory for a new search call.
func (r *ResultMemory) Reset() {
	r.addrs = r.addrs[:0]
	r.BytesStored = 0
}

// Capture stores one satisfier. It reports false when the clause exceeds
// the slot size or the satisfier counter is exhausted — the §3.2 capacity
// limits.
func (r *ResultMemory) Capture(addr uint32, sizeBytes int) bool {
	if sizeBytes > ResultSlotBytes {
		return false
	}
	if len(r.addrs) >= ResultSlots {
		return false
	}
	r.addrs = append(r.addrs, addr)
	r.BytesStored += sizeBytes
	return true
}

// Count returns the satisfier counter value — "the value of this counter
// at the end of a retrieval indicates the number of clause satisfiers".
func (r *ResultMemory) Count() int { return len(r.addrs) }

// Addresses returns the captured satisfier addresses in stream order.
func (r *ResultMemory) Addresses() []uint32 {
	out := make([]uint32, len(r.addrs))
	copy(out, r.addrs)
	return out
}
