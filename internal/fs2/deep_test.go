package fs2

import (
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/ptu"
	"clare/internal/term"
	"clare/internal/unify"
)

func TestLevel4SeesFullDepth(t *testing.T) {
	// The canonical level-3 blind spot: differences at depth 2.
	r3 := newRig(t, "p(f(g(1)))", MPLevel3XB)
	res3 := r3.search(t, "p(f(g(1)))", "p(f(g(2)))")
	if len(res3.Matches) != 2 {
		t.Fatalf("level 3 matches = %v, want both (depth-2 invisible)", res3.Matches)
	}
	r4 := newRig(t, "p(f(g(1)))", MPLevel4)
	res4 := r4.search(t, "p(f(g(1)))", "p(f(g(2)))")
	if len(res4.Matches) != 1 || res4.Matches[0] != 0 {
		t.Errorf("level 4 matches = %v, want [0]", res4.Matches)
	}
}

func TestLevel5CrossBindingDeep(t *testing.T) {
	// Shared variable constraining nested content: only level 5 sees both
	// the depth and the binding.
	r := newRig(t, "p(X, f(g(X)))", MPLevel5)
	res := r.search(t,
		"p(a, f(g(a)))", // unifies
		"p(a, f(g(b)))", // nested content contradicts the binding
		"p(A, f(g(A)))", // unifies (A = X)
	)
	want := []uint32{0, 2}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
	// Level 4 (no XB) passes the contradiction.
	r4 := newRig(t, "p(X, f(g(X)))", MPLevel4)
	res4 := r4.search(t, "p(a, f(g(b)))")
	if len(res4.Matches) != 1 {
		t.Error("level 4 without cross binding should pass the non-unifier")
	}
}

func TestDeepNestedLists(t *testing.T) {
	r := newRig(t, "p([[1,[2,3]],[4]])", MPLevel5)
	res := r.search(t,
		"p([[1,[2,3]],[4]])", // exact
		"p([[1,[2,9]],[4]])", // depth-3 difference
		"p([[1,[2,3]],[5]])", // depth-2 difference
		"p([[1,[2,3,4]],[4]])",
		"p([[1,[2|T]],[4]])", // open nested list, fits
	)
	want := []uint32{0, 4}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	for i, w := range want {
		if res.Matches[i] != w {
			t.Errorf("matches = %v, want %v", res.Matches, want)
		}
	}
}

func TestDeepBigStructures(t *testing.T) {
	// Arity > 31 structures go through the heap pointer path.
	mk := func(k string) string {
		s := "p(big("
		for i := 0; i < 35; i++ {
			if i > 0 {
				s += ","
			}
			if i == 17 {
				s += k
			} else {
				s += "c"
			}
		}
		return s + "))"
	}
	r := newRig(t, mk("x"), MPLevel5)
	res := r.search(t, mk("x"), mk("y"), mk("Z"))
	want := []uint32{0, 2}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v, want %v", res.Matches, want)
	}
	// Level 3 cannot see inside the pointer at all.
	r3 := newRig(t, mk("x"), MPLevel3XB)
	res3 := r3.search(t, mk("y"))
	if len(res3.Matches) != 1 {
		t.Error("level 3 should pass big structures on functor+arity alone")
	}
}

// TestQuickLevel5Soundness: level 5 never rejects a true unifier.
func TestQuickLevel5Soundness(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0), genXTerm(int(s2), 1))
		ht := term.New("p", genXTerm(int(s2), 2), genXTerm(int(s1), 3))
		if !unify.Unifiable(qt, term.Rename(ht)) {
			return true
		}
		return fs2Match(t, qt, ht, MPLevel5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevelLadderExtended: level 4 accepts a subset of level 3's
// survivors; level 5 a subset of level 4's.
func TestQuickLevelLadderExtended(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0))
		ht := term.New("p", genXTerm(int(s2), 1))
		l3 := fs2Match(t, qt, ht, MPLevel3)
		l4 := fs2Match(t, qt, ht, MPLevel4)
		l5 := fs2Match(t, qt, ht, MPLevel5)
		return (!l4 || l3) && (!l5 || l4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevel4AgreesWithReference: the ptu level-4 reference passing
// implies the hardware level 4 passes (the hardware may over-accept via
// the tail-shape approximation, never under-accept).
func TestQuickLevel4AgreesWithReference(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genXTerm(int(s1), 0), genXTerm(int(s2), 1))
		ht := term.New("p", genXTerm(int(s2), 2), genXTerm(int(s1), 3))
		if !ptu.Match(qt, ht, ptu.Config{Level: ptu.Level4}) {
			return true
		}
		return fs2Match(t, qt, ht, MPLevel4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeepGroundPairsMatchUnifiability(t *testing.T) {
	// On ground pairs, level 5 must agree exactly with unifiability
	// (equality): no tail approximations apply.
	pairs := []struct {
		q, h string
		want bool
	}{
		{"p(f(g(h(1))))", "p(f(g(h(1))))", true},
		{"p(f(g(h(1))))", "p(f(g(h(2))))", false},
		{"p([1,[2,[3]]])", "p([1,[2,[3]]])", true},
		{"p([1,[2,[3]]])", "p([1,[2,[4]]])", false},
		{"p(f([a],g(b)))", "p(f([a],g(b)))", true},
		{"p(f([a],g(b)))", "p(f([a],g(c)))", false},
	}
	for _, c := range pairs {
		got := fs2Match(t, parse.MustTerm(c.q), parse.MustTerm(c.h), MPLevel5)
		if got != c.want {
			t.Errorf("level5 (%s, %s) = %v, want %v", c.q, c.h, got, c.want)
		}
	}
}

func TestDeepOpAccounting(t *testing.T) {
	r := newRig(t, "p(f(g(1)))", MPLevel5)
	r.search(t, "p(f(g(1)))")
	if r.e.Stats.OpCount(OpMatch) < 3 {
		t.Errorf("deep matching should charge per-level MATCH ops, got %d", r.e.Stats.OpCount(OpMatch))
	}
	if r.e.Stats.MatchTime <= 0 {
		t.Error("no simulated time accounted")
	}
}
