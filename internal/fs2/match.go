package fs2

import (
	"clare/internal/pif"
)

// This file implements the matching microroutines: the Figure 1 algorithm
// executed directly on PIF words, dispatched on the ⟨db-type, query-type⟩
// pair the way the Map ROM drives the MPC (§3.1).
//
// The matcher is SOUND as a filter: it never rejects a clause whose head
// truly unifies with the query. Its precision is that of level-3 partial
// test unification with cross-binding (under microprogram MPLevel3XB);
// weaker microprograms lower precision, never soundness.

// matchClause runs partial test unification of the loaded query against
// one clause. Resets per-clause state (DB Memory "is reset to pointing to
// itself at the beginning of each clause input", §3.3; query variable
// bindings are clause-local too).
func (e *Engine) matchClause(db *pif.Encoded) bool {
	e.lastRejectXB = false
	if db.Functor != e.query.Functor || db.Arity != e.query.Arity {
		// The compiled clause file groups one functor/arity (§2.1); a
		// mismatched record cannot unify.
		return false
	}
	if e.mp.DescendFull {
		return e.deepMatchClause(db)
	}
	// Reset both variable stores.
	if cap(e.dbMem) < db.NumVars {
		e.dbMem = make([]pif.Word, db.NumVars)
		e.dbBound = make([]bool, db.NumVars)
	}
	e.dbMem = e.dbMem[:db.NumVars]
	e.dbBound = e.dbBound[:db.NumVars]
	for i := range e.dbBound {
		e.dbBound[i] = false
	}
	for i := range e.qBound {
		e.qBound[i] = false
	}

	if e.countFn == nil {
		e.countFn = e.countOp
	}
	m := &clauseMatch{
		e: e, mp: e.mp, db: db, q: e.query,
		qMem: e.qMem, qBound: e.qBound,
		dbMem: e.dbMem, dbBound: e.dbBound,
		count: e.countFn,
	}
	ok := m.matchArgs()
	e.lastRejectXB = m.xbReject
	return ok
}

// clauseMatch carries everything one clause comparison needs: the
// microprogram, the two word streams and the two variable stores. It is
// deliberately independent of *Engine so the same microroutines serve
// both the simulated board (which owns the stores and charges per-op
// times through count) and the native engine's matcher (which owns
// fixed-capacity stores and passes a nil count — no cycle accounting).
// Only the DescendFull what-if levels keep an Engine reference, for the
// position-based ref stores the native engine does not support.
type clauseMatch struct {
	e  *Engine // DescendFull (deep.go) only; nil on the native path
	mp Microprogram
	db *pif.Encoded
	q  *pif.Encoded

	// Variable stores (Figure 1): query var → db-side word, db var →
	// query-side word. Owned by the caller and reset per clause.
	qMem    []pif.Word
	qBound  []bool
	dbMem   []pif.Word
	dbBound []bool

	// count, when non-nil, records one hardware operation execution —
	// the simulated board's op/timing accounting hook.
	count func(OpCode)

	// xbReject marks that the failing comparison was a variable
	// cross-binding consistency check (a previously bound variable whose
	// ultimate association disagreed with the opposing word) rather than
	// a plain level-3 structural/content mismatch. EXPLAIN separates the
	// two: cross-binding rejects are exactly the precision the §2.2
	// shared-variable machinery buys.
	xbReject bool
}

// countOp records one hardware operation, if anyone is accounting.
func (m *clauseMatch) countOp(op OpCode) {
	if m.count != nil {
		m.count(op)
	}
}

// matchArgs runs the per-argument matching loop on m's loaded state.
func (m *clauseMatch) matchArgs() bool {
	m.xbReject = false
	qPos, dbPos := 0, 0
	for i := 0; i < m.db.Arity; i++ {
		qNext := qPos + runLen(m.q.Args, qPos)
		dbNext := dbPos + runLen(m.db.Args, dbPos)
		if !m.matchRun(m.q.Args, qPos, m.db.Args, dbPos) {
			return false
		}
		qPos, dbPos = qNext, dbNext
	}
	return true
}

// runLen returns the number of words the argument starting at pos
// occupies: 1 for simple/variable/list-pointer words, 2 for structure
// pointers, header+elements(+tail) for in-line complex runs.
func runLen(words []pif.Word, pos int) int {
	t := words[pos].Tag()
	switch {
	case pif.Group(t) == pif.GroupStructPtr:
		return 2
	case pif.Group(t) == pif.GroupStructInline,
		pif.Group(t) == pif.GroupListInline,
		pif.Group(t) == pif.GroupUListInline:
		n := 1
		for i := 0; i < pif.InlineArity(t); i++ {
			n += runLen(words, pos+n)
		}
		if pif.Group(t) == pif.GroupUListInline {
			n++ // tail variable word
		}
		return n
	default:
		return 1
	}
}

// matchRun matches the query argument run at q[qPos] against the db run at
// d[dPos]. Both runs may be in-line complex terms, whose elements are
// matched pairwise (the §3.1 counter scheme).
func (m *clauseMatch) matchRun(q []pif.Word, qPos int, d []pif.Word, dPos int) bool {
	qw, dw := q[qPos], d[dPos]
	qt, dt := qw.Tag(), dw.Tag()

	qInline := isInlineComplex(qt)
	dInline := isInlineComplex(dt)

	// Only when BOTH sides are in-line complex terms can the hardware
	// walk constituents pairwise; every other pairing is a single-word
	// operation dispatched by type pair.
	if qInline && dInline {
		return m.matchInlinePair(q, qPos, d, dPos)
	}
	return m.compareWords(dw, qw)
}

func isInlineComplex(t pif.Tag) bool {
	g := pif.Group(t)
	return g == pif.GroupStructInline || g == pif.GroupListInline || g == pif.GroupUListInline
}

// matchInlinePair matches two in-line complex runs: header compatibility,
// then constituent pairs "repeated until the counters reach zero" (§3.1).
func (m *clauseMatch) matchInlinePair(q []pif.Word, qPos int, d []pif.Word, dPos int) bool {
	qw, dw := q[qPos], d[dPos]
	qt, dt := qw.Tag(), dw.Tag()

	qIsList, dIsList := pif.IsList(qt), pif.IsList(dt)
	if qIsList != dIsList {
		return false // a list never unifies with a non-list structure
	}

	// Header comparison (one MATCH operation): functor content for
	// structures, shape compatibility for lists.
	m.countOp(OpMatch)
	if !dIsList {
		// Structures: arity (in the tag) from level 1, functor content
		// from level 2.
		if pif.InlineArity(qt) != pif.InlineArity(dt) {
			return false
		}
		if m.mp.CompareContent && qw.Content() != dw.Content() {
			return false
		}
	} else if !listShapesCompatible(dt, qt) {
		return false
	}

	if !m.mp.DescendElements {
		return true
	}

	// Load the counters and match constituent pairs.
	qArity, dArity := pif.InlineArity(qt), pif.InlineArity(dt)
	n := qArity
	if dArity < n {
		n = dArity
	}
	qp, dp := qPos+1, dPos+1
	for i := 0; i < n; i++ {
		if !m.compareWords(d[dp], q[qp]) {
			return false
		}
		qp += runLen(q, qp)
		dp += runLen(d, dp)
	}

	// Unterminated lists: bind the open side's tail variable to the
	// remainder so later occurrences stay consistent. The remainder's
	// stand-in depends on what is actually left on the other side:
	//
	//   - leftover elements: a genuine sub-list — its synthesised shape
	//     word is a sound stand-in;
	//   - nothing left, other side open: the remainder IS the other
	//     side's tail variable — route the two tail words through the
	//     variable machinery (cases 5c/6c), like the reference matcher;
	//   - nothing left, other side closed: the remainder is the atom [],
	//     which has no word-level stand-in (atom contents are symbol
	//     offsets) — skip the check. Sound: the filter passes, the host's
	//     full unification culls it.
	//
	// Checking a shape word in the second and third cases would reject
	// tails whose cross-binding truly unifies (a non-list binding against
	// an unconstrained tail variable), i.e. drop true unifiers.
	if dIsList && m.mp.CrossBinding {
		dOpen, qOpen := pif.IsUnterminated(dt), pif.IsUnterminated(qt)
		// Locate tail words: after the remaining elements of each side.
		if dOpen {
			dTailPos := dp
			for i := n; i < dArity; i++ {
				dTailPos += runLen(d, dTailPos)
			}
			switch {
			case qArity > n:
				rem := remainderHeader(qt, qArity-n)
				if !m.bindOrCheck(d[dTailPos], rem) {
					return false
				}
			case qOpen:
				// qp has walked all qArity elements: it is the tail word.
				if !m.compareWords(d[dTailPos], q[qp]) {
					return false
				}
			}
		}
		if qOpen && !dOpen {
			qTailPos := qp
			for i := n; i < qArity; i++ {
				qTailPos += runLen(q, qTailPos)
			}
			if dArity > n {
				rem := remainderHeader(dt, dArity-n)
				if !m.bindOrCheck(q[qTailPos], rem) {
					return false
				}
			}
		}
	}
	return true
}

// remainderHeader synthesises a list header word describing "the rest of
// the other side": its terminated-ness and remaining element count. Tail
// variables bind to this shape word — a level-3 approximation of binding
// to the actual remainder list.
func remainderHeader(otherTag pif.Tag, remaining int) pif.Word {
	g := pif.GroupListInline
	if pif.IsUnterminated(otherTag) {
		g = pif.GroupUListInline
	}
	return pif.MakeWord(g|pif.Tag(remaining), 0)
}

// bindOrCheck routes a tail-variable word through the ordinary variable
// machinery against a synthesised value word.
func (m *clauseMatch) bindOrCheck(varWord, value pif.Word) bool {
	return m.compareWords(varWord, value)
}

// listShapesCompatible applies the sound length logic for list tags:
// closed lengths must be equal; an open list needs at least its own length
// on the other side; two open lists always fit. Pointer tags with arity
// bits 0 mean "longer than 31": length unknown, so only closed×closed with
// both lengths known can reject.
func listShapesCompatible(a, b pif.Tag) bool {
	aOpen, bOpen := pif.IsUnterminated(a), pif.IsUnterminated(b)
	aN, aKnown := listArity(a)
	bN, bKnown := listArity(b)
	switch {
	case !aKnown || !bKnown:
		// Unknown length on either side: only an impossible open-side
		// minimum could reject, and we cannot establish one. Pass.
		return true
	case !aOpen && !bOpen:
		return aN == bN
	case aOpen && !bOpen:
		return aN <= bN
	case !aOpen && bOpen:
		return bN <= aN
	default:
		return true
	}
}

// listArity extracts a list tag's element count. In-line tags always know
// their arity (1..31; zero-element lists are the atom []); pointer tags
// know it only when the arity bits are non-zero — zero means "longer than
// 31".
func listArity(t pif.Tag) (n int, known bool) {
	n = pif.InlineArity(t)
	g := pif.Group(t)
	if g == pif.GroupListInline || g == pif.GroupUListInline {
		return n, true
	}
	return n, n > 0
}

// compareWords is the single-word comparison: it resolves variable words
// through the two stores (with cross-binding chases), binds unbound
// variables, and compares concrete words. dw originates from the database
// stream, qw from the query stream — but stored words may carry either
// side's tags, and the logic follows the tags, exactly as the Map ROM
// dispatches on the type fields regardless of which bus delivered them.
func (m *clauseMatch) compareWords(dw, qw pif.Word) bool {
	// Anonymous variables succeed immediately (§3.1).
	if dw.Tag() == pif.TagAnonVar || qw.Tag() == pif.TagAnonVar {
		return true
	}

	// Figure 1 case 5: database side variable first.
	if pif.IsVariable(dw.Tag()) {
		return m.varCase(dw, qw, true)
	}
	// Case 6: query side variable.
	if pif.IsVariable(qw.Tag()) {
		return m.varCase(qw, dw, false)
	}

	// Cases 1–4: concrete × concrete.
	m.countOp(OpMatch)
	return m.concreteEqual(dw, qw)
}

// varCase handles a variable word v against an opposing word other.
// dbFirst records which side v came from for operation accounting.
func (m *clauseMatch) varCase(v, other pif.Word, dbFirst bool) bool {
	if !m.mp.CrossBinding {
		// Without cross-binding checks a variable matches anything — the
		// §2.1 shared-variable false-drop source. Still costs the store
		// operation the hardware would do.
		if dbFirst {
			m.countOp(OpDBStore)
		} else {
			m.countOp(OpQueryStore)
		}
		return true
	}

	val, bound, hops := m.resolveVar(v)
	m.chargeVarOps(v, bound, hops)
	if !bound {
		// Unbound: create the association (cases 5a/6a) — unless both
		// sides are the same variable cell, where binding would create a
		// self-cycle and there is nothing to check.
		if !m.sameVarCell(val, other) {
			m.bindSlot(val, other)
		}
		return true
	}
	// Bound: the ultimate association must be consistent with other.
	// other may itself be a variable word — resolve it too.
	if pif.IsVariable(other.Tag()) && other.Tag() != pif.TagAnonVar {
		oval, obound, ohops := m.resolveVar(other)
		m.chargeVarOps(other, obound, ohops)
		if !obound {
			m.bindSlot(oval, val)
			return true
		}
		other = oval
	} else if other.Tag() == pif.TagAnonVar {
		return true
	}
	if pif.IsVariable(val.Tag()) {
		// resolveVar returned an unbound variable word at the end of a
		// chain (bound=true cannot coexist with var tag) — defensive.
		return true
	}
	m.countOp(OpMatch)
	if !m.concreteEqual(val, other) {
		m.xbReject = true
		return false
	}
	return true
}

// resolveVar chases a variable word through the stores. It returns either
// (unboundVarWord, false, hops) — the final unbound variable in the chain
// — or (concreteWord, true, hops).
func (m *clauseMatch) resolveVar(v pif.Word) (pif.Word, bool, int) {
	hops := 0
	const chaseLimit = 2 * pif.MaxVarSlots
	for hops < chaseLimit {
		if !pif.IsVariable(v.Tag()) || v.Tag() == pif.TagAnonVar {
			return v, true, hops
		}
		mem, bound, ok := m.storeFor(v)
		if !ok {
			// Slot out of range: treat as unbound (defensive).
			return v, false, hops
		}
		slot := int(v.Content())
		if !bound[slot] {
			return v, false, hops
		}
		v = mem[slot]
		hops++
	}
	// Pathological cycle: report as bound-to-anonymous (always passes).
	return pif.MakeWord(pif.TagAnonVar, 0), true, hops
}

// storeFor returns the memory arrays a variable word's slot lives in.
func (m *clauseMatch) storeFor(v pif.Word) (mem []pif.Word, bound []bool, ok bool) {
	slot := int(v.Content())
	switch v.Tag() {
	case pif.TagFirstDV, pif.TagSubDV:
		if slot >= len(m.dbMem) {
			return nil, nil, false
		}
		return m.dbMem, m.dbBound, true
	case pif.TagFirstQV, pif.TagSubQV:
		if slot >= len(m.qMem) {
			return nil, nil, false
		}
		return m.qMem, m.qBound, true
	}
	return nil, nil, false
}

// sameVarCell reports whether a and b are variable words naming the same
// store slot (the same logical variable).
func (m *clauseMatch) sameVarCell(a, b pif.Word) bool {
	if !pif.IsVariable(a.Tag()) || !pif.IsVariable(b.Tag()) {
		return false
	}
	if a.Tag() == pif.TagAnonVar || b.Tag() == pif.TagAnonVar {
		return false
	}
	aDB := a.Tag() == pif.TagFirstDV || a.Tag() == pif.TagSubDV
	bDB := b.Tag() == pif.TagFirstDV || b.Tag() == pif.TagSubDV
	return aDB == bDB && a.Content() == b.Content()
}

// bindSlot writes value into the store slot of the unbound variable word v.
func (m *clauseMatch) bindSlot(v, value pif.Word) {
	mem, bound, ok := m.storeFor(v)
	if !ok {
		return
	}
	slot := int(v.Content())
	mem[slot] = value
	bound[slot] = true
}

// chargeVarOps records the hardware operations a variable resolution
// performed:
//
//   - hops == 0 (immediately unbound): a store (cases 5a/6a).
//   - one hop ending on a concrete word: a plain fetch (cases 5b/6b).
//   - any resolution that passes through another variable — including one
//     whose ultimate cell is still unbound (it "points to itself") — is a
//     cross-bound fetch, two memory reads per the §3.3.6/§3.3.7 routines;
//     longer chains charge one cross-bound fetch per extra read pair.
func (m *clauseMatch) chargeVarOps(v pif.Word, bound bool, hops int) {
	isDB := v.Tag() == pif.TagFirstDV || v.Tag() == pif.TagSubDV
	if hops == 0 {
		if isDB {
			m.countOp(OpDBStore)
		} else {
			m.countOp(OpQueryStore)
		}
		return
	}
	if bound && hops == 1 {
		if isDB {
			m.countOp(OpDBFetch)
		} else {
			m.countOp(OpQueryFetch)
		}
		return
	}
	xb := OpQueryCrossBoundFetch
	if isDB {
		xb = OpDBCrossBoundFetch
	}
	n := hops
	if bound {
		n = hops - 1
	}
	for i := 0; i < n; i++ {
		m.countOp(xb)
	}
}

// concreteEqual compares two concrete words under the loaded microprogram:
// level-1 semantics compare type tags (which carry arity for complex
// terms), level ≥ 2 adds the content field; list tags use the sound shape
// logic instead of raw tag equality.
func (m *clauseMatch) concreteEqual(a, b pif.Word) bool {
	at, bt := a.Tag(), b.Tag()
	aList, bList := pif.IsList(at), pif.IsList(bt)
	if aList != bList {
		return false
	}
	if aList {
		// List words (in-line headers or pointers) compare by shape; the
		// contents of pointer words are heap offsets, never compared.
		return listShapesCompatible(at, bt)
	}
	switch {
	case pif.IsInt(at) || pif.IsInt(bt):
		// The integer tag carries the value's top nibble: tag+content
		// equality is value equality.
		return at == bt && (!m.mp.CompareContent || a.Content() == b.Content())
	case pif.IsStruct(at) || pif.IsStruct(bt):
		if !pif.IsStruct(at) || !pif.IsStruct(bt) {
			return false
		}
		if !structAritiesCompatible(at, bt) {
			return false
		}
		// Contents hold the functor symbol for both in-line and pointer
		// structure words.
		return !m.mp.CompareContent || a.Content() == b.Content()
	default:
		// Simple pointers: atoms and floats.
		if at != bt {
			return false
		}
		return !m.mp.CompareContent || a.Content() == b.Content()
	}
}

// structAritiesCompatible compares structure arities across in-line and
// pointer forms: in-line tags know their arity exactly (1..31); pointer
// tags know it when the bits are non-zero, otherwise it exceeds 31.
func structAritiesCompatible(a, b pif.Tag) bool {
	aN, bN := pif.InlineArity(a), pif.InlineArity(b)
	aPtr := pif.Group(a) == pif.GroupStructPtr
	bPtr := pif.Group(b) == pif.GroupStructPtr
	aKnown := !aPtr || aN > 0
	bKnown := !bPtr || bN > 0
	switch {
	case aKnown && bKnown:
		return aN == bN
	case !aKnown && !bKnown:
		return true // both >31: exact sizes unknown
	case !aKnown:
		return false // one >31, the other ≤31
	default:
		return false
	}
}
