package fs2

import (
	"errors"
	"fmt"
	"time"

	"clare/internal/fault"
	"clare/internal/hw"
	"clare/internal/pif"
	"clare/internal/telemetry"
)

// Mode is the FS2 operational mode, selected by bits b0/b1 of the control
// register (§3):
//
//	Read Result      b0=0 b1=0
//	Search           b0=0 b1=1
//	Microprogramming b0=1 b1=0
//	Set Query        b0=1 b1=1
type Mode uint8

const (
	ModeReadResult Mode = iota
	ModeSearch
	ModeMicroprogramming
	ModeSetQuery
)

func (m Mode) String() string {
	switch m {
	case ModeReadResult:
		return "Read Result"
	case ModeSearch:
		return "Search"
	case ModeMicroprogramming:
		return "Microprogramming"
	case ModeSetQuery:
		return "Set Query"
	}
	return "Mode?"
}

// ControlBits returns the (b0, b1) encoding of the mode per §3's table.
func (m Mode) ControlBits() (b0, b1 uint8) {
	switch m {
	case ModeReadResult:
		return 0, 0
	case ModeSearch:
		return 0, 1
	case ModeMicroprogramming:
		return 1, 0
	case ModeSetQuery:
		return 1, 1
	}
	return 0, 0
}

// ModeFromBits decodes control-register bits b0/b1.
func ModeFromBits(b0, b1 uint8) Mode {
	switch {
	case b0 == 0 && b1 == 0:
		return ModeReadResult
	case b0 == 0 && b1 == 1:
		return ModeSearch
	case b0 == 1 && b1 == 0:
		return ModeMicroprogramming
	default:
		return ModeSetQuery
	}
}

// Microprogram configures the matching behaviour loaded into the Writable
// Control Store. The default program implements the paper's adopted
// algorithm: level-3 partial test unification with variable cross-binding
// checks. Alternative programs realise the other §2.2 levels — the "type
// driven" dispatch is data, not hardware.
type Microprogram struct {
	Name string
	// CompareContent enables content-field comparison (level ≥ 2).
	CompareContent bool
	// DescendElements enables first-level element matching of in-line
	// complex terms (level ≥ 3).
	DescendElements bool
	// CrossBinding enables the variable cross-binding consistency checks.
	CrossBinding bool
	// DescendFull walks pointer forms into the clause heap for exact
	// full-structure comparison — the levels 4/5 the paper rejected as
	// too costly in hardware (§2.2), provided here for what-if studies.
	DescendFull bool
}

// Standard microprograms.
var (
	// MPLevel3XB is the paper's FS2 algorithm (§2.2): level 3 plus
	// cross-binding checks.
	MPLevel3XB = Microprogram{Name: "level3+xb", CompareContent: true, DescendElements: true, CrossBinding: true}
	// MPLevel3 is plain level 3.
	MPLevel3 = Microprogram{Name: "level3", CompareContent: true, DescendElements: true}
	// MPLevel2 compares type and content, ignoring complex structures.
	MPLevel2 = Microprogram{Name: "level2", CompareContent: true}
	// MPLevel1 compares types only.
	MPLevel1 = Microprogram{Name: "level1"}
)

// Stats accumulates engine activity across searches.
type Stats struct {
	// OpCounts is the number of times each hardware operation ran.
	OpCounts [numOps]int64
	// MatchTime is the simulated TUE time: Σ op count × Table-1 op time.
	MatchTime time.Duration
	// ClausesExamined and ClausesMatched count the filter's work.
	ClausesExamined int
	ClausesMatched  int
	// BytesExamined is the PIF bytes streamed through the Double Buffer.
	BytesExamined int64
	// ResultOverflows counts matches lost to Result Memory capacity.
	ResultOverflows int
	// Faults counts injected board faults (TUE traps) this engine raised.
	Faults int
	// RejectsLevel and RejectsXB split the rejected clauses by cause:
	// plain level-3 structural/content mismatches versus variable
	// cross-binding consistency failures. Their sum is
	// ClausesExamined - ClausesMatched (minus functor/arity gate skips,
	// which count as level rejects).
	RejectsLevel int
	RejectsXB    int
}

// OpCount returns the count for one op.
func (s *Stats) OpCount(op OpCode) int64 { return s.OpCounts[op] }

// Add folds other into s — used to aggregate per-board statistics across
// a multi-board chassis.
func (s *Stats) Add(other Stats) {
	for i := range s.OpCounts {
		s.OpCounts[i] += other.OpCounts[i]
	}
	s.MatchTime += other.MatchTime
	s.ClausesExamined += other.ClausesExamined
	s.ClausesMatched += other.ClausesMatched
	s.BytesExamined += other.BytesExamined
	s.ResultOverflows += other.ResultOverflows
	s.Faults += other.Faults
	s.RejectsLevel += other.RejectsLevel
	s.RejectsXB += other.RejectsXB
}

// TotalOps sums all operation executions.
func (s *Stats) TotalOps() int64 {
	var n int64
	for _, c := range s.OpCounts {
		n += c
	}
	return n
}

// Engine is the FS2 board: WCS + TUE + Double Buffer + Result Memory.
type Engine struct {
	mode    Mode
	mp      Microprogram
	loaded  bool // microprogram loaded
	wcs     []Microword
	program *Program
	opTime  [numOps]time.Duration

	// Query side (Set Query mode loads these).
	query  *pif.Encoded
	qMem   []pif.Word
	qBound []bool

	// Per-clause database side.
	dbMem   []pif.Word
	dbBound []bool
	// lastRejectXB classifies the most recent matchClause failure: true
	// when a cross-binding consistency check rejected the clause.
	lastRejectXB bool

	// Position-based stores for DescendFull microprograms (levels 4/5).
	dbRef      []ref
	qRef       []ref
	dbRefBound []bool
	qRefBound  []bool

	buffer  DoubleBuffer
	result  ResultMemory
	matched bool // control register b7

	// countFn is the cached e.countOp method value handed to clauseMatch,
	// so matchClause does not allocate a closure per clause.
	countFn func(OpCode)

	Stats Stats
	met   engineMetrics

	// flt, when non-nil, injects board faults: Search probes
	// fault.SiteFS2 before streaming a batch through the TUE.
	flt    *fault.Injector
	fltKey string
}

// engineMetrics are the board's registry handles; the zero value (all
// nil) makes every observation a no-op.
type engineMetrics struct {
	examined  *telemetry.Counter
	matchedC  *telemetry.Counter
	bytes     *telemetry.Counter
	overflows *telemetry.Counter
	searchSim *telemetry.Histogram
}

// Instrument wires the engine to a metrics registry. labels identify the
// board (e.g. its chassis slot).
func (e *Engine) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	e.met = engineMetrics{
		examined:  reg.Counter("clare_fs2_clauses_examined_total", "clauses streamed through the TUE", labels),
		matchedC:  reg.Counter("clare_fs2_clauses_matched_total", "clauses the partial test accepted", labels),
		bytes:     reg.Counter("clare_fs2_bytes_examined_total", "PIF bytes through the Double Buffer", labels),
		overflows: reg.Counter("clare_fs2_result_overflows_total", "satisfiers lost to Result Memory capacity", labels),
		searchSim: reg.Histogram("clare_fs2_search_sim_seconds", "simulated TUE time per search call", nil, labels),
	}
}

// Errors.
var (
	ErrWrongMode   = errors.New("fs2: operation invalid in current mode")
	ErrNoQuery     = errors.New("fs2: no query loaded")
	ErrNoMicrocode = errors.New("fs2: no microprogram loaded")
)

// New returns an FS2 engine in Read Result mode with no microprogram.
func New() *Engine {
	e := &Engine{}
	for code, op := range Operations() {
		e.opTime[code] = op.Time()
	}
	return e
}

// SetFaults arms fault injection on the board. key identifies the board
// to keyed rules (its chassis slot).
func (e *Engine) SetFaults(inj *fault.Injector, key string) {
	e.flt = inj
	e.fltKey = key
}

// Mode returns the current operational mode.
func (e *Engine) Mode() Mode { return e.mode }

// SetMode switches the operational mode (the host writing b0/b1).
func (e *Engine) SetMode(m Mode) { e.mode = m }

// MatchFound reports control-register bit b7: set when the last search
// found at least one satisfier.
func (e *Engine) MatchFound() bool { return e.matched }

// LoadMicroprogram loads mp into the WCS. Requires Microprogramming mode.
func (e *Engine) LoadMicroprogram(mp Microprogram) error {
	if e.mode != ModeMicroprogramming {
		return fmt.Errorf("%w: LoadMicroprogram in %v", ErrWrongMode, e.mode)
	}
	e.mp = mp
	e.loaded = true
	return nil
}

// SetQuery writes the query argument terms into the Query Memory.
// Requires Set Query mode.
func (e *Engine) SetQuery(q *pif.Encoded) error {
	if e.mode != ModeSetQuery {
		return fmt.Errorf("%w: SetQuery in %v", ErrWrongMode, e.mode)
	}
	if q.Side != pif.QuerySide {
		return fmt.Errorf("fs2: query must be encoded with query-side variable tags")
	}
	e.query = q
	e.qMem = make([]pif.Word, q.NumVars)
	e.qBound = make([]bool, q.NumVars)
	return nil
}

// Reset clears the board's per-retrieval protocol state — loaded query,
// result memory, match flag, and mode — so a pooled board can be handed
// to the next retrieval without leaking the previous one's satisfiers.
// The microprogram in the WCS and the accumulated Stats survive: reload
// is a separate host decision (§3's Microprogramming mode), and the
// statistics model a hardware counter the host reads out explicitly.
func (e *Engine) Reset() {
	e.mode = ModeReadResult
	e.query = nil
	e.qMem = nil
	e.qBound = nil
	e.dbMem = nil
	e.dbBound = nil
	e.dbRef = nil
	e.qRef = nil
	e.dbRefBound = nil
	e.qRefBound = nil
	e.result.Reset()
	e.matched = false
}

// Record is one clause streamed from disk: its address in the compiled
// clause file and its PIF encoding.
type Record struct {
	Addr uint32
	Enc  *pif.Encoded
}

// SearchResult reports one search call.
type SearchResult struct {
	// Matches are the addresses of the satisfiers captured in the Result
	// Memory, in stream order.
	Matches []uint32
	// Examined is the number of clauses streamed through.
	Examined int
	// MatchTime is the simulated TUE time for this search only.
	MatchTime time.Duration
	// ClauseTimes is the per-clause TUE time, in stream order — the
	// quantity the Double Buffer overlaps against each clause's disk
	// transfer time ("the clock period is ... the time taken for the
	// Double Buffer to read in 2 clauses", §3.2).
	ClauseTimes []time.Duration
	// Overflowed reports Result Memory exhaustion (the search still
	// completes; extra satisfiers are lost and counted in Stats).
	Overflowed bool
	// RejectsLevel and RejectsXB split this search's rejections by cause
	// (see Stats).
	RejectsLevel int
	RejectsXB    int
}

// Search streams the records through the Double Buffer, runs partial test
// unification on each, and captures satisfiers in the Result Memory.
// Requires Search mode, a loaded microprogram and a loaded query.
func (e *Engine) Search(records []Record) (SearchResult, error) {
	if e.mode != ModeSearch {
		return SearchResult{}, fmt.Errorf("%w: Search in %v", ErrWrongMode, e.mode)
	}
	if !e.loaded {
		return SearchResult{}, ErrNoMicrocode
	}
	if e.query == nil {
		return SearchResult{}, ErrNoQuery
	}
	// An injected board fault (a TUE microprogram trap mid-stream) aborts
	// the call before any satisfier is captured; the host must re-run the
	// batch elsewhere.
	if err := e.flt.Probe(fault.SiteFS2, e.fltKey); err != nil {
		e.Stats.Faults++
		return SearchResult{}, err
	}
	e.result.Reset()
	e.matched = false
	// Query variable bindings persist for the duration of one clause
	// comparison only; reset per clause below.
	var res SearchResult
	before := e.Stats.MatchTime
	beforeBytes := e.Stats.BytesExamined
	beforeMatched := e.Stats.ClausesMatched
	for _, rec := range records {
		e.buffer.Load(rec.Enc.SizeBytes())
		e.Stats.BytesExamined += int64(rec.Enc.SizeBytes())
		e.Stats.ClausesExamined++
		res.Examined++
		clauseStart := e.Stats.MatchTime
		if e.matchClause(rec.Enc) {
			e.Stats.ClausesMatched++
			if e.result.Capture(rec.Addr, rec.Enc.SizeBytes()) {
				res.Matches = append(res.Matches, rec.Addr)
				e.matched = true
			} else {
				e.Stats.ResultOverflows++
				res.Overflowed = true
			}
		} else if e.lastRejectXB {
			e.Stats.RejectsXB++
			res.RejectsXB++
		} else {
			e.Stats.RejectsLevel++
			res.RejectsLevel++
		}
		res.ClauseTimes = append(res.ClauseTimes, e.Stats.MatchTime-clauseStart)
	}
	res.MatchTime = e.Stats.MatchTime - before
	e.met.examined.Add(int64(res.Examined))
	e.met.matchedC.Add(int64(e.Stats.ClausesMatched - beforeMatched))
	e.met.bytes.Add(e.Stats.BytesExamined - beforeBytes)
	if res.Overflowed {
		e.met.overflows.Inc()
	}
	e.met.searchSim.ObserveDuration(res.MatchTime)
	return res, nil
}

// ReadResult returns the satisfier addresses captured by the last search.
// Requires Read Result mode.
func (e *Engine) ReadResult() ([]uint32, error) {
	if e.mode != ModeReadResult {
		return nil, fmt.Errorf("%w: ReadResult in %v", ErrWrongMode, e.mode)
	}
	return e.result.Addresses(), nil
}

// countOp records one execution of op in the statistics.
func (e *Engine) countOp(op OpCode) {
	e.Stats.OpCounts[op]++
	e.Stats.MatchTime += e.opTime[op]
}

// OpTime exposes the derived Table-1 execution time for op.
func (e *Engine) OpTime(op OpCode) time.Duration { return e.opTime[op] }

// Breakdowns returns the per-figure timing calculations (Figures 6–12).
func Breakdowns() []hw.Operation {
	ops := Operations()
	order := []OpCode{OpMatch, OpDBStore, OpQueryStore, OpDBFetch,
		OpQueryFetch, OpDBCrossBoundFetch, OpQueryCrossBoundFetch}
	out := make([]hw.Operation, 0, len(order))
	for _, c := range order {
		out = append(out, ops[c])
	}
	return out
}
