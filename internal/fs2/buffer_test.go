package fs2

import "testing"

func TestResultMemoryGeometry(t *testing.T) {
	// §3.2: 6-bit satisfier counter, 9-bit offset counter, 32 KB total.
	if ResultSlots != 1<<6 {
		t.Errorf("ResultSlots = %d, want 64 (6-bit counter)", ResultSlots)
	}
	if ResultSlotBytes != 1<<9 {
		t.Errorf("ResultSlotBytes = %d, want 512 (9-bit counter)", ResultSlotBytes)
	}
	if ResultMemoryBytes != 32*1024 {
		t.Errorf("ResultMemoryBytes = %d, want 32768", ResultMemoryBytes)
	}
}

func TestResultMemoryCapture(t *testing.T) {
	var rm ResultMemory
	if !rm.Capture(10, 100) {
		t.Fatal("capture failed")
	}
	if rm.Count() != 1 || rm.BytesStored != 100 {
		t.Errorf("count=%d bytes=%d", rm.Count(), rm.BytesStored)
	}
	// Oversized clause rejected.
	if rm.Capture(11, ResultSlotBytes+1) {
		t.Error("oversized clause should not be captured")
	}
	// Fill to capacity.
	for i := rm.Count(); i < ResultSlots; i++ {
		if !rm.Capture(uint32(i), 10) {
			t.Fatalf("capture %d failed early", i)
		}
	}
	if rm.Capture(99, 10) {
		t.Error("capture beyond the satisfier counter should fail")
	}
	addrs := rm.Addresses()
	if len(addrs) != ResultSlots || addrs[0] != 10 {
		t.Errorf("addresses = %d, first %d", len(addrs), addrs[0])
	}
	rm.Reset()
	if rm.Count() != 0 || rm.BytesStored != 0 {
		t.Error("reset failed")
	}
}

func TestDoubleBufferAlternates(t *testing.T) {
	var db DoubleBuffer
	start := db.InputBank()
	db.Load(100)
	if db.InputBank() == start {
		t.Error("banks should alternate per load")
	}
	db.Load(300)
	if db.InputBank() != start {
		t.Error("banks should alternate back")
	}
	if db.Loads != 2 || db.Toggles != 2 || db.MaxClauseBytes != 300 {
		t.Errorf("stats = %+v", db)
	}
}
