package vme

import (
	"testing"

	"clare/internal/fault"
	"clare/internal/fs2"
	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/symtab"
)

func TestWindowBounds(t *testing.T) {
	if !InWindow(WindowBase) || !InWindow(WindowEnd) {
		t.Error("window endpoints should be inside")
	}
	if InWindow(WindowBase-1) || InWindow(WindowEnd+1) {
		t.Error("addresses outside the window accepted")
	}
	if WindowBase != 0xffff7e00 || WindowEnd != 0xffff7fff {
		t.Error("window must match the §2.2 constants")
	}
}

func TestBoardSelectionBit(t *testing.T) {
	b := NewBus(fs2.New())
	// b2 = 0 selects FS1, 1 selects FS2 (§2.2).
	b.WriteControl(0b000)
	if b.Selected() != BoardFS1 {
		t.Error("b2=0 should select FS1")
	}
	b.WriteControl(0b100)
	if b.Selected() != BoardFS2 {
		t.Error("b2=1 should select FS2")
	}
	b.SelectFS1()
	if b.Selected() != BoardFS1 {
		t.Error("SelectFS1 failed")
	}
}

func TestModeBitsDriveFS2(t *testing.T) {
	e := fs2.New()
	b := NewBus(e)
	cases := map[fs2.Mode]uint8{
		fs2.ModeReadResult:       0b100,
		fs2.ModeSearch:           0b110, // b1=1 b0=0
		fs2.ModeMicroprogramming: 0b101, // b1=0 b0=1
		fs2.ModeSetQuery:         0b111,
	}
	for mode, want := range cases {
		got, err := b.SelectFS2(mode)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("SelectFS2(%v) wrote 0b%03b, want 0b%03b", mode, got, want)
		}
		if e.Mode() != mode {
			t.Errorf("engine mode = %v, want %v", e.Mode(), mode)
		}
	}
}

func TestMatchBitReadOnly(t *testing.T) {
	e := fs2.New()
	b := NewBus(e)
	// Writing b7 must not stick.
	b.WriteControl(1 << BitMatch)
	if b.ReadControl()&(1<<BitMatch) != 0 {
		t.Error("b7 should be read-only")
	}
}

func TestFullProtocolSequence(t *testing.T) {
	// The §3 search protocol end-to-end through the register interface:
	// microprogram → set query → search → read result.
	e := fs2.New()
	bus := NewBus(e)
	syms := symtab.New()
	enc := pif.NewEncoder(syms)

	if _, err := bus.SelectFS2(fs2.ModeMicroprogramming); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadMicroprogram(fs2.MPLevel3XB); err != nil {
		t.Fatal(err)
	}
	q, err := enc.Encode(parse.MustTerm("p(a, X)"), pif.QuerySide)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.SelectFS2(fs2.ModeSetQuery); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	h1, _ := enc.Encode(parse.MustTerm("p(a, 1)"), pif.DBSide)
	h2, _ := enc.Encode(parse.MustTerm("p(b, 2)"), pif.DBSide)
	if _, err := bus.SelectFS2(fs2.ModeSearch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search([]fs2.Record{{Addr: 0, Enc: h1}, {Addr: 10, Enc: h2}}); err != nil {
		t.Fatal(err)
	}
	// b7 should now read set.
	if bus.ReadControl()&(1<<BitMatch) == 0 {
		t.Error("match bit b7 not visible through the bus")
	}
	if _, err := bus.SelectFS2(fs2.ModeReadResult); err != nil {
		t.Fatal(err)
	}
	addrs, err := e.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != 0 {
		t.Errorf("result = %v", addrs)
	}
}

func TestStringDiagnostics(t *testing.T) {
	b := NewBus(fs2.New())
	if _, err := b.SelectFS2(fs2.ModeSearch); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if s == "" {
		t.Error("empty diagnostics")
	}
}

func TestBusTimeoutInjection(t *testing.T) {
	e := fs2.New()
	b := NewBus(e)
	b.SetFaults(fault.New(1).Add(fault.Rule{Site: fault.SiteBus, Nth: 1, Limit: 1}), "0")
	// The timed-out write must not reach the control register.
	if _, err := b.SelectFS2(fs2.ModeSearch); !fault.Is(err) {
		t.Fatalf("SelectFS2 error = %v, want injected bus timeout", err)
	}
	if b.Selected() != BoardFS1 || b.Timeouts != 1 {
		t.Fatalf("timed-out write changed state: %v timeouts=%d", b.Selected(), b.Timeouts)
	}
	// The bus recovers once the rule's budget is spent.
	if _, err := b.SelectFS2(fs2.ModeSearch); err != nil {
		t.Fatal(err)
	}
	if b.Selected() != BoardFS2 || e.Mode() != fs2.ModeSearch {
		t.Error("recovered write did not drive the engine")
	}
}
