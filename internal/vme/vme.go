// Package vme models the host side of CLARE's SUN3/160 attachment: the
// memory-mapped control window and the 8-bit control register that selects
// and drives the two filter boards (§2.2).
//
// CLARE is mapped into /dev/vme24d16 with a shared window for FS1 and
// FS2. The register protocol is:
//
//   - bit b2 selects the board: 0 = FS1, 1 = FS2 (the boards are mutually
//     exclusive).
//   - bits b0/b1 select the board's operational mode (§3's table).
//   - bit b7 (read-only) reports that the last search found a match.
package vme

import (
	"fmt"

	"clare/internal/fault"
	"clare/internal/fs2"
	"clare/internal/telemetry"
)

// The shared address window (§2.2). The paper quotes the hex range
// ffff7e00–ffff7fff for the boards' registers within the 24-bit VME
// space's mapping.
const (
	WindowBase uint32 = 0xffff7e00
	WindowEnd  uint32 = 0xffff7fff
)

// Control register bit positions.
const (
	BitMode0  = 0 // b0: mode select low
	BitMode1  = 1 // b1: mode select high
	BitSelect = 2 // b2: 0 = FS1, 1 = FS2
	BitMatch  = 7 // b7: match found (read-only)
)

// Board identifies which filter the control register addresses.
type Board uint8

const (
	// BoardFS1 is the superimposed-codeword index filter.
	BoardFS1 Board = iota
	// BoardFS2 is the partial test unification filter.
	BoardFS2
)

func (b Board) String() string {
	if b == BoardFS1 {
		return "FS1"
	}
	return "FS2"
}

// Bus is the host's view of the CLARE window: a control register wired to
// the FS2 engine (FS1's matcher is combinational and has no modes; its
// selection bit exists so the two boards never drive the bus together).
type Bus struct {
	fs2     *fs2.Engine
	control uint8
	met     busMetrics

	// flt, when non-nil, injects bus timeouts: SelectFS2 probes
	// fault.SiteBus before driving the control register.
	flt    *fault.Injector
	fltKey string

	// Timeouts counts injected bus faults this bus surfaced.
	Timeouts int
}

// busMetrics are the bus's registry handles; the zero value (all nil)
// makes every observation a no-op.
type busMetrics struct {
	writesFS1 *telemetry.Counter
	writesFS2 *telemetry.Counter
}

// NewBus wires a bus to an FS2 engine.
func NewBus(engine *fs2.Engine) *Bus { return &Bus{fs2: engine} }

// Instrument wires the bus to a metrics registry: control-register writes
// are counted per selected board. labels identify the chassis slot.
func (b *Bus) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	board := func(name string) telemetry.Labels {
		l := telemetry.Labels{"board": name}
		for k, v := range labels {
			l[k] = v
		}
		return l
	}
	b.met = busMetrics{
		writesFS1: reg.Counter("clare_vme_control_writes_total", "control-register writes per selected board", board("fs1")),
		writesFS2: reg.Counter("clare_vme_control_writes_total", "control-register writes per selected board", board("fs2")),
	}
}

// InWindow reports whether addr falls inside the CLARE register window.
func InWindow(addr uint32) bool { return addr >= WindowBase && addr <= WindowEnd }

// WriteControl writes the control register, switching board selection and
// operational mode. Bit 7 is read-only and ignored on writes.
func (b *Bus) WriteControl(v uint8) {
	b.control = v &^ (1 << BitMatch)
	if b.Selected() == BoardFS2 {
		mode := fs2.ModeFromBits(v>>BitMode0&1, v>>BitMode1&1)
		b.fs2.SetMode(mode)
		b.met.writesFS2.Inc()
	} else {
		b.met.writesFS1.Inc()
	}
}

// ReadControl returns the control register with the live match bit.
func (b *Bus) ReadControl() uint8 {
	v := b.control
	if b.Selected() == BoardFS2 && b.fs2.MatchFound() {
		v |= 1 << BitMatch
	}
	return v
}

// Selected reports which board bit b2 addresses.
func (b *Bus) Selected() Board {
	if b.control&(1<<BitSelect) != 0 {
		return BoardFS2
	}
	return BoardFS1
}

// SetFaults arms fault injection on the bus. key identifies the slot to
// keyed rules.
func (b *Bus) SetFaults(inj *fault.Injector, key string) {
	b.flt = inj
	b.fltKey = key
}

// SelectFS2 sets b2 and the FS2 mode bits in one write, returning the
// value written — a convenience for the §3 protocol sequences. An
// injected bus timeout (the board stops acknowledging the host) leaves
// the control register untouched and surfaces as an error.
func (b *Bus) SelectFS2(mode fs2.Mode) (uint8, error) {
	if err := b.flt.Probe(fault.SiteBus, b.fltKey); err != nil {
		b.Timeouts++
		return 0, err
	}
	b0, b1 := mode.ControlBits()
	v := uint8(1<<BitSelect) | b0<<BitMode0 | b1<<BitMode1
	b.WriteControl(v)
	return v, nil
}

// SelectFS1 clears b2, handing the window to FS1.
func (b *Bus) SelectFS1() { b.WriteControl(b.control &^ (1 << BitSelect)) }

// FS2 exposes the wired engine.
func (b *Bus) FS2() *fs2.Engine { return b.fs2 }

// String renders the register for diagnostics.
func (b *Bus) String() string {
	return fmt.Sprintf("vme control=0b%08b board=%v", b.ReadControl(), b.Selected())
}

// Chassis is a card cage holding several CLARE buses — the paper's
// single-board VME setup generalised to a multi-board configuration.
// Each slot's bus (and the FS2 board behind it) is independent; slot 0
// reproduces the original one-board chassis.
type Chassis struct {
	buses []*Bus
}

// NewChassis assembles a chassis from the given buses, in slot order.
func NewChassis(buses ...*Bus) *Chassis { return &Chassis{buses: buses} }

// Slots returns the number of occupied slots.
func (c *Chassis) Slots() int { return len(c.buses) }

// Slot returns the bus in slot i.
func (c *Chassis) Slot(i int) *Bus { return c.buses[i] }
