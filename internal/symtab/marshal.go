package symtab

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Serialised layout (big-endian):
//
//	magic  uint16 0x57AB
//	count  uint32
//	per entry: kind uint8, then
//	    atom:  len uint16, bytes
//	    float: 8 bytes IEEE-754
//
// Refs are positional (entry i has Ref i+1), so the table round-trips with
// identical references — required for PIF content fields to stay valid.

const tableMagic = 0x57AB

// MarshalBinary serialises the table.
func (t *Table) MarshalBinary() ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	buf := make([]byte, 0, 8+len(t.entries)*12)
	var tmp [8]byte
	binary.BigEndian.PutUint16(tmp[:2], tableMagic)
	buf = append(buf, tmp[:2]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(t.entries)))
	buf = append(buf, tmp[:4]...)
	for _, e := range t.entries {
		buf = append(buf, byte(e.kind))
		switch e.kind {
		case KindAtom:
			if len(e.name) > 0xFFFF {
				return nil, fmt.Errorf("symtab: atom too long (%d bytes)", len(e.name))
			}
			binary.BigEndian.PutUint16(tmp[:2], uint16(len(e.name)))
			buf = append(buf, tmp[:2]...)
			buf = append(buf, e.name...)
		case KindFloat:
			binary.BigEndian.PutUint64(tmp[:8], math.Float64bits(e.fval))
			buf = append(buf, tmp[:8]...)
		default:
			return nil, fmt.Errorf("symtab: unknown kind %d", e.kind)
		}
	}
	return buf, nil
}

// UnmarshalTable parses a serialised table. Refs are identical to the
// table that was marshalled.
func UnmarshalTable(data []byte) (*Table, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("symtab: table blob too short")
	}
	if binary.BigEndian.Uint16(data[0:2]) != tableMagic {
		return nil, fmt.Errorf("symtab: bad table magic")
	}
	count := int(binary.BigEndian.Uint32(data[2:6]))
	t := New()
	pos := 6
	need := func(n int) error {
		if pos+n > len(data) {
			return fmt.Errorf("symtab: truncated table at byte %d", pos)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		kind := Kind(data[pos])
		pos++
		switch kind {
		case KindAtom:
			if err := need(2); err != nil {
				return nil, err
			}
			n := int(binary.BigEndian.Uint16(data[pos:]))
			pos += 2
			if err := need(n); err != nil {
				return nil, err
			}
			name := string(data[pos : pos+n])
			pos += n
			if got := t.Atom(name); got != Ref(i+1) {
				return nil, fmt.Errorf("symtab: duplicate atom %q breaks ref stability", name)
			}
		case KindFloat:
			if err := need(8); err != nil {
				return nil, err
			}
			v := math.Float64frombits(binary.BigEndian.Uint64(data[pos:]))
			pos += 8
			if got := t.Float(v); got != Ref(i+1) {
				return nil, fmt.Errorf("symtab: duplicate float %v breaks ref stability", v)
			}
		default:
			return nil, fmt.Errorf("symtab: unknown entry kind %d", kind)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("symtab: %d trailing bytes", len(data)-pos)
	}
	return t, nil
}
