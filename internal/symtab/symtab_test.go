package symtab

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomInterning(t *testing.T) {
	tb := New()
	a := tb.Atom("foo")
	b := tb.Atom("bar")
	if a == b {
		t.Fatalf("distinct atoms share ref %d", a)
	}
	if got := tb.Atom("foo"); got != a {
		t.Errorf("re-interning foo: got %d want %d", got, a)
	}
	if name := tb.MustName(a); name != "foo" {
		t.Errorf("Name(%d) = %q, want foo", a, name)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tb.Len())
	}
}

func TestRefsStartAtOne(t *testing.T) {
	tb := New()
	if r := tb.Atom("x"); r != 1 {
		t.Errorf("first ref = %d, want 1", r)
	}
	if _, err := tb.Name(NoRef); err == nil {
		t.Error("Name(NoRef) should fail")
	}
}

func TestFloatInterning(t *testing.T) {
	tb := New()
	a := tb.Float(3.14)
	if got := tb.Float(3.14); got != a {
		t.Errorf("re-interning 3.14: got %d want %d", got, a)
	}
	if tb.Float(2.71) == a {
		t.Error("distinct floats share a ref")
	}
	if v := tb.MustFloat(a); v != 3.14 {
		t.Errorf("FloatValue = %v, want 3.14", v)
	}
	// 0.0 and -0.0 have different bit patterns and must not collide.
	if tb.Float(0.0) == tb.Float(math.Copysign(0, -1)) {
		t.Error("0.0 and -0.0 interned to the same ref")
	}
}

func TestNaNCanonicalised(t *testing.T) {
	tb := New()
	a := tb.Float(math.NaN())
	b := tb.Float(math.Float64frombits(0x7ff8000000000001)) // a different NaN payload
	if a != b {
		t.Errorf("NaNs interned differently: %d vs %d", a, b)
	}
}

func TestKindSeparation(t *testing.T) {
	tb := New()
	a := tb.Atom("1.5")
	f := tb.Float(1.5)
	if a == f {
		t.Fatal("atom and float collide")
	}
	if _, err := tb.FloatValue(a); err == nil {
		t.Error("FloatValue(atom ref) should fail")
	}
	if _, err := tb.Name(f); err == nil {
		t.Error("Name(float ref) should fail")
	}
	k, err := tb.Kind(f)
	if err != nil || k != KindFloat {
		t.Errorf("Kind(float) = %v, %v", k, err)
	}
}

func TestLookupAtom(t *testing.T) {
	tb := New()
	if _, ok := tb.LookupAtom("ghost"); ok {
		t.Error("LookupAtom found an atom in an empty table")
	}
	r := tb.Atom("present")
	got, ok := tb.LookupAtom("present")
	if !ok || got != r {
		t.Errorf("LookupAtom = %d,%v want %d,true", got, ok, r)
	}
}

func TestAtomsSorted(t *testing.T) {
	tb := New()
	for _, s := range []string{"zebra", "apple", "mango"} {
		tb.Atom(s)
	}
	got := tb.Atoms()
	want := []string{"apple", "mango", "zebra"}
	if len(got) != len(want) {
		t.Fatalf("Atoms() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Atoms()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestConcurrentInterning(t *testing.T) {
	tb := New()
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	refs := make([][]Ref, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			refs[g] = make([]Ref, perG)
			for i := 0; i < perG; i++ {
				refs[g][i] = tb.Atom(fmt.Sprintf("sym%d", i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if refs[g][i] != refs[0][i] {
				t.Fatalf("goroutine %d saw ref %d for sym%d, goroutine 0 saw %d",
					g, refs[g][i], i, refs[0][i])
			}
		}
	}
	if tb.Len() != perG {
		t.Errorf("Len = %d, want %d", tb.Len(), perG)
	}
}

// Property: interning is a function — equal names yield equal refs, and
// Name is its left inverse.
func TestQuickAtomRoundTrip(t *testing.T) {
	tb := New()
	f := func(name string) bool {
		r := tb.Atom(name)
		return tb.MustName(r) == name && tb.Atom(name) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	tb := New()
	f := func(v float64) bool {
		r := tb.Float(v)
		got := tb.MustFloat(r)
		if v != v { // NaN in, NaN out
			return got != got
		}
		return math.Float64bits(got) == math.Float64bits(v) && tb.Float(v) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
