package symtab

import (
	"math"
	"testing"
)

func TestTableRoundTrip(t *testing.T) {
	tb := New()
	refs := map[string]Ref{}
	for _, s := range []string{"alpha", "beta", "", "with space", "unicode λ"} {
		refs[s] = tb.Atom(s)
	}
	f1 := tb.Float(3.25)
	f2 := tb.Float(math.Copysign(0, -1)) // genuine -0.0 (the literal -0.0 is +0)
	mid := tb.Atom("interleaved")

	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tb.Len())
	}
	// Refs must be IDENTICAL (PIF content fields depend on it).
	for s, r := range refs {
		if got.Atom(s) != r {
			t.Errorf("atom %q ref = %d, want %d", s, got.Atom(s), r)
		}
	}
	if got.Float(3.25) != f1 || got.Float(math.Copysign(0, -1)) != f2 {
		t.Error("float refs changed")
	}
	if got.Atom("interleaved") != mid {
		t.Error("interleaved atom ref changed")
	}
	// New interning continues from the same point.
	if got.Atom("fresh") != tb.Atom("fresh") {
		t.Error("post-load interning diverged")
	}
}

func TestUnmarshalTableErrors(t *testing.T) {
	if _, err := UnmarshalTable(nil); err == nil {
		t.Error("nil blob should fail")
	}
	if _, err := UnmarshalTable([]byte{0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad magic should fail")
	}
	tb := New()
	tb.Atom("x")
	tb.Float(1.5)
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalTable(data[:len(data)-2]); err == nil {
		t.Error("truncated blob should fail")
	}
	if _, err := UnmarshalTable(append(data, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	data, err := New().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTable(data)
	if err != nil || got.Len() != 0 {
		t.Errorf("empty round trip: %v, len %d", err, got.Len())
	}
}
