// Package symtab implements the symbol table used throughout the CLARE
// reproduction.
//
// In the paper's Pseudo In-line Format (PIF, Table A1) the content field of
// an atom or float argument is a "symbol table offset": a hashed reference
// into a shared table of interned symbols. Equality of two interned symbols
// is therefore a single integer comparison, which is exactly what the FS2
// hardware comparator performs. This package provides that table for both
// the software Prolog substrate and the simulated hardware.
package symtab

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Ref is a symbol table offset. Refs are dense, start at 1 and are stable
// for the lifetime of the table. Ref 0 is reserved as "no symbol".
type Ref uint32

// NoRef is the zero Ref; it never names a symbol.
const NoRef Ref = 0

// Kind distinguishes the symbol namespaces kept in one table.
type Kind uint8

const (
	// KindAtom is an atom constant (also used for functor names).
	KindAtom Kind = iota
	// KindFloat is a floating point constant. The paper stores floats in
	// the symbol table and compares their table offsets (Figure 1 case 2).
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindAtom:
		return "atom"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

type entry struct {
	kind Kind
	name string  // valid when kind == KindAtom
	fval float64 // valid when kind == KindFloat
}

// Table is a concurrency-safe interning symbol table.
//
// The zero value is not ready for use; call New.
type Table struct {
	mu      sync.RWMutex
	atoms   map[string]Ref
	floats  map[uint64]Ref // keyed by IEEE-754 bits so -0.0 and 0.0 differ
	entries []entry        // entries[ref-1]
}

// New returns an empty symbol table.
func New() *Table {
	return &Table{
		atoms:  make(map[string]Ref),
		floats: make(map[uint64]Ref),
	}
}

// Atom interns name and returns its Ref. Repeated calls with the same name
// return the same Ref.
func (t *Table) Atom(name string) Ref {
	t.mu.RLock()
	r, ok := t.atoms[name]
	t.mu.RUnlock()
	if ok {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.atoms[name]; ok {
		return r
	}
	t.entries = append(t.entries, entry{kind: KindAtom, name: name})
	r = Ref(len(t.entries))
	t.atoms[name] = r
	return r
}

// Float interns v and returns its Ref. NaNs are collapsed to a single
// canonical NaN so that interning is a function of the value.
func (t *Table) Float(v float64) Ref {
	bits := math.Float64bits(v)
	if v != v { // NaN
		bits = math.Float64bits(math.NaN())
		v = math.NaN()
	}
	t.mu.RLock()
	r, ok := t.floats[bits]
	t.mu.RUnlock()
	if ok {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.floats[bits]; ok {
		return r
	}
	t.entries = append(t.entries, entry{kind: KindFloat, fval: v})
	r = Ref(len(t.entries))
	t.floats[bits] = r
	return r
}

// LookupAtom returns the Ref for name without interning it. The second
// result reports whether the atom is present.
func (t *Table) LookupAtom(name string) (Ref, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.atoms[name]
	return r, ok
}

// Kind returns the namespace of r.
func (t *Table) Kind(r Ref) (Kind, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if e, err := t.entry(r); err != nil {
		return 0, err
	} else {
		return e.kind, nil
	}
}

// Name returns the atom text for r. It is an error if r is not an atom.
func (t *Table) Name(r Ref) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, err := t.entry(r)
	if err != nil {
		return "", err
	}
	if e.kind != KindAtom {
		return "", fmt.Errorf("symtab: ref %d is a %s, not an atom", r, e.kind)
	}
	return e.name, nil
}

// FloatValue returns the float for r. It is an error if r is not a float.
func (t *Table) FloatValue(r Ref) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, err := t.entry(r)
	if err != nil {
		return 0, err
	}
	if e.kind != KindFloat {
		return 0, fmt.Errorf("symtab: ref %d is a %s, not a float", r, e.kind)
	}
	return e.fval, nil
}

// MustName is Name but panics on error; for symbols the caller created.
func (t *Table) MustName(r Ref) string {
	s, err := t.Name(r)
	if err != nil {
		panic(err)
	}
	return s
}

// MustFloat is FloatValue but panics on error.
func (t *Table) MustFloat(r Ref) float64 {
	v, err := t.FloatValue(r)
	if err != nil {
		panic(err)
	}
	return v
}

// Len reports the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Atoms returns all interned atom names in sorted order. Intended for
// diagnostics and tests.
func (t *Table) Atoms() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.atoms))
	for name := range t.atoms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (t *Table) entry(r Ref) (entry, error) {
	if r == NoRef || int(r) > len(t.entries) {
		return entry{}, fmt.Errorf("symtab: ref %d out of range (table has %d entries)", r, len(t.entries))
	}
	return t.entries[r-1], nil
}
