package ptu

import (
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
)

var allConfigs = []Config{
	{Level: Level1},
	{Level: Level2},
	{Level: Level3},
	{Level: Level3, CrossBinding: true}, // the FS2 configuration
	{Level: Level4},
	{Level: Level4, CrossBinding: true},
	{Level: Level5},
}

func q(t *testing.T, src string) term.Term {
	t.Helper()
	return parse.MustTerm(src)
}

func TestGroundFactsExactMatch(t *testing.T) {
	query := q(t, "likes(mary, wine)")
	for _, cfg := range allConfigs[1:] { // content compared from level 2
		if !Match(query, q(t, "likes(mary, wine)"), cfg) {
			t.Errorf("%v: identical ground fact should pass", cfg)
		}
		if Match(query, q(t, "likes(mary, beer)"), cfg) {
			t.Errorf("%v: different constant should fail", cfg)
		}
		if Match(query, q(t, "likes(john, wine)"), cfg) {
			t.Errorf("%v: different constant should fail", cfg)
		}
	}
	// Level 1 sees only types: every atom/atom pair passes.
	if !Match(query, q(t, "likes(john, beer)"), Config{Level: Level1}) {
		t.Error("level 1 should pass on type-compatible constants")
	}
	if Match(query, q(t, "likes(john, 42)"), Config{Level: Level1}) {
		t.Error("level 1 must fail on type-incompatible constants")
	}
}

func TestDifferentFunctorOrArity(t *testing.T) {
	for _, cfg := range allConfigs {
		if Match(q(t, "f(a)"), q(t, "g(a)"), cfg) {
			t.Errorf("%v: different functor should fail", cfg)
		}
		if Match(q(t, "f(a)"), q(t, "f(a,b)"), cfg) {
			t.Errorf("%v: different arity should fail", cfg)
		}
	}
}

func TestVariablesPassWithoutXB(t *testing.T) {
	for _, cfg := range []Config{{Level: Level1}, {Level: Level2}, {Level: Level3}, {Level: Level4}} {
		if !Match(q(t, "p(X)"), q(t, "p(anything)"), cfg) {
			t.Errorf("%v: query var should pass", cfg)
		}
		if !Match(q(t, "p(a)"), q(t, "p(Y)"), cfg) {
			t.Errorf("%v: db var should pass", cfg)
		}
		if !Match(q(t, "p(_, 1)"), q(t, "p(k, 1)"), cfg) {
			t.Errorf("%v: anonymous var should pass", cfg)
		}
	}
}

// TestSharedVariablePathology reproduces the §2.1 example: the query
// married_couple(S,S) must reject couples with different partners — but
// only configurations with cross-binding checks can see that.
func TestSharedVariablePathology(t *testing.T) {
	query := q(t, "married_couple(S, S)")
	differ := q(t, "married_couple(fred, wilma)")
	same := q(t, "married_couple(pat, pat)")

	noXB := Config{Level: Level3}
	if !Match(query, differ, noXB) {
		t.Error("without cross-binding the filter cannot reject (fred, wilma) — it should pass as a false drop")
	}
	for _, cfg := range []Config{{Level: Level3, CrossBinding: true}, {Level: Level5}} {
		if Match(query, differ, cfg) {
			t.Errorf("%v: cross-binding check should reject (fred, wilma)", cfg)
		}
		if !Match(query, same, cfg) {
			t.Errorf("%v: (pat, pat) should pass", cfg)
		}
	}
}

// TestDBSideCrossBinding mirrors the paper's f(X,a,b) vs f(A,a,A) example
// (§3.3.6): the db clause shares variable A across arguments 1 and 3.
func TestDBSideCrossBinding(t *testing.T) {
	cfg := FS2Config
	// f(X,a,b) against f(A,a,A): A binds to X (query var), then A occurs
	// again against b. Cross-bound: X ultimately compared with b — X is
	// unbound, so it binds and the match passes (true unifier: X=b, A=b).
	if !Match(q(t, "f(X, a, b)"), q(t, "f(A, a, A)"), cfg) {
		t.Error("f(X,a,b) vs f(A,a,A) unifies and must pass")
	}
	// f(c,a,b) against f(A,a,A): A binds c then must equal b → reject.
	if Match(q(t, "f(c, a, b)"), q(t, "f(A, a, A)"), cfg) {
		t.Error("f(c,a,b) vs f(A,a,A) cannot unify; cross-binding should reject")
	}
	// Same without XB: passes (false drop).
	if !Match(q(t, "f(c, a, b)"), q(t, "f(A, a, A)"), Config{Level: Level3}) {
		t.Error("without XB the pair should pass as a false drop")
	}
}

func TestQueryCrossBoundFetchCase(t *testing.T) {
	// §3.3.7: query variable initially bound to a db variable and used
	// again: query f(X, X) vs clause f(A, b) — X binds A (a var), then X
	// again vs b: ultimate association chases A, binds it to b. Passes
	// (true unifier).
	if !Match(q(t, "f(X, X)"), q(t, "f(A, b)"), FS2Config) {
		t.Error("f(X,X) vs f(A,b) unifies and must pass")
	}
	// f(X, X) vs f(c, b): X binds c, then X vs b → c vs b → reject.
	if Match(q(t, "f(X, X)"), q(t, "f(c, b)"), FS2Config) {
		t.Error("f(X,X) vs f(c,b) cannot unify; should be rejected")
	}
}

func TestLevelDepthBehaviour(t *testing.T) {
	// Structures differing only at nesting depth 2.
	query := q(t, "p(f(g(1)))")
	deepDiff := q(t, "p(f(g(2)))")

	// Level 2 ignores structure internals entirely: passes.
	if !Match(query, deepDiff, Config{Level: Level2}) {
		t.Error("level 2 should ignore structure elements")
	}
	// Level 3 compares first-level elements g(1) vs g(2) by type+content
	// only — both are g/1 structures, contents (functor) equal: passes.
	if !Match(query, deepDiff, Config{Level: Level3}) {
		t.Error("level 3 looks one level deep only; g/1 vs g/1 passes")
	}
	// Level 4 descends fully: 1 vs 2 differs → fails.
	if Match(query, deepDiff, Config{Level: Level4}) {
		t.Error("level 4 should compare full structures")
	}

	// First-level difference: p(f(1)) vs p(f(2)).
	firstDiff := q(t, "p(f(2))")
	query2 := q(t, "p(f(1))")
	if Match(query2, firstDiff, Config{Level: Level3}) {
		t.Error("level 3 should catch first-level element differences")
	}
	if !Match(query2, firstDiff, Config{Level: Level2}) {
		t.Error("level 2 should not catch first-level differences")
	}
}

func TestListMatching(t *testing.T) {
	cfg := FS2Config
	cases := []struct {
		q, h string
		want bool
	}{
		{"p([1,2,3])", "p([1,2,3])", true},
		{"p([1,2,3])", "p([1,2,4])", false},
		{"p([1,2,3])", "p([1,2])", false},    // closed lengths differ
		{"p([1,2|T])", "p([1,2,3,4])", true}, // unlimited list
		{"p([1,2|T])", "p([1])", false},      // open needs ≥ 2
		{"p([1,2|T])", "p([9,2,3])", false},  // element mismatch
		{"p([X,2|T])", "p([9,2,3])", true},   // var element
		{"p([1|A])", "p([1|B])", true},       // both open
		{"p([])", "p([])", true},
		{"p([])", "p([1])", false}, // [] is an atom vs a list
	}
	for _, c := range cases {
		if got := Match(q(t, c.q), q(t, c.h), cfg); got != c.want {
			t.Errorf("Match(%s, %s) = %v, want %v", c.q, c.h, got, c.want)
		}
	}
}

func TestIntFloatDoNotMatch(t *testing.T) {
	for _, cfg := range allConfigs {
		if Match(q(t, "p(1)"), q(t, "p(1.0)"), cfg) {
			t.Errorf("%v: int and float must not match", cfg)
		}
	}
}

// TestSoundness is the core filter invariant: no level may reject a true
// unifier.
func TestSoundness(t *testing.T) {
	pairs := []struct{ q, h string }{
		{"p(X)", "p(a)"},
		{"p(a)", "p(X)"},
		{"p(X, X)", "p(a, a)"},
		{"p(X, X)", "p(A, A)"},
		{"p(X, Y)", "p(A, A)"},
		{"p(f(X), X)", "p(f(a), a)"},
		{"p([1,2|T])", "p([1,2,3])"},
		{"p(f(g(h(1))))", "p(f(g(h(1))))"},
		{"p(X, f(X))", "p(a, f(a))"},
		{"p(X, f(X))", "p(A, f(b))"},
		{"married_couple(S, S)", "married_couple(W, W)"},
		{"p(X, X, X)", "p(A, B, c)"},
		{"p([H|T], T)", "p([1,2,3], [2,3])"},
		{"p(3, 2.5, atom)", "p(3, 2.5, atom)"},
	}
	for _, pr := range pairs {
		qt, ht := q(t, pr.q), q(t, pr.h)
		if !unify.Unifiable(qt, term.Rename(ht)) {
			t.Fatalf("test pair (%s, %s) does not unify — bad test data", pr.q, pr.h)
		}
		for _, cfg := range allConfigs {
			if !Match(qt, ht, cfg) {
				t.Errorf("%v rejected true unifier (%s, %s)", cfg, pr.q, pr.h)
			}
		}
	}
}

// TestMonotoneSelectivity: raising the level can only remove survivors.
func TestMonotoneSelectivity(t *testing.T) {
	queries := []string{
		"p(a, X)", "p(X, X)", "p(f(1), [a,b])", "p(g(h(2)), [1|T])",
	}
	heads := []string{
		"p(a, b)", "p(A, A)", "p(f(1), [a,b])", "p(f(2), [a,c])",
		"p(g(h(3)), [1,2])", "p(X, Y)", "p(a, [b])", "p(f(Z), Z)",
	}
	ladder := []Config{
		{Level: Level1}, {Level: Level2}, {Level: Level3},
		{Level: Level4}, {Level: Level5},
	}
	for _, qs := range queries {
		prev := -1
		for _, cfg := range ladder {
			count := 0
			for _, hs := range heads {
				if Match(q(t, qs), q(t, hs), cfg) {
					count++
				}
			}
			if prev >= 0 && count > prev {
				t.Errorf("query %s: %v passes %d > previous level's %d", qs, cfg, count, prev)
			}
			prev = count
		}
	}
}

// TestLevel5MatchesUnifiability: with full depth and cross-binding, the
// filter agrees exactly with unifiability on every pair we generate.
func TestLevel5MatchesUnifiability(t *testing.T) {
	cfg := Config{Level: Level5}
	f := func(s1, s2 uint16) bool {
		a := term.New("p", genTerm(int(s1), 0), genTerm(int(s1)/5, 2))
		b := term.New("p", genTerm(int(s2), 1), genTerm(int(s2)/3, 4))
		return Match(a, b, cfg) == unify.Unifiable(a, term.Rename(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickSoundnessAllLevels: property form of the soundness invariant
// over generated pairs.
func TestQuickSoundnessAllLevels(t *testing.T) {
	f := func(s1, s2 uint16) bool {
		a := term.New("p", genTerm(int(s1), 0), genTerm(int(s2), 1))
		b := term.New("p", genTerm(int(s2), 2), genTerm(int(s1), 3))
		if !unify.Unifiable(a, term.Rename(b)) {
			return true // only unifiable pairs constrain the filter
		}
		for _, cfg := range allConfigs {
			if !Match(a, b, cfg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFalseDropRate(t *testing.T) {
	heads := []term.Term{
		q(t, "mc(fred, wilma)"),
		q(t, "mc(pat, pat)"),
		q(t, "mc(sam, sam)"),
		q(t, "mc(barney, betty)"),
	}
	query := q(t, "mc(S, S)")
	pass, trueU, falseD := FalseDropRate(query, heads, Config{Level: Level3})
	if pass != 4 || trueU != 2 || falseD != 2 {
		t.Errorf("no-XB: pass=%d true=%d false=%d, want 4/2/2", pass, trueU, falseD)
	}
	pass, trueU, falseD = FalseDropRate(query, heads, FS2Config)
	if pass != 2 || trueU != 2 || falseD != 0 {
		t.Errorf("FS2: pass=%d true=%d false=%d, want 2/2/0", pass, trueU, falseD)
	}
}

func TestNonCallable(t *testing.T) {
	if Match(term.Int(3), q(t, "p(a)"), FS2Config) {
		t.Error("non-callable query should fail")
	}
	if Match(q(t, "p(a)"), term.Int(3), FS2Config) {
		t.Error("non-callable head should fail")
	}
}

func TestMatchArgs(t *testing.T) {
	qa := []term.Term{q(t, "a"), term.NewVar("X")}
	ha := []term.Term{q(t, "a"), q(t, "b")}
	if !MatchArgs(qa, ha, FS2Config) {
		t.Error("MatchArgs should pass")
	}
	if MatchArgs(qa, ha[:1], FS2Config) {
		t.Error("MatchArgs with different lengths should fail")
	}
}

// genTerm builds a small deterministic term from a seed; shared shape with
// the other packages' generators but with shared variables included.
func genTerm(seed, salt int) term.Term {
	v := term.NewVar("V")
	switch (seed + salt) % 9 {
	case 0:
		return term.Atom([]string{"a", "b", "c"}[seed%3])
	case 1:
		return term.Int(int64(seed % 5))
	case 2:
		return term.Float(float64(seed%3) + 0.5)
	case 3:
		return v
	case 4:
		return term.New("f", genTerm(seed/2, salt+1))
	case 5:
		return term.New("g", v, v) // shared variable
	case 6:
		return term.List(genTerm(seed/2, salt+1), genTerm(seed/3, salt+2))
	case 7:
		return term.ListTail(term.NewVar("T"), genTerm(seed/2, salt+1))
	default:
		return term.New("h", genTerm(seed/2, salt+1), term.Int(int64(salt%4)))
	}
}
