// Package ptu is the software reference implementation of the paper's
// partial test unification algorithm (Figure 1) at the five investigated
// matching levels (§2.2):
//
//	Level 1 — type only.
//	Level 2 — type and content, ignoring complex structures.
//	Level 3 — type and content, catering for first level structures.
//	Level 4 — type and content, including full structures.
//	Level 5 — type, content, full structures and variable cross-binding
//	          checks.
//
// The paper's FS2 hardware implements level 3 *plus* cross-binding checks;
// package fs2 simulates that hardware, and this package is the executable
// specification it is validated against.
//
// The defining invariant of every level is SOUNDNESS as a filter: if the
// query goal truly unifies with a clause head, Match must return true.
// Levels only differ in how many non-unifiers they additionally let
// through (false drops).
package ptu

import (
	"fmt"

	"clare/internal/term"
	"clare/internal/unify"
)

// Level selects the matching depth.
type Level int

// The five matching levels of §2.2.
const (
	Level1 Level = 1 + iota
	Level2
	Level3
	Level4
	Level5
)

func (l Level) String() string { return fmt.Sprintf("level%d", int(l)) }

// Config selects a partial-test-unification variant.
type Config struct {
	Level Level
	// CrossBinding enables the variable cross-binding consistency checks
	// that the paper adds to the level-3 algorithm. Level 5 implies it.
	CrossBinding bool
}

// FS2Config is the variant the paper adopts for the hardware: level three
// with cross-binding checks (§2.2).
var FS2Config = Config{Level: Level3, CrossBinding: true}

func (c Config) String() string {
	if c.CrossBinding && c.Level != Level5 {
		return fmt.Sprintf("%v+xb", c.Level)
	}
	return c.Level.String()
}

// matcher carries the two variable stores of Figure 1: the DB variable
// store (db var → query-side term) and the Query variable store (query var
// → db-side term).
type matcher struct {
	cfg     Config
	dbStore map[*term.Var]term.Term
	qStore  map[*term.Var]term.Term
}

func (c Config) xb() bool { return c.CrossBinding || c.Level == Level5 }

// Match reports whether the query goal and the clause head pass partial
// test unification under cfg. Both must be callable; differing principal
// functors fail immediately (in the paper the clause file already groups
// clauses by functor and arity, §2.1).
func Match(query, head term.Term, cfg Config) bool {
	qf, qa, ok := principal(query)
	if !ok {
		return false
	}
	hf, ha, ok := principal(head)
	if !ok {
		return false
	}
	if qf != hf || len(qa) != len(ha) {
		return false
	}
	m := &matcher{cfg: cfg}
	if m.cfg.xb() {
		m.dbStore = make(map[*term.Var]term.Term)
		m.qStore = make(map[*term.Var]term.Term)
	}
	for i := range qa {
		if !m.match(ha[i], qa[i], 0) {
			return false
		}
	}
	return true
}

// MatchArgs runs the argument-pair matching only (functor assumed equal).
func MatchArgs(queryArgs, headArgs []term.Term, cfg Config) bool {
	if len(queryArgs) != len(headArgs) {
		return false
	}
	m := &matcher{cfg: cfg}
	if m.cfg.xb() {
		m.dbStore = make(map[*term.Var]term.Term)
		m.qStore = make(map[*term.Var]term.Term)
	}
	for i := range queryArgs {
		if !m.match(headArgs[i], queryArgs[i], 0) {
			return false
		}
	}
	return true
}

func principal(t term.Term) (string, []term.Term, bool) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t), nil, true
	case *term.Compound:
		return t.Functor, t.Args, true
	}
	return "", nil, false
}

// maxElementDepth returns how deep the level descends into complex terms:
// depth 0 is the argument itself, depth 1 its top-level elements, etc.
func (m *matcher) maxElementDepth() int {
	switch m.cfg.Level {
	case Level1, Level2:
		return 0
	case Level3:
		return 1
	default:
		return 1 << 30 // levels 4 and 5: unbounded
	}
}

// compareContent reports whether contents are compared at all (level ≥ 2).
func (m *matcher) compareContent() bool { return m.cfg.Level >= Level2 }

// match implements Figure 1 for one db/query term pair at the given
// structural depth. It returns true when the pair passes (potential
// unifier) — over-approximating but never under-approximating true
// unifiability.
func (m *matcher) match(db, q term.Term, depth int) bool {
	db, q = term.Deref(db), term.Deref(q)

	// Variable cases (Figure 1 cases 5 and 6) take priority: a variable
	// matches anything, with the cross-binding consistency obligation.
	if dv, ok := db.(*term.Var); ok {
		return m.dbVar(dv, q, depth)
	}
	if qv, ok := q.(*term.Var); ok {
		return m.qVar(qv, db, depth)
	}

	switch db := db.(type) {
	case term.Int:
		// Case 1: both integers → compare contents.
		qi, ok := q.(term.Int)
		if !ok {
			return false
		}
		return !m.compareContent() || db == qi
	case term.Atom:
		// Case 2 (atoms): compare hashed symbol values.
		qa, ok := q.(term.Atom)
		if !ok {
			return false
		}
		return !m.compareContent() || db == qa
	case term.Float:
		// Case 2 (floats).
		qf, ok := q.(term.Float)
		if !ok {
			return false
		}
		return !m.compareContent() || db == qf
	case *term.Compound:
		qc, ok := q.(*term.Compound)
		if !ok {
			return false
		}
		if isList(db) && isList(qc) {
			return m.matchListPair(db, qc, depth)
		}
		// Mixed list/structure pairs (e.g. '.'(a,b) against f(a,b)) fall
		// through to structure matching, which compares functor and arity
		// — sound, since such pairs only unify when those agree.
		return m.matchStructPair(db, qc, depth)
	}
	return false
}

func isList(c *term.Compound) bool {
	return c.Functor == term.ConsFunctor && len(c.Args) == 2
}

// matchStructPair implements case 3: compare functor names and arities and
// (level permitting) the top-level elements.
func (m *matcher) matchStructPair(db, q *term.Compound, depth int) bool {
	// Arity is part of the PIF type tag, so it participates from level 1.
	if len(db.Args) != len(q.Args) {
		return false
	}
	// Functor is the content field: compared from level 2.
	if m.compareContent() && db.Functor != q.Functor {
		return false
	}
	if depth >= m.maxElementDepth() {
		return true
	}
	for i := range db.Args {
		if !m.match(db.Args[i], q.Args[i], depth+1) {
			return false
		}
	}
	return true
}

// matchListPair implements case 4: compare lengths (respecting
// unterminated "unlimited" lists) and the top-level element pairs, walking
// the repetitive-matching scheme of §3.1: counters run until either side is
// exhausted.
func (m *matcher) matchListPair(db, q *term.Compound, depth int) bool {
	dElems, dTail := term.ListSlice(db)
	qElems, qTail := term.ListSlice(q)
	dOpen := !term.Equal(dTail, term.NilAtom)
	qOpen := !term.Equal(qTail, term.NilAtom)

	// Length compatibility is type-level information (the arity bits).
	switch {
	case !dOpen && !qOpen:
		if len(dElems) != len(qElems) {
			return false
		}
	case dOpen && !qOpen:
		if len(dElems) > len(qElems) {
			return false
		}
	case !dOpen && qOpen:
		if len(qElems) > len(dElems) {
			return false
		}
	}

	if depth >= m.maxElementDepth() {
		return true
	}
	n := len(dElems)
	if len(qElems) < n {
		n = len(qElems)
	}
	for i := 0; i < n; i++ {
		if !m.match(dElems[i], qElems[i], depth+1) {
			return false
		}
	}
	// Bind open tails at levels with cross-binding so later occurrences of
	// the tail variable stay consistent.
	if m.cfg.xb() {
		if dOpen {
			if dv, ok := term.Deref(dTail).(*term.Var); ok {
				rest := term.ListTail(qTail, qElems[n:]...)
				if !m.dbVar(dv, rest, depth+1) {
					return false
				}
			}
		}
		if qOpen && !dOpen {
			if qv, ok := term.Deref(qTail).(*term.Var); ok {
				rest := term.ListTail(dTail, dElems[n:]...)
				if !m.qVar(qv, rest, depth+1) {
					return false
				}
			}
		}
	}
	return true
}

// dbVar implements case 5: the database term is a variable.
func (m *matcher) dbVar(dv *term.Var, q term.Term, depth int) bool {
	if !m.cfg.xb() {
		// Without cross-binding checks, a variable matches anything —
		// the §2.1 shared-variable false-drop source.
		return true
	}
	if dv.Name == "_" {
		return true
	}
	assoc, seen := m.dbStore[dv]
	if !seen {
		// 5a: create a new entry, associate with the query term.
		m.dbStore[dv] = q
		return true
	}
	// 5b: extract the association; 5c: chase variable chains to the
	// ultimate association.
	return m.compareAssoc(assoc, q, depth, true)
}

// qVar implements case 6: the query term is a variable.
func (m *matcher) qVar(qv *term.Var, db term.Term, depth int) bool {
	if !m.cfg.xb() {
		return true
	}
	if qv.Name == "_" {
		return true
	}
	assoc, seen := m.qStore[qv]
	if !seen {
		// 6a: create a new entry, associate with the database term.
		m.qStore[qv] = db
		return true
	}
	// 6b/6c.
	return m.compareAssoc(assoc, db, depth, false)
}

// compareAssoc compares a stored association with the current opposing
// term, chasing cross-bound variable chains (cases 5c/6c). assocIsQuerySide
// tells which store the assoc came from: a db var's assoc is a query-side
// term, and vice versa.
func (m *matcher) compareAssoc(assoc, cur term.Term, depth int, assocIsQuerySide bool) bool {
	const chaseLimit = 1024 // variable chains are bounded by slot count
	for i := 0; i < chaseLimit; i++ {
		v, isVar := term.Deref(assoc).(*term.Var)
		if !isVar {
			break
		}
		// The association is itself a variable: fetch its ultimate
		// association from the appropriate store.
		var next term.Term
		var seen bool
		if assocIsQuerySide {
			next, seen = m.qStore[v]
		} else {
			next, seen = m.dbStore[v]
		}
		if !seen {
			// Unbound cross-bound variable: bind it to cur now.
			if assocIsQuerySide {
				m.qStore[v] = cur
			} else {
				m.dbStore[v] = cur
			}
			return true
		}
		assoc = next
		assocIsQuerySide = !assocIsQuerySide
	}
	if _, isVar := term.Deref(assoc).(*term.Var); isVar {
		// Chase limit hit on a pathological variable cycle: pass. Sound
		// (over-approximates) and guarantees termination.
		return true
	}
	// Sides no longer matter for the comparison itself: both terms are
	// unifiable with the same variable under any successful substitution,
	// so a sound partial comparison between them must pass for true
	// unifiers regardless of which side plays "db".
	return m.match(assoc, cur, depth)
}

// FalseDropRate is a convenience for experiments: given a query and a set
// of clause heads, it returns how many heads pass the filter, how many of
// those are true unifiers, and how many are false drops.
func FalseDropRate(query term.Term, heads []term.Term, cfg Config) (pass, trueUnifiers, falseDrops int) {
	for _, h := range heads {
		if !Match(query, h, cfg) {
			continue
		}
		pass++
		if unify.Unifiable(query, term.Rename(h)) {
			trueUnifiers++
		} else {
			falseDrops++
		}
	}
	return pass, trueUnifiers, falseDrops
}
