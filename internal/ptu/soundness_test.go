package ptu

import (
	"testing"

	"clare/internal/term"
	"clare/internal/termgen"
	"clare/internal/unify"
)

// TestSoundnessOracle is the property-based soundness oracle: across a
// large seeded stream of random query/head pairs — including
// shared-variable patterns, open lists, deep structures, and arities
// beyond the paper's 12-argument register file — full unification
// succeeding implies the partial test passes, at every matching level.
// A single false rejection is a filter bug (a lost answer); ghosts
// (false drops) are expected and only reported.
func TestSoundnessOracle(t *testing.T) {
	pairs := 10000
	if testing.Short() {
		pairs = 1500
	}
	cfgs := []Config{
		{Level: Level1},
		{Level: Level2},
		{Level: Level3},
		FS2Config, // level 3 + cross-binding: the hardware's algorithm
	}
	g := termgen.New(20260805)
	ghosts := make([]int, len(cfgs))
	unifiable := 0
	for i := 0; i < pairs; i++ {
		// Mostly small arities; every 8th pair exceeds the 12-argument
		// register file to exercise the host's wide-head handling.
		arity := 1 + i%6
		if i%8 == 0 {
			arity = 13 + i%4
		}
		query, head := g.Pair("p", arity)
		// Unifiability is checked on renamed copies so its destructive
		// bindings never leak into the pair under test.
		truth := unify.Unifiable(term.Rename(query), term.Rename(head))
		if truth {
			unifiable++
		}
		for c, cfg := range cfgs {
			pass := Match(query, head, cfg)
			if truth && !pass {
				t.Fatalf("FALSE REJECTION at pair %d (%v):\n  query %v\n  head  %v",
					i, cfg, query, head)
			}
			if !truth && pass {
				ghosts[c]++
			}
		}
	}
	if unifiable == 0 || unifiable == pairs {
		t.Fatalf("degenerate oracle stream: %d/%d unifiable", unifiable, pairs)
	}
	nonUnifiable := pairs - unifiable
	t.Logf("%d pairs, %d unifiable", pairs, unifiable)
	for c, cfg := range cfgs {
		t.Logf("%-9v ghost rate %5.2f%% (%d/%d non-unifiers passed)",
			cfg, 100*float64(ghosts[c])/float64(nonUnifiable), ghosts[c], nonUnifiable)
	}
	// Higher levels are strictly finer filters over the same stream.
	for c := 1; c < len(cfgs); c++ {
		if ghosts[c] > ghosts[c-1] {
			t.Errorf("ghosts not monotone: %v=%d > %v=%d", cfgs[c], ghosts[c], cfgs[c-1], ghosts[c-1])
		}
	}
}
