package scw

// Columnar is the native engine's struct-of-arrays view of a secondary
// file: codewords, mask fields and clause addresses in three parallel
// arrays, grouped in 64-entry blocks. The layout trades the 14-byte
// row records the simulated hardware streams for cache-line-friendly
// columns a CPU can sweep with one AND/compare per entry.
//
// The match itself exploits that per-argument subset tests compose by
// union: for every encoded argument i the SCW+MB test demands
// q_i & code == q_i, and since all q_i are tested against the same
// codeword, ∀i: q_i ⊆ code  ⟺  (⋃ q_i) ⊆ code. A whole entry therefore
// matches iff code covers the union of the query's unmasked argument
// codewords — one 64-bit AND and compare, no per-argument loop. Mask
// bits only change which arguments join the union, so blocks whose
// entries carry no mask bits (the common case: ground facts) take a
// branch-free fast path against a single precomputed union; blocks with
// masked entries fall back to a per-entry union with a one-entry memo.
//
// Columnar scans are bit-for-bit equivalent to Index.ScanRange — same
// survivors, same order, same MaskedHits — which the differential and
// fuzz tests in columnar_test.go enforce against the per-entry
// reference matcher.
type Columnar struct {
	p     Params
	codes []uint64
	masks []uint16
	addrs []uint32
	// blockOr[b] is the OR of the mask fields of entries
	// [b*colBlock, (b+1)*colBlock): zero means the whole block can use
	// the precomputed query union.
	blockOr []uint16
}

// colBlock is the block granularity of the mask summaries: 64 entries =
// 512 bytes of codewords, a whole number of cache lines.
const colBlock = 64

// NewColumnar builds the columnar layout for a slice of index entries.
func NewColumnar(p Params, entries []Entry) *Columnar {
	n := len(entries)
	c := &Columnar{
		p:       p,
		codes:   make([]uint64, n),
		masks:   make([]uint16, n),
		addrs:   make([]uint32, n),
		blockOr: make([]uint16, (n+colBlock-1)/colBlock),
	}
	for j, ent := range entries {
		c.codes[j] = uint64(ent.Code)
		c.masks[j] = uint16(ent.Mask)
		c.addrs[j] = ent.Addr
		c.blockOr[j/colBlock] |= uint16(ent.Mask)
	}
	return c
}

// Len returns the number of entries.
func (c *Columnar) Len() int { return len(c.codes) }

// Addr returns the clause address of the entry at position pos.
func (c *Columnar) Addr(pos uint32) uint32 { return c.addrs[pos] }

// AppendAddrs appends the clause addresses of the given entry positions
// to dst and returns it.
func (c *Columnar) AppendAddrs(dst []uint32, pos []uint32) []uint32 {
	for _, p := range pos {
		dst = append(dst, c.addrs[p])
	}
	return dst
}

// ScanBuf is a reusable survivor buffer for columnar scans. A zero
// ScanBuf is ready to use; reusing one across scans amortises the
// survivor array to a single allocation (ScanRangeInto is allocation-free
// once Pos has grown to the largest range scanned).
type ScanBuf struct {
	// Pos holds the entry positions (indices into the index, not clause
	// addresses) of the survivors, in entry order. Entry position j
	// corresponds to the predicate's j-th clause, which lets callers
	// reach clauses without an address lookup.
	Pos []uint32
	// MaskedHits counts survivors whose entry carries mask bits,
	// mirroring ScanResult.MaskedHits.
	MaskedHits int
	// EntriesScanned and BytesScanned mirror the ScanResult fields.
	EntriesScanned int
	BytesScanned   int

	// reqTab memoises the per-mask required union for the current scan:
	// reqTab[m] is valid iff reqStamp[m] == stamp. Only mask bits below
	// MaxEncodedArgs influence the union, so the table is indexed by the
	// low 12 mask bits and stays at 48 KiB. Stamping makes reuse free —
	// no table clearing between scans.
	reqTab   []uint64
	reqStamp []uint32
	stamp    uint32
}

// reqTabSize covers every mask value that can influence a match: only
// bits below MaxEncodedArgs are consulted.
const reqTabSize = 1 << MaxEncodedArgs

// Reset clears the buffer while keeping its capacity.
func (b *ScanBuf) Reset() {
	b.Pos = b.Pos[:0]
	b.MaskedHits = 0
	b.EntriesScanned = 0
	b.BytesScanned = 0
}

// nextStamp starts a new memo epoch.
func (b *ScanBuf) nextStamp() {
	b.stamp++
	if b.stamp == 0 { // wrapped: invalidate everything once
		clear(b.reqStamp)
		b.stamp = 1
	}
}

// reqFor returns the required union for one masked entry, memoised per
// scan epoch.
func (b *ScanBuf) reqFor(qd QueryDescriptor, mask uint16) uint64 {
	if b.reqTab == nil {
		b.reqTab = make([]uint64, reqTabSize)
		b.reqStamp = make([]uint32, reqTabSize)
		b.stamp = 1
	}
	key := mask & (reqTabSize - 1)
	if b.reqStamp[key] != b.stamp {
		b.reqTab[key] = maskedUnion(qd, mask)
		b.reqStamp[key] = b.stamp
	}
	return b.reqTab[key]
}

// queryUnion returns the OR of the query's encoded argument codewords —
// the required bits when no mask bit cancels any argument.
func queryUnion(qd QueryDescriptor) uint64 {
	n := qd.NArgs
	if n > MaxEncodedArgs {
		n = MaxEncodedArgs
	}
	var u uint64
	for i := 0; i < n; i++ {
		u |= uint64(qd.PerArg[i])
	}
	return u
}

// maskedUnion returns the OR of the query argument codewords whose mask
// bit is clear — the required bits for one masked entry.
func maskedUnion(qd QueryDescriptor, mask uint16) uint64 {
	n := qd.NArgs
	if n > MaxEncodedArgs {
		n = MaxEncodedArgs
	}
	var u uint64
	for i := 0; i < n; i++ {
		if mask&(1<<i) == 0 {
			u |= uint64(qd.PerArg[i])
		}
	}
	return u
}

// ScanRangeInto scans entries [lo, hi) (clamped to the file) and fills
// buf with the survivors. It overwrites buf's previous contents.
func (c *Columnar) ScanRangeInto(qd QueryDescriptor, lo, hi int, buf *ScanBuf) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.codes) {
		hi = len(c.codes)
	}
	if lo > hi {
		lo = hi
	}
	buf.Reset()
	buf.nextStamp()
	buf.EntriesScanned = hi - lo
	buf.BytesScanned = (hi - lo) * EntrySize
	if lo == hi {
		return
	}
	if cap(buf.Pos) < hi-lo {
		buf.Pos = make([]uint32, 0, hi-lo)
	}
	// pos is over-sized so the fast path can store unconditionally and
	// advance the count with a branch-free conditional increment.
	pos := buf.Pos[:hi-lo]
	cnt := 0
	req0 := queryUnion(qd)
	j := lo
	for j < hi {
		blk := j / colBlock
		end := (blk + 1) * colBlock
		if end > hi {
			end = hi
		}
		if c.blockOr[blk] == 0 {
			// Unmasked block: one AND/compare per entry, survivor
			// collection without a data-dependent branch.
			codes := c.codes[j:end]
			base := uint32(j)
			for k, code := range codes {
				pos[cnt] = base + uint32(k)
				if code&req0 == req0 {
					cnt++
				}
			}
			j = end
			continue
		}
		// Masked block: per-entry union, memoised per mask value in the
		// buffer's stamped table, so each distinct mask pays the union
		// loop once per scan.
		for ; j < end; j++ {
			mask := c.masks[j]
			req := req0
			if c.p.MaskBits && mask != 0 {
				req = buf.reqFor(qd, mask)
			}
			if c.codes[j]&req == req {
				pos[cnt] = uint32(j)
				cnt++
				if mask != 0 {
					buf.MaskedHits++
				}
			}
		}
	}
	buf.Pos = pos[:cnt]
}

// ScanInto scans the whole file into buf.
func (c *Columnar) ScanInto(qd QueryDescriptor, buf *ScanBuf) {
	c.ScanRangeInto(qd, 0, len(c.codes), buf)
}
