package scw

import (
	"errors"
	"fmt"
	"time"

	"clare/internal/term"
)

// Board models FS1 as the host sees it: a register-programmed index
// scanner on the shared VME window (selected by control-register bit b2=0,
// §2.2). The protocol mirrors FS2's: load the query descriptor, start a
// scan over a secondary file, read the matching addresses back.
//
// Unlike FS2, FS1 is combinational (PLA + MSI parts, §2.1) and has no
// microprogramming mode; its two states are "idle" and "scanning".
type Board struct {
	enc *Encoder

	queryLoaded bool
	query       QueryDescriptor
	lastResult  ScanResult
	scanned     bool

	// Stats accumulates across scans.
	Stats BoardStats
}

// BoardStats accumulates FS1 activity.
type BoardStats struct {
	Scans          int
	EntriesScanned int64
	BytesScanned   int64
	MatchesFound   int64
	Elapsed        time.Duration
}

// NewBoard returns an FS1 board using the given codeword parameters.
func NewBoard(p Params) (*Board, error) {
	enc, err := NewEncoder(p)
	if err != nil {
		return nil, err
	}
	return &Board{enc: enc}, nil
}

// Encoder exposes the board's codeword encoder (the host uses the same
// parameters to build secondary files).
func (b *Board) Encoder() *Encoder { return b.enc }

// Errors.
var (
	ErrNoQueryLoaded = errors.New("scw: no query descriptor loaded")
	ErrNoScanRun     = errors.New("scw: no scan has run")
)

// LoadQuery builds and latches the query descriptor for goal.
func (b *Board) LoadQuery(goal term.Term) error {
	qd, err := b.enc.EncodeQuery(goal)
	if err != nil {
		return err
	}
	b.query = qd
	b.queryLoaded = true
	b.scanned = false
	return nil
}

// Scan streams the secondary file through the matcher. Requires a loaded
// query.
func (b *Board) Scan(ix *Index) (ScanResult, error) {
	if !b.queryLoaded {
		return ScanResult{}, ErrNoQueryLoaded
	}
	if ix.enc.Params() != b.enc.Params() {
		return ScanResult{}, fmt.Errorf("scw: index parameters %+v do not match board %+v",
			ix.enc.Params(), b.enc.Params())
	}
	res := ix.Scan(b.query)
	b.lastResult = res
	b.scanned = true
	b.Stats.Scans++
	b.Stats.EntriesScanned += int64(res.EntriesScanned)
	b.Stats.BytesScanned += int64(res.BytesScanned)
	b.Stats.MatchesFound += int64(len(res.Addrs))
	b.Stats.Elapsed += res.Elapsed
	return res, nil
}

// MatchFound reports whether the last scan found any address (the FS1
// analogue of FS2's b7).
func (b *Board) MatchFound() bool {
	return b.scanned && len(b.lastResult.Addrs) > 0
}

// ReadResult returns the last scan's addresses.
func (b *Board) ReadResult() ([]uint32, error) {
	if !b.scanned {
		return nil, ErrNoScanRun
	}
	out := make([]uint32, len(b.lastResult.Addrs))
	copy(out, b.lastResult.Addrs)
	return out, nil
}
