package scw

import (
	"fmt"
	"runtime"
	"testing"
)

// sameAsSerial asserts a partitioned scan produced exactly the serial
// result: same survivor positions in the same order, same MaskedHits,
// same entry/byte accounting.
func sameAsSerial(t *testing.T, ref *ScanBuf, got *ScanBuf, label string) {
	t.Helper()
	if len(got.Pos) != len(ref.Pos) {
		t.Fatalf("%s: parallel found %d survivors, serial %d", label, len(got.Pos), len(ref.Pos))
	}
	for i := range got.Pos {
		if got.Pos[i] != ref.Pos[i] {
			t.Fatalf("%s: survivor %d: parallel pos %d, serial %d", label, i, got.Pos[i], ref.Pos[i])
		}
	}
	if got.MaskedHits != ref.MaskedHits {
		t.Fatalf("%s: parallel MaskedHits %d, serial %d", label, got.MaskedHits, ref.MaskedHits)
	}
	if got.EntriesScanned != ref.EntriesScanned || got.BytesScanned != ref.BytesScanned {
		t.Fatalf("%s: parallel scanned %d entries / %d bytes, serial %d / %d",
			label, got.EntriesScanned, got.BytesScanned, ref.EntriesScanned, ref.BytesScanned)
	}
}

// lowerParScanMin forces small scans through the parallel path for the
// duration of a test.
func lowerParScanMin(t testing.TB, min int) {
	t.Helper()
	old := ParScanMinEntries
	ParScanMinEntries = min
	t.Cleanup(func() { ParScanMinEntries = old })
}

// TestParScanDeterminism sweeps worker counts and scan windows over
// generated indexes (masked and unmasked) and demands the partitioned
// scan be bit-identical to the serial one in every configuration.
func TestParScanDeterminism(t *testing.T) {
	lowerParScanMin(t, 32)
	workerCounts := []int{1, 2, 3, 4, 7, 8, 16, runtime.GOMAXPROCS(0)}
	pool := NewScanPool(16)
	for _, maskBits := range []bool{true, false} {
		for arity := 1; arity <= 3; arity++ {
			ix, qds := buildGenIndex(t, int64(100*arity+3), 700, 8, arity, maskBits)
			col := ix.Columnar()
			var ref ScanBuf
			var pb ParScanBuf
			for qi, qd := range qds {
				for _, rng := range [][2]int{{0, 700}, {0, 64}, {37, 651}, {64, 128}, {-5, 10000}, {8, 8}, {120, 60}} {
					col.ScanRangeInto(qd, rng[0], rng[1], &ref)
					for _, w := range workerCounts {
						label := fmt.Sprintf("mask=%v arity=%d q=%d range=%v workers=%d", maskBits, arity, qi, rng, w)
						col.ParScanRangeInto(qd, rng[0], rng[1], w, pool, &pb)
						sameAsSerial(t, &ref, &pb.Out, label)
					}
				}
			}
		}
	}
}

// TestParScanDefaultThreshold exercises the production configuration: a
// file large enough to clear ParScanMinEntries genuinely splits, and the
// result still matches the serial scan.
func TestParScanDefaultThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("large index build")
	}
	n := 4 * ParScanMinEntries
	ix, qds := buildGenIndex(t, 5, n, 4, 2, true)
	col := ix.Columnar()
	pool := NewScanPool(8)
	var ref ScanBuf
	var pb ParScanBuf
	for qi, qd := range qds {
		col.ScanInto(qd, &ref)
		for _, w := range []int{1, 2, 4, 8} {
			col.ParScanInto(qd, w, pool, &pb)
			sameAsSerial(t, &ref, &pb.Out, fmt.Sprintf("q=%d workers=%d", qi, w))
		}
	}
	// A pool that was really used ran real workers, and never more than
	// its bound (+1 transient re-admission).
	if live := pool.LiveWorkers(); live > pool.MaxHelpers()+1 {
		t.Fatalf("pool runs %d workers, bound %d", live, pool.MaxHelpers())
	}
}

// TestParScanNilPool pins the fallback: no pool means a plain serial
// scan, whatever the worker count.
func TestParScanNilPool(t *testing.T) {
	lowerParScanMin(t, 16)
	ix, qds := buildGenIndex(t, 9, 300, 2, 2, true)
	col := ix.Columnar()
	var ref ScanBuf
	var par ParScanBuf
	for qi, qd := range qds {
		col.ScanInto(qd, &ref)
		col.ParScanInto(qd, 8, nil, &par)
		sameAsSerial(t, &ref, &par.Out, fmt.Sprintf("q=%d nil pool", qi))
	}
}

// TestParScanZeroAlloc enforces the allocation discipline of the merged
// path: after one warm-up scan (which grows buffers and spawns workers),
// partitioned scans allocate nothing at any worker count.
func TestParScanZeroAlloc(t *testing.T) {
	lowerParScanMin(t, 64)
	ix, qds := buildGenIndex(t, 11, 2048, 4, 3, true)
	col := ix.Columnar()
	pool := NewScanPool(8)
	var pb ParScanBuf
	for _, w := range []int{2, 4, 8} {
		col.ParScanInto(qds[0], w, pool, &pb) // warm-up: buffers + workers
		allocs := testing.AllocsPerRun(200, func() {
			for _, qd := range qds {
				col.ParScanInto(qd, w, pool, &pb)
			}
		})
		if allocs != 0 {
			t.Fatalf("workers=%d: ParScanInto allocated %v times per run, want 0", w, allocs)
		}
	}
}

// synthColumnar fabricates a large columnar file directly (no term
// encoding), for scaling benchmarks: mostly unmasked entries with a
// sprinkling of masked blocks, codes drawn from a fixed xorshift stream.
func synthColumnar(n int) (*Columnar, []QueryDescriptor) {
	entries := make([]Entry, n)
	s := uint64(0x9E3779B97F4A7C15)
	for i := range entries {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		entries[i].Code = Codeword(s)
		entries[i].Addr = uint32(i)
		if i%1024 < 16 { // one masked stretch per 16 blocks
			entries[i].Mask = Mask(1 << (i % 3))
		}
	}
	p := Params{Width: 64, BitsPerKey: 3, MaskBits: true}
	var qds []QueryDescriptor
	for q := 0; q < 8; q++ {
		var qd QueryDescriptor
		qd.NArgs = 2
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		// Three demanded bits per argument: selective but not empty.
		qd.PerArg[0] = Codeword(s & (s >> 21) & (s >> 43) & 0x7)
		qd.PerArg[1] = Codeword((s >> 3) & 0x38)
		qds = append(qds, qd)
	}
	return NewColumnar(p, entries), qds
}

// BenchmarkParallelScan is the worker-count scaling curve of the
// partitioned columnar scan on a 1M-entry file (~14 MB of secondary
// index). The workers=1 case is the serial baseline through the same
// code path.
func BenchmarkParallelScan(b *testing.B) {
	col, qds := synthColumnar(1 << 20)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := NewScanPool(w - 1)
			var pb ParScanBuf
			col.ParScanInto(qds[0], w, pool, &pb) // warm-up
			b.SetBytes(int64(col.Len() * EntrySize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.ParScanInto(qds[i%len(qds)], w, pool, &pb)
			}
		})
	}
}
