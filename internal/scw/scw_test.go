package scw

import (
	"fmt"
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
)

func newEnc(t *testing.T) *Encoder {
	t.Helper()
	enc, err := NewEncoder(DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func mustMatch(t *testing.T, enc *Encoder, query, head string, want bool) {
	t.Helper()
	ent, err := enc.EncodeClause(parse.MustTerm(head), 0)
	if err != nil {
		t.Fatalf("encode clause %s: %v", head, err)
	}
	qd, err := enc.EncodeQuery(parse.MustTerm(query))
	if err != nil {
		t.Fatalf("encode query %s: %v", query, err)
	}
	if got := enc.Matches(ent, qd); got != want {
		t.Errorf("Matches(%s, %s) = %v, want %v", query, head, got, want)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Width: 0, BitsPerKey: 1},
		{Width: 65, BitsPerKey: 1},
		{Width: 8, BitsPerKey: 0},
		{Width: 8, BitsPerKey: 9},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
	if DefaultParams.Validate() != nil {
		t.Error("default params invalid")
	}
}

func TestGroundExactMatch(t *testing.T) {
	enc := newEnc(t)
	mustMatch(t, enc, "p(a, 1)", "p(a, 1)", true)
	mustMatch(t, enc, "p(a, 1)", "p(b, 1)", false)
	mustMatch(t, enc, "p(a, 1)", "p(a, 2)", false)
}

func TestQueryVariablesDemandNothing(t *testing.T) {
	enc := newEnc(t)
	mustMatch(t, enc, "p(X, 1)", "p(whatever, 1)", true)
	mustMatch(t, enc, "p(X, Y)", "p(a, b)", true)
	mustMatch(t, enc, "p(X, 2)", "p(a, 1)", false)
}

func TestMaskBitsForDBVariables(t *testing.T) {
	enc := newEnc(t)
	// Clause argument is a variable: without mask bits the clause
	// codeword lacks the query's bits and the clause would be lost.
	mustMatch(t, enc, "p(groundval, 1)", "p(X, 1)", true)
	ent, _ := enc.EncodeClause(parse.MustTerm("p(X, 1)"), 0)
	if ent.Mask&1 == 0 {
		t.Error("variable argument 0 should set mask bit 0")
	}
	if ent.Mask&2 != 0 {
		t.Error("ground argument 1 should not set a mask bit")
	}
}

func TestMaskBitsOffIsUnsound(t *testing.T) {
	// The ablation case: plain SCW without mask bits loses clauses with
	// variable arguments — demonstrating why the paper's scheme needs MB.
	enc, err := NewEncoder(Params{Width: 64, BitsPerKey: 3, MaskBits: false})
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := enc.EncodeClause(parse.MustTerm("p(X, 1)"), 0)
	qd, _ := enc.EncodeQuery(parse.MustTerm("p(groundval, 1)"))
	if enc.Matches(ent, qd) {
		t.Skip("hash coincidence covered the query bits; nothing to assert")
	}
	// The miss above is exactly the unsoundness: p(groundval,1) unifies
	// with p(X,1) but the filter rejected it.
}

func TestSharedVariableQueryRetrievesEverything(t *testing.T) {
	// §2.1: married_couple(Same,Same) "would result in the retrieval of
	// the entire predicate".
	enc := newEnc(t)
	qd, err := enc.EncodeQuery(parse.MustTerm("married_couple(S, S)"))
	if err != nil {
		t.Fatal(err)
	}
	if !qd.Unconstrained() {
		t.Error("shared-variable query should be unconstrained")
	}
	for _, head := range []string{
		"married_couple(fred, wilma)",
		"married_couple(pat, pat)",
		"married_couple(a, b)",
	} {
		mustMatch(t, enc, "married_couple(S, S)", head, true)
	}
}

func TestStructureArguments(t *testing.T) {
	enc := newEnc(t)
	mustMatch(t, enc, "p(f(1, 2))", "p(f(1, 2))", true)
	mustMatch(t, enc, "p(f(1, 2))", "p(f(1, 3))", false)
	mustMatch(t, enc, "p(f(1, 2))", "p(g(1, 2))", false)
	mustMatch(t, enc, "p(f(X, 2))", "p(f(1, 2))", true)
	mustMatch(t, enc, "p(f(1))", "p(f(X))", true) // mask via nested var
}

func TestListArguments(t *testing.T) {
	enc := newEnc(t)
	mustMatch(t, enc, "p([1,2])", "p([1,2])", true)
	mustMatch(t, enc, "p([1,2])", "p([1,3])", false)
	mustMatch(t, enc, "p([1,2])", "p([1,2,3])", false) // closed lengths differ
	mustMatch(t, enc, "p([1|T])", "p([1,2,3])", true)  // open query list
	mustMatch(t, enc, "p([9|T])", "p([1,2,3])", false)
	mustMatch(t, enc, "p([1,2])", "p([1|T])", true) // open clause list masks
}

func TestTruncationBeyond12Args(t *testing.T) {
	enc := newEnc(t)
	// Two clauses differing only in argument 13 (index 12): the codeword
	// cannot tell them apart — a deliberate false-drop source (§2.1).
	mk := func(last string) string {
		args := make([]string, 13)
		for i := range args {
			args[i] = fmt.Sprintf("a%d", i)
		}
		args[12] = last
		out := "p("
		for i, a := range args {
			if i > 0 {
				out += ","
			}
			out += a
		}
		return out + ")"
	}
	mustMatch(t, enc, mk("x"), mk("y"), true) // differs only past the limit
	mustMatch(t, enc, mk("x"), mk("x"), true)
	// A difference inside the first 12 is still caught.
	differentEarly := "p(ZZZ" + mk("x")[4:]
	_ = differentEarly
	mustMatch(t, enc, "p(b0,a1,a2,a3,a4,a5,a6,a7,a8,a9,a10,a11,x)", mk("x"), false)
}

// TestSoundness: the index must never lose a true unifier.
func TestSoundness(t *testing.T) {
	enc := newEnc(t)
	pairs := []struct{ q, h string }{
		{"p(X)", "p(a)"},
		{"p(a)", "p(X)"},
		{"p(a, f(b, Y))", "p(a, f(b, c))"},
		{"p(f(X))", "p(f(a))"},
		{"p([1,2|T])", "p([1,2,3])"},
		{"p([A,B])", "p([1,2])"},
		{"p(g(h(1)))", "p(g(h(1)))"},
		{"mc(S, S)", "mc(w, w)"},
		{"p(X, X)", "p(a, a)"},
	}
	for _, pr := range pairs {
		qt, ht := parse.MustTerm(pr.q), parse.MustTerm(pr.h)
		if !unify.Unifiable(qt, term.Rename(ht)) {
			t.Fatalf("bad test pair (%s, %s): does not unify", pr.q, pr.h)
		}
		ent, err := enc.EncodeClause(ht, 0)
		if err != nil {
			t.Fatal(err)
		}
		qd, err := enc.EncodeQuery(qt)
		if err != nil {
			t.Fatal(err)
		}
		if !enc.Matches(ent, qd) {
			t.Errorf("FS1 rejected true unifier (%s, %s)", pr.q, pr.h)
		}
	}
}

// TestQuickSoundness is the property form over generated pairs.
func TestQuickSoundness(t *testing.T) {
	enc := newEnc(t)
	f := func(s1, s2 uint16) bool {
		qt := term.New("p", genTerm(int(s1), 0), genTerm(int(s2), 1))
		ht := term.New("p", genTerm(int(s2), 2), genTerm(int(s1), 3))
		if !unify.Unifiable(qt, term.Rename(ht)) {
			return true
		}
		ent, err := enc.EncodeClause(ht, 0)
		if err != nil {
			return false
		}
		qd, err := enc.EncodeQuery(qt)
		if err != nil {
			return false
		}
		return enc.Matches(ent, qd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexScan(t *testing.T) {
	enc := newEnc(t)
	ix := NewIndex(enc)
	heads := []string{
		"city(edinburgh, scotland)",
		"city(glasgow, scotland)",
		"city(london, england)",
		"city(cardiff, wales)",
	}
	for i, h := range heads {
		if err := ix.Add(parse.MustTerm(h), uint32(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	qd, _ := enc.EncodeQuery(parse.MustTerm("city(X, scotland)"))
	res := ix.Scan(qd)
	if res.EntriesScanned != 4 || res.BytesScanned != 4*EntrySize {
		t.Errorf("scan stats = %+v", res)
	}
	// Both Scottish cities must survive; false drops possible but with 64
	// bits and 4 entries, astronomically unlikely.
	if len(res.Addrs) < 2 {
		t.Fatalf("survivors = %v, want at least the 2 true matches", res.Addrs)
	}
	found := map[uint32]bool{}
	for _, a := range res.Addrs {
		found[a] = true
	}
	if !found[0] || !found[100] {
		t.Errorf("true matches missing from %v", res.Addrs)
	}
	if res.Elapsed <= 0 {
		t.Error("scan should consume simulated time")
	}
}

func TestScanPreservesClauseOrder(t *testing.T) {
	enc := newEnc(t)
	ix := NewIndex(enc)
	for i := 0; i < 10; i++ {
		if err := ix.Add(parse.MustTerm(fmt.Sprintf("n(%d)", i)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	qd, _ := enc.EncodeQuery(parse.MustTerm("n(X)"))
	res := ix.Scan(qd)
	if len(res.Addrs) != 10 {
		t.Fatalf("all-variable query should match everything: %v", res.Addrs)
	}
	for i, a := range res.Addrs {
		if a != uint32(i) {
			t.Fatalf("order broken: %v", res.Addrs)
		}
	}
}

func TestIndexSerialisation(t *testing.T) {
	enc := newEnc(t)
	ix := NewIndex(enc)
	for i := 0; i < 5; i++ {
		if err := ix.Add(parse.MustTerm(fmt.Sprintf("f(k%d, %d)", i, i)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := UnmarshalIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != ix.Len() {
		t.Fatalf("len = %d, want %d", ix2.Len(), ix.Len())
	}
	for i := range ix.entries {
		if ix.entries[i] != ix2.entries[i] {
			t.Errorf("entry %d differs", i)
		}
	}
	// Same scan results.
	qd, _ := enc.EncodeQuery(parse.MustTerm("f(k2, X)"))
	r1, r2 := ix.Scan(qd), ix2.Scan(qd)
	if len(r1.Addrs) != len(r2.Addrs) {
		t.Error("scan results differ after round trip")
	}
	// Corruption detection.
	if _, err := UnmarshalIndex(data[:len(data)-1]); err == nil {
		t.Error("truncated index should fail")
	}
	if _, err := UnmarshalIndex([]byte{1, 2, 3}); err == nil {
		t.Error("garbage index should fail")
	}
}

func TestEntryMarshal(t *testing.T) {
	e := Entry{Code: 0xDEADBEEFCAFEF00D, Mask: 0x0A5A, Addr: 0x12345678}
	b := e.MarshalBinary()
	if len(b) != EntrySize {
		t.Fatalf("entry size = %d", len(b))
	}
	got, err := UnmarshalEntry(b)
	if err != nil || got != e {
		t.Errorf("round trip = %+v, %v", got, err)
	}
	if _, err := UnmarshalEntry(b[:5]); err == nil {
		t.Error("short entry should fail")
	}
}

func TestScanTime(t *testing.T) {
	// 4.5 MB at 4.5 MB/s must take 1 simulated second.
	if got := ScanTime(4_500_000); got.Seconds() < 0.999 || got.Seconds() > 1.001 {
		t.Errorf("ScanTime(4.5MB) = %v", got)
	}
}

func TestCodewordWeightGrowsWithArgs(t *testing.T) {
	enc := newEnc(t)
	e1, _ := enc.EncodeClause(parse.MustTerm("p(a)"), 0)
	e3, _ := enc.EncodeClause(parse.MustTerm("p(a, b, c)"), 0)
	if e3.Code.PopCount() < e1.Code.PopCount() {
		t.Errorf("3-arg weight %d < 1-arg weight %d", e3.Code.PopCount(), e1.Code.PopCount())
	}
}

func TestNarrowCodewordsFalseDropMore(t *testing.T) {
	// With very narrow codewords, distinct constants frequently collide:
	// the §2.1 "non-unique encoding" false-drop source. Statistically, an
	// 8-bit 2-bit-per-key scheme must pass some non-unifiers that the
	// 64-bit scheme rejects.
	wide := newEnc(t)
	narrow, err := NewEncoder(Params{Width: 8, BitsPerKey: 2, MaskBits: true})
	if err != nil {
		t.Fatal(err)
	}
	wideFD, narrowFD := 0, 0
	for i := 0; i < 200; i++ {
		head := parse.MustTerm(fmt.Sprintf("k(c%d)", i))
		query := parse.MustTerm("k(c99999)") // unifies with nothing here
		for _, tc := range []struct {
			enc *Encoder
			ctr *int
		}{{wide, &wideFD}, {narrow, &narrowFD}} {
			ent, _ := tc.enc.EncodeClause(head, 0)
			qd, _ := tc.enc.EncodeQuery(query)
			if tc.enc.Matches(ent, qd) {
				*tc.ctr++
			}
		}
	}
	if narrowFD <= wideFD {
		t.Errorf("narrow codewords should false-drop more: narrow=%d wide=%d", narrowFD, wideFD)
	}
}

// genTerm builds a small deterministic term from a seed.
func genTerm(seed, salt int) term.Term {
	v := term.NewVar("V")
	switch (seed + salt) % 8 {
	case 0:
		return term.Atom([]string{"a", "b", "c"}[seed%3])
	case 1:
		return term.Int(int64(seed % 5))
	case 2:
		return term.Float(float64(seed%3) + 0.5)
	case 3:
		return v
	case 4:
		return term.New("f", genTerm(seed/2, salt+1))
	case 5:
		return term.List(genTerm(seed/2, salt+1))
	case 6:
		return term.ListTail(term.NewVar("T"), genTerm(seed/2, salt+1))
	default:
		return term.New("g", v, genTerm(seed/3, salt+2))
	}
}
