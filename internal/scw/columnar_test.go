package scw

import (
	"fmt"
	"testing"

	"clare/internal/term"
	"clare/internal/termgen"
)

// buildGenIndex builds an index over n termgen clause heads of the given
// arity and returns it with m query descriptors drawn from the same
// generator. Pair derives half the heads from the queries, so the stream
// contains true unifiers, near-misses, masked entries (heads with
// variable arguments) and shared-variable queries.
func buildGenIndex(t testing.TB, seed int64, n, m, arity int, maskBits bool) (*Index, []QueryDescriptor) {
	t.Helper()
	enc, err := NewEncoder(Params{Width: 64, BitsPerKey: 3, MaskBits: maskBits})
	if err != nil {
		t.Fatal(err)
	}
	gen := termgen.New(seed)
	ix := NewIndex(enc)
	var qds []QueryDescriptor
	for i := 0; i < n || len(qds) < m; i++ {
		q, h := gen.Pair("p", arity)
		if ix.Len() < n {
			if err := ix.Add(h, uint32(ix.Len())); err != nil {
				t.Fatal(err)
			}
		}
		if len(qds) < m {
			qd, err := enc.EncodeQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			qds = append(qds, qd)
		}
	}
	return ix, qds
}

func sameScan(t *testing.T, ix *Index, ref ScanResult, buf *ScanBuf, label string) {
	t.Helper()
	col := ix.Columnar()
	if len(buf.Pos) != len(ref.Addrs) {
		t.Fatalf("%s: columnar found %d survivors, reference %d", label, len(buf.Pos), len(ref.Addrs))
	}
	for i, p := range buf.Pos {
		if got := col.Addr(p); got != ref.Addrs[i] {
			t.Fatalf("%s: survivor %d: columnar addr %d, reference %d", label, i, got, ref.Addrs[i])
		}
	}
	if buf.MaskedHits != ref.MaskedHits {
		t.Fatalf("%s: columnar MaskedHits %d, reference %d", label, buf.MaskedHits, ref.MaskedHits)
	}
	if buf.EntriesScanned != ref.EntriesScanned || buf.BytesScanned != ref.BytesScanned {
		t.Fatalf("%s: scanned %d entries / %d bytes, reference %d / %d",
			label, buf.EntriesScanned, buf.BytesScanned, ref.EntriesScanned, ref.BytesScanned)
	}
}

// TestColumnarDifferential is the FS1 half of the issue's differential
// oracle: the columnar batch matcher must agree bit-for-bit with the
// per-entry reference matcher — same survivor set, same order, same
// MaskedHits — across at least 10k generated query/clause comparisons,
// including masked entries and shared-variable queries, with mask bits
// both on and off.
func TestColumnarDifferential(t *testing.T) {
	const wantComparisons = 10000
	for _, maskBits := range []bool{true, false} {
		total := 0
		for arity := 1; arity <= 4; arity++ {
			seed := int64(1000*arity + 7)
			ix, qds := buildGenIndex(t, seed, 200, 20, arity, maskBits)
			var buf ScanBuf
			for qi, qd := range qds {
				label := fmt.Sprintf("mask=%v arity=%d q=%d", maskBits, arity, qi)
				ref := ix.Scan(qd)
				ix.Columnar().ScanInto(qd, &buf)
				sameScan(t, ix, ref, &buf, label)
				total += ix.Len()

				// Chunked windows, including clamped and empty ones.
				for _, rng := range [][2]int{{0, 64}, {37, 151}, {64, 128}, {150, 10000}, {-5, 3}, {8, 8}, {120, 60}} {
					ref := ix.ScanRange(qd, rng[0], rng[1])
					ix.Columnar().ScanRangeInto(qd, rng[0], rng[1], &buf)
					sameScan(t, ix, ref, &buf, label+fmt.Sprintf(" range=%v", rng))
				}
			}
		}
		if total < wantComparisons {
			t.Fatalf("mask=%v: only %d query/clause comparisons, want ≥ %d", maskBits, total, wantComparisons)
		}
	}
}

// TestColumnarUnconstrained pins the married_couple(S,S) pathology: an
// all-variable query demands nothing, so both matchers must retrieve the
// entire predicate.
func TestColumnarUnconstrained(t *testing.T) {
	ix, _ := buildGenIndex(t, 42, 100, 1, 3, true)
	enc := ix.enc
	v := term.NewVar("S")
	qd, err := enc.EncodeQuery(term.New("p", v, v, v))
	if err != nil {
		t.Fatal(err)
	}
	if !qd.Unconstrained() {
		t.Fatalf("all-variable query should be unconstrained")
	}
	var buf ScanBuf
	ix.Columnar().ScanInto(qd, &buf)
	if len(buf.Pos) != ix.Len() {
		t.Fatalf("unconstrained scan kept %d of %d entries", len(buf.Pos), ix.Len())
	}
	sameScan(t, ix, ix.Scan(qd), &buf, "unconstrained")
}

// TestColumnarCache checks the Columnar view is cached and invalidated
// when the index grows.
func TestColumnarCache(t *testing.T) {
	ix, qds := buildGenIndex(t, 7, 80, 1, 2, true)
	c1 := ix.Columnar()
	if c2 := ix.Columnar(); c1 != c2 {
		t.Fatalf("Columnar not cached across calls")
	}
	if err := ix.Add(term.New("p", term.Atom("a"), term.Atom("b")), uint32(ix.Len())); err != nil {
		t.Fatal(err)
	}
	c3 := ix.Columnar()
	if c3 == c1 {
		t.Fatalf("Columnar cache not invalidated after Add")
	}
	if c3.Len() != ix.Len() {
		t.Fatalf("rebuilt Columnar has %d entries, index has %d", c3.Len(), ix.Len())
	}
	var buf ScanBuf
	c3.ScanInto(qds[0], &buf)
	sameScan(t, ix, ix.Scan(qds[0]), &buf, "post-grow")
}

// TestScanRangeIntoZeroAlloc enforces the native engine's allocation
// discipline at the FS1 layer: once the survivor buffer has grown to the
// file size, scans allocate nothing.
func TestScanRangeIntoZeroAlloc(t *testing.T) {
	ix, qds := buildGenIndex(t, 11, 512, 4, 3, true)
	col := ix.Columnar()
	var buf ScanBuf
	col.ScanInto(qds[0], &buf) // warm-up: grows Pos once
	allocs := testing.AllocsPerRun(200, func() {
		for _, qd := range qds {
			col.ScanInto(qd, &buf)
		}
	})
	if allocs != 0 {
		t.Fatalf("ScanInto allocated %v times per run, want 0", allocs)
	}
}

// FuzzColumnarScan drives the columnar matcher against the per-entry
// reference with fuzzer-chosen generator seeds, file sizes, scan windows
// and worker counts — the partitioned scan must agree with both. Run in
// CI for 20s under -race.
func FuzzColumnarScan(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(2), true, uint16(0), uint16(100), uint8(4))
	f.Add(int64(99), uint16(200), uint8(4), false, uint16(37), uint16(151), uint8(1))
	f.Add(int64(-3), uint16(64), uint8(1), true, uint16(64), uint16(64), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, arity uint8, maskBits bool, lo, hi uint16, workers uint8) {
		lowerParScanMin(t, 16)
		size := int(n%300) + 1
		ar := int(arity%4) + 1
		w := int(workers%12) + 1
		ix, qds := buildGenIndex(t, seed, size, 4, ar, maskBits)
		col := ix.Columnar()
		pool := NewScanPool(8)
		var buf ScanBuf
		var pb ParScanBuf
		for qi, qd := range qds {
			label := fmt.Sprintf("seed=%d n=%d arity=%d mask=%v q=%d", seed, size, ar, maskBits, qi)
			ref := ix.Scan(qd)
			col.ScanInto(qd, &buf)
			sameScan(t, ix, ref, &buf, label)
			col.ParScanInto(qd, w, pool, &pb)
			sameScan(t, ix, ref, &pb.Out, label+fmt.Sprintf(" parallel w=%d", w))
			refR := ix.ScanRange(qd, int(lo), int(hi))
			col.ScanRangeInto(qd, int(lo), int(hi), &buf)
			sameScan(t, ix, refR, &buf, label+" range")
			col.ParScanRangeInto(qd, int(lo), int(hi), w, pool, &pb)
			sameScan(t, ix, refR, &pb.Out, label+fmt.Sprintf(" parallel range w=%d", w))
		}
	})
}

// BenchmarkScanReference and BenchmarkScanColumnar expose the FS1 kernel
// speedup in isolation (the NATIVE clarebench experiment measures it
// end to end).
func benchIndex(b *testing.B, n int) (*Index, []QueryDescriptor) {
	return buildGenIndex(b, 1, n, 16, 3, true)
}

func BenchmarkScanReference(b *testing.B) {
	ix, qds := benchIndex(b, 4096)
	b.SetBytes(int64(ix.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Scan(qds[i%len(qds)])
	}
}

func BenchmarkScanColumnar(b *testing.B) {
	ix, qds := benchIndex(b, 4096)
	col := ix.Columnar()
	var buf ScanBuf
	b.SetBytes(int64(ix.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ScanInto(qds[i%len(qds)], &buf)
	}
}

// groundIndex builds an all-ground index (no mask bits anywhere), the
// fact-base shape the unmasked fast path is built for.
func groundIndex(b *testing.B, n int) (*Index, []QueryDescriptor) {
	enc, err := NewEncoder(DefaultParams)
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndex(enc)
	atoms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < n; i++ {
		h := term.New("p",
			term.Atom(atoms[i%len(atoms)]),
			term.Int(i%97),
			term.Atom(atoms[(i/3)%len(atoms)]))
		if err := ix.Add(h, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
	var qds []QueryDescriptor
	for i := 0; i < 16; i++ {
		q := term.New("p", term.Atom(atoms[i%len(atoms)]), term.NewVar("X"), term.NewVar("Y"))
		qd, err := enc.EncodeQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		qds = append(qds, qd)
	}
	return ix, qds
}

func BenchmarkScanReferenceGround(b *testing.B) {
	ix, qds := groundIndex(b, 4096)
	b.SetBytes(int64(ix.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Scan(qds[i%len(qds)])
	}
}

func BenchmarkScanColumnarGround(b *testing.B) {
	ix, qds := groundIndex(b, 4096)
	col := ix.Columnar()
	var buf ScanBuf
	b.SetBytes(int64(ix.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ScanInto(qds[i%len(qds)], &buf)
	}
}
