package scw

import (
	"fmt"
	"testing"

	"clare/internal/parse"
)

func TestBoardProtocol(t *testing.T) {
	b, err := NewBoard(DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(b.Encoder())
	for i := 0; i < 20; i++ {
		if err := ix.Add(parse.MustTerm(fmt.Sprintf("n(k%d, %d)", i%5, i)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Scan before loading a query fails.
	if _, err := b.Scan(ix); err != ErrNoQueryLoaded {
		t.Errorf("scan without query = %v", err)
	}
	if _, err := b.ReadResult(); err != ErrNoScanRun {
		t.Errorf("read before scan = %v", err)
	}
	if b.MatchFound() {
		t.Error("match bit set before any scan")
	}

	if err := b.LoadQuery(parse.MustTerm("n(k2, X)")); err != nil {
		t.Fatal(err)
	}
	res, err := b.Scan(ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addrs) < 4 { // k2 occurs for i = 2,7,12,17
		t.Errorf("addrs = %v, want ≥ 4", res.Addrs)
	}
	if !b.MatchFound() {
		t.Error("match bit should be set")
	}
	got, err := b.ReadResult()
	if err != nil || len(got) != len(res.Addrs) {
		t.Errorf("ReadResult = %v, %v", got, err)
	}
	if b.Stats.Scans != 1 || b.Stats.EntriesScanned != 20 || b.Stats.Elapsed <= 0 {
		t.Errorf("stats = %+v", b.Stats)
	}

	// Loading a new query clears the scanned state.
	if err := b.LoadQuery(parse.MustTerm("n(k0, X)")); err != nil {
		t.Fatal(err)
	}
	if b.MatchFound() {
		t.Error("match bit should clear on new query")
	}
}

func TestBoardParamMismatch(t *testing.T) {
	b, err := NewBoard(DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	otherEnc, err := NewEncoder(Params{Width: 16, BitsPerKey: 2, MaskBits: true})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(otherEnc)
	if err := ix.Add(parse.MustTerm("n(a)"), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadQuery(parse.MustTerm("n(a)")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Scan(ix); err == nil {
		t.Error("parameter mismatch should be rejected")
	}
}
