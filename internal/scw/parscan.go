package scw

import (
	"sync"
	"sync/atomic"
	"time"
)

// Partitioned columnar scans. The 64-entry block layout is already
// partition-friendly: a scan of [lo, hi) is the concatenation of scans of
// any contiguous cover of [lo, hi), because each entry's match is decided
// by that entry alone (the blockOr summaries only short-circuit the
// per-entry mask lookup, never change its outcome). ParScanRangeInto
// exploits this: it splits the range into per-worker partitions aligned
// to colBlock boundaries, scans partition 0 on the calling goroutine
// while a persistent worker pool sweeps the rest, and concatenates the
// survivor positions in partition order. Since partitions are contiguous
// and ordered, the merged output — positions, MaskedHits, entry/byte
// accounting — is bit-identical to the serial ScanRangeInto at any
// worker count, which columnar_test.go and the core differential oracle
// enforce.
//
// The pool exists because spawning a goroutine per scan allocates (the
// runtime heap-allocates the closure context since Go 1.17), which would
// break the native engine's zero-alloc discipline. Workers are started
// lazily on first use, park on a channel between scans, and exit after
// scanPoolIdle without work, so an idle retriever holds no goroutines.

// ParScanMinEntries is the smallest partition worth handing to a worker:
// below this, channel handoff and wakeup latency cost more than the scan
// itself (a partition this size is ~4 µs of AND/compare work). The
// effective worker count of a scan is clamped so every partition has at
// least this many entries. It is a variable so tests can force small
// scans through the parallel path; production code treats it as a
// constant.
var ParScanMinEntries = 4096

// scanPoolIdle is how long a pool worker waits for work before exiting.
const scanPoolIdle = 500 * time.Millisecond

// scanTask is one partition handed to a pool worker. Tasks are owned and
// preallocated by a ParScanBuf, so submitting one allocates nothing.
type scanTask struct {
	col    *Columnar
	qd     QueryDescriptor
	lo, hi int
	buf    *ScanBuf
	wg     *sync.WaitGroup
}

func (t *scanTask) run() {
	t.col.ScanRangeInto(t.qd, t.lo, t.hi, t.buf)
	t.wg.Done()
}

// ScanPool runs scan partitions on a bounded set of persistent worker
// goroutines shared by all scans of a retriever. A nil *ScanPool is
// valid and means "no helpers": every ParScanRangeInto through it runs
// serially on the caller.
type ScanPool struct {
	tasks chan *scanTask
	live  atomic.Int32
	max   int32
}

// NewScanPool returns a pool running at most helpers concurrent workers
// (0 helpers is valid: the pool exists but every scan stays serial).
// Workers spawn lazily and idle-exit, so an unused pool costs only its
// channel — sizing the bound above GOMAXPROCS is harmless and keeps the
// partitioned path exercisable on small hosts (concurrency without
// parallelism).
func NewScanPool(helpers int) *ScanPool {
	if helpers < 0 {
		helpers = 0
	}
	return &ScanPool{
		// The buffer bounds queued partitions, not correctness: tasks
		// are consumed by live workers, and submit guarantees a worker
		// exists after every enqueue (see the exit protocol below).
		tasks: make(chan *scanTask, 1024),
		max:   int32(helpers),
	}
}

// MaxHelpers reports the pool's worker bound (0 for a nil pool).
func (p *ScanPool) MaxHelpers() int {
	if p == nil {
		return 0
	}
	return int(p.max)
}

// LiveWorkers reports the currently running workers — a pool invariant
// probe for the chaos tests: it never exceeds MaxHelpers by more than
// the transient re-admission in the exit protocol.
func (p *ScanPool) LiveWorkers() int {
	if p == nil {
		return 0
	}
	return int(p.live.Load())
}

// submit enqueues a task and makes sure a worker will run it. The order
// matters: enqueue first, then check live workers. Combined with the
// worker exit protocol (decrement live, then one final drain), every
// task is picked up: if a worker's final drain misses this task, the
// enqueue happened after the drain, so this load observes the decrement
// (Go atomics are sequentially consistent) and spawns a replacement.
func (p *ScanPool) submit(t *scanTask) {
	p.tasks <- t
	for {
		n := p.live.Load()
		if n >= p.max {
			return
		}
		if p.live.CompareAndSwap(n, n+1) {
			go p.worker()
			return
		}
	}
}

func (p *ScanPool) worker() {
	timer := time.NewTimer(scanPoolIdle)
	defer timer.Stop()
	for {
		select {
		case t := <-p.tasks:
			t.run()
			continue
		default:
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(scanPoolIdle)
		select {
		case t := <-p.tasks:
			t.run()
		case <-timer.C:
			// Exit protocol: declare death first, then drain one last
			// time. A task enqueued before the decrement is caught by
			// the drain; one enqueued after it makes its submitter see
			// live < max and spawn a replacement. Either way no task is
			// stranded.
			p.live.Add(-1)
			select {
			case t := <-p.tasks:
				p.live.Add(1)
				t.run()
			default:
				return
			}
		}
	}
}

// ParScanBuf is the reusable state of one partitioned scan: the merged
// output buffer, one ScanBuf per helper partition, and the preallocated
// task slots. Like ScanBuf, a zero ParScanBuf is ready to use and reuse
// amortises every internal allocation — steady-state partitioned scans
// allocate nothing at any worker count.
type ParScanBuf struct {
	// Out receives the merged survivors, bit-identical to what a serial
	// ScanRangeInto over the same range would produce.
	Out ScanBuf

	parts []ScanBuf
	tasks []scanTask
	wg    sync.WaitGroup
}

// ensure grows the helper buffers to k partitions.
func (pb *ParScanBuf) ensure(k int) {
	for len(pb.parts) < k {
		pb.parts = append(pb.parts, ScanBuf{})
		pb.tasks = append(pb.tasks, scanTask{})
	}
}

// ParScanInto scans the whole file with up to workers partitions.
func (c *Columnar) ParScanInto(qd QueryDescriptor, workers int, pool *ScanPool, pb *ParScanBuf) {
	c.ParScanRangeInto(qd, 0, len(c.codes), workers, pool, pb)
}

// ParScanRangeInto scans entries [lo, hi) (clamped to the file) into
// pb.Out using up to workers contiguous partitions: partition 0 on the
// calling goroutine, the rest on the pool. The effective partition count
// is clamped by the pool's worker bound and by ParScanMinEntries, and
// partitions are aligned to colBlock boundaries so every worker keeps
// the unmasked-block fast path. The merged result is bit-identical to
// ScanRangeInto over the same range regardless of the worker count.
func (c *Columnar) ParScanRangeInto(qd QueryDescriptor, lo, hi, workers int, pool *ScanPool, pb *ParScanBuf) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.codes) {
		hi = len(c.codes)
	}
	if lo > hi {
		lo = hi
	}
	span := hi - lo
	// Grow the merged survivor buffer up front: partition 0 scans into
	// it directly, and the helper appends below must fit without
	// reallocating.
	if cap(pb.Out.Pos) < span {
		pb.Out.Pos = make([]uint32, 0, span)
	}
	parts := workers
	if m := pool.MaxHelpers() + 1; parts > m {
		parts = m
	}
	if min := ParScanMinEntries; min > 0 {
		if bySize := span / min; parts > bySize {
			parts = bySize
		}
	}
	if parts <= 1 {
		c.ScanRangeInto(qd, lo, hi, &pb.Out)
		return
	}
	per := (span + parts - 1) / parts
	per = (per + colBlock - 1) / colBlock * colBlock
	parts = (span + per - 1) / per
	if parts <= 1 {
		c.ScanRangeInto(qd, lo, hi, &pb.Out)
		return
	}

	k := parts - 1
	pb.ensure(k)
	pb.wg.Add(k)
	for i := 0; i < k; i++ {
		t := &pb.tasks[i]
		t.col = c
		t.qd = qd
		t.lo = lo + (i+1)*per
		t.hi = t.lo + per
		if t.hi > hi {
			t.hi = hi
		}
		t.buf = &pb.parts[i]
		t.wg = &pb.wg
		pool.submit(t)
	}
	c.ScanRangeInto(qd, lo, lo+per, &pb.Out)
	pb.wg.Wait()
	for i := 0; i < k; i++ {
		p := &pb.parts[i]
		pb.Out.Pos = append(pb.Out.Pos, p.Pos...)
		pb.Out.MaskedHits += p.MaskedHits
		pb.Out.EntriesScanned += p.EntriesScanned
		pb.Out.BytesScanned += p.BytesScanned
	}
}
