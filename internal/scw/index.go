package scw

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"clare/internal/term"
)

// ScanRate is the prototype FS1 hardware's search rate: "It can search
// data at a rate of up to 4.5Mbyte/sec" (§4).
const ScanRate = 4.5e6 // bytes per second

// ScanTime converts bytes scanned into simulated FS1 time at ScanRate.
func ScanTime(bytes int) time.Duration {
	return time.Duration(float64(bytes) / ScanRate * float64(time.Second))
}

// Index is the secondary file for one predicate: codeword entries in
// clause (user) order. "The secondary file is effectively an index table
// associating codewords with clause addresses" (§2.1).
type Index struct {
	enc     *Encoder
	entries []Entry
	// col caches the columnar view for the native engine; invalidated by
	// length (indexes are append-only, so a stale pointer is detectable
	// from the entry count alone).
	col atomic.Pointer[Columnar]
}

// NewIndex returns an empty index using enc's parameters.
func NewIndex(enc *Encoder) *Index { return &Index{enc: enc} }

// Add encodes head and appends its entry with the given clause address.
func (ix *Index) Add(head term.Term, addr uint32) error {
	ent, err := ix.enc.EncodeClause(head, addr)
	if err != nil {
		return err
	}
	ix.entries = append(ix.entries, ent)
	return nil
}

// Len returns the number of entries.
func (ix *Index) Len() int { return len(ix.entries) }

// SizeBytes is the secondary file's size — "generally much smaller than
// that of a compiled clause file" (§2.1).
func (ix *Index) SizeBytes() int { return len(ix.entries) * EntrySize }

// Entries exposes the raw entries (for diagnostics and tests).
func (ix *Index) Entries() []Entry { return ix.entries }

// ScanResult reports one FS1 scan.
type ScanResult struct {
	// Addrs are the clause addresses of matching entries, in clause
	// (user) order.
	Addrs []uint32
	// EntriesScanned is the number of index entries examined (always the
	// whole file: FS1 scans on the fly).
	EntriesScanned int
	// BytesScanned is the secondary-file bytes streamed through FS1.
	BytesScanned int
	// MaskedHits counts survivors whose entry carries mask bits — clause
	// heads with variable arguments, which weaken the codeword (§2.1) and
	// are the structural source of FS1 ghosts alongside hash collisions.
	// EXPLAIN reports it so a high ghost ratio can be attributed.
	MaskedHits int
	// Elapsed is the simulated scan time at the 4.5 MB/s hardware rate.
	Elapsed time.Duration
}

// Scan streams the whole secondary file through the matcher and collects
// the addresses of the survivors.
func (ix *Index) Scan(qd QueryDescriptor) ScanResult {
	return ix.ScanRange(qd, 0, len(ix.entries))
}

// ScanRange streams entries [lo, hi) through the matcher — the chunked
// form of Scan for pipelined retrieval, where FS1 delivers survivors one
// chunk at a time while downstream stages work on earlier chunks. Bounds
// are clamped to the file.
func (ix *Index) ScanRange(qd QueryDescriptor, lo, hi int) ScanResult {
	if lo < 0 {
		lo = 0
	}
	if hi > len(ix.entries) {
		hi = len(ix.entries)
	}
	if lo > hi {
		lo = hi
	}
	res := ScanResult{
		EntriesScanned: hi - lo,
		BytesScanned:   (hi - lo) * EntrySize,
	}
	if n := hi - lo; n > 0 {
		// Pre-size the survivor list so high-hit scans don't regrow it:
		// an unconstrained query retrieves everything, anything else is
		// sized for a typical selective scan and regrows at most a few
		// times.
		est := n
		if !qd.Unconstrained() {
			est = n/8 + 8
			if est > n {
				est = n
			}
		}
		res.Addrs = make([]uint32, 0, est)
	}
	for _, ent := range ix.entries[lo:hi] {
		if ix.enc.Matches(ent, qd) {
			res.Addrs = append(res.Addrs, ent.Addr)
			if ent.Mask != 0 {
				res.MaskedHits++
			}
		}
	}
	res.Elapsed = ScanTime(res.BytesScanned)
	return res
}

// Columnar returns the struct-of-arrays view of the index for the native
// engine, building it on first use and caching it. Indexes are
// append-only, so a cached view is stale exactly when its length differs
// from the entry count; retrieval-time callers see a fully built index
// and always hit the cache.
func (ix *Index) Columnar() *Columnar {
	if c := ix.col.Load(); c != nil && c.Len() == len(ix.entries) {
		return c
	}
	c := NewColumnar(ix.enc.Params(), ix.entries)
	ix.col.Store(c)
	return c
}

// indexMagic marks a serialised index file.
const indexMagic = 0x5C37

// MarshalBinary serialises the index: magic, params, count, entries.
func (ix *Index) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 12+len(ix.entries)*EntrySize)
	var tmp [4]byte
	binary.BigEndian.PutUint16(tmp[:2], indexMagic)
	buf = append(buf, tmp[:2]...)
	p := ix.enc.Params()
	buf = append(buf, byte(p.Width), byte(p.BitsPerKey), boolByte(p.MaskBits), 0)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(ix.entries)))
	buf = append(buf, tmp[:4]...)
	for _, ent := range ix.entries {
		buf = append(buf, ent.MarshalBinary()...)
	}
	return buf, nil
}

// UnmarshalIndex parses a serialised index, reconstructing its encoder.
func UnmarshalIndex(data []byte) (*Index, error) {
	if len(data) < 10 {
		return nil, fmt.Errorf("scw: index file too short")
	}
	if binary.BigEndian.Uint16(data[0:2]) != indexMagic {
		return nil, fmt.Errorf("scw: bad index magic")
	}
	p := Params{Width: int(data[2]), BitsPerKey: int(data[3]), MaskBits: data[4] != 0}
	enc, err := NewEncoder(p)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(data[6:10]))
	want := 10 + n*EntrySize
	if len(data) != want {
		return nil, fmt.Errorf("scw: index file size %d, want %d for %d entries", len(data), want, n)
	}
	ix := NewIndex(enc)
	for i := 0; i < n; i++ {
		ent, err := UnmarshalEntry(data[10+i*EntrySize:])
		if err != nil {
			return nil, err
		}
		ix.entries = append(ix.entries, ent)
	}
	return ix, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
