// Package scw implements the first CLARE filtering stage (FS1): index
// searching by superimposed codewords plus mask bits (SCW+MB, §2.1).
//
// Every fact or rule head gets a codeword: the bitwise superimposition of
// hash-selected bit positions contributed by its (up to MaxEncodedArgs)
// arguments. Codewords live in a secondary index file that FS1 scans on
// the fly, emitting the addresses of clauses whose codewords cover the
// query's. Variables contribute no bits; a data/knowledge-base argument
// containing a variable sets the argument's MASK BIT, telling the matcher
// to ignore the query's demands on that argument (otherwise clauses with
// variable arguments would be unsoundly rejected).
//
// The scheme is a partial match: survivors are only potential unifiers.
// The three §2.1 false-drop sources are all present by construction:
// non-unique encoding (hash collisions / superimposition saturation),
// truncated encoding (arguments beyond MaxEncodedArgs are not encoded),
// and ignored variables (shared-variable queries such as
// married_couple(S,S) place no constraint at all on the index).
package scw

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"

	"clare/internal/term"
)

// MaxEncodedArgs is the hardware encoding limit: "only 12 arguments of a
// query is encoded" (§2.1).
const MaxEncodedArgs = 12

// Params configures the codeword scheme.
type Params struct {
	// Width is the codeword width in bits (1..64).
	Width int
	// BitsPerKey is how many bit positions each hashed key sets.
	BitsPerKey int
	// MaskBits enables the mask-bit extension. Disabling it reverts to
	// plain superimposed codewords, which is UNSOUND for clauses with
	// variable arguments — kept as an ablation (BenchmarkAblationMaskBits).
	MaskBits bool
}

// DefaultParams matches a plausible hardware configuration: 64-bit
// codewords, 3 bits per key, mask bits on.
var DefaultParams = Params{Width: 64, BitsPerKey: 3, MaskBits: true}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Width < 1 || p.Width > 64 {
		return fmt.Errorf("scw: width %d out of range 1..64", p.Width)
	}
	if p.BitsPerKey < 1 || p.BitsPerKey > p.Width {
		return fmt.Errorf("scw: bits-per-key %d out of range 1..%d", p.BitsPerKey, p.Width)
	}
	return nil
}

// Codeword is a superimposed codeword of up to 64 bits.
type Codeword uint64

// PopCount returns the number of set bits (codeword weight).
func (c Codeword) PopCount() int { return bits.OnesCount64(uint64(c)) }

// Mask is the per-argument mask-bit field: bit i set means "ignore the
// query's constraints on argument i".
type Mask uint16

// Entry is one secondary-file record: the clause's codeword, its mask
// bits, and the clause address in the compiled clause file.
type Entry struct {
	Code Codeword
	Mask Mask
	Addr uint32
}

// EntrySize is the on-disk size of an Entry in bytes: 8 (codeword) +
// 2 (mask) + 4 (address).
const EntrySize = 14

// MarshalBinary serialises the entry (big-endian).
func (e Entry) MarshalBinary() []byte {
	var b [EntrySize]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(e.Code))
	binary.BigEndian.PutUint16(b[8:10], uint16(e.Mask))
	binary.BigEndian.PutUint32(b[10:14], e.Addr)
	return b[:]
}

// UnmarshalEntry parses an entry from b.
func UnmarshalEntry(b []byte) (Entry, error) {
	if len(b) < EntrySize {
		return Entry{}, fmt.Errorf("scw: entry record too short (%d bytes)", len(b))
	}
	return Entry{
		Code: Codeword(binary.BigEndian.Uint64(b[0:8])),
		Mask: Mask(binary.BigEndian.Uint16(b[8:10])),
		Addr: binary.BigEndian.Uint32(b[10:14]),
	}, nil
}

// Encoder builds codewords under fixed parameters.
type Encoder struct {
	p Params
}

// NewEncoder returns an encoder for p.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{p: p}, nil
}

// Params returns the encoder's parameters.
func (e *Encoder) Params() Params { return e.p }

// hashKey turns a key string into BitsPerKey bit positions.
func (e *Encoder) hashKey(key string) Codeword {
	var cw Codeword
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	seed := h.Sum64()
	for i := 0; i < e.p.BitsPerKey; i++ {
		// Derive independent positions by re-mixing the seed.
		seed = seed*0x9E3779B97F4A7C15 + uint64(i) + 1
		pos := int((seed >> 17) % uint64(e.p.Width))
		cw |= 1 << pos
	}
	return cw
}

// argKeys collects the hash keys contributed by one argument. Query and
// clause sides use identical keys, which is what makes the subset test
// sound for ground positions. hasVar reports whether the argument contains
// any variable (the clause side turns that into a mask bit).
func (e *Encoder) argKeys(argIdx int, t term.Term) (keys []string, hasVar bool) {
	t = term.Deref(t)
	switch t := t.(type) {
	case *term.Var:
		return nil, true
	case term.Atom:
		return []string{fmt.Sprintf("%d/a:%s", argIdx, string(t))}, false
	case term.Int:
		return []string{fmt.Sprintf("%d/i:%d", argIdx, int64(t))}, false
	case term.Float:
		return []string{fmt.Sprintf("%d/f:%g", argIdx, float64(t))}, false
	case *term.Compound:
		if isListTerm(t) {
			return e.listKeys(argIdx, t)
		}
		keys = append(keys, fmt.Sprintf("%d/s:%s/%d", argIdx, t.Functor, len(t.Args)))
		for i, el := range t.Args {
			ks, hv := e.elementKeys(argIdx, i, el)
			keys = append(keys, ks...)
			hasVar = hasVar || hv
		}
		return keys, hasVar
	}
	return nil, false
}

func isListTerm(c *term.Compound) bool {
	return c.Functor == term.ConsFunctor && len(c.Args) == 2
}

// listKeys encodes a list argument: a list marker, a length key for closed
// lists, and element keys. Open (tail-variable) lists assert no length.
func (e *Encoder) listKeys(argIdx int, c *term.Compound) (keys []string, hasVar bool) {
	elems, tail := term.ListSlice(c)
	keys = append(keys, fmt.Sprintf("%d/L", argIdx))
	_, open := term.Deref(tail).(*term.Var)
	if open {
		hasVar = true
	} else {
		keys = append(keys, fmt.Sprintf("%d/len:%d", argIdx, len(elems)))
	}
	for i, el := range elems {
		ks, hv := e.elementKeys(argIdx, i, el)
		keys = append(keys, ks...)
		hasVar = hasVar || hv
	}
	return keys, hasVar
}

// elementKeys encodes a first-level element of a complex argument. Nested
// complex elements contribute only their principal functor — the codeword
// analogue of level-3 matching depth.
func (e *Encoder) elementKeys(argIdx, elemIdx int, t term.Term) (keys []string, hasVar bool) {
	t = term.Deref(t)
	switch t := t.(type) {
	case *term.Var:
		return nil, true
	case term.Atom:
		return []string{fmt.Sprintf("%d.%d/a:%s", argIdx, elemIdx, string(t))}, false
	case term.Int:
		return []string{fmt.Sprintf("%d.%d/i:%d", argIdx, elemIdx, int64(t))}, false
	case term.Float:
		return []string{fmt.Sprintf("%d.%d/f:%g", argIdx, elemIdx, float64(t))}, false
	case *term.Compound:
		if isListTerm(t) {
			// Nested list: marker only; its contents may hide variables.
			_, tail := term.ListSlice(t)
			_, open := term.Deref(tail).(*term.Var)
			return []string{fmt.Sprintf("%d.%d/L", argIdx, elemIdx)}, open || nestedHasVar(t)
		}
		return []string{fmt.Sprintf("%d.%d/s:%s/%d", argIdx, elemIdx, t.Functor, len(t.Args))},
			nestedHasVar(t)
	}
	return nil, false
}

func nestedHasVar(t term.Term) bool { return !term.Ground(t) }

// EncodeClause builds the secondary-file entry for a clause head at the
// given clause address.
func (e *Encoder) EncodeClause(head term.Term, addr uint32) (Entry, error) {
	_, args, ok := principal(head)
	if !ok {
		return Entry{}, fmt.Errorf("scw: %v is not callable", head)
	}
	var ent Entry
	ent.Addr = addr
	for i, a := range args {
		if i >= MaxEncodedArgs {
			break // hardware truncation: a §2.1 false-drop source
		}
		keys, hasVar := e.argKeys(i, a)
		if hasVar && e.p.MaskBits {
			ent.Mask |= 1 << i
			// A masked argument's ground parts still contribute bits:
			// harmless (the matcher ignores the argument) and keeps the
			// codeword discriminating for other schemes. The paper is
			// silent here; we contribute nothing to keep weights low.
			continue
		}
		for _, k := range keys {
			ent.Code |= e.hashKey(k)
		}
	}
	return ent, nil
}

// QueryDescriptor is the query side of the match: per-argument codewords,
// kept separate so clause mask bits can cancel individual arguments.
type QueryDescriptor struct {
	PerArg [MaxEncodedArgs]Codeword
	NArgs  int
}

// Unconstrained reports whether the query places no demand on the index —
// e.g. every argument is a variable (the married_couple(S,S) pathology):
// FS1 will then retrieve the entire predicate.
func (q QueryDescriptor) Unconstrained() bool {
	for i := 0; i < q.NArgs && i < MaxEncodedArgs; i++ {
		if q.PerArg[i] != 0 {
			return false
		}
	}
	return true
}

// EncodeQuery builds the query descriptor for a goal.
func (e *Encoder) EncodeQuery(goal term.Term) (QueryDescriptor, error) {
	_, args, ok := principal(goal)
	if !ok {
		return QueryDescriptor{}, fmt.Errorf("scw: %v is not callable", goal)
	}
	var qd QueryDescriptor
	qd.NArgs = len(args)
	for i, a := range args {
		if i >= MaxEncodedArgs {
			break
		}
		keys, _ := e.argKeys(i, a)
		// Variables in the query are simply ignored in the encoding
		// (§2.1) — they demand nothing.
		for _, k := range keys {
			qd.PerArg[i] |= e.hashKey(k)
		}
	}
	return qd, nil
}

// Matches applies the SCW+MB test: for every encoded argument either the
// clause masks it or the clause codeword covers the query argument's bits.
func (e *Encoder) Matches(ent Entry, qd QueryDescriptor) bool {
	n := qd.NArgs
	if n > MaxEncodedArgs {
		n = MaxEncodedArgs
	}
	for i := 0; i < n; i++ {
		if e.p.MaskBits && ent.Mask&(1<<i) != 0 {
			continue
		}
		if q := qd.PerArg[i]; q&Codeword(ent.Code) != q {
			return false
		}
	}
	return true
}

func principal(t term.Term) (string, []term.Term, bool) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t), nil, true
	case *term.Compound:
		return t.Functor, t.Args, true
	}
	return "", nil, false
}
