package term

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the term in Edinburgh syntax with list notation and atom
// quoting. Operators are not reconstructed; compound terms print in
// canonical functional notation, which the parser accepts back.

func (a Atom) String() string { return quoteAtom(string(a)) }

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Ensure the token reads back as a float, not an integer.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (v *Var) String() string {
	if v.Ref != nil {
		return Deref(v).String()
	}
	return v.displayName()
}

func (c *Compound) String() string {
	var b strings.Builder
	writeTerm(&b, c)
	return b.String()
}

func writeTerm(b *strings.Builder, t Term) {
	t = Deref(t)
	c, ok := t.(*Compound)
	if !ok {
		b.WriteString(t.String())
		return
	}
	if c.Functor == ConsFunctor && len(c.Args) == 2 {
		writeList(b, c)
		return
	}
	// The control constructs print infix, parenthesised, so bodies read
	// naturally and re-parse exactly.
	if len(c.Args) == 2 && controlOp(c.Functor) {
		b.WriteByte('(')
		writeTerm(b, c.Args[0])
		b.WriteString(c.Functor)
		writeTerm(b, c.Args[1])
		b.WriteByte(')')
		return
	}
	b.WriteString(quoteAtom(c.Functor))
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		writeTerm(b, a)
	}
	b.WriteByte(')')
}

func writeList(b *strings.Builder, c *Compound) {
	b.WriteByte('[')
	writeTerm(b, c.Args[0])
	t := Deref(c.Args[1])
	for {
		if t == NilAtom {
			b.WriteByte(']')
			return
		}
		if cc, ok := t.(*Compound); ok && cc.Functor == ConsFunctor && len(cc.Args) == 2 {
			b.WriteByte(',')
			writeTerm(b, cc.Args[0])
			t = Deref(cc.Args[1])
			continue
		}
		b.WriteByte('|')
		writeTerm(b, t)
		b.WriteByte(']')
		return
	}
}

// controlOp reports whether f is one of the control operators printed
// infix.
func controlOp(f string) bool {
	switch f {
	case ",", ";", "->", ":-":
		return true
	}
	return false
}

// quoteAtom returns the atom in valid Edinburgh source form, adding quotes
// when the bare text would not read back as a single atom token.
func quoteAtom(s string) string {
	if atomNeedsNoQuotes(s) {
		return s
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func atomNeedsNoQuotes(s string) bool {
	if s == "" {
		return false
	}
	switch s {
	case "[]", "{}", "!", ";":
		return true
	}
	if isSoloLower(s) {
		return true
	}
	return isSymbolicAtom(s)
}

func isSoloLower(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !(r >= 'a' && r <= 'z') {
				return false
			}
			continue
		}
		if !isAlnum(r) {
			return false
		}
	}
	return true
}

func isAlnum(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

func isSymbolicAtom(s string) bool {
	for _, r := range s {
		if !strings.ContainsRune(symbolChars, r) {
			return false
		}
	}
	return s != "."
}

// Format implements fmt.Formatter-ish convenience: %v and %s both print the
// term; other verbs fall back to the default behaviour via Sprintf on the
// string form. Only *Compound needs it explicitly — the scalar types already
// print correctly — but declaring on Compound keeps %d etc. from exploding.
func (c *Compound) Format(f fmt.State, verb rune) {
	fmt.Fprint(f, c.String())
}
