// Package term defines the Prolog term representation shared by every layer
// of the CLARE reproduction: the Prolog engine, the PIF compiler, the
// software partial-test-unification reference and the simulated hardware.
//
// Terms follow Edinburgh Prolog: atoms, integers, floats, variables and
// compound terms. Lists are compound terms with functor "." and arity 2
// terminated by the atom []. Variables are mutable cells bound destructively
// during unification and unwound via a trail (package unify).
package term

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Term is a Prolog term. The concrete types are Atom, Int, Float, *Var and
// *Compound.
type Term interface {
	// Indicator returns a short description of the term's principal
	// functor, e.g. "foo/2", "bar/0", "42", "_G3".
	Indicator() string
	String() string
}

// Atom is a Prolog atom such as foo or [].
type Atom string

// Int is a Prolog integer.
type Int int64

// Float is a Prolog floating point number.
type Float float64

// Var is a logic variable: a mutable cell. An unbound variable has Ref nil.
// Binding is destructive; undoing is the caller's job (see unify.Trail).
type Var struct {
	Name string // source name; "" for machine-generated variables
	Ref  Term   // nil when unbound
	id   uint64 // allocation order, for stable printing and ordering
}

// Compound is a compound term: a functor applied to one or more arguments.
// A Compound always has at least one argument; zero-arity "compounds" are
// Atoms.
type Compound struct {
	Functor string
	Args    []Term
}

// Reserved functor and atom names for lists.
const (
	ConsFunctor = "."
	NilAtom     = Atom("[]")
)

// varCounter is atomic: concurrent sessions parse and rename terms in
// parallel, and each fresh variable must still get a unique id.
var varCounter atomic.Uint64

// NewVar returns a fresh unbound variable with the given source name.
func NewVar(name string) *Var {
	return &Var{Name: name, id: varCounter.Add(1)}
}

// ID returns the variable's allocation number. Fresh variables have strictly
// increasing IDs; the ID never changes.
func (v *Var) ID() uint64 { return v.id }

// New builds a compound term, or the atom itself when no arguments are
// given.
func New(functor string, args ...Term) Term {
	if len(args) == 0 {
		return Atom(functor)
	}
	return &Compound{Functor: functor, Args: args}
}

// Cons builds the list cell [head|tail].
func Cons(head, tail Term) *Compound {
	return &Compound{Functor: ConsFunctor, Args: []Term{head, tail}}
}

// List builds a proper list of the given elements.
func List(elems ...Term) Term { return ListTail(NilAtom, elems...) }

// ListTail builds [elems... | tail].
func ListTail(tail Term, elems ...Term) Term {
	t := tail
	for i := len(elems) - 1; i >= 0; i-- {
		t = Cons(elems[i], t)
	}
	return t
}

// Deref follows variable bindings until reaching an unbound variable or a
// non-variable term.
func Deref(t Term) Term {
	for {
		v, ok := t.(*Var)
		if !ok || v.Ref == nil {
			return t
		}
		t = v.Ref
	}
}

// IsCons reports whether t (after dereferencing) is a './2' cell and returns
// its head and tail.
func IsCons(t Term) (head, tail Term, ok bool) {
	c, isC := Deref(t).(*Compound)
	if !isC || c.Functor != ConsFunctor || len(c.Args) != 2 {
		return nil, nil, false
	}
	return c.Args[0], c.Args[1], true
}

// ListSlice decomposes t into its list elements and final tail. For a proper
// list the tail is NilAtom. It never loops: cyclic structures are impossible
// to build through the public API without rational-tree unification, which
// this system does not perform.
func ListSlice(t Term) (elems []Term, tail Term) {
	for {
		h, tl, ok := IsCons(t)
		if !ok {
			return elems, Deref(t)
		}
		elems = append(elems, h)
		t = tl
	}
}

// IsProperList reports whether t is a nil-terminated list.
func IsProperList(t Term) bool {
	_, tail := ListSlice(t)
	return tail == NilAtom
}

// IsPartialList reports whether t is a list whose tail is an unbound
// variable — the paper's "unlimited list", e.g. [a,b|T].
func IsPartialList(t Term) bool {
	elems, tail := ListSlice(t)
	if len(elems) == 0 {
		return false
	}
	_, isVar := tail.(*Var)
	return isVar
}

// Indicator implementations.

func (a Atom) Indicator() string      { return string(a) + "/0" }
func (i Int) Indicator() string       { return fmt.Sprintf("%d", int64(i)) }
func (f Float) Indicator() string     { return fmt.Sprintf("%g", float64(f)) }
func (v *Var) Indicator() string      { return v.displayName() }
func (c *Compound) Indicator() string { return fmt.Sprintf("%s/%d", c.Functor, len(c.Args)) }

func (v *Var) displayName() string {
	if v.Name != "" && v.Name != "_" {
		return v.Name
	}
	return fmt.Sprintf("_G%d", v.id)
}

// Ground reports whether t contains no unbound variables.
func Ground(t Term) bool {
	switch t := Deref(t).(type) {
	case *Var:
		return false
	case *Compound:
		for _, a := range t.Args {
			if !Ground(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Vars appends the distinct unbound variables of t, in first-occurrence
// order, to dst and returns the result.
func Vars(t Term, dst []*Var) []*Var {
	switch t := Deref(t).(type) {
	case *Var:
		for _, v := range dst {
			if v == t {
				return dst
			}
		}
		return append(dst, t)
	case *Compound:
		for _, a := range t.Args {
			dst = Vars(a, dst)
		}
	}
	return dst
}

// HasSharedVars reports whether any unbound variable occurs more than once
// in t. Shared variables are the case the superimposed-codeword filter
// cannot handle and the FS2 cross-binding check exists for (§2.1).
func HasSharedVars(t Term) bool {
	counts := make(map[*Var]int)
	countVars(t, counts)
	for _, n := range counts {
		if n > 1 {
			return true
		}
	}
	return false
}

func countVars(t Term, counts map[*Var]int) {
	switch t := Deref(t).(type) {
	case *Var:
		counts[t]++
	case *Compound:
		for _, a := range t.Args {
			countVars(a, counts)
		}
	}
}

// Rename returns a copy of t with every unbound variable replaced by a fresh
// variable; bound variables are replaced by (renamed copies of) their values.
// The same variable maps to the same fresh variable throughout.
func Rename(t Term) Term {
	return renameInto(t, make(map[*Var]*Var))
}

// RenameWith is Rename with a caller-supplied mapping, letting several terms
// (e.g. the head and body of a clause) share one renaming.
func RenameWith(t Term, m map[*Var]*Var) Term { return renameInto(t, m) }

func renameInto(t Term, m map[*Var]*Var) Term {
	switch t := Deref(t).(type) {
	case *Var:
		if nv, ok := m[t]; ok {
			return nv
		}
		nv := NewVar(t.Name)
		m[t] = nv
		return nv
	case *Compound:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameInto(a, m)
		}
		return &Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}

// Equal reports structural equality after dereferencing (Prolog ==/2).
// Unbound variables are equal only to themselves.
func Equal(a, b Term) bool {
	a, b = Deref(a), Deref(b)
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Int:
		b, ok := b.(Int)
		return ok && a == b
	case Float:
		b, ok := b.(Float)
		return ok && a == b
	case *Var:
		return a == b
	case *Compound:
		b, ok := b.(*Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare imposes the standard order of terms:
// Var < Float < Int < Atom < Compound; compounds order by arity, then
// functor, then arguments left to right. Returns -1, 0 or +1.
func Compare(a, b Term) int {
	a, b = Deref(a), Deref(b)
	ra, rb := orderRank(a), orderRank(b)
	if ra != rb {
		return sign(ra - rb)
	}
	switch a := a.(type) {
	case *Var:
		return sign(int(a.id) - int(b.(*Var).id))
	case Float:
		bf := b.(Float)
		switch {
		case a < bf:
			return -1
		case a > bf:
			return 1
		}
		return 0
	case Int:
		bi := b.(Int)
		switch {
		case a < bi:
			return -1
		case a > bi:
			return 1
		}
		return 0
	case Atom:
		return strings.Compare(string(a), string(b.(Atom)))
	case *Compound:
		bc := b.(*Compound)
		if d := len(a.Args) - len(bc.Args); d != 0 {
			return sign(d)
		}
		if d := strings.Compare(a.Functor, bc.Functor); d != 0 {
			return d
		}
		for i := range a.Args {
			if d := Compare(a.Args[i], bc.Args[i]); d != 0 {
				return d
			}
		}
		return 0
	}
	return 0
}

func orderRank(t Term) int {
	switch t.(type) {
	case *Var:
		return 0
	case Float:
		return 1
	case Int:
		return 2
	case Atom:
		return 3
	default:
		return 4
	}
}

func sign(d int) int {
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	}
	return 0
}

// SortTerms sorts ts in the standard order of terms, in place.
func SortTerms(ts []Term) {
	sort.SliceStable(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}

// Depth returns the nesting depth of t: constants and variables have depth
// 0; a compound has depth 1 + max depth of its arguments. The paper's
// matching "levels" are defined in terms of this depth (§2.2).
func Depth(t Term) int {
	c, ok := Deref(t).(*Compound)
	if !ok {
		return 0
	}
	max := 0
	for _, a := range c.Args {
		if d := Depth(a); d > max {
			max = d
		}
	}
	return 1 + max
}

// Size returns the number of nodes in t (variables and constants count 1,
// compounds count 1 plus their arguments).
func Size(t Term) int {
	c, ok := Deref(t).(*Compound)
	if !ok {
		return 1
	}
	n := 1
	for _, a := range c.Args {
		n += Size(a)
	}
	return n
}
