package term

import (
	"testing"
	"testing/quick"
)

func TestNewAtomVsCompound(t *testing.T) {
	if _, ok := New("foo").(Atom); !ok {
		t.Error("New with no args should return an Atom")
	}
	c, ok := New("foo", Int(1)).(*Compound)
	if !ok {
		t.Fatal("New with args should return *Compound")
	}
	if c.Functor != "foo" || len(c.Args) != 1 {
		t.Errorf("compound = %v", c)
	}
}

func TestDeref(t *testing.T) {
	v1, v2 := NewVar("X"), NewVar("Y")
	v1.Ref = v2
	v2.Ref = Atom("a")
	if got := Deref(v1); got != Atom("a") {
		t.Errorf("Deref chain = %v, want a", got)
	}
	u := NewVar("U")
	if got := Deref(u); got != u {
		t.Errorf("Deref unbound = %v, want the var itself", got)
	}
}

func TestListConstruction(t *testing.T) {
	l := List(Atom("a"), Atom("b"), Atom("c"))
	elems, tail := ListSlice(l)
	if len(elems) != 3 || tail != NilAtom {
		t.Fatalf("ListSlice = %v, %v", elems, tail)
	}
	if !IsProperList(l) {
		t.Error("proper list not recognised")
	}
	if IsPartialList(l) {
		t.Error("proper list mistaken for partial list")
	}
	if got := l.String(); got != "[a,b,c]" {
		t.Errorf("String = %q, want [a,b,c]", got)
	}
}

func TestPartialList(t *testing.T) {
	tl := NewVar("T")
	l := ListTail(tl, Atom("a"), Atom("b"))
	if !IsPartialList(l) {
		t.Error("partial list not recognised")
	}
	if IsProperList(l) {
		t.Error("partial list mistaken for proper list")
	}
	elems, tail := ListSlice(l)
	if len(elems) != 2 || tail != tl {
		t.Errorf("ListSlice = %v, %v", elems, tail)
	}
	if got := l.String(); got != "[a,b|T]" {
		t.Errorf("String = %q, want [a,b|T]", got)
	}
}

func TestGround(t *testing.T) {
	if !Ground(New("f", Int(1), List(Atom("x")))) {
		t.Error("ground term reported non-ground")
	}
	if Ground(New("f", NewVar("X"))) {
		t.Error("term with var reported ground")
	}
	v := NewVar("X")
	v.Ref = Atom("a")
	if !Ground(New("f", v)) {
		t.Error("bound var should count as ground")
	}
}

func TestVarsOrderAndDistinctness(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	tt := New("f", x, New("g", y, x))
	vs := Vars(tt, nil)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Errorf("Vars = %v", vs)
	}
}

func TestHasSharedVars(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	if HasSharedVars(New("married_couple", x, y)) {
		t.Error("distinct vars reported shared")
	}
	if !HasSharedVars(New("married_couple", x, x)) {
		t.Error("married_couple(S,S) not detected as shared — the §2.1 pathology")
	}
	// Sharing through structure.
	if !HasSharedVars(New("f", x, New("g", x))) {
		t.Error("nested sharing not detected")
	}
}

func TestRenameFreshAndConsistent(t *testing.T) {
	x := NewVar("X")
	orig := New("f", x, x, Atom("k"))
	ren := Rename(orig).(*Compound)
	rv0, ok0 := ren.Args[0].(*Var)
	rv1, ok1 := ren.Args[1].(*Var)
	if !ok0 || !ok1 {
		t.Fatalf("renamed args are not vars: %v", ren)
	}
	if rv0 != rv1 {
		t.Error("shared var lost sharing after rename")
	}
	if rv0 == x {
		t.Error("rename did not freshen the variable")
	}
	if ren.Args[2] != Atom("k") {
		t.Error("constant corrupted by rename")
	}
}

func TestRenameWithSharedMapping(t *testing.T) {
	x := NewVar("X")
	head := New("h", x)
	body := New("b", x)
	m := make(map[*Var]*Var)
	rh := RenameWith(head, m).(*Compound)
	rb := RenameWith(body, m).(*Compound)
	if rh.Args[0] != rb.Args[0] {
		t.Error("head/body sharing broken by RenameWith")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{Atom("a"), Atom("a"), true},
		{Atom("a"), Atom("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Float(1), false},
		{New("f", Int(1)), New("f", Int(1)), true},
		{New("f", Int(1)), New("f", Int(2)), false},
		{New("f", Int(1)), New("g", Int(1)), false},
		{New("f", Int(1)), New("f", Int(1), Int(2)), false},
		{List(Int(1)), List(Int(1)), true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	v := NewVar("X")
	if !Equal(v, v) {
		t.Error("var not equal to itself")
	}
	if Equal(v, NewVar("X")) {
		t.Error("distinct vars reported equal")
	}
	// Equality looks through bindings.
	w := NewVar("W")
	w.Ref = Atom("a")
	if !Equal(w, Atom("a")) {
		t.Error("bound var not equal to its value")
	}
}

func TestCompareStandardOrder(t *testing.T) {
	v := NewVar("X")
	ordered := []Term{v, Float(1.5), Int(2), Atom("a"), New("f", Int(1))}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := sign(i - j)
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	// Compounds: arity dominates functor.
	if Compare(New("z", Int(1)), New("a", Int(1), Int(2))) != -1 {
		t.Error("lower arity should order first")
	}
	if Compare(New("a", Int(1)), New("b", Int(1))) != -1 {
		t.Error("functor should break arity ties")
	}
	if Compare(New("a", Int(1)), New("a", Int(2))) != -1 {
		t.Error("args should break functor ties")
	}
}

func TestDepthAndSize(t *testing.T) {
	if d := Depth(Atom("a")); d != 0 {
		t.Errorf("Depth(atom) = %d", d)
	}
	if d := Depth(New("f", Atom("a"))); d != 1 {
		t.Errorf("Depth(f(a)) = %d", d)
	}
	deep := New("f", New("g", New("h", Int(1))))
	if d := Depth(deep); d != 3 {
		t.Errorf("Depth(f(g(h(1)))) = %d", d)
	}
	if s := Size(deep); s != 4 {
		t.Errorf("Size = %d, want 4", s)
	}
}

func TestStringQuoting(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{Atom("foo"), "foo"},
		{Atom("Foo"), "'Foo'"},
		{Atom("hello world"), "'hello world'"},
		{Atom("[]"), "[]"},
		{Atom("+"), "+"},
		{Atom("don't"), `'don\'t'`},
		{Atom(""), "''"},
		{Int(-5), "-5"},
		{Float(2), "2.0"},
		{New("f", Atom("a"), Int(1)), "f(a,1)"},
		{Cons(Int(1), NewVarNamed("T")), "[1|T]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// NewVarNamed gives tests a var that prints with its name.
func NewVarNamed(name string) *Var { return NewVar(name) }

func TestIndicator(t *testing.T) {
	if got := New("foo", Int(1), Int(2)).Indicator(); got != "foo/2" {
		t.Errorf("Indicator = %q", got)
	}
	if got := Atom("bar").Indicator(); got != "bar/0" {
		t.Errorf("Indicator = %q", got)
	}
}

// Property: Compare is antisymmetric and Equal ⇔ Compare==0 for ground terms
// built from ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, sameFunctor bool) bool {
		fa, fb := "f", "f"
		if !sameFunctor {
			fb = "g"
		}
		ta := New(fa, Int(a))
		tb := New(fb, Int(b))
		return Compare(ta, tb) == -Compare(tb, ta) &&
			(Compare(ta, tb) == 0) == Equal(ta, tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rename preserves structure (Depth, Size, Indicator) and
// variable-sharing patterns.
func TestQuickRenamePreservesShape(t *testing.T) {
	f := func(n uint8) bool {
		x := NewVar("X")
		tt := Term(x)
		for i := 0; i < int(n%6); i++ {
			tt = New("w", tt, x, Int(int64(i)))
		}
		r := Rename(tt)
		return Depth(r) == Depth(tt) && Size(r) == Size(tt) &&
			HasSharedVars(r) == HasSharedVars(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestControlOperatorPrinting(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{New(",", Atom("a"), Atom("b")), "(a,b)"},
		{New(";", Atom("a"), Atom("b")), "(a;b)"},
		{New("->", Atom("c"), Atom("t")), "(c->t)"},
		{New(":-", Atom("h"), Atom("b")), "(h:-b)"},
		{New(",", New(",", Atom("a"), Atom("b")), Atom("c")), "((a,b),c)"},
		// Arity-1 or arity-3 uses of the same names stay functional.
		{New(";", Atom("x")), ";(x)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSortTerms(t *testing.T) {
	ts := []Term{Atom("b"), Int(3), Atom("a"), Float(1.5), New("f", Int(1))}
	SortTerms(ts)
	want := []string{"1.5", "3", "a", "b", "f(1)"}
	for i, w := range want {
		if ts[i].String() != w {
			t.Fatalf("sorted = %v", ts)
		}
	}
}

func TestVarString(t *testing.T) {
	v := NewVar("Q")
	if v.String() != "Q" {
		t.Errorf("unbound var prints %q", v.String())
	}
	v.Ref = Atom("val")
	if v.String() != "val" {
		t.Errorf("bound var prints %q", v.String())
	}
	anon := NewVar("")
	if anon.String() == "" {
		t.Error("anonymous var should print a generated name")
	}
	if anon.ID() == 0 {
		t.Error("var ID should be assigned")
	}
}
