package termgen

import (
	"fmt"
	"testing"

	"clare/internal/term"
)

func TestDeterministic(t *testing.T) {
	run := func() string {
		g := New(99)
		out := ""
		for i := 0; i < 50; i++ {
			out += g.Goal("p", 3).String() + "\n"
		}
		return out
	}
	if run() != run() {
		t.Fatal("same seed produced different term sequences")
	}
}

func TestCoverage(t *testing.T) {
	// Over a modest sample the generator must produce every feature class
	// the soundness oracle relies on.
	g := New(7)
	var shared, open, deep, ground int
	for i := 0; i < 400; i++ {
		goal := g.Goal("p", 4)
		if term.HasSharedVars(goal) {
			shared++
		}
		if term.Ground(goal) {
			ground++
		}
		if term.Depth(goal) >= 3 {
			deep++
		}
		var walk func(t term.Term)
		walk = func(t term.Term) {
			if term.IsPartialList(t) {
				open++
			}
			if c, ok := term.Deref(t).(*term.Compound); ok {
				for _, a := range c.Args {
					walk(a)
				}
			}
		}
		walk(goal)
	}
	if shared == 0 || open == 0 || deep == 0 || ground == 0 {
		t.Fatalf("feature coverage: shared=%d open=%d deep=%d ground=%d", shared, open, deep, ground)
	}
}

func TestPairScopesDisjoint(t *testing.T) {
	g := New(3)
	for i := 0; i < 200; i++ {
		q, h := g.Pair("p", 3)
		qv := term.Vars(q, nil)
		hv := term.Vars(h, nil)
		for _, a := range qv {
			for _, b := range hv {
				if a == b {
					t.Fatalf("pair %d shares variable %v across sides", i, a)
				}
			}
		}
	}
}

func TestGoalShape(t *testing.T) {
	g := New(1)
	for _, arity := range []int{0, 1, 13} {
		goal := g.Goal("pred", arity)
		want := fmt.Sprintf("pred/%d", arity)
		if arity == 0 {
			want = "pred/0"
		}
		if goal.Indicator() != want {
			t.Fatalf("Goal(pred, %d) = %v", arity, goal.Indicator())
		}
	}
}
