// Package termgen generates random Prolog terms from a seeded source —
// the raw material for the property-based soundness oracle (package ptu)
// and the chaos workloads (package core). The same seed always yields
// the same term sequence, so a failing pair is reproducible from its
// seed and index alone.
//
// The generator is tuned for filter testing rather than uniform
// sampling: constant pools are kept small so contents collide (both
// matches and near-misses are common), variables are re-used within a
// scope to produce the shared-variable patterns the cross-binding check
// exists for (§2.1), and Pair can derive one side from the other so that
// true unifiers appear at a useful rate instead of almost never.
package termgen

import (
	"fmt"
	"math/rand"

	"clare/internal/term"
)

// Config bounds the generated terms. The zero value of any field selects
// its default.
type Config struct {
	// MaxDepth is the compound-nesting budget of a generated argument
	// (default 3).
	MaxDepth int
	// MaxArity bounds the arity of generated sub-compounds (default 4).
	MaxArity int
	// MaxListLen bounds generated list lengths (default 4).
	MaxListLen int
	// ShareProb is the chance a variable slot re-uses an earlier variable
	// of the current scope — the shared-variable generator (default 0.35).
	ShareProb float64
	// OpenProb is the chance a generated list is unterminated, with a
	// variable tail — the paper's "unlimited list" (default 0.25).
	OpenProb float64
	// MutateProb is the per-node chance Mutate rewrites a node instead of
	// copying it (default 0.3).
	MutateProb float64
	// Functors and Atoms are the symbol pools.
	Functors []string
	Atoms    []string
}

func (c *Config) fill() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 4
	}
	if c.MaxListLen <= 0 {
		c.MaxListLen = 4
	}
	if c.ShareProb <= 0 {
		c.ShareProb = 0.35
	}
	if c.OpenProb <= 0 {
		c.OpenProb = 0.25
	}
	if c.MutateProb <= 0 {
		c.MutateProb = 0.3
	}
	if len(c.Functors) == 0 {
		c.Functors = []string{"f", "g", "h"}
	}
	if len(c.Atoms) == 0 {
		c.Atoms = []string{"a", "b", "c", "d"}
	}
}

// Gen is a seeded term generator. Not safe for concurrent use; give each
// goroutine its own Gen.
type Gen struct {
	rng  *rand.Rand
	cfg  Config
	vars []*term.Var
	// mumap maps one scope's variables to their counterparts in the
	// opposite scope, so Mutate preserves sharing patterns (a variable
	// occurring twice in the source occurs twice in the mutant).
	mumap map[*term.Var]term.Term
}

// New returns a generator with default bounds.
func New(seed int64) *Gen { return NewWithConfig(seed, Config{}) }

// NewWithConfig returns a generator with explicit bounds.
func NewWithConfig(seed int64, cfg Config) *Gen {
	cfg.fill()
	return &Gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, mumap: make(map[*term.Var]term.Term)}
}

// Reset starts a fresh variable scope: subsequent Var calls no longer
// share with earlier ones. Use it between the two sides of a query/head
// pair (Pair does this itself).
func (g *Gen) Reset() {
	g.vars = g.vars[:0]
	clear(g.mumap)
}

// Var returns a variable of the current scope: usually fresh, sometimes
// (ShareProb) a re-occurrence of an earlier one.
func (g *Gen) Var() term.Term {
	if len(g.vars) > 0 && g.rng.Float64() < g.cfg.ShareProb {
		return g.vars[g.rng.Intn(len(g.vars))]
	}
	v := term.NewVar(fmt.Sprintf("V%d", len(g.vars)))
	g.vars = append(g.vars, v)
	return v
}

func (g *Gen) atom() term.Term { return term.Atom(g.cfg.Atoms[g.rng.Intn(len(g.cfg.Atoms))]) }

// constant draws an atom, a small integer, or a float from deliberately
// small pools, so content comparisons hit both equal and unequal cases.
func (g *Gen) constant() term.Term {
	switch g.rng.Intn(4) {
	case 0:
		return term.Int(g.rng.Intn(10))
	case 1:
		return term.Float(float64(g.rng.Intn(8)) / 2)
	default:
		return g.atom()
	}
}

// Term generates one random term with the given nesting budget.
func (g *Gen) Term(depth int) term.Term {
	k := g.rng.Intn(10)
	if depth <= 0 && k >= 6 {
		k = g.rng.Intn(6)
	}
	switch {
	case k < 2:
		return g.Var()
	case k < 4:
		return g.atom()
	case k < 5:
		return term.Int(g.rng.Intn(10))
	case k < 6:
		return term.Float(float64(g.rng.Intn(8)) / 2)
	case k < 8:
		arity := 1 + g.rng.Intn(g.cfg.MaxArity)
		args := make([]term.Term, arity)
		for i := range args {
			args[i] = g.Term(depth - 1)
		}
		return term.New(g.cfg.Functors[g.rng.Intn(len(g.cfg.Functors))], args...)
	default:
		n := g.rng.Intn(g.cfg.MaxListLen + 1)
		elems := make([]term.Term, n)
		for i := range elems {
			elems[i] = g.Term(depth - 1)
		}
		tail := term.Term(term.NilAtom)
		if g.rng.Float64() < g.cfg.OpenProb {
			tail = g.Var()
		}
		return term.ListTail(tail, elems...)
	}
}

// Goal generates a callable term of the given functor and arity in a
// fresh variable scope (arity 0 yields the atom).
func (g *Gen) Goal(functor string, arity int) term.Term {
	g.Reset()
	args := make([]term.Term, arity)
	for i := range args {
		args[i] = g.Term(g.cfg.MaxDepth)
	}
	return term.New(functor, args...)
}

// Pair generates a query goal and a clause head of the same functor and
// arity, in disjoint variable scopes. Half the time the head is an
// independent random term; the other half it is a Mutate of the query,
// so the stream contains true unifiers, near-misses, and unrelated pairs
// in useful proportions.
func (g *Gen) Pair(functor string, arity int) (query, head term.Term) {
	g.Reset()
	qargs := make([]term.Term, arity)
	for i := range qargs {
		qargs[i] = g.Term(g.cfg.MaxDepth)
	}
	g.Reset()
	hargs := make([]term.Term, arity)
	related := g.rng.Float64() < 0.5
	for i := range hargs {
		if related {
			hargs[i] = g.mutate(qargs[i], g.cfg.MaxDepth)
		} else {
			hargs[i] = g.Term(g.cfg.MaxDepth)
		}
	}
	return term.New(functor, qargs...), term.New(functor, hargs...)
}

// Mutate returns a structural variant of t built from the current
// scope's variables: most nodes are copied (variables mapped
// consistently into this scope, preserving sharing), and MutateProb of
// them are rewritten into a variable, a constant, or a fresh subterm.
func (g *Gen) Mutate(t term.Term) term.Term { return g.mutate(t, g.cfg.MaxDepth) }

func (g *Gen) mutate(t term.Term, depth int) term.Term {
	t = term.Deref(t)
	if g.rng.Float64() < g.cfg.MutateProb {
		switch g.rng.Intn(3) {
		case 0:
			return g.Var()
		case 1:
			return g.constant()
		default:
			return g.Term(depth)
		}
	}
	switch t := t.(type) {
	case *term.Var:
		if mt, ok := g.mumap[t]; ok {
			return mt
		}
		mt := g.Var()
		g.mumap[t] = mt
		return mt
	case *term.Compound:
		args := make([]term.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = g.mutate(a, depth-1)
		}
		return &term.Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}
