package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"clare/internal/parse"
	"clare/internal/term"
)

// storeFixture builds a retriever with facts, masked (variable-bearing)
// heads, and rules, saves it, and returns the retriever and store path.
func storeFixture(t *testing.T) (*Retriever, string) {
	t.Helper()
	r := familyRetriever(t, 40, 4)
	rules := []ClauseTerm{
		{Head: parse.MustTerm("fly(tweety)")},
		{Head: term.New("fly", term.NewVar("X")), Body: parse.MustTerm("bird(X)")},
	}
	if _, err := r.AddClauses("flying", rules); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.clare")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SaveKB(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return r, path
}

// diffRetrievers asserts two retrievers answer a goal identically in a
// mode: same candidates address by address, same funnel statistics.
func diffRetrievers(t *testing.T, label string, a, b *Retriever, goalSrc string, mode SearchMode) {
	t.Helper()
	goal := parse.MustTerm(goalSrc)
	art, aerr := a.Retrieve(goal, mode)
	brt, berr := b.Retrieve(goal, mode)
	if (aerr == nil) != (berr == nil) {
		t.Fatalf("%s %s %v: err %v vs %v", label, goalSrc, mode, aerr, berr)
	}
	if aerr != nil {
		return
	}
	if len(art.Candidates) != len(brt.Candidates) {
		t.Fatalf("%s %s %v: %d vs %d candidates", label, goalSrc, mode,
			len(art.Candidates), len(brt.Candidates))
	}
	for i := range art.Candidates {
		if art.Candidates[i].Addr != brt.Candidates[i].Addr {
			t.Fatalf("%s %s %v: candidate %d addr %d vs %d", label, goalSrc, mode,
				i, art.Candidates[i].Addr, brt.Candidates[i].Addr)
		}
	}
	as, bs := art.Stats, brt.Stats
	if as.AfterFS1 != bs.AfterFS1 || as.AfterFS2 != bs.AfterFS2 ||
		as.MaskedHits != bs.MaskedHits || as.IndexBytes != bs.IndexBytes ||
		as.ClauseBytes != bs.ClauseBytes {
		t.Fatalf("%s %s %v: stats %+v vs %+v", label, goalSrc, mode, as, bs)
	}
}

func storeGoals() []string {
	return []string{
		"married_couple(husband3, X)",
		"married_couple(S, S)",
		"married_couple(X, Y)",
		"married_couple(nobody, X)",
		"fly(tweety)",
		"fly(Z)",
	}
}

// TestStoreHeapMmapEquivalence: a kbc-built store answers identically
// whether it was decoded through the heap or out of a read-only mapping
// — candidates, funnel statistics, disk-size accounting, and per-
// predicate rule/mask counts all match the retriever that built it.
func TestStoreHeapMmapEquivalence(t *testing.T) {
	orig, path := storeFixture(t)
	hf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := LoadRetriever(DefaultConfig(), hf)
	hf.Close()
	if err != nil {
		t.Fatal(err)
	}
	mm, mapped, err := MapRetriever(DefaultConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.CloseStore()
	if runtime.GOOS == "linux" && !mapped {
		t.Fatal("v2 store on linux should take the mmap path")
	}
	if heap.StoreMapped() {
		t.Error("heap-loaded retriever claims a mapped store")
	}
	if mm.StoreMapped() != mapped {
		t.Errorf("StoreMapped() = %v, MapRetriever said %v", mm.StoreMapped(), mapped)
	}
	for _, goalSrc := range storeGoals() {
		for _, mode := range modes() {
			diffRetrievers(t, "orig/heap", orig, heap, goalSrc, mode)
			diffRetrievers(t, "heap/mmap", heap, mm, goalSrc, mode)
		}
	}
	for _, goalSrc := range []string{"married_couple(a, b)", "fly(x)"} {
		p1, err := heap.Predicate(parse.MustTerm(goalSrc))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := mm.Predicate(parse.MustTerm(goalSrc))
		if err != nil {
			t.Fatal(err)
		}
		if p1.RuleCount != p2.RuleCount || p1.MaskedClauses != p2.MaskedClauses {
			t.Errorf("%s: rules %d vs %d, masked %d vs %d", goalSrc,
				p1.RuleCount, p2.RuleCount, p1.MaskedClauses, p2.MaskedClauses)
		}
		if p1.File.SizeBytes() != p2.File.SizeBytes() {
			t.Errorf("%s: SizeBytes %d vs %d across store paths", goalSrc,
				p1.File.SizeBytes(), p2.File.SizeBytes())
		}
	}
}

// TestStoreMmapWritesOverlayHeap: mutating a mapped retriever rebuilds
// the touched predicate on the heap — the mapped base image is never
// written — and retrieval sees the union.
func TestStoreMmapWritesOverlayHeap(t *testing.T) {
	_, path := storeFixture(t)
	mm, _, err := MapRetriever(DefaultConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.CloseStore()
	if _, err := mm.AddClauses("family", []ClauseTerm{
		{Head: parse.MustTerm("married_couple(newman, newwife)")},
	}); err != nil {
		t.Fatal(err)
	}
	rt, err := mm.Retrieve(parse.MustTerm("married_couple(newman, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	trueU, _, err := rt.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if trueU != 1 {
		t.Fatalf("true unifiers after overlay write = %d, want 1", trueU)
	}
	// The on-disk image is untouched: a fresh mapping must not see the
	// write.
	fresh, _, err := MapRetriever(DefaultConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.CloseStore()
	rt2, err := fresh.Retrieve(parse.MustTerm("married_couple(newman, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if n, _, _ := rt2.Evaluate(); n != 0 {
		t.Fatalf("write leaked into the mapped base image: %d unifiers", n)
	}
}

// TestStoreV1Compat: a legacy v1 store still loads (heap path, rules
// recounted by decoding) and answers identically to a v2 load of the
// same retriever; MapRetriever falls back to the heap for it.
func TestStoreV1Compat(t *testing.T) {
	orig, _ := storeFixture(t)
	var v1 bytes.Buffer
	if err := orig.saveKBv1(&v1); err != nil {
		t.Fatal(err)
	}
	old, err := LoadRetriever(DefaultConfig(), bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, goalSrc := range storeGoals() {
		for _, mode := range modes() {
			diffRetrievers(t, "orig/v1", orig, old, goalSrc, mode)
		}
	}
	p1, err := orig.Predicate(parse.MustTerm("fly(x)"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := old.Predicate(parse.MustTerm("fly(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.RuleCount != p2.RuleCount || p1.MaskedClauses != p2.MaskedClauses {
		t.Errorf("v1 reload: rules %d vs %d, masked %d vs %d",
			p1.RuleCount, p2.RuleCount, p1.MaskedClauses, p2.MaskedClauses)
	}
	v1Path := filepath.Join(t.TempDir(), "v1.clare")
	if err := os.WriteFile(v1Path, v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fb, mapped, err := MapRetriever(DefaultConfig(), v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if mapped || fb.StoreMapped() {
		t.Error("v1 store must fall back to the heap path")
	}
	diffRetrievers(t, "v1/fallback", old, fb, "fly(Z)", ModeSoftware)
}

// TestStoreCorruptionFailsClosed: truncated or bit-flipped store images
// fail with an error through both load paths — never a panic, never a
// silently short knowledge base.
func TestStoreCorruptionFailsClosed(t *testing.T) {
	_, path := storeFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for frac := 1; frac < 8; frac++ {
		n := len(data) * frac / 8
		if _, err := LoadRetriever(DefaultConfig(), bytes.NewReader(data[:n])); err == nil {
			t.Errorf("heap load of %d/%d-byte prefix succeeded", n, len(data))
		}
		tpath := filepath.Join(dir, fmt.Sprintf("trunc%d.clare", frac))
		if err := os.WriteFile(tpath, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, _, err := MapRetriever(DefaultConfig(), tpath); err == nil {
			r.CloseStore()
			t.Errorf("mapped load of %d/%d-byte prefix succeeded", n, len(data))
		}
	}
	// Bit flips must never panic; loading or erroring are both legal.
	for off := 0; off < len(data); off += 97 {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if r, err := LoadRetriever(DefaultConfig(), bytes.NewReader(bad)); err == nil {
			_ = r
		}
		bpath := filepath.Join(dir, "flip.clare")
		if err := os.WriteFile(bpath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, _, err := MapRetriever(DefaultConfig(), bpath); err == nil {
			r.CloseStore()
		}
	}
}
