// Package core assembles CLARE: the two-stage filtering pipeline that
// turns a goal into a small set of potential unifiers fetched from disk
// (§2). It glues the substrates together exactly along the paper's
// dataflow:
//
//	secondary file ──FS1 (SCW+MB scan)──▶ clause addresses
//	clause file    ──fetch──▶ PIF records ──FS2 (partial test
//	unification)──▶ satisfiers ──host full unification──▶ clauses
//
// and implements the four CRS search modes (§2.2): software only, FS1
// only, FS2 only, and the full FS1+FS2 configuration.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/clausefile"
	"clare/internal/disk"
	"clare/internal/fault"
	"clare/internal/fs2"
	"clare/internal/pif"
	"clare/internal/plan"
	"clare/internal/ptu"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/vme"
)

// SearchMode is one of the four CRS retrieval modes (§2.2).
type SearchMode int

const (
	// ModeSoftware: the CRS performs all search operations itself.
	ModeSoftware SearchMode = iota
	// ModeFS1: the superimposed-codeword hardware only.
	ModeFS1
	// ModeFS2: the partial test unification hardware only.
	ModeFS2
	// ModeFS1FS2: the two-stage hardware filter.
	ModeFS1FS2
)

func (m SearchMode) String() string {
	switch m {
	case ModeSoftware:
		return "software"
	case ModeFS1:
		return "fs1"
	case ModeFS2:
		return "fs2"
	case ModeFS1FS2:
		return "fs1+fs2"
	}
	return "mode?"
}

// Engine selects how the retriever executes a retrieval.
type Engine int

const (
	// EngineSim walks the cycle-accurate hardware simulation: the VME
	// register protocol, the Double Buffer, per-operation FS2 cycle
	// accounting. It is the ground truth the paper's numbers come from.
	EngineSim Engine = iota
	// EngineNative runs the same algorithms as tight host code: columnar
	// SCW scans (one AND/compare per entry), allocation-free PIF matching
	// directly on the stored clause heads, batched exact-size fetch
	// accounting. Results are bit-identical to EngineSim — only wall-clock
	// speed and the FS2Match simulated-time ledger differ (see DESIGN §11).
	EngineNative
)

func (e Engine) String() string {
	switch e {
	case EngineSim:
		return "sim"
	case EngineNative:
		return "native"
	}
	return "engine?"
}

// ParseEngine maps the flag spellings "sim" and "native" to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "sim", "":
		return EngineSim, nil
	case "native":
		return EngineNative, nil
	}
	return EngineSim, fmt.Errorf("core: unknown engine %q (want sim or native)", s)
}

// Config parameterises a retriever.
type Config struct {
	// Disk is the drive model the knowledge base resides on.
	Disk disk.Model
	// SCW are the FS1 codeword parameters.
	SCW scw.Params
	// Microprogram is the FS2 matching program.
	Microprogram fs2.Microprogram
	// SoftwareMatchCost is the host CPU cost of examining one clause in
	// software mode (a nominal full-unification attempt on the paper's
	// M68020-class host). It only shapes mode comparisons; all hardware
	// times are derived from the component models.
	SoftwareMatchCost time.Duration
	// Boards is the number of FS2 board + bus + drive units in the
	// simulated chassis (0 means 1 — the paper's configuration). Each
	// retrieval leases one unit, so up to Boards retrievals proceed in
	// parallel.
	Boards int
	// StreamChunkEntries is how many secondary-file entries FS1 hands to
	// the fetch+FS2 stage per pipeline chunk in fs1+fs2 mode (0 derives
	// one disk track's worth — the paper's unit of transfer, §3.2).
	StreamChunkEntries int
	// QueryCacheSize bounds the query-encoding cache (distinct goal
	// shapes). 0 means DefaultQueryCacheSize; negative disables caching.
	QueryCacheSize int
	// Metrics, when non-nil, receives per-stage counters and histograms
	// (both wall-clock and simulated time) from the retriever, its board
	// pool, the disk drives, the FS2 boards, the VME buses, and the query
	// cache. Nil disables metrics at zero hot-path cost.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span tree per retrieval (encode,
	// board lease, per-chunk FS1 scan / disk fetch / FS2 match, host
	// match). Nil disables tracing.
	Tracer *telemetry.Tracer
	// Faults, when non-nil, is the fault injector armed across the
	// chassis: every drive, bus, and board probes it, as does the
	// retriever itself (site core.retrieve, keyed by predicate
	// indicator). Nil — the production configuration — costs one nil
	// check per probe.
	Faults *fault.Injector
	// TripThreshold is how many consecutive faulted leases trip a board
	// unit out of rotation (0 means 3).
	TripThreshold int
	// ProbePeriod is how long a tripped unit cools off before a
	// probationary re-admission (0 means 100ms).
	ProbePeriod time.Duration
	// MaxRetries bounds the extra attempts a retrieval makes after an
	// injected fault before degrading to host-only matching (0 means 2,
	// negative means no retries).
	MaxRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// further attempt (0 means 200µs).
	RetryBackoff time.Duration
	// Engine selects the execution engine: EngineSim (the default, the
	// cycle-accurate hardware simulation) or EngineNative (the vectorized
	// host fast path with identical results). Native mode requires a
	// microprogram the native matcher supports (no DescendFull).
	Engine Engine
	// ScanWorkers is how many partitions a native FS1 columnar scan may
	// split into, each swept by its own goroutine (0 derives GOMAXPROCS,
	// negative forces 1 — fully serial; clamped to MaxScanWorkers).
	// Candidates are bit-identical at any worker count: partitions are
	// contiguous and merged in order. Small scans stay serial regardless
	// (scw.ParScanMinEntries), and the sim engine ignores this knob.
	ScanWorkers int
	// Planner, when non-nil, arms the adaptive cost-based planner: every
	// clean retrieval's candidate funnel is folded into its per-predicate
	// statistics store, and PlanMode (the auto-mode path in the CRS
	// server and the Source facade) asks it to pick the search mode
	// instead of the static ChooseMode heuristic. Nil — the default —
	// costs one nil check per retrieval.
	Planner *plan.Planner
	// Flight, when non-nil, receives one compact FlightRecord per
	// retrieval — the always-on black box the /flight dumps and
	// crash/SLO-breach snapshots are built from. Nil — the default —
	// costs one nil check per retrieval.
	Flight *telemetry.FlightRecorder
}

// MaxScanWorkers bounds ScanWorkers (and the retriever's scan worker
// pool): beyond this, partition handoff overhead dwarfs any win.
const MaxScanWorkers = 32

// Fault-handling defaults.
const (
	defaultTripThreshold = 3
	defaultProbePeriod   = 100 * time.Millisecond
	defaultMaxRetries    = 2
	defaultRetryBackoff  = 200 * time.Microsecond
)

// DefaultConfig mirrors the paper's hardware: the faster SMD disk, 64-bit
// codewords with mask bits, level-3 + cross-binding microprogram.
func DefaultConfig() Config {
	return Config{
		Disk:              disk.FujitsuM2351A,
		SCW:               scw.DefaultParams,
		Microprogram:      fs2.MPLevel3XB,
		SoftwareMatchCost: 50 * time.Microsecond,
	}
}

// Indicator names a predicate.
type Indicator struct {
	Functor string
	Arity   int
}

func (pi Indicator) String() string { return fmt.Sprintf("%s/%d", pi.Functor, pi.Arity) }

// Predicate is one disk-resident predicate under CLARE management.
type Predicate struct {
	File *clausefile.PredFile
	// RuleCount counts clauses with a non-true body (rule intensity
	// informs the CRS mode heuristic, §2.2).
	RuleCount int
	// MaskedClauses counts clauses whose index entry masks at least one
	// argument (variable-bearing heads weaken FS1).
	MaskedClauses int
}

// FractionRules reports the predicate's rule intensity.
func (p *Predicate) FractionRules() float64 {
	if p.File.Len() == 0 {
		return 0
	}
	return float64(p.RuleCount) / float64(p.File.Len())
}

// FractionMasked reports how many clauses carry mask bits.
func (p *Predicate) FractionMasked() float64 {
	if p.File.Len() == 0 {
		return 0
	}
	return float64(p.MaskedClauses) / float64(p.File.Len())
}

// Retriever is the CLARE engine instance: a chassis of FS2 boards behind
// VME buses (one or more — the paper built one), each with its own disk
// spindle, and the managed predicates. Retrieve is safe for concurrent
// callers: each retrieval leases a board unit from the pool.
type Retriever struct {
	cfg    Config
	syms   *symtab.Table
	penc   *pif.Encoder
	ienc   *scw.Encoder
	pool   *boardPool
	qcache *queryCache
	met    *coreMetrics
	tracer *telemetry.Tracer

	// natPool recycles per-retrieval native-engine arenas (scan buffer +
	// matcher); idle in sim mode.
	natPool sync.Pool
	// scanPool runs native FS1 scan partitions; nil in sim mode. The
	// worker count actually used per scan is scanWorkers, adjustable at
	// runtime (SetScanWorkers) without rebuilding the retriever.
	scanPool    *scw.ScanPool
	scanWorkers atomic.Int32

	// storeMap pins the mmap'd store backing zero-copy predicates (nil
	// for heap-loaded retrievers). See MapRetriever.
	storeMap    storeMapping
	storeMapped bool

	predsMu sync.RWMutex
	preds   map[Indicator]*Predicate
}

// New builds a retriever with its own symbol table.
func New(cfg Config) (*Retriever, error) {
	return NewWithSymbols(cfg, symtab.New())
}

// NewWithSymbols builds a retriever sharing an existing symbol table
// (e.g. the knowledge base's).
func NewWithSymbols(cfg Config, syms *symtab.Table) (*Retriever, error) {
	ienc, err := scw.NewEncoder(cfg.SCW)
	if err != nil {
		return nil, err
	}
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	if cfg.SoftwareMatchCost <= 0 {
		cfg.SoftwareMatchCost = DefaultConfig().SoftwareMatchCost
	}
	switch cfg.Engine {
	case EngineSim:
	case EngineNative:
		// Fail fast on microprograms the native matcher cannot run, rather
		// than on the first retrieval.
		if _, err := fs2.NewNativeMatcher(cfg.Microprogram); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown engine %d", cfg.Engine)
	}
	pool, err := newBoardPool(cfg, cfg.Boards)
	if err != nil {
		return nil, err
	}
	qcache := newQueryCache(cfg.QueryCacheSize)
	qcache.instrument(cfg.Metrics)
	if cfg.Metrics != nil {
		cfg.Faults.Instrument(cfg.Metrics)
	}
	r := &Retriever{
		cfg:    cfg,
		syms:   syms,
		penc:   pif.NewEncoder(syms),
		ienc:   ienc,
		pool:   pool,
		qcache: qcache,
		met:    newCoreMetrics(cfg.Metrics),
		tracer: cfg.Tracer,
		preds:  make(map[Indicator]*Predicate),
	}
	if cfg.Engine == EngineNative {
		// The pool bound is independent of the configured worker count so
		// SetScanWorkers can sweep up to MaxScanWorkers at runtime;
		// workers spawn lazily, so an over-sized bound is free.
		r.scanPool = scw.NewScanPool(MaxScanWorkers - 1)
	}
	r.scanWorkers.Store(int32(resolveScanWorkers(cfg.ScanWorkers)))
	return r, nil
}

// resolveScanWorkers maps the config knob to an effective worker count.
func resolveScanWorkers(n int) int {
	switch {
	case n == 0:
		n = runtime.GOMAXPROCS(0)
	case n < 0:
		n = 1
	}
	if n < 1 {
		n = 1
	}
	if n > MaxScanWorkers {
		n = MaxScanWorkers
	}
	return n
}

// ScanWorkers reports the native scan's current worker count (1 when
// serial; the sim engine never consults it).
func (r *Retriever) ScanWorkers() int { return int(r.scanWorkers.Load()) }

// SetScanWorkers changes the native scan's worker count at runtime
// (clamped like Config.ScanWorkers; 0 re-derives GOMAXPROCS). It takes
// effect on the next retrieval — candidates are bit-identical at any
// setting, so it is safe to adjust under live traffic.
func (r *Retriever) SetScanWorkers(n int) {
	r.scanWorkers.Store(int32(resolveScanWorkers(n)))
}

// Metrics returns the registry the retriever was configured with (nil
// when telemetry is off).
func (r *Retriever) Metrics() *telemetry.Registry { return r.cfg.Metrics }

// Tracer returns the trace recorder the retriever was configured with
// (nil when tracing is off).
func (r *Retriever) Tracer() *telemetry.Tracer { return r.tracer }

// Symbols returns the shared symbol table.
func (r *Retriever) Symbols() *symtab.Table { return r.syms }

// Engine reports which execution engine the retriever runs.
func (r *Retriever) Engine() Engine { return r.cfg.Engine }

// Board exposes slot 0's FS2 engine (statistics, ablation). With a
// multi-board chassis, FS2Stats aggregates across all boards.
func (r *Retriever) Board() *fs2.Engine { return r.pool.all[0].board }

// Drive exposes slot 0's disk drive (statistics). With a multi-board
// chassis, DiskStats aggregates across all spindles.
func (r *Retriever) Drive() *disk.Drive { return r.pool.all[0].drive }

// Chassis exposes the VME chassis holding the filter boards.
func (r *Retriever) Chassis() *vme.Chassis { return r.pool.chassis }

// Boards reports the chassis size.
func (r *Retriever) Boards() int { return len(r.pool.all) }

// FS2Stats aggregates FS2 statistics across every board in the chassis.
// The snapshot is taken under the pool lock from per-slot copies captured
// at board release, so it is race-free while retrievals are in flight; a
// retrieval still holding a board contributes its work when it releases.
func (r *Retriever) FS2Stats() fs2.Stats { return r.pool.fs2Snapshot() }

// DiskStats aggregates disk statistics across every spindle, with the
// same release-time snapshot semantics as FS2Stats.
func (r *Retriever) DiskStats() disk.Stats { return r.pool.diskSnapshot() }

// QueryCache reports the query-encoding cache's counters.
func (r *Retriever) QueryCache() QueryCacheStats { return r.qcache.stats() }

// AddClauses compiles clauses into a new predicate file under module. The
// clauses must all share one functor/arity; bodies use term.Atom("true")
// for facts. Replaces any existing predicate of the same indicator.
func (r *Retriever) AddClauses(module string, clauses []ClauseTerm) (*Predicate, error) {
	if len(clauses) == 0 {
		return nil, fmt.Errorf("core: no clauses")
	}
	functor, args, ok := principal(clauses[0].Head)
	if !ok {
		return nil, fmt.Errorf("core: %v is not callable", clauses[0].Head)
	}
	pi := Indicator{Functor: functor, Arity: len(args)}
	b, err := clausefile.NewBuilder(module, pi.Functor, pi.Arity, r.syms, r.cfg.SCW)
	if err != nil {
		return nil, err
	}
	pred := &Predicate{}
	for _, cl := range clauses {
		body := cl.Body
		if body == nil {
			body = term.Atom("true")
		}
		if err := b.Add(cl.Head, body); err != nil {
			return nil, err
		}
		if !term.Equal(body, term.Atom("true")) {
			pred.RuleCount++
		}
	}
	pred.File = b.Build()
	for _, ent := range pred.File.Index().Entries() {
		if ent.Mask != 0 {
			pred.MaskedClauses++
		}
	}
	r.predsMu.Lock()
	r.preds[pi] = pred
	r.predsMu.Unlock()
	return pred, nil
}

// ClauseTerm pairs a head with an optional body (nil for facts).
type ClauseTerm struct {
	Head term.Term
	Body term.Term
}

// Predicate returns the managed predicate for the goal's indicator.
func (r *Retriever) Predicate(goal term.Term) (*Predicate, error) {
	functor, args, ok := principal(goal)
	if !ok {
		return nil, fmt.Errorf("core: %v is not callable", goal)
	}
	pi := Indicator{Functor: functor, Arity: len(args)}
	r.predsMu.RLock()
	p, ok := r.preds[pi]
	r.predsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown predicate %v", pi)
	}
	return p, nil
}

// PredicateByIndicator returns the managed predicate for pi, or false
// when the indicator is unknown.
func (r *Retriever) PredicateByIndicator(pi Indicator) (*Predicate, bool) {
	r.predsMu.RLock()
	p, ok := r.preds[pi]
	r.predsMu.RUnlock()
	return p, ok
}

// Predicates lists the managed indicators, sorted by functor then arity
// so tools and tests see a stable order.
func (r *Retriever) Predicates() []Indicator {
	r.predsMu.RLock()
	defer r.predsMu.RUnlock()
	return sortedIndicators(r.preds)
}

func principal(t term.Term) (string, []term.Term, bool) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t), nil, true
	case *term.Compound:
		return t.Functor, t.Args, true
	}
	return "", nil, false
}

// StageStats describes one retrieval's per-stage behaviour.
type StageStats struct {
	// TotalClauses is the predicate's clause count.
	TotalClauses int
	// AfterFS1 is the candidate count surviving the index scan (equals
	// TotalClauses when FS1 is not used).
	AfterFS1 int
	// AfterFS2 is the candidate count surviving partial test unification
	// (equals AfterFS1 when FS2 is not used).
	AfterFS2 int
	// MaskedHits counts FS1 survivors whose index entry carries mask bits
	// (variable-bearing clause heads) — a structural ghost source the
	// EXPLAIN profile attributes separately from hash collisions.
	MaskedHits int
	// FS2RejectsLevel and FS2RejectsXB split FS2's rejections by cause:
	// plain level-3 mismatches versus variable cross-binding consistency
	// failures (the §2.2 shared-variable machinery).
	FS2RejectsLevel int
	FS2RejectsXB    int
	// Overflowed reports Result Memory exhaustion during FS2.
	Overflowed bool

	// Simulated time per stage.
	FS1Scan   time.Duration // secondary file through FS1 (disk-bound)
	DiskFetch time.Duration // clause records from disk
	FS2Match  time.Duration // TUE operation time
	HostMatch time.Duration // software-mode host matching
	// Total is the retrieval's simulated wall time. Streaming stages
	// overlap disk transfer with matching via the Double Buffer, and in
	// fs1+fs2 mode the FS1 scan of one chunk overlaps the fetch+match of
	// the previous chunk, so per step the slower side dominates (the
	// per-chunk max, not the sum).
	Total time.Duration

	// IndexBytes and ClauseBytes are the bytes each stage streamed.
	IndexBytes  int
	ClauseBytes int

	// Chunks is the number of FS1→FS2 pipeline chunks the retrieval
	// streamed (fs1+fs2 mode; 0 when stage streaming was not used).
	Chunks int
	// QueryCacheHit reports that the goal's encodings came from the
	// query-encoding cache.
	QueryCacheHit bool

	// Faults counts the injected hardware faults this retrieval absorbed
	// across all of its attempts.
	Faults int
	// Retries counts the extra attempts made after a faulted one.
	Retries int
	// Degraded names the degradation-ladder rung the retrieval ended on:
	// "" (none — it ran in the requested mode), "fs2" (the FS1 index was
	// unreadable, so the clause file was full-scanned through FS2), or
	// "host" (no healthy board, or the retry budget was spent; the host
	// matched the clause file itself). The requested mode stays in
	// Retrieval.Mode.
	Degraded string
}

// Retrieval is the outcome of one CLARE search call.
type Retrieval struct {
	Mode SearchMode
	Goal term.Term
	// Candidates are the potential unifiers, in user clause order.
	Candidates []*clausefile.StoredClause
	Stats      StageStats
	pred       *Predicate

	trace *telemetry.Trace
	wall  stageWallTimes
}

// Trace returns the retrieval's span tree (nil unless the retriever was
// configured with a Tracer).
func (rt *Retrieval) Trace() *telemetry.Trace { return rt.trace }

// TraceID reports the retrieval's trace identifier (0 when untraced).
func (rt *Retrieval) TraceID() uint64 {
	if rt.trace == nil {
		return 0
	}
	return rt.trace.TraceID
}

// DecodeCandidates reconstructs the candidate clauses (head, body).
func (rt *Retrieval) DecodeCandidates() (heads, bodies []term.Term, err error) {
	for _, sc := range rt.Candidates {
		h, b, err := rt.pred.File.DecodeClause(sc)
		if err != nil {
			return nil, nil, err
		}
		heads = append(heads, h)
		bodies = append(bodies, b)
	}
	return heads, bodies, nil
}

// Retrieve runs one search call in the given mode. It is safe for
// concurrent callers: each call leases one board unit (FS2 board, VME
// bus, disk drive) from the chassis pool for its duration. When the
// retriever carries telemetry, the call records per-stage metrics in both
// clocks and one span tree into the tracer's ring buffer.
//
// Under fault injection the call degrades rather than fails. A faulted
// attempt is retried on different hardware (bounded by Config.MaxRetries,
// backing off between attempts); an unreadable FS1 index downgrades the
// mode to a full FS2 scan; and when every board is tripped — or the retry
// budget is spent — the host performs the whole match itself. Injected
// faults therefore never surface as errors: Stats.Degraded records the
// ladder rung the retrieval ended on, Stats.Faults/Retries what it cost
// to get there.
func (r *Retriever) Retrieve(goal term.Term, mode SearchMode) (*Retrieval, error) {
	return r.RetrieveTraced(goal, mode, nil)
}

// RetrieveTraced is Retrieve joining a remote caller's trace: when tc is
// non-nil the retrieval's span tree records the caller's trace ID and
// parent span, so the CRS server can ship the subtree back over the wire
// for the caller to graft. tc nil is plain Retrieve.
func (r *Retriever) RetrieveTraced(goal term.Term, mode SearchMode, tc *telemetry.TraceContext) (*Retrieval, error) {
	return r.RetrieveTracedPlan(goal, mode, tc, nil)
}

// RetrieveTracedPlan is RetrieveTraced carrying the planner decision
// that picked mode (nil when the mode was pinned statically), so the
// flight record can name the decision without re-deriving it.
func (r *Retriever) RetrieveTracedPlan(goal term.Term, mode SearchMode, tc *telemetry.TraceContext, d *plan.Decision) (*Retrieval, error) {
	wallStart := time.Now()
	pred, err := r.Predicate(goal)
	if err != nil {
		r.met.errors.Inc()
		return nil, err
	}
	var pi Indicator
	if functor, args, ok := principal(goal); ok {
		pi = Indicator{Functor: functor, Arity: len(args)}
	}

	tr := r.tracer.StartRemote("retrieve", tc)
	root := tr.Root()
	if root != nil {
		root.SetAttr("predicate", pi.String())
		root.SetAttr("mode", mode.String())
	}

	finish := func(rt *Retrieval, faults, retries int, degraded string) *Retrieval {
		rt.Stats.AfterFS2 = len(rt.Candidates)
		rt.Stats.Faults = faults
		rt.Stats.Retries = retries
		rt.Stats.Degraded = degraded
		wall := time.Since(wallStart)
		r.met.observe(rt, wall)
		if p := r.cfg.Planner; p != nil && degraded == "" && faults == 0 {
			// Degraded or faulted runs price the failure ladder, not the
			// mode — keep them out of the learned profile.
			if pm, ok := planMode(mode); ok {
				p.Observe(pi.String(), plan.ShapeOf(goal), pm, plan.Observation{
					TotalClauses: rt.Stats.TotalClauses,
					AfterFS1:     rt.Stats.AfterFS1,
					AfterFS2:     rt.Stats.AfterFS2,
					Sim:          rt.Stats.Total,
					Wall:         wall,
				})
			}
		}
		if f := r.cfg.Flight; f != nil {
			rec := &telemetry.FlightRecord{
				TS:        wallStart.UnixNano(),
				Predicate: pi.String(),
				Mode:      mode.String(),
				Total:     int64(rt.Stats.TotalClauses),
				AfterFS1:  int64(rt.Stats.AfterFS1),
				AfterFS2:  int64(rt.Stats.AfterFS2),
				SimNS:     int64(rt.Stats.Total),
				WallNS:    int64(wall),
				Degraded:  degraded,
				Faults:    int64(faults),
				Retries:   int64(retries),
			}
			if tr != nil {
				rec.TraceID = tr.TraceID
			}
			if d != nil {
				rec.Shape = string(d.Shape)
				rec.Plan = d.Reason
			} else {
				rec.Shape = string(plan.ShapeOf(goal))
			}
			f.Record(rec)
			r.met.flightRecords.Inc()
		}
		if root != nil {
			root.AddSim(rt.Stats.Total)
			root.SetAttr("candidates", fmt.Sprint(len(rt.Candidates)))
			if degraded != "" {
				root.SetAttr("degraded", degraded)
			}
			if retries > 0 {
				root.SetAttr("retries", fmt.Sprint(retries))
			}
			root.End()
			r.tracer.Finish(tr)
		}
		return rt
	}
	fail := func(err error) error {
		r.met.errors.Inc()
		if root != nil {
			root.SetAttr("error", err.Error())
			root.End()
			r.tracer.Finish(tr)
		}
		return err
	}

	effMode := mode
	degraded := ""
	faults, retries := 0, 0
	backoff := r.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	maxRetries := r.cfg.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = defaultMaxRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if attempt > 0 {
			retries++
			r.met.retriesC.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		// The predicate-targeted whole-retrieval site: chaos schedules
		// fail retrievals by indicator without aiming at one component.
		if err := r.cfg.Faults.Probe(fault.SiteRetrieve, pi.String()); err != nil {
			faults++
			continue
		}
		rt := &Retrieval{Mode: mode, Goal: goal, pred: pred, trace: tr}
		rt.Stats.TotalClauses = pred.File.Len()

		leaseStart := time.Now()
		u := r.pool.lease()
		leaseWait := time.Since(leaseStart)
		r.met.leaseWait.ObserveDuration(leaseWait)
		if u == nil {
			// Every unit is tripped and cooling off: drop to the
			// ladder's last rung.
			break
		}
		r.met.boardsBusy.Add(1)
		if sp := tr.Span(root, stageLease); sp != nil {
			sp.Start = leaseStart
			sp.Wall = leaseWait
			sp.SetAttr("slot", fmt.Sprint(u.slot))
		}
		root.SetAttr("board", fmt.Sprint(u.slot))

		if r.cfg.Engine == EngineNative {
			switch effMode {
			case ModeSoftware:
				// Mode (a) is defined by the host reference matcher and is
				// shared between engines; the native engine accelerates
				// the filter modes.
				err = r.retrieveSoftware(goal, pred, rt, u)
			case ModeFS1:
				err = r.retrieveFS1Native(goal, pred, rt, u)
			case ModeFS2:
				err = r.retrieveFS2AllNative(goal, pred, rt, u)
			case ModeFS1FS2:
				err = r.retrieveFS1FS2Native(goal, pred, rt, u)
			default:
				err = fmt.Errorf("core: unknown mode %d", mode)
			}
		} else {
			switch effMode {
			case ModeSoftware:
				err = r.retrieveSoftware(goal, pred, rt, u)
			case ModeFS1:
				err = r.retrieveFS1(goal, pred, rt, u)
			case ModeFS2:
				err = r.retrieveFS2All(goal, pred, rt, u)
			case ModeFS1FS2:
				err = r.retrieveFS1FS2(goal, pred, rt, u)
			default:
				err = fmt.Errorf("core: unknown mode %d", mode)
			}
		}
		if err == nil {
			r.pool.release(u)
			r.met.boardsBusy.Add(-1)
			return finish(rt, faults, retries, degraded), nil
		}
		if !fault.Is(err) {
			r.pool.release(u)
			r.met.boardsBusy.Add(-1)
			return nil, fail(err)
		}
		faults++
		r.pool.releaseFaulty(u)
		r.met.boardsBusy.Add(-1)
		if fault.SiteOf(err) == fault.SiteDiskIndex && (effMode == ModeFS1 || effMode == ModeFS1FS2) {
			// The secondary file is unreadable: abandon FS1 filtering
			// and full-scan the clause file through FS2 (§2.2 mode (c)).
			effMode = ModeFS2
			degraded = "fs2"
			r.met.degraded["fs2"].Inc()
		}
	}
	// Last rung: no healthy board, or the retry budget is spent. The host
	// matches the raw clause file itself — no hardware, no injection
	// sites, guaranteed to complete.
	degraded = "host"
	r.met.degraded["host"].Inc()
	rt := &Retrieval{Mode: mode, Goal: goal, pred: pred, trace: tr}
	rt.Stats.TotalClauses = pred.File.Len()
	if err := r.retrieveSoftware(goal, pred, rt, nil); err != nil {
		return nil, fail(err)
	}
	return finish(rt, faults, retries, degraded), nil
}

// Flight reports the flight recorder this retriever records into (nil
// when none is configured).
func (r *Retriever) Flight() *telemetry.FlightRecorder { return r.cfg.Flight }

// encodeQuery produces the goal's SCW query codeword and PIF query image,
// memoised per goal shape in the query cache.
func (r *Retriever) encodeQuery(goal term.Term, rt *Retrieval) (qd scw.QueryDescriptor, q *pif.Encoded, err error) {
	start := time.Now()
	sp := rt.trace.Span(nil, stageEncode)
	defer func() {
		rt.wall.encode += time.Since(start)
		if sp != nil {
			sp.SetAttr("cache", map[bool]string{true: "hit", false: "miss"}[rt.Stats.QueryCacheHit])
			sp.End()
		}
	}()
	var key string
	if r.qcache != nil {
		var cacheable bool
		if key, cacheable = queryKey(goal); cacheable {
			if c := r.qcache.get(key); c != nil {
				rt.Stats.QueryCacheHit = true
				return c.scw, c.pif, nil
			}
		} else {
			key = ""
		}
	}
	qd, err = r.ienc.EncodeQuery(goal)
	if err != nil {
		return scw.QueryDescriptor{}, nil, err
	}
	q, err = r.penc.Encode(goal, pif.QuerySide)
	if err != nil {
		return scw.QueryDescriptor{}, nil, err
	}
	if key != "" {
		r.qcache.put(key, &cachedQuery{pif: q, scw: qd})
	}
	return qd, q, nil
}

// retrieveSoftware scans the whole clause file and matches in software —
// mode (a): "the CRS performs all the search operations itself". The
// software matcher runs the same level-3+XB algorithm (package ptu).
//
// A nil unit selects host-only degraded operation: the host reads the
// clause file through its own block I/O (costed by the drive model
// directly, outside any per-spindle accounting) and nothing probes a
// fault site, so this path always completes.
func (r *Retriever) retrieveSoftware(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	all := pred.File.All()
	rt.Stats.AfterFS1 = len(all)
	rt.Stats.ClauseBytes = pred.File.SizeBytes()
	var diskTime time.Duration
	if u != nil {
		var err error
		if diskTime, err = u.drive.Scan(pred.File.SizeBytes()); err != nil {
			return err
		}
	} else {
		diskTime = r.cfg.Disk.ScanTime(pred.File.SizeBytes())
	}
	if sp := rt.trace.Span(nil, stageDiskFetch); sp != nil {
		sp.AddSim(diskTime)
		sp.SetAttr("bytes", fmt.Sprint(pred.File.SizeBytes()))
		sp.End()
	}
	sp := rt.trace.Span(nil, stageHostMatch)
	start := time.Now()
	cfg := ptuConfigFor(r.cfg.Microprogram)
	for _, sc := range all {
		head, _, err := pred.File.DecodeClause(sc)
		if err != nil {
			return err
		}
		rt.Stats.HostMatch += r.cfg.SoftwareMatchCost
		if ptu.Match(goal, head, cfg) {
			rt.Candidates = append(rt.Candidates, sc)
		}
	}
	rt.wall.host += time.Since(start)
	if sp != nil {
		sp.AddSim(rt.Stats.HostMatch)
		sp.SetAttr("clauses", fmt.Sprint(len(all)))
		sp.End()
	}
	rt.Stats.DiskFetch = diskTime
	rt.Stats.Total = diskTime + rt.Stats.HostMatch
	return nil
}

// retrieveFS1 scans the secondary file and fetches the surviving clause
// records — mode (b).
func (r *Retriever) retrieveFS1(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	qd, _, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	scanSpan := rt.trace.Span(nil, stageFS1Scan)
	scanStart := time.Now()
	scan := pred.File.Index().Scan(qd)
	rt.Stats.IndexBytes = scan.BytesScanned
	// The index streams from disk through FS1; FS1 (4.5 MB/s) outruns the
	// disk, so delivery dominates.
	diskIndex, err := u.drive.IndexScan(scan.BytesScanned)
	if err != nil {
		return err
	}
	fs1Time := scan.Elapsed
	if diskIndex > fs1Time {
		fs1Time = diskIndex
	}
	rt.Stats.FS1Scan = fs1Time
	rt.Stats.AfterFS1 = len(scan.Addrs)
	rt.Stats.MaskedHits = scan.MaskedHits
	rt.wall.fs1 += time.Since(scanStart)
	if scanSpan != nil {
		scanSpan.AddSim(fs1Time)
		scanSpan.SetAttr("survivors", fmt.Sprint(len(scan.Addrs)))
		scanSpan.End()
	}

	fetchSpan := rt.trace.Span(nil, stageDiskFetch)
	fetchStart := time.Now()
	candidates, err := pred.File.ByAddrs(scan.Addrs)
	if err != nil {
		return err
	}
	fetchBytes := 0
	for _, sc := range candidates {
		fetchBytes += sc.SizeBytes
	}
	rt.Stats.ClauseBytes = fetchBytes
	avg := 0
	if len(candidates) > 0 {
		avg = fetchBytes / len(candidates)
	}
	if rt.Stats.DiskFetch, err = u.drive.Fetch(len(candidates), avg); err != nil {
		return err
	}
	rt.Candidates = candidates
	rt.wall.fetch += time.Since(fetchStart)
	if fetchSpan != nil {
		fetchSpan.AddSim(rt.Stats.DiskFetch)
		fetchSpan.SetAttr("bytes", fmt.Sprint(fetchBytes))
		fetchSpan.End()
	}
	rt.Stats.Total = rt.Stats.FS1Scan + rt.Stats.DiskFetch
	return nil
}

// retrieveFS1FS2 is mode (d) restructured as a streaming pipeline: the
// secondary file is consumed in chunks, and as soon as FS1 emits a
// chunk's survivors their clause records are fetched and matched by FS2
// — while FS1 is already scanning the next chunk. This lifts the
// Double-Buffer idea (overlap transfer with matching) from the datapath
// to the stage pipeline: per chunk the slower of {FS1 delivery} and
// {fetch + FS2 match} dominates, accounted by pipelineTime.
func (r *Retriever) retrieveFS1FS2(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	qd, q, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	ix := pred.File.Index()
	n := ix.Len()
	if n == 0 {
		return nil
	}
	chunk := r.cfg.StreamChunkEntries
	if chunk <= 0 {
		// One disk track per chunk — the paper's worst-case unit of a
		// single FS2 search call (§3.2).
		chunk = r.cfg.Disk.TrackBytes / scw.EntrySize
		if chunk < 1 {
			chunk = 1
		}
	}

	if _, err := u.bus.SelectFS2(fs2.ModeSetQuery); err != nil {
		return err
	}
	if err := u.board.SetQuery(q); err != nil {
		return err
	}

	// One positioning access starts the sequential index stream; chunk
	// transfers then continue at the sustained rate.
	access, err := u.drive.Access()
	if err != nil {
		return err
	}
	var scanChunks, matchChunks []time.Duration
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunkSpan := rt.trace.Span(nil, "chunk")
		if chunkSpan != nil {
			chunkSpan.SetAttr("entries", fmt.Sprintf("%d-%d", lo, hi))
		}
		scanSpan := rt.trace.Span(chunkSpan, stageFS1Scan)
		scanStart := time.Now()
		scan := ix.ScanRange(qd, lo, hi)
		rt.Stats.IndexBytes += scan.BytesScanned
		// FS1 outruns the disk, so chunk delivery dominates the scan.
		sTime := scan.Elapsed
		dt, err := u.drive.Stream(scan.BytesScanned)
		if err != nil {
			return err
		}
		if dt > sTime {
			sTime = dt
		}
		rt.Stats.FS1Scan += sTime
		rt.Stats.AfterFS1 += len(scan.Addrs)
		rt.Stats.MaskedHits += scan.MaskedHits
		scanChunks = append(scanChunks, sTime)
		rt.wall.fs1 += time.Since(scanStart)
		if scanSpan != nil {
			scanSpan.AddSim(sTime)
			scanSpan.SetAttr("survivors", fmt.Sprint(len(scan.Addrs)))
			scanSpan.End()
		}

		fetchSpan := rt.trace.Span(chunkSpan, stageDiskFetch)
		fetchStart := time.Now()
		candidates, err := pred.File.ByAddrs(scan.Addrs)
		if err != nil {
			return err
		}
		fetchBytes := 0
		for _, sc := range candidates {
			fetchBytes += sc.SizeBytes
		}
		rt.Stats.ClauseBytes += fetchBytes
		avg := 0
		if len(candidates) > 0 {
			avg = fetchBytes / len(candidates)
		}
		fetch, err := u.drive.Fetch(len(candidates), avg)
		if err != nil {
			return err
		}
		rt.Stats.DiskFetch += fetch
		rt.wall.fetch += time.Since(fetchStart)
		if fetchSpan != nil {
			fetchSpan.AddSim(fetch)
			fetchSpan.SetAttr("bytes", fmt.Sprint(fetchBytes))
			fetchSpan.End()
		}

		matchSpan := rt.trace.Span(chunkSpan, stageFS2Match)
		match, _, err := r.searchFS2(u, candidates, rt)
		if err != nil {
			return err
		}
		if matchSpan != nil {
			matchSpan.AddSim(match)
			matchSpan.SetAttr("examined", fmt.Sprint(len(candidates)))
			matchSpan.End()
		}
		// Within the chunk, the fetched stream passes through FS2 on the
		// fly (the Double Buffer): the slower side dominates.
		mTime := fetch
		if match > mTime {
			mTime = match
		}
		matchChunks = append(matchChunks, mTime)
		chunkSpan.End()
	}
	rt.Stats.FS1Scan += access
	rt.Stats.Chunks = len(scanChunks)
	rt.Stats.Total = pipelineTime(access, scanChunks, matchChunks)
	return nil
}

// retrieveFS2All streams the whole clause file through FS2 — mode (c).
// The Double Buffer overlaps each clause's matching with the next
// clause's transfer, so the stream time is computed per clause:
//
//	access + xfer₀ + Σᵢ₌₁ max(xferᵢ, matchᵢ₋₁) + match_last
func (r *Retriever) retrieveFS2All(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	all := pred.File.All()
	rt.Stats.AfterFS1 = len(all)
	rt.Stats.ClauseBytes = pred.File.SizeBytes()
	diskTime, err := u.drive.Scan(pred.File.SizeBytes())
	if err != nil {
		return err
	}
	if sp := rt.trace.Span(nil, stageDiskFetch); sp != nil {
		sp.AddSim(diskTime)
		sp.SetAttr("bytes", fmt.Sprint(pred.File.SizeBytes()))
		sp.End()
	}
	_, q, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	if _, err := u.bus.SelectFS2(fs2.ModeSetQuery); err != nil {
		return err
	}
	if err := u.board.SetQuery(q); err != nil {
		return err
	}
	matchSpan := rt.trace.Span(nil, stageFS2Match)
	matchTime, clauseTimes, err := r.searchFS2(u, all, rt)
	if err != nil {
		return err
	}
	if matchSpan != nil {
		matchSpan.AddSim(matchTime)
		matchSpan.SetAttr("examined", fmt.Sprint(len(all)))
		matchSpan.End()
	}
	xfers := make([]time.Duration, len(all))
	for i, sc := range all {
		xfers[i] = r.cfg.Disk.TransferTime(sc.SizeBytes)
	}
	rt.Stats.DiskFetch = diskTime
	rt.Stats.Total = pipelineTime(r.cfg.Disk.AccessTime(), xfers, clauseTimes)
	return nil
}

// pipelineTime models the double-buffered stream: transfer of clause i
// overlaps the matching of clause i-1.
func pipelineTime(access time.Duration, xfers, matches []time.Duration) time.Duration {
	if len(xfers) == 0 {
		return access
	}
	total := access + xfers[0]
	for i := 1; i < len(xfers); i++ {
		step := xfers[i]
		if i-1 < len(matches) && matches[i-1] > step {
			step = matches[i-1]
		}
		total += step
	}
	if n := len(matches); n > 0 {
		total += matches[n-1]
	}
	return total
}

// searchFS2 drives the §3 register protocol for one stream of clause
// records through the leased board (the query must already be set),
// appends the satisfiers to rt.Candidates and returns the stream's match
// time plus per-clause times (for pipeline accounting).
func (r *Retriever) searchFS2(u *boardUnit, in []*clausefile.StoredClause, rt *Retrieval) (time.Duration, []time.Duration, error) {
	wallStart := time.Now()
	defer func() { rt.wall.fs2 += time.Since(wallStart) }()
	records := make([]fs2.Record, len(in))
	for i, sc := range in {
		records[i] = fs2.Record{Addr: sc.Addr, Enc: sc.Head}
	}
	// The Result Memory bounds one FS2 search call (§3.2: "the worst case
	// of a single FS2 search call" is one disk track). The CRS issues the
	// stream in batches the satisfier counter can always accommodate, so
	// no satisfier is ever lost to the 6-bit counter.
	var matchTime time.Duration
	var clauseTimes []time.Duration
	var addrs []uint32
	for start := 0; start < len(records); start += fs2.ResultSlots {
		end := start + fs2.ResultSlots
		if end > len(records) {
			end = len(records)
		}
		if _, err := u.bus.SelectFS2(fs2.ModeSearch); err != nil {
			return 0, nil, err
		}
		res, err := u.board.Search(records[start:end])
		if err != nil {
			return 0, nil, err
		}
		matchTime += res.MatchTime
		clauseTimes = append(clauseTimes, res.ClauseTimes...)
		rt.Stats.FS2RejectsLevel += res.RejectsLevel
		rt.Stats.FS2RejectsXB += res.RejectsXB
		if res.Overflowed {
			rt.Stats.Overflowed = true
		}
		if _, err := u.bus.SelectFS2(fs2.ModeReadResult); err != nil {
			return 0, nil, err
		}
		batch, err := u.board.ReadResult()
		if err != nil {
			return 0, nil, err
		}
		addrs = append(addrs, batch...)
	}
	rt.Stats.FS2Match += matchTime
	matched, err := rt.pred.File.ByAddrs(addrs)
	if err != nil {
		return 0, nil, err
	}
	rt.Candidates = append(rt.Candidates, matched...)
	return matchTime, clauseTimes, nil
}

// ptuConfigFor maps an FS2 microprogram to the equivalent software
// reference configuration.
func ptuConfigFor(mp fs2.Microprogram) ptu.Config {
	level := ptu.Level1
	if mp.CompareContent {
		level = ptu.Level2
	}
	if mp.DescendElements {
		level = ptu.Level3
	}
	return ptu.Config{Level: level, CrossBinding: mp.CrossBinding}
}
