package core

import (
	"sync"
	"time"

	"clare/internal/telemetry"
)

// Stage names, shared by the stage histograms and the trace span
// taxonomy. A retrieval's span tree is:
//
//	retrieve                       (root: predicate, mode, board slot)
//	├─ encode                      (query-cache probe + SCW/PIF encode)
//	├─ board_lease                 (wall time waiting for a free unit)
//	├─ chunk[i]                    (fs1+fs2 mode: one pipeline chunk)
//	│  ├─ fs1_scan                 (index scan through FS1, disk-bound)
//	│  ├─ disk_fetch               (surviving clause records off disk)
//	│  └─ fs2_match                (partial test unification on the board)
//	└─ host_match                  (software mode only)
//
// Flat modes (software, fs1, fs2) attach the stage spans directly under
// the root. Sim durations come from the component models; wall durations
// from the host clock.
const (
	stageEncode    = "encode"
	stageLease     = "board_lease"
	stageFS1Scan   = "fs1_scan"
	stageDiskFetch = "disk_fetch"
	stageFS2Match  = "fs2_match"
	stageHostMatch = "host_match"
)

// coreMetrics pre-resolves every handle the retrieval hot path updates,
// so instrumentation costs one atomic op per touch (and literally nothing
// when no registry is configured: nil handles no-op).
type coreMetrics struct {
	retrievals    map[SearchMode]*telemetry.Counter
	errors        *telemetry.Counter
	retrievalSim  map[SearchMode]*telemetry.Histogram
	retrievalWall map[SearchMode]*telemetry.Histogram
	stageSim      map[string]*telemetry.Histogram
	stageWall     map[string]*telemetry.Histogram

	clausesIn *telemetry.Counter
	afterFS1  *telemetry.Counter
	afterFS2  *telemetry.Counter
	chunks    *telemetry.Counter
	overflows *telemetry.Counter

	leaseWait  *telemetry.Histogram
	boardsBusy *telemetry.Gauge

	retriesC *telemetry.Counter
	degraded map[string]*telemetry.Counter
	faultsC  *telemetry.Counter

	flightRecords *telemetry.Counter

	// Ghost-ratio gauges. stage="fs1" is maintained here from cumulative
	// filter counts: the fraction of FS1 survivors that FS2 then rejected
	// (FS1's false drops, §2.1). stage="fs2" is set by Explain, which is
	// the only place host-unification survivor counts exist.
	ghostFS1 *telemetry.Gauge
	ghostFS2 *telemetry.Gauge
	// Cumulative candidate flows behind ghostFS1, counted only for
	// retrievals where both FS1 and FS2 actually ran.
	ghostMu        sync.Mutex
	ghostIn        int64
	ghostSurvivors int64
}

var allModes = []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2}

func newCoreMetrics(reg *telemetry.Registry) *coreMetrics {
	m := &coreMetrics{
		retrievals:    make(map[SearchMode]*telemetry.Counter, len(allModes)),
		retrievalSim:  make(map[SearchMode]*telemetry.Histogram, len(allModes)),
		retrievalWall: make(map[SearchMode]*telemetry.Histogram, len(allModes)),
		stageSim:      make(map[string]*telemetry.Histogram, 8),
		stageWall:     make(map[string]*telemetry.Histogram, 8),
	}
	for _, mode := range allModes {
		ml := telemetry.Labels{"mode": mode.String()}
		m.retrievals[mode] = reg.Counter("clare_retrievals_total", "retrievals completed per search mode", ml)
		m.retrievalSim[mode] = reg.Histogram("clare_retrieval_seconds", "whole-retrieval duration per mode and clock", nil,
			telemetry.Labels{"mode": mode.String(), "clock": "sim"})
		m.retrievalWall[mode] = reg.Histogram("clare_retrieval_seconds", "whole-retrieval duration per mode and clock", nil,
			telemetry.Labels{"mode": mode.String(), "clock": "wall"})
	}
	for _, stage := range []string{stageEncode, stageFS1Scan, stageDiskFetch, stageFS2Match, stageHostMatch} {
		m.stageSim[stage] = reg.Histogram("clare_stage_seconds", "per-stage duration per clock", nil,
			telemetry.Labels{"stage": stage, "clock": "sim"})
		m.stageWall[stage] = reg.Histogram("clare_stage_seconds", "per-stage duration per clock", nil,
			telemetry.Labels{"stage": stage, "clock": "wall"})
	}
	m.errors = reg.Counter("clare_retrieval_errors_total", "retrievals that failed", nil)
	m.clausesIn = reg.Counter("clare_stage_candidates_total", "candidate counts entering/leaving each filter stage",
		telemetry.Labels{"stage": "input"})
	m.afterFS1 = reg.Counter("clare_stage_candidates_total", "candidate counts entering/leaving each filter stage",
		telemetry.Labels{"stage": "after_fs1"})
	m.afterFS2 = reg.Counter("clare_stage_candidates_total", "candidate counts entering/leaving each filter stage",
		telemetry.Labels{"stage": "after_fs2"})
	m.chunks = reg.Counter("clare_pipeline_chunks_total", "FS1→FS2 pipeline chunks streamed", nil)
	m.overflows = reg.Counter("clare_result_overflows_total", "retrievals that overflowed the Result Memory", nil)
	m.leaseWait = reg.Histogram("clare_board_lease_wait_seconds", "wall time a retrieval waited for a free board unit", nil, nil)
	m.boardsBusy = reg.Gauge("clare_boards_busy", "board units currently leased", nil)
	m.retriesC = reg.Counter("clare_retrieval_retries_total", "retrieval attempts re-run after an injected fault", nil)
	m.degraded = map[string]*telemetry.Counter{
		"fs2": reg.Counter("clare_degraded_retrievals_total", "retrievals that fell down the degradation ladder, by rung",
			telemetry.Labels{"to": "fs2"}),
		"host": reg.Counter("clare_degraded_retrievals_total", "retrievals that fell down the degradation ladder, by rung",
			telemetry.Labels{"to": "host"}),
	}
	m.faultsC = reg.Counter("clare_retrieval_faults_total", "injected faults absorbed by retrievals", nil)
	m.flightRecords = reg.Counter("clare_flight_records_total", "retrievals captured into the flight recorder ring", nil)
	m.ghostFS1 = reg.Gauge("clare_stage_ghost_ratio", "fraction of a stage's survivors rejected by the next filter rung",
		telemetry.Labels{"stage": "fs1"})
	m.ghostFS2 = reg.Gauge("clare_stage_ghost_ratio", "fraction of a stage's survivors rejected by the next filter rung",
		telemetry.Labels{"stage": "fs2"})
	return m
}

// stageWallTimes accumulates per-stage host time across a retrieval (the
// stages interleave per chunk in fs1+fs2 mode, so each stage's wall time
// is summed over its slices and observed once at the end).
type stageWallTimes struct {
	encode, fs1, fetch, fs2, host time.Duration
}

// observe publishes one finished retrieval into the registry.
func (m *coreMetrics) observe(rt *Retrieval, wall time.Duration) {
	m.retrievals[rt.Mode].Inc()
	m.retrievalSim[rt.Mode].ObserveDuration(rt.Stats.Total)
	m.retrievalWall[rt.Mode].ObserveDuration(wall)
	st := &rt.Stats
	if st.FS1Scan > 0 {
		m.stageSim[stageFS1Scan].ObserveDuration(st.FS1Scan)
	}
	if st.DiskFetch > 0 {
		m.stageSim[stageDiskFetch].ObserveDuration(st.DiskFetch)
	}
	if st.FS2Match > 0 {
		m.stageSim[stageFS2Match].ObserveDuration(st.FS2Match)
	}
	if st.HostMatch > 0 {
		m.stageSim[stageHostMatch].ObserveDuration(st.HostMatch)
	}
	w := &rt.wall
	if w.encode > 0 {
		m.stageWall[stageEncode].ObserveDuration(w.encode)
	}
	if w.fs1 > 0 {
		m.stageWall[stageFS1Scan].ObserveDuration(w.fs1)
	}
	if w.fetch > 0 {
		m.stageWall[stageDiskFetch].ObserveDuration(w.fetch)
	}
	if w.fs2 > 0 {
		m.stageWall[stageFS2Match].ObserveDuration(w.fs2)
	}
	if w.host > 0 {
		m.stageWall[stageHostMatch].ObserveDuration(w.host)
	}
	m.clausesIn.Add(int64(st.TotalClauses))
	m.afterFS1.Add(int64(st.AfterFS1))
	m.afterFS2.Add(int64(st.AfterFS2))
	if m.ghostFS1 != nil && rt.Mode == ModeFS1FS2 && st.Degraded == "" && st.AfterFS1 > 0 {
		m.ghostMu.Lock()
		m.ghostIn += int64(st.AfterFS1)
		m.ghostSurvivors += int64(st.AfterFS2)
		m.ghostFS1.Set(1 - float64(m.ghostSurvivors)/float64(m.ghostIn))
		m.ghostMu.Unlock()
	}
	m.chunks.Add(int64(st.Chunks))
	if st.Overflowed {
		m.overflows.Inc()
	}
	m.faultsC.Add(int64(st.Faults))
}
