package core

import (
	"fmt"
	"strconv"
	"time"

	"clare/internal/plan"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/unify"
)

// This file implements the per-retrieval EXPLAIN profile: the paper's
// stage-by-stage cost argument (§2.1 false drops, §2.2 partial-test
// precision) turned into an inspectable artifact. An Explain call runs a
// real retrieval, then pushes the candidates through host full
// unification to count the true unifiers — the reference the filter
// rungs are judged against:
//
//	rung 0  clause file        TotalClauses
//	rung 1  FS1 (SCW scan)     AfterFS1   (ghosts = survivors that
//	                                        don't truly unify)
//	rung 2  FS2 (partial test) AfterFS2   (split into level-3 and
//	                                        cross-binding rejects)
//	rung 3  host unification   Unified
//
// Counts are monotonically non-increasing down the rungs; each ghost
// ratio is the fraction of a rung's survivors the reference rejects.

// Profile is one retrieval's filter-cost profile.
type Profile struct {
	Mode      SearchMode
	Predicate Indicator
	Stats     StageStats
	// Unified is the number of candidates whose heads truly unify with
	// the goal (host full unification with occurs-check off, the Prolog
	// default).
	Unified int
	// GhostFS1 is the fraction of FS1 survivors that do not truly unify;
	// GhostFS2 the same for FS2 survivors. Zero when the rung did not run
	// or had no survivors.
	GhostFS1 float64
	GhostFS2 float64
	// HostUnifyWall is the host time the reference unification pass cost.
	HostUnifyWall time.Duration
	// Wall is the whole retrieval's host time (the retrieval itself, not
	// the reference pass).
	Wall time.Duration
	// Trace is the retrieval's span tree (nil without a Tracer).
	Trace *telemetry.Trace
	// Plan is the adaptive planner's decision when the retrieval's mode
	// was planned rather than requested (nil for explicit-mode calls and
	// heuristic servers). It renders as the plan.* entry family.
	Plan *plan.Decision
}

// Explain runs one retrieval in the given mode and derives its profile.
func (r *Retriever) Explain(goal term.Term, mode SearchMode) (*Profile, error) {
	return r.ExplainTraced(goal, mode, nil)
}

// ExplainTraced is Explain joining a remote caller's trace, the way
// RetrieveTraced joins one.
func (r *Retriever) ExplainTraced(goal term.Term, mode SearchMode, tc *telemetry.TraceContext) (*Profile, error) {
	wallStart := time.Now()
	rt, err := r.RetrieveTraced(goal, mode, tc)
	if err != nil {
		return nil, err
	}
	p := &Profile{Mode: mode, Stats: rt.Stats, Trace: rt.trace}
	if functor, args, ok := principal(goal); ok {
		p.Predicate = Indicator{Functor: functor, Arity: len(args)}
	}

	// The reference pass: full unification of the goal against every
	// candidate head, on the host. This is ground truth, not a filter —
	// it is what the CRS's caller would do with the candidates anyway.
	unifyStart := time.Now()
	heads, _, err := rt.DecodeCandidates()
	if err != nil {
		return nil, err
	}
	for _, h := range heads {
		if unify.Unifiable(goal, h) {
			p.Unified++
		}
	}
	p.HostUnifyWall = time.Since(unifyStart)
	p.Wall = time.Since(wallStart)

	usedFS1 := mode == ModeFS1 || mode == ModeFS1FS2
	usedFS2 := mode == ModeFS2 || mode == ModeFS1FS2
	if rt.Stats.Degraded == "host" {
		usedFS1, usedFS2 = false, false
	} else if rt.Stats.Degraded == "fs2" {
		usedFS1 = false
	}
	if usedFS1 && rt.Stats.AfterFS1 > 0 {
		p.GhostFS1 = 1 - float64(p.Unified)/float64(rt.Stats.AfterFS1)
	}
	if usedFS2 && rt.Stats.AfterFS2 > 0 {
		p.GhostFS2 = 1 - float64(p.Unified)/float64(rt.Stats.AfterFS2)
		r.met.ghostFS2.Set(p.GhostFS2)
	}
	return p, nil
}

// ExplainEntry is one key/value of the rendered profile. Values are
// strings so counts, ratios, durations, and flags share one wire form
// (the EXPLAIN reply's "E <key> <value>" lines).
type ExplainEntry struct {
	Key   string
	Value string
}

// Entries renders the profile as an ordered key/value list — the order
// is the filter pipeline's, so a renderer can print it as-is. This is
// the EXPLAIN wire schema; adding keys is backward compatible, renaming
// or reordering existing ones is not.
func (p *Profile) Entries() []ExplainEntry {
	st := &p.Stats
	dur := func(d time.Duration) string { return d.String() }
	ratio := func(f float64) string { return strconv.FormatFloat(f, 'f', 4, 64) }
	out := []ExplainEntry{
		{"mode", p.Mode.String()},
		{"predicate", p.Predicate.String()},
		{"candidates.total", fmt.Sprint(st.TotalClauses)},
		{"candidates.after_fs1", fmt.Sprint(st.AfterFS1)},
		{"candidates.after_fs2", fmt.Sprint(st.AfterFS2)},
		{"candidates.unified", fmt.Sprint(p.Unified)},
		{"fs1.masked_hits", fmt.Sprint(st.MaskedHits)},
		{"fs1.ghost_ratio", ratio(p.GhostFS1)},
		{"fs2.rejects_level", fmt.Sprint(st.FS2RejectsLevel)},
		{"fs2.rejects_xb", fmt.Sprint(st.FS2RejectsXB)},
		{"fs2.ghost_ratio", ratio(p.GhostFS2)},
		{"sim.fs1_scan", dur(st.FS1Scan)},
		{"sim.disk_fetch", dur(st.DiskFetch)},
		{"sim.fs2_match", dur(st.FS2Match)},
		{"sim.host_match", dur(st.HostMatch)},
		{"sim.total", dur(st.Total)},
		{"wall.retrieval", dur(p.Wall - p.HostUnifyWall)},
		{"wall.host_unify", dur(p.HostUnifyWall)},
		{"chunks", fmt.Sprint(st.Chunks)},
		{"cache_hit", strconv.FormatBool(st.QueryCacheHit)},
	}
	if st.Overflowed {
		out = append(out, ExplainEntry{"overflowed", "true"})
	}
	if st.Degraded != "" {
		out = append(out, ExplainEntry{"degraded", st.Degraded})
	}
	if st.Retries > 0 {
		out = append(out, ExplainEntry{"retries", fmt.Sprint(st.Retries)})
	}
	if st.Faults > 0 {
		out = append(out, ExplainEntry{"faults", fmt.Sprint(st.Faults)})
	}
	if d := p.Plan; d != nil {
		// The plan.* family is appended, never interleaved, so old
		// clients (and the fuzz whitelist) keep parsing planner replies.
		out = append(out,
			ExplainEntry{"plan.mode", d.Mode.String()},
			ExplainEntry{"plan.shape", shapeText(d.Shape)},
			ExplainEntry{"plan.reason", d.Reason},
			ExplainEntry{"plan.learned", strconv.FormatBool(d.Learned)},
		)
		for pm := plan.Mode(0); pm < plan.NumModes; pm++ {
			out = append(out, ExplainEntry{
				"plan.est." + pm.String(),
				time.Duration(d.Est[pm]).String(),
			})
		}
	}
	return out
}

// shapeText renders a shape for the wire; "-" stands for the empty
// (0-arity) shape since EXPLAIN values cannot be empty strings.
func shapeText(s plan.Shape) string {
	if s == "" {
		return "-"
	}
	return string(s)
}
