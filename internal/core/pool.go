package core

import (
	"strconv"
	"sync"
	"time"

	"clare/internal/disk"
	"clare/internal/fs2"
	"clare/internal/telemetry"
	"clare/internal/vme"
)

// boardUnit is one slot of the simulated chassis: an FS2 board behind its
// own VME bus, paired with the disk spindle that feeds it. The paper built
// exactly one of these (§2.2); the pool generalises it to a multi-board
// configuration so concurrent retrievals each get private hardware.
type boardUnit struct {
	slot  int
	board *fs2.Engine
	bus   *vme.Bus
	drive *disk.Drive

	// Health bookkeeping, guarded by the pool mutex.
	faults  int // consecutive faulted leases
	tripped bool
	leased  bool
	retryAt time.Time // when a tripped unit may be probed again
}

// boardPool manages N boardUnits with blocking lease/release semantics.
// The free list is a stack so a serial caller always reuses slot 0 —
// single-board behaviour (and its accumulated statistics) is then
// identical to the paper's one-board setup.
//
// The pool also tracks board health: a unit whose leases keep ending in
// injected faults is tripped out of rotation (the sick list) and only
// re-admitted, on probation, after a cool-off period. When every unit is
// sick and cooling, lease returns nil and the caller degrades to
// host-only operation instead of deadlocking.
type boardPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    []*boardUnit
	sick    []*boardUnit
	all     []*boardUnit
	leased  int
	chassis *vme.Chassis

	tripAfter   int
	probePeriod time.Duration
	trips       int64 // total trip events
	readmits    int64 // total probationary re-admissions

	// lastFS2/lastDisk are per-slot statistics copies captured under mu
	// each time a unit is released. Aggregate readers (FS2Stats/DiskStats)
	// sum these instead of touching a board a concurrent retrieval may be
	// driving, so snapshots are race-free and never block behind the
	// retrieval queue.
	lastFS2  []fs2.Stats
	lastDisk []disk.Stats

	trippedG  *telemetry.Gauge
	tripsC    *telemetry.Counter
	readmitsC *telemetry.Counter
}

func newBoardPool(cfg Config, n int) (*boardPool, error) {
	if n < 1 {
		n = 1
	}
	p := &boardPool{
		tripAfter:   cfg.TripThreshold,
		probePeriod: cfg.ProbePeriod,
	}
	if p.tripAfter <= 0 {
		p.tripAfter = defaultTripThreshold
	}
	if p.probePeriod <= 0 {
		p.probePeriod = defaultProbePeriod
	}
	p.cond = sync.NewCond(&p.mu)
	buses := make([]*vme.Bus, 0, n)
	for i := 0; i < n; i++ {
		board := fs2.New()
		bus := vme.NewBus(board)
		// Board bring-up precedes fault arming: microprogram load is a
		// maintenance action, not part of the serving path.
		if _, err := bus.SelectFS2(fs2.ModeMicroprogramming); err != nil {
			return nil, err
		}
		if err := board.LoadMicroprogram(cfg.Microprogram); err != nil {
			return nil, err
		}
		drive := disk.NewDrive(cfg.Disk)
		key := strconv.Itoa(i)
		board.SetFaults(cfg.Faults, key)
		bus.SetFaults(cfg.Faults, key)
		drive.SetFaults(cfg.Faults, key)
		if cfg.Metrics != nil {
			slot := telemetry.Labels{"slot": key}
			board.Instrument(cfg.Metrics, slot)
			bus.Instrument(cfg.Metrics, slot)
			drive.Instrument(cfg.Metrics, slot)
		}
		u := &boardUnit{slot: i, board: board, bus: bus, drive: drive}
		p.all = append(p.all, u)
		buses = append(buses, bus)
	}
	p.chassis = vme.NewChassis(buses...)
	p.lastFS2 = make([]fs2.Stats, n)
	p.lastDisk = make([]disk.Stats, n)
	// Stack the free list with slot 0 on top.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, p.all[i])
	}
	p.trippedG = cfg.Metrics.Gauge("clare_boards_tripped", "board units currently tripped out of rotation", nil)
	p.tripsC = cfg.Metrics.Counter("clare_board_trips_total", "board units tripped after consecutive faults", nil)
	p.readmitsC = cfg.Metrics.Counter("clare_board_readmits_total", "tripped board units re-admitted on probation", nil)
	return p, nil
}

// lease blocks until a unit is available and returns it; the caller owns
// the unit exclusively until release. A tripped unit whose cool-off has
// elapsed is handed out on probation. When every unit is sick and still
// cooling — and none is leased, so no release can free one — lease
// returns nil and the caller must degrade to host-only operation.
func (p *boardPool) lease() *boardUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if n := len(p.free); n > 0 {
			u := p.free[n-1]
			p.free = p.free[:n-1]
			u.leased = true
			p.leased++
			return u
		}
		if u := p.takeSickLocked(); u != nil {
			return u
		}
		if p.leased == 0 {
			return nil
		}
		p.cond.Wait()
	}
}

// takeSickLocked re-admits the first tripped unit whose cool-off has
// elapsed. The re-admission is probationary: the fault counter restarts
// one below the trip threshold, so a single further fault re-trips the
// unit while a clean lease clears it.
func (p *boardPool) takeSickLocked() *boardUnit {
	now := time.Now()
	for i, u := range p.sick {
		if now.Before(u.retryAt) {
			continue
		}
		p.sick = append(p.sick[:i], p.sick[i+1:]...)
		u.tripped = false
		u.faults = p.tripAfter - 1
		u.leased = true
		p.leased++
		p.readmits++
		p.readmitsC.Inc()
		p.trippedG.Add(-1)
		return u
	}
	return nil
}

// snapshotLocked captures the releasing unit's statistics for race-free
// aggregate readers. The releaser still owns the unit, so the component
// reads race nothing.
func (p *boardPool) snapshotLocked(u *boardUnit) {
	p.lastFS2[u.slot] = u.board.Stats
	p.lastDisk[u.slot] = u.drive.Stats
}

// release resets the board's protocol state (the recycled board must not
// leak the previous retrieval's query or satisfiers), captures the unit's
// statistics for snapshot readers, clears its consecutive-fault count,
// and returns the unit to the pool.
func (p *boardPool) release(u *boardUnit) {
	u.board.Reset()
	p.mu.Lock()
	p.snapshotLocked(u)
	u.leased = false
	u.faults = 0
	p.leased--
	p.free = append(p.free, u)
	p.mu.Unlock()
	p.cond.Signal()
}

// releaseFaulty returns a unit whose lease ended in an injected hardware
// fault. Consecutive faults trip the unit out of rotation until the
// cool-off elapses; a not-yet-tripped unit goes to the bottom of the free
// stack so an immediate retry lands on different hardware whenever any
// exists.
func (p *boardPool) releaseFaulty(u *boardUnit) {
	u.board.Reset()
	p.mu.Lock()
	p.snapshotLocked(u)
	u.leased = false
	u.faults++
	p.leased--
	if u.faults >= p.tripAfter {
		u.tripped = true
		u.retryAt = time.Now().Add(p.probePeriod)
		p.sick = append(p.sick, u)
		p.trips++
		p.tripsC.Inc()
		p.trippedG.Add(1)
	} else {
		p.free = append([]*boardUnit{u}, p.free...)
	}
	p.mu.Unlock()
	// A trip can leave nothing leased, which flips waiting leasers into
	// the host-only return — wake them all to re-evaluate.
	p.cond.Broadcast()
}

// fs2Snapshot sums the per-slot FS2 statistics captured at release time.
func (p *boardPool) fs2Snapshot() fs2.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out fs2.Stats
	for i := range p.lastFS2 {
		out.Add(p.lastFS2[i])
	}
	return out
}

// diskSnapshot sums the per-slot disk statistics captured at release time.
func (p *boardPool) diskSnapshot() disk.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out disk.Stats
	for i := range p.lastDisk {
		out.Add(p.lastDisk[i])
	}
	return out
}

// BoardHealth is one chassis slot's health state.
type BoardHealth struct {
	Slot    int
	Tripped bool
	Leased  bool
	// Faults is the unit's consecutive faulted leases (cleared by a
	// clean lease; at TripThreshold the unit trips).
	Faults int
}

// Health is a point-in-time snapshot of the board pool.
type Health struct {
	Boards   int
	Free     int
	Leased   int
	Tripped  int
	Trips    int64 // total trip events
	Readmits int64 // total probationary re-admissions
	Units    []BoardHealth
}

// health snapshots the pool under its lock.
func (p *boardPool) health() Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := Health{
		Boards:   len(p.all),
		Free:     len(p.free),
		Leased:   p.leased,
		Tripped:  len(p.sick),
		Trips:    p.trips,
		Readmits: p.readmits,
	}
	for _, u := range p.all {
		h.Units = append(h.Units, BoardHealth{Slot: u.slot, Tripped: u.tripped, Leased: u.leased, Faults: u.faults})
	}
	return h
}

// Health reports the chassis's board-health snapshot: counts of free,
// leased, and tripped units plus per-slot state — the data the CRS
// daemon exposes through STATS and /metrics.
func (r *Retriever) Health() Health { return r.pool.health() }
