package core

import (
	"sync"

	"clare/internal/disk"
	"clare/internal/fs2"
	"clare/internal/vme"
)

// boardUnit is one slot of the simulated chassis: an FS2 board behind its
// own VME bus, paired with the disk spindle that feeds it. The paper built
// exactly one of these (§2.2); the pool generalises it to a multi-board
// configuration so concurrent retrievals each get private hardware.
type boardUnit struct {
	slot  int
	board *fs2.Engine
	bus   *vme.Bus
	drive *disk.Drive
}

// boardPool manages N boardUnits with blocking lease/release semantics.
// The free list is a stack so a serial caller always reuses slot 0 —
// single-board behaviour (and its accumulated statistics) is then
// identical to the paper's one-board setup.
type boardPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    []*boardUnit
	all     []*boardUnit
	chassis *vme.Chassis
}

func newBoardPool(cfg Config, n int) (*boardPool, error) {
	if n < 1 {
		n = 1
	}
	p := &boardPool{}
	p.cond = sync.NewCond(&p.mu)
	buses := make([]*vme.Bus, 0, n)
	for i := 0; i < n; i++ {
		board := fs2.New()
		bus := vme.NewBus(board)
		bus.SelectFS2(fs2.ModeMicroprogramming)
		if err := board.LoadMicroprogram(cfg.Microprogram); err != nil {
			return nil, err
		}
		u := &boardUnit{slot: i, board: board, bus: bus, drive: disk.NewDrive(cfg.Disk)}
		p.all = append(p.all, u)
		buses = append(buses, bus)
	}
	p.chassis = vme.NewChassis(buses...)
	// Stack the free list with slot 0 on top.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, p.all[i])
	}
	return p, nil
}

// lease blocks until a unit is free and returns it. The caller owns the
// unit exclusively until release.
func (p *boardPool) lease() *boardUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) == 0 {
		p.cond.Wait()
	}
	u := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return u
}

// release resets the board's protocol state (the recycled board must not
// leak the previous retrieval's query or satisfiers) and returns the unit
// to the pool.
func (p *boardPool) release(u *boardUnit) {
	u.board.Reset()
	p.mu.Lock()
	p.free = append(p.free, u)
	p.mu.Unlock()
	p.cond.Signal()
}

// quiesce acquires every unit (waiting out in-flight retrievals), runs fn
// over the full chassis, then releases them. It gives statistics readers a
// consistent snapshot without per-operation locking on the hot path.
func (p *boardPool) quiesce(fn func(units []*boardUnit)) {
	held := make([]*boardUnit, 0, len(p.all))
	for range p.all {
		held = append(held, p.lease())
	}
	fn(p.all)
	for _, u := range held {
		p.release(u)
	}
}
