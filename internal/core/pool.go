package core

import (
	"strconv"
	"sync"

	"clare/internal/disk"
	"clare/internal/fs2"
	"clare/internal/telemetry"
	"clare/internal/vme"
)

// boardUnit is one slot of the simulated chassis: an FS2 board behind its
// own VME bus, paired with the disk spindle that feeds it. The paper built
// exactly one of these (§2.2); the pool generalises it to a multi-board
// configuration so concurrent retrievals each get private hardware.
type boardUnit struct {
	slot  int
	board *fs2.Engine
	bus   *vme.Bus
	drive *disk.Drive
}

// boardPool manages N boardUnits with blocking lease/release semantics.
// The free list is a stack so a serial caller always reuses slot 0 —
// single-board behaviour (and its accumulated statistics) is then
// identical to the paper's one-board setup.
type boardPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	free    []*boardUnit
	all     []*boardUnit
	chassis *vme.Chassis

	// lastFS2/lastDisk are per-slot statistics copies captured under mu
	// each time a unit is released. Aggregate readers (FS2Stats/DiskStats)
	// sum these instead of touching a board a concurrent retrieval may be
	// driving, so snapshots are race-free and never block behind the
	// retrieval queue.
	lastFS2  []fs2.Stats
	lastDisk []disk.Stats
}

func newBoardPool(cfg Config, n int) (*boardPool, error) {
	if n < 1 {
		n = 1
	}
	p := &boardPool{}
	p.cond = sync.NewCond(&p.mu)
	buses := make([]*vme.Bus, 0, n)
	for i := 0; i < n; i++ {
		board := fs2.New()
		bus := vme.NewBus(board)
		bus.SelectFS2(fs2.ModeMicroprogramming)
		if err := board.LoadMicroprogram(cfg.Microprogram); err != nil {
			return nil, err
		}
		drive := disk.NewDrive(cfg.Disk)
		if cfg.Metrics != nil {
			slot := telemetry.Labels{"slot": strconv.Itoa(i)}
			board.Instrument(cfg.Metrics, slot)
			bus.Instrument(cfg.Metrics, slot)
			drive.Instrument(cfg.Metrics, slot)
		}
		u := &boardUnit{slot: i, board: board, bus: bus, drive: drive}
		p.all = append(p.all, u)
		buses = append(buses, bus)
	}
	p.chassis = vme.NewChassis(buses...)
	p.lastFS2 = make([]fs2.Stats, n)
	p.lastDisk = make([]disk.Stats, n)
	// Stack the free list with slot 0 on top.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, p.all[i])
	}
	return p, nil
}

// lease blocks until a unit is free and returns it. The caller owns the
// unit exclusively until release.
func (p *boardPool) lease() *boardUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) == 0 {
		p.cond.Wait()
	}
	u := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return u
}

// release resets the board's protocol state (the recycled board must not
// leak the previous retrieval's query or satisfiers), captures the unit's
// statistics for race-free snapshot readers, and returns the unit to the
// pool.
func (p *boardPool) release(u *boardUnit) {
	u.board.Reset()
	// The releaser still owns the unit here, so these reads race nothing.
	fsSnap := u.board.Stats
	dSnap := u.drive.Stats
	p.mu.Lock()
	p.lastFS2[u.slot] = fsSnap
	p.lastDisk[u.slot] = dSnap
	p.free = append(p.free, u)
	p.mu.Unlock()
	p.cond.Signal()
}

// fs2Snapshot sums the per-slot FS2 statistics captured at release time.
func (p *boardPool) fs2Snapshot() fs2.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out fs2.Stats
	for i := range p.lastFS2 {
		out.Add(p.lastFS2[i])
	}
	return out
}

// diskSnapshot sums the per-slot disk statistics captured at release time.
func (p *boardPool) diskSnapshot() disk.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out disk.Stats
	for i := range p.lastDisk {
		out.Add(p.lastDisk[i])
	}
	return out
}
