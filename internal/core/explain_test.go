package core

import (
	"strconv"
	"testing"

	"clare/internal/parse"
)

// TestExplainSharedVariableGhosts profiles the §2.1 pathology
// married_couple(S,S): FS1 cannot see the shared variable, so its
// survivor set is ghost-heavy, and the profile must say so with
// candidate counts that only shrink down the rungs.
func TestExplainSharedVariableGhosts(t *testing.T) {
	const n, every = 40, 4 // 10 same-name couples
	r := familyRetriever(t, n, every)
	p, err := r.Explain(parse.MustTerm("married_couple(S, S)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats
	if st.TotalClauses != n {
		t.Errorf("total = %d, want %d", st.TotalClauses, n)
	}
	if !(st.TotalClauses >= st.AfterFS1 && st.AfterFS1 >= st.AfterFS2 && st.AfterFS2 >= p.Unified) {
		t.Errorf("candidate counts not monotone: total=%d fs1=%d fs2=%d unified=%d",
			st.TotalClauses, st.AfterFS1, st.AfterFS2, p.Unified)
	}
	if p.Unified != n/every {
		t.Errorf("unified = %d, want the %d same-name couples", p.Unified, n/every)
	}
	if p.GhostFS1 <= 0 {
		t.Errorf("FS1 ghost ratio = %v, want > 0 (shared variable is invisible to the SCW scan)", p.GhostFS1)
	}
	if p.GhostFS2 < 0 || p.GhostFS2 > p.GhostFS1 {
		t.Errorf("FS2 ghost ratio %v outside [0, FS1 ratio %v]", p.GhostFS2, p.GhostFS1)
	}
	if st.FS2RejectsXB == 0 {
		t.Error("no cross-binding rejects counted; S=S mismatches are exactly that")
	}
}

// TestExplainEntriesSchema pins the wire schema: ordered, space-free
// keys and values, counts parseable and consistent with the profile.
func TestExplainEntriesSchema(t *testing.T) {
	r := familyRetriever(t, 30, 3)
	p, err := r.Explain(parse.MustTerm("married_couple(X, Y)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	entries := p.Entries()
	want := []string{"mode", "predicate", "candidates.total", "candidates.after_fs1",
		"candidates.after_fs2", "candidates.unified", "fs1.masked_hits", "fs1.ghost_ratio",
		"fs2.rejects_level", "fs2.rejects_xb", "fs2.ghost_ratio"}
	for i, k := range want {
		if i >= len(entries) || entries[i].Key != k {
			t.Fatalf("entry %d = %v, want key %s (order is wire contract)", i, entries[i], k)
		}
	}
	get := func(key string) string {
		for _, e := range entries {
			if e.Key == key {
				return e.Value
			}
		}
		t.Fatalf("missing entry %s", key)
		return ""
	}
	for _, e := range entries {
		if e.Key == "" || e.Value == "" {
			t.Errorf("empty entry %+v", e)
		}
		for _, s := range []string{e.Key, e.Value} {
			for _, c := range s {
				if c == ' ' || c == '\n' {
					t.Errorf("entry %q %q contains whitespace (breaks the E line)", e.Key, e.Value)
				}
			}
		}
	}
	if u, err := strconv.Atoi(get("candidates.unified")); err != nil || u != p.Unified {
		t.Errorf("candidates.unified = %q, want %d", get("candidates.unified"), p.Unified)
	}
	if get("mode") != "fs1+fs2" || get("predicate") != "married_couple/2" {
		t.Errorf("mode/predicate = %q/%q", get("mode"), get("predicate"))
	}
}

// TestExplainSoftwareMode: a host-only retrieval has no filter rungs, so
// both ghost ratios stay zero while the reference count still lands.
func TestExplainSoftwareMode(t *testing.T) {
	r := familyRetriever(t, 20, 2)
	p, err := r.Explain(parse.MustTerm("married_couple(husband4, X)"), ModeSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if p.GhostFS1 != 0 || p.GhostFS2 != 0 {
		t.Errorf("ghost ratios = %v/%v, want 0/0 for software mode", p.GhostFS1, p.GhostFS2)
	}
	if p.Unified != 1 {
		t.Errorf("unified = %d, want 1", p.Unified)
	}
}
