package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"clare/internal/parse"
	"clare/internal/telemetry"
)

// telemetryRetriever builds a pooled retriever wired to a fresh registry
// and tracer.
func telemetryRetriever(t *testing.T, boards int) (*Retriever, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Boards = boards
	cfg.StreamChunkEntries = 16
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(128)
	r := buildRetriever(t, cfg, 120, 6)
	return r, cfg.Metrics, cfg.Tracer
}

// TestRetrievalSpanTree: one fs1+fs2 retrieval must record a complete
// span tree — root, encode, board lease, and per chunk an fs1_scan,
// disk_fetch and fs2_match — with parent links intact and simulated time
// that reconciles with the retrieval's StageStats.
func TestRetrievalSpanTree(t *testing.T) {
	r, _, tracer := telemetryRetriever(t, 2)
	rt, err := r.Retrieve(parse.MustTerm("married_couple(X, Y)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	tr := rt.Trace()
	if tr == nil {
		t.Fatal("retrieval carried no trace")
	}
	root := tr.Root()
	if root.Name != "retrieve" || root.Attrs["predicate"] != "married_couple/2" || root.Attrs["mode"] != "fs1+fs2" {
		t.Errorf("root span = %+v", root)
	}
	if root.Sim != rt.Stats.Total {
		t.Errorf("root sim %v != Stats.Total %v", root.Sim, rt.Stats.Total)
	}
	byName := make(map[string][]*telemetry.Span)
	for _, sp := range tr.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{"encode", "board_lease"} {
		if len(byName[name]) != 1 {
			t.Errorf("%s spans = %d, want 1", name, len(byName[name]))
		}
	}
	chunks := byName["chunk"]
	if len(chunks) != rt.Stats.Chunks || rt.Stats.Chunks < 2 {
		t.Fatalf("chunk spans = %d, Stats.Chunks = %d (want equal, ≥2)", len(chunks), rt.Stats.Chunks)
	}
	for _, name := range []string{"fs1_scan", "disk_fetch", "fs2_match"} {
		if len(byName[name]) != len(chunks) {
			t.Errorf("%s spans = %d, want one per chunk (%d)", name, len(byName[name]), len(chunks))
		}
	}
	// Parent links: chunks hang off the root, stages off their chunk.
	chunkIDs := make(map[int]bool)
	for _, c := range chunks {
		if c.Parent != root.ID {
			t.Errorf("chunk span parent = %d, want root %d", c.Parent, root.ID)
		}
		chunkIDs[c.ID] = true
	}
	var scanSim, fetchSim, matchSim time.Duration
	for _, name := range []string{"fs1_scan", "disk_fetch", "fs2_match"} {
		for _, sp := range byName[name] {
			if !chunkIDs[sp.Parent] {
				t.Errorf("%s span parent %d is not a chunk", name, sp.Parent)
			}
		}
	}
	for _, sp := range byName["fs1_scan"] {
		scanSim += sp.Sim
	}
	for _, sp := range byName["disk_fetch"] {
		fetchSim += sp.Sim
	}
	for _, sp := range byName["fs2_match"] {
		matchSim += sp.Sim
	}
	// Chunk scan spans exclude the initial positioning access, which
	// Stats.FS1Scan includes.
	if got, want := scanSim+r.cfg.Disk.AccessTime(), rt.Stats.FS1Scan; got != want {
		t.Errorf("Σ fs1_scan sim + access = %v, want Stats.FS1Scan %v", got, want)
	}
	if fetchSim != rt.Stats.DiskFetch {
		t.Errorf("Σ disk_fetch sim = %v, want %v", fetchSim, rt.Stats.DiskFetch)
	}
	if matchSim != rt.Stats.FS2Match {
		t.Errorf("Σ fs2_match sim = %v, want %v", matchSim, rt.Stats.FS2Match)
	}
	// The tracer ring holds the finished trace.
	if last := tracer.Last(1); len(last) != 1 || last[0] != tr {
		t.Error("finished trace not in the tracer ring")
	}
}

// TestRetrievalMetrics: the registry must expose per-mode counters and
// per-stage histograms in both clocks after a mixed workload.
func TestRetrievalMetrics(t *testing.T) {
	r, reg, _ := telemetryRetriever(t, 2)
	for _, mode := range modes() {
		if _, err := r.Retrieve(parse.MustTerm("married_couple(husband3, X)"), mode); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`clare_retrievals_total{mode="software"} 1`,
		`clare_retrievals_total{mode="fs1+fs2"} 1`,
		`clare_retrieval_seconds_count{clock="sim",mode="fs2"} 1`,
		`clare_retrieval_seconds_count{clock="wall",mode="fs2"} 1`,
		`clare_stage_seconds_count{clock="sim",stage="fs1_scan"}`,
		`clare_stage_seconds_count{clock="wall",stage="fs1_scan"}`,
		`clare_stage_seconds_count{clock="sim",stage="fs2_match"}`,
		`clare_stage_seconds_count{clock="wall",stage="fs2_match"}`,
		`clare_stage_seconds_count{clock="sim",stage="host_match"} 1`,
		`clare_stage_candidates_total{stage="input"}`,
		`clare_disk_bytes_read_total{slot="0"}`,
		`clare_fs2_clauses_examined_total{slot="0"}`,
		`clare_vme_control_writes_total{board="fs2",slot="0"}`,
		`clare_qcache_misses_total`,
		`clare_board_lease_wait_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Registry counters must reconcile with the engine's own statistics.
	var examined float64
	for _, sv := range reg.Gather() {
		if sv.Name == "clare_fs2_clauses_examined_total" {
			examined += sv.Value
		}
	}
	if got := r.FS2Stats().ClausesExamined; float64(got) != examined {
		t.Errorf("registry examined %v != FS2Stats %d", examined, got)
	}
}

// TestUntracedRetrievalUnchanged: with no registry/tracer configured the
// retrieval must behave exactly as before (and carry no trace).
func TestUntracedRetrievalUnchanged(t *testing.T) {
	r := buildRetriever(t, DefaultConfig(), 40, 5)
	rt, err := r.Retrieve(parse.MustTerm("married_couple(X, Y)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Trace() != nil {
		t.Error("untraced retrieval carried a trace")
	}
	if r.Metrics() != nil || r.Tracer() != nil {
		t.Error("accessors should be nil without telemetry")
	}
}

// TestStatsSnapshotDuringRetrievals: FS2Stats/DiskStats/QueryCache called
// concurrently with active retrievals must be race-free (run under -race)
// and deadlock-free, and must converge to the exact serial totals once
// the workload drains.
func TestStatsSnapshotDuringRetrievals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 4
	r := buildRetriever(t, cfg, 80, 5)
	goals := poolGoals()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers hammering the pool while retrievals run —
	// including two concurrent readers, which deadlocked the old
	// quiesce-based implementation.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.FS2Stats()
				_ = r.DiskStats()
				_ = r.QueryCache()
			}
		}()
	}
	var workers sync.WaitGroup
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 25; i++ {
				g := goals[(w+i)%len(goals)]
				if _, err := r.Retrieve(parse.MustTerm(g), ModeFS1FS2); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	// Drained: snapshots must now equal an identical serial run's totals.
	serial := buildRetriever(t, DefaultConfig(), 80, 5)
	for w := 0; w < 8; w++ {
		for i := 0; i < 25; i++ {
			g := goals[(w+i)%len(goals)]
			if _, err := serial.Retrieve(parse.MustTerm(g), ModeFS1FS2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := r.FS2Stats(), serial.FS2Stats(); got != want {
		t.Errorf("pooled FS2Stats %+v != serial %+v", got, want)
	}
	if got, want := r.DiskStats(), serial.DiskStats(); got != want {
		t.Errorf("pooled DiskStats %+v != serial %+v", got, want)
	}
}
