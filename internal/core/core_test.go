package core

import (
	"fmt"
	"testing"

	"clare/internal/engine"
	"clare/internal/parse"
	"clare/internal/term"
)

// familyRetriever builds a retriever with a married_couple predicate: n
// couples, every k-th couple sharing one name (the §2.1 workload).
func familyRetriever(t *testing.T, n, sameEvery int) *Retriever {
	t.Helper()
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clauses := make([]ClauseTerm, n)
	for i := 0; i < n; i++ {
		a := term.Atom(fmt.Sprintf("husband%d", i))
		b := term.Atom(fmt.Sprintf("wife%d", i))
		if sameEvery > 0 && i%sameEvery == 0 {
			b = a
		}
		clauses[i] = ClauseTerm{Head: term.New("married_couple", a, b)}
	}
	if _, err := r.AddClauses("family", clauses); err != nil {
		t.Fatal(err)
	}
	return r
}

func modes() []SearchMode {
	return []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2}
}

func TestAllModesFindGroundFact(t *testing.T) {
	r := familyRetriever(t, 50, 0)
	goal := parse.MustTerm("married_couple(husband7, wife7)")
	for _, mode := range modes() {
		rt, err := r.Retrieve(goal, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		trueU, _, err := rt.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if trueU != 1 {
			t.Errorf("%v: true unifiers = %d, want 1", mode, trueU)
		}
	}
}

// TestFilterSoundnessAcrossModes: no mode may lose a true unifier.
func TestFilterSoundnessAcrossModes(t *testing.T) {
	r := familyRetriever(t, 60, 4)
	goals := []string{
		"married_couple(husband3, X)",
		"married_couple(X, Y)",
		"married_couple(S, S)",
		"married_couple(husband8, husband8)",
		"married_couple(nobody, X)",
	}
	for _, g := range goals {
		goal := parse.MustTerm(g)
		// Ground truth: count unifiers by full scan.
		swRt, err := r.Retrieve(goal, ModeSoftware)
		if err != nil {
			t.Fatal(err)
		}
		wantTrue, _, err := swRt.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes() {
			rt, err := r.Retrieve(parse.MustTerm(g), mode)
			if err != nil {
				t.Fatalf("%s %v: %v", g, mode, err)
			}
			gotTrue, _, err := rt.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			if gotTrue != wantTrue {
				t.Errorf("%s %v: true unifiers = %d, want %d", g, mode, gotTrue, wantTrue)
			}
		}
	}
}

// TestSharedVariableFunnels reproduces the §2.1/§2.2 claim chain: FS1
// passes the whole predicate for married_couple(S,S); FS2 cuts it to the
// true unifiers.
func TestSharedVariableFunnels(t *testing.T) {
	const n, every = 40, 4 // 10 same-name couples
	r := familyRetriever(t, n, every)
	goal := parse.MustTerm("married_couple(S, S)")

	fs1, err := r.Retrieve(goal, ModeFS1)
	if err != nil {
		t.Fatal(err)
	}
	if fs1.Stats.AfterFS1 != n {
		t.Errorf("FS1 candidates = %d, want the entire predicate (%d)", fs1.Stats.AfterFS1, n)
	}

	both, err := r.Retrieve(parse.MustTerm("married_couple(S, S)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if both.Stats.AfterFS1 != n {
		t.Errorf("stage 1 of fs1+fs2 = %d, want %d", both.Stats.AfterFS1, n)
	}
	if both.Stats.AfterFS2 != n/every {
		t.Errorf("stage 2 = %d, want %d true same-name couples", both.Stats.AfterFS2, n/every)
	}
	trueU, falseD, err := both.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if trueU != n/every || falseD != 0 {
		t.Errorf("after FS2: true=%d false=%d, want %d/0", trueU, falseD, n/every)
	}
}

func TestStageStatsPlausible(t *testing.T) {
	r := familyRetriever(t, 100, 0)
	rt, err := r.Retrieve(parse.MustTerm("married_couple(husband42, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	s := rt.Stats
	if s.TotalClauses != 100 {
		t.Errorf("TotalClauses = %d", s.TotalClauses)
	}
	if s.AfterFS1 < 1 || s.AfterFS1 > s.TotalClauses {
		t.Errorf("AfterFS1 = %d", s.AfterFS1)
	}
	if s.AfterFS2 < 1 || s.AfterFS2 > s.AfterFS1 {
		t.Errorf("AfterFS2 = %d out of range (FS2 can only narrow)", s.AfterFS2)
	}
	if s.FS1Scan <= 0 || s.DiskFetch <= 0 || s.Total <= 0 {
		t.Errorf("times = %+v", s)
	}
	if s.IndexBytes <= 0 || s.ClauseBytes <= 0 {
		t.Errorf("bytes = %+v", s)
	}
	// The index is much smaller than the clause data it covers (§2.1).
	if s.IndexBytes >= rt.pred.File.SizeBytes() {
		t.Errorf("index bytes %d should be below clause file %d", s.IndexBytes, rt.pred.File.SizeBytes())
	}
}

func TestSelectiveQueryScansLessInTwoStageMode(t *testing.T) {
	r := familyRetriever(t, 200, 0)
	sel, err := r.Retrieve(parse.MustTerm("married_couple(husband5, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Retrieve(parse.MustTerm("married_couple(husband5, X)"), ModeFS2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Stats.ClauseBytes >= full.Stats.ClauseBytes {
		t.Errorf("two-stage fetched %d bytes, full scan %d — index should cut clause traffic",
			sel.Stats.ClauseBytes, full.Stats.ClauseBytes)
	}
}

func TestUnknownPredicate(t *testing.T) {
	r := familyRetriever(t, 5, 0)
	if _, err := r.Retrieve(parse.MustTerm("nosuch(a)"), ModeFS1FS2); err == nil {
		t.Error("unknown predicate should error")
	}
	if _, err := r.Retrieve(term.Int(3), ModeFS1FS2); err == nil {
		t.Error("non-callable goal should error")
	}
}

func TestChooseModeHeuristic(t *testing.T) {
	r := familyRetriever(t, 20, 2)
	pred, err := r.Predicate(parse.MustTerm("married_couple(a, b)"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		goal string
		want SearchMode
	}{
		{"married_couple(X, Y)", ModeSoftware}, // unconstrained
		{"married_couple(S, S)", ModeFS2},      // cross-bound variables
		{"married_couple(husband2, X)", ModeFS1FS2},
	}
	for _, c := range cases {
		if got := ChooseMode(parse.MustTerm(c.goal), pred); got != c.want {
			t.Errorf("ChooseMode(%s) = %v, want %v", c.goal, got, c.want)
		}
	}
	// Rule/variable-intensive predicate prefers FS2.
	r2, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var clauses []ClauseTerm
	for i := 0; i < 10; i++ {
		clauses = append(clauses, ClauseTerm{
			Head: term.New("rule", term.NewVar("X"), term.Int(int64(i))),
			Body: parse.MustTerm("helper(X)"),
		})
	}
	pred2, err := r2.AddClauses("rules", clauses)
	if err != nil {
		t.Fatal(err)
	}
	if pred2.FractionRules() != 1 {
		t.Errorf("FractionRules = %v", pred2.FractionRules())
	}
	if got := ChooseMode(parse.MustTerm("rule(a, 3)"), pred2); got != ModeFS2 {
		t.Errorf("rule-intensive predicate: mode = %v, want fs2", got)
	}
}

func TestSourceIntegrationWithEngine(t *testing.T) {
	// The full paper stack: a Prolog machine whose disk-resident
	// predicate retrieves through CLARE, with full unification on the
	// host.
	r := familyRetriever(t, 30, 3)
	m := engine.New()
	mode := ModeFS1FS2
	src := &Source{R: r, Mode: &mode}
	mod := m.Module("user")
	proc := mod.Proc(engine.Indicator{Name: "married_couple", Arity: 2}, true)
	proc.Source = src

	sols, err := m.Query("married_couple(husband7, W)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["W"].String() != "wife7" {
		t.Errorf("solutions = %v", sols)
	}
	// Shared-variable query through the engine.
	src.Mode = nil // let the heuristic pick (ModeFS2 for shared vars)
	sols, err = m.Query("married_couple(P, P)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 10 {
		t.Errorf("same-name couples = %d, want 10", len(sols))
	}
	if src.LastRetrieval == nil || src.LastRetrieval.Mode != ModeFS2 {
		t.Errorf("heuristic mode = %v, want fs2", src.LastRetrieval.Mode)
	}
}

func TestClauseOrderSurvivesPipeline(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var clauses []ClauseTerm
	for _, v := range []int{3, 1, 4, 1, 5} {
		clauses = append(clauses, ClauseTerm{Head: term.New("seq", term.Int(int64(v)))})
	}
	if _, err := r.AddClauses("m", clauses); err != nil {
		t.Fatal(err)
	}
	rt, err := r.Retrieve(parse.MustTerm("seq(X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	heads, _, err := rt.DecodeCandidates()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"seq(3)", "seq(1)", "seq(4)", "seq(1)", "seq(5)"}
	if len(heads) != len(want) {
		t.Fatalf("candidates = %d", len(heads))
	}
	for i, h := range heads {
		if h.String() != want[i] {
			t.Errorf("candidate %d = %v, want %s", i, h, want[i])
		}
	}
}

func TestRetrieverConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SCW.Width = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid SCW params should fail")
	}
	cfg = DefaultConfig()
	cfg.Disk.TransferRate = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid disk model should fail")
	}
}

func TestEmptyAddClauses(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddClauses("m", nil); err == nil {
		t.Error("empty clause list should fail")
	}
}
