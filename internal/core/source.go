package core

import (
	"clare/internal/engine"
	"clare/internal/plan"
	"clare/internal/term"
	"clare/internal/unify"
)

// Source adapts a Retriever to the engine.ClauseSource interface: a
// disk-resident procedure whose candidate clauses come through the CLARE
// pipeline. The Prolog engine performs full unification on the candidates
// — the paper's division of labour (§1).
type Source struct {
	R *Retriever
	// Mode pins the search mode; nil selects per query via ChooseMode.
	Mode *SearchMode
	// LastRetrieval records the most recent retrieval for inspection.
	LastRetrieval *Retrieval
}

var _ engine.ClauseSource = (*Source)(nil)

// Candidates implements engine.ClauseSource.
func (s *Source) Candidates(goal term.Term) ([]*engine.Clause, error) {
	mode := ModeFS1FS2
	if s.Mode != nil {
		mode = *s.Mode
	} else if m, _, err := s.R.PlanMode(goal); err == nil {
		mode = m
	}
	rt, err := s.R.Retrieve(goal, mode)
	if err != nil {
		return nil, err
	}
	s.LastRetrieval = rt
	heads, bodies, err := rt.DecodeCandidates()
	if err != nil {
		return nil, err
	}
	out := make([]*engine.Clause, len(heads))
	for i := range heads {
		out[i] = &engine.Clause{Head: heads[i], Body: bodies[i], Seq: rt.Candidates[i].Seq}
	}
	return out, nil
}

// ChooseMode is the CRS mode-selection heuristic (§2.2): "depending on the
// nature of a query (e.g. whether it contains cross bound variables) and
// the knowledge base (e.g. whether it is rule or fact intensive)".
func ChooseMode(goal term.Term, pred *Predicate) SearchMode {
	allVars := true
	if c, ok := term.Deref(goal).(*term.Compound); ok {
		for _, a := range c.Args {
			if _, isVar := term.Deref(a).(*term.Var); !isVar {
				allVars = false
				break
			}
		}
	}
	switch {
	case allVars && !term.HasSharedVars(goal):
		// Nothing constrains the index or the matcher: every clause is a
		// potential unifier; scanning hardware would be pure overhead.
		return ModeSoftware
	case term.HasSharedVars(goal):
		// Cross-bound variables defeat the codeword filter (§2.1) but are
		// exactly what FS2's cross-binding checks handle.
		return ModeFS2
	case pred.FractionMasked() > 0.5:
		// A rule/variable-intensive predicate masks most index entries:
		// FS1 passes nearly everything, so skip the index scan.
		return ModeFS2
	default:
		return ModeFS1FS2
	}
}

// planMode maps a core SearchMode onto the planner's mirror type; ok is
// false for values outside the four modes.
func planMode(m SearchMode) (plan.Mode, bool) {
	if m < ModeSoftware || m > ModeFS1FS2 {
		return 0, false
	}
	return plan.Mode(m), true
}

// modeFromPlan is the inverse mapping.
func modeFromPlan(m plan.Mode) SearchMode { return SearchMode(m) }

// Planner exposes the configured adaptive planner (nil when the
// retriever runs the static heuristic).
func (r *Retriever) Planner() *plan.Planner { return r.cfg.Planner }

// PlanMode resolves the goal's search mode the auto-mode way: through
// the configured adaptive planner when one is attached, through the
// static ChooseMode heuristic otherwise. The returned Decision is nil
// on the heuristic path.
func (r *Retriever) PlanMode(goal term.Term) (SearchMode, *plan.Decision, error) {
	pred, err := r.Predicate(goal)
	if err != nil {
		return ModeFS1FS2, nil, err
	}
	p := r.cfg.Planner
	if p == nil {
		return ChooseMode(goal, pred), nil, nil
	}
	var pi Indicator
	if functor, args, ok := principal(goal); ok {
		pi = Indicator{Functor: functor, Arity: len(args)}
	}
	d := p.Decide(pi.String(), plan.ShapeOf(goal), pred.File.Len(), pred.MaskedClauses)
	return modeFromPlan(d.Mode), &d, nil
}

// Evaluate classifies a retrieval's candidates into true unifiers and
// false drops using full unification — the downstream stage every
// candidate ultimately faces. Used by the experiments, not the hot path.
func (rt *Retrieval) Evaluate() (trueUnifiers, falseDrops int, err error) {
	heads, _, err := rt.DecodeCandidates()
	if err != nil {
		return 0, 0, err
	}
	for _, h := range heads {
		if unify.Unifiable(rt.Goal, term.Rename(h)) {
			trueUnifiers++
		} else {
			falseDrops++
		}
	}
	return trueUnifiers, falseDrops, nil
}
