package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/telemetry"
	"clare/internal/term"
)

// queryCache memoises the two query-side encodings a retrieval needs —
// the PIF query image FS2 matches against and the SCW query codeword FS1
// scans with — keyed by the goal's shape. Both encodings depend only on
// the shape (constants by value, variables by first-occurrence position),
// so repeated goals skip the encoder entirely. The cache is shared by all
// boards; entries are immutable after insertion (FS2 only reads the query
// image) and safe to hand to concurrent retrievals.
type queryCache struct {
	mu      sync.RWMutex
	cap     int
	entries map[string]*cachedQuery

	hits   atomic.Int64
	misses atomic.Int64

	// registry handles (nil when uninstrumented; observations no-op).
	hitC  *telemetry.Counter
	missC *telemetry.Counter
	sizeG *telemetry.Gauge
}

// instrument wires the cache's counters to a metrics registry.
func (c *queryCache) instrument(reg *telemetry.Registry) {
	if c == nil {
		return
	}
	c.hitC = reg.Counter("clare_qcache_hits_total", "query-encoding cache hits", nil)
	c.missC = reg.Counter("clare_qcache_misses_total", "query-encoding cache misses", nil)
	c.sizeG = reg.Gauge("clare_qcache_entries", "query-encoding cache population", nil)
}

type cachedQuery struct {
	pif *pif.Encoded
	scw scw.QueryDescriptor
}

// DefaultQueryCacheSize bounds the cache when Config.QueryCacheSize is 0.
const DefaultQueryCacheSize = 1024

// maxQueryKeyLen: goals larger than this are not worth caching (the key
// build would rival the encode).
const maxQueryKeyLen = 1 << 10

func newQueryCache(capacity int) *queryCache {
	if capacity == 0 {
		capacity = DefaultQueryCacheSize
	}
	if capacity < 0 {
		return nil // cache disabled
	}
	return &queryCache{cap: capacity, entries: make(map[string]*cachedQuery)}
}

func (c *queryCache) get(key string) *cachedQuery {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		c.hitC.Inc()
	} else {
		c.misses.Add(1)
		c.missC.Inc()
	}
	return e
}

func (c *queryCache) put(key string, e *cachedQuery) {
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		// Epoch flush: cheap, deterministic, and the working set refills in
		// one round of misses.
		c.entries = make(map[string]*cachedQuery)
	}
	c.entries[key] = e
	n := len(c.entries)
	c.mu.Unlock()
	c.sizeG.Set(float64(n))
}

// QueryCacheStats reports the query-encoding cache's hit/miss counters and
// current size. All zeros when the cache is disabled.
type QueryCacheStats struct {
	Hits, Misses int64
	Size         int
}

func (c *queryCache) stats() QueryCacheStats {
	if c == nil {
		return QueryCacheStats{}
	}
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return QueryCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: n}
}

// queryKey canonicalises a goal's shape: constants by value, named
// variables by first-occurrence index (so p(X,Y) and p(A,B) share an
// entry while p(X,X) does not), anonymous variables distinct from named
// ones. ok is false for goals that are uncacheable (non-callable parts)
// or too large to be worth keying.
func queryKey(t term.Term) (key string, ok bool) {
	var b strings.Builder
	seen := make(map[*term.Var]int)
	var walk func(t term.Term) bool
	walk = func(t term.Term) bool {
		if b.Len() > maxQueryKeyLen {
			return false
		}
		switch t := term.Deref(t).(type) {
		case *term.Var:
			if t.Name == "_" {
				b.WriteString("_;")
				return true
			}
			id, have := seen[t]
			if !have {
				id = len(seen)
				seen[t] = id
			}
			fmt.Fprintf(&b, "v%d;", id)
		case term.Atom:
			fmt.Fprintf(&b, "a%d:%s;", len(t), string(t))
		case term.Int:
			fmt.Fprintf(&b, "i%d;", int64(t))
		case term.Float:
			fmt.Fprintf(&b, "f%x;", float64(t))
		case *term.Compound:
			fmt.Fprintf(&b, "c%d:%d:%s(", len(t.Args), len(t.Functor), t.Functor)
			for _, a := range t.Args {
				if !walk(a) {
					return false
				}
			}
			b.WriteString(");")
		default:
			return false
		}
		return true
	}
	if !walk(t) || b.Len() > maxQueryKeyLen {
		return "", false
	}
	return b.String(), true
}
