package core

import (
	"fmt"
	"testing"

	"clare/internal/clausefile"
	"clare/internal/fs2"
	"clare/internal/parse"
	"clare/internal/pif"
	"clare/internal/scw"
	"clare/internal/symtab"
	"clare/internal/term"
	"clare/internal/termgen"
)

// buildEnginePair returns two retrievers over an identical clause set —
// one per execution engine — so retrieval results can be compared
// address by address (clauses are assigned addresses in insertion order,
// so equal Addr means "the same clause").
func buildEnginePair(t testing.TB, cfg Config, module string, clauses []ClauseTerm) (sim, native *Retriever) {
	t.Helper()
	cfg.Engine = EngineSim
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddClauses(module, clauses); err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineNative
	native, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := native.AddClauses(module, clauses); err != nil {
		t.Fatal(err)
	}
	return sim, native
}

// genWorkload generates n correlated (clause head, query) pairs for one
// predicate, keeping only heads the clause file accepts (PIF-encodable
// and within the record size limit). Queries that cannot be encoded are
// kept: both engines must fail them identically in the hardware modes.
func genWorkload(t testing.TB, seed int64, functor string, arity, n int) (clauses []ClauseTerm, queries []term.Term) {
	t.Helper()
	g := termgen.New(seed)
	penc := pif.NewEncoder(symtab.New())
	for len(clauses) < n {
		query, head := g.Pair(functor, arity)
		he, err := penc.Encode(head, pif.DBSide)
		if err != nil {
			continue
		}
		hb, err := he.MarshalBinary()
		if err != nil {
			continue
		}
		// Size the full stored record the way the builder does: head
		// record + ':-'(head, true) clause record + framing.
		ce, err := penc.Encode(term.New(":-", head, term.Atom("true")), pif.DBSide)
		if err != nil {
			continue
		}
		cb, err := ce.MarshalBinary()
		if err != nil || 8+len(hb)+len(cb) > clausefile.MaxRecordBytes {
			continue
		}
		clauses = append(clauses, ClauseTerm{Head: head})
		queries = append(queries, query)
	}
	return clauses, queries
}

// diffRetrieve runs one goal through both engines in one mode and
// asserts identical outcomes: same error disposition, byte-identical
// candidate address sequences, and identical filtering statistics.
// It returns how many candidate-level comparisons it performed.
func diffRetrieve(t *testing.T, sim, native *Retriever, goal term.Term, mode SearchMode) int {
	t.Helper()
	srt, serr := sim.Retrieve(goal, mode)
	nrt, nerr := native.Retrieve(goal, mode)
	if (serr == nil) != (nerr == nil) {
		t.Fatalf("%v %v: sim err = %v, native err = %v", mode, goal, serr, nerr)
	}
	if serr != nil {
		return 1
	}
	if len(srt.Candidates) != len(nrt.Candidates) {
		t.Fatalf("%v %v: sim %d candidates, native %d",
			mode, goal, len(srt.Candidates), len(nrt.Candidates))
	}
	for i := range srt.Candidates {
		if srt.Candidates[i].Addr != nrt.Candidates[i].Addr {
			t.Fatalf("%v %v: candidate %d addr sim %d != native %d",
				mode, goal, i, srt.Candidates[i].Addr, nrt.Candidates[i].Addr)
		}
	}
	ss, ns := srt.Stats, nrt.Stats
	if ss.AfterFS1 != ns.AfterFS1 || ss.AfterFS2 != ns.AfterFS2 {
		t.Fatalf("%v %v: survivor counts sim %d/%d, native %d/%d",
			mode, goal, ss.AfterFS1, ss.AfterFS2, ns.AfterFS1, ns.AfterFS2)
	}
	if ss.MaskedHits != ns.MaskedHits {
		t.Fatalf("%v %v: MaskedHits sim %d, native %d", mode, goal, ss.MaskedHits, ns.MaskedHits)
	}
	if ss.FS2RejectsLevel != ns.FS2RejectsLevel || ss.FS2RejectsXB != ns.FS2RejectsXB {
		t.Fatalf("%v %v: reject split sim %d/%d, native %d/%d",
			mode, goal, ss.FS2RejectsLevel, ss.FS2RejectsXB, ns.FS2RejectsLevel, ns.FS2RejectsXB)
	}
	if ss.IndexBytes != ns.IndexBytes {
		t.Fatalf("%v %v: IndexBytes sim %d, native %d", mode, goal, ss.IndexBytes, ns.IndexBytes)
	}
	if mode == ModeSoftware && ss.Total != ns.Total {
		// Software mode shares the whole simulated ledger; the hardware
		// modes differ only in the documented FS2Match/fetch terms.
		t.Fatalf("%v %v: software Total sim %v, native %v", mode, goal, ss.Total, ns.Total)
	}
	return len(srt.Candidates) + 1
}

// TestEngineDifferentialGenerated drives both engines over
// generator-produced knowledge bases — variable-bearing heads (masked
// index entries), shared variables, near-miss queries — across all four
// search modes, and requires identical candidates and statistics
// throughout.
func TestEngineDifferentialGenerated(t *testing.T) {
	comparisons := 0
	for arity := 1; arity <= 4; arity++ {
		clauses, queries := genWorkload(t, int64(1000+arity), "p", arity, 150)
		sim, native := buildEnginePair(t, DefaultConfig(), "gen", clauses)
		// An unconstrained goal retrieves everything through FS1.
		open := make([]term.Term, arity)
		for i := range open {
			open[i] = term.NewVar(fmt.Sprintf("Q%d", i))
		}
		queries = append(queries, term.New("p", open...))
		for _, goal := range queries {
			for _, mode := range modes() {
				comparisons += diffRetrieve(t, sim, native, goal, mode)
			}
		}
	}
	if comparisons < 2400 {
		t.Fatalf("only %d engine comparisons ran", comparisons)
	}
}

// TestEngineDifferentialFamily repeats the paper's married_couple
// workload on both engines, including the shared-variable and miss
// goals.
func TestEngineDifferentialFamily(t *testing.T) {
	clauses := make([]ClauseTerm, 120)
	for i := range clauses {
		a := term.Atom(fmt.Sprintf("husband%d", i))
		b := term.Atom(fmt.Sprintf("wife%d", i))
		if i%5 == 0 {
			b = a
		}
		clauses[i] = ClauseTerm{Head: term.New("married_couple", a, b)}
	}
	sim, native := buildEnginePair(t, DefaultConfig(), "family", clauses)
	goals := []string{
		"married_couple(husband7, wife7)",
		"married_couple(husband10, X)",
		"married_couple(X, Y)",
		"married_couple(S, S)",
		"married_couple(nobody, X)",
	}
	for _, g := range goals {
		for _, mode := range modes() {
			diffRetrieve(t, sim, native, parse.MustTerm(g), mode)
		}
	}
}

// TestEngineDifferentialUnencodableGoal: software mode must cover goals
// the PIF encoder rejects (too many distinct variables), on both
// engines — the native path falls back to term-level matching.
func TestEngineDifferentialUnencodableGoal(t *testing.T) {
	clauses := []ClauseTerm{
		{Head: term.New("p", term.Atom("a"), term.Atom("b"))},
		{Head: term.New("p", term.Atom("a"), term.Atom("c"))},
	}
	sim, native := buildEnginePair(t, DefaultConfig(), "wide", clauses)
	vars := make([]term.Term, pif.MaxVarSlots+8)
	for i := range vars {
		vars[i] = term.NewVar(fmt.Sprintf("V%d", i))
	}
	goal := term.New("p", term.Atom("a"), term.New("f", vars...))
	for _, mode := range modes() {
		diffRetrieve(t, sim, native, goal, mode)
	}
	// Sanity: the goal really is unencodable.
	if _, err := pif.NewEncoder(symtab.New()).Encode(goal, pif.QuerySide); err == nil {
		t.Fatal("goal unexpectedly encodable; test is vacuous")
	}
	rt, err := native.Retrieve(goal, ModeSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Candidates) != 0 {
		t.Fatalf("f/%d cannot unify with atoms, got %d candidates", len(vars), len(rt.Candidates))
	}
}

// TestNativeKernelsZeroAlloc pins the native steady-state match path —
// columnar scan plus native FS2 filtering through a pooled arena — at
// zero allocations per retrieval once buffers have warmed up, at every
// scan worker count (the partitioned path keeps per-worker survivor
// buffers preallocated in the arena).
func TestNativeKernelsZeroAlloc(t *testing.T) {
	prev := scw.ParScanMinEntries
	scw.ParScanMinEntries = 64
	t.Cleanup(func() { scw.ParScanMinEntries = prev })
	clauses := make([]ClauseTerm, 512)
	for i := range clauses {
		clauses[i] = ClauseTerm{Head: term.New("p",
			term.Atom(fmt.Sprintf("k%d", i%64)), term.Int(int64(i)))}
	}
	cfg := DefaultConfig()
	cfg.Engine = EngineNative
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := r.AddClauses("m", clauses)
	if err != nil {
		t.Fatal(err)
	}
	goal := term.New("p", term.Atom("k3"), term.NewVar("N"))
	rt := &Retrieval{pred: pred}
	qd, q, err := r.encodeQuery(goal, rt)
	if err != nil {
		t.Fatal(err)
	}
	a := r.arena()
	if err := a.nm.SetQuery(q); err != nil {
		t.Fatal(err)
	}
	col := pred.File.Index().Columnar()
	all := pred.File.All()
	out := make([]*clausefile.StoredClause, 0, len(all))
	for _, workers := range []int{1, 2, 4, 8} {
		r.SetScanWorkers(workers)
		var survivors int
		scan := func() {
			col.ParScanInto(qd, r.ScanWorkers(), r.scanPool, &a.pbuf)
			out = out[:0]
			for _, p := range a.pbuf.Out.Pos {
				sc := all[p]
				if a.nm.Match(sc.Head) {
					out = append(out, sc)
				}
			}
			survivors = len(out)
		}
		scan() // warm the pool and per-partition buffers
		allocs := testing.AllocsPerRun(200, scan)
		if survivors == 0 {
			t.Fatalf("workers=%d: scan+match found nothing; kernel never exercised", workers)
		}
		if allocs != 0 {
			t.Fatalf("workers=%d: native match path allocates %.1f times per retrieval, want 0",
				workers, allocs)
		}
	}
}

// TestNativeEngineConfig covers the Engine plumbing: parsing, the
// accessor, and the DescendFull rejection.
func TestNativeEngineConfig(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"sim", EngineSim, true},
		{"", EngineSim, true},
		{"native", EngineNative, true},
		{"turbo", EngineSim, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if EngineSim.String() != "sim" || EngineNative.String() != "native" {
		t.Errorf("engine names: %v, %v", EngineSim, EngineNative)
	}

	cfg := DefaultConfig()
	cfg.Engine = EngineNative
	cfg.Microprogram = fs2.MPLevel5
	if _, err := New(cfg); err == nil {
		t.Fatal("native engine accepted a DescendFull microprogram")
	}
	cfg.Engine = EngineSim
	if _, err := New(cfg); err != nil {
		t.Fatalf("sim engine rejected MPLevel5: %v", err)
	}
	cfg.Engine = Engine(42)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown engine value accepted")
	}
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine() != EngineSim {
		t.Fatalf("default engine = %v", r.Engine())
	}
}

// BenchmarkRetrieveEngines compares one FS1+FS2 retrieval end to end on
// both engines (the clarebench NATIVE experiment measures the same split
// at workload scale).
func BenchmarkRetrieveEngines(b *testing.B) {
	clauses := make([]ClauseTerm, 4096)
	for i := range clauses {
		clauses[i] = ClauseTerm{Head: term.New("p",
			term.Atom(fmt.Sprintf("k%d", i%256)), term.Int(int64(i)))}
	}
	goal := term.New("p", term.Atom("k17"), term.NewVar("N"))
	for _, eng := range []Engine{EngineSim, EngineNative} {
		b.Run(eng.String(), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Engine = eng
			r, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.AddClauses("m", clauses); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Retrieve(goal, ModeFS1FS2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
