package core

import (
	"fmt"
	"testing"

	"clare/internal/parse"
	"clare/internal/plan"
	"clare/internal/term"
)

// plannerRetriever builds a planner-armed retriever over a mixed KB: a
// selective fact relation, a rule-intensive predicate whose masked
// index entries defeat FS1, and the §2.1 shared-variable family.
func plannerRetriever(t *testing.T) *Retriever {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Planner = plan.New(plan.Config{})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rel := make([]ClauseTerm, 120)
	for i := range rel {
		rel[i] = ClauseTerm{Head: term.New("orel",
			term.Atom(fmt.Sprintf("k%d", i%12)), term.Atom(fmt.Sprintf("v%d", i)))}
	}
	if _, err := r.AddClauses("oracle", rel); err != nil {
		t.Fatal(err)
	}

	rules := make([]ClauseTerm, 40)
	for i := range rules {
		v := term.NewVar("X")
		rules[i] = ClauseTerm{
			Head: term.New("orule", v, term.Atom(fmt.Sprintf("c%d", i%5))),
			Body: term.New("orel", v, term.Atom(fmt.Sprintf("v%d", i))),
		}
	}
	if _, err := r.AddClauses("oracle", rules); err != nil {
		t.Fatal(err)
	}

	fam := make([]ClauseTerm, 48)
	for i := range fam {
		a := term.Atom(fmt.Sprintf("husband%d", i))
		b := term.Atom(fmt.Sprintf("wife%d", i))
		if i%6 == 0 {
			b = a
		}
		fam[i] = ClauseTerm{Head: term.New("married_couple", a, b)}
	}
	if _, err := r.AddClauses("oracle", fam); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPlannerDifferentialOracle is the planner's correctness oracle:
// on a mixed workload, every goal's true-unifier count under the
// planner-chosen mode must equal its count under each of the four
// static modes — at every point of the planner's learning curve, since
// the rounds keep feeding cost observations between decisions. Shaped
// goals with shared variables must additionally never be planned onto
// an FS1 rung (the codeword filter passes everything for them, §2.1).
func TestPlannerDifferentialOracle(t *testing.T) {
	r := plannerRetriever(t)
	goals := []string{
		"orel(k3, V)",
		"orel(k11, V)",
		"orel(nokey, V)",
		"orel(X, Y)",
		"orel(k2, v26)",
		"orule(c2, V)",
		"orule(V, c4)",
		"married_couple(S, S)",
		"married_couple(husband6, husband6)",
		"married_couple(husband3, X)",
	}
	for round := 0; round < 3; round++ {
		for _, g := range goals {
			goal := parse.MustTerm(g)

			// Ground truth plus planner feeding: every static mode sees
			// the goal, so the planner's cost model keeps learning (and
			// possibly changing its decision) between rounds.
			want := -1
			for _, mode := range modes() {
				rt, err := r.Retrieve(parse.MustTerm(g), mode)
				if err != nil {
					t.Fatalf("round %d %s %v: %v", round, g, mode, err)
				}
				trueU, _, err := rt.Evaluate()
				if err != nil {
					t.Fatal(err)
				}
				if want == -1 {
					want = trueU
				} else if trueU != want {
					t.Fatalf("round %d %s %v: static mode true unifiers = %d, want %d",
						round, g, mode, trueU, want)
				}
			}

			m, d, err := r.PlanMode(goal)
			if err != nil {
				t.Fatalf("round %d %s: PlanMode: %v", round, g, err)
			}
			if d == nil {
				t.Fatalf("round %d %s: no planner decision despite armed planner", round, g)
			}
			if plan.ShapeOf(goal).HasShared() && d.Mode.UsesFS1() {
				t.Errorf("round %d %s: shared-variable goal planned onto %v (codeword filter is blind to it)",
					round, g, d.Mode)
			}
			rt, err := r.Retrieve(goal, m)
			if err != nil {
				t.Fatalf("round %d %s planner(%v): %v", round, g, m, err)
			}
			gotTrue, _, err := rt.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			if gotTrue != want {
				t.Errorf("round %d %s planner(%v): true unifiers = %d, want %d",
					round, g, m, gotTrue, want)
			}
		}
	}
	if skips := r.Planner().Counters().SharedVarSkips; skips == 0 {
		t.Error("no shared-variable codeword skip recorded across the oracle workload")
	}
}
