package core

import (
	"bytes"
	"testing"

	"clare/internal/parse"
	"clare/internal/term"
)

func TestSaveLoadKB(t *testing.T) {
	r := familyRetriever(t, 40, 4)
	// A second predicate with rules.
	var rules []ClauseTerm
	rules = append(rules,
		ClauseTerm{Head: parse.MustTerm("fly(tweety)")},
		ClauseTerm{Head: term.New("fly", term.NewVar("X")), Body: parse.MustTerm("bird(X)")},
	)
	if _, err := r.AddClauses("flying", rules); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}

	r2, err := LoadRetriever(DefaultConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Predicates()) != 2 {
		t.Fatalf("predicates = %v", r2.Predicates())
	}

	// Retrieval behaviour identical across the round trip.
	for _, goalSrc := range []string{
		"married_couple(husband3, X)",
		"married_couple(S, S)",
		"fly(tweety)",
	} {
		for _, mode := range modes() {
			rt1, err := r.Retrieve(parse.MustTerm(goalSrc), mode)
			if err != nil {
				t.Fatal(err)
			}
			rt2, err := r2.Retrieve(parse.MustTerm(goalSrc), mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(rt1.Candidates) != len(rt2.Candidates) {
				t.Errorf("%s %v: candidates %d vs %d after reload",
					goalSrc, mode, len(rt1.Candidates), len(rt2.Candidates))
			}
			t1, _, err := rt1.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			t2, _, err := rt2.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			if t1 != t2 {
				t.Errorf("%s %v: true unifiers %d vs %d", goalSrc, mode, t1, t2)
			}
		}
	}

	// Rule/mask statistics survive.
	p1, err := r.Predicate(parse.MustTerm("fly(x)"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r2.Predicate(parse.MustTerm("fly(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.RuleCount != p2.RuleCount || p1.MaskedClauses != p2.MaskedClauses {
		t.Errorf("stats lost: rules %d→%d, masked %d→%d",
			p1.RuleCount, p2.RuleCount, p1.MaskedClauses, p2.MaskedClauses)
	}
}

func TestLoadKBErrors(t *testing.T) {
	if _, err := LoadRetriever(DefaultConfig(), bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage store should fail")
	}
	r := familyRetriever(t, 5, 0)
	var buf bytes.Buffer
	if err := r.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadRetriever(DefaultConfig(), bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated store should fail")
	}
	// Corrupt the magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := LoadRetriever(DefaultConfig(), bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
}

// TestSaveKBPartition: a keep-filtered slice is an ordinary store
// holding exactly the selected predicates, with retrieval behaviour
// intact, and the slices of a partition cover the whole KB.
func TestSaveKBPartition(t *testing.T) {
	r := familyRetriever(t, 20, 4)
	if _, err := r.AddClauses("flying", []ClauseTerm{
		{Head: parse.MustTerm("fly(tweety)")},
		{Head: parse.MustTerm("fly(woodstock)")},
	}); err != nil {
		t.Fatal(err)
	}

	var slice bytes.Buffer
	err := r.SaveKBPartition(&slice, func(pi Indicator) bool {
		return pi.Functor == "fly"
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LoadRetriever(DefaultConfig(), &slice)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Predicates(); len(got) != 1 || got[0].Functor != "fly" {
		t.Fatalf("slice predicates = %v, want [fly/1]", got)
	}
	rt, err := r2.Retrieve(parse.MustTerm("fly(X)"), ModeSoftware)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Candidates) != 2 {
		t.Errorf("slice retrieval candidates = %d, want 2", len(rt.Candidates))
	}

	// A two-way partition covers every predicate exactly once.
	total := 0
	for part := 0; part < 2; part++ {
		var buf bytes.Buffer
		err := r.SaveKBPartition(&buf, func(pi Indicator) bool {
			return (len(pi.Functor)%2 == 0) == (part == 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := LoadRetriever(DefaultConfig(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rp.Predicates())
	}
	if total != len(r.Predicates()) {
		t.Errorf("partition slices hold %d predicates, want %d", total, len(r.Predicates()))
	}

	// An empty slice still round-trips (a shard may hold no predicates).
	var empty bytes.Buffer
	if err := r.SaveKBPartition(&empty, func(Indicator) bool { return false }); err != nil {
		t.Fatal(err)
	}
	re, err := LoadRetriever(DefaultConfig(), &empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Predicates()) != 0 {
		t.Errorf("empty slice holds %v", re.Predicates())
	}
}

func TestSaveKBDeterministic(t *testing.T) {
	r := familyRetriever(t, 10, 2)
	var a, b bytes.Buffer
	if err := r.SaveKB(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveKB(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("SaveKB output not deterministic")
	}
}
