package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"clare/internal/clausefile"
	"clare/internal/mmapfile"
	"clare/internal/symtab"
	"clare/internal/term"
)

// Knowledge-base store formats (big-endian framing).
//
// v1 (kbMagic, read support only):
//
//	magic    uint32 0xC1A7E0DB
//	symLen   uint32, symbol table blob
//	count    uint32 predicate files
//	per file: len uint32, clausefile v1 blob
//
// v2 (kbMagic2, what SaveKB writes) — the mappable layout:
//
//	magic    uint32 0xC1A7E1DB
//	symLen   uint32, symbol table blob
//	count    uint32 predicate files
//	per file:
//	    len       uint32  clausefile v2 blob length
//	    ruleCount uint32  clauses with a non-true body
//	    padLen    uint32  zero bytes following, aligning the blob
//	    pad       [padLen]byte
//	    blob      clausefile v2
//
// Each v2 predicate blob starts 8-aligned in the file, and the blob's
// own word section is 8-aligned relative to the blob, so under a (page-
// aligned) read-only mapping every word section is aligned in memory and
// decodes zero-copy. ruleCount is precomputed at save time so loading
// does not decode every clause body just to count rules — with mmap that
// leaves page-in as the only cold-start cost.
//
// The symbol table is saved once and shared by every predicate file, so
// PIF content fields (symbol offsets) remain valid across the round trip.

const (
	kbMagic  = 0xC1A7E0DB
	kbMagic2 = 0xC1A7E1DB

	// kbBlobAlign aligns each predicate blob in the file so a mapping
	// preserves the blob-internal word alignment.
	kbBlobAlign = 8
)

// SaveKB serialises the retriever's predicates and shared symbol table
// in the mappable v2 format.
func (r *Retriever) SaveKB(w io.Writer) error {
	return r.SaveKBPartition(w, nil)
}

// SaveKBPartition serialises the predicates selected by keep (nil keeps
// all) with the full shared symbol table. This is the cluster build
// path: kbc -shards writes one partition per shard group, selected by
// the shard function, and every partition stays loadable by plain
// LoadRetriever (and mappable by MapRetriever) because the symbol table
// is written whole, so PIF content fields remain valid in every slice.
func (r *Retriever) SaveKBPartition(w io.Writer, keep func(Indicator) bool) error {
	r.predsMu.RLock()
	defer r.predsMu.RUnlock()
	symBlob, err := r.syms.MarshalBinary()
	if err != nil {
		return err
	}
	off := 0
	var hdr [4]byte
	emit := func(b []byte) error {
		n, err := w.Write(b)
		off += n
		return err
	}
	put := func(v uint32) error {
		binary.BigEndian.PutUint32(hdr[:], v)
		return emit(hdr[:])
	}
	if err := put(kbMagic2); err != nil {
		return err
	}
	if err := put(uint32(len(symBlob))); err != nil {
		return err
	}
	if err := emit(symBlob); err != nil {
		return err
	}
	// Deterministic order for reproducible files.
	kept := make([]Indicator, 0, len(r.preds))
	for _, pi := range sortedIndicators(r.preds) {
		if keep == nil || keep(pi) {
			kept = append(kept, pi)
		}
	}
	if err := put(uint32(len(kept))); err != nil {
		return err
	}
	var pad [kbBlobAlign]byte
	for _, pi := range kept {
		pred := r.preds[pi]
		blob, err := pred.File.MarshalBinaryV2()
		if err != nil {
			return err
		}
		if err := put(uint32(len(blob))); err != nil {
			return err
		}
		if err := put(uint32(pred.RuleCount)); err != nil {
			return err
		}
		padLen := (kbBlobAlign - (off+4)%kbBlobAlign) % kbBlobAlign
		if err := put(uint32(padLen)); err != nil {
			return err
		}
		if padLen > 0 {
			if err := emit(pad[:padLen]); err != nil {
				return err
			}
		}
		if err := emit(blob); err != nil {
			return err
		}
	}
	return nil
}

func sortedIndicators(m map[Indicator]*Predicate) []Indicator {
	out := make([]Indicator, 0, len(m))
	for pi := range m {
		out = append(out, pi)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Indicator) bool {
	if a.Functor != b.Functor {
		return a.Functor < b.Functor
	}
	return a.Arity < b.Arity
}

// saveKBv1 writes the legacy v1 store format — kept for the
// compatibility tests that prove old stores still load.
func (r *Retriever) saveKBv1(w io.Writer) error {
	r.predsMu.RLock()
	defer r.predsMu.RUnlock()
	symBlob, err := r.syms.MarshalBinary()
	if err != nil {
		return err
	}
	var hdr [4]byte
	put := func(v uint32) error {
		binary.BigEndian.PutUint32(hdr[:], v)
		_, err := w.Write(hdr[:])
		return err
	}
	if err := put(kbMagic); err != nil {
		return err
	}
	if err := put(uint32(len(symBlob))); err != nil {
		return err
	}
	if _, err := w.Write(symBlob); err != nil {
		return err
	}
	kept := sortedIndicators(r.preds)
	if err := put(uint32(len(kept))); err != nil {
		return err
	}
	for _, pi := range kept {
		blob, err := r.preds[pi].File.MarshalBinary()
		if err != nil {
			return err
		}
		if err := put(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

// LoadRetriever reads a saved knowledge base (either format) into a
// fresh retriever, decoding through the heap. The store's symbol table
// becomes the retriever's, so subsequent queries intern consistently
// with the stored PIF encodings.
func LoadRetriever(cfg Config, rd io.Reader) (*Retriever, error) {
	var hdr [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(hdr[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, err
	}
	if magic != kbMagic && magic != kbMagic2 {
		return nil, fmt.Errorf("core: bad knowledge-base magic 0x%08x", magic)
	}
	symLen, err := get()
	if err != nil {
		return nil, err
	}
	symBlob := make([]byte, symLen)
	if _, err := io.ReadFull(rd, symBlob); err != nil {
		return nil, err
	}
	syms, err := symtab.UnmarshalTable(symBlob)
	if err != nil {
		return nil, err
	}
	r, err := NewWithSymbols(cfg, syms)
	if err != nil {
		return nil, err
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	var discard [kbBlobAlign]byte
	for i := uint32(0); i < count; i++ {
		blobLen, err := get()
		if err != nil {
			return nil, err
		}
		ruleCount := -1
		if magic == kbMagic2 {
			rc, err := get()
			if err != nil {
				return nil, err
			}
			padLen, err := get()
			if err != nil {
				return nil, err
			}
			if padLen >= kbBlobAlign {
				return nil, fmt.Errorf("core: predicate file %d: bad pad length %d", i, padLen)
			}
			if _, err := io.ReadFull(rd, discard[:padLen]); err != nil {
				return nil, err
			}
			ruleCount = int(rc)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(rd, blob); err != nil {
			return nil, err
		}
		f, err := clausefile.Unmarshal(blob, syms)
		if err != nil {
			return nil, fmt.Errorf("core: predicate file %d: %w", i, err)
		}
		pred, err := adoptLoadedFile(f, ruleCount)
		if err != nil {
			return nil, err
		}
		r.predsMu.Lock()
		r.preds[Indicator{Functor: f.Functor, Arity: f.Arity}] = pred
		r.predsMu.Unlock()
	}
	return r, nil
}

// adoptLoadedFile wraps a decoded clause file in a Predicate. ruleCount
// < 0 (the v1 store, which does not record it) counts rules by decoding
// every clause body — the cost the v2 header field exists to avoid.
func adoptLoadedFile(f *clausefile.PredFile, ruleCount int) (*Predicate, error) {
	pred := &Predicate{File: f}
	for _, ent := range f.Index().Entries() {
		if ent.Mask != 0 {
			pred.MaskedClauses++
		}
	}
	if ruleCount >= 0 {
		if ruleCount > f.Len() {
			return nil, fmt.Errorf("core: predicate %s/%d: rule count %d exceeds %d clauses",
				f.Functor, f.Arity, ruleCount, f.Len())
		}
		pred.RuleCount = ruleCount
		return pred, nil
	}
	for _, sc := range f.All() {
		_, body, err := f.DecodeClause(sc)
		if err != nil {
			return nil, err
		}
		if !term.Equal(body, term.Atom("true")) {
			pred.RuleCount++
		}
	}
	return pred, nil
}

// storeMapping is the mapped store handle the retriever pins (decoupled
// from the mmapfile type so core tests can substitute one).
type storeMapping interface{ Close() error }

// StoreMapped reports whether the retriever's predicates decode out of a
// read-only file mapping (the MapRetriever zero-copy path).
func (r *Retriever) StoreMapped() bool { return r.storeMapped }

// CloseStore releases the store mapping, if any. Only call it when the
// retriever is no longer in use: mapped predicates reference the mapping
// directly. Heap-backed retrievers are a no-op.
func (r *Retriever) CloseStore() error {
	if r.storeMap == nil {
		return nil
	}
	m := r.storeMap
	r.storeMap = nil
	r.storeMapped = false
	return m.Close()
}

// MapRetriever loads a saved knowledge base by mapping it read-only and
// decoding predicate word slabs zero-copy out of the mapping (v2 stores
// on platforms with mmap). It reports whether the mapping path was
// taken: when mmap is unavailable, or the store is the v1 format, it
// falls back to the heap path of LoadRetriever — same results, higher
// cold-start cost. The mapping stays pinned for the retriever's
// lifetime; mutations after load (AddClauses, WAL replay) rebuild whole
// predicates on the heap and never touch the mapped image.
func MapRetriever(cfg Config, path string) (*Retriever, bool, error) {
	heapLoad := func() (*Retriever, bool, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		r, err := LoadRetriever(cfg, f)
		return r, false, err
	}
	m, err := mmapfile.Map(path)
	if err != nil {
		return heapLoad()
	}
	data := m.Data()
	if len(data) < 4 || binary.BigEndian.Uint32(data) != kbMagic2 {
		m.Close()
		return heapLoad()
	}
	r, mapped, err := loadMappedKB(cfg, data)
	if err != nil {
		m.Close()
		return nil, false, err
	}
	if !mapped {
		// Every predicate fell back to the heap (e.g. big-endian host):
		// nothing references the mapping.
		m.Close()
		return r, false, nil
	}
	r.storeMap = m
	r.storeMapped = true
	return r, true, nil
}

// loadMappedKB decodes a v2 store out of a mapped byte image. It reports
// whether any predicate's words are zero-copy views into data — if so
// the caller must keep the mapping alive for the retriever's lifetime.
func loadMappedKB(cfg Config, data []byte) (*Retriever, bool, error) {
	r := &byteReader{data: data}
	if m := r.u32(); m != kbMagic2 {
		return nil, false, fmt.Errorf("core: bad knowledge-base magic 0x%08x", m)
	}
	symBlob := r.bytes(int(r.u32()))
	if r.err != nil {
		return nil, false, r.err
	}
	syms, err := symtab.UnmarshalTable(symBlob)
	if err != nil {
		return nil, false, err
	}
	rtr, err := NewWithSymbols(cfg, syms)
	if err != nil {
		return nil, false, err
	}
	count := int(r.u32())
	anyMapped := false
	for i := 0; i < count; i++ {
		blobLen := int(r.u32())
		ruleCount := int(r.u32())
		padLen := int(r.u32())
		if r.err == nil && padLen >= kbBlobAlign {
			return nil, false, fmt.Errorf("core: predicate file %d: bad pad length %d", i, padLen)
		}
		r.bytes(padLen)
		blob := r.bytes(blobLen)
		if r.err != nil {
			return nil, false, r.err
		}
		f, mapped, err := clausefile.UnmarshalMapped(blob, syms)
		if err != nil {
			return nil, false, fmt.Errorf("core: predicate file %d: %w", i, err)
		}
		anyMapped = anyMapped || mapped
		pred, err := adoptLoadedFile(f, ruleCount)
		if err != nil {
			return nil, false, err
		}
		rtr.predsMu.Lock()
		rtr.preds[Indicator{Functor: f.Functor, Arity: f.Arity}] = pred
		rtr.predsMu.Unlock()
	}
	if r.pos != len(data) {
		return nil, false, fmt.Errorf("core: %d trailing bytes in knowledge base", len(data)-r.pos)
	}
	return rtr, anyMapped, nil
}

// byteReader is a bounds-checked cursor over a mapped store image.
type byteReader struct {
	data []byte
	pos  int
	err  error
}

func (r *byteReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.data) {
		r.err = fmt.Errorf("core: truncated knowledge base at byte %d", r.pos)
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("core: truncated knowledge base at byte %d", r.pos)
		return nil
	}
	v := r.data[r.pos : r.pos+n]
	r.pos += n
	return v
}
