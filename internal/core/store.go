package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"clare/internal/clausefile"
	"clare/internal/symtab"
	"clare/internal/term"
)

// Knowledge-base store format (big-endian):
//
//	magic    uint32 0xC1A7EKB? → 0xC1A7E0DB
//	symLen   uint32, symbol table blob
//	count    uint32 predicate files
//	per file: len uint32, clausefile blob
//
// The symbol table is saved once and shared by every predicate file, so
// PIF content fields (symbol offsets) remain valid across the round trip.

const kbMagic = 0xC1A7E0DB

// SaveKB serialises the retriever's predicates and shared symbol table.
func (r *Retriever) SaveKB(w io.Writer) error {
	return r.SaveKBPartition(w, nil)
}

// SaveKBPartition serialises the predicates selected by keep (nil keeps
// all) with the full shared symbol table. This is the cluster build
// path: kbc -shards writes one partition per shard group, selected by
// the shard function, and every partition stays loadable by plain
// LoadRetriever because the store format is unchanged — the symbol
// table is written whole, so PIF content fields remain valid in every
// slice.
func (r *Retriever) SaveKBPartition(w io.Writer, keep func(Indicator) bool) error {
	r.predsMu.RLock()
	defer r.predsMu.RUnlock()
	symBlob, err := r.syms.MarshalBinary()
	if err != nil {
		return err
	}
	var hdr [4]byte
	put := func(v uint32) error {
		binary.BigEndian.PutUint32(hdr[:], v)
		_, err := w.Write(hdr[:])
		return err
	}
	if err := put(kbMagic); err != nil {
		return err
	}
	if err := put(uint32(len(symBlob))); err != nil {
		return err
	}
	if _, err := w.Write(symBlob); err != nil {
		return err
	}
	// Deterministic order for reproducible files.
	kept := make([]Indicator, 0, len(r.preds))
	for _, pi := range sortedIndicators(r.preds) {
		if keep == nil || keep(pi) {
			kept = append(kept, pi)
		}
	}
	if err := put(uint32(len(kept))); err != nil {
		return err
	}
	for _, pi := range kept {
		blob, err := r.preds[pi].File.MarshalBinary()
		if err != nil {
			return err
		}
		if err := put(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

func sortedIndicators(m map[Indicator]*Predicate) []Indicator {
	out := make([]Indicator, 0, len(m))
	for pi := range m {
		out = append(out, pi)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Indicator) bool {
	if a.Functor != b.Functor {
		return a.Functor < b.Functor
	}
	return a.Arity < b.Arity
}

// LoadRetriever reads a saved knowledge base into a fresh retriever. The
// store's symbol table becomes the retriever's, so subsequent queries
// intern consistently with the stored PIF encodings.
func LoadRetriever(cfg Config, rd io.Reader) (*Retriever, error) {
	var hdr [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(hdr[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, err
	}
	if magic != kbMagic {
		return nil, fmt.Errorf("core: bad knowledge-base magic 0x%08x", magic)
	}
	symLen, err := get()
	if err != nil {
		return nil, err
	}
	symBlob := make([]byte, symLen)
	if _, err := io.ReadFull(rd, symBlob); err != nil {
		return nil, err
	}
	syms, err := symtab.UnmarshalTable(symBlob)
	if err != nil {
		return nil, err
	}
	r, err := NewWithSymbols(cfg, syms)
	if err != nil {
		return nil, err
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		blobLen, err := get()
		if err != nil {
			return nil, err
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(rd, blob); err != nil {
			return nil, err
		}
		f, err := clausefile.Unmarshal(blob, syms)
		if err != nil {
			return nil, fmt.Errorf("core: predicate file %d: %w", i, err)
		}
		pred := &Predicate{File: f}
		for _, ent := range f.Index().Entries() {
			if ent.Mask != 0 {
				pred.MaskedClauses++
			}
		}
		for _, sc := range f.All() {
			_, body, err := f.DecodeClause(sc)
			if err != nil {
				return nil, err
			}
			if !term.Equal(body, term.Atom("true")) {
				pred.RuleCount++
			}
		}
		r.predsMu.Lock()
		r.preds[Indicator{Functor: f.Functor, Arity: f.Arity}] = pred
		r.predsMu.Unlock()
	}
	return r, nil
}
