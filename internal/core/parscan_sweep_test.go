package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"clare/internal/parse"
	"clare/internal/scw"
	"clare/internal/term"
)

// sweepWorkerCounts is the ScanWorkers sweep the determinism battery
// runs: serial, powers of two through the partitioned path, and the
// host's own GOMAXPROCS (whatever it is).
func sweepWorkerCounts() []int {
	return []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
}

// bigFacts builds a fact predicate large enough that the DEFAULT
// ParScanMinEntries threshold admits multiple partitions — the sweep
// exercises production configuration, not a test-only knob.
func bigFacts(t testing.TB, n int) []ClauseTerm {
	t.Helper()
	clauses := make([]ClauseTerm, n)
	for i := range clauses {
		clauses[i] = ClauseTerm{Head: term.New("big",
			term.Atom(fmt.Sprintf("k%d", i%512)), term.Int(int64(i)))}
	}
	return clauses
}

// funnel renders the worker-count-invariant part of an EXPLAIN profile:
// every entry except wall-clock times (which legitimately vary run to
// run) and the cache flag (the first run of a goal misses, later runs
// hit).
func funnel(p *Profile) string {
	var b strings.Builder
	for _, e := range p.Entries() {
		if strings.HasPrefix(e.Key, "wall.") || e.Key == "cache_hit" {
			continue
		}
		fmt.Fprintf(&b, "%s=%s\n", e.Key, e.Value)
	}
	return b.String()
}

// TestEngineDifferentialScanWorkers is the determinism oracle for the
// partitioned columnar scan: on a predicate big enough to split under
// the default threshold, every worker count must produce bit-identical
// candidates, statistics, and EXPLAIN funnels — judged against the
// cycle-accurate sim engine every time, and against the native engine's
// own serial funnel.
func TestEngineDifferentialScanWorkers(t *testing.T) {
	n := 4 * scw.ParScanMinEntries
	clauses := bigFacts(t, n)
	sim, native := buildEnginePair(t, DefaultConfig(), "bigmod", clauses)
	goals := []string{
		"big(k3, X)",
		fmt.Sprintf("big(k7, %d)", 512*5+7),
		"big(nobody, X)",
		"big(X, Y)",
	}
	// FS1 scans the whole secondary file in one partitioned pass;
	// fs1+fs2 re-runs it through the chunked pipeline. (Software and
	// fs2-only modes never touch the columnar scan, and decoding all n
	// clauses per retrieval would dominate the sweep's runtime.)
	sweepModes := []SearchMode{ModeFS1, ModeFS1FS2}
	comparisons := 0
	for _, goalSrc := range goals {
		goal := parse.MustTerm(goalSrc)
		for _, mode := range sweepModes {
			serialFunnels := make(map[string]string)
			for _, workers := range sweepWorkerCounts() {
				native.SetScanWorkers(workers)
				if got := native.ScanWorkers(); got != workers {
					t.Fatalf("SetScanWorkers(%d) resolved to %d", workers, got)
				}
				comparisons += diffRetrieve(t, sim, native, goal, mode)
				p, err := native.Explain(goal, mode)
				if err != nil {
					t.Fatal(err)
				}
				key := goalSrc + "/" + mode.String()
				if base, ok := serialFunnels[key]; !ok {
					serialFunnels[key] = funnel(p)
				} else if got := funnel(p); got != base {
					t.Fatalf("%s workers=%d: EXPLAIN funnel diverged from serial:\n%s\nvs\n%s",
						key, workers, got, base)
				}
			}
		}
	}
	native.SetScanWorkers(0)
	if native.ScanWorkers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetScanWorkers(0) resolved to %d, want GOMAXPROCS", native.ScanWorkers())
	}
	if comparisons < 40 {
		t.Fatalf("only %d comparisons ran", comparisons)
	}
}

// TestEngineDifferentialScanWorkersMasked repeats the sweep over a
// generator-produced workload — variable-bearing heads exercise the
// masked-entry path of the partitioned scan — with the partition
// threshold lowered so a small predicate still splits.
func TestEngineDifferentialScanWorkersMasked(t *testing.T) {
	prev := scw.ParScanMinEntries
	scw.ParScanMinEntries = 32
	t.Cleanup(func() { scw.ParScanMinEntries = prev })
	clauses, queries := genWorkload(t, 20260808, "q", 2, 300)
	sim, native := buildEnginePair(t, DefaultConfig(), "gen", clauses)
	queries = append(queries, term.New("q", term.NewVar("A"), term.NewVar("B")))
	for _, workers := range sweepWorkerCounts() {
		native.SetScanWorkers(workers)
		for _, goal := range queries[:40] {
			for _, mode := range modes() {
				diffRetrieve(t, sim, native, goal, mode)
			}
		}
	}
}

// TestScanWorkersConfig covers the resolution rules: zero derives
// GOMAXPROCS, negatives clamp to serial, oversize clamps to
// MaxScanWorkers, and the sim engine carries the setting without using
// it.
func TestScanWorkersConfig(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{-3, 1},
		{1, 1},
		{7, 7},
		{MaxScanWorkers, MaxScanWorkers},
		{MaxScanWorkers + 9, MaxScanWorkers},
	} {
		cfg := DefaultConfig()
		cfg.Engine = EngineNative
		cfg.ScanWorkers = tc.in
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.ScanWorkers(); got != tc.want {
			t.Errorf("ScanWorkers=%d resolved to %d, want %d", tc.in, got, tc.want)
		}
	}
	cfg := DefaultConfig()
	cfg.ScanWorkers = 16
	r, err := New(cfg) // sim engine
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ScanWorkers(); got != 16 {
		t.Errorf("sim engine ScanWorkers = %d, want 16", got)
	}
	if _, err := r.Retrieve(parse.MustTerm("nothing(x)"), ModeFS1); err == nil {
		t.Error("unknown predicate should fail")
	}
}
