package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clare/internal/fault"
	"clare/internal/parse"
)

// TestChaosSoak hammers one retriever from many goroutines while every
// injection site misbehaves at once, with trip/probe churn running fast
// enough that boards cycle through tripped and probationary states
// throughout the run. The soak properties:
//
//   - no lost retrievals: Retrieve never returns an error for an
//     injected fault, whatever rung of the degradation ladder it lands on;
//   - soundness survives chaos: every retrieval's candidate set still
//     contains the one true unifier;
//   - pool invariants hold under concurrent sampling: leased never
//     exceeds the chassis width, a tripped unit is never leased, and the
//     free/leased/tripped split never exceeds the unit count;
//   - no deadlock: the whole run finishes under a watchdog.
//
// CI runs this under -race; the sampler goroutine doubles as a race
// detector probe against the lease/trip/readmit paths.
func TestChaosSoak(t *testing.T) {
	workers, iters := 8, 60
	if testing.Short() {
		workers, iters = 4, 15
	}

	cfg := DefaultConfig()
	cfg.Boards = 4
	cfg.TripThreshold = 2
	cfg.ProbePeriod = 2 * time.Millisecond
	cfg.RetryBackoff = time.Microsecond
	cfg.Faults = fault.New(20260805).
		Add(fault.Rule{Site: fault.SiteFS2, Probability: 0.25}).
		Add(fault.Rule{Site: fault.SiteDiskRead, Probability: 0.05}).
		Add(fault.Rule{Site: fault.SiteDiskIndex, Probability: 0.10}).
		Add(fault.Rule{Site: fault.SiteBus, Probability: 0.05}).
		Add(fault.Rule{Site: fault.SiteRetrieve, Probability: 0.05})
	const facts = 60
	r := faultyRetriever(t, cfg, facts)

	// Health sampler: poll pool invariants concurrently with the workers.
	stop := make(chan struct{})
	samplerDone := make(chan error, 1)
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := r.Health()
			if h.Leased > h.Boards {
				samplerDone <- fmt.Errorf("leased %d > %d boards", h.Leased, h.Boards)
				return
			}
			if h.Free+h.Leased+h.Tripped > h.Boards {
				samplerDone <- fmt.Errorf("free %d + leased %d + tripped %d > %d boards",
					h.Free, h.Leased, h.Tripped, h.Boards)
				return
			}
			for _, u := range h.Units {
				if u.Tripped && u.Leased {
					samplerDone <- fmt.Errorf("slot %d both tripped and leased", u.Slot)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	modes := []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var mu sync.Mutex
	var degradedRuns, retriedRuns int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*iters + i) % facts
				goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", k))
				rt, err := r.Retrieve(goal, modes[(w+i)%len(modes)])
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: lost retrieval: %v", w, i, err)
					return
				}
				trueU, _, err := rt.Evaluate()
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: evaluate: %v", w, i, err)
					return
				}
				if trueU != 1 {
					errs <- fmt.Errorf("worker %d iter %d: true unifiers = %d, want 1 (mode %v, degraded %q)",
						w, i, trueU, rt.Mode, rt.Stats.Degraded)
					return
				}
				mu.Lock()
				if rt.Stats.Degraded != "" {
					degradedRuns++
				}
				if rt.Stats.Retries > 0 {
					retriedRuns++
				}
				mu.Unlock()
			}
		}(w)
	}

	// Watchdog: the soak must terminate — a stuck lease or a lost wakeup
	// shows up here instead of as a test-binary timeout.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos soak deadlocked (watchdog)")
	}
	close(stop)
	if err, ok := <-samplerDone; ok && err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	h := r.Health()
	if h.Leased != 0 {
		t.Fatalf("units still leased after the run: %+v", h)
	}
	if r.cfg.Faults.Injected() == 0 {
		t.Fatal("chaos run injected no faults (rules misconfigured?)")
	}
	t.Logf("soak: %d retrievals, %d injected faults, %d degraded, %d retried, health %+v",
		workers*iters, r.cfg.Faults.Injected(), degradedRuns, retriedRuns, h)
}
