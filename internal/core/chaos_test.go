package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clare/internal/fault"
	"clare/internal/parse"
	"clare/internal/scw"
	"clare/internal/term"
)

// TestChaosSoak hammers one retriever from many goroutines while every
// injection site misbehaves at once, with trip/probe churn running fast
// enough that boards cycle through tripped and probationary states
// throughout the run. The soak properties:
//
//   - no lost retrievals: Retrieve never returns an error for an
//     injected fault, whatever rung of the degradation ladder it lands on;
//   - soundness survives chaos: every retrieval's candidate set still
//     contains the one true unifier;
//   - pool invariants hold under concurrent sampling: leased never
//     exceeds the chassis width, a tripped unit is never leased, and the
//     free/leased/tripped split never exceeds the unit count;
//   - no deadlock: the whole run finishes under a watchdog.
//
// CI runs this under -race; the sampler goroutine doubles as a race
// detector probe against the lease/trip/readmit paths.
func TestChaosSoak(t *testing.T) {
	workers, iters := 8, 60
	if testing.Short() {
		workers, iters = 4, 15
	}

	cfg := DefaultConfig()
	cfg.Boards = 4
	cfg.TripThreshold = 2
	cfg.ProbePeriod = 2 * time.Millisecond
	cfg.RetryBackoff = time.Microsecond
	cfg.Faults = fault.New(20260805).
		Add(fault.Rule{Site: fault.SiteFS2, Probability: 0.25}).
		Add(fault.Rule{Site: fault.SiteDiskRead, Probability: 0.05}).
		Add(fault.Rule{Site: fault.SiteDiskIndex, Probability: 0.10}).
		Add(fault.Rule{Site: fault.SiteBus, Probability: 0.05}).
		Add(fault.Rule{Site: fault.SiteRetrieve, Probability: 0.05})
	const facts = 60
	r := faultyRetriever(t, cfg, facts)

	// Health sampler: poll pool invariants concurrently with the workers.
	stop := make(chan struct{})
	samplerDone := make(chan error, 1)
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := r.Health()
			if h.Leased > h.Boards {
				samplerDone <- fmt.Errorf("leased %d > %d boards", h.Leased, h.Boards)
				return
			}
			if h.Free+h.Leased+h.Tripped > h.Boards {
				samplerDone <- fmt.Errorf("free %d + leased %d + tripped %d > %d boards",
					h.Free, h.Leased, h.Tripped, h.Boards)
				return
			}
			for _, u := range h.Units {
				if u.Tripped && u.Leased {
					samplerDone <- fmt.Errorf("slot %d both tripped and leased", u.Slot)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	modes := []SearchMode{ModeSoftware, ModeFS1, ModeFS2, ModeFS1FS2}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	var mu sync.Mutex
	var degradedRuns, retriedRuns int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*iters + i) % facts
				goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", k))
				rt, err := r.Retrieve(goal, modes[(w+i)%len(modes)])
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: lost retrieval: %v", w, i, err)
					return
				}
				trueU, _, err := rt.Evaluate()
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: evaluate: %v", w, i, err)
					return
				}
				if trueU != 1 {
					errs <- fmt.Errorf("worker %d iter %d: true unifiers = %d, want 1 (mode %v, degraded %q)",
						w, i, trueU, rt.Mode, rt.Stats.Degraded)
					return
				}
				mu.Lock()
				if rt.Stats.Degraded != "" {
					degradedRuns++
				}
				if rt.Stats.Retries > 0 {
					retriedRuns++
				}
				mu.Unlock()
			}
		}(w)
	}

	// Watchdog: the soak must terminate — a stuck lease or a lost wakeup
	// shows up here instead of as a test-binary timeout.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos soak deadlocked (watchdog)")
	}
	close(stop)
	if err, ok := <-samplerDone; ok && err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	h := r.Health()
	if h.Leased != 0 {
		t.Fatalf("units still leased after the run: %+v", h)
	}
	if r.cfg.Faults.Injected() == 0 {
		t.Fatal("chaos run injected no faults (rules misconfigured?)")
	}
	t.Logf("soak: %d retrievals, %d injected faults, %d degraded, %d retried, health %+v",
		workers*iters, r.cfg.Faults.Injected(), degradedRuns, retriedRuns, h)
}

// TestChaosParallelScan hammers the partitioned columnar scan from many
// goroutines on a native-engine retriever while the disk.read injection
// site misbehaves, with the partition threshold lowered so every
// retrieval really fans out across scan workers. The properties:
//
//   - no lost candidates: every retrieval (degraded or not) still
//     contains its one true unifier, and fault-free retrievals return
//     exactly the serial reference's candidate addresses;
//   - scan-pool invariants hold under concurrent sampling: live helper
//     workers never exceed the pool bound;
//   - no deadlock: a stuck pool handoff shows up on the watchdog, not
//     as a test-binary timeout.
//
// CI runs this under -race: concurrent retrievals share one ScanPool,
// so the sampler and the workers double as race probes on the
// submit/spawn/idle-exit paths.
func TestChaosParallelScan(t *testing.T) {
	goroutines, iters := 8, 50
	if testing.Short() {
		goroutines, iters = 4, 15
	}
	prev := scw.ParScanMinEntries
	scw.ParScanMinEntries = 64
	t.Cleanup(func() { scw.ParScanMinEntries = prev })

	const facts = 1024
	cfg := DefaultConfig()
	cfg.Engine = EngineNative
	cfg.ScanWorkers = 8
	cfg.Boards = 4
	cfg.RetryBackoff = time.Microsecond
	cfg.Faults = fault.New(20260808).
		Add(fault.Rule{Site: fault.SiteDiskRead, Probability: 0.10}).
		Add(fault.Rule{Site: fault.SiteDiskIndex, Probability: 0.05})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clauses := make([]ClauseTerm, facts)
	for i := range clauses {
		clauses[i] = ClauseTerm{Head: term.New("married_couple",
			term.Atom(fmt.Sprintf("husband%d", i)), term.Atom(fmt.Sprintf("wife%d", i)))}
	}
	if _, err := r.AddClauses("family", clauses); err != nil {
		t.Fatal(err)
	}
	// Fault-free serial reference for exact candidate comparison.
	ref, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.AddClauses("family", clauses); err != nil {
		t.Fatal(err)
	}

	pool := r.scanPool
	if pool == nil {
		t.Fatal("native retriever has no scan pool")
	}
	maxLive := pool.MaxHelpers() + 1 // +1 for a transient idle-exit re-admission
	stop := make(chan struct{})
	samplerDone := make(chan error, 1)
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if live := pool.LiveWorkers(); live > maxLive {
				samplerDone <- fmt.Errorf("scan pool live workers %d > bound %d", live, maxLive)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	chaosModes := []SearchMode{ModeFS1, ModeFS1FS2}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*iters + i) % facts
				goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", k))
				mode := chaosModes[(w+i)%len(chaosModes)]
				rt, err := r.Retrieve(goal, mode)
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: lost retrieval: %v", w, i, err)
					return
				}
				trueU, _, err := rt.Evaluate()
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: evaluate: %v", w, i, err)
					return
				}
				if trueU != 1 {
					errs <- fmt.Errorf("worker %d iter %d: true unifiers = %d, want 1 (degraded %q)",
						w, i, trueU, rt.Stats.Degraded)
					return
				}
				if rt.Stats.Degraded == "" && rt.Stats.Faults == 0 {
					// Clean run: candidates must match the serial
					// fault-free reference exactly — a dropped partition
					// or a mis-merged buffer shows up here.
					rrt, err := ref.Retrieve(goal, mode)
					if err != nil {
						errs <- err
						return
					}
					if len(rt.Candidates) != len(rrt.Candidates) {
						errs <- fmt.Errorf("worker %d iter %d: %d candidates, reference %d",
							w, i, len(rt.Candidates), len(rrt.Candidates))
						return
					}
					for c := range rt.Candidates {
						if rt.Candidates[c].Addr != rrt.Candidates[c].Addr {
							errs <- fmt.Errorf("worker %d iter %d: candidate %d addr %d, reference %d",
								w, i, c, rt.Candidates[c].Addr, rrt.Candidates[c].Addr)
							return
						}
					}
				}
			}
		}(w)
	}

	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatal("parallel-scan chaos run deadlocked (watchdog)")
	}
	close(stop)
	if err, ok := <-samplerDone; ok && err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if r.cfg.Faults.Injected() == 0 {
		t.Fatal("chaos run injected no faults (rules misconfigured?)")
	}
	t.Logf("parallel chaos: %d retrievals, %d injected faults, pool live %d/%d",
		goroutines*iters, r.cfg.Faults.Injected(), pool.LiveWorkers(), maxLive)
}
