// Native execution engine: the hardware-filter search modes (b)/(c)/(d)
// re-implemented as tight host code behind the same Retrieve interface.
// The simulated engine (core.go) walks the cycle-accurate hardware
// protocol — VME register traffic, the Double Buffer, per-operation FS2
// cycle counts — and is the repository's ground truth. Mode (a), software
// only, is defined by the host reference matcher (package ptu) and is
// shared between engines. The native engine runs the filter algorithms
// the way a CPU wants to run them:
//
//   - FS1 scans sweep the columnar secondary-file view (scw.Columnar):
//     one 64-bit AND/compare per entry against the union of the query's
//     argument codewords, instead of a per-entry per-argument loop.
//   - FS2 filtering runs fs2.NativeMatcher directly on the stored clause
//     heads — the PIF records already decoded into the predicate's slab —
//     with fixed-capacity variable stores and zero allocations per clause.
//   - Candidate clauses are reached by index position (entry j is clause
//     j), skipping the address-map lookup, and fetch accounting uses the
//     exact run size (disk.FetchRun) instead of a truncated average.
//
// Results are bit-identical to the simulated engine: same candidates in
// the same order, same AfterFS1/MaskedHits/reject-split statistics —
// the contract native_test.go enforces differentially. The simulated-time
// ledger differs in one documented way: FS2 match time is zero (the
// native engine has no cycle model; wall-clock is its first-class clock),
// so Stats.Total in FS2-bearing modes reflects a stream whose matching is
// free. Drive accounting and drive fault sites are preserved — the
// disk-degradation ladder (unreadable index → FS2-only, read fault →
// retry → host) behaves identically — but the board and bus protocol
// sites are bypassed along with the protocol itself. See DESIGN.md §11.
package core

import (
	"fmt"
	"time"

	"clare/internal/clausefile"
	"clare/internal/fs2"
	"clare/internal/scw"
	"clare/internal/term"
)

// nativeArena is the per-retrieval scratch state of the native engine:
// the partitioned scan buffer (merged survivors + one ScanBuf and task
// slot per worker partition) and an FS2 matcher with embedded variable
// stores. Arenas are recycled through Retriever.natPool, so steady-state
// retrievals allocate nothing on the scan or match paths — at any worker
// count, since the per-partition buffers live in the arena too.
type nativeArena struct {
	pbuf scw.ParScanBuf
	nm   *fs2.NativeMatcher
}

// arena leases a native arena from the pool, building one on first use.
func (r *Retriever) arena() *nativeArena {
	if a, ok := r.natPool.Get().(*nativeArena); ok {
		return a
	}
	nm, err := fs2.NewNativeMatcher(r.cfg.Microprogram)
	if err != nil {
		// NewWithSymbols validated the microprogram for native mode.
		panic(fmt.Sprintf("core: native arena: %v", err))
	}
	return &nativeArena{nm: nm}
}

// retrieveFS1Native is mode (b) on the native engine: a partitioned
// columnar sweep of the secondary file (up to ScanWorkers goroutines,
// survivors merged in partition order — bit-identical to a serial scan),
// then a position-indexed gather of the surviving clause records with
// exact-size fetch accounting.
func (r *Retriever) retrieveFS1Native(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	qd, _, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	a := r.arena()
	defer r.natPool.Put(a)

	scanSpan := rt.trace.Span(nil, stageFS1Scan)
	scanStart := time.Now()
	pred.File.Index().Columnar().ParScanInto(qd, r.ScanWorkers(), r.scanPool, &a.pbuf)
	buf := &a.pbuf.Out
	rt.Stats.IndexBytes = buf.BytesScanned
	diskIndex, err := u.drive.IndexScan(buf.BytesScanned)
	if err != nil {
		return err
	}
	// Same delivery model as the sim path: FS1 outruns the disk.
	fs1Time := scw.ScanTime(buf.BytesScanned)
	if diskIndex > fs1Time {
		fs1Time = diskIndex
	}
	rt.Stats.FS1Scan = fs1Time
	rt.Stats.AfterFS1 = len(buf.Pos)
	rt.Stats.MaskedHits = buf.MaskedHits
	rt.wall.fs1 += time.Since(scanStart)
	if scanSpan != nil {
		scanSpan.AddSim(fs1Time)
		scanSpan.SetAttr("survivors", fmt.Sprint(len(buf.Pos)))
		scanSpan.End()
	}

	fetchSpan := rt.trace.Span(nil, stageDiskFetch)
	fetchStart := time.Now()
	all := pred.File.All()
	candidates := make([]*clausefile.StoredClause, 0, len(buf.Pos))
	fetchBytes := 0
	for _, p := range buf.Pos {
		sc := all[p]
		fetchBytes += sc.SizeBytes
		candidates = append(candidates, sc)
	}
	rt.Stats.ClauseBytes = fetchBytes
	if rt.Stats.DiskFetch, err = u.drive.FetchRun(len(candidates), fetchBytes); err != nil {
		return err
	}
	rt.Candidates = candidates
	rt.wall.fetch += time.Since(fetchStart)
	if fetchSpan != nil {
		fetchSpan.AddSim(rt.Stats.DiskFetch)
		fetchSpan.SetAttr("bytes", fmt.Sprint(fetchBytes))
		fetchSpan.End()
	}
	rt.Stats.Total = rt.Stats.FS1Scan + rt.Stats.DiskFetch
	return nil
}

// retrieveFS2AllNative is mode (c) on the native engine: the whole clause
// file filtered through the native matcher. The stored heads are already
// decoded (slab views), so "streaming" is a pointer walk; the drive model
// still accounts (and can fault) the underlying sequential scan. FS2
// match time is zero in the simulated ledger — Stats.Total is the stream
// with free matching.
func (r *Retriever) retrieveFS2AllNative(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	all := pred.File.All()
	rt.Stats.AfterFS1 = len(all)
	rt.Stats.ClauseBytes = pred.File.SizeBytes()
	diskTime, err := u.drive.Scan(pred.File.SizeBytes())
	if err != nil {
		return err
	}
	if sp := rt.trace.Span(nil, stageDiskFetch); sp != nil {
		sp.AddSim(diskTime)
		sp.SetAttr("bytes", fmt.Sprint(pred.File.SizeBytes()))
		sp.End()
	}
	_, q, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	a := r.arena()
	defer r.natPool.Put(a)
	if err := a.nm.SetQuery(q); err != nil {
		return err
	}
	matchSpan := rt.trace.Span(nil, stageFS2Match)
	start := time.Now()
	r.nativeFilter(a.nm, all, rt)
	rt.wall.fs2 += time.Since(start)
	if matchSpan != nil {
		matchSpan.SetAttr("examined", fmt.Sprint(len(all)))
		matchSpan.End()
	}
	rt.Stats.DiskFetch = diskTime
	rt.Stats.Total = diskTime
	return nil
}

// retrieveFS1FS2Native is mode (d) on the native engine, keeping the sim
// path's chunked pipeline shape (and its chunked index-stream accounting)
// with the columnar scan and native matcher doing the work per chunk. In
// the simulated pipeline the per-chunk match side is free, so the slower
// side of each downstream step is always the fetch.
func (r *Retriever) retrieveFS1FS2Native(goal term.Term, pred *Predicate, rt *Retrieval, u *boardUnit) error {
	qd, q, err := r.encodeQuery(goal, rt)
	if err != nil {
		return err
	}
	ix := pred.File.Index()
	n := ix.Len()
	if n == 0 {
		return nil
	}
	chunk := r.cfg.StreamChunkEntries
	if chunk <= 0 {
		chunk = r.cfg.Disk.TrackBytes / scw.EntrySize
		if chunk < 1 {
			chunk = 1
		}
	}
	a := r.arena()
	defer r.natPool.Put(a)
	if err := a.nm.SetQuery(q); err != nil {
		return err
	}
	col := ix.Columnar()
	all := pred.File.All()

	access, err := u.drive.Access()
	if err != nil {
		return err
	}
	var scanChunks, matchChunks []time.Duration
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		chunkSpan := rt.trace.Span(nil, "chunk")
		if chunkSpan != nil {
			chunkSpan.SetAttr("entries", fmt.Sprintf("%d-%d", lo, hi))
		}
		scanSpan := rt.trace.Span(chunkSpan, stageFS1Scan)
		scanStart := time.Now()
		// Chunks default to one disk track (~1.5k entries), well under
		// scw.ParScanMinEntries, so the partitioned call degenerates to a
		// serial sweep unless StreamChunkEntries is configured large.
		col.ParScanRangeInto(qd, lo, hi, r.ScanWorkers(), r.scanPool, &a.pbuf)
		buf := &a.pbuf.Out
		rt.Stats.IndexBytes += buf.BytesScanned
		sTime := scw.ScanTime(buf.BytesScanned)
		dt, err := u.drive.Stream(buf.BytesScanned)
		if err != nil {
			return err
		}
		if dt > sTime {
			sTime = dt
		}
		rt.Stats.FS1Scan += sTime
		rt.Stats.AfterFS1 += len(buf.Pos)
		rt.Stats.MaskedHits += buf.MaskedHits
		scanChunks = append(scanChunks, sTime)
		rt.wall.fs1 += time.Since(scanStart)
		if scanSpan != nil {
			scanSpan.AddSim(sTime)
			scanSpan.SetAttr("survivors", fmt.Sprint(len(buf.Pos)))
			scanSpan.End()
		}

		fetchSpan := rt.trace.Span(chunkSpan, stageDiskFetch)
		fetchStart := time.Now()
		fetchBytes := 0
		for _, p := range buf.Pos {
			fetchBytes += all[p].SizeBytes
		}
		rt.Stats.ClauseBytes += fetchBytes
		fetch, err := u.drive.FetchRun(len(buf.Pos), fetchBytes)
		if err != nil {
			return err
		}
		rt.Stats.DiskFetch += fetch
		rt.wall.fetch += time.Since(fetchStart)
		if fetchSpan != nil {
			fetchSpan.AddSim(fetch)
			fetchSpan.SetAttr("bytes", fmt.Sprint(fetchBytes))
			fetchSpan.End()
		}

		matchSpan := rt.trace.Span(chunkSpan, stageFS2Match)
		matchStart := time.Now()
		examined := len(buf.Pos)
		for _, p := range buf.Pos {
			sc := all[p]
			if a.nm.Match(sc.Head) {
				rt.Candidates = append(rt.Candidates, sc)
			} else if a.nm.LastRejectXB() {
				rt.Stats.FS2RejectsXB++
			} else {
				rt.Stats.FS2RejectsLevel++
			}
		}
		rt.wall.fs2 += time.Since(matchStart)
		if matchSpan != nil {
			matchSpan.SetAttr("examined", fmt.Sprint(examined))
			matchSpan.End()
		}
		matchChunks = append(matchChunks, fetch)
		chunkSpan.End()
	}
	rt.Stats.FS1Scan += access
	rt.Stats.Chunks = len(scanChunks)
	rt.Stats.Total = pipelineTime(access, scanChunks, matchChunks)
	return nil
}

// nativeFilter streams stored clauses through the native matcher,
// appending the satisfiers to rt.Candidates and splitting rejects into
// the level/cross-binding counters — the native engine's counterpart of
// searchFS2, with no batching (there is no Result Memory to overflow).
func (r *Retriever) nativeFilter(nm *fs2.NativeMatcher, in []*clausefile.StoredClause, rt *Retrieval) {
	for _, sc := range in {
		if nm.Match(sc.Head) {
			rt.Candidates = append(rt.Candidates, sc)
		} else if nm.LastRejectXB() {
			rt.Stats.FS2RejectsXB++
		} else {
			rt.Stats.FS2RejectsLevel++
		}
	}
}
