package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clare/internal/parse"
	"clare/internal/term"
)

// buildRetriever is familyRetriever with a configurable Config.
func buildRetriever(t *testing.T, cfg Config, n, sameEvery int) *Retriever {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clauses := make([]ClauseTerm, n)
	for i := 0; i < n; i++ {
		a := term.Atom(fmt.Sprintf("husband%d", i))
		b := term.Atom(fmt.Sprintf("wife%d", i))
		if sameEvery > 0 && i%sameEvery == 0 {
			b = a
		}
		clauses[i] = ClauseTerm{Head: term.New("married_couple", a, b)}
	}
	if _, err := r.AddClauses("family", clauses); err != nil {
		t.Fatal(err)
	}
	return r
}

func poolGoals() []string {
	return []string{
		"married_couple(husband3, X)",
		"married_couple(X, Y)",
		"married_couple(S, S)",
		"married_couple(husband8, wife8)",
		"married_couple(nobody, X)",
		"married_couple(husband12, _)",
	}
}

func addrsOf(rt *Retrieval) []uint32 {
	out := make([]uint32, len(rt.Candidates))
	for i, sc := range rt.Candidates {
		out[i] = sc.Addr
	}
	return out
}

// TestPooledMatchesSingleBoard: retrieval through a multi-board pool must
// return byte-identical candidates and identical per-retrieval stats to
// the paper's single-board configuration, in every mode.
func TestPooledMatchesSingleBoard(t *testing.T) {
	single := buildRetriever(t, DefaultConfig(), 80, 5)
	cfg := DefaultConfig()
	cfg.Boards = 4
	pooled := buildRetriever(t, cfg, 80, 5)

	for _, g := range poolGoals() {
		for _, mode := range modes() {
			want, err := single.Retrieve(parse.MustTerm(g), mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pooled.Retrieve(parse.MustTerm(g), mode)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(addrsOf(got)) != fmt.Sprint(addrsOf(want)) {
				t.Errorf("%s %v: candidates %v, want %v", g, mode, addrsOf(got), addrsOf(want))
			}
			if got.Stats != want.Stats {
				t.Errorf("%s %v: stats %+v, want %+v", g, mode, got.Stats, want.Stats)
			}
		}
	}
}

// TestConcurrentRetrieveMatchesSerial: many goroutines hammering one
// pooled retriever must each see exactly the answer the serial path
// produces (run under -race to also prove memory safety).
func TestConcurrentRetrieveMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 4
	r := buildRetriever(t, cfg, 80, 5)

	goals := poolGoals()
	want := make(map[string]string, len(goals))
	for _, g := range goals {
		rt, err := r.Retrieve(parse.MustTerm(g), ModeFS1FS2)
		if err != nil {
			t.Fatal(err)
		}
		want[g] = fmt.Sprint(addrsOf(rt))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				g := goals[(w+i)%len(goals)]
				rt, err := r.Retrieve(parse.MustTerm(g), ModeFS1FS2)
				if err != nil {
					errs <- err
					return
				}
				if got := fmt.Sprint(addrsOf(rt)); got != want[g] {
					errs <- fmt.Errorf("%s: candidates %s, want %s", g, got, want[g])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryCacheHits: repeating a goal shape must hit the cache, and a
// cache hit must not change the retrieval.
func TestQueryCacheHits(t *testing.T) {
	r := buildRetriever(t, DefaultConfig(), 40, 0)
	first, err := r.Retrieve(parse.MustTerm("married_couple(husband3, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.QueryCacheHit {
		t.Error("first retrieval reported a cache hit")
	}
	// Same shape, different variable names: must hit.
	second, err := r.Retrieve(parse.MustTerm("married_couple(husband3, Anyone)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.QueryCacheHit {
		t.Error("repeat retrieval missed the cache")
	}
	if fmt.Sprint(addrsOf(second)) != fmt.Sprint(addrsOf(first)) {
		t.Errorf("cache hit changed candidates: %v vs %v", addrsOf(second), addrsOf(first))
	}
	cs := r.QueryCache()
	if cs.Hits < 1 || cs.Size < 1 {
		t.Errorf("cache stats %+v, want ≥1 hit and ≥1 entry", cs)
	}

	// p(X, X) must not share an entry with p(X, Y).
	aliased, err := r.Retrieve(parse.MustTerm("married_couple(S, S)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if aliased.Stats.QueryCacheHit {
		t.Error("married_couple(S,S) wrongly hit the married_couple(_,X) entry")
	}
}

// TestQueryCacheDisabled: a negative cap turns the cache off entirely.
func TestQueryCacheDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheSize = -1
	r := buildRetriever(t, cfg, 20, 0)
	for i := 0; i < 2; i++ {
		rt, err := r.Retrieve(parse.MustTerm("married_couple(husband3, X)"), ModeFS1FS2)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats.QueryCacheHit {
			t.Error("disabled cache reported a hit")
		}
	}
	if cs := r.QueryCache(); cs != (QueryCacheStats{}) {
		t.Errorf("disabled cache stats %+v, want zeros", cs)
	}
}

// TestStreamingChunks: with a small chunk size the fs1+fs2 path must
// stream in several chunks, keep the same candidates, and account a
// Total that is at least each stage's own time (nothing is free) but at
// most the serial sum (the overlap can only help).
func TestStreamingChunks(t *testing.T) {
	base := buildRetriever(t, DefaultConfig(), 120, 6)
	cfg := DefaultConfig()
	cfg.StreamChunkEntries = 16
	chunked := buildRetriever(t, cfg, 120, 6)

	for _, g := range poolGoals() {
		want, err := base.Retrieve(parse.MustTerm(g), ModeFS1FS2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chunked.Retrieve(parse.MustTerm(g), ModeFS1FS2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Chunks < 2 {
			t.Errorf("%s: chunks = %d, want ≥ 2", g, got.Stats.Chunks)
		}
		if fmt.Sprint(addrsOf(got)) != fmt.Sprint(addrsOf(want)) {
			t.Errorf("%s: chunked candidates %v, want %v", g, addrsOf(got), addrsOf(want))
		}
		sum := got.Stats.FS1Scan + got.Stats.DiskFetch + got.Stats.FS2Match
		if got.Stats.Total > sum {
			t.Errorf("%s: Total %v exceeds serial sum %v", g, got.Stats.Total, sum)
		}
		for _, stage := range []struct {
			name string
			d    interface{ Nanoseconds() int64 }
		}{{"FS1Scan", got.Stats.FS1Scan}, {"FS2Match", got.Stats.FS2Match}} {
			if got.Stats.Total.Nanoseconds() < stage.d.Nanoseconds() {
				t.Errorf("%s: Total %v beats %s %v", g, got.Stats.Total, stage.name, stage.d)
			}
		}
	}
}

// TestPredicatesSorted: Predicates() must come back ordered by
// functor/arity regardless of load order.
func TestPredicatesSorted(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zebra", "alpha", "mid"} {
		cl := []ClauseTerm{{Head: term.New(name, term.Atom("a"), term.Atom("b"))}}
		if _, err := r.AddClauses("m", cl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.AddClauses("m", []ClauseTerm{{Head: term.New("alpha", term.Atom("x"))}}); err != nil {
		t.Fatal(err)
	}
	got := r.Predicates()
	want := []Indicator{
		{Functor: "alpha", Arity: 1},
		{Functor: "alpha", Arity: 2},
		{Functor: "mid", Arity: 2},
		{Functor: "zebra", Arity: 2},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Predicates() = %v, want %v", got, want)
	}
}

// TestMakespan: the closed-system schedule must serialise on one board,
// divide by the chassis width when clients keep it busy, and be limited
// by the client count when that is smaller.
func TestMakespan(t *testing.T) {
	service := make([]time.Duration, 64)
	for i := range service {
		service[i] = 10 * time.Millisecond
	}
	serial := Makespan(service, 1, 8)
	if want := 640 * time.Millisecond; serial != want {
		t.Errorf("1 board: makespan %v, want %v", serial, want)
	}
	quad := Makespan(service, 4, 8)
	if want := 160 * time.Millisecond; quad != want {
		t.Errorf("4 boards: makespan %v, want %v", quad, want)
	}
	// Two clients can keep at most two boards busy.
	clientBound := Makespan(service, 8, 2)
	if want := 320 * time.Millisecond; clientBound != want {
		t.Errorf("8 boards 2 clients: makespan %v, want %v", clientBound, want)
	}
	if Makespan(nil, 4, 4) != 0 {
		t.Error("empty schedule has nonzero makespan")
	}
}

// TestBoardPoolLease: the pool must hand out distinct units under
// contention and always prefer slot 0 when idle.
func TestBoardPoolLease(t *testing.T) {
	cfg := DefaultConfig()
	pool, err := newBoardPool(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	u0 := pool.lease()
	if u0.slot != 0 {
		t.Errorf("idle lease slot = %d, want 0", u0.slot)
	}
	u1 := pool.lease()
	u2 := pool.lease()
	if u1 == u0 || u2 == u0 || u1 == u2 {
		t.Error("pool leased the same unit twice")
	}
	done := make(chan *boardUnit)
	go func() { done <- pool.lease() }()
	pool.release(u2)
	if got := <-done; got != u2 {
		t.Errorf("blocked lease got slot %d, want %d", got.slot, u2.slot)
	}
	pool.release(u0)
	pool.release(u1)
}
