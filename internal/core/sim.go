package core

import "time"

// Makespan is the simulated completion time of a closed multi-client
// system over an N-board chassis: each of `clients` clients issues its
// next retrieval the moment its previous one completes, and every
// retrieval occupies the earliest-free of `boards` board units for its
// service time. service[i] is query i's simulated retrieval time
// (StageStats.Total), issued round-robin across the clients in order.
//
// Aggregate simulated throughput is then len(service) / Makespan: with
// one board the queries serialise (the paper's configuration); with N
// boards and at least N clients the makespan approaches the serial sum
// divided by N until the client count, not the chassis, is the limit.
func Makespan(service []time.Duration, boards, clients int) time.Duration {
	if boards < 1 {
		boards = 1
	}
	if clients < 1 {
		clients = 1
	}
	clientFree := make([]time.Duration, clients)
	boardFree := make([]time.Duration, boards)
	var makespan time.Duration
	for i, s := range service {
		c := i % clients
		b := 0
		for j := 1; j < boards; j++ {
			if boardFree[j] < boardFree[b] {
				b = j
			}
		}
		start := clientFree[c]
		if boardFree[b] > start {
			start = boardFree[b]
		}
		end := start + s
		clientFree[c] = end
		boardFree[b] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
