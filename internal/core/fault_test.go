package core

import (
	"fmt"
	"testing"
	"time"

	"clare/internal/fault"
	"clare/internal/parse"
	"clare/internal/telemetry"
	"clare/internal/term"
)

// faultyRetriever builds a retriever over the family workload with the
// given fault-injection configuration.
func faultyRetriever(t *testing.T, cfg Config, n int) *Retriever {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clauses := make([]ClauseTerm, n)
	for i := 0; i < n; i++ {
		clauses[i] = ClauseTerm{Head: term.New("married_couple",
			term.Atom(fmt.Sprintf("husband%d", i)), term.Atom(fmt.Sprintf("wife%d", i)))}
	}
	if _, err := r.AddClauses("family", clauses); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetryLandsOnAnotherBoard(t *testing.T) {
	// Slot 0's board always faults; slot 1 is healthy. The first attempt
	// (the free stack hands out slot 0 first) faults, and the bounded
	// retry must land on slot 1 and succeed without degrading.
	cfg := DefaultConfig()
	cfg.Boards = 2
	cfg.Faults = fault.New(1).Add(fault.Rule{Site: fault.SiteFS2, Key: "0", Probability: 1})
	cfg.RetryBackoff = time.Microsecond
	r := faultyRetriever(t, cfg, 40)

	rt, err := r.Retrieve(parse.MustTerm("married_couple(husband3, X)"), ModeFS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Retries != 1 || rt.Stats.Faults != 1 || rt.Stats.Degraded != "" {
		t.Fatalf("stats = %+v, want one retried fault, no degradation", rt.Stats)
	}
	trueU, _, err := rt.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if trueU != 1 {
		t.Fatalf("true unifiers = %d, want 1", trueU)
	}
}

func TestIndexFaultDegradesToFS2(t *testing.T) {
	// The FS1 index stream is permanently unreadable. An fs1+fs2
	// retrieval must fall back to a full FS2 scan of the clause file —
	// which never touches the index — and still return every unifier.
	cfg := DefaultConfig()
	cfg.Faults = fault.New(1).Add(fault.Rule{Site: fault.SiteDiskIndex, Probability: 1})
	cfg.RetryBackoff = time.Microsecond
	r := faultyRetriever(t, cfg, 40)

	for _, mode := range []SearchMode{ModeFS1FS2, ModeFS1} {
		rt, err := r.Retrieve(parse.MustTerm("married_couple(husband7, X)"), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rt.Stats.Degraded != "fs2" {
			t.Fatalf("%v: Degraded = %q, want fs2", mode, rt.Stats.Degraded)
		}
		if rt.Mode != mode {
			t.Fatalf("%v: requested mode not preserved: %v", mode, rt.Mode)
		}
		trueU, _, err := rt.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if trueU != 1 {
			t.Fatalf("%v: true unifiers = %d, want 1", mode, trueU)
		}
	}
}

func TestTripProbationAndReadmit(t *testing.T) {
	// Two consecutive faults trip the single board; the retrieval that
	// tripped it completes host-only. After the cool-off the board is
	// re-admitted on probation and serves cleanly (the rule's budget is
	// spent).
	cfg := DefaultConfig()
	cfg.Faults = fault.New(1).Add(fault.Rule{Site: fault.SiteFS2, Probability: 1, Limit: 2})
	cfg.TripThreshold = 2
	cfg.ProbePeriod = 20 * time.Millisecond
	cfg.RetryBackoff = time.Microsecond
	r := faultyRetriever(t, cfg, 30)
	goal := "married_couple(husband5, X)"

	rt, err := r.Retrieve(parse.MustTerm(goal), ModeFS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Degraded != "host" || rt.Stats.Faults != 2 {
		t.Fatalf("stats = %+v, want host-only after 2 faults", rt.Stats)
	}
	if trueU, _, err := rt.Evaluate(); err != nil || trueU != 1 {
		t.Fatalf("host-only evaluate = %d, %v", trueU, err)
	}
	h := r.Health()
	if h.Tripped != 1 || h.Trips != 1 || h.Free != 0 {
		t.Fatalf("health after trip = %+v", h)
	}

	time.Sleep(cfg.ProbePeriod + 10*time.Millisecond)
	rt, err = r.Retrieve(parse.MustTerm(goal), ModeFS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Degraded != "" || rt.Stats.Faults != 0 {
		t.Fatalf("post-readmit stats = %+v, want clean hardware retrieval", rt.Stats)
	}
	h = r.Health()
	if h.Readmits != 1 || h.Tripped != 0 || h.Free != 1 {
		t.Fatalf("health after readmit = %+v", h)
	}
}

func TestAllBoardsTrippedHostOnlyStillCorrect(t *testing.T) {
	// The acceptance scenario: every board in an 8-slot chassis faults on
	// every FS2 search, so the whole chassis trips, and retrievals must
	// keep returning the correct unifier set via host-only degradation.
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Boards = 8
	cfg.Faults = fault.New(7).Add(fault.Rule{Site: fault.SiteFS2, Probability: 1})
	cfg.ProbePeriod = time.Hour // no re-admission during the test
	cfg.RetryBackoff = time.Microsecond
	cfg.Metrics = reg
	r := faultyRetriever(t, cfg, 50)

	sawHost := 0
	for i := 0; i < 30; i++ {
		goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", i%50))
		rt, err := r.Retrieve(goal, ModeFS2)
		if err != nil {
			t.Fatalf("retrieval %d: %v", i, err)
		}
		if rt.Stats.Degraded == "host" {
			sawHost++
		}
		trueU, _, err := rt.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if trueU != 1 {
			t.Fatalf("retrieval %d: true unifiers = %d, want 1", i, trueU)
		}
	}
	if sawHost != 30 {
		t.Fatalf("host-only retrievals = %d/30 (every FS2 attempt faults)", sawHost)
	}
	h := r.Health()
	if h.Tripped != 8 {
		t.Fatalf("tripped boards = %d, want the whole chassis", h.Tripped)
	}
	for _, u := range h.Units {
		if u.Leased {
			t.Fatalf("slot %d still leased after the run", u.Slot)
		}
	}

	byName := map[string]float64{}
	for _, sv := range reg.Gather() {
		key := sv.Name
		if to := sv.Labels["to"]; to != "" {
			key += ":" + to
		}
		byName[key] += sv.Value
	}
	if byName["clare_boards_tripped"] != 8 {
		t.Errorf("clare_boards_tripped = %v, want 8", byName["clare_boards_tripped"])
	}
	if byName["clare_board_trips_total"] != 8 {
		t.Errorf("clare_board_trips_total = %v, want 8", byName["clare_board_trips_total"])
	}
	if byName["clare_degraded_retrievals_total:host"] != 30 {
		t.Errorf("degraded-to-host = %v, want 30", byName["clare_degraded_retrievals_total:host"])
	}
	if byName["clare_faults_injected_total"] == 0 {
		t.Error("no injected faults recorded")
	}
	if byName["clare_retrieval_retries_total"] == 0 {
		t.Error("no retries recorded")
	}
}

func TestPredicateTargetedFault(t *testing.T) {
	// The core.retrieve site is keyed by predicate indicator: one faulted
	// probe fails the whole attempt before any hardware is touched, and
	// the bounded retry completes the retrieval.
	cfg := DefaultConfig()
	cfg.Faults = fault.New(1).Add(fault.Rule{
		Site: fault.SiteRetrieve, Key: "married_couple/2", Nth: 1, Limit: 1})
	cfg.RetryBackoff = time.Microsecond
	r := faultyRetriever(t, cfg, 20)

	rt, err := r.Retrieve(parse.MustTerm("married_couple(husband2, X)"), ModeFS1FS2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Retries != 1 || rt.Stats.Faults != 1 || rt.Stats.Degraded != "" {
		t.Fatalf("stats = %+v, want one retried predicate-targeted fault", rt.Stats)
	}
	if trueU, _, err := rt.Evaluate(); err != nil || trueU != 1 {
		t.Fatalf("evaluate = %d, %v", trueU, err)
	}
}
