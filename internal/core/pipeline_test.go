package core

import (
	"testing"
	"time"
)

func d(us int) time.Duration { return time.Duration(us) * time.Microsecond }

func TestPipelineTimeEmpty(t *testing.T) {
	if got := pipelineTime(d(10), nil, nil); got != d(10) {
		t.Errorf("empty stream = %v, want access only", got)
	}
}

func TestPipelineTimeDiskBound(t *testing.T) {
	// Matching (1µs) hides behind every transfer (10µs): total = access +
	// Σxfer + final match.
	xfers := []time.Duration{d(10), d(10), d(10)}
	matches := []time.Duration{d(1), d(1), d(1)}
	want := d(5) + d(30) + d(1)
	if got := pipelineTime(d(5), xfers, matches); got != want {
		t.Errorf("disk-bound = %v, want %v", got, want)
	}
}

func TestPipelineTimeMatchBound(t *testing.T) {
	// Matching (10µs) dominates transfers (1µs): total = access + xfer0 +
	// Σ match (each step waits on the previous clause's match).
	xfers := []time.Duration{d(1), d(1), d(1)}
	matches := []time.Duration{d(10), d(10), d(10)}
	want := d(5) + d(1) + d(10) + d(10) + d(10)
	if got := pipelineTime(d(5), xfers, matches); got != want {
		t.Errorf("match-bound = %v, want %v", got, want)
	}
}

func TestPipelineTimeNeverBeatsEitherBound(t *testing.T) {
	xfers := []time.Duration{d(3), d(7), d(2), d(9)}
	matches := []time.Duration{d(5), d(1), d(8), d(2)}
	got := pipelineTime(0, xfers, matches)
	var sumX, sumM time.Duration
	for _, x := range xfers {
		sumX += x
	}
	for _, m := range matches {
		sumM += m
	}
	if got < sumX || got < sumM {
		t.Errorf("pipeline %v beats a component bound (xfer %v, match %v)", got, sumX, sumM)
	}
	if got > sumX+sumM {
		t.Errorf("pipeline %v worse than fully sequential %v", got, sumX+sumM)
	}
}
