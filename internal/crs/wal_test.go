package crs

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"clare/internal/core"
	"clare/internal/fault"
	"clare/internal/parse"
	"clare/internal/wal"
	"clare/internal/workload"
)

// newWALServer boots a server over the family workload with a
// write-ahead log under dir, replaying whatever the log holds.
func newWALServer(t *testing.T, dir string) *Server {
	t.Helper()
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s.AttachWAL(l)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	return s
}

func countCandidates(t *testing.T, s *Server, goal string) int {
	t.Helper()
	sess := s.OpenSession()
	defer sess.Close()
	rt, err := sess.Retrieve(parse.MustTerm(goal), nil)
	if err != nil {
		t.Fatal(err)
	}
	heads, _, err := rt.DecodeCandidates()
	if err != nil {
		t.Fatal(err)
	}
	return len(heads)
}

// TestWALWriteRecovery: autocommit writes survive a server restart —
// the rebooted server replays base + log and reaches the same store and
// watermark.
func TestWALWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newWALServer(t, dir)
	sess := s.OpenSession()
	for i := 0; i < 5; i++ {
		if _, err := sess.AssertNow(parse.MustTerm(fmt.Sprintf("married_couple(hx%d, wx%d)", i, i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := sess.RetractNow(parse.MustTerm("married_couple(hx0, wx0)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("retract seq = %d, want 6", seq)
	}
	if got := s.AppliedSeq(); got != 6 {
		t.Fatalf("AppliedSeq = %d, want 6", got)
	}
	before := countCandidates(t, s, "married_couple(X, Y)")
	if n := countCandidates(t, s, "married_couple(hx3, X)"); n != 1 {
		t.Fatalf("asserted clause not retrievable: %d candidates", n)
	}
	if n := countCandidates(t, s, "married_couple(hx0, X)"); n != 0 {
		t.Fatalf("retracted clause still retrievable: %d candidates", n)
	}
	sess.Close()
	if err := s.WAL().Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot over the same log directory.
	s2 := newWALServer(t, dir)
	if got := s2.AppliedSeq(); got != 6 {
		t.Fatalf("recovered AppliedSeq = %d, want 6", got)
	}
	if after := countCandidates(t, s2, "married_couple(X, Y)"); after != before {
		t.Fatalf("recovered store has %d candidates, want %d", after, before)
	}
	if n := countCandidates(t, s2, "married_couple(hx0, X)"); n != 0 {
		t.Fatalf("retract lost in recovery: %d candidates", n)
	}
	if n := countCandidates(t, s2, "married_couple(hx4, X)"); n != 1 {
		t.Fatalf("assert lost in recovery: %d candidates", n)
	}
}

// TestWALTransactionCommitLogged: a BEGIN…COMMIT batch lands in the log
// as one consecutive-seq unit and survives restart.
func TestWALTransactionCommitLogged(t *testing.T) {
	dir := t.TempDir()
	s := newWALServer(t, dir)
	sess := s.OpenSession()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cl := parse.MustTerm(fmt.Sprintf("married_couple(tx%d, ty%d)", i, i))
		if err := sess.Assert(cl, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.AppliedSeq(); got != 3 {
		t.Fatalf("AppliedSeq after commit = %d, want 3", got)
	}
	recs, last, err := s.LogSuffix(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 || len(recs) != 3 {
		t.Fatalf("log holds %d records to seq %d, want 3 to 3", len(recs), last)
	}
	sess.Close()
	s.WAL().Close()

	s2 := newWALServer(t, dir)
	if n := countCandidates(t, s2, "married_couple(tx1, X)"); n != 1 {
		t.Fatalf("committed clause lost in recovery: %d candidates", n)
	}
}

// TestWireWriteSyncRepl drives the replication verbs end to end over
// the wire: WRITE on a primary, SYNC to read the log back, REPL to land
// each record on a read-only replica, then candidate equality.
func TestWireWriteSyncRepl(t *testing.T) {
	primary := newWALServer(t, t.TempDir())
	replica := newWALServer(t, t.TempDir())
	replica.SetReadOnly(true)
	pAddr, rAddr := startWire(t, primary), startWire(t, replica)

	pc, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	for i := 0; i < 4; i++ {
		seq, err := pc.AssertNow(fmt.Sprintf("married_couple(wx%d, wy%d)", i, i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("write %d got seq %d", i, seq)
		}
	}
	if _, err := pc.Retract("married_couple(wx0, wy0)"); err != nil {
		t.Fatal(err)
	}

	recs, last, err := pc.SyncLog(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if last != 5 || len(recs) != 5 {
		t.Fatalf("SyncLog = %d recs to %d, want 5 to 5", len(recs), last)
	}

	rc, err := Dial(rAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Client writes must bounce off the replica...
	if _, err := rc.AssertNow("married_couple(zz, zz)"); err == nil {
		t.Fatal("replica accepted a client write")
	}
	if err := rc.Begin(); err == nil {
		t.Fatal("replica accepted BEGIN")
	}
	// ...while replicated applies land, idempotently.
	for _, rec := range recs {
		applied, err := rc.Repl(rec)
		if err != nil {
			t.Fatal(err)
		}
		if applied != rec.Seq {
			t.Fatalf("REPL seq %d acked %d", rec.Seq, applied)
		}
	}
	if applied, err := rc.Repl(recs[2]); err != nil || applied != 5 {
		t.Fatalf("dup REPL = (%d, %v), want (5, nil)", applied, err)
	}
	stats, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["wal.applied"] != 5 || stats["wal.readonly"] != 1 || stats["wal.replicated"] != 5 {
		t.Fatalf("replica stats = applied %d readonly %d replicated %d",
			stats["wal.applied"], stats["wal.readonly"], stats["wal.replicated"])
	}
	// Converged: identical candidates for the churned queries.
	for _, goal := range []string{"married_couple(wx0, X)", "married_couple(wx2, X)", "married_couple(X, Y)"} {
		p, r := countCandidates(t, primary, goal), countCandidates(t, replica, goal)
		if p != r {
			t.Fatalf("goal %s: primary %d candidates, replica %d", goal, p, r)
		}
	}
}

// TestReplGapRewind: a gap REPL acks the current watermark without
// applying, so a shipper can rewind.
func TestReplGapRewind(t *testing.T) {
	replica := newWALServer(t, t.TempDir())
	replica.SetReadOnly(true)
	applied, err := replica.ApplyReplicated(wal.Record{Seq: 7, Op: wal.OpAssert, Module: "family", Clause: "married_couple(g, g)"})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("gap apply acked %d, want 0", applied)
	}
	if n := countCandidates(t, replica, "married_couple(g, X)"); n != 0 {
		t.Fatal("gap record was applied")
	}
}

// TestClientWritesNeverReplayed: when the transport dies mid-write, the
// client must surface the error without reconnect-and-replay — the
// server may have applied the write, and a replay would double it. A
// retrieval over the same failure IS replayed (idempotent), which the
// same fake server proves as a control.
func TestClientWritesNeverReplayed(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var writes, retrieves atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				acc := ""
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					acc += string(buf[:n])
					for {
						line, rest, ok := strings.Cut(acc, "\n")
						if !ok {
							break
						}
						acc = rest
						switch {
						case strings.HasPrefix(line, "HELLO"):
							fmt.Fprintln(conn, "OK crs 1")
						case strings.HasPrefix(line, "WRITE"):
							// Die mid-write: the request was received (and
							// may have been applied) but no reply comes.
							writes.Add(1)
							return
						case strings.HasPrefix(line, "RETRIEVE"):
							if retrieves.Add(1) == 1 {
								return // first attempt dies the same way
							}
							fmt.Fprintln(conn, "CANDIDATES 0")
							fmt.Fprintln(conn, "STATS mode=fs1+fs2 total=0 fs1=0 fs2=0")
						case strings.HasPrefix(line, "QUIT"):
							fmt.Fprintln(conn, "BYE")
							return
						}
					}
				}
			}(conn)
		}
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AssertNow("p(a)"); err == nil {
		t.Fatal("write over dead transport returned success")
	}
	if got := writes.Load(); got != 1 {
		t.Fatalf("server received the write %d times, want exactly 1 (no replay)", got)
	}
	// Control: the idempotent path does reconnect and replay.
	if err := c.connect(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retrieve("auto", "p(X)"); err != nil {
		t.Fatalf("retrieve should have been replayed to success: %v", err)
	}
	if got := retrieves.Load(); got != 2 {
		t.Fatalf("server received the retrieve %d times, want 2 (one replay)", got)
	}
	var se *ServerError
	if errors.As(err, &se) {
		t.Fatal("transport failure misclassified as server rejection")
	}
}

// TestWriteFaultsInvisible: injected wal.append/wal.fsync faults must
// never surface to the writing client — only degradation counters move.
func TestWriteFaultsInvisible(t *testing.T) {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 10, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(11).
		Add(fault.Rule{Site: fault.SiteWALAppend, Probability: 1}).
		Add(fault.Rule{Site: fault.SiteWALFsync, Probability: 1})
	l, err := wal.Open(t.TempDir(), wal.Options{Fsync: wal.FsyncPolicy{Always: true}, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s.AttachWAL(l)
	sess := s.OpenSession()
	defer sess.Close()
	for i := 0; i < 8; i++ {
		if _, err := sess.AssertNow(parse.MustTerm(fmt.Sprintf("married_couple(fx%d, fy%d)", i, i)), nil); err != nil {
			t.Fatalf("write %d surfaced a fault: %v", i, err)
		}
	}
	if st := l.Stats(); st.Faults == 0 {
		t.Fatal("no faults absorbed — injector not wired")
	}
	if sn := s.Snapshot(); sn.WALStats.Faults == 0 {
		t.Fatal("wal.faults stats key not populated")
	}
}
