package crs

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/workload"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionRetrieve(t *testing.T) {
	s := newServer(t)
	sess := s.OpenSession()
	defer sess.Close()
	rt, err := sess.Retrieve(parse.MustTerm("married_couple(husband4, X)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	trueU, _, err := rt.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if trueU != 1 {
		t.Errorf("true unifiers = %d", trueU)
	}
	// Mode accounting.
	total := 0
	for _, n := range s.Served() {
		total += n
	}
	if total != 1 {
		t.Errorf("served = %v", s.Served())
	}
}

func TestModeSelectionPerQuery(t *testing.T) {
	s := newServer(t)
	sess := s.OpenSession()
	defer sess.Close()
	// Shared-variable query: heuristic must pick FS2.
	rt, err := sess.Retrieve(parse.MustTerm("married_couple(S, S)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Mode != core.ModeFS2 {
		t.Errorf("mode = %v, want fs2 for cross-bound query", rt.Mode)
	}
	// Pinned mode is honoured.
	m := core.ModeSoftware
	rt, err = sess.Retrieve(parse.MustTerm("married_couple(S, S)"), &m)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Mode != core.ModeSoftware {
		t.Errorf("pinned mode = %v", rt.Mode)
	}
}

func TestTransactionCommit(t *testing.T) {
	s := newServer(t)
	sess := s.OpenSession()
	defer sess.Close()

	if err := sess.Assert(parse.MustTerm("married_couple(new1, new2)"), term.Atom("true")); err != ErrNoTransaction {
		t.Errorf("assert outside tx = %v, want ErrNoTransaction", err)
	}
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(); err != ErrInTransaction {
		t.Errorf("nested begin = %v", err)
	}
	if err := sess.Assert(parse.MustTerm("married_couple(romeo, juliet)"), term.Atom("true")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	rt, err := sess.Retrieve(parse.MustTerm("married_couple(romeo, X)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	trueU, _, _ := rt.Evaluate()
	if trueU != 1 {
		t.Errorf("committed clause not retrievable: %d", trueU)
	}
	if rt.Stats.TotalClauses != 31 {
		t.Errorf("clause count = %d, want 31", rt.Stats.TotalClauses)
	}
}

func TestTransactionAbort(t *testing.T) {
	s := newServer(t)
	sess := s.OpenSession()
	defer sess.Close()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Assert(parse.MustTerm("married_couple(ghost, casper)"), term.Atom("true")); err != nil {
		t.Fatal(err)
	}
	if err := sess.Abort(); err != nil {
		t.Fatal(err)
	}
	rt, err := sess.Retrieve(parse.MustTerm("married_couple(ghost, X)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if trueU, _, _ := rt.Evaluate(); trueU != 0 {
		t.Errorf("aborted clause visible: %d", trueU)
	}
}

func TestWriteLockBlocksUntilCommit(t *testing.T) {
	s := newServer(t)
	writer := s.OpenSession()
	defer writer.Close()
	reader := s.OpenSession()
	defer reader.Close()

	if err := writer.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := writer.Assert(parse.MustTerm("married_couple(locked, out)"), term.Atom("true")); err != nil {
		t.Fatal(err)
	}
	// The reader blocks on the predicate's write lock until commit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := reader.Retrieve(parse.MustTerm("married_couple(husband1, X)"), nil); err != nil {
			t.Errorf("reader: %v", err)
		}
	}()
	select {
	case <-done:
		t.Fatal("reader finished while the write lock was held")
	default:
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestConcurrentReaders(t *testing.T) {
	s := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := s.OpenSession()
			defer sess.Close()
			g := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", i%20))
			rt, err := sess.Retrieve(g, nil)
			if err != nil {
				errs <- err
				return
			}
			if rt.Stats.TotalClauses != 30 {
				errs <- fmt.Errorf("total = %d", rt.Stats.TotalClauses)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Sessions() != 0 {
		t.Errorf("open sessions = %d after close", s.Sessions())
	}
}

func TestSessionCloseAbortsTransaction(t *testing.T) {
	s := newServer(t)
	sess := s.OpenSession()
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Assert(parse.MustTerm("married_couple(zzz, yyy)"), term.Atom("true")); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	// Lock must be free again.
	sess2 := s.OpenSession()
	defer sess2.Close()
	rt, err := sess2.Retrieve(parse.MustTerm("married_couple(zzz, X)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if trueU, _, _ := rt.Evaluate(); trueU != 0 {
		t.Error("clause from closed session's tx is visible")
	}
	if err := sess.Begin(); err != ErrClosed {
		t.Errorf("begin on closed session = %v", err)
	}
}

func TestParseMode(t *testing.T) {
	for word, want := range map[string]core.SearchMode{
		"software": core.ModeSoftware, "fs1": core.ModeFS1,
		"fs2": core.ModeFS2, "fs1+fs2": core.ModeFS1FS2,
	} {
		m, err := ParseMode(word)
		if err != nil || m == nil || *m != want {
			t.Errorf("ParseMode(%s) = %v, %v", word, m, err)
		}
	}
	if m, err := ParseMode("auto"); err != nil || m != nil {
		t.Errorf("ParseMode(auto) = %v, %v", m, err)
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("unknown mode should fail")
	}
}

// TestWireProtocol exercises the full TCP stack over loopback.
func TestWireProtocol(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SessionID == "" {
		t.Error("no session id from handshake")
	}

	res, err := c.Retrieve("fs1+fs2", "married_couple(husband2, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) < 1 {
		t.Fatalf("no candidates: %+v", res)
	}
	foundTrue := false
	for _, cl := range res.Clauses {
		if strings.Contains(cl, "husband2") {
			foundTrue = true
		}
	}
	if !foundTrue {
		t.Errorf("true match missing from %v", res.Clauses)
	}
	if !strings.Contains(res.Stats, "mode=fs1+fs2") || !strings.Contains(res.Stats, "total=30") {
		t.Errorf("stats line = %q", res.Stats)
	}

	// Transaction over the wire.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert("married_couple(wirea, wireb)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = c.Retrieve("auto", "married_couple(wirea, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) == 0 {
		t.Error("committed clause not retrievable over the wire")
	}

	// Error paths.
	if _, err := c.Retrieve("warp", "married_couple(a, b)"); err == nil {
		t.Error("bad mode should error")
	}
	if _, err := c.Retrieve("fs2", "unknown_pred(a)"); err == nil {
		t.Error("unknown predicate should error")
	}
	if err := c.Commit(); err == nil {
		t.Error("commit without begin should error")
	}
}

// TestWireProtocolMultipleClients checks concurrent wire sessions.
func TestWireProtocolMultipleClients(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			res, err := c.Retrieve("auto", fmt.Sprintf("married_couple(husband%d, X)", i))
			if err != nil {
				t.Errorf("retrieve: %v", err)
				return
			}
			if len(res.Clauses) == 0 {
				t.Errorf("client %d: no candidates", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestWireStats(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Retrieve("fs2", "married_couple(a, b)"); err != nil {
		t.Fatal(err)
	}
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The wire counters must match the server's own served map exactly.
	for mode, n := range s.Served() {
		if kv["served."+mode.String()] != int64(n) {
			t.Errorf("served.%v = %d, want %d", mode, kv["served."+mode.String()], n)
		}
	}
	if kv["served.fs2"] != 1 {
		t.Errorf("served.fs2 = %d, want 1", kv["served.fs2"])
	}
	if kv["sessions"] != 1 {
		t.Errorf("sessions = %d, want 1", kv["sessions"])
	}
	if kv["boards"] != int64(s.Retriever().Boards()) {
		t.Errorf("boards = %d, want %d", kv["boards"], s.Retriever().Boards())
	}
	if kv["qcache.misses"] < 1 {
		t.Errorf("qcache.misses = %d, want ≥1", kv["qcache.misses"])
	}
}

func TestClientAbortAndServerAccess(t *testing.T) {
	s := newServer(t)
	if s.Retriever() == nil {
		t.Error("Retriever() returned nil")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert("married_couple(ab1, ab2)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Retrieve("auto", "married_couple(ab1, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 0 {
		t.Errorf("aborted clause visible over the wire: %v", res.Clauses)
	}
	// Abort without begin errors.
	if err := c.Abort(); err == nil {
		t.Error("abort without begin should error")
	}
}

func TestLoadErrors(t *testing.T) {
	s := newServer(t)
	if err := s.Load("m", nil); err == nil {
		t.Error("empty load should fail")
	}
	if err := s.Load("m", []core.ClauseTerm{{Head: term.Int(3)}}); err == nil {
		t.Error("non-callable head should fail")
	}
}
