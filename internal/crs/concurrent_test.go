package crs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/workload"
)

// newPooledServer builds a server whose retriever has a multi-board
// chassis, loaded with the family workload.
func newPooledServer(t *testing.T, boards int) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Boards = boards
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConcurrentSessions mixes parallel loads, retrievals and
// transactions across many sessions. It asserts every operation
// succeeds, the served counter matches the retrievals issued, and —
// under -race — that the reworked locking is memory-safe.
func TestConcurrentSessions(t *testing.T) {
	s := newPooledServer(t, 4)

	const (
		readers    = 8
		loaders    = 4
		writers    = 2
		iterations = 15
	)
	var issued atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, readers+loaders+writers)

	// Readers hammer the preloaded predicate.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.OpenSession()
			defer sess.Close()
			for i := 0; i < iterations; i++ {
				goal := parse.MustTerm(fmt.Sprintf("married_couple(husband%d, X)", (w+i)%30))
				rt, err := sess.Retrieve(goal, nil)
				if err != nil {
					errs <- err
					return
				}
				issued.Add(1)
				trueU, _, err := rt.Evaluate()
				if err != nil {
					errs <- err
					return
				}
				if trueU != 1 {
					errs <- fmt.Errorf("%v: true unifiers = %d, want 1", goal, trueU)
					return
				}
			}
		}(w)
	}

	// Loaders install fresh predicates and immediately query them.
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.OpenSession()
			defer sess.Close()
			for i := 0; i < iterations; i++ {
				functor := fmt.Sprintf("loader%d_%d", w, i)
				clauses := []core.ClauseTerm{
					{Head: term.New(functor, term.Atom("a"), term.Atom("b"))},
					{Head: term.New(functor, term.Atom("c"), term.Atom("d"))},
				}
				if err := s.Load("dyn", clauses); err != nil {
					errs <- err
					return
				}
				rt, err := sess.Retrieve(term.New(functor, term.Atom("a"), term.NewVar("X")), nil)
				if err != nil {
					errs <- err
					return
				}
				issued.Add(1)
				if len(rt.Candidates) == 0 {
					errs <- fmt.Errorf("%s: no candidates after load", functor)
					return
				}
			}
		}(w)
	}

	// Writers run assert transactions on private predicates, mixing
	// commits and aborts.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.OpenSession()
			defer sess.Close()
			functor := fmt.Sprintf("journal%d", w)
			seed := []core.ClauseTerm{{Head: term.New(functor, term.Atom("entry0"))}}
			if err := s.Load("tx", seed); err != nil {
				errs <- err
				return
			}
			committed := 1
			for i := 1; i <= iterations; i++ {
				if err := sess.Begin(); err != nil {
					errs <- err
					return
				}
				err := sess.Assert(term.New(functor, term.Atom(fmt.Sprintf("entry%d", i))), term.Atom("true"))
				if err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					err = sess.Abort()
				} else {
					err = sess.Commit()
					committed++
				}
				if err != nil {
					errs <- err
					return
				}
			}
			rt, err := sess.Retrieve(term.New(functor, term.NewVar("E")), nil)
			if err != nil {
				errs <- err
				return
			}
			issued.Add(1)
			if len(rt.Candidates) != committed {
				errs <- fmt.Errorf("%s: %d clauses, want %d", functor, len(rt.Candidates), committed)
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	total := 0
	for _, n := range s.Served() {
		total += n
	}
	if int64(total) != issued.Load() {
		t.Errorf("served %d retrievals, issued %d", total, issued.Load())
	}
	if got := s.Sessions(); got != 0 {
		t.Errorf("%d sessions left open", got)
	}
}

// TestConcurrentRetrievalsSeeConsistentSnapshots: readers racing a
// committing writer must always see either the old or the new clause
// list, never a partial rebuild.
func TestConcurrentRetrievalsSeeConsistentSnapshots(t *testing.T) {
	s := newPooledServer(t, 2)
	seed := []core.ClauseTerm{{Head: term.New("log", term.Atom("e0"))}}
	if err := s.Load("tx", seed); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.OpenSession()
			defer sess.Close()
			prev := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt, err := sess.Retrieve(term.New("log", term.NewVar("E")), nil)
				if err != nil {
					errs <- err
					return
				}
				n := len(rt.Candidates)
				// The writer only appends, so visible history is monotone.
				if n < prev {
					errs <- fmt.Errorf("snapshot shrank: %d after %d", n, prev)
					return
				}
				prev = n
			}
		}()
	}

	writer := s.OpenSession()
	for i := 1; i <= 20; i++ {
		if err := writer.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := writer.Assert(term.New("log", term.Atom(fmt.Sprintf("e%d", i))), term.Atom("true")); err != nil {
			t.Fatal(err)
		}
		if err := writer.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	writer.Close()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
