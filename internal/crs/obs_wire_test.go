package crs

import (
	"strconv"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/telemetry"
	"clare/internal/workload"
)

// newObsServer builds a server with a flight recorder in the retriever,
// a tracer, and an SLO tracker with a sub-microsecond objective (every
// retrieval burns budget). The slow log is left to individual tests —
// its EXPLAIN re-runs land in the flight ring too and would make record
// counts timing-dependent.
func newObsServer(t *testing.T) (*Server, *telemetry.Tracer) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Tracer = telemetry.NewTracer(16)
	cfg.Flight = telemetry.NewFlightRecorder(64)
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	s.SetFlight(cfg.Flight, "")
	s.SetSLO(telemetry.NewSLOTracker(telemetry.SLO{P99: time.Nanosecond}))
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	return s, cfg.Tracer
}

// TestWireFlight: the FLIGHT verb dumps the retriever's ring over the
// wire — every served retrieval present, funnel counts monotone, and a
// traced retrieval's trace ID resolving against the server's tracer
// (whose trace records the caller's remote context).
func TestWireFlight(t *testing.T) {
	s, tracer := newObsServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Retrieve("fs1", "married_couple(husband3, X)"); err != nil {
		t.Fatal(err)
	}
	tc := &telemetry.TraceContext{TraceID: 0xbeef, ParentSpan: 1}
	if _, err := c.RetrieveTraced("fs1+fs2", "married_couple(X, Y)", tc); err != nil {
		t.Fatal(err)
	}

	recs, err := c.Flight(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("flight dump holds %d records, want 2", len(recs))
	}
	// The server assigns its own trace ID and records the caller's
	// context as Remote; find the trace joined to our 0xbeef context and
	// demand a flight record carrying its ID.
	var wantID uint64
	for _, tr := range tracer.Last(0) {
		if tr.Remote != nil && tr.Remote.TraceID == 0xbeef {
			wantID = tr.TraceID
		}
	}
	if wantID == 0 {
		t.Fatal("tracer holds no trace joined to the caller's context")
	}
	var traced bool
	for _, r := range recs {
		if r.Predicate != "married_couple/2" {
			t.Errorf("record predicate = %q", r.Predicate)
		}
		if !(r.Total >= r.AfterFS1 && r.AfterFS1 >= r.AfterFS2) {
			t.Errorf("funnel not monotone: %d -> %d -> %d", r.Total, r.AfterFS1, r.AfterFS2)
		}
		if r.WallNS <= 0 {
			t.Errorf("record missing wall time: %+v", r)
		}
		if r.TraceID == wantID {
			traced = true
		}
	}
	if !traced {
		t.Errorf("no flight record carries trace %d: %+v", wantID, recs)
	}

	if recs, err := c.Flight(1); err != nil || len(recs) != 1 {
		t.Errorf("FLIGHT 1 = %d records, err %v", len(recs), err)
	}
}

// TestWireFlightUnarmed: a server without a recorder answers FLIGHT
// with an empty dump, not an error.
func TestWireFlightUnarmed(t *testing.T) {
	s := newServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, err := c.Flight(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("unarmed server dumped %d records", len(recs))
	}
}

// TestWireSlowCapture: a retrieval past the threshold re-runs EXPLAIN
// capture-side; the capture lands in the slow log with the full funnel
// profile and comes back over the SLOWLOG verb.
func TestWireSlowCapture(t *testing.T) {
	s, _ := newObsServer(t)
	s.SetSlowLog(telemetry.NewSlowQueryLog(8, time.Millisecond), time.Nanosecond, 0)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := &telemetry.TraceContext{TraceID: 0xfeed, ParentSpan: 1}
	if _, err := c.RetrieveTraced("fs1+fs2", "married_couple(S, S)", tc); err != nil {
		t.Fatal(err)
	}
	// The EXPLAIN re-run happens on a background goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for s.SlowLog().Captured() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow capture never landed")
		}
		time.Sleep(time.Millisecond)
	}

	caps, err := c.SlowTail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 1 {
		t.Fatalf("slow tail holds %d captures, want 1", len(caps))
	}
	capt := caps[0]
	if capt.Predicate != "married_couple/2" || capt.Goal == "" {
		t.Errorf("capture = %+v", capt)
	}
	if capt.WallNS <= 0 || capt.ThresholdNS <= 0 {
		t.Errorf("capture missing timings: wall=%d thr=%d", capt.WallNS, capt.ThresholdNS)
	}
	// The capture carries the server-side trace ID, correlating it with
	// the retrieval's flight record.
	if capt.TraceID == 0 {
		t.Error("capture missing trace ID")
	}
	var correlated bool
	for _, r := range s.Flight().Snapshot(0) {
		if r.TraceID == capt.TraceID {
			correlated = true
		}
	}
	if !correlated {
		t.Errorf("capture trace %d has no matching flight record", capt.TraceID)
	}
	prof := make(map[string]string, len(capt.Profile))
	for _, kv := range capt.Profile {
		prof[kv.Key] = kv.Value
	}
	geti := func(key string) int {
		n, err := strconv.Atoi(prof[key])
		if err != nil {
			t.Fatalf("profile %s = %q, want an int (profile: %v)", key, prof[key], capt.Profile)
		}
		return n
	}
	total, fs1, fs2 := geti("candidates.total"), geti("candidates.after_fs1"), geti("candidates.after_fs2")
	if !(total >= fs1 && fs1 >= fs2) {
		t.Errorf("profile funnel not monotone: %d -> %d -> %d", total, fs1, fs2)
	}

	// STATS surfaces the capture and SLO accounting.
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["slow.captured"] < 1 {
		t.Errorf("slow.captured = %d", kv["slow.captured"])
	}
	if kv["flight.recorded"] < 1 {
		t.Errorf("flight.recorded = %d", kv["flight.recorded"])
	}
	if kv["slo.enabled"] != 1 || kv["slo.requests"] < 1 || kv["slo.slow"] < 1 {
		t.Errorf("slo stats = enabled:%d requests:%d slow:%d",
			kv["slo.enabled"], kv["slo.requests"], kv["slo.slow"])
	}
	if kv["slo.burn.short.milli"] <= 0 {
		t.Errorf("slo.burn.short.milli = %d, want > 0", kv["slo.burn.short.milli"])
	}
}

// TestWireSlowCaptureRateLimit: two consecutive slow retrievals of the
// same predicate inside the gap yield exactly one capture.
func TestWireSlowCaptureRateLimit(t *testing.T) {
	s, _ := newObsServer(t)
	s.SetSlowLog(telemetry.NewSlowQueryLog(8, time.Hour), time.Nanosecond, 0)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Retrieve("fs1", "married_couple(X, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.SlowLog().Captured() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow capture never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.SlowLog().Captured(); got != 1 {
		t.Errorf("captured = %d, want 1 (rate-limited)", got)
	}
	if got := s.SlowLog().Suppressed(); got != 2 {
		t.Errorf("suppressed = %d, want 2", got)
	}
}
