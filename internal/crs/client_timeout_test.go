package crs

import (
	"errors"
	"net"
	"testing"
	"time"
)

// muteServer accepts connections, answers the HELLO handshake, then
// goes silent — the shape of a wedged backend.
func muteServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				if _, err := conn.Read(buf); err == nil {
					conn.Write([]byte("OK crs 1\n")) //nolint:errcheck
				}
				// Swallow everything else without replying.
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestRetrieveWithTimeout: the per-call override must bound one call
// against a wedged server without disturbing the client's configured
// timeout for later calls.
func TestRetrieveWithTimeout(t *testing.T) {
	addr := muteServer(t)
	c, err := DialTimeout(addr, time.Hour) // configured timeout must not apply
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = -1 // measure one attempt, not the retry schedule

	start := time.Now()
	_, err = c.RetrieveWithTimeout("fs1", "p(X)", 150*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("retrieve against a mute server should time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error = %v, want a net timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("returned after %v; per-call deadline not applied", elapsed)
	}
	if got := c.effTimeout(); got != time.Hour {
		t.Errorf("configured timeout disturbed: effTimeout = %v, want 1h", got)
	}
}

// TestStatsWithTimeout: same contract for the STATS call.
func TestStatsWithTimeout(t *testing.T) {
	addr := muteServer(t)
	c, err := DialTimeout(addr, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = -1

	start := time.Now()
	_, err = c.StatsWithTimeout(150 * time.Millisecond)
	if err == nil {
		t.Fatal("stats against a mute server should time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("returned after %v; per-call deadline not applied", elapsed)
	}
}

// TestWithTimeoutZeroKeepsDefault: a zero override falls back to the
// configured client timeout.
func TestWithTimeoutZeroKeepsDefault(t *testing.T) {
	addr := muteServer(t)
	c, err := DialTimeout(addr, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = -1
	start := time.Now()
	if _, err := c.RetrieveWithTimeout("fs1", "p(X)", 0); err == nil {
		t.Fatal("retrieve against a mute server should time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("returned after %v; configured deadline not applied", elapsed)
	}
}
