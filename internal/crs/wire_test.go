package crs

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/telemetry"
	"clare/internal/workload"
)

// startWire runs a server on loopback and returns its address. The
// listener closes on test cleanup.
func startWire(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// rawSession dials the wire protocol without the Client wrapper so tests
// can send malformed frames.
type rawSession struct {
	conn net.Conn
	in   *bufio.Scanner
}

func rawDial(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := &rawSession{conn: conn, in: bufio.NewScanner(conn)}
	r.in.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	return r
}

func (r *rawSession) sendRecv(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(r.conn, line); err != nil {
		t.Fatal(err)
	}
	if !r.in.Scan() {
		t.Fatalf("no reply to %q: %v", line, r.in.Err())
	}
	return r.in.Text()
}

// TestWireMalformedFrames: syntactically broken requests must be
// answered with ERR and must not kill the connection.
func TestWireMalformedFrames(t *testing.T) {
	s := newServer(t)
	r := rawDial(t, startWire(t, s))
	for _, tc := range []struct{ send, wantPrefix string }{
		{"RETRIEVE fs1", "ERR usage: RETRIEVE"},
		{"RETRIEVE warp married_couple(a, b).", "ERR crs: unknown mode"},
		{"RETRIEVE fs1 married_couple(((.", "ERR"},
		{"ASSERT )))", "ERR"},
		{"FROB twiddle", `ERR unknown command "FROB"`},
	} {
		got := r.sendRecv(t, tc.send)
		if !strings.HasPrefix(got, tc.wantPrefix) {
			t.Errorf("%q → %q, want prefix %q", tc.send, got, tc.wantPrefix)
		}
	}
	// The connection survives all of the above.
	if got := r.sendRecv(t, "HELLO"); !strings.HasPrefix(got, "OK crs") {
		t.Errorf("post-error HELLO → %q", got)
	}
}

// TestWireOversizedPayload: a line above maxWireLine draws "ERR line too
// long" and the server drops the connection.
func TestWireOversizedPayload(t *testing.T) {
	s := newServer(t)
	r := rawDial(t, startWire(t, s))
	if got := r.sendRecv(t, "HELLO"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("handshake: %q", got)
	}
	// One token larger than the server's scanner limit, no newline needed:
	// the scanner errors as soon as its buffer fills.
	if _, err := r.conn.Write(bytes.Repeat([]byte{'a'}, maxWireLine+1)); err != nil {
		t.Fatal(err)
	}
	if !r.in.Scan() {
		t.Fatalf("no reply to oversized line: %v", r.in.Err())
	}
	if got := r.in.Text(); !strings.HasPrefix(got, "ERR line too long") {
		t.Errorf("oversized line → %q", got)
	}
	// The handler exits; the connection reads EOF.
	if r.in.Scan() {
		t.Errorf("unexpected line after drop: %q", r.in.Text())
	}
}

// TestServerShutdownGraceful: with no open connections Shutdown returns
// immediately; with a connected client it waits for the client to leave.
func TestServerShutdownGraceful(t *testing.T) {
	s := newServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retrieve("fs1+fs2", "married_couple(husband1, X)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a connection was open")
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	if err := <-done; err != nil {
		t.Errorf("graceful Shutdown = %v, want nil", err)
	}
	// While draining, new connections are refused.
	if _, err := Dial(addr); err == nil {
		t.Error("dial during drain should fail")
	}
}

// TestServerShutdownDeadline: a client that never leaves is force-closed
// when the context expires.
func TestServerShutdownDeadline(t *testing.T) {
	s := newServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if s.Sessions() != 0 {
		t.Errorf("open sessions after forced shutdown = %d", s.Sessions())
	}
}

// TestClientTimeout: a server that accepts but never answers must not
// hang a client with a deadline configured.
func TestClientTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never reply
		}
	}()
	start := time.Now()
	_, err = DialTimeout(l.Addr().String(), 100*time.Millisecond)
	if err == nil {
		t.Fatal("dial against a mute server should time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timed out after %v, deadline not applied", elapsed)
	}
}

// TestServerMetrics: a server over an instrumented retriever mirrors its
// service counters into the registry.
func TestServerMetrics(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Metrics = telemetry.NewRegistry()
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 20, SameEvery: 4}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	sess := s.OpenSession()
	m := core.ModeFS2
	if _, err := sess.Retrieve(parse.MustTerm("married_couple(husband1, X)"), &m); err != nil {
		t.Fatal(err)
	}
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Abort(); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	var sb strings.Builder
	if err := cfg.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`clare_crs_requests_total{mode="fs2"} 1`,
		`clare_crs_predicate_requests_total{predicate="married_couple/2"} 1`,
		`clare_crs_sessions_total 1`,
		`clare_crs_sessions_open 0`,
		`clare_crs_transactions_total{op="begin"} 1`,
		`clare_crs_transactions_total{op="abort"} 1`,
		`clare_crs_lock_wait_seconds_count{op="read"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
