package crs

import (
	"bytes"
	"strings"
	"testing"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/workload"
)

// TestStatsLinesDeterministic: the STATS wire sequence must render the
// same keys in the same order on every call — crsctl -stats output is
// diffable across runs, and the cluster router's aggregation depends on
// stable key names.
func TestStatsLinesDeterministic(t *testing.T) {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	a, b := s.Snapshot().lines(), s.Snapshot().lines()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lines() lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("key order unstable at %d: %q vs %q", i, a[i].Key, b[i].Key)
		}
		if strings.ContainsAny(a[i].Key, " \t") {
			t.Errorf("key %q contains whitespace", a[i].Key)
		}
	}
}

// TestServerAdopt: a server over a store-loaded retriever serves and
// mutates the adopted predicates exactly as if they had come through
// Load — the crsd -kb path.
func TestServerAdopt(t *testing.T) {
	// Build a store with one fact predicate and one rule predicate.
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fam := workload.Family{Couples: 12, SameEvery: 3}
	if _, err := r.AddClauses("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddClauses("flying", []core.ClauseTerm{
		{Head: parse.MustTerm("fly(tweety)")},
		{Head: parse.MustTerm("fly(X)"), Body: parse.MustTerm("bird(X)")},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}

	loaded, err := core.LoadRetriever(core.DefaultConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(loaded)
	if err := s.Adopt(); err != nil {
		t.Fatal(err)
	}

	sess := s.OpenSession()
	defer sess.Close()
	rt, err := sess.Retrieve(parse.MustTerm("married_couple(husband2, X)"), nil)
	if err != nil {
		t.Fatalf("retrieve adopted predicate: %v", err)
	}
	if trueU, _, err := rt.Evaluate(); err != nil || trueU != 1 {
		t.Errorf("adopted retrieval: true=%d err=%v, want 1 true unifier", trueU, err)
	}

	// The transaction path needs the decoded clause list: assert into an
	// adopted predicate and check the commit is retrievable.
	if err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Assert(parse.MustTerm("fly(woodstock)"), nil); err != nil {
		t.Fatalf("assert into adopted predicate: %v", err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	rt, err = sess.Retrieve(parse.MustTerm("fly(woodstock)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two true unifiers: the new fact and the fly(X) rule head.
	if trueU, _, err := rt.Evaluate(); err != nil || trueU != 2 {
		t.Errorf("post-commit retrieval: true=%d err=%v, want 2", trueU, err)
	}

	// Adopt is idempotent and must not clobber live predicate state.
	if err := s.Adopt(); err != nil {
		t.Fatal(err)
	}
	rt, err = sess.Retrieve(parse.MustTerm("fly(X)"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Candidates) != 3 {
		t.Errorf("candidates after re-adopt = %d, want 3", len(rt.Candidates))
	}
}
