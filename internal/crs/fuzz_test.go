package crs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/term"
)

// fuzzSrv is the shared server behind FuzzWireParse. Fuzz executions in
// one worker process are sequential, but the mutex keeps the harness
// honest if that ever changes (and across seed-corpus replays).
var fuzzSrv struct {
	once sync.Once
	mu   sync.Mutex
	s    *Server
	err  error
}

func fuzzServer() (*Server, error) {
	fuzzSrv.once.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Boards = 1
		r, err := core.New(cfg)
		if err != nil {
			fuzzSrv.err = err
			return
		}
		s := NewServer(r)
		clauses := make([]core.ClauseTerm, 8)
		for i := range clauses {
			clauses[i] = core.ClauseTerm{Head: term.New("m", term.Int(i), term.Atom("x"))}
		}
		if err := s.Load("fuzz", clauses); err != nil {
			fuzzSrv.err = err
			return
		}
		fuzzSrv.s = s
	})
	return fuzzSrv.s, fuzzSrv.err
}

// wireReplyOK reports whether one server output line is well-formed:
// every reply the protocol defines starts with one of these tokens.
func wireReplyOK(line string) bool {
	tok, _, _ := strings.Cut(line, " ")
	switch tok {
	case "OK", "BYE", "ERR", "CANDIDATES", "STATS", "S", "C", "LOG", "R",
		"EXPLAIN", "E", "TRACE":
		return true
	}
	return false
}

// FuzzWireParse throws arbitrary bytes at the CRS wire handler. The
// invariants: the handler never panics, never hangs (malformed input is
// answered with ERR and the loop continues or the connection drops),
// and every line it writes back is a well-formed protocol reply.
func FuzzWireParse(f *testing.F) {
	seeds := []string{
		"HELLO\n",
		"HELLO\nRETRIEVE fs2 m(1, X).\nQUIT\n",
		"RETRIEVE auto m(X, Y).\n",
		"RETRIEVE software m(0, x).\nRETRIEVE fs1 m(1, x).\nRETRIEVE fs1+fs2 m(2, x).\n",
		"RETRIEVE bogusmode m(1, X).\n",
		"RETRIEVE fs2\n",
		"RETRIEVE fs2 )(!!bad term.\n",
		"RETRIEVE fs2 unknown_pred(X).\n",
		"BEGIN\nASSERT m(9, y).\nCOMMIT\nQUIT\n",
		"BEGIN\nASSERT m(9, y).\nABORT\n",
		"WRITE assert m(9, y).\nWRITE retract m(9, y).\n",
		"WRITE frob m(9, y).\nWRITE assert\nWRITE\n",
		"SYNC 0 1\nSYNC 0 0\nQUIT\n",
		"SYNC\nSYNC x y\nSYNC 0 -1\nSYNC 0 99999999999999999999\n",
		"REPL 1 assert fuzz m(7, z)\nREPL 1 assert fuzz m(7, z)\n",
		"REPL 0 assert fuzz m(7, z)\nREPL x y\nREPL 2 frob fuzz m(7, z)\nREPL\n",
		"ASSERT m(1, x).\n",
		"COMMIT\nABORT\nBEGIN\nBEGIN\n",
		"STATS\nSTATS\n",
		"EXPLAIN auto m(1, X).\nSTATS\n",
		"EXPLAIN fs2 m(1, X).\n",
		"EXPLAIN fs1+fs2 m(X, Y).\nEXPLAIN software m(0, x).\n",
		"EXPLAIN bogusmode m(1, X).\nEXPLAIN\nEXPLAIN auto\n",
		"stats\nhello\nquit\n",
		"QUIT\nHELLO\n",
		"\n\n   \n\t\n",
		"NOSUCHCOMMAND with args\n",
		"ASSERT m(1, x) :- true.\n",
		"RETRIEVE fs2 m([a, b | T], X).\n",
		"\x00\xff\xfe garbage \x01\n",
		strings.Repeat("A", 70*1024) + "\n", // crosses the scanner's initial buffer
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		srv, err := fuzzServer()
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv.mu.Lock()
		defer fuzzSrv.mu.Unlock()

		client, server := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		// Drain every reply concurrently: net.Pipe is unbuffered, so the
		// handler's writes block until read. EOF arrives when the handler
		// returns and closes its end.
		replies := make(chan []byte, 1)
		go func() {
			var buf bytes.Buffer
			_, _ = io.Copy(&buf, client)
			replies <- buf.Bytes()
		}()

		_ = client.SetWriteDeadline(time.Now().Add(5 * time.Second))
		_, _ = client.Write(data)
		// Terminate cleanly whatever state the input left the handler in;
		// write errors just mean it already hung up.
		_, _ = client.Write([]byte("\nQUIT\n"))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("wire handler hung on %d-byte input %s", len(data), truncate(data, 128))
		}
		out := <-replies
		client.Close()

		sc := bufio.NewScanner(bytes.NewReader(out))
		sc.Buffer(make([]byte, 0, 64*1024), maxWireLine+64)
		for sc.Scan() {
			if line := sc.Text(); !wireReplyOK(line) {
				t.Fatalf("malformed reply line %s for input %s", truncate([]byte(line), 128), truncate(data, 128))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning replies: %v", err)
		}
	})
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return fmt.Sprintf("%q…", b[:n])
	}
	return fmt.Sprintf("%q", b)
}
