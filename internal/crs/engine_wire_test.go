package crs

import (
	"testing"

	"clare/internal/core"
	"clare/internal/workload"
)

// newEngineServer builds a family-loaded server over a retriever running
// the given engine.
func newEngineServer(t *testing.T, engine core.Engine) *Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Engine = engine
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStatsEngineKey: the engine.native STATS key reports which engine
// the server runs — 0 for the simulation, 1 for the native engine — and
// a native server still answers retrievals over the wire.
// TestStatsScanStoreKeys: scan.workers carries the resolved partitioned-
// scan width (including runtime changes via SetScanWorkers) and
// store.mapped distinguishes mmap-backed stores from heap-loaded ones —
// 0 here, since the server's predicates were loaded in memory.
func TestStatsScanStoreKeys(t *testing.T) {
	s := newEngineServer(t, core.EngineNative)
	s.retriever.SetScanWorkers(4)
	c, err := Dial(startWire(t, s))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := stats["scan.workers"]; !ok || got != 4 {
		t.Errorf("scan.workers = %d (present %v), want 4", got, ok)
	}
	if got, ok := stats["store.mapped"]; !ok || got != 0 {
		t.Errorf("store.mapped = %d (present %v), want 0", got, ok)
	}
}

func TestStatsEngineKey(t *testing.T) {
	for _, tc := range []struct {
		engine core.Engine
		want   int64
	}{
		{core.EngineSim, 0},
		{core.EngineNative, 1},
	} {
		s := newEngineServer(t, tc.engine)
		c, err := Dial(startWire(t, s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Retrieve("fs1+fs2", "married_couple(husband4, X)"); err != nil {
			t.Errorf("engine %v: retrieve: %v", tc.engine, err)
		}
		stats, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		got, ok := stats["engine.native"]
		if !ok {
			t.Errorf("engine %v: STATS missing key engine.native", tc.engine)
		} else if got != tc.want {
			t.Errorf("engine %v: engine.native = %d, want %d", tc.engine, got, tc.want)
		}
	}
}
