package crs

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"clare/internal/wal"
)

// Client write path. None of these calls goes through retryIdempotent:
// a write is NOT idempotent, and replaying one over a reconnect after a
// transport failure could apply it twice (the failure may have struck
// after the server logged the write but before the reply arrived). A
// transport error on a write therefore surfaces to the caller, who
// alone can decide whether to re-issue it.

// AssertNow appends one clause (source without final '.') outside any
// transaction — the WRITE wire command — returning the log sequence
// number the server assigned.
func (c *Client) AssertNow(clause string) (uint64, error) {
	return c.write("assert", clause)
}

// AssertWithTimeout is AssertNow under a per-call deadline override,
// mirroring RetrieveWithTimeout: every wire read/write of this one call
// is bounded by d instead of the client's global timeout (d <= 0 leaves
// the global timeout in force).
func (c *Client) AssertWithTimeout(clause string, d time.Duration) (uint64, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.AssertNow(clause)
}

// Retract removes the first clause unifying with the given clause
// (source without final '.'), returning the assigned log sequence
// number.
func (c *Client) Retract(clause string) (uint64, error) {
	return c.write("retract", clause)
}

// RetractWithTimeout is Retract under a per-call deadline override (see
// AssertWithTimeout).
func (c *Client) RetractWithTimeout(clause string, d time.Duration) (uint64, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.Retract(clause)
}

func (c *Client) write(op, clause string) (uint64, error) {
	resp, err := c.roundTrip(fmt.Sprintf("WRITE %s %s.", op, clause))
	if err != nil {
		return 0, err
	}
	seqText, ok := strings.CutPrefix(resp, "OK ")
	if !ok {
		return 0, fmt.Errorf("crs client: unexpected write reply %q", resp)
	}
	seq, err := strconv.ParseUint(seqText, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("crs client: bad write seq in %q", resp)
	}
	return seq, nil
}

// SyncLog pulls a suffix of the server's write-ahead log: up to the
// server's batch cap of records with seq >= from, plus the log's last
// seq. shard names the shard being synced (informational to a
// single-shard crsd, routing to a cluster front-end). Not retried: the
// caller (a follower loop) re-issues from its own watermark.
func (c *Client) SyncLog(shard int, from uint64) ([]wal.Record, uint64, error) {
	first, err := c.roundTrip(fmt.Sprintf("SYNC %d %d", shard, from))
	if err != nil {
		return nil, 0, err
	}
	var n int
	var last uint64
	if _, err := fmt.Sscanf(first, "LOG %d %d", &n, &last); err != nil {
		return nil, 0, fmt.Errorf("crs client: unexpected sync reply %q", first)
	}
	recs := make([]wal.Record, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, 0, err
		}
		body, ok := strings.CutPrefix(line, "R ")
		if !ok {
			return nil, 0, fmt.Errorf("crs client: unexpected log line %q", line)
		}
		rec, err := wal.ParseRecordText(body)
		if err != nil {
			return nil, 0, fmt.Errorf("crs client: %w", err)
		}
		recs = append(recs, rec)
	}
	return recs, last, nil
}

// ReplWithTimeout is Repl under a per-call deadline override (see
// AssertWithTimeout).
func (c *Client) ReplWithTimeout(rec wal.Record, d time.Duration) (uint64, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.Repl(rec)
}

// Repl lands one primary-sequenced record on the server (the REPL wire
// command), returning the server's applied watermark afterwards — the
// push half of log shipping. Not retried; the shipper's rewind protocol
// handles every delivery ambiguity.
func (c *Client) Repl(rec wal.Record) (uint64, error) {
	resp, err := c.roundTrip("REPL " + rec.WireText())
	if err != nil {
		return 0, err
	}
	appliedText, ok := strings.CutPrefix(resp, "OK ")
	if !ok {
		return 0, fmt.Errorf("crs client: unexpected repl reply %q", resp)
	}
	applied, err := strconv.ParseUint(appliedText, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("crs client: bad repl seq in %q", resp)
	}
	return applied, nil
}
