package crs

// Durable write path: the server's write-ahead-log integration. A
// primary logs every mutation (autocommit WRITE, transaction COMMIT)
// before rebuilding the compiled clause files, replays the log over the
// loaded base store at startup, and serves the log suffix to replicas
// over SYNC; a replica applies primary-sequenced records via
// ApplyReplicated (REPL), idempotently and in order, so identical logs
// yield identical stores.

import (
	"errors"
	"fmt"
	"time"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
	"clare/internal/wal"
)

// ErrWALDisabled answers log operations (SYNC) on a server booted
// without -wal-dir.
var ErrWALDisabled = errors.New("crs: wal not enabled")

// AttachWAL wires the shard's write-ahead log into the server. Call it
// after the base store is loaded (Load/Adopt) and before Serve; follow
// with Recover to replay the log over the base.
func (s *Server) AttachWAL(l *wal.Log) { s.walLog = l }

// WAL returns the attached log (nil when the server runs without one).
func (s *Server) WAL() *wal.Log { return s.walLog }

// AppliedSeq reports the last log sequence number applied to the store
// (0 before any write).
func (s *Server) AppliedSeq() uint64 { return s.applied.Load() }

// SetReadOnly marks the server a replica: client writes (BEGIN, WRITE)
// are rejected with ErrReadOnly while replicated applies (REPL) and
// retrievals proceed.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// IsReadOnly reports whether the server rejects client writes.
func (s *Server) IsReadOnly() bool { return s.readOnly.Load() }

// Recover replays the attached log over the loaded base store — the
// crash-recovery path. The base (compiled .pl/kb files) is immutable on
// disk, so base + full log replay reproduces the pre-crash store; the
// log's own Open already truncated any torn tail, so replay sees a
// clean prefix. Returns the number of records applied.
func (s *Server) Recover() (int, error) {
	if s.walLog == nil {
		return 0, nil
	}
	n := 0
	var applyErr error
	err := s.walLog.Range(1, func(rec wal.Record) bool {
		if applyErr = s.applyRecord(rec); applyErr != nil {
			return false
		}
		s.applied.Store(rec.Seq)
		n++
		return true
	})
	if err == nil {
		err = applyErr
	}
	return n, err
}

// LogSuffix serves the SYNC wire command: up to max records with
// seq >= from, plus the log's last seq.
func (s *Server) LogSuffix(from uint64, max int) ([]wal.Record, uint64, error) {
	if s.walLog == nil {
		return nil, 0, ErrWALDisabled
	}
	return s.walLog.Suffix(from, max)
}

// ApplyReplicated lands one primary-sequenced record on this server —
// the REPL wire command, driven by the cluster shipper or a follower's
// catch-up. The returned seq is the server's applied watermark and is
// authoritative for the caller: a duplicate (seq <= applied) acks
// without re-applying, a gap (seq > applied+1) acks the current
// watermark without applying so the sender rewinds, and only the exact
// next record is logged and applied.
func (s *Server) ApplyReplicated(rec wal.Record) (uint64, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	applied := s.applied.Load()
	if rec.Seq != applied+1 {
		return applied, nil
	}
	if s.walLog != nil && s.walLog.LastSeq() < rec.Seq {
		if err := s.walLog.AppendAt(rec); err != nil {
			return applied, err
		}
	}
	if err := s.applyRecord(rec); err != nil {
		return applied, err
	}
	s.applied.Store(rec.Seq)
	s.replicated.Add(1)
	s.met.replApplied.Inc()
	return rec.Seq, nil
}

// applyRecord mutates the store per one log record (replay and
// replication share it). Unlike the client write path, a missing
// predicate is created from the record's module — the record was
// validated against a loaded predicate on the primary, so a miss here
// means the record legitimately introduced it.
func (s *Server) applyRecord(rec wal.Record) error {
	cl, err := parse.Term(rec.Clause)
	if err != nil {
		return fmt.Errorf("crs: wal seq %d: %w", rec.Seq, err)
	}
	head, body := splitClause(cl)
	pi, err := indicatorOf(head)
	if err != nil {
		return fmt.Errorf("crs: wal seq %d: %w", rec.Seq, err)
	}
	s.mu.RLock()
	ps, ok := s.preds[pi]
	s.mu.RUnlock()
	if !ok {
		if rec.Op == wal.OpRetract {
			return fmt.Errorf("crs: wal seq %d retracts unknown predicate %v", rec.Seq, pi)
		}
		return s.Load(rec.Module, []core.ClauseTerm{{Head: head, Body: body}})
	}
	ps.lock.Lock()
	defer ps.lock.Unlock()
	var newClauses []core.ClauseTerm
	switch rec.Op {
	case wal.OpAssert:
		newClauses = append(append([]core.ClauseTerm(nil), ps.clauses...), core.ClauseTerm{Head: head, Body: body})
	case wal.OpRetract:
		idx := matchClause(ps.clauses, head, body)
		if idx < 0 {
			return fmt.Errorf("crs: wal seq %d: no clause of %v matches %s", rec.Seq, pi, rec.Clause)
		}
		if len(ps.clauses) == 1 {
			return fmt.Errorf("crs: wal seq %d would empty %v", rec.Seq, pi)
		}
		newClauses = append(append([]core.ClauseTerm(nil), ps.clauses[:idx]...), ps.clauses[idx+1:]...)
	default:
		return fmt.Errorf("crs: wal seq %d: unknown op %v", rec.Seq, rec.Op)
	}
	if _, err := s.retriever.AddClauses(ps.module, newClauses); err != nil {
		return fmt.Errorf("crs: wal seq %d apply: %w", rec.Seq, err)
	}
	ps.clauses = newClauses
	return nil
}

// noteWrite publishes a completed primary write: the applied watermark
// advances to seq and the per-op write counter moves by n.
func (s *Server) noteWrite(seq uint64, op wal.Op, n int) {
	s.advanceApplied(seq)
	switch op {
	case wal.OpAssert:
		s.met.writesAssert.Add(int64(n))
	case wal.OpRetract:
		s.met.writesRetract.Add(int64(n))
	}
}

// advanceApplied lifts the applied watermark to seq (never lowers it —
// concurrent writes on different predicates may complete out of seq
// order).
func (s *Server) advanceApplied(seq uint64) {
	for {
		cur := s.applied.Load()
		if seq <= cur || s.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// AssertNow appends one clause outside any transaction (the WRITE wire
// command): logged, applied, and durable per the fsync policy before
// the sequence number returns.
func (c *Session) AssertNow(head, body term.Term) (uint64, error) {
	return c.writeNow(wal.OpAssert, head, body)
}

// RetractNow removes the first clause unifying with head :- body,
// outside any transaction. Retracting a predicate's last clause is
// rejected (a compiled clause file cannot be empty; drop the predicate
// by reloading instead).
func (c *Session) RetractNow(head, body term.Term) (uint64, error) {
	return c.writeNow(wal.OpRetract, head, body)
}

func (c *Session) writeNow(op wal.Op, head, body term.Term) (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	if c.tx != nil {
		// An autocommit write under an open transaction would deadlock on
		// the transaction's own predicate locks; stage through ASSERT
		// instead.
		c.mu.Unlock()
		return 0, ErrInTransaction
	}
	c.mu.Unlock()
	s := c.srv
	if s.readOnly.Load() {
		return 0, ErrReadOnly
	}
	pi, err := indicatorOf(head)
	if err != nil {
		return 0, err
	}
	s.mu.RLock()
	ps, ok := s.preds[pi]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("crs: unknown predicate %v (load it first)", pi)
	}
	tr := s.retriever.Tracer().Start("write")
	defer s.retriever.Tracer().Finish(tr)
	lockStart := time.Now()
	ps.lock.Lock()
	s.met.lockWaitWrite.ObserveDuration(time.Since(lockStart))
	defer ps.lock.Unlock()

	clause := renderClause(head, body)
	idx := -1
	if op == wal.OpRetract {
		// Validate before logging: a no-match retract must never enter
		// the log (replicas would fail the same lookup and wedge).
		if idx = matchClause(ps.clauses, head, body); idx < 0 {
			return 0, fmt.Errorf("crs: no clause of %v matches %s", pi, clause)
		}
		if len(ps.clauses) == 1 {
			return 0, fmt.Errorf("crs: retract would empty %v (reload the predicate instead)", pi)
		}
	}
	var seq uint64
	sp := tr.Span(nil, "wal")
	if s.walLog != nil {
		if seq, err = s.walLog.Append(op, ps.module, clause); err != nil {
			sp.End()
			return 0, err
		}
	} else {
		seq = s.memSeq.Add(1)
	}
	sp.End()

	applySp := tr.Span(nil, "apply")
	defer applySp.End()
	var newClauses []core.ClauseTerm
	if op == wal.OpAssert {
		newClauses = append(append([]core.ClauseTerm(nil), ps.clauses...), core.ClauseTerm{Head: head, Body: body})
	} else {
		newClauses = append(append([]core.ClauseTerm(nil), ps.clauses[:idx]...), ps.clauses[idx+1:]...)
	}
	if _, err := s.retriever.AddClauses(ps.module, newClauses); err != nil {
		return 0, fmt.Errorf("crs: apply %v: %w", op, err)
	}
	ps.clauses = newClauses
	s.noteWrite(seq, op, 1)
	return seq, nil
}

// renderClause renders a clause back to the Edinburgh source form log
// records carry (no trailing '.'); variables print as _G<id>, which
// parse.Term round-trips.
func renderClause(head, body term.Term) string {
	if body == nil || term.Equal(body, term.Atom("true")) {
		return fmt.Sprintf("%s", head)
	}
	return fmt.Sprintf("%s :- %s", head, body)
}

// matchClause finds the first stored clause jointly unifiable with
// head :- body (the retract selection rule; deterministic, so every
// replica picks the same clause). The stored clause is renamed so its
// variables cannot collide with the query's.
func matchClause(clauses []core.ClauseTerm, head, body term.Term) int {
	want := clausePair(head, body)
	for i, cl := range clauses {
		if unify.Unifiable(want, term.Rename(clausePair(cl.Head, cl.Body))) {
			return i
		}
	}
	return -1
}

func clausePair(head, body term.Term) term.Term {
	if body == nil {
		body = term.Atom("true")
	}
	return &term.Compound{Functor: ":-", Args: []term.Term{head, body}}
}
