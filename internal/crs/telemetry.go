package crs

import (
	"fmt"
	"sync"

	"clare/internal/core"
	"clare/internal/plan"
	"clare/internal/telemetry"
	"clare/internal/wal"
)

// serverMetrics holds the CRS-level registry handles. All handles are
// nil-safe, so a server built over an uninstrumented retriever pays
// nothing (the per-predicate map stays empty because resolve short-
// circuits on a nil registry).
type serverMetrics struct {
	reg *telemetry.Registry

	requests map[core.SearchMode]*telemetry.Counter

	predMu sync.Mutex
	byPred map[core.Indicator]*telemetry.Counter

	sessOpen  *telemetry.Gauge
	sessTotal *telemetry.Counter

	lockWaitRead  *telemetry.Histogram
	lockWaitWrite *telemetry.Histogram

	txBegins  *telemetry.Counter
	txCommits *telemetry.Counter
	txAborts  *telemetry.Counter

	writesAssert  *telemetry.Counter
	writesRetract *telemetry.Counter
	replApplied   *telemetry.Counter

	wireErrs *telemetry.Counter

	slowCaptures *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		reg:      reg,
		requests: make(map[core.SearchMode]*telemetry.Counter, 4),
		byPred:   make(map[core.Indicator]*telemetry.Counter),
	}
	for _, mode := range []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2} {
		m.requests[mode] = reg.Counter("clare_crs_requests_total",
			"CRS retrievals served per search mode", telemetry.Labels{"mode": mode.String()})
	}
	m.sessOpen = reg.Gauge("clare_crs_sessions_open", "CRS sessions currently open", nil)
	m.sessTotal = reg.Counter("clare_crs_sessions_total", "CRS sessions ever opened", nil)
	m.lockWaitRead = reg.Histogram("clare_crs_lock_wait_seconds",
		"wall time waiting on a predicate lock", nil, telemetry.Labels{"op": "read"})
	m.lockWaitWrite = reg.Histogram("clare_crs_lock_wait_seconds",
		"wall time waiting on a predicate lock", nil, telemetry.Labels{"op": "write"})
	m.txBegins = reg.Counter("clare_crs_transactions_total",
		"CRS transaction operations", telemetry.Labels{"op": "begin"})
	m.txCommits = reg.Counter("clare_crs_transactions_total",
		"CRS transaction operations", telemetry.Labels{"op": "commit"})
	m.txAborts = reg.Counter("clare_crs_transactions_total",
		"CRS transaction operations", telemetry.Labels{"op": "abort"})
	m.writesAssert = reg.Counter("clare_crs_writes_total",
		"clauses written through the durable write path", telemetry.Labels{"op": "assert"})
	m.writesRetract = reg.Counter("clare_crs_writes_total",
		"clauses written through the durable write path", telemetry.Labels{"op": "retract"})
	m.replApplied = reg.Counter("clare_crs_replicated_total",
		"primary-sequenced records applied via replication", nil)
	m.wireErrs = reg.Counter("clare_crs_wire_errors_total",
		"ERR replies sent over the wire protocol", nil)
	m.slowCaptures = reg.Counter("clare_crs_slow_captures_total",
		"slow retrievals re-profiled into the slow-query log", nil)
	return m
}

// predCounter resolves (and caches) the per-predicate request counter.
func (m *serverMetrics) predCounter(pi core.Indicator) *telemetry.Counter {
	if m.reg == nil {
		return nil
	}
	m.predMu.Lock()
	defer m.predMu.Unlock()
	c, ok := m.byPred[pi]
	if !ok {
		c = m.reg.Counter("clare_crs_predicate_requests_total",
			"CRS retrievals served per predicate",
			telemetry.Labels{"predicate": fmt.Sprintf("%s/%d", pi.Functor, pi.Arity)})
		m.byPred[pi] = c
	}
	return c
}

// Snapshot is a consistent view of the server's service counters,
// returned by Server.Snapshot and carried by the STATS wire command.
type Snapshot struct {
	// Served counts completed retrievals per search mode.
	Served map[core.SearchMode]int
	// Sessions is the number of currently open sessions.
	Sessions int
	// Boards is the configured chassis width.
	Boards int
	// QueryCache is the retriever's query-encoding cache state.
	QueryCache core.QueryCacheStats
	// Health is the board pool's current health (trips, re-admissions,
	// units free/leased/tripped).
	Health core.Health
	// Degraded counts served retrievals that fell down the degradation
	// ladder (any rung); Retries and Faults are the total retry attempts
	// spent and injected faults absorbed across served retrievals.
	Degraded int64
	Retries  int64
	Faults   int64
	// EngineNative reports whether the retriever runs the native
	// vectorized engine rather than the cycle-accurate simulation.
	EngineNative bool
	// ScanWorkers is the resolved partitioned-scan width for native FS1
	// scans (1 means serial; the sim engine ignores it).
	ScanWorkers int
	// StoreMapped reports whether the retriever's predicates decode out
	// of a read-only store mapping (the mmap cold-start path).
	StoreMapped bool
	// PlanEnabled reports whether the adaptive planner is armed; Plan
	// carries its service counters and PlanPredicates the statistics
	// store's predicate count.
	PlanEnabled    bool
	Plan           plan.Counters
	PlanPredicates int
	// LatencyWindow is the per-predicate latency tracker's sample
	// capacity.
	LatencyWindow int
	// WAL is the durable write path's state: enabled says whether a log
	// is attached, Seq/Applied are the log's last and the store's
	// applied sequence numbers (Applied lags Seq only transiently),
	// Replicated counts records applied via replication, and ReadOnly
	// marks a replica.
	WALEnabled bool
	WALSeq     uint64
	WALApplied uint64
	WALStats   wal.LogStats
	Replicated int64
	ReadOnly   bool
	// FlightSize/FlightRecorded mirror the flight recorder ring (0/0
	// when no recorder is attached); SlowCaptured/SlowSuppressed are the
	// slow-query log's capture and rate-limit counters.
	FlightSize     int
	FlightRecorded uint64
	SlowCaptured   int64
	SlowSuppressed int64
	// SLOEnabled reports whether an objective is configured; SLO then
	// carries the tracker's full status (windows, burn rates, breaches).
	SLOEnabled bool
	SLO        telemetry.SLOStatus
}

// Snapshot captures the server's current service counters.
func (s *Server) Snapshot() Snapshot {
	s.statsMu.Lock()
	degraded, retries, faults := s.degraded, s.retries, s.faults
	s.statsMu.Unlock()
	sn := Snapshot{
		Served:        s.Served(),
		Sessions:      s.Sessions(),
		Boards:        s.retriever.Boards(),
		QueryCache:    s.retriever.QueryCache(),
		Health:        s.retriever.Health(),
		Degraded:      degraded,
		Retries:       retries,
		Faults:        faults,
		EngineNative:  s.retriever.Engine() == core.EngineNative,
		ScanWorkers:   s.retriever.ScanWorkers(),
		StoreMapped:   s.retriever.StoreMapped(),
		LatencyWindow: s.lat.Window(),
		WALApplied:    s.applied.Load(),
		Replicated:    s.replicated.Load(),
		ReadOnly:      s.readOnly.Load(),
	}
	if p := s.retriever.Planner(); p != nil {
		sn.PlanEnabled = true
		sn.Plan = p.Counters()
		sn.PlanPredicates = p.Predicates()
	}
	if s.walLog != nil {
		sn.WALEnabled = true
		sn.WALStats = s.walLog.Stats()
		sn.WALSeq = sn.WALStats.LastSeq
	} else {
		sn.WALSeq = sn.WALApplied
	}
	sn.FlightSize = s.flight.Size()
	sn.FlightRecorded = s.flight.Recorded()
	sn.SlowCaptured = s.slowLog.Captured()
	sn.SlowSuppressed = s.slowLog.Suppressed()
	if s.slo != nil {
		sn.SLOEnabled = true
		sn.SLO = s.slo.Status()
	}
	return sn
}

// statsKV flattens a snapshot into the deterministic key/value sequence
// the STATS wire reply carries. Keys contain no spaces; values are
// integers.
type statsKV struct {
	Key   string
	Value int64
}

func (sn Snapshot) lines() []statsKV {
	kv := []statsKV{}
	for _, mode := range []core.SearchMode{core.ModeSoftware, core.ModeFS1, core.ModeFS2, core.ModeFS1FS2} {
		kv = append(kv, statsKV{"served." + mode.String(), int64(sn.Served[mode])})
	}
	kv = append(kv,
		statsKV{"sessions", int64(sn.Sessions)},
		statsKV{"boards", int64(sn.Boards)},
		statsKV{"qcache.hits", sn.QueryCache.Hits},
		statsKV{"qcache.misses", sn.QueryCache.Misses},
		statsKV{"qcache.entries", int64(sn.QueryCache.Size)},
		statsKV{"boards.free", int64(sn.Health.Free)},
		statsKV{"boards.leased", int64(sn.Health.Leased)},
		statsKV{"boards.tripped", int64(sn.Health.Tripped)},
		statsKV{"boards.trips", sn.Health.Trips},
		statsKV{"boards.readmits", sn.Health.Readmits},
		statsKV{"degraded", sn.Degraded},
		statsKV{"retries", sn.Retries},
		statsKV{"faults", sn.Faults},
	)
	engine := int64(0)
	if sn.EngineNative {
		engine = 1
	}
	kv = append(kv, statsKV{"engine.native", engine})
	kv = append(kv,
		statsKV{"scan.workers", int64(sn.ScanWorkers)},
		statsKV{"store.mapped", b2i(sn.StoreMapped)},
		statsKV{"latency.window", int64(sn.LatencyWindow)},
	)
	kv = append(kv, statsKV{"plan.enabled", b2i(sn.PlanEnabled)})
	if sn.PlanEnabled {
		kv = append(kv,
			statsKV{"plan.decisions", sn.Plan.Decisions},
			statsKV{"plan.sharedvar_skips", sn.Plan.SharedVarSkips},
			statsKV{"plan.observations", sn.Plan.Observations},
			statsKV{"plan.predicates", int64(sn.PlanPredicates)},
		)
		for pm := plan.Mode(0); pm < plan.NumModes; pm++ {
			kv = append(kv, statsKV{"plan.decide." + pm.String(), sn.Plan.ByMode[pm]})
		}
	}
	kv = append(kv,
		statsKV{"wal.enabled", b2i(sn.WALEnabled)},
		statsKV{"wal.seq", int64(sn.WALSeq)},
		statsKV{"wal.applied", int64(sn.WALApplied)},
		statsKV{"wal.segments", int64(sn.WALStats.Segments)},
		statsKV{"wal.appends", sn.WALStats.Appends},
		statsKV{"wal.fsyncs", sn.WALStats.Fsyncs},
		statsKV{"wal.faults", sn.WALStats.Faults},
		statsKV{"wal.replicated", sn.Replicated},
		statsKV{"wal.readonly", b2i(sn.ReadOnly)},
	)
	kv = append(kv,
		statsKV{"flight.size", int64(sn.FlightSize)},
		statsKV{"flight.recorded", int64(sn.FlightRecorded)},
		statsKV{"slow.captured", sn.SlowCaptured},
		statsKV{"slow.suppressed", sn.SlowSuppressed},
		statsKV{"slo.enabled", b2i(sn.SLOEnabled)},
	)
	if sn.SLOEnabled {
		st := sn.SLO
		kv = append(kv,
			statsKV{"slo.p99.us", int64(st.P99Millis * 1000)},
			statsKV{"slo.err.permille", int64(st.ErrRate * 1000)},
			statsKV{"slo.requests", st.Requests},
			statsKV{"slo.slow", st.Slow},
			statsKV{"slo.errors", st.Errors},
			statsKV{"slo.breaches", st.Breaches},
			statsKV{"slo.breach.active", b2i(st.BreachActive)},
			statsKV{"slo.window.short.requests", st.Short.Requests},
			statsKV{"slo.window.short.slow", st.Short.Slow},
			statsKV{"slo.window.short.errors", st.Short.Errors},
			statsKV{"slo.burn.short.milli", int64(st.Short.Burn * 1000)},
			statsKV{"slo.window.long.requests", st.Long.Requests},
			statsKV{"slo.window.long.slow", st.Long.Slow},
			statsKV{"slo.window.long.errors", st.Long.Errors},
			statsKV{"slo.burn.long.milli", int64(st.Long.Burn * 1000)},
		)
	}
	return kv
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
