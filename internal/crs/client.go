package crs

import (
	"bufio"
	"fmt"
	"net"
	"strings"
)

// Client is a CRS wire-protocol client.
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
	// SessionID is assigned by HELLO.
	SessionID string
}

// Dial connects to a CRS server and performs the HELLO handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, in: bufio.NewScanner(conn), out: bufio.NewWriter(conn)}
	c.in.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line, err := c.roundTrip("HELLO")
	if err != nil {
		conn.Close()
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		conn.Close()
		return nil, fmt.Errorf("crs client: bad handshake %q", line)
	}
	c.SessionID = fields[2]
	return c, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	_, _ = c.roundTrip("QUIT")
	return c.conn.Close()
}

func (c *Client) send(line string) error {
	if _, err := fmt.Fprintln(c.out, line); err != nil {
		return err
	}
	return c.out.Flush()
}

func (c *Client) recv() (string, error) {
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("crs client: connection closed")
	}
	return c.in.Text(), nil
}

func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	resp, err := c.recv()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("crs server: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// RetrieveResult is a client-side view of one retrieval.
type RetrieveResult struct {
	// Clauses are the candidate clauses in source form (with final '.').
	Clauses []string
	// Stats is the raw STATS line.
	Stats string
}

// Retrieve runs a retrieval. mode is one of software|fs1|fs2|fs1+fs2|auto;
// goal is Edinburgh source without the final '.'.
func (c *Client) Retrieve(mode, goal string) (*RetrieveResult, error) {
	first, err := c.roundTrip(fmt.Sprintf("RETRIEVE %s %s.", mode, goal))
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "CANDIDATES %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected reply %q", first)
	}
	res := &RetrieveResult{}
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "C ") {
			return nil, fmt.Errorf("crs client: unexpected candidate line %q", line)
		}
		res.Clauses = append(res.Clauses, strings.TrimPrefix(line, "C "))
	}
	stats, err := c.recv()
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// Stats asks the server for its per-mode service counters (the raw SERVED
// line).
func (c *Client) Stats() (string, error) {
	line, err := c.roundTrip("STATS")
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "SERVED") {
		return "", fmt.Errorf("crs client: unexpected stats reply %q", line)
	}
	return line, nil
}

// Begin starts a transaction.
func (c *Client) Begin() error { return c.simple("BEGIN") }

// Assert stages a clause (source without final '.').
func (c *Client) Assert(clause string) error {
	return c.simple(fmt.Sprintf("ASSERT %s.", clause))
}

// Commit commits the transaction.
func (c *Client) Commit() error { return c.simple("COMMIT") }

// Abort aborts the transaction.
func (c *Client) Abort() error { return c.simple("ABORT") }

func (c *Client) simple(line string) error {
	resp, err := c.roundTrip(line)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("crs client: unexpected reply %q", resp)
	}
	return nil
}
