package crs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"clare/internal/core"
	"clare/internal/telemetry"
)

// DefaultTimeout bounds the dial and each wire read/write when Dial is
// used. Generous: a retrieval behind it may queue for a board.
const DefaultTimeout = 30 * time.Second

// Client retry defaults: transport failures on idempotent requests are
// retried over a fresh connection up to DefaultMaxRetries times, with
// DefaultRetryBackoff doubling between attempts.
const (
	DefaultMaxRetries   = 2
	DefaultRetryBackoff = 50 * time.Millisecond
)

// ServerError is a protocol-level "ERR <message>" reply: the server
// received the request and rejected it. It is never retried — retrying
// a rejected request would just be rejected again (or worse, applied
// twice after a transient rejection).
type ServerError struct {
	// Msg is the server's message after the ERR prefix.
	Msg string
}

func (e *ServerError) Error() string { return "crs server: " + e.Msg }

// Client is a CRS wire-protocol client. Idempotent requests (RETRIEVE,
// STATS) survive transport failures: the client reconnects with
// exponential backoff and replays the request, up to MaxRetries times.
// Protocol rejections (ServerError) and transaction commands are never
// retried — a reconnect opens a fresh session, so any staged
// transaction state is gone and the caller must re-run the transaction.
type Client struct {
	// addr is the dialed address, kept for reconnects.
	addr string
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
	// timeout bounds each wire read and write (0 = no deadline).
	timeout time.Duration
	// callTimeout, when > 0, overrides timeout for the duration of one
	// call (RetrieveWithTimeout/StatsWithTimeout) — including any dial
	// performed by a transparent reconnect within that call.
	callTimeout time.Duration
	// inTx is set between a successful BEGIN and the next COMMIT/ABORT;
	// while set, automatic reconnect-and-retry is disabled.
	inTx bool
	// SessionID is assigned by HELLO (and refreshed on reconnect).
	SessionID string

	// MaxRetries bounds transparent reconnect+retry attempts per
	// idempotent request (0 uses DefaultMaxRetries; negative disables).
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubled per
	// attempt (0 uses DefaultRetryBackoff).
	RetryBackoff time.Duration
}

// Dial connects to a CRS server with DefaultTimeout and performs the
// HELLO handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout)
}

// DialTimeout is Dial with an explicit per-operation timeout. The
// timeout bounds the TCP connect and every subsequent wire read and
// write (each operation gets a fresh deadline); <= 0 disables
// deadlines entirely.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, timeout: timeout}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect (re)establishes the TCP connection and performs the HELLO
// handshake, replacing any previous connection state.
func (c *Client) connect() error {
	dialTO := c.effTimeout()
	if dialTO < 0 {
		dialTO = 0
	}
	conn, err := net.DialTimeout("tcp", c.addr, dialTO)
	if err != nil {
		return err
	}
	c.conn = conn
	c.in = bufio.NewScanner(conn)
	c.in.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	c.out = bufio.NewWriter(conn)
	line, err := c.roundTrip("HELLO")
	if err != nil {
		conn.Close()
		return err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		conn.Close()
		return fmt.Errorf("crs client: bad handshake %q", line)
	}
	c.SessionID = fields[2]
	return nil
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

func (c *Client) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return c.RetryBackoff
}

// retryIdempotent runs op, transparently reconnecting and replaying it
// on transport failures. ServerError replies pass through immediately,
// and nothing is retried inside a transaction (the reconnect would
// silently discard the staged state).
func (c *Client) retryIdempotent(op func() error) error {
	backoff := c.retryBackoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			c.conn.Close()
			if err := c.connect(); err != nil {
				lastErr = err
				if attempt >= c.maxRetries() {
					return lastErr
				}
				continue
			}
		}
		err := op()
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err
		}
		lastErr = err
		if c.inTx || attempt >= c.maxRetries() {
			return lastErr
		}
	}
}

// SetTimeout adjusts the per-operation deadline for subsequent calls
// (<= 0 disables deadlines).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// effTimeout is the deadline in force for the current operation: the
// per-call override when one is active, the global timeout otherwise.
func (c *Client) effTimeout() time.Duration {
	if c.callTimeout > 0 {
		return c.callTimeout
	}
	return c.timeout
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	_, _ = c.roundTrip("QUIT")
	return c.conn.Close()
}

// Sever drops the connection without the QUIT handshake. Close waits
// for the server's goodbye, which deadlocks a caller cancelling an
// in-flight request — the goodbye queues behind the very reply being
// abandoned. Sever fails the pending read immediately instead; the
// connection is unusable afterwards.
func (c *Client) Sever() error { return c.conn.Close() }

func (c *Client) send(line string) error {
	if to := c.effTimeout(); to > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(to)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(c.out, line); err != nil {
		return err
	}
	return c.out.Flush()
}

func (c *Client) recv() (string, error) {
	if to := c.effTimeout(); to > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(to)); err != nil {
			return "", err
		}
	}
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("crs client: connection closed")
	}
	return c.in.Text(), nil
}

func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	resp, err := c.recv()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return "", &ServerError{Msg: strings.TrimPrefix(resp, "ERR ")}
	}
	return resp, nil
}

// RetrieveResult is a client-side view of one retrieval.
type RetrieveResult struct {
	// Clauses are the candidate clauses in source form (with final '.').
	Clauses []string
	// Stats is the raw STATS line.
	Stats string
	// Spans is the server-side span subtree, decoded from the TRACE
	// reply line. Populated only for traced calls (RetrieveTraced with a
	// non-nil context) against a server with a tracer.
	Spans []telemetry.WireSpan
}

// RetrieveWithTimeout is Retrieve under a per-call deadline override:
// every wire read/write (and any reconnect dial) of this one call is
// bounded by d instead of the client's global timeout. d <= 0 leaves
// the global timeout in force. The cluster router uses this to hold a
// per-shard budget tighter than the connection-wide SetTimeout.
func (c *Client) RetrieveWithTimeout(mode, goal string, d time.Duration) (*RetrieveResult, error) {
	return c.RetrieveTracedWithTimeout(mode, goal, nil, d)
}

// RetrieveTracedWithTimeout is RetrieveTraced under a per-call deadline
// override (see RetrieveWithTimeout).
func (c *Client) RetrieveTracedWithTimeout(mode, goal string, tc *telemetry.TraceContext, d time.Duration) (*RetrieveResult, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.RetrieveTraced(mode, goal, tc)
}

// Retrieve runs a retrieval. mode is one of software|fs1|fs2|fs1+fs2|auto;
// goal is Edinburgh source without the final '.'. Retrieve is
// idempotent: on a transport failure the client reconnects with backoff
// and replays the request (see Client).
func (c *Client) Retrieve(mode, goal string) (*RetrieveResult, error) {
	return c.RetrieveTraced(mode, goal, nil)
}

// RetrieveTraced is Retrieve carrying a trace context: the request line
// gains the " trace=<id>:<span>" header, and the server's span subtree
// comes back decoded in RetrieveResult.Spans for the caller to graft
// under its own span. Only send a context to servers that understand
// the header (a server predating it rejects the goal). tc nil is plain
// Retrieve.
func (c *Client) RetrieveTraced(mode, goal string, tc *telemetry.TraceContext) (*RetrieveResult, error) {
	var res *RetrieveResult
	err := c.retryIdempotent(func() (err error) {
		res, err = c.retrieveOnce(mode, goal, tc)
		return err
	})
	return res, err
}

func (c *Client) retrieveOnce(mode, goal string, tc *telemetry.TraceContext) (*RetrieveResult, error) {
	first, err := c.roundTrip(fmt.Sprintf("RETRIEVE %s %s.%s", mode, goal, traceHeader(tc)))
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "CANDIDATES %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected reply %q", first)
	}
	res := &RetrieveResult{}
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "C ") {
			return nil, fmt.Errorf("crs client: unexpected candidate line %q", line)
		}
		res.Clauses = append(res.Clauses, strings.TrimPrefix(line, "C "))
	}
	stats, err := c.recv()
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	if tc != nil {
		if res.Spans, err = c.recvTrace(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// traceHeader renders the request-line suffix for a trace context ("",
// or " trace=<id>:<span>").
func traceHeader(tc *telemetry.TraceContext) string {
	if tc == nil {
		return ""
	}
	return " trace=" + tc.String()
}

// recvTrace reads and decodes the TRACE reply line a traced call ends
// with ("-" decodes to no spans).
func (c *Client) recvTrace() ([]telemetry.WireSpan, error) {
	line, err := c.recv()
	if err != nil {
		return nil, err
	}
	tok, ok := strings.CutPrefix(line, "TRACE ")
	if !ok {
		return nil, fmt.Errorf("crs client: unexpected trace line %q", line)
	}
	if tok == "-" {
		return nil, nil
	}
	spans, err := telemetry.DecodeWireSpans(tok)
	if err != nil {
		return nil, fmt.Errorf("crs client: %w", err)
	}
	return spans, nil
}

// ExplainResult is a client-side view of one EXPLAIN call.
type ExplainResult struct {
	// Entries is the profile in the server's (pipeline) order.
	Entries []core.ExplainEntry
	// Spans is the server-side span subtree (traced calls only).
	Spans []telemetry.WireSpan
}

// Get returns the value for key ("" when absent).
func (e *ExplainResult) Get(key string) string {
	for _, kv := range e.Entries {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// Explain profiles one retrieval (the EXPLAIN wire command): candidate
// counts and rejection ratios per filter rung plus per-stage times.
// Idempotent and retried like Retrieve.
func (c *Client) Explain(mode, goal string) (*ExplainResult, error) {
	return c.ExplainTraced(mode, goal, nil)
}

// ExplainTraced is Explain carrying a trace context (see RetrieveTraced).
func (c *Client) ExplainTraced(mode, goal string, tc *telemetry.TraceContext) (*ExplainResult, error) {
	var res *ExplainResult
	err := c.retryIdempotent(func() (err error) {
		res, err = c.explainOnce(mode, goal, tc)
		return err
	})
	return res, err
}

// ExplainTracedWithTimeout is ExplainTraced under a per-call deadline
// override (see RetrieveWithTimeout).
func (c *Client) ExplainTracedWithTimeout(mode, goal string, tc *telemetry.TraceContext, d time.Duration) (*ExplainResult, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.ExplainTraced(mode, goal, tc)
}

func (c *Client) explainOnce(mode, goal string, tc *telemetry.TraceContext) (*ExplainResult, error) {
	first, err := c.roundTrip(fmt.Sprintf("EXPLAIN %s %s.%s", mode, goal, traceHeader(tc)))
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "EXPLAIN %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected explain reply %q", first)
	}
	res := &ExplainResult{}
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "E" {
			return nil, fmt.Errorf("crs client: unexpected explain line %q", line)
		}
		res.Entries = append(res.Entries, core.ExplainEntry{Key: fields[1], Value: fields[2]})
	}
	if tc != nil {
		if res.Spans, err = c.recvTrace(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// StatsWithTimeout is Stats under a per-call deadline override, with
// the same semantics as RetrieveWithTimeout.
func (c *Client) StatsWithTimeout(d time.Duration) (map[string]int64, error) {
	if d > 0 {
		c.callTimeout = d
		defer func() { c.callTimeout = 0 }()
	}
	return c.Stats()
}

// Stats asks the server for its service counters: served.<mode>,
// sessions, boards, qcache.{hits,misses,entries}, board health
// (boards.*) and the fault-tolerance tallies (see the wire-protocol
// comment in net.go). Stats is idempotent and retried like Retrieve.
func (c *Client) Stats() (map[string]int64, error) {
	var out map[string]int64
	err := c.retryIdempotent(func() (err error) {
		out, err = c.statsOnce()
		return err
	})
	return out, err
}

func (c *Client) statsOnce() (map[string]int64, error) {
	first, err := c.roundTrip("STATS")
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "STATS %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected stats reply %q", first)
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "S" {
			return nil, fmt.Errorf("crs client: unexpected stats line %q", line)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("crs client: bad stats value in %q", line)
		}
		out[fields[1]] = v
	}
	return out, nil
}

// Flight pulls the last n flight-recorder records (n <= 0 = the whole
// ring), oldest first. Idempotent and retried like Stats.
func (c *Client) Flight(n int) ([]telemetry.FlightRecord, error) {
	var out []telemetry.FlightRecord
	err := c.retryIdempotent(func() (err error) {
		out, err = flightOnce(c, n)
		return err
	})
	return out, err
}

// SlowTail pulls the last n slow-query captures (n <= 0 = everything
// the log holds), oldest first. Idempotent and retried like Stats.
func (c *Client) SlowTail(n int) ([]telemetry.SlowCapture, error) {
	var out []telemetry.SlowCapture
	err := c.retryIdempotent(func() (err error) {
		out, err = slowTailOnce(c, n)
		return err
	})
	return out, err
}

func flightOnce(c *Client, n int) ([]telemetry.FlightRecord, error) {
	return dumpOnce[telemetry.FlightRecord](c, "FLIGHT", "F", n)
}

func slowTailOnce(c *Client, n int) ([]telemetry.SlowCapture, error) {
	return dumpOnce[telemetry.SlowCapture](c, "SLOWLOG", "Q", n)
}

// dumpOnce runs one "<verb> [n]" → "<verb> <k>" + k "<tag> <json>"
// exchange, decoding each body line into T.
func dumpOnce[T any](c *Client, verb, tag string, n int) ([]T, error) {
	req := verb
	if n > 0 {
		req = fmt.Sprintf("%s %d", verb, n)
	}
	first, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	var k int
	if _, err := fmt.Sscanf(first, verb+" %d", &k); err != nil {
		return nil, fmt.Errorf("crs client: unexpected %s reply %q", verb, first)
	}
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		body, ok := strings.CutPrefix(line, tag+" ")
		if !ok {
			return nil, fmt.Errorf("crs client: unexpected %s line %q", verb, line)
		}
		var rec T
		if err := json.Unmarshal([]byte(body), &rec); err != nil {
			return nil, fmt.Errorf("crs client: bad %s json: %v", verb, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Begin starts a transaction. Until the matching Commit or Abort, the
// client suspends automatic reconnect-and-retry: staged transaction
// state lives in the server session, which a reconnect would discard.
func (c *Client) Begin() error {
	if err := c.simple("BEGIN"); err != nil {
		return err
	}
	c.inTx = true
	return nil
}

// Assert stages a clause (source without final '.').
func (c *Client) Assert(clause string) error {
	return c.simple(fmt.Sprintf("ASSERT %s.", clause))
}

// Commit commits the transaction.
func (c *Client) Commit() error {
	err := c.simple("COMMIT")
	c.inTx = false
	return err
}

// Abort aborts the transaction.
func (c *Client) Abort() error {
	err := c.simple("ABORT")
	c.inTx = false
	return err
}

func (c *Client) simple(line string) error {
	resp, err := c.roundTrip(line)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("crs client: unexpected reply %q", resp)
	}
	return nil
}
