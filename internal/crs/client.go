package crs

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// DefaultTimeout bounds the dial and each wire read/write when Dial is
// used. Generous: a retrieval behind it may queue for a board.
const DefaultTimeout = 30 * time.Second

// Client is a CRS wire-protocol client.
type Client struct {
	conn net.Conn
	in   *bufio.Scanner
	out  *bufio.Writer
	// timeout bounds each wire read and write (0 = no deadline).
	timeout time.Duration
	// SessionID is assigned by HELLO.
	SessionID string
}

// Dial connects to a CRS server with DefaultTimeout and performs the
// HELLO handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout)
}

// DialTimeout is Dial with an explicit per-operation timeout. The
// timeout bounds the TCP connect and every subsequent wire read and
// write (each operation gets a fresh deadline); <= 0 disables
// deadlines entirely.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	dialTO := timeout
	if dialTO < 0 {
		dialTO = 0
	}
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, in: bufio.NewScanner(conn), out: bufio.NewWriter(conn), timeout: timeout}
	c.in.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	line, err := c.roundTrip("HELLO")
	if err != nil {
		conn.Close()
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		conn.Close()
		return nil, fmt.Errorf("crs client: bad handshake %q", line)
	}
	c.SessionID = fields[2]
	return c, nil
}

// SetTimeout adjusts the per-operation deadline for subsequent calls
// (<= 0 disables deadlines).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	_, _ = c.roundTrip("QUIT")
	return c.conn.Close()
}

func (c *Client) send(line string) error {
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(c.out, line); err != nil {
		return err
	}
	return c.out.Flush()
}

func (c *Client) recv() (string, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return "", err
		}
	}
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("crs client: connection closed")
	}
	return c.in.Text(), nil
}

func (c *Client) roundTrip(line string) (string, error) {
	if err := c.send(line); err != nil {
		return "", err
	}
	resp, err := c.recv()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("crs server: %s", strings.TrimPrefix(resp, "ERR "))
	}
	return resp, nil
}

// RetrieveResult is a client-side view of one retrieval.
type RetrieveResult struct {
	// Clauses are the candidate clauses in source form (with final '.').
	Clauses []string
	// Stats is the raw STATS line.
	Stats string
}

// Retrieve runs a retrieval. mode is one of software|fs1|fs2|fs1+fs2|auto;
// goal is Edinburgh source without the final '.'.
func (c *Client) Retrieve(mode, goal string) (*RetrieveResult, error) {
	first, err := c.roundTrip(fmt.Sprintf("RETRIEVE %s %s.", mode, goal))
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "CANDIDATES %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected reply %q", first)
	}
	res := &RetrieveResult{}
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, "C ") {
			return nil, fmt.Errorf("crs client: unexpected candidate line %q", line)
		}
		res.Clauses = append(res.Clauses, strings.TrimPrefix(line, "C "))
	}
	stats, err := c.recv()
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	return res, nil
}

// Stats asks the server for its service counters: served.<mode>,
// sessions, boards, qcache.{hits,misses,entries} (see the wire-protocol
// comment in net.go).
func (c *Client) Stats() (map[string]int64, error) {
	first, err := c.roundTrip("STATS")
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(first, "STATS %d", &n); err != nil {
		return nil, fmt.Errorf("crs client: unexpected stats reply %q", first)
	}
	out := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		line, err := c.recv()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "S" {
			return nil, fmt.Errorf("crs client: unexpected stats line %q", line)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("crs client: bad stats value in %q", line)
		}
		out[fields[1]] = v
	}
	return out, nil
}

// Begin starts a transaction.
func (c *Client) Begin() error { return c.simple("BEGIN") }

// Assert stages a clause (source without final '.').
func (c *Client) Assert(clause string) error {
	return c.simple(fmt.Sprintf("ASSERT %s.", clause))
}

// Commit commits the transaction.
func (c *Client) Commit() error { return c.simple("COMMIT") }

// Abort aborts the transaction.
func (c *Client) Abort() error { return c.simple("ABORT") }

func (c *Client) simple(line string) error {
	resp, err := c.roundTrip(line)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("crs client: unexpected reply %q", resp)
	}
	return nil
}
