// Package crs implements the Clause Retrieval Server: "an independent
// software module ... which links CLARE with the PDBM Prolog system"
// (§2.2). The CRS selects one of the four searching modes per retrieval,
// and supports "simultaneous access by multiple clients which involves
// procedures for concurrency control and transaction handling".
package crs

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/core"
	"clare/internal/plan"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/wal"
)

// Server owns a CLARE retriever and the clause data behind it, mediating
// concurrent client access. Concurrency is layered: the server mutex
// guards only the predicate and session registries; each predicate has
// its own read/write lock (readers share, transactions exclude); and the
// retriever's board pool hands every retrieval private hardware, so
// sessions on different — or read-only same — predicates proceed in
// parallel up to the chassis width.
type Server struct {
	mu        sync.RWMutex // guards preds and sessions registries only
	retriever *core.Retriever
	preds     map[core.Indicator]*predState
	sessions  map[int64]*Session
	nextSess  int64

	// Stats counts served retrievals by mode, plus the fault-tolerance
	// tallies (degraded rungs taken, retries spent, faults absorbed)
	// accumulated from each retrieval's stage stats.
	statsMu  sync.Mutex
	served   map[core.SearchMode]int
	degraded int64
	retries  int64
	faults   int64

	// met mirrors the service counters into the retriever's metrics
	// registry (no-ops when the retriever is uninstrumented).
	met *serverMetrics

	// lat tracks per-predicate retrieval wall time for the /top admin
	// endpoint ("which predicates are eating the wall clock").
	lat *telemetry.LatencyTracker

	// Always-on diagnosis layer (all optional, nil-safe): the flight
	// recorder the retriever writes into (held here for the FLIGHT verb
	// and crash snapshots), the slow-query log with its thresholds, the
	// SLO tracker, and the structured event logger.
	flight     *telemetry.FlightRecorder
	flightSnap string
	slowLog    *telemetry.SlowQueryLog
	slowAbs    time.Duration // absolute slow threshold; 0 = off
	slowMult   float64       // adaptive: slowMult × predicate rolling P99; 0 = off
	slo        *telemetry.SLOTracker
	log        *telemetry.Logger
	slowWG     sync.WaitGroup

	// Durable write path (see wal.go). walLog is the shard's
	// write-ahead log (nil = writes are memory-only, the pre-WAL
	// behavior); applied tracks the last log sequence number applied to
	// the store; memSeq hands out sequence numbers when no log is
	// attached; readOnly marks a replica (client writes rejected,
	// replicated applies allowed); applyMu serializes the replication
	// apply path so its seq check and store mutation are atomic.
	walLog     *wal.Log
	applyMu    sync.Mutex
	applied    atomic.Uint64
	memSeq     atomic.Uint64
	readOnly   atomic.Bool
	replicated atomic.Int64

	// Connection tracking for Serve/Shutdown.
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
	draining bool
}

// predState is the server's authoritative copy of one predicate: the
// clause list in user order plus its lock.
type predState struct {
	lock    sync.RWMutex
	module  string
	clauses []core.ClauseTerm
}

// NewServer wraps a retriever.
func NewServer(r *core.Retriever) *Server {
	return &Server{
		retriever: r,
		preds:     make(map[core.Indicator]*predState),
		sessions:  make(map[int64]*Session),
		served:    make(map[core.SearchMode]int),
		met:       newServerMetrics(r.Metrics()),
		lat:       telemetry.NewLatencyTracker(0),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Latency exposes the per-predicate latency tracker (for the admin
// mux's /top endpoint).
func (s *Server) Latency() *telemetry.LatencyTracker { return s.lat }

// SetLatencyWindow replaces the latency tracker with one retaining n
// samples per predicate (n <= 0 keeps the default). Call before the
// server starts serving traffic — the swap is not synchronized against
// in-flight observations, and samples already recorded are dropped.
func (s *Server) SetLatencyWindow(n int) { s.lat = telemetry.NewLatencyTracker(n) }

// SetFlight attaches the flight recorder the retriever records into, so
// the FLIGHT verb can dump it, and names the path crash snapshots go to
// ("" disables snapshot-on-panic). Call before serving traffic.
func (s *Server) SetFlight(f *telemetry.FlightRecorder, snapPath string) {
	s.flight = f
	s.flightSnap = snapPath
}

// Flight reports the attached flight recorder (nil when none).
func (s *Server) Flight() *telemetry.FlightRecorder { return s.flight }

// SnapshotFlight writes the flight ring to the configured snapshot path
// (a no-op without a recorder or path). The daemons call it on SIGTERM
// and the SLO tracker's breach callback; the wire handler calls it on
// panic.
func (s *Server) SnapshotFlight() error {
	if s.flight == nil || s.flightSnap == "" {
		return nil
	}
	return s.flight.SnapshotToFile(s.flightSnap)
}

// SetSlowLog arms slow-query capture: a served retrieval whose wall
// time exceeds the threshold re-runs ExplainTraced capture-side and
// lands in l with its full funnel profile. abs is the absolute
// threshold (-slow-ms); mult the adaptive one (mult × the predicate's
// rolling P99); when both are set the smaller wins, and 0/0 disables
// detection. Call before serving traffic.
func (s *Server) SetSlowLog(l *telemetry.SlowQueryLog, abs time.Duration, mult float64) {
	s.slowLog = l
	s.slowAbs = abs
	s.slowMult = mult
}

// SlowLog reports the attached slow-query log (nil when none).
func (s *Server) SlowLog() *telemetry.SlowQueryLog { return s.slowLog }

// SetSLO arms SLO accounting: every served retrieval (and failed
// retrieval) is observed into t. Call before serving traffic.
func (s *Server) SetSLO(t *telemetry.SLOTracker) { s.slo = t }

// SLOTracker reports the attached SLO tracker (nil when none).
func (s *Server) SLOTracker() *telemetry.SLOTracker { return s.slo }

// SetLogger attaches the structured event logger daemon-level events
// route through (nil stays silent).
func (s *Server) SetLogger(l *telemetry.Logger) { s.log = l }

// Errors.
var (
	ErrNoTransaction = errors.New("crs: no transaction in progress")
	ErrInTransaction = errors.New("crs: transaction already in progress")
	ErrClosed        = errors.New("crs: session closed")
	ErrReadOnly      = errors.New("crs: read-only replica (writes go to the shard primary)")
)

// Load installs (or replaces) a predicate's clauses. The new predicate
// state is published write-locked, so a concurrent Retrieve that finds
// it blocks until the compiled clause file is built; only the registry
// update itself holds the server mutex, so loads of different predicates
// and retrievals on other predicates proceed in parallel.
func (s *Server) Load(module string, clauses []core.ClauseTerm) error {
	if len(clauses) == 0 {
		return fmt.Errorf("crs: no clauses")
	}
	pi, err := indicatorOf(clauses[0].Head)
	if err != nil {
		return err
	}
	ps := &predState{module: module}
	ps.lock.Lock() // fresh mutex: never blocks
	s.mu.Lock()
	s.preds[pi] = ps
	s.mu.Unlock()
	if _, err := s.retriever.AddClauses(module, clauses); err != nil {
		s.mu.Lock()
		if s.preds[pi] == ps {
			delete(s.preds, pi)
		}
		s.mu.Unlock()
		ps.lock.Unlock()
		return err
	}
	ps.clauses = append([]core.ClauseTerm(nil), clauses...)
	ps.lock.Unlock()
	return nil
}

// Adopt registers every predicate already present in the retriever but
// unknown to the server — the crsd -kb path, where LoadRetriever built
// the predicates from a compiled store without going through Load.
// Clause terms are decoded back out of the compiled files so the
// transaction path (whose commit rebuilds from the term list) keeps
// working on adopted predicates.
func (s *Server) Adopt() error {
	for _, pi := range s.retriever.Predicates() {
		s.mu.RLock()
		_, known := s.preds[pi]
		s.mu.RUnlock()
		if known {
			continue
		}
		p, ok := s.retriever.PredicateByIndicator(pi)
		if !ok {
			continue
		}
		stored := p.File.All()
		clauses := make([]core.ClauseTerm, 0, len(stored))
		for _, sc := range stored {
			head, body, err := p.File.DecodeClause(sc)
			if err != nil {
				return fmt.Errorf("crs: adopt %v: %w", pi, err)
			}
			if term.Equal(body, term.Atom("true")) {
				body = nil // fact
			}
			clauses = append(clauses, core.ClauseTerm{Head: head, Body: body})
		}
		ps := &predState{module: p.File.Module, clauses: clauses}
		s.mu.Lock()
		s.preds[pi] = ps
		s.mu.Unlock()
	}
	return nil
}

func indicatorOf(t term.Term) (core.Indicator, error) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return core.Indicator{Functor: string(t)}, nil
	case *term.Compound:
		return core.Indicator{Functor: t.Functor, Arity: len(t.Args)}, nil
	}
	return core.Indicator{}, fmt.Errorf("crs: %v is not callable", t)
}

// Retriever exposes the underlying CLARE engine.
func (s *Server) Retriever() *core.Retriever { return s.retriever }

// Served returns how many retrievals ran in each mode.
func (s *Server) Served() map[core.SearchMode]int {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := make(map[core.SearchMode]int, len(s.served))
	for k, v := range s.served {
		out[k] = v
	}
	return out
}

// OpenSession registers a client session.
func (s *Server) OpenSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	sess := &Session{id: s.nextSess, srv: s}
	s.sessions[sess.id] = sess
	s.met.sessTotal.Inc()
	s.met.sessOpen.Add(1)
	return sess
}

// Sessions reports the number of open sessions.
func (s *Server) Sessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// Session is one client's connection to the CRS.
type Session struct {
	id     int64
	srv    *Server
	mu     sync.Mutex
	tx     *tx
	closed bool
}

type tx struct {
	// staged appends per predicate, applied at commit.
	staged map[core.Indicator][]core.ClauseTerm
	// locked predicates (write locks held until commit/abort).
	locked []*predState
}

// ID returns the session identifier.
func (c *Session) ID() int64 { return c.id }

// Close ends the session, aborting any open transaction.
func (c *Session) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.tx != nil {
		c.abortLocked()
	}
	c.closed = true
	c.srv.mu.Lock()
	delete(c.srv.sessions, c.id)
	c.srv.mu.Unlock()
	c.srv.met.sessOpen.Add(-1)
}

// Retrieve serves one retrieval. mode nil lets the CRS heuristic choose.
func (c *Session) Retrieve(goal term.Term, mode *core.SearchMode) (*core.Retrieval, error) {
	return c.RetrieveTraced(goal, mode, nil)
}

// RetrieveTraced is Retrieve joining a remote caller's trace context
// (nil is plain Retrieve) — the wire handler passes the RETRIEVE trace
// header through here so the retrieval's span tree records the caller's
// trace ID and parent span.
func (c *Session) RetrieveTraced(goal term.Term, mode *core.SearchMode, tc *telemetry.TraceContext) (*core.Retrieval, error) {
	pi, ps, err := c.lookup(goal)
	if err != nil {
		return nil, err
	}
	wallStart := time.Now()
	lockStart := time.Now()
	ps.lock.RLock()
	c.srv.met.lockWaitRead.ObserveDuration(time.Since(lockStart))
	defer ps.lock.RUnlock()

	m, d, err := c.chooseMode(goal, mode)
	if err != nil {
		return nil, err
	}
	// No server-wide lock here: the retriever leases a board unit from
	// the chassis pool per call, so concurrent retrievals run in parallel
	// up to the configured board count (the real CRS queues search calls
	// only when all boards are busy).
	rt, err := c.srv.retriever.RetrieveTracedPlan(goal, m, tc, d)
	if err != nil {
		c.srv.slo.Observe(pi.String(), time.Since(wallStart), true)
		return nil, err
	}
	c.account(pi, m, &rt.Stats, time.Since(wallStart), goal, rt.TraceID())
	return rt, nil
}

// Explain serves one EXPLAIN call: a real retrieval plus the host
// reference-unification pass, profiled per filter rung. Locking, mode
// choice and stats accounting match Retrieve — an EXPLAIN is a served
// retrieval that also returns its cost profile.
func (c *Session) Explain(goal term.Term, mode *core.SearchMode, tc *telemetry.TraceContext) (*core.Profile, error) {
	pi, ps, err := c.lookup(goal)
	if err != nil {
		return nil, err
	}
	wallStart := time.Now()
	lockStart := time.Now()
	ps.lock.RLock()
	c.srv.met.lockWaitRead.ObserveDuration(time.Since(lockStart))
	defer ps.lock.RUnlock()

	m, d, err := c.chooseMode(goal, mode)
	if err != nil {
		return nil, err
	}
	p, err := c.srv.retriever.ExplainTraced(goal, m, tc)
	if err != nil {
		c.srv.slo.Observe(pi.String(), time.Since(wallStart), true)
		return nil, err
	}
	p.Plan = d
	var traceID uint64
	if p.Trace != nil {
		traceID = p.Trace.TraceID
	}
	c.account(pi, m, &p.Stats, time.Since(wallStart), goal, traceID)
	return p, nil
}

// lookup validates the session and resolves the goal's predicate state.
func (c *Session) lookup(goal term.Term) (core.Indicator, *predState, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return core.Indicator{}, nil, ErrClosed
	}
	c.mu.Unlock()

	pi, err := indicatorOf(goal)
	if err != nil {
		return core.Indicator{}, nil, err
	}
	c.srv.mu.RLock()
	ps, ok := c.srv.preds[pi]
	c.srv.mu.RUnlock()
	if !ok {
		return core.Indicator{}, nil, fmt.Errorf("crs: unknown predicate %v", pi)
	}
	return pi, ps, nil
}

// chooseMode resolves the effective search mode. nil delegates to the
// retriever's auto path: the adaptive planner when one is configured,
// the static heuristic otherwise (the decision is non-nil only on the
// planner path).
func (c *Session) chooseMode(goal term.Term, mode *core.SearchMode) (core.SearchMode, *plan.Decision, error) {
	if mode != nil {
		return *mode, nil, nil
	}
	return c.srv.retriever.PlanMode(goal)
}

// account publishes one served retrieval into the service counters, the
// per-predicate latency window, and the SLO tracker, then checks the
// slow-query threshold — which must read the rolling P99 before this
// sample joins the window, or a genuine outlier would raise its own
// adaptive bar.
func (c *Session) account(pi core.Indicator, m core.SearchMode, st *core.StageStats, wall time.Duration, goal term.Term, traceID uint64) {
	s := c.srv
	s.statsMu.Lock()
	s.served[m]++
	if st.Degraded != "" {
		s.degraded++
	}
	s.retries += int64(st.Retries)
	s.faults += int64(st.Faults)
	s.statsMu.Unlock()
	s.met.requests[m].Inc()
	s.met.predCounter(pi).Inc()
	thr := s.slowThreshold(pi.String())
	s.lat.Observe(pi.String(), wall)
	s.slo.Observe(pi.String(), wall, false)
	if thr > 0 && wall > thr && s.slowLog.Offer(pi.String()) {
		s.captureSlow(pi, m, goal, wall, thr, traceID)
	}
}

// slowThreshold resolves the predicate's slow-query bar: the absolute
// threshold, the adaptive multiple of its rolling P99, or — when both
// are armed — whichever is smaller. 0 means detection is off (no log,
// no thresholds, or an adaptive bar with no samples yet).
func (s *Server) slowThreshold(pred string) time.Duration {
	if s.slowLog == nil {
		return 0
	}
	thr := s.slowAbs
	if s.slowMult > 0 {
		if p99, ok := s.lat.Quantile(pred, 0.99); ok {
			if a := time.Duration(float64(p99) * s.slowMult); a > 0 && (thr == 0 || a < thr) {
				thr = a
			}
		}
	}
	return thr
}

// captureSlow re-runs the slow retrieval as an EXPLAIN on a background
// goroutine and publishes the capture. The re-run skips the predicate
// read lock — the compiled clause files are immutable once built, so
// the worst case is profiling a slightly newer clause list than the
// retrieval saw — and bypasses account, so a capture can never trigger
// itself.
func (s *Server) captureSlow(pi core.Indicator, m core.SearchMode, goal term.Term, wall, thr time.Duration, traceID uint64) {
	goalText := fmt.Sprint(goal)
	s.slowWG.Add(1)
	go func() {
		defer s.slowWG.Done()
		capt := &telemetry.SlowCapture{
			Predicate:   pi.String(),
			Mode:        m.String(),
			Goal:        goalText,
			WallNS:      int64(wall),
			ThresholdNS: int64(thr),
			TraceID:     traceID,
		}
		if p, err := s.retriever.ExplainTraced(goal, m, nil); err != nil {
			capt.Profile = []telemetry.KV{{Key: "error", Value: err.Error()}}
		} else {
			for _, e := range p.Entries() {
				capt.Profile = append(capt.Profile, telemetry.KV{Key: e.Key, Value: e.Value})
			}
		}
		s.slowLog.Add(capt)
		s.met.slowCaptures.Inc()
		s.log.Warn("slow query captured",
			"predicate", pi.String(), "mode", m.String(),
			"wall", wall.String(), "threshold", thr.String(),
			"trace", fmt.Sprintf("%016x", traceID))
	}()
}

// Begin starts a transaction.
func (c *Session) Begin() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.srv.readOnly.Load() {
		return ErrReadOnly
	}
	if c.tx != nil {
		return ErrInTransaction
	}
	c.tx = &tx{staged: make(map[core.Indicator][]core.ClauseTerm)}
	c.srv.met.txBegins.Inc()
	return nil
}

// Assert stages a clause append within the transaction. The predicate's
// write lock is taken on first touch and held to commit/abort (strict
// two-phase locking).
func (c *Session) Assert(head, body term.Term) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.tx == nil {
		return ErrNoTransaction
	}
	pi, err := indicatorOf(head)
	if err != nil {
		return err
	}
	c.srv.mu.RLock()
	ps, ok := c.srv.preds[pi]
	c.srv.mu.RUnlock()
	if !ok {
		return fmt.Errorf("crs: unknown predicate %v (load it first)", pi)
	}
	if _, touched := c.tx.staged[pi]; !touched {
		lockStart := time.Now()
		ps.lock.Lock()
		c.srv.met.lockWaitWrite.ObserveDuration(time.Since(lockStart))
		c.tx.locked = append(c.tx.locked, ps)
	}
	c.tx.staged[pi] = append(c.tx.staged[pi], core.ClauseTerm{Head: head, Body: body})
	return nil
}

// Commit applies the staged writes (rebuilding the affected compiled
// clause files and their secondary indexes) and releases the locks.
func (c *Session) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.tx == nil {
		return ErrNoTransaction
	}
	txn := c.tx
	defer func() {
		releaseLocks(txn)
		c.tx = nil
	}()
	c.srv.met.txCommits.Inc()
	// Write-ahead: the transaction's appends become one log batch (one
	// durability unit, consecutive seqs, one policy fsync) before any
	// compiled clause file is rebuilt. The affected predicates are all
	// still write-locked, so replay order per predicate matches apply
	// order.
	tr := c.srv.retriever.Tracer().Start("commit")
	defer c.srv.retriever.Tracer().Finish(tr)
	if c.srv.walLog != nil && len(txn.staged) > 0 {
		var recs []wal.Record
		for pi, appended := range txn.staged {
			c.srv.mu.RLock()
			ps := c.srv.preds[pi]
			c.srv.mu.RUnlock()
			for _, cl := range appended {
				recs = append(recs, wal.Record{Op: wal.OpAssert, Module: ps.module, Clause: renderClause(cl.Head, cl.Body)})
			}
		}
		sp := tr.Span(nil, "wal")
		last, err := c.srv.walLog.AppendBatch(recs)
		sp.End()
		if err != nil {
			return fmt.Errorf("crs: commit wal append: %w", err)
		}
		defer func() {
			// Runs after the apply loop below; on a mid-loop failure the
			// log is ahead of the store, which restart replay resolves.
			c.srv.noteWrite(last, wal.OpAssert, len(recs))
		}()
	}
	applySp := tr.Span(nil, "apply")
	defer applySp.End()
	for pi, appended := range txn.staged {
		// The predicate's write lock (held since first Assert) makes the
		// rebuild exclusive; the server mutex is only needed to look the
		// state up, not across the rebuild.
		c.srv.mu.RLock()
		ps := c.srv.preds[pi]
		c.srv.mu.RUnlock()
		newClauses := append(append([]core.ClauseTerm(nil), ps.clauses...), appended...)
		_, err := c.srv.retriever.AddClauses(ps.module, newClauses)
		if err != nil {
			return fmt.Errorf("crs: commit failed for %v: %w", pi, err)
		}
		ps.clauses = newClauses
	}
	return nil
}

// Abort discards the staged writes and releases the locks.
func (c *Session) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.tx == nil {
		return ErrNoTransaction
	}
	c.abortLocked()
	return nil
}

func (c *Session) abortLocked() {
	releaseLocks(c.tx)
	c.tx = nil
	c.srv.met.txAborts.Inc()
}

func releaseLocks(txn *tx) {
	for _, ps := range txn.locked {
		ps.lock.Unlock()
	}
	txn.locked = nil
}
