package crs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"clare/internal/core"
	"clare/internal/parse"
	"clare/internal/telemetry"
	"clare/internal/term"
	"clare/internal/wal"
)

// Wire protocol (text, line-oriented; terms in Edinburgh syntax):
//
//	C: HELLO                    S: OK crs <session-id>
//	C: RETRIEVE <mode> <goal>   S: CANDIDATES <n>
//	                               <n> clause lines, each "C <clause>."
//	                               STATS mode=<m> total=<t> fs1=<a> fs2=<b>
//	C: EXPLAIN <mode> <goal>    S: EXPLAIN <n>
//	                               <n> lines, each "E <key> <value>"
//	C: BEGIN                    S: OK
//	C: ASSERT <clause>          S: OK
//	C: COMMIT                   S: OK
//	C: ABORT                    S: OK
//	C: WRITE assert <clause>    S: OK <seq>
//	C: WRITE retract <clause>   S: OK <seq>
//	C: SYNC <shard> <from-seq>  S: LOG <n> <last-seq>
//	                               <n> lines, each "R <seq> <op> <module> <clause>"
//	C: REPL <seq> <op> <module> <clause>
//	                            S: OK <applied-seq>
//	C: STATS                    S: STATS <n>
//	                               <n> lines, each "S <key> <value>"
//	C: FLIGHT [<n>]             S: FLIGHT <k>
//	                               <k> lines, each "F <json>" — the last k
//	                               flight-recorder records, oldest first
//	C: SLOWLOG [<n>]            S: SLOWLOG <k>
//	                               <k> lines, each "Q <json>" — the last k
//	                               slow-query captures, oldest first
//	C: QUIT                     S: BYE
//
// mode ∈ software|fs1|fs2|fs1+fs2|auto. Errors answer "ERR <message>".
// STATS keys are served.<mode>, sessions, boards, qcache.{hits,misses,
// entries}, the board-health gauges boards.{free,leased,tripped,trips,
// readmits}, the fault-tolerance tallies degraded, retries and faults,
// engine.native (1 when the server runs the native vectorized
// engine, 0 for the cycle-accurate simulation), the durable write
// path's wal.* keys (wal.{enabled,seq,applied,segments,appends,fsyncs,
// faults,replicated,readonly}), the diagnosis layer's flight.{size,
// recorded} and slow.{captured,suppressed}, and — when an SLO is
// configured — the slo.* family (slo.enabled, the objective as
// slo.p99.us / slo.err.permille, lifetime slo.{requests,slow,errors,
// breaches,breach.active}, and per sliding window
// slo.window.{short,long}.{requests,slow,errors} with the burn rates
// scaled ×1000 as slo.burn.{short,long}.milli); values are decimal
// integers. FLIGHT and SLOWLOG bodies are single-line JSON objects
// (see telemetry.FlightRecord and telemetry.SlowCapture); with no
// recorder or log attached both answer an empty listing.
//
// Write path: ASSERT stages into a BEGIN…COMMIT transaction exactly as
// before; WRITE is the autocommit form — one clause logged, applied and
// (per the fsync policy) durable before the assigned log sequence
// number returns. SYNC streams the write-ahead log's suffix from
// from-seq (the shard token is informational on a single-shard server)
// and REPL lands one primary-sequenced record on a replica, answering
// the replica's applied watermark: a duplicate acks without
// re-applying, a gap acks the current watermark without applying so the
// shipper rewinds. Record clauses are Edinburgh source without the
// final '.'.
//
// Trace context: a RETRIEVE or EXPLAIN goal may be followed by one
// trailing token " trace=<traceid>:<parentspan>" (after the goal's
// terminating '.'). A server that understands it threads the context
// into the retrieval's span tree and appends one extra reply line after
// the trailer:
//
//	TRACE <token>
//
// where token is the retrieval's span subtree serialized by
// telemetry.EncodeWireSpans ("-" when the server has no tracer). The
// header is strictly opt-in: old clients that send no header parse
// against this server exactly as before (no TRACE line is emitted), and
// a caller must not send the header to a server that predates it.
// EXPLAIN keys and values never contain spaces; the key order is the
// filter pipeline's and is part of the wire contract (appending new
// keys is compatible).

// maxWireLine bounds one protocol line in either direction. A longer
// line is answered with "ERR line too long" and the connection dropped.
const maxWireLine = 4 * 1024 * 1024

// syncBatch caps the records one SYNC reply carries; a follower that
// needs more keeps pulling from its advanced watermark.
const syncBatch = 512

// ParseMode maps a wire-mode word to a search mode; auto returns nil
// (heuristic selection).
func ParseMode(s string) (*core.SearchMode, error) {
	var m core.SearchMode
	switch s {
	case "auto":
		return nil, nil
	case "software":
		m = core.ModeSoftware
	case "fs1":
		m = core.ModeFS1
	case "fs2":
		m = core.ModeFS2
	case "fs1+fs2":
		m = core.ModeFS1FS2
	default:
		return nil, fmt.Errorf("crs: unknown mode %q", s)
	}
	return &m, nil
}

// Serve accepts connections on l until it is closed. Each connection gets
// its own session. Serve returns after the listener closes and all
// connection handlers finish.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.handlers.Wait()
			return err
		}
		s.connMu.Lock()
		if s.draining {
			s.connMu.Unlock()
			fmt.Fprintln(conn, "ERR server shutting down")
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.handlers.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// Shutdown drains the server: new connections are refused, and Shutdown
// returns once every in-flight handler has finished. If ctx expires
// first, the remaining connections are force-closed (an in-flight
// retrieval still runs to completion; its client sees the connection
// drop) and ctx.Err() is returned. The caller should close its
// listeners first so Serve stops accepting.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.draining = true
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		// A handler panic is exactly the moment the black box must
		// survive the process: snapshot the flight ring, then crash as
		// before.
		if r := recover(); r != nil {
			s.log.Error("wire handler panic", "panic", fmt.Sprint(r))
			if err := s.SnapshotFlight(); err != nil {
				s.log.Error("flight snapshot failed", "error", err.Error())
			}
			panic(r)
		}
	}()
	defer conn.Close()
	sess := s.OpenSession()
	defer sess.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		if strings.HasPrefix(format, "ERR") {
			s.met.wireErrs.Inc()
		}
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "HELLO":
			reply("OK crs %d", sess.ID())
		case "QUIT":
			reply("BYE")
			return
		case "STATS":
			kv := s.Snapshot().lines()
			fmt.Fprintf(out, "STATS %d\n", len(kv))
			for _, p := range kv {
				fmt.Fprintf(out, "S %s %d\n", p.Key, p.Value)
			}
			out.Flush()
		case "FLIGHT":
			n, err := optionalCount(rest)
			if err != nil {
				reply("ERR usage: FLIGHT [<n>]")
				continue
			}
			recs := s.flight.Snapshot(n)
			fmt.Fprintf(out, "FLIGHT %d\n", len(recs))
			for _, rec := range recs {
				blob, err := json.Marshal(rec)
				if err != nil {
					continue
				}
				fmt.Fprintf(out, "F %s\n", blob)
			}
			out.Flush()
		case "SLOWLOG":
			n, err := optionalCount(rest)
			if err != nil {
				reply("ERR usage: SLOWLOG [<n>]")
				continue
			}
			caps := s.slowLog.Tail(n)
			fmt.Fprintf(out, "SLOWLOG %d\n", len(caps))
			for _, c := range caps {
				blob, err := json.Marshal(c)
				if err != nil {
					continue
				}
				fmt.Fprintf(out, "Q %s\n", blob)
			}
			out.Flush()
		case "BEGIN":
			if err := sess.Begin(); err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK")
			}
		case "COMMIT":
			if err := sess.Commit(); err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK")
			}
		case "ABORT":
			if err := sess.Abort(); err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK")
			}
		case "ASSERT":
			cl, err := parse.Term(strings.TrimSuffix(rest, "."))
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			head, body := splitClause(cl)
			if err := sess.Assert(head, body); err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK")
			}
		case "WRITE":
			opWord, clauseText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: WRITE assert|retract <clause>.")
				continue
			}
			op, err := wal.ParseOp(opWord)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			cl, err := parse.Term(strings.TrimSuffix(clauseText, "."))
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			head, body := splitClause(cl)
			var seq uint64
			if op == wal.OpAssert {
				seq, err = sess.AssertNow(head, body)
			} else {
				seq, err = sess.RetractNow(head, body)
			}
			if err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK %d", seq)
			}
		case "SYNC":
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				reply("ERR usage: SYNC <shard> <from-seq>")
				continue
			}
			from, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				reply("ERR bad from-seq %q", fields[1])
				continue
			}
			recs, last, err := s.LogSuffix(from, syncBatch)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			fmt.Fprintf(out, "LOG %d %d\n", len(recs), last)
			for _, rec := range recs {
				fmt.Fprintf(out, "R %s\n", rec.WireText())
			}
			out.Flush()
		case "REPL":
			rec, err := wal.ParseRecordText(rest)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			applied, err := s.ApplyReplicated(rec)
			if err != nil {
				reply("ERR %v", err)
			} else {
				reply("OK %d", applied)
			}
		case "RETRIEVE":
			modeWord, goalText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: RETRIEVE <mode> <goal>")
				continue
			}
			mode, err := ParseMode(modeWord)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			goalText, tc := CutTraceHeader(goalText)
			goal, err := parse.Term(strings.TrimSuffix(goalText, "."))
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			rt, err := sess.RetrieveTraced(goal, mode, tc)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			heads, bodies, err := rt.DecodeCandidates()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("CANDIDATES %d", len(heads))
			for i := range heads {
				if term.Equal(bodies[i], term.Atom("true")) {
					reply("C %s.", heads[i])
				} else {
					reply("C %s :- %s.", heads[i], bodies[i])
				}
			}
			reply("STATS mode=%v total=%d fs1=%d fs2=%d",
				rt.Mode, rt.Stats.TotalClauses, rt.Stats.AfterFS1, rt.Stats.AfterFS2)
			if tc != nil {
				reply("TRACE %s", traceToken(rt.Trace()))
			}
		case "EXPLAIN":
			modeWord, goalText, ok := strings.Cut(rest, " ")
			if !ok {
				reply("ERR usage: EXPLAIN <mode> <goal>")
				continue
			}
			mode, err := ParseMode(modeWord)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			goalText, tc := CutTraceHeader(goalText)
			goal, err := parse.Term(strings.TrimSuffix(goalText, "."))
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			p, err := sess.Explain(goal, mode, tc)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			entries := p.Entries()
			fmt.Fprintf(out, "EXPLAIN %d\n", len(entries))
			for _, e := range entries {
				fmt.Fprintf(out, "E %s %s\n", e.Key, e.Value)
			}
			out.Flush()
			if tc != nil {
				reply("TRACE %s", traceToken(p.Trace))
			}
		default:
			reply("ERR unknown command %q", cmd)
		}
	}
	if err := in.Err(); errors.Is(err, bufio.ErrTooLong) {
		reply("ERR line too long (max %d bytes)", maxWireLine)
	}
}

// optionalCount parses the optional non-negative count argument the
// FLIGHT and SLOWLOG verbs take; empty means 0 ("everything").
func optionalCount(rest string) (int, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("crs: bad count %q", rest)
	}
	return v, nil
}

// CutTraceHeader splits an optional trailing trace-context token off a
// goal text: "p(X). trace=<id>:<span>" → ("p(X).", context). Text
// without a well-formed header — including everything an old client can
// send, since the token must follow the goal's terminating '.' — is
// returned unchanged for the goal parser to judge. Exported because the
// cluster front-end speaks the same wire protocol.
func CutTraceHeader(text string) (string, *telemetry.TraceContext) {
	i := strings.LastIndexByte(text, ' ')
	if i < 0 || !strings.HasPrefix(text[i+1:], "trace=") {
		return text, nil
	}
	goal := strings.TrimRight(text[:i], " ")
	if !strings.HasSuffix(goal, ".") {
		return text, nil
	}
	tc, err := telemetry.ParseTraceContext(strings.TrimPrefix(text[i+1:], "trace="))
	if err != nil {
		return text, nil
	}
	return goal, &tc
}

// traceToken serializes a retrieval's span tree for the TRACE reply
// line; "-" stands for "no trace recorded" (the server has no tracer).
func traceToken(t *telemetry.Trace) string {
	if tok := telemetry.EncodeWireSpans(t.Wire(0)); tok != "" {
		return tok
	}
	return "-"
}

func splitClause(t term.Term) (head, body term.Term) {
	if c, ok := term.Deref(t).(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0], c.Args[1]
	}
	return t, term.Atom("true")
}
