package crs

import (
	"net"
	"testing"

	"clare/internal/core"
	"clare/internal/plan"
	"clare/internal/workload"
)

// TestWirePlannerStatsAndExplain drives a planner-armed server over the
// wire: auto-mode retrievals must surface the planner's counters under
// the plan.* STATS keys, the configured latency window under
// latency.window, and the per-query decision as plan.* EXPLAIN entries
// — with a shared-variable goal never planned onto an FS1 rung.
func TestWirePlannerStatsAndExplain(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Planner = plan.New(plan.Config{})
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	s.SetLatencyWindow(128)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Retrieve("auto", "married_couple(S, S)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retrieve("auto", "married_couple(husband4, X)"); err != nil {
		t.Fatal(err)
	}

	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["plan.enabled"] != 1 {
		t.Errorf("plan.enabled = %d, want 1", kv["plan.enabled"])
	}
	if kv["plan.decisions"] < 2 {
		t.Errorf("plan.decisions = %d, want >= 2", kv["plan.decisions"])
	}
	if kv["plan.sharedvar_skips"] < 1 {
		t.Errorf("plan.sharedvar_skips = %d, want >= 1", kv["plan.sharedvar_skips"])
	}
	if kv["plan.observations"] < 2 {
		t.Errorf("plan.observations = %d, want >= 2 (auto retrievals must feed the cost model)", kv["plan.observations"])
	}
	if kv["latency.window"] != 128 {
		t.Errorf("latency.window = %d, want the configured 128", kv["latency.window"])
	}

	res, err := c.Explain("auto", "married_couple(S, S)")
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string]string{}
	for _, e := range res.Entries {
		entries[e.Key] = e.Value
	}
	for _, k := range []string{"plan.mode", "plan.shape", "plan.reason", "plan.learned"} {
		if entries[k] == "" {
			t.Errorf("EXPLAIN missing %s entry (have %v)", k, res.Entries)
		}
	}
	switch entries["plan.mode"] {
	case "fs1", "fs1+fs2":
		t.Errorf("shared-variable goal planned onto %s — the codeword filter is blind to it", entries["plan.mode"])
	}
}

// TestWirePlannerOffKeys: without a planner the STATS surface must
// still be explicit — plan.enabled 0, no decision counters.
func TestWirePlannerOffKeys(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer l.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kv, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if kv["plan.enabled"] != 0 {
		t.Errorf("plan.enabled = %d, want 0", kv["plan.enabled"])
	}
	if _, ok := kv["plan.decisions"]; ok {
		t.Error("plan.decisions present on a planner-less server")
	}
}
