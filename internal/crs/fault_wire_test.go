package crs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"clare/internal/core"
	"clare/internal/fault"
	"clare/internal/workload"
)

// TestClientReconnectRetry: an idempotent request over a dead connection
// transparently redials, re-handshakes, and replays.
func TestClientReconnectRetry(t *testing.T) {
	addr := startWire(t, newServer(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RetryBackoff = time.Millisecond

	res, err := c.Retrieve("fs2", "married_couple(husband4, X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) == 0 {
		t.Fatal("no candidates before the fault")
	}
	firstSess := c.SessionID

	// Sever the transport out from under the client.
	c.conn.Close()

	res, err = c.Retrieve("fs2", "married_couple(husband4, X)")
	if err != nil {
		t.Fatalf("retrieve after severed connection: %v", err)
	}
	if len(res.Clauses) == 0 {
		t.Fatal("no candidates after reconnect")
	}
	if c.SessionID == firstSess {
		t.Fatalf("session id %q unchanged: client did not reconnect", c.SessionID)
	}

	if _, err := c.Stats(); err != nil {
		t.Fatalf("stats after reconnect: %v", err)
	}
}

// TestClientServerErrorNotRetried: a protocol rejection surfaces as
// *ServerError immediately — the server already processed the request,
// so replaying it is wrong.
func TestClientServerErrorNotRetried(t *testing.T) {
	addr := startWire(t, newServer(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RetryBackoff = time.Millisecond
	sess := c.SessionID

	_, err = c.Retrieve("fs2", "no_such_predicate(X)")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T), want *ServerError", err, err)
	}
	if !strings.Contains(se.Msg, "unknown predicate") {
		t.Fatalf("unexpected server message %q", se.Msg)
	}
	if c.SessionID != sess {
		t.Fatal("client reconnected on a protocol error")
	}
}

// TestClientNoRetryInTransaction: between BEGIN and COMMIT/ABORT a
// transport failure must surface instead of silently reconnecting into
// a fresh session that has lost the staged writes.
func TestClientNoRetryInTransaction(t *testing.T) {
	addr := startWire(t, newServer(t))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.RetryBackoff = time.Millisecond

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Assert("married_couple(hx, wx)"); err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	if _, err := c.Retrieve("fs2", "married_couple(husband1, X)"); err == nil {
		t.Fatal("in-transaction retrieve over dead connection succeeded (silent reconnect)")
	}
	// The transaction is lost with the connection; Abort clears the
	// client-side flag even though the wire call fails...
	_ = c.Abort()
	// ...after which idempotent retry works again.
	if _, err := c.Retrieve("fs2", "married_couple(husband1, X)"); err != nil {
		t.Fatalf("retrieve after abandoning transaction: %v", err)
	}
}

// TestStatsBoardHealthKeys: STATS carries board health and the
// fault-tolerance tallies; under an injected index fault the degraded
// and fault counters move.
func TestStatsBoardHealthKeys(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Faults = fault.New(3).Add(fault.Rule{Site: fault.SiteDiskIndex, Probability: 1})
	cfg.RetryBackoff = time.Microsecond
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(startWire(t, s))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Retrieve("fs1+fs2", "married_couple(husband4, X)"); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"boards.free", "boards.leased", "boards.tripped",
		"boards.trips", "boards.readmits", "degraded", "retries", "faults"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("STATS missing key %q", key)
		}
	}
	if stats["degraded"] != 1 {
		t.Errorf("degraded = %d, want 1 (index fault forces the fs2 rung)", stats["degraded"])
	}
	if stats["faults"] == 0 {
		t.Error("faults = 0, want the injected index fault counted")
	}
	if stats["boards.free"] != int64(stats["boards"]) {
		t.Errorf("boards.free = %d, want all %d units back", stats["boards.free"], stats["boards"])
	}
}
