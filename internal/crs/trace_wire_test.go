package crs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"clare/internal/core"
	"clare/internal/telemetry"
	"clare/internal/workload"
)

// newTracedServer is newServer with a tracer wired in, so replies can
// carry span subtrees.
func newTracedServer(t *testing.T) (*Server, *telemetry.Tracer) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Tracer = telemetry.NewTracer(8)
	r, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(r)
	fam := workload.Family{Couples: 30, SameEvery: 3}
	if err := s.Load("family", fam.Clauses()); err != nil {
		t.Fatal(err)
	}
	return s, cfg.Tracer
}

// TestWireTracePropagation: a traced RETRIEVE carries the caller's
// context down and the backend's span subtree back up, with the remote
// context recorded server-side for stitching.
func TestWireTracePropagation(t *testing.T) {
	s, tracer := newTracedServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := &telemetry.TraceContext{TraceID: 42, ParentSpan: 7}
	res, err := c.RetrieveTraced("fs1+fs2", "married_couple(X, Y)", tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced retrieve returned no span subtree")
	}
	if res.Spans[0].Name != "retrieve" {
		t.Errorf("subtree root = %q, want the backend's retrieve span", res.Spans[0].Name)
	}
	ids := make(map[int]bool, len(res.Spans))
	for _, ws := range res.Spans {
		ids[ws.ID] = true
	}
	for _, ws := range res.Spans[1:] {
		if !ids[ws.Parent] {
			t.Errorf("span %d (%s) has dangling parent %d", ws.ID, ws.Name, ws.Parent)
		}
	}
	tr := tracer.Last(1)
	if len(tr) != 1 || tr[0].Remote == nil || *tr[0].Remote != *tc {
		t.Errorf("server-side trace remote context = %+v, want %+v", tr, tc)
	}

	// Untraced calls on the same connection stay header- and TRACE-free.
	if _, err := c.Retrieve("fs1", "married_couple(husband3, X)"); err != nil {
		t.Fatalf("untraced retrieve after traced one: %v", err)
	}
}

// TestWireTraceRawFrames pins the wire shape: with a header the STATS
// trailer is followed by exactly one TRACE line; without it, by nothing.
func TestWireTraceRawFrames(t *testing.T) {
	s, _ := newTracedServer(t)
	addr := startWire(t, s)
	r := rawDial(t, addr)

	readRetrieve := func(first string) []string {
		t.Helper()
		lines := []string{first}
		var n int
		if _, err := fmt.Sscanf(first, "CANDIDATES %d", &n); err != nil {
			t.Fatalf("first reply %q", first)
		}
		for i := 0; i < n+1; i++ { // clause lines + STATS trailer
			if !r.in.Scan() {
				t.Fatal(r.in.Err())
			}
			lines = append(lines, r.in.Text())
		}
		return lines
	}

	lines := readRetrieve(r.sendRecv(t, "RETRIEVE fs1+fs2 married_couple(X, Y). trace=9:3"))
	if !r.in.Scan() || !strings.HasPrefix(r.in.Text(), "TRACE ") {
		t.Fatalf("traced RETRIEVE not followed by a TRACE line (got %q)", r.in.Text())
	}
	tok := strings.TrimPrefix(r.in.Text(), "TRACE ")
	if spans, err := telemetry.DecodeWireSpans(tok); err != nil || len(spans) == 0 {
		t.Fatalf("TRACE token %q: spans=%d err=%v", tok, len(spans), err)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "STATS ") {
		t.Errorf("trailer = %q", lines[len(lines)-1])
	}

	// Old-client frame: no header, no TRACE line — HELLO answers next.
	readRetrieve(r.sendRecv(t, "RETRIEVE fs1+fs2 married_couple(X, Y)."))
	if got := r.sendRecv(t, "HELLO"); !strings.HasPrefix(got, "OK crs") {
		t.Errorf("connection desynced after headerless RETRIEVE: HELLO answered %q", got)
	}
}

// TestWireTraceNoTracer: a server without a tracer answers a traced
// request with the "-" sentinel instead of a token.
func TestWireTraceNoTracer(t *testing.T) {
	s := newServer(t) // no tracer
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.RetrieveTraced("fs1", "married_couple(X, Y)", &telemetry.TraceContext{TraceID: 1, ParentSpan: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Errorf("tracerless server returned %d spans, want none", len(res.Spans))
	}
}

// TestWireExplain: the EXPLAIN command returns the profile with monotone
// candidate counts and a nonzero FS1 ghost ratio for the shared-variable
// pathology.
func TestWireExplain(t *testing.T) {
	s, _ := newTracedServer(t)
	addr := startWire(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Explain("fs1+fs2", "married_couple(S, S)")
	if err != nil {
		t.Fatal(err)
	}
	geti := func(key string) int {
		v := res.Get(key)
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("%s = %q, want an int", key, v)
		}
		return n
	}
	total, fs1, fs2, unified := geti("candidates.total"), geti("candidates.after_fs1"),
		geti("candidates.after_fs2"), geti("candidates.unified")
	if !(total >= fs1 && fs1 >= fs2 && fs2 >= unified) {
		t.Errorf("counts not monotone: %d %d %d %d", total, fs1, fs2, unified)
	}
	ghost, err := strconv.ParseFloat(res.Get("fs1.ghost_ratio"), 64)
	if err != nil || ghost <= 0 {
		t.Errorf("fs1.ghost_ratio = %q, want > 0", res.Get("fs1.ghost_ratio"))
	}
	if res.Get("mode") != "fs1+fs2" {
		t.Errorf("mode = %q", res.Get("mode"))
	}

	// Traced EXPLAIN also returns the span subtree.
	tres, err := c.ExplainTraced("fs1+fs2", "married_couple(S, S)", &telemetry.TraceContext{TraceID: 5, ParentSpan: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tres.Spans) == 0 {
		t.Error("traced EXPLAIN returned no span subtree")
	}
}
