// Package disk models the secondary-storage subsystem that feeds CLARE:
// parameterised disk drives streaming compiled clause files track by
// track, with explicit simulated-time accounting.
//
// The paper's SUN3/160 hosts either a SCSI drive (Micropolis 1325) or a
// faster SMD drive (Fujitsu M2351A, ≈2 MB/s peak, §4); the whole point of
// the FS2 timing analysis is that the filter outruns both. Geometry values
// are nominal catalogue figures for the two drives; the throughput claims
// only depend on the transfer rates the paper quotes.
package disk

import (
	"fmt"
	"time"

	"clare/internal/fault"
	"clare/internal/telemetry"
)

// Model describes a disk drive.
type Model struct {
	Name string
	// TransferRate is the sustained media transfer rate in bytes/second.
	TransferRate float64
	// TrackBytes is the formatted capacity of one track. One track is the
	// worst-case unit of a single FS2 search call (§3.2).
	TrackBytes int
	// RPM is the spindle speed (rotational latency = half a revolution on
	// average).
	RPM int
	// AvgSeek is the average seek time.
	AvgSeek time.Duration
}

// The two drives named in §4.
var (
	// Micropolis1325 is the SCSI option: a 5.25" 69 MB drive, ≈1 MB/s
	// sustained, 3600 rpm, 28 ms average seek.
	Micropolis1325 = Model{
		Name:         "Micropolis 1325 (SCSI)",
		TransferRate: 1.0e6,
		TrackBytes:   8 * 1024,
		RPM:          3600,
		AvgSeek:      28 * time.Millisecond,
	}
	// FujitsuM2351A is the SMD option ("Eagle"): ≈2 MB/s peak transfer,
	// 3961 rpm, 18 ms average seek, ≈20 KB tracks.
	FujitsuM2351A = Model{
		Name:         "Fujitsu M2351A (SMD)",
		TransferRate: 2.0e6,
		TrackBytes:   20 * 1024,
		RPM:          3961,
		AvgSeek:      18 * time.Millisecond,
	}
)

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.TransferRate <= 0 || m.TrackBytes <= 0 || m.RPM <= 0 {
		return fmt.Errorf("disk: invalid model %+v", m)
	}
	return nil
}

// RotationalLatency is the average rotational delay: half a revolution.
func (m Model) RotationalLatency() time.Duration {
	revolution := time.Duration(float64(time.Minute) / float64(m.RPM))
	return revolution / 2
}

// TransferTime is the time to stream n bytes at the sustained rate.
func (m Model) TransferTime(n int) time.Duration {
	return time.Duration(float64(n) / m.TransferRate * float64(time.Second))
}

// AccessTime is the positioning cost of one random access: average seek
// plus average rotational latency.
func (m Model) AccessTime() time.Duration {
	return m.AvgSeek + m.RotationalLatency()
}

// Tracks returns how many tracks n bytes occupy (ceiling).
func (m Model) Tracks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + m.TrackBytes - 1) / m.TrackBytes
}

// ScanTime is the cost of a sequential scan of n bytes: one positioning
// access, then streaming; track switches are folded into the sustained
// rate.
func (m Model) ScanTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.AccessTime() + m.TransferTime(n)
}

// FetchTime is the cost of fetching k scattered records of recordBytes
// each: positioning per distinct track visited (pessimistically one per
// record, capped by total track count), plus transfer.
func (m Model) FetchTime(k, recordBytes int) time.Duration {
	if k <= 0 {
		return 0
	}
	seeks := k
	if t := m.Tracks(k * recordBytes); t < seeks {
		seeks = t
	}
	return time.Duration(seeks)*m.AccessTime() + m.TransferTime(k*recordBytes)
}

// Stats accumulates simulated disk activity.
type Stats struct {
	BytesRead int64
	Accesses  int
	Elapsed   time.Duration
	// Faults counts injected read faults (bad track / unreadable index)
	// this drive surfaced.
	Faults int
}

// Add folds other into s — used to aggregate per-drive statistics across
// a multi-drive chassis.
func (s *Stats) Add(other Stats) {
	s.BytesRead += other.BytesRead
	s.Accesses += other.Accesses
	s.Elapsed += other.Elapsed
	s.Faults += other.Faults
}

// driveMetrics are the drive's registry handles; the zero value (all nil)
// makes every observation a no-op.
type driveMetrics struct {
	bytes    *telemetry.Counter
	accesses *telemetry.Counter
	scan     *telemetry.Histogram
	access   *telemetry.Histogram
	stream   *telemetry.Histogram
	fetch    *telemetry.Histogram
}

// Drive is a stateful disk with accumulated statistics.
type Drive struct {
	Model Model
	Stats Stats
	met   driveMetrics

	// flt, when non-nil, injects read faults: Scan/Fetch probe
	// fault.SiteDiskRead (the clause-file stream), IndexScan/Access/
	// Stream probe fault.SiteDiskIndex (the secondary-file stream).
	flt    *fault.Injector
	fltKey string
}

// NewDrive returns a drive of the given model.
func NewDrive(m Model) *Drive { return &Drive{Model: m} }

// SetFaults arms fault injection on the drive. key identifies the spindle
// to keyed rules (its chassis slot).
func (d *Drive) SetFaults(inj *fault.Injector, key string) {
	d.flt = inj
	d.fltKey = key
}

// probe checks the injector at one read site, counting surfaced faults.
func (d *Drive) probe(site string) error {
	err := d.flt.Probe(site, d.fltKey)
	if err != nil {
		d.Stats.Faults++
	}
	return err
}

// Instrument wires the drive to a metrics registry. labels identify the
// spindle (e.g. its chassis slot); each operation's simulated duration
// lands in clare_disk_op_sim_seconds{op=...}.
func (d *Drive) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	op := func(name string) telemetry.Labels {
		l := telemetry.Labels{"op": name}
		for k, v := range labels {
			l[k] = v
		}
		return l
	}
	d.met = driveMetrics{
		bytes:    reg.Counter("clare_disk_bytes_read_total", "bytes streamed off the simulated disk", labels),
		accesses: reg.Counter("clare_disk_accesses_total", "positioning accesses (seek + rotational latency)", labels),
		scan:     reg.Histogram("clare_disk_op_sim_seconds", "simulated duration per disk operation", nil, op("scan")),
		access:   reg.Histogram("clare_disk_op_sim_seconds", "simulated duration per disk operation", nil, op("access")),
		stream:   reg.Histogram("clare_disk_op_sim_seconds", "simulated duration per disk operation", nil, op("stream")),
		fetch:    reg.Histogram("clare_disk_op_sim_seconds", "simulated duration per disk operation", nil, op("fetch")),
	}
}

// Scan accounts for a sequential scan of n clause-file bytes and returns
// its duration. A fault (injected bad track) aborts the scan: the drive
// burns one positioning access discovering it and delivers nothing.
func (d *Drive) Scan(n int) (time.Duration, error) {
	return d.scan(fault.SiteDiskRead, n)
}

// IndexScan is Scan over the secondary file (the FS1 index stream). It is
// costed identically but probes the disk.index fault site, so chaos
// schedules can make the index unreadable while clause records survive —
// the trigger for the FS1+FS2 → FS2-only degradation.
func (d *Drive) IndexScan(n int) (time.Duration, error) {
	return d.scan(fault.SiteDiskIndex, n)
}

func (d *Drive) scan(site string, n int) (time.Duration, error) {
	if err := d.probe(site); err != nil {
		d.failedAccess()
		return 0, err
	}
	t := d.Model.ScanTime(n)
	d.Stats.BytesRead += int64(n)
	d.Stats.Accesses++
	d.Stats.Elapsed += t
	d.met.bytes.Add(int64(n))
	d.met.accesses.Inc()
	d.met.scan.ObserveDuration(t)
	return t, nil
}

// Access accounts for one positioning access (seek + rotational latency)
// with no transfer — the start of a chunked sequential index stream, so
// it probes the disk.index fault site.
func (d *Drive) Access() (time.Duration, error) {
	if err := d.probe(fault.SiteDiskIndex); err != nil {
		d.failedAccess()
		return 0, err
	}
	t := d.Model.AccessTime()
	d.Stats.Accesses++
	d.Stats.Elapsed += t
	d.met.accesses.Inc()
	d.met.access.ObserveDuration(t)
	return t, nil
}

// Stream accounts for transferring n sequential index bytes at the
// sustained rate with no positioning — the continuation of a stream
// opened by Access. A chunked scan is one Access plus a Stream per chunk,
// and costs exactly what one Scan of the whole range would.
func (d *Drive) Stream(n int) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	if err := d.probe(fault.SiteDiskIndex); err != nil {
		d.failedAccess()
		return 0, err
	}
	t := d.Model.TransferTime(n)
	d.Stats.BytesRead += int64(n)
	d.Stats.Elapsed += t
	d.met.bytes.Add(int64(n))
	d.met.stream.ObserveDuration(t)
	return t, nil
}

// Fetch accounts for k random clause-record reads and returns the
// duration.
func (d *Drive) Fetch(k, recordBytes int) (time.Duration, error) {
	if k > 0 {
		if err := d.probe(fault.SiteDiskRead); err != nil {
			d.failedAccess()
			return 0, err
		}
	}
	t := d.Model.FetchTime(k, recordBytes)
	d.Stats.BytesRead += int64(k * recordBytes)
	d.Stats.Accesses += k
	d.Stats.Elapsed += t
	if k > 0 {
		d.met.bytes.Add(int64(k * recordBytes))
		d.met.accesses.Add(int64(k))
		d.met.fetch.ObserveDuration(t)
	}
	return t, nil
}

// FetchRunTime is the cost of fetching k scattered records totalling
// totalBytes: like FetchTime but with the exact byte count instead of a
// uniform per-record size, so runs of variable-length records are not
// distorted by the truncated average.
func (m Model) FetchRunTime(k, totalBytes int) time.Duration {
	if k <= 0 {
		return 0
	}
	seeks := k
	if t := m.Tracks(totalBytes); t < seeks {
		seeks = t
	}
	return time.Duration(seeks)*m.AccessTime() + m.TransferTime(totalBytes)
}

// FetchRun accounts for k random clause-record reads totalling exactly
// totalBytes — the native engine's batched fetch, which knows each
// record's true size rather than a truncated average. Costing and fault
// behaviour mirror Fetch.
func (d *Drive) FetchRun(k, totalBytes int) (time.Duration, error) {
	if k > 0 {
		if err := d.probe(fault.SiteDiskRead); err != nil {
			d.failedAccess()
			return 0, err
		}
	}
	t := d.Model.FetchRunTime(k, totalBytes)
	d.Stats.BytesRead += int64(totalBytes)
	d.Stats.Accesses += k
	d.Stats.Elapsed += t
	if k > 0 {
		d.met.bytes.Add(int64(totalBytes))
		d.met.accesses.Add(int64(k))
		d.met.fetch.ObserveDuration(t)
	}
	return t, nil
}

// failedAccess accounts the positioning cost of a read attempt that died
// on a bad track: the head still moved, no bytes were delivered.
func (d *Drive) failedAccess() {
	t := d.Model.AccessTime()
	d.Stats.Accesses++
	d.Stats.Elapsed += t
	d.met.accesses.Inc()
}

// Reset clears the statistics.
func (d *Drive) Reset() { d.Stats = Stats{} }
