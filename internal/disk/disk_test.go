package disk

import (
	"testing"
	"time"

	"clare/internal/fault"
)

func TestModelsValidate(t *testing.T) {
	if err := Micropolis1325.Validate(); err != nil {
		t.Error(err)
	}
	if err := FujitsuM2351A.Validate(); err != nil {
		t.Error(err)
	}
	if (Model{}).Validate() == nil {
		t.Error("zero model should be invalid")
	}
}

func TestPaperRates(t *testing.T) {
	// §4: the SMD disk peaks at ≈2 MB/s; both disks are slower than the
	// FS2 worst-case filter rate (≈4.25 MB/s).
	if FujitsuM2351A.TransferRate != 2.0e6 {
		t.Errorf("M2351A rate = %g", FujitsuM2351A.TransferRate)
	}
	if Micropolis1325.TransferRate >= FujitsuM2351A.TransferRate {
		t.Error("the SMD drive should be the faster one")
	}
	const fs2WorstRate = 4.25e6
	if FujitsuM2351A.TransferRate >= fs2WorstRate {
		t.Error("paper claim violated: disk would outrun the filter")
	}
}

func TestTransferTime(t *testing.T) {
	// 2 MB at 2 MB/s = 1 s.
	got := FujitsuM2351A.TransferTime(2_000_000)
	if got != time.Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if Micropolis1325.TransferTime(0) != 0 {
		t.Error("zero bytes should cost nothing to transfer")
	}
}

func TestRotationalLatency(t *testing.T) {
	// 3600 rpm → 16.67 ms/rev → 8.33 ms average.
	got := Micropolis1325.RotationalLatency()
	if got < 8*time.Millisecond || got > 9*time.Millisecond {
		t.Errorf("rotational latency = %v, want ≈8.3ms", got)
	}
}

func TestTracks(t *testing.T) {
	m := Micropolis1325 // 8 KB tracks
	cases := map[int]int{0: 0, 1: 1, 8192: 1, 8193: 2, 81920: 10}
	for n, want := range cases {
		if got := m.Tracks(n); got != want {
			t.Errorf("Tracks(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestScanVsFetch(t *testing.T) {
	m := FujitsuM2351A
	// A sequential scan of 100 records must beat 100 random fetches.
	scan := m.ScanTime(100 * 256)
	fetch := m.FetchTime(100, 256)
	if scan >= fetch {
		t.Errorf("scan %v should beat scattered fetch %v", scan, fetch)
	}
	// Fetching zero records is free.
	if m.FetchTime(0, 256) != 0 {
		t.Error("zero fetches should cost nothing")
	}
}

func TestFetchSeekCap(t *testing.T) {
	m := Micropolis1325
	// Thousands of tiny records can't seek more than the tracks they
	// span.
	many := m.FetchTime(10000, 4)
	tracks := m.Tracks(10000 * 4)
	maxPositioning := time.Duration(tracks) * m.AccessTime()
	if many > maxPositioning+m.TransferTime(40000)+time.Millisecond {
		t.Errorf("fetch time %v exceeds track-capped positioning %v", many, maxPositioning)
	}
}

func TestDriveAccounting(t *testing.T) {
	d := NewDrive(FujitsuM2351A)
	t1, err := d.Scan(1000)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.Fetch(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.BytesRead != 1300 {
		t.Errorf("BytesRead = %d", d.Stats.BytesRead)
	}
	if d.Stats.Accesses != 4 {
		t.Errorf("Accesses = %d", d.Stats.Accesses)
	}
	if d.Stats.Elapsed != t1+t2 {
		t.Errorf("Elapsed = %v, want %v", d.Stats.Elapsed, t1+t2)
	}
	d.Reset()
	if d.Stats != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
}

func TestDriveFaultInjection(t *testing.T) {
	d := NewDrive(FujitsuM2351A)
	inj := fault.New(1).
		Add(fault.Rule{Site: fault.SiteDiskRead, Nth: 1, Limit: 1}).
		Add(fault.Rule{Site: fault.SiteDiskIndex, Key: "0", Nth: 1, Limit: 1})
	d.SetFaults(inj, "0")

	// First clause read faults and delivers nothing, but the head moved.
	if _, err := d.Scan(1000); !fault.Is(err) {
		t.Fatalf("Scan error = %v, want injected fault", err)
	}
	if d.Stats.BytesRead != 0 || d.Stats.Faults != 1 || d.Stats.Accesses != 1 {
		t.Fatalf("post-fault stats = %+v", d.Stats)
	}
	// The read-site rule is exhausted; the clause stream recovers while
	// the index-site rule is still armed.
	if _, err := d.Scan(1000); err != nil {
		t.Fatalf("Scan after limit: %v", err)
	}
	if _, err := d.IndexScan(64); !fault.Is(err) {
		t.Fatal("IndexScan did not fault under a disk.index rule")
	}
	if _, err := d.IndexScan(64); err != nil {
		t.Fatalf("IndexScan after limit: %v", err)
	}
	if d.Stats.Faults != 2 {
		t.Fatalf("Faults = %d, want 2", d.Stats.Faults)
	}
}

func TestDriveIndexStreamSites(t *testing.T) {
	// Access and Stream carry the secondary-file stream, so a disk.index
	// rule must hit them while disk.read rules must not.
	d := NewDrive(FujitsuM2351A)
	d.SetFaults(fault.New(1).Add(fault.Rule{Site: fault.SiteDiskRead, Nth: 1}), "0")
	if _, err := d.Access(); err != nil {
		t.Fatalf("Access hit by a disk.read rule: %v", err)
	}
	if _, err := d.Stream(100); err != nil {
		t.Fatalf("Stream hit by a disk.read rule: %v", err)
	}
	d2 := NewDrive(FujitsuM2351A)
	d2.SetFaults(fault.New(1).Add(fault.Rule{Site: fault.SiteDiskIndex, Nth: 1}), "0")
	if _, err := d2.Access(); !fault.Is(err) {
		t.Fatal("Access missed by a disk.index rule")
	}
	if _, err := d2.Stream(100); !fault.Is(err) {
		t.Fatal("Stream missed by a disk.index rule")
	}
	// Zero-byte streams never probe (nothing is read).
	if _, err := d2.Stream(0); err != nil {
		t.Fatalf("Stream(0): %v", err)
	}
}

func TestScanTimeMonotone(t *testing.T) {
	m := FujitsuM2351A
	prev := time.Duration(0)
	for _, n := range []int{1, 100, 10_000, 1_000_000} {
		got := m.ScanTime(n)
		if got <= prev {
			t.Errorf("ScanTime(%d) = %v not increasing", n, got)
		}
		prev = got
	}
}
