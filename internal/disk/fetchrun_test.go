package disk

import "testing"

func TestFetchRun(t *testing.T) {
	m := FujitsuM2351A
	// Exact-size batched fetch agrees with the uniform-size model when
	// the records really are uniform.
	if got, want := m.FetchRunTime(4, 4*128), m.FetchTime(4, 128); got != want {
		t.Errorf("FetchRunTime(4, 512) = %v, FetchTime(4, 128) = %v", got, want)
	}
	if m.FetchRunTime(0, 100) != 0 {
		t.Error("FetchRunTime with k=0 should be free")
	}

	d := NewDrive(m)
	dur, err := d.FetchRun(3, 900)
	if err != nil {
		t.Fatal(err)
	}
	if dur != m.FetchRunTime(3, 900) {
		t.Errorf("drive FetchRun = %v, model = %v", dur, m.FetchRunTime(3, 900))
	}
	if d.Stats.BytesRead != 900 || d.Stats.Accesses != 3 || d.Stats.Elapsed != dur {
		t.Errorf("stats = %+v", d.Stats)
	}

	// Zero-record run: free, no probe, no accounting.
	if dur, err := d.FetchRun(0, 0); err != nil || dur != 0 {
		t.Errorf("empty FetchRun = %v, %v", dur, err)
	}
	if d.Stats.BytesRead != 900 {
		t.Errorf("empty FetchRun changed stats: %+v", d.Stats)
	}
}
