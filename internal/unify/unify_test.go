package unify

import (
	"testing"
	"testing/quick"

	"clare/internal/parse"
	"clare/internal/term"
)

func TestUnifyConstants(t *testing.T) {
	var tr Trail
	cases := []struct {
		a, b term.Term
		want bool
	}{
		{term.Atom("a"), term.Atom("a"), true},
		{term.Atom("a"), term.Atom("b"), false},
		{term.Int(1), term.Int(1), true},
		{term.Int(1), term.Int(2), false},
		{term.Int(1), term.Float(1.0), false}, // ints and floats do not unify
		{term.Float(2.5), term.Float(2.5), true},
		{term.Atom("a"), term.Int(1), false},
	}
	for _, c := range cases {
		if got := Unify(c.a, c.b, &tr); got != c.want {
			t.Errorf("Unify(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if tr.Len() != 0 {
			t.Fatalf("constants left %d bindings", tr.Len())
		}
	}
}

func TestUnifyVarBinding(t *testing.T) {
	var tr Trail
	x := term.NewVar("X")
	if !Unify(x, term.Atom("a"), &tr) {
		t.Fatal("X = a failed")
	}
	if term.Deref(x) != term.Atom("a") {
		t.Errorf("X bound to %v", term.Deref(x))
	}
	if tr.Len() != 1 {
		t.Errorf("trail length = %d, want 1", tr.Len())
	}
}

func TestUnifyVarVar(t *testing.T) {
	var tr Trail
	x, y := term.NewVar("X"), term.NewVar("Y")
	if !Unify(x, y, &tr) {
		t.Fatal("X = Y failed")
	}
	// Binding one now binds both.
	if !Unify(x, term.Int(7), &tr) {
		t.Fatal("X = 7 failed after X = Y")
	}
	if term.Deref(y) != term.Int(7) {
		t.Errorf("Y = %v, want 7", term.Deref(y))
	}
}

func TestUnifyCompound(t *testing.T) {
	var tr Trail
	a := parse.MustTerm("f(X, g(Y), 3)")
	b := parse.MustTerm("f(1, g(hello), 3)")
	if !Unify(a, b, &tr) {
		t.Fatal("compound unify failed")
	}
	res := Resolve(a)
	if res.String() != "f(1,g(hello),3)" {
		t.Errorf("resolved = %v", res)
	}
}

func TestUnifyFailureUndoesBindings(t *testing.T) {
	var tr Trail
	a := parse.MustTerm("f(X, b)")
	b := parse.MustTerm("f(a, c)")
	if Unify(a, b, &tr) {
		t.Fatal("should fail")
	}
	if tr.Len() != 0 {
		t.Errorf("failed unification left %d bindings", tr.Len())
	}
	x := a.(*term.Compound).Args[0]
	if _, ok := term.Deref(x).(*term.Var); !ok {
		t.Error("X still bound after failed unification")
	}
}

func TestTrailUndoToMark(t *testing.T) {
	var tr Trail
	x, y := term.NewVar("X"), term.NewVar("Y")
	Unify(x, term.Atom("a"), &tr)
	mark := tr.Mark()
	Unify(y, term.Atom("b"), &tr)
	tr.Undo(mark)
	if _, ok := term.Deref(y).(*term.Var); !ok {
		t.Error("Y still bound after Undo")
	}
	if term.Deref(x) != term.Atom("a") {
		t.Error("X lost its binding from before the mark")
	}
}

func TestSharedVariableConstraint(t *testing.T) {
	// The married_couple(S,S) case: a clause head with two distinct
	// constants must NOT unify with a query sharing one variable.
	var tr Trail
	q := parse.MustTerm("married_couple(S, S)")
	head1 := parse.MustTerm("married_couple(fred, wilma)")
	if Unify(q, head1, &tr) {
		t.Error("married_couple(S,S) unified with (fred,wilma)")
	}
	q2 := parse.MustTerm("married_couple(S, S)")
	head2 := parse.MustTerm("married_couple(pat, pat)")
	if !Unify(q2, head2, &tr) {
		t.Error("married_couple(S,S) failed against (pat,pat)")
	}
}

func TestOccursCheck(t *testing.T) {
	var tr Trail
	x := term.NewVar("X")
	cyclic := term.New("f", x)
	if !Unify(x, cyclic, &tr) {
		t.Error("plain Unify performs no occurs check (standard Prolog)")
	}
	tr.Undo(0)
	if UnifyOC(x, cyclic, &tr) {
		t.Error("UnifyOC should reject X = f(X)")
	}
	if tr.Len() != 0 {
		t.Errorf("failed OC unification left %d bindings", tr.Len())
	}
}

func TestUnifiableLeavesNoBindings(t *testing.T) {
	a := parse.MustTerm("f(X, Y)")
	if !Unifiable(a, parse.MustTerm("f(1, 2)")) {
		t.Fatal("should be unifiable")
	}
	for _, arg := range a.(*term.Compound).Args {
		if _, ok := term.Deref(arg).(*term.Var); !ok {
			t.Error("Unifiable left a binding")
		}
	}
}

func TestUnifyPartialLists(t *testing.T) {
	var tr Trail
	a := parse.MustTerm("[1,2|T]")
	b := parse.MustTerm("[1,2,3,4]")
	if !Unify(a, b, &tr) {
		t.Fatal("partial list unify failed")
	}
	if got := Resolve(a).String(); got != "[1,2,3,4]" {
		t.Errorf("resolved = %s", got)
	}
}

func TestUnifyDifferentArity(t *testing.T) {
	var tr Trail
	if Unify(parse.MustTerm("f(a)"), parse.MustTerm("f(a,b)"), &tr) {
		t.Error("different arities unified")
	}
	if Unify(parse.MustTerm("f(a)"), parse.MustTerm("g(a)"), &tr) {
		t.Error("different functors unified")
	}
}

func TestResolveDeep(t *testing.T) {
	var tr Trail
	x := term.NewVar("X")
	y := term.NewVar("Y")
	Unify(x, term.New("g", y), &tr)
	Unify(y, term.Int(5), &tr)
	top := term.New("f", x)
	got := Resolve(top)
	tr.Undo(0)
	// The resolved copy must survive the undo.
	if got.String() != "f(g(5))" {
		t.Errorf("resolved = %v", got)
	}
}

// Property: unification is symmetric in success for renamed-apart terms.
func TestQuickUnifySymmetric(t *testing.T) {
	f := func(seed uint8) bool {
		a := genTerm(int(seed), 0)
		b := genTerm(int(seed/3), 1)
		return Unifiable(a, b) == Unifiable(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a term always unifies with a renamed copy of itself.
func TestQuickSelfUnifiable(t *testing.T) {
	f := func(seed uint8) bool {
		a := genTerm(int(seed), 0)
		return Unifiable(a, term.Rename(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genTerm builds a small deterministic term from a seed.
func genTerm(seed, salt int) term.Term {
	atoms := []string{"a", "b", "c"}
	switch (seed + salt) % 5 {
	case 0:
		return term.Atom(atoms[seed%3])
	case 1:
		return term.Int(int64(seed % 4))
	case 2:
		return term.NewVar("V")
	case 3:
		return term.New("f", genTerm(seed/2, salt), genTerm(seed/3, salt+1))
	default:
		return term.List(genTerm(seed/2, salt+2))
	}
}
