// Package unify implements full Prolog unification with a binding trail.
//
// This is the "full unification" that, in the paper's architecture, runs on
// the host AFTER CLARE's two filtering stages have cut the candidate set
// down (§1, §2.2). It also serves as the level-5 oracle against which the
// partial test unification levels are validated: a candidate clause is a
// true unifier iff Unify succeeds on (query, renamed clause head).
package unify

import (
	"clare/internal/term"
)

// Trail records variable bindings so they can be undone on backtracking.
type Trail struct {
	bound []*term.Var
}

// Mark returns the current trail position; Undo(mark) unbinds everything
// bound since.
func (tr *Trail) Mark() int { return len(tr.bound) }

// Undo unbinds all variables bound after mark.
func (tr *Trail) Undo(mark int) {
	for i := len(tr.bound) - 1; i >= mark; i-- {
		tr.bound[i].Ref = nil
	}
	tr.bound = tr.bound[:mark]
}

// Len reports the number of bindings currently recorded.
func (tr *Trail) Len() int { return len(tr.bound) }

// Bind binds v to t and records it on the trail.
func (tr *Trail) Bind(v *term.Var, t term.Term) {
	v.Ref = t
	tr.bound = append(tr.bound, v)
}

// Unify attempts to unify a and b, recording bindings on tr. On failure the
// bindings made during the attempt are already undone. No occurs check is
// performed (standard Prolog behaviour).
func Unify(a, b term.Term, tr *Trail) bool {
	return unify(a, b, tr, false)
}

// UnifyOC is Unify with the occurs check (sound unification).
func UnifyOC(a, b term.Term, tr *Trail) bool {
	return unify(a, b, tr, true)
}

func unify(a, b term.Term, tr *Trail, oc bool) bool {
	mark := tr.Mark()
	if unify1(a, b, tr, oc) {
		return true
	}
	tr.Undo(mark)
	return false
}

func unify1(a, b term.Term, tr *Trail, oc bool) bool {
	a, b = term.Deref(a), term.Deref(b)
	if a == b {
		return true
	}
	if av, ok := a.(*term.Var); ok {
		if oc && occurs(av, b) {
			return false
		}
		tr.Bind(av, b)
		return true
	}
	if bv, ok := b.(*term.Var); ok {
		if oc && occurs(bv, a) {
			return false
		}
		tr.Bind(bv, a)
		return true
	}
	switch a := a.(type) {
	case term.Atom:
		b, ok := b.(term.Atom)
		return ok && a == b
	case term.Int:
		b, ok := b.(term.Int)
		return ok && a == b
	case term.Float:
		b, ok := b.(term.Float)
		return ok && a == b
	case *term.Compound:
		b, ok := b.(*term.Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !unify1(a.Args[i], b.Args[i], tr, oc) {
				return false
			}
		}
		return true
	}
	return false
}

func occurs(v *term.Var, t term.Term) bool {
	switch t := term.Deref(t).(type) {
	case *term.Var:
		return t == v
	case *term.Compound:
		for _, a := range t.Args {
			if occurs(v, a) {
				return true
			}
		}
	}
	return false
}

// Unifiable reports whether a and b unify, leaving no bindings behind.
// This is the oracle used to classify filter outputs as true unifiers or
// false drops.
func Unifiable(a, b term.Term) bool {
	var tr Trail
	ok := Unify(a, b, &tr)
	tr.Undo(0)
	return ok
}

// Resolve returns a copy of t with every bound variable replaced by its
// value and unbound variables left in place. The result shares no mutable
// state with the trail, so it survives backtracking.
func Resolve(t term.Term) term.Term {
	switch t := term.Deref(t).(type) {
	case *term.Compound:
		args := make([]term.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = Resolve(a)
		}
		return &term.Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}
