// Package pdbmbench implements a Prolog-database benchmark suite in the
// spirit of Williams, Massey & Crammond ("Benchmarks for Prolog from a
// Database Viewpoint", refs [6,7] of the paper): the benchmark programs
// that motivated the PDBM project by showing contemporary Prolog systems
// "were unable to cope with more than about 60k clauses".
//
// The suite measures, on the simulated system:
//
//   - Selection: ground-probe retrieval latency as the clause count grows,
//     per search mode.
//   - Join: a conjunctive rule over two disk-resident relations.
//   - Update: assert throughput through CRS transactions.
//   - LIPS: naive-reverse logical inferences per (wall-clock) second on
//     the host engine — the classic Prolog speed figure.
package pdbmbench

import (
	"fmt"
	"strings"
	"time"

	"clare/internal/core"
	"clare/internal/crs"
	"clare/internal/engine"
	"clare/internal/term"
	"clare/internal/workload"
)

// SelectionPoint is one measurement of the selection benchmark.
type SelectionPoint struct {
	Clauses    int
	Mode       core.SearchMode
	Candidates int
	TrueUnif   int
	SimTime    time.Duration
}

// Selection runs ground probes against KBs of the given sizes in every
// mode.
func Selection(sizes []int, modes []core.SearchMode) ([]SelectionPoint, error) {
	var out []SelectionPoint
	for _, n := range sizes {
		rel := workload.Relation{Name: "rel", Facts: n, Domain: n / 8, Arity: 3, Seed: 77}
		r, err := core.New(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if _, err := r.AddClauses("bench", rel.Clauses()); err != nil {
			return nil, err
		}
		goal := rel.Probe(3)
		for _, m := range modes {
			rt, err := r.Retrieve(goal, m)
			if err != nil {
				return nil, err
			}
			trueU, _, err := rt.Evaluate()
			if err != nil {
				return nil, err
			}
			out = append(out, SelectionPoint{
				Clauses:    n,
				Mode:       m,
				Candidates: len(rt.Candidates),
				TrueUnif:   trueU,
				SimTime:    rt.Stats.Total,
			})
		}
	}
	return out, nil
}

// JoinResult reports the join benchmark.
type JoinResult struct {
	LeftFacts, RightFacts int
	Answers               int
	Inferences            int64
}

// Join builds employee/department relations on disk and runs the
// conjunctive query through the engine:
//
//	works_in(Name, DeptName) :- emp(Name, D), dept(D, DeptName).
func Join(leftFacts, rightFacts int) (*JoinResult, error) {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var emps []core.ClauseTerm
	for i := 0; i < leftFacts; i++ {
		emps = append(emps, core.ClauseTerm{
			Head: term.New("emp",
				term.Atom(fmt.Sprintf("e%d", i)),
				term.Int(int64(i%rightFacts))),
		})
	}
	var depts []core.ClauseTerm
	for i := 0; i < rightFacts; i++ {
		depts = append(depts, core.ClauseTerm{
			Head: term.New("dept", term.Int(int64(i)), term.Atom(fmt.Sprintf("d%d", i))),
		})
	}
	if _, err := r.AddClauses("b", emps); err != nil {
		return nil, err
	}
	if _, err := r.AddClauses("b", depts); err != nil {
		return nil, err
	}

	m := engine.New()
	m.Out = &strings.Builder{}
	for _, pi := range []engine.Indicator{{Name: "emp", Arity: 2}, {Name: "dept", Arity: 2}} {
		proc := m.Module("user").Proc(pi, true)
		proc.Source = &core.Source{R: r}
	}
	if err := m.ConsultString(`works_in(N, DN) :- emp(N, D), dept(D, DN).`); err != nil {
		return nil, err
	}
	sols, err := m.Query("works_in(N, DN)", 0)
	if err != nil {
		return nil, err
	}
	var inf int64
	infSols, err := m.Query("statistics(inferences, I)", 1)
	if err == nil && len(infSols) == 1 {
		if v, ok := infSols[0]["I"].(term.Int); ok {
			inf = int64(v)
		}
	}
	return &JoinResult{
		LeftFacts:  leftFacts,
		RightFacts: rightFacts,
		Answers:    len(sols),
		Inferences: inf,
	}, nil
}

// UpdateResult reports the update benchmark.
type UpdateResult struct {
	Asserted     int
	Transactions int
	FinalClauses int
}

// Update commits batches of asserts through a CRS session.
func Update(initial, batches, perBatch int) (*UpdateResult, error) {
	r, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	srv := crs.NewServer(r)
	fam := workload.Family{Couples: initial}
	if err := srv.Load("family", fam.Clauses()); err != nil {
		return nil, err
	}
	sess := srv.OpenSession()
	defer sess.Close()
	n := 0
	for b := 0; b < batches; b++ {
		if err := sess.Begin(); err != nil {
			return nil, err
		}
		for i := 0; i < perBatch; i++ {
			h := term.New("married_couple",
				term.Atom(fmt.Sprintf("nh%d_%d", b, i)),
				term.Atom(fmt.Sprintf("nw%d_%d", b, i)))
			if err := sess.Assert(h, term.Atom("true")); err != nil {
				return nil, err
			}
			n++
		}
		if err := sess.Commit(); err != nil {
			return nil, err
		}
	}
	rt, err := sess.Retrieve(term.New("married_couple", term.NewVar("A"), term.NewVar("B")), nil)
	if err != nil {
		return nil, err
	}
	return &UpdateResult{
		Asserted:     n,
		Transactions: batches,
		FinalClauses: rt.Stats.TotalClauses,
	}, nil
}

// LIPSResult reports the naive-reverse benchmark.
type LIPSResult struct {
	ListLength int
	Inferences int64
	Wall       time.Duration
	LIPS       float64
}

// NaiveReverse runs the classic nrev LIPS benchmark on the host engine.
// For nrev on a list of length n the canonical inference count is
// (n²+3n+2)/2.
func NaiveReverse(n, repeats int) (*LIPSResult, error) {
	m := engine.New()
	m.Out = &strings.Builder{}
	err := m.ConsultString(`
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), append_(RT, [H], R).
		append_([], L, L).
		append_([H|T], L, [H|R]) :- append_(T, L, R).
	`)
	if err != nil {
		return nil, err
	}
	elems := make([]string, n)
	for i := range elems {
		elems[i] = fmt.Sprintf("%d", i)
	}
	goal := "nrev([" + strings.Join(elems, ",") + "], _)"
	start := time.Now()
	for i := 0; i < repeats; i++ {
		ok, err := m.ProveString(goal)
		if err != nil || !ok {
			return nil, fmt.Errorf("pdbmbench: nrev failed: %v", err)
		}
	}
	wall := time.Since(start)
	perCall := int64(n*n+3*n+2) / 2
	total := perCall * int64(repeats)
	return &LIPSResult{
		ListLength: n,
		Inferences: total,
		Wall:       wall,
		LIPS:       float64(total) / wall.Seconds(),
	}, nil
}
