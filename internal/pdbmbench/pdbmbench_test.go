package pdbmbench

import (
	"testing"

	"clare/internal/core"
)

func TestSelectionScales(t *testing.T) {
	pts, err := Selection([]int{256, 1024}, []core.SearchMode{core.ModeFS1FS2, core.ModeSoftware})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[string]SelectionPoint{}
	for _, p := range pts {
		byKey[p.Mode.String()+"-"+itoa(p.Clauses)] = p
		if p.TrueUnif == 0 {
			t.Errorf("%v @%d: no true unifiers — probe misconfigured", p.Mode, p.Clauses)
		}
		if p.Candidates < p.TrueUnif {
			t.Errorf("%v @%d: filter lost unifiers", p.Mode, p.Clauses)
		}
		if p.SimTime <= 0 {
			t.Errorf("%v @%d: no simulated time", p.Mode, p.Clauses)
		}
	}
	// Software mode must slow down with KB size; the two-stage filter's
	// growth should be milder than software's.
	swGrowth := float64(byKey["software-1024"].SimTime) / float64(byKey["software-256"].SimTime)
	hwGrowth := float64(byKey["fs1+fs2-1024"].SimTime) / float64(byKey["fs1+fs2-256"].SimTime)
	if swGrowth <= 1 {
		t.Errorf("software mode did not slow with size (growth %.2f)", swGrowth)
	}
	if hwGrowth > swGrowth {
		t.Errorf("two-stage filter grew faster than software: %.2f vs %.2f", hwGrowth, swGrowth)
	}
}

func itoa(n int) string {
	if n == 256 {
		return "256"
	}
	return "1024"
}

func TestJoin(t *testing.T) {
	res, err := Join(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 64 {
		t.Errorf("join answers = %d, want 64 (every employee has a department)", res.Answers)
	}
	if res.Inferences <= 0 {
		t.Error("inference counter not advancing")
	}
}

func TestUpdate(t *testing.T) {
	res, err := Update(50, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Asserted != 40 || res.Transactions != 4 {
		t.Errorf("update = %+v", res)
	}
	if res.FinalClauses != 90 {
		t.Errorf("final clauses = %d, want 90", res.FinalClauses)
	}
}

func TestNaiveReverse(t *testing.T) {
	res, err := NaiveReverse(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	// (20² + 3·20 + 2)/2 = 231 inferences per call.
	if res.Inferences != 231*3 {
		t.Errorf("inferences = %d, want 693", res.Inferences)
	}
	if res.LIPS <= 0 {
		t.Errorf("LIPS = %f", res.LIPS)
	}
}
