package engine

import (
	"fmt"
	"testing"
)

func TestFirstArgIndexTransparent(t *testing.T) {
	// Build two machines: one with the index threshold exceeded, one tiny;
	// behaviour must be identical regardless.
	src := ""
	for i := 0; i < 100; i++ {
		src += fmt.Sprintf("big(k%d, %d).\n", i%10, i)
	}
	src += "big(V, var_clause) :- nonvar(V).\n"
	src += "big(k3, late).\n"
	m := newMachine(t)
	consult(t, m, src)

	sols := solutions(t, m, "big(k3, V)")
	// k3 occurs at i=3,13,...,93 (10 facts) + var clause + the late k3.
	if len(sols) != 12 {
		t.Fatalf("solutions = %d, want 12", len(sols))
	}
	// Order: facts in user order, var clause, then the late clause.
	if sols[0]["V"].String() != "3" || sols[1]["V"].String() != "13" {
		t.Errorf("first solutions = %v", sols[:2])
	}
	if sols[10]["V"].String() != "var_clause" || sols[11]["V"].String() != "late" {
		t.Errorf("tail solutions = %v", sols[10:])
	}

	// Variable probes still see everything in order (the var clause's
	// nonvar/1 guard fails for an unbound key, so 100 facts + late).
	all := solutions(t, m, "big(K, V)")
	if len(all) != 101 {
		t.Errorf("all solutions = %d, want 101", len(all))
	}

	// A key with no bucket: only the variable clause applies.
	sols = solutions(t, m, "big(nokey, V)")
	if len(sols) != 1 || sols[0]["V"].String() != "var_clause" {
		t.Errorf("nokey solutions = %v", sols)
	}
}

func TestFirstArgIndexInvalidation(t *testing.T) {
	m := newMachine(t)
	src := ""
	for i := 0; i < 20; i++ {
		src += fmt.Sprintf("dynp(a%d, %d).\n", i, i)
	}
	consult(t, m, src)
	// Prime the index.
	if len(solutions(t, m, "dynp(a5, V)")) != 1 {
		t.Fatal("prime failed")
	}
	// Assert a new clause with the same key; it must appear.
	if !proves(t, m, "assertz(dynp(a5, extra))") {
		t.Fatal("assert failed")
	}
	sols := solutions(t, m, "dynp(a5, V)")
	if len(sols) != 2 || sols[1]["V"].String() != "extra" {
		t.Errorf("after assert = %v", sols)
	}
	// Retract the original; only the new one remains.
	if !proves(t, m, "retract(dynp(a5, 5))") {
		t.Fatal("retract failed")
	}
	sols = solutions(t, m, "dynp(a5, V)")
	if len(sols) != 1 || sols[0]["V"].String() != "extra" {
		t.Errorf("after retract = %v", sols)
	}
}

func TestIndexStructureKeys(t *testing.T) {
	m := newMachine(t)
	src := ""
	for i := 0; i < 10; i++ {
		src += fmt.Sprintf("shp(f(%d), fkey%d).\n", i, i)
		src += fmt.Sprintf("shp(g(%d), gkey%d).\n", i, i)
	}
	consult(t, m, src)
	// f/1 probe: the key is the principal functor, so every f/1 clause is
	// a candidate, but g/1 clauses are not tried. Behaviour check only:
	sols := solutions(t, m, "shp(f(4), V)")
	if len(sols) != 1 || sols[0]["V"].String() != "fkey4" {
		t.Errorf("struct key solutions = %v", sols)
	}
	sols = solutions(t, m, "shp(g(X), V)")
	if len(sols) != 10 {
		t.Errorf("g enumeration = %d", len(sols))
	}
}

// BenchmarkFirstArgIndex measures the candidate-set reduction on a keyed
// fact base (in-memory analogue of the paper's disk-side filtering).
func BenchmarkFirstArgIndex(b *testing.B) {
	m := New()
	src := ""
	for i := 0; i < 2000; i++ {
		src += fmt.Sprintf("kf(key%d, %d).\n", i, i)
	}
	if err := m.ConsultString(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := m.ProveString("kf(key1500, _)")
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
