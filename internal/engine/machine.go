// Package engine implements the Prolog resolution engine of the PDBM
// substrate: a Prolog-X–style system with modules, a clause store that
// preserves user clause order, a standard-order solver with cut, exceptions
// and a practical set of built-in predicates.
//
// The engine is deliberately structured around the paper's division of
// labour: procedures may be memory resident (small modules) or backed by a
// ClauseSource (large, disk-resident modules). A ClauseSource returns
// *candidate* clauses for a goal — in the paper that candidate set is
// produced by the CLARE two-stage filter — and the engine performs full
// unification on the candidates, exactly as the host Prolog does in §2.2.
package engine

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
)

// Indicator names a procedure: functor/arity.
type Indicator struct {
	Name  string
	Arity int
}

func (pi Indicator) String() string { return fmt.Sprintf("%s/%d", pi.Name, pi.Arity) }

// IndicatorOf returns the procedure indicator of a callable term.
func IndicatorOf(t term.Term) (Indicator, error) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return Indicator{Name: string(t)}, nil
	case *term.Compound:
		return Indicator{Name: t.Functor, Arity: len(t.Args)}, nil
	default:
		return Indicator{}, fmt.Errorf("engine: %v is not callable", t)
	}
}

// Clause is one stored clause. Facts have Body == true.
type Clause struct {
	Head term.Term
	Body term.Term
	// Seq is the clause's position in user order within its procedure at
	// assert time; retrieval preserves this order (§1: clause ordering is
	// semantically significant and must survive disk residency).
	Seq int
}

// Renamed returns a fresh copy of the clause with variables renamed apart.
func (c *Clause) Renamed() (head, body term.Term) {
	m := make(map[*term.Var]*term.Var)
	return term.RenameWith(c.Head, m), term.RenameWith(c.Body, m)
}

// String renders the clause in source form.
func (c *Clause) String() string {
	if term.Equal(c.Body, term.Atom("true")) {
		return c.Head.String() + "."
	}
	return c.Head.String() + " :- " + c.Body.String() + "."
}

// ClauseSource supplies candidate clauses for a goal. Implementations may
// filter: every clause that truly unifies with the goal MUST be included
// (in user order), and extras (false drops) are permitted — the engine
// weeds them out with full unification.
type ClauseSource interface {
	// Candidates returns candidate clauses for goal in user order.
	Candidates(goal term.Term) ([]*Clause, error)
}

// Procedure is a named predicate: an ordered clause list or an external
// source.
type Procedure struct {
	Ind     Indicator
	Clauses []*Clause    // memory-resident clauses, user order
	Source  ClauseSource // non-nil for disk-resident procedures
	nextSeq int
	index   *procIndex // lazy first-argument index; nil when stale
}

func (p *Procedure) candidates(goal term.Term) ([]*Clause, error) {
	if p.Source != nil {
		return p.Source.Candidates(goal)
	}
	return p.Clauses, nil
}

// Module is a named collection of procedures — the Prolog-X unit of
// compilation. Small modules live in memory; large ones mark DiskResident
// and their procedures carry a ClauseSource.
type Module struct {
	Name         string
	DiskResident bool
	procs        map[Indicator]*Procedure
}

func newModule(name string) *Module {
	return &Module{Name: name, procs: make(map[Indicator]*Procedure)}
}

// Proc returns the procedure for pi, creating it if create is set.
func (mod *Module) Proc(pi Indicator, create bool) *Procedure {
	p, ok := mod.procs[pi]
	if !ok && create {
		p = &Procedure{Ind: pi}
		mod.procs[pi] = p
	}
	return p
}

// Procedures returns the module's procedure indicators in sorted order.
func (mod *Module) Procedures() []Indicator {
	out := make([]Indicator, 0, len(mod.procs))
	for pi := range mod.procs {
		out = append(out, pi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Builtin is the Go implementation of a built-in predicate. args are the
// goal's arguments (not dereferenced), depth the current call depth (for
// builtins that re-enter the solver). k is the success continuation; a
// builtin that succeeds once calls k() once and returns its result.
type Builtin func(m *Machine, args []term.Term, depth int, k Cont) Result

// Machine is a Prolog engine instance.
type Machine struct {
	mu       sync.RWMutex
	modules  map[string]*Module
	builtins map[Indicator]Builtin
	ops      *parse.OpTable

	// Out receives output from write/1, nl/0 etc. Defaults to os.Stdout.
	Out io.Writer
	// Trail is the global binding trail.
	Trail unify.Trail
	// CurrentModule is the module that consults and queries target.
	CurrentModule string

	halted     bool
	haltCode   int
	inferences int64     // predicate calls since machine start (statistics/2)
	trace      io.Writer // port tracing; nil = off
}

// New returns a machine with the standard built-ins and library loaded into
// module "user".
func New() *Machine {
	m := &Machine{
		modules:       map[string]*Module{"user": newModule("user")},
		builtins:      make(map[Indicator]Builtin),
		ops:           parse.NewOpTable(),
		Out:           os.Stdout,
		CurrentModule: "user",
	}
	m.registerBuiltins()
	m.registerExtraBuiltins()
	if err := m.ConsultString(bootstrapLibrary); err != nil {
		panic(fmt.Sprintf("engine: bootstrap library: %v", err))
	}
	return m
}

// Module returns the named module, creating it on demand.
func (m *Machine) Module(name string) *Module {
	m.mu.Lock()
	defer m.mu.Unlock()
	mod, ok := m.modules[name]
	if !ok {
		mod = newModule(name)
		m.modules[name] = mod
	}
	return mod
}

// Modules lists the module names in sorted order.
func (m *Machine) Modules() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.modules))
	for n := range m.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ops returns the machine's operator table (mutated by op/3).
func (m *Machine) Ops() *parse.OpTable { return m.ops }

// Halted reports whether halt/0 or halt/1 has been executed, and the code.
func (m *Machine) Halted() (bool, int) { return m.halted, m.haltCode }

// lookupProc finds the procedure for pi, searching the current module then
// "user". Returns nil if undefined.
func (m *Machine) lookupProc(pi Indicator) *Procedure {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if mod, ok := m.modules[m.CurrentModule]; ok {
		if p, ok := mod.procs[pi]; ok {
			return p
		}
	}
	if m.CurrentModule != "user" {
		if p, ok := m.modules["user"].procs[pi]; ok {
			return p
		}
	}
	return nil
}

// ConsultString loads Prolog source text into the machine, handling
// :- module(Name) and other directives.
func (m *Machine) ConsultString(src string) error {
	p, err := parse.NewWithOps(src, m.ops)
	if err != nil {
		return err
	}
	for {
		t, err := p.ReadTerm()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := m.consultTerm(t); err != nil {
			return err
		}
	}
}

func (m *Machine) consultTerm(t term.Term) error {
	if c, ok := t.(*term.Compound); ok {
		// Directive?
		if c.Functor == ":-" && len(c.Args) == 1 {
			return m.runDirective(c.Args[0])
		}
		// Grammar rule?
		if c.Functor == "-->" && len(c.Args) == 2 {
			clause, err := translateDCG(c)
			if err != nil {
				return err
			}
			return m.Assertz(clause)
		}
	}
	return m.Assertz(t)
}

func (m *Machine) runDirective(goal term.Term) error {
	// module/1 and module/2 switch the consult target.
	if c, ok := term.Deref(goal).(*term.Compound); ok && c.Functor == "module" {
		if name, ok := term.Deref(c.Args[0]).(term.Atom); ok {
			m.Module(string(name)) // ensure it exists
			m.CurrentModule = string(name)
			return nil
		}
		return fmt.Errorf("engine: bad module directive %v", goal)
	}
	ok, err := m.Prove(goal)
	if err != nil {
		return fmt.Errorf("engine: directive %v: %w", goal, err)
	}
	if !ok {
		return fmt.Errorf("engine: directive %v failed", goal)
	}
	return nil
}

// Assertz appends a clause (term form, possibly H :- B) to its procedure.
func (m *Machine) Assertz(t term.Term) error { return m.assert(t, false) }

// Asserta prepends a clause to its procedure.
func (m *Machine) Asserta(t term.Term) error { return m.assert(t, true) }

func (m *Machine) assert(t term.Term, front bool) error {
	head, body, err := splitClause(t)
	if err != nil {
		return err
	}
	pi, err := IndicatorOf(head)
	if err != nil {
		return err
	}
	if _, isBI := m.builtins[pi]; isBI {
		return fmt.Errorf("engine: cannot modify builtin %v", pi)
	}
	mod := m.Module(m.CurrentModule)
	m.mu.Lock()
	defer m.mu.Unlock()
	p := mod.Proc(pi, true)
	if p.Source != nil {
		return fmt.Errorf("engine: %v is backed by an external source; assert unsupported", pi)
	}
	// Store a renamed copy so caller-held variables cannot mutate the DB.
	rm := make(map[*term.Var]*term.Var)
	cl := &Clause{
		Head: term.RenameWith(unify.Resolve(head), rm),
		Body: term.RenameWith(unify.Resolve(body), rm),
		Seq:  p.nextSeq,
	}
	p.nextSeq++
	if front {
		p.Clauses = append([]*Clause{cl}, p.Clauses...)
	} else {
		p.Clauses = append(p.Clauses, cl)
	}
	p.index = nil // invalidate the first-argument index
	return nil
}

// splitClause separates a clause term into head and body.
func splitClause(t term.Term) (head, body term.Term, err error) {
	t = term.Deref(t)
	if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0], c.Args[1], nil
	}
	switch t.(type) {
	case term.Atom, *term.Compound:
		return t, term.Atom("true"), nil
	}
	return nil, nil, fmt.Errorf("engine: %v cannot be a clause head", t)
}

// Retract removes the first clause matching t (head or head:-body).
// Reports whether a clause was removed.
func (m *Machine) Retract(t term.Term) (bool, error) {
	head, body, err := splitClause(t)
	if err != nil {
		return false, err
	}
	pi, err := IndicatorOf(head)
	if err != nil {
		return false, err
	}
	mod := m.Module(m.CurrentModule)
	m.mu.Lock()
	defer m.mu.Unlock()
	p := mod.Proc(pi, false)
	if p == nil {
		return false, nil
	}
	for i, cl := range p.Clauses {
		h, b := cl.Renamed()
		mark := m.Trail.Mark()
		if unify.Unify(head, h, &m.Trail) && unify.Unify(body, b, &m.Trail) {
			m.Trail.Undo(mark)
			p.Clauses = append(p.Clauses[:i:i], p.Clauses[i+1:]...)
			p.index = nil
			return true, nil
		}
		m.Trail.Undo(mark)
	}
	return false, nil
}

// Solution is one answer: resolved bindings for the query's named
// variables.
type Solution map[string]term.Term

func (s Solution) String() string {
	if len(s) == 0 {
		return "true"
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s = %v", k, s[k])
	}
	return strings.Join(parts, ", ")
}

// Query parses src as a goal and returns up to max solutions (max <= 0
// means all; beware nonterminating programs).
func (m *Machine) Query(src string, max int) ([]Solution, error) {
	p, err := parse.NewWithOps(src+" .", m.ops)
	if err != nil {
		return nil, err
	}
	goal, err := p.ReadTerm()
	if err != nil {
		return nil, err
	}
	named := p.NamedVars()

	var sols []Solution
	err = m.Solve(goal, func() bool {
		s := make(Solution, len(named))
		for name, v := range named {
			s[name] = unify.Resolve(v)
		}
		sols = append(sols, s)
		return max > 0 && len(sols) >= max
	})
	return sols, err
}

// Prove runs goal and reports whether it has at least one solution.
func (m *Machine) Prove(goal term.Term) (bool, error) {
	found := false
	err := m.Solve(goal, func() bool {
		found = true
		return true
	})
	return found, err
}

// ProveString parses and proves a goal given as source text, using the
// machine's operator table.
func (m *Machine) ProveString(src string) (bool, error) {
	p, err := parse.NewWithOps(src+" .", m.ops)
	if err != nil {
		return false, err
	}
	g, err := p.ReadTerm()
	if err != nil {
		return false, err
	}
	return m.Prove(g)
}
