package engine

// First-argument indexing for memory-resident procedures: the standard
// Prolog implementation technique (and the in-memory analogue of what
// CLARE does for disk-resident predicates). A procedure's clauses are
// bucketed by the principal functor of their first head argument; a call
// with a ground first argument only tries the matching bucket plus the
// clauses whose first argument is a variable, in original clause order.
//
// Indexing is transparent: it never changes the solution set or order,
// only how many clause heads are attempted. The index is built lazily and
// invalidated by assert/retract.

import (
	"fmt"

	"clare/internal/term"
)

// indexKey identifies a first-argument shape.
type indexKey string

const noKey indexKey = ""

// firstArgKey returns the index key for a term, or noKey for variables
// (which match every bucket).
func firstArgKey(t term.Term) indexKey {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return indexKey("a:" + string(t))
	case term.Int:
		return indexKey(fmt.Sprintf("i:%d", int64(t)))
	case term.Float:
		return indexKey(fmt.Sprintf("f:%g", float64(t)))
	case *term.Compound:
		return indexKey(fmt.Sprintf("c:%s/%d", t.Functor, len(t.Args)))
	default:
		return noKey
	}
}

// procIndex is a procedure's lazily built first-argument index.
type procIndex struct {
	// buckets maps a first-argument key to the clauses that could match
	// it (same-key clauses plus variable-first-argument clauses), in
	// original order.
	buckets map[indexKey][]*Clause
	// varOnly holds the clauses whose first argument is a variable; used
	// for keys with no bucket entry.
	varOnly []*Clause
}

// buildIndex constructs the index for the current clause list.
func buildIndex(clauses []*Clause) *procIndex {
	ix := &procIndex{buckets: make(map[indexKey][]*Clause)}
	// Collect the distinct keys first.
	keys := make([]indexKey, 0, 8)
	seen := make(map[indexKey]bool)
	for _, cl := range clauses {
		k := clauseFirstArgKey(cl)
		if k != noKey && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, cl := range clauses {
		k := clauseFirstArgKey(cl)
		if k == noKey {
			// Variable first argument: belongs to every bucket.
			ix.varOnly = append(ix.varOnly, cl)
			for _, key := range keys {
				ix.buckets[key] = append(ix.buckets[key], cl)
			}
			continue
		}
		ix.buckets[k] = append(ix.buckets[k], cl)
	}
	return ix
}

func clauseFirstArgKey(cl *Clause) indexKey {
	c, ok := term.Deref(cl.Head).(*term.Compound)
	if !ok || len(c.Args) == 0 {
		return noKey
	}
	return firstArgKey(c.Args[0])
}

// candidatesIndexed returns the candidate clauses for goal using the
// first-argument index when profitable.
func (p *Procedure) candidatesIndexed(goal term.Term) ([]*Clause, error) {
	if p.Source != nil {
		return p.Source.Candidates(goal)
	}
	// Small procedures are not worth indexing.
	const indexThreshold = 8
	if len(p.Clauses) < indexThreshold {
		return p.Clauses, nil
	}
	g, ok := term.Deref(goal).(*term.Compound)
	if !ok || len(g.Args) == 0 {
		return p.Clauses, nil
	}
	key := firstArgKey(g.Args[0])
	if key == noKey {
		return p.Clauses, nil
	}
	if p.index == nil {
		p.index = buildIndex(p.Clauses)
	}
	if bucket, hit := p.index.buckets[key]; hit {
		return bucket, nil
	}
	return p.index.varOnly, nil
}
