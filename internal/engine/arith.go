package engine

import (
	"math"

	"clare/internal/term"
)

// Number is an evaluated arithmetic value: exactly one of I/F is active.
type Number struct {
	IsFloat bool
	I       int64
	F       float64
}

func intN(i int64) Number { return Number{I: i} }
func floatN(f float64) Number {
	return Number{IsFloat: true, F: f}
}

func (n Number) asFloat() float64 {
	if n.IsFloat {
		return n.F
	}
	return float64(n.I)
}

// Term converts the number back to a Prolog term.
func (n Number) Term() term.Term {
	if n.IsFloat {
		return term.Float(n.F)
	}
	return term.Int(n.I)
}

// Eval evaluates t as an arithmetic expression (is/2 and friends),
// converting Prolog evaluation exceptions into Go errors.
func Eval(t term.Term) (n Number, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(prologError)
			if !ok {
				panic(r)
			}
			err = pe
		}
	}()
	return eval(t), nil
}

func eval(t term.Term) Number {
	t = term.Deref(t)
	switch t := t.(type) {
	case term.Int:
		return intN(int64(t))
	case term.Float:
		return floatN(float64(t))
	case *term.Var:
		panic(instantiationError())
	case term.Atom:
		switch t {
		case "pi":
			return floatN(math.Pi)
		case "e":
			return floatN(math.E)
		case "inf", "infinite":
			return floatN(math.Inf(1))
		case "epsilon":
			return floatN(2.220446049250313e-16)
		case "max_tagged_integer":
			return intN(math.MaxInt64)
		case "random":
			// Deterministic stand-in; real Prologs use a PRNG. Keeping
			// evaluation pure makes engine runs reproducible.
			return floatN(0.5)
		}
		panic(typeError("evaluable", t))
	case *term.Compound:
		return evalCompound(t)
	}
	panic(typeError("evaluable", t))
}

func evalCompound(c *term.Compound) Number {
	if len(c.Args) == 1 {
		x := eval(c.Args[0])
		switch c.Functor {
		case "-":
			if x.IsFloat {
				return floatN(-x.F)
			}
			return intN(-x.I)
		case "+":
			return x
		case "abs":
			if x.IsFloat {
				return floatN(math.Abs(x.F))
			}
			if x.I < 0 {
				return intN(-x.I)
			}
			return x
		case "sign":
			if x.IsFloat {
				switch {
				case x.F > 0:
					return floatN(1)
				case x.F < 0:
					return floatN(-1)
				}
				return floatN(0)
			}
			switch {
			case x.I > 0:
				return intN(1)
			case x.I < 0:
				return intN(-1)
			}
			return intN(0)
		case "min", "max":
			panic(typeError("evaluable", c))
		case "sqrt":
			return floatN(math.Sqrt(x.asFloat()))
		case "sin":
			return floatN(math.Sin(x.asFloat()))
		case "cos":
			return floatN(math.Cos(x.asFloat()))
		case "tan":
			return floatN(math.Tan(x.asFloat()))
		case "asin":
			return floatN(math.Asin(x.asFloat()))
		case "acos":
			return floatN(math.Acos(x.asFloat()))
		case "atan":
			return floatN(math.Atan(x.asFloat()))
		case "exp":
			return floatN(math.Exp(x.asFloat()))
		case "log":
			if x.asFloat() <= 0 {
				panic(evaluationError("undefined"))
			}
			return floatN(math.Log(x.asFloat()))
		case "float":
			return floatN(x.asFloat())
		case "integer":
			if x.IsFloat {
				return intN(int64(math.Round(x.F)))
			}
			return x
		case "float_integer_part":
			return floatN(math.Trunc(x.asFloat()))
		case "float_fractional_part":
			f := x.asFloat()
			return floatN(f - math.Trunc(f))
		case "truncate":
			return intN(int64(math.Trunc(x.asFloat())))
		case "round":
			return intN(int64(math.Round(x.asFloat())))
		case "ceiling":
			return intN(int64(math.Ceil(x.asFloat())))
		case "floor":
			return intN(int64(math.Floor(x.asFloat())))
		case "\\":
			if x.IsFloat {
				panic(typeError("integer", c.Args[0]))
			}
			return intN(^x.I)
		case "msb":
			if x.IsFloat || x.I <= 0 {
				panic(typeError("integer", c.Args[0]))
			}
			msb := 0
			for v := x.I; v > 1; v >>= 1 {
				msb++
			}
			return intN(int64(msb))
		}
		panic(typeError("evaluable", term.Atom(c.Functor+"/1")))
	}

	if len(c.Args) == 2 {
		x, y := eval(c.Args[0]), eval(c.Args[1])
		bothInt := !x.IsFloat && !y.IsFloat
		switch c.Functor {
		case "+":
			if bothInt {
				return intN(x.I + y.I)
			}
			return floatN(x.asFloat() + y.asFloat())
		case "-":
			if bothInt {
				return intN(x.I - y.I)
			}
			return floatN(x.asFloat() - y.asFloat())
		case "*":
			if bothInt {
				return intN(x.I * y.I)
			}
			return floatN(x.asFloat() * y.asFloat())
		case "/":
			if bothInt {
				if y.I == 0 {
					panic(evaluationError("zero_divisor"))
				}
				if x.I%y.I == 0 {
					return intN(x.I / y.I)
				}
				return floatN(float64(x.I) / float64(y.I))
			}
			if y.asFloat() == 0 {
				panic(evaluationError("zero_divisor"))
			}
			return floatN(x.asFloat() / y.asFloat())
		case "//":
			if !bothInt {
				panic(typeError("integer", c))
			}
			if y.I == 0 {
				panic(evaluationError("zero_divisor"))
			}
			q := x.I / y.I
			return intN(q)
		case "mod":
			if !bothInt {
				panic(typeError("integer", c))
			}
			if y.I == 0 {
				panic(evaluationError("zero_divisor"))
			}
			r := x.I % y.I
			if r != 0 && (r < 0) != (y.I < 0) {
				r += y.I
			}
			return intN(r)
		case "rem":
			if !bothInt {
				panic(typeError("integer", c))
			}
			if y.I == 0 {
				panic(evaluationError("zero_divisor"))
			}
			return intN(x.I % y.I)
		case "min":
			if cmpNumbers(x, y) <= 0 {
				return x
			}
			return y
		case "max":
			if cmpNumbers(x, y) >= 0 {
				return x
			}
			return y
		case "**":
			return floatN(math.Pow(x.asFloat(), y.asFloat()))
		case "^":
			if bothInt {
				if y.I < 0 {
					panic(typeError("float", c.Args[1]))
				}
				return intN(ipow(x.I, y.I))
			}
			return floatN(math.Pow(x.asFloat(), y.asFloat()))
		case ">>":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(x.I >> uint(y.I))
		case "<<":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(x.I << uint(y.I))
		case "/\\":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(x.I & y.I)
		case "\\/":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(x.I | y.I)
		case "xor":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(x.I ^ y.I)
		case "atan", "atan2":
			return floatN(math.Atan2(x.asFloat(), y.asFloat()))
		case "gcd":
			if !bothInt {
				panic(typeError("integer", c))
			}
			return intN(gcd(x.I, y.I))
		}
		panic(typeError("evaluable", term.Atom(c.Functor+"/2")))
	}
	panic(typeError("evaluable", c))
}

func ipow(base, exp int64) int64 {
	result := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// cmpNumbers compares two numbers arithmetically: -1, 0, +1.
func cmpNumbers(a, b Number) int {
	if !a.IsFloat && !b.IsFloat {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := a.asFloat(), b.asFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

func biIs(m *Machine, args []term.Term, _ int, k Cont) Result {
	v := eval(args[1])
	return unifyK(m, args[0], v.Term(), k)
}

func arithCompare(pred func(int) bool) Builtin {
	return func(m *Machine, args []term.Term, _ int, k Cont) Result {
		if pred(cmpNumbers(eval(args[0]), eval(args[1]))) {
			return k()
		}
		return Fail
	}
}
