package engine

// DCG translation: Prolog-X uses Edinburgh syntax "with extension", and
// grammar rules (H --> B) are standard Edinburgh practice. Consulting a
// -->/2 clause translates it into an ordinary clause threading a
// difference list through the body; phrase/2 and phrase/3 run a
// nonterminal over a list.

import (
	"fmt"

	"clare/internal/term"
)

// translateDCG turns `head --> body` into an ordinary clause.
func translateDCG(rule *term.Compound) (term.Term, error) {
	s0 := term.NewVar("S0")
	s := term.NewVar("S")
	head, err := dcgHead(rule.Args[0], s0, s)
	if err != nil {
		return nil, err
	}
	body, err := dcgBody(rule.Args[1], s0, s)
	if err != nil {
		return nil, err
	}
	return term.New(":-", head, body), nil
}

// dcgHead appends the difference-list pair to the nonterminal.
func dcgHead(h term.Term, s0, s term.Term) (term.Term, error) {
	switch h := term.Deref(h).(type) {
	case term.Atom:
		return term.New(string(h), s0, s), nil
	case *term.Compound:
		if h.Functor == "," {
			return nil, fmt.Errorf("engine: push-back DCG heads are not supported")
		}
		args := append(append([]term.Term{}, h.Args...), s0, s)
		return term.New(h.Functor, args...), nil
	default:
		return nil, fmt.Errorf("engine: %v is not a valid DCG head", h)
	}
}

// dcgBody translates a grammar body between list positions s0 and s.
func dcgBody(b term.Term, s0, s term.Term) (term.Term, error) {
	b = term.Deref(b)
	switch b := b.(type) {
	case term.Atom:
		switch b {
		case "[]":
			return term.New("=", s0, s), nil
		case "!":
			// Cut stays a cut; the list position is unchanged.
			return term.New(",", term.Atom("!"), term.New("=", s0, s)), nil
		default:
			return term.New(string(b), s0, s), nil
		}
	case *term.Var:
		// A variable body becomes phrase(V, S0, S).
		return term.New("phrase", b, s0, s), nil
	case *term.Compound:
		switch {
		case b.Functor == "," && len(b.Args) == 2:
			mid := term.NewVar("S")
			left, err := dcgBody(b.Args[0], s0, mid)
			if err != nil {
				return nil, err
			}
			right, err := dcgBody(b.Args[1], mid, s)
			if err != nil {
				return nil, err
			}
			return term.New(",", left, right), nil
		case b.Functor == ";" && len(b.Args) == 2:
			left, err := dcgBody(b.Args[0], s0, s)
			if err != nil {
				return nil, err
			}
			right, err := dcgBody(b.Args[1], s0, s)
			if err != nil {
				return nil, err
			}
			return term.New(";", left, right), nil
		case b.Functor == "->" && len(b.Args) == 2:
			mid := term.NewVar("S")
			cond, err := dcgBody(b.Args[0], s0, mid)
			if err != nil {
				return nil, err
			}
			then, err := dcgBody(b.Args[1], mid, s)
			if err != nil {
				return nil, err
			}
			return term.New("->", cond, then), nil
		case b.Functor == "{}" && len(b.Args) == 1:
			// Plain goal: list position unchanged.
			return term.New(",", b.Args[0], term.New("=", s0, s)), nil
		case b.Functor == term.ConsFunctor && len(b.Args) == 2:
			// Terminal list: S0 = [t1, t2, ... | S].
			elems, tail := term.ListSlice(b)
			if !term.Equal(tail, term.NilAtom) {
				return nil, fmt.Errorf("engine: DCG terminal list must be proper, got %v", b)
			}
			return term.New("=", s0, term.ListTail(s, elems...)), nil
		case b.Functor == "\\+" && len(b.Args) == 1:
			inner, err := dcgBody(b.Args[0], s0, term.NewVar("_"))
			if err != nil {
				return nil, err
			}
			return term.New(",", term.New("\\+", inner), term.New("=", s0, s)), nil
		default:
			// Nonterminal with arguments.
			args := append(append([]term.Term{}, b.Args...), s0, s)
			return term.New(b.Functor, args...), nil
		}
	}
	return nil, fmt.Errorf("engine: cannot translate DCG body %v", b)
}

// biPhrase implements phrase/2 and phrase/3.
func biPhrase(m *Machine, args []term.Term, depth int, k Cont) Result {
	list := args[1]
	rest := term.Term(term.NilAtom)
	if len(args) == 3 {
		rest = args[2]
	}
	body, err := dcgBody(args[0], list, rest)
	if err != nil {
		panic(typeError("dcg_body", args[0]))
	}
	r := m.solve(body, depth+1, k)
	if r == Cut {
		return Fail
	}
	return r
}
