package engine

// Tests targeting the less-travelled built-ins and API surface.

import (
	"strings"
	"testing"

	"clare/internal/parse"
	"clare/internal/term"
)

func TestArithmeticFunctions(t *testing.T) {
	m := newMachine(t)
	cases := map[string]string{
		"X is sqrt(16.0)":               "4.0",
		"X is sin(0)":                   "0.0",
		"X is cos(0)":                   "1.0",
		"X is exp(0)":                   "1.0",
		"X is log(e)":                   "1.0",
		"X is abs(3.5)":                 "3.5",
		"X is abs(-3.5)":                "3.5",
		"X is sign(-9)":                 "-1",
		"X is sign(0.0)":                "0.0",
		"X is float(3)":                 "3.0",
		"X is integer(3.6)":             "4",
		"X is truncate(-3.6)":           "-3",
		"X is round(2.5)":               "3",
		"X is ceiling(2.1)":             "3",
		"X is floor(2.9)":               "2",
		"X is float_integer_part(2.75)": "2.0",
		"X is \\ 0":                     "-1",
		"X is msb(1024)":                "10",
		"X is pi":                       term.Float(3.141592653589793).String(),
		"X is min(2.5, 2)":              "2",
		"X is max(2.5, 2)":              "2.5",
		"X is atan(1.0, 1.0)":           term.Float(0.7853981633974483).String(),
		"X is 2.0 ** 3":                 "8.0",
		"X is -(5)":                     "-5",
		"X is +(5)":                     "5",
		"X is 1 >> 3":                   "0",
	}
	for q, want := range cases {
		sols := solutions(t, m, q)
		if len(sols) != 1 || sols[0]["X"].String() != want {
			t.Errorf("%s = %v, want %s", q, sols, want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	m := newMachine(t)
	for _, q := range []string{
		"X is log(0)",
		"X is log(-1)",
		"X is 1 // 0",
		"X is 1 mod 0",
		"X is 1 rem 0",
		"X is foo",
		"X is unknown_fn(1)",
		"X is unknown_fn(1, 2)",
		"X is f(1, 2, 3)",
		"X is 1.5 /\\ 2",
		"X is 1.5 << 2",
		"X is msb(0)",
		"X is \\ 1.5",
		"X is Y + 1",
	} {
		if _, err := m.Query(q, 1); err == nil {
			t.Errorf("%s should raise", q)
		}
	}
}

func TestNotAndUnifyOC(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "p(1).")
	if !proves(t, m, "not(p(2))") {
		t.Error("not/1 should succeed")
	}
	if proves(t, m, "not(p(1))") {
		t.Error("not/1 should fail")
	}
	if !proves(t, m, "unify_with_occurs_check(X, f(a)), X == f(a)") {
		t.Error("unify_with_occurs_check should bind")
	}
	if proves(t, m, "unify_with_occurs_check(X, f(X))") {
		t.Error("occurs check should reject X = f(X)")
	}
}

func TestSuccAndTab(t *testing.T) {
	m := New()
	var out strings.Builder
	m.Out = &out
	if ok, _ := m.ProveString("succ(3, S), S == 4"); !ok {
		t.Error("succ(3, S) failed")
	}
	if ok, _ := m.ProveString("succ(P, 4), P == 3"); !ok {
		t.Error("succ(P, 4) failed")
	}
	if ok, _ := m.ProveString("succ(P, 0)"); ok {
		t.Error("succ(P, 0) should fail")
	}
	if ok, _ := m.ProveString("tab(3), write(x)"); !ok {
		t.Error("tab failed")
	}
	if out.String() != "   x" {
		t.Errorf("tab output = %q", out.String())
	}
}

func TestArgEnumeration(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "arg(N, f(a, b), V)")
	if len(sols) != 2 {
		t.Fatalf("arg enumeration = %v", sols)
	}
	if sols[0]["N"].String() != "1" || sols[0]["V"].String() != "a" {
		t.Errorf("first = %v", sols[0])
	}
	if proves(t, m, "arg(3, f(a, b), _)") {
		t.Error("out-of-range arg should fail")
	}
	if proves(t, m, "arg(0, f(a), _)") {
		t.Error("arg 0 should fail")
	}
}

func TestAtomCharsReverse(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "atom_chars(A, [h, i])")
	if len(sols) != 1 || sols[0]["A"].String() != "hi" {
		t.Errorf("atom_chars reverse = %v", sols)
	}
	sols = solutions(t, m, "char_code(C, 98)")
	if len(sols) != 1 || sols[0]["C"].String() != "b" {
		t.Errorf("char_code reverse = %v", sols)
	}
	sols = solutions(t, m, "number_codes(N, \"42\")")
	if len(sols) != 1 || sols[0]["N"].String() != "42" {
		t.Errorf("number_codes reverse = %v", sols)
	}
	if _, err := m.Query("number_codes(N, \"junk\")", 1); err == nil {
		t.Error("number_codes on junk should raise syntax error")
	}
	sols = solutions(t, m, "atom_number(A, 7)")
	if len(sols) != 1 || sols[0]["A"].String() != "'7'" {
		t.Errorf("atom_number reverse = %v", sols)
	}
	if proves(t, m, "atom_number(not_a_number, _)") {
		t.Error("atom_number on non-number should fail")
	}
}

func TestLengthModes(t *testing.T) {
	m := newMachine(t)
	// Partial list with bound length: extend.
	sols := solutions(t, m, "L = [a|T], length(L, 3)")
	if len(sols) != 1 {
		t.Fatalf("length extension = %v", sols)
	}
	elems, tail := term.ListSlice(sols[0]["L"])
	if len(elems) != 3 || !term.Equal(tail, term.NilAtom) {
		t.Errorf("extended list = %v", sols[0]["L"])
	}
	if proves(t, m, "L = [a, b], length(L, 1)") {
		t.Error("length mismatch should fail")
	}
	// Enumeration mode (bounded by max solutions).
	sols, err := m.Query("length(L, N)", 3)
	if err != nil || len(sols) != 3 {
		t.Fatalf("length enumeration = %v, %v", sols, err)
	}
	if sols[2]["N"].String() != "2" {
		t.Errorf("third length = %v", sols[2])
	}
}

func TestOpDirectiveErrors(t *testing.T) {
	m := newMachine(t)
	for _, q := range []string{
		"op(foo, xfx, ==>)",
		"op(700, bogus, ==>)",
		"op(700, xfx, 3)",
	} {
		if _, err := m.Query(q, 1); err == nil {
			t.Errorf("%s should raise", q)
		}
	}
	// Postfix operator via op/3.
	if !proves(t, m, "op(500, xf, bang)") {
		t.Fatal("op xf failed")
	}
	consult(t, m, "loud(X bang) :- atom(X).")
	if !proves(t, m, "loud(hello bang)") {
		t.Error("postfix operator clause failed")
	}
}

func TestRetractAPI(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "d(1). d(2).")
	removed, err := m.Retract(parse.MustTerm("d(1)"))
	if err != nil || !removed {
		t.Fatalf("Retract = %v, %v", removed, err)
	}
	if proves(t, m, "d(1)") {
		t.Error("retracted clause still visible")
	}
	removed, err = m.Retract(parse.MustTerm("d(99)"))
	if err != nil || removed {
		t.Errorf("Retract of absent clause = %v, %v", removed, err)
	}
}

func TestMachineIntrospection(t *testing.T) {
	m := newMachine(t)
	consult(t, m, ":- module(zoo).\nanimal(cat).")
	mods := m.Modules()
	found := false
	for _, name := range mods {
		if name == "zoo" {
			found = true
		}
	}
	if !found {
		t.Errorf("Modules() = %v", mods)
	}
	pis := m.Module("zoo").Procedures()
	if len(pis) != 1 || pis[0].String() != "animal/1" {
		t.Errorf("Procedures = %v", pis)
	}
	if m.Ops() == nil {
		t.Error("Ops() returned nil")
	}
}

func TestThrowAPI(t *testing.T) {
	m := newMachine(t)
	m.builtins[Indicator{Name: "go_throw", Arity: 0}] = func(m *Machine, _ []term.Term, _ int, _ Cont) Result {
		Throw(term.Atom("from_go"))
		return Fail
	}
	_, err := m.Query("go_throw", 1)
	if err == nil {
		t.Fatal("expected exception")
	}
	ball, ok := IsPrologError(err)
	if !ok || ball.String() != "from_go" {
		t.Errorf("ball = %v, %v", ball, ok)
	}
	if err.Error() == "" {
		t.Error("empty error text")
	}
	if !proves(t, m, "catch(go_throw, from_go, true)") {
		t.Error("Go-thrown ball not catchable")
	}
}

func TestDCGErrorCases(t *testing.T) {
	m := newMachine(t)
	// Push-back heads unsupported.
	if err := m.ConsultString("(h, [x]) --> [y]."); err == nil {
		t.Error("push-back DCG head should be rejected")
	}
	// Improper terminal list.
	if err := m.ConsultString("bad --> [a|b]."); err == nil {
		t.Error("improper terminal list should be rejected")
	}
	// Negation and variable bodies translate.
	consult(t, m, `
		not_x --> \+ [x], [_].
		delegate(B) --> B.
		xx --> [x].
	`)
	if !proves(t, m, "phrase(not_x, [y])") {
		t.Error("\\+ in DCG failed")
	}
	if proves(t, m, "phrase(not_x, [x])") {
		t.Error("\\+ in DCG should reject [x]")
	}
	if !proves(t, m, "phrase(delegate(xx), [x])") {
		t.Error("variable DCG body failed")
	}
}
