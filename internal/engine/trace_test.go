package engine

import (
	"strings"
	"testing"
)

func TestTracePorts(t *testing.T) {
	m := New()
	var out strings.Builder
	m.Out = &out
	consult(t, m, "p(1). p(2). q(2).")
	var tr strings.Builder
	m.SetTrace(&tr)
	if _, err := m.Query("p(X), q(X)", 0); err != nil {
		t.Fatal(err)
	}
	m.SetTrace(nil)
	got := tr.String()
	for _, want := range []string{
		"CALL: p(X)",
		"EXIT: p(1)",
		"CALL: q(1)",
		"FAIL: q(1)",
		"REDO: p(X)",
		"EXIT: p(2)",
		"EXIT: q(2)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace missing %q:\n%s", want, got)
		}
	}
}

func TestTraceBuiltinsToggle(t *testing.T) {
	m := New()
	var out strings.Builder
	m.Out = &out
	consult(t, m, "r(7).")
	if !proves(t, m, "trace, r(_), notrace") {
		t.Fatal("traced query failed")
	}
	if !strings.Contains(out.String(), "CALL: r(") {
		t.Errorf("trace/0 did not emit ports: %q", out.String())
	}
	out.Reset()
	if !proves(t, m, "r(_)") {
		t.Fatal("query failed")
	}
	if strings.Contains(out.String(), "CALL") {
		t.Error("notrace/0 did not disable tracing")
	}
}

func TestListing(t *testing.T) {
	m := New()
	var out strings.Builder
	m.Out = &out
	consult(t, m, `
		lfact(a).
		lfact(b).
		lrule(X) :- lfact(X).
	`)
	if !proves(t, m, "listing(lfact/1)") {
		t.Fatal("listing failed")
	}
	got := out.String()
	if !strings.Contains(got, "lfact(a).") || !strings.Contains(got, "lfact(b).") {
		t.Errorf("listing output = %q", got)
	}
	if strings.Contains(got, "lrule") {
		t.Error("listing(lfact/1) leaked other predicates")
	}
	out.Reset()
	if !proves(t, m, "listing(lrule)") {
		t.Fatal("listing by name failed")
	}
	if !strings.Contains(out.String(), "lrule(X) :- lfact(X).") {
		t.Errorf("rule listing = %q", out.String())
	}
	// Bad specs raise domain errors.
	if !proves(t, m, "catch(listing(3), error(domain_error(_, _), _), true)") {
		t.Error("bad listing spec should raise domain_error")
	}
}
