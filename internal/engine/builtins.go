package engine

import (
	"fmt"
	"strconv"
	"strings"

	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
)

// registerBuiltins installs the Go-implemented predicates.
func (m *Machine) registerBuiltins() {
	reg := func(name string, arity int, fn Builtin) {
		m.builtins[Indicator{Name: name, Arity: arity}] = fn
	}

	// Control.
	reg("true", 0, biTrue)
	reg("fail", 0, biFail)
	reg("false", 0, biFail)
	reg("!", 0, biCut)
	reg("halt", 0, func(m *Machine, _ []term.Term, _ int, _ Cont) Result { panic(haltSignal{}) })
	reg("halt", 1, biHalt1)
	for n := 1; n <= 8; n++ {
		reg("call", n, biCall)
	}
	reg("not", 1, biNegation)
	reg("catch", 3, biCatch)
	reg("throw", 1, biThrow)
	reg("forall", 2, biForall)

	// Unification.
	reg("=", 2, biUnify)
	reg("\\=", 2, biNotUnify)
	reg("unify_with_occurs_check", 2, biUnifyOC)

	// Type tests.
	reg("var", 1, typeTest(func(t term.Term) bool { _, ok := t.(*term.Var); return ok }))
	reg("nonvar", 1, typeTest(func(t term.Term) bool { _, ok := t.(*term.Var); return !ok }))
	reg("atom", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Atom); return ok }))
	reg("integer", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Int); return ok }))
	reg("float", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Float); return ok }))
	reg("number", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Int, term.Float:
			return true
		}
		return false
	}))
	reg("atomic", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Atom, term.Int, term.Float:
			return true
		}
		return false
	}))
	reg("compound", 1, typeTest(func(t term.Term) bool { _, ok := t.(*term.Compound); return ok }))
	reg("callable", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Atom, *term.Compound:
			return true
		}
		return false
	}))
	reg("is_list", 1, typeTest(term.IsProperList))
	reg("ground", 1, typeTest(term.Ground))

	// Comparison.
	reg("==", 2, compareTest(func(c int) bool { return c == 0 }))
	reg("\\==", 2, compareTest(func(c int) bool { return c != 0 }))
	reg("@<", 2, compareTest(func(c int) bool { return c < 0 }))
	reg("@>", 2, compareTest(func(c int) bool { return c > 0 }))
	reg("@=<", 2, compareTest(func(c int) bool { return c <= 0 }))
	reg("@>=", 2, compareTest(func(c int) bool { return c >= 0 }))
	reg("compare", 3, biCompare3)

	// Term construction/inspection.
	reg("functor", 3, biFunctor)
	reg("arg", 3, biArg)
	reg("=..", 2, biUniv)
	reg("copy_term", 2, biCopyTerm)

	// Arithmetic.
	reg("is", 2, biIs)
	reg("=:=", 2, arithCompare(func(c int) bool { return c == 0 }))
	reg("=\\=", 2, arithCompare(func(c int) bool { return c != 0 }))
	reg("<", 2, arithCompare(func(c int) bool { return c < 0 }))
	reg(">", 2, arithCompare(func(c int) bool { return c > 0 }))
	reg("=<", 2, arithCompare(func(c int) bool { return c <= 0 }))
	reg(">=", 2, arithCompare(func(c int) bool { return c >= 0 }))
	reg("between", 3, biBetween)
	reg("succ", 2, biSucc)

	// Atoms & numbers.
	reg("atom_codes", 2, biAtomCodes)
	reg("atom_chars", 2, biAtomChars)
	reg("atom_length", 2, biAtomLength)
	reg("atom_concat", 3, biAtomConcat)
	reg("char_code", 2, biCharCode)
	reg("number_codes", 2, biNumberCodes)
	reg("atom_number", 2, biAtomNumber)

	// Lists (those easier in Go than Prolog).
	reg("length", 2, biLength)
	reg("msort", 2, biMsort)
	reg("sort", 2, biSort)

	// All-solutions.
	reg("findall", 3, biFindall)

	// Database.
	reg("assert", 1, biAssertz)
	reg("assertz", 1, biAssertz)
	reg("asserta", 1, biAsserta)
	reg("retract", 1, biRetract)
	reg("clause", 2, biClause)

	// I/O.
	reg("write", 1, biWrite)
	reg("print", 1, biWrite)
	reg("writeln", 1, biWriteln)
	reg("write_canonical", 1, biWrite)
	reg("nl", 0, biNl)
	reg("tab", 1, biTab)

	// Operator table.
	reg("op", 3, biOp)
}

func biTrue(m *Machine, _ []term.Term, _ int, k Cont) Result { return k() }
func biFail(m *Machine, _ []term.Term, _ int, _ Cont) Result { return Fail }

func biCut(m *Machine, _ []term.Term, _ int, k Cont) Result {
	if r := k(); r == Stop {
		return Stop
	}
	return Cut
}

func biHalt1(m *Machine, args []term.Term, _ int, _ Cont) Result {
	code, ok := term.Deref(args[0]).(term.Int)
	if !ok {
		panic(typeError("integer", args[0]))
	}
	panic(haltSignal{code: int(code)})
}

// biCall implements call/1..8: extra arguments are appended to the goal.
// A cut inside the called goal is local to it.
func biCall(m *Machine, args []term.Term, depth int, k Cont) Result {
	goal := term.Deref(args[0])
	extra := args[1:]
	if len(extra) > 0 {
		switch g := goal.(type) {
		case term.Atom:
			goal = term.New(string(g), extra...)
		case *term.Compound:
			goal = term.New(g.Functor, append(append([]term.Term{}, g.Args...), extra...)...)
		default:
			panic(typeError("callable", goal))
		}
	}
	r := m.solve(goal, depth+1, k)
	if r == Cut {
		return Fail
	}
	return r
}

func biNegation(m *Machine, args []term.Term, depth int, k Cont) Result {
	return m.solveNegation(args[0], depth, k)
}

func biThrow(m *Machine, args []term.Term, _ int, _ Cont) Result {
	ball := term.Deref(args[0])
	if _, isVar := ball.(*term.Var); isVar {
		panic(instantiationError())
	}
	panic(prologError{ball: unify.Resolve(ball)})
}

func biCatch(m *Machine, args []term.Term, depth int, k Cont) (res Result) {
	goal, catcher, recovery := args[0], args[1], args[2]
	mark := m.Trail.Mark()

	caught := func() (r Result, caughtIt bool) {
		defer func() {
			if e := recover(); e != nil {
				pe, ok := e.(prologError)
				if !ok {
					panic(e)
				}
				m.Trail.Undo(mark)
				ballCopy := term.Rename(pe.ball)
				if !unify.Unify(catcher, ballCopy, &m.Trail) {
					panic(pe) // not ours; rethrow
				}
				caughtIt = true
			}
		}()
		rr := m.solve(goal, depth+1, k)
		if rr == Cut {
			rr = Fail
		}
		return rr, false
	}

	r, caughtIt := caught()
	if caughtIt {
		return m.solve(recovery, depth, k)
	}
	return r
}

func biForall(m *Machine, args []term.Term, depth int, k Cont) Result {
	cond, action := args[0], args[1]
	violated := false
	mark := m.Trail.Mark()
	m.solve(cond, depth+1, func() Result {
		ok := false
		inner := m.Trail.Mark()
		m.solve(action, depth+1, func() Result { ok = true; return Stop })
		m.Trail.Undo(inner)
		if !ok {
			violated = true
			return Stop
		}
		return Fail
	})
	m.Trail.Undo(mark)
	if violated {
		return Fail
	}
	return k()
}

func biUnify(m *Machine, args []term.Term, _ int, k Cont) Result {
	mark := m.Trail.Mark()
	if unify.Unify(args[0], args[1], &m.Trail) {
		if r := k(); r != Fail {
			return r
		}
	}
	m.Trail.Undo(mark)
	return Fail
}

func biNotUnify(m *Machine, args []term.Term, _ int, k Cont) Result {
	if unify.Unifiable(args[0], args[1]) {
		return Fail
	}
	return k()
}

func biUnifyOC(m *Machine, args []term.Term, _ int, k Cont) Result {
	mark := m.Trail.Mark()
	if unify.UnifyOC(args[0], args[1], &m.Trail) {
		if r := k(); r != Fail {
			return r
		}
	}
	m.Trail.Undo(mark)
	return Fail
}

func typeTest(pred func(term.Term) bool) Builtin {
	return func(m *Machine, args []term.Term, _ int, k Cont) Result {
		if pred(term.Deref(args[0])) {
			return k()
		}
		return Fail
	}
}

func compareTest(pred func(int) bool) Builtin {
	return func(m *Machine, args []term.Term, _ int, k Cont) Result {
		if pred(term.Compare(args[0], args[1])) {
			return k()
		}
		return Fail
	}
}

func biCompare3(m *Machine, args []term.Term, _ int, k Cont) Result {
	var rel term.Atom
	switch term.Compare(args[1], args[2]) {
	case -1:
		rel = "<"
	case 0:
		rel = "="
	default:
		rel = ">"
	}
	return unifyK(m, args[0], rel, k)
}

// unifyK unifies a with b and continues; undoes on failure.
func unifyK(m *Machine, a, b term.Term, k Cont) Result {
	mark := m.Trail.Mark()
	if unify.Unify(a, b, &m.Trail) {
		if r := k(); r != Fail {
			return r
		}
	}
	m.Trail.Undo(mark)
	return Fail
}

func biFunctor(m *Machine, args []term.Term, _ int, k Cont) Result {
	t := term.Deref(args[0])
	switch t := t.(type) {
	case *term.Var:
		// Construct from name/arity.
		name := term.Deref(args[1])
		arity, ok := term.Deref(args[2]).(term.Int)
		if !ok {
			panic(typeError("integer", args[2]))
		}
		if arity == 0 {
			return unifyK(m, args[0], name, k)
		}
		atom, ok := name.(term.Atom)
		if !ok {
			panic(typeError("atom", name))
		}
		fargs := make([]term.Term, arity)
		for i := range fargs {
			fargs[i] = term.NewVar("_")
		}
		return unifyK(m, args[0], term.New(string(atom), fargs...), k)
	case *term.Compound:
		mark := m.Trail.Mark()
		if unify.Unify(args[1], term.Atom(t.Functor), &m.Trail) &&
			unify.Unify(args[2], term.Int(len(t.Args)), &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
		return Fail
	default: // atomic
		mark := m.Trail.Mark()
		if unify.Unify(args[1], t, &m.Trail) &&
			unify.Unify(args[2], term.Int(0), &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
		return Fail
	}
}

func biArg(m *Machine, args []term.Term, _ int, k Cont) Result {
	c, ok := term.Deref(args[1]).(*term.Compound)
	if !ok {
		panic(typeError("compound", args[1]))
	}
	switch n := term.Deref(args[0]).(type) {
	case term.Int:
		if n < 1 || int(n) > len(c.Args) {
			return Fail
		}
		return unifyK(m, args[2], c.Args[n-1], k)
	case *term.Var:
		for i := range c.Args {
			mark := m.Trail.Mark()
			if unify.Unify(args[0], term.Int(i+1), &m.Trail) &&
				unify.Unify(args[2], c.Args[i], &m.Trail) {
				if r := k(); r != Fail {
					return r
				}
			}
			m.Trail.Undo(mark)
		}
		return Fail
	default:
		panic(typeError("integer", args[0]))
	}
}

func biUniv(m *Machine, args []term.Term, _ int, k Cont) Result {
	t := term.Deref(args[0])
	switch t := t.(type) {
	case *term.Var:
		elems, tail := term.ListSlice(args[1])
		if tail != term.NilAtom || len(elems) == 0 {
			panic(domainError("non_empty_list", args[1]))
		}
		head := term.Deref(elems[0])
		if len(elems) == 1 {
			return unifyK(m, args[0], head, k)
		}
		atom, ok := head.(term.Atom)
		if !ok {
			panic(typeError("atom", head))
		}
		return unifyK(m, args[0], term.New(string(atom), elems[1:]...), k)
	case *term.Compound:
		list := term.List(append([]term.Term{term.Atom(t.Functor)}, t.Args...)...)
		return unifyK(m, args[1], list, k)
	default:
		return unifyK(m, args[1], term.List(t), k)
	}
}

func biCopyTerm(m *Machine, args []term.Term, _ int, k Cont) Result {
	return unifyK(m, args[1], term.Rename(args[0]), k)
}

func biBetween(m *Machine, args []term.Term, _ int, k Cont) Result {
	lo, ok1 := term.Deref(args[0]).(term.Int)
	hi, ok2 := term.Deref(args[1]).(term.Int)
	if !ok1 || !ok2 {
		panic(typeError("integer", args[0]))
	}
	if x, ok := term.Deref(args[2]).(term.Int); ok {
		if x >= lo && x <= hi {
			return k()
		}
		return Fail
	}
	for i := lo; i <= hi; i++ {
		mark := m.Trail.Mark()
		if unify.Unify(args[2], i, &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
	}
	return Fail
}

func biSucc(m *Machine, args []term.Term, _ int, k Cont) Result {
	a, aOK := term.Deref(args[0]).(term.Int)
	b, bOK := term.Deref(args[1]).(term.Int)
	switch {
	case aOK:
		if a < 0 {
			panic(typeError("not_less_than_zero", args[0]))
		}
		return unifyK(m, args[1], a+1, k)
	case bOK:
		if b <= 0 {
			return Fail
		}
		return unifyK(m, args[0], b-1, k)
	default:
		panic(instantiationError())
	}
}

func atomText(t term.Term) (string, bool) {
	switch t := term.Deref(t).(type) {
	case term.Atom:
		return string(t), true
	case term.Int:
		return strconv.FormatInt(int64(t), 10), true
	case term.Float:
		return term.Float(t).String(), true
	}
	return "", false
}

func biAtomCodes(m *Machine, args []term.Term, _ int, k Cont) Result {
	if s, ok := atomText(args[0]); ok {
		codes := make([]term.Term, 0, len(s))
		for _, r := range s {
			codes = append(codes, term.Int(r))
		}
		return unifyK(m, args[1], term.List(codes...), k)
	}
	elems, tail := term.ListSlice(args[1])
	if tail != term.NilAtom {
		panic(instantiationError())
	}
	var b strings.Builder
	for _, e := range elems {
		c, ok := term.Deref(e).(term.Int)
		if !ok {
			panic(typeError("integer", e))
		}
		b.WriteRune(rune(c))
	}
	return unifyK(m, args[0], term.Atom(b.String()), k)
}

func biAtomChars(m *Machine, args []term.Term, _ int, k Cont) Result {
	if s, ok := atomText(args[0]); ok {
		chars := make([]term.Term, 0, len(s))
		for _, r := range s {
			chars = append(chars, term.Atom(string(r)))
		}
		return unifyK(m, args[1], term.List(chars...), k)
	}
	elems, tail := term.ListSlice(args[1])
	if tail != term.NilAtom {
		panic(instantiationError())
	}
	var b strings.Builder
	for _, e := range elems {
		a, ok := term.Deref(e).(term.Atom)
		if !ok {
			panic(typeError("character", e))
		}
		b.WriteString(string(a))
	}
	return unifyK(m, args[0], term.Atom(b.String()), k)
}

func biAtomLength(m *Machine, args []term.Term, _ int, k Cont) Result {
	s, ok := atomText(args[0])
	if !ok {
		panic(typeError("atom", args[0]))
	}
	return unifyK(m, args[1], term.Int(len([]rune(s))), k)
}

func biAtomConcat(m *Machine, args []term.Term, _ int, k Cont) Result {
	a, aOK := atomText(args[0])
	b, bOK := atomText(args[1])
	if aOK && bOK {
		return unifyK(m, args[2], term.Atom(a+b), k)
	}
	whole, wOK := atomText(args[2])
	if !wOK {
		panic(instantiationError())
	}
	runes := []rune(whole)
	for i := 0; i <= len(runes); i++ {
		mark := m.Trail.Mark()
		if unify.Unify(args[0], term.Atom(string(runes[:i])), &m.Trail) &&
			unify.Unify(args[1], term.Atom(string(runes[i:])), &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
	}
	return Fail
}

func biCharCode(m *Machine, args []term.Term, _ int, k Cont) Result {
	if a, ok := term.Deref(args[0]).(term.Atom); ok {
		rs := []rune(string(a))
		if len(rs) != 1 {
			panic(typeError("character", args[0]))
		}
		return unifyK(m, args[1], term.Int(rs[0]), k)
	}
	if c, ok := term.Deref(args[1]).(term.Int); ok {
		return unifyK(m, args[0], term.Atom(string(rune(c))), k)
	}
	panic(instantiationError())
}

func biNumberCodes(m *Machine, args []term.Term, _ int, k Cont) Result {
	switch n := term.Deref(args[0]).(type) {
	case term.Int, term.Float:
		s := n.String()
		codes := make([]term.Term, 0, len(s))
		for _, r := range s {
			codes = append(codes, term.Int(r))
		}
		return unifyK(m, args[1], term.List(codes...), k)
	}
	elems, tail := term.ListSlice(args[1])
	if tail != term.NilAtom {
		panic(instantiationError())
	}
	var b strings.Builder
	for _, e := range elems {
		c, ok := term.Deref(e).(term.Int)
		if !ok {
			panic(typeError("integer", e))
		}
		b.WriteRune(rune(c))
	}
	n, err := parseNumber(b.String())
	if err != nil {
		panic(prologError{ball: term.New("error", term.New("syntax_error", term.Atom("number")), term.Atom(b.String()))})
	}
	return unifyK(m, args[0], n, k)
}

func biAtomNumber(m *Machine, args []term.Term, _ int, k Cont) Result {
	if a, ok := term.Deref(args[0]).(term.Atom); ok {
		n, err := parseNumber(string(a))
		if err != nil {
			return Fail
		}
		return unifyK(m, args[1], n, k)
	}
	switch n := term.Deref(args[1]).(type) {
	case term.Int, term.Float:
		return unifyK(m, args[0], term.Atom(n.String()), k)
	}
	panic(instantiationError())
}

func parseNumber(s string) (term.Term, error) {
	s = strings.TrimSpace(s)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return term.Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return term.Float(f), nil
	}
	return nil, fmt.Errorf("not a number: %q", s)
}

func biLength(m *Machine, args []term.Term, _ int, k Cont) Result {
	elems, tail := term.ListSlice(args[0])
	if tail == term.NilAtom {
		return unifyK(m, args[1], term.Int(len(elems)), k)
	}
	if _, isVar := tail.(*term.Var); !isVar {
		return Fail
	}
	// Partial list: if N is bound, extend to that length; else enumerate.
	if n, ok := term.Deref(args[1]).(term.Int); ok {
		need := int(n) - len(elems)
		if need < 0 {
			return Fail
		}
		fresh := make([]term.Term, need)
		for i := range fresh {
			fresh[i] = term.NewVar("_")
		}
		return unifyK(m, tail, term.List(fresh...), k)
	}
	// Unbounded enumeration, capped to keep runaway queries finite.
	const lengthEnumCap = 4096
	for extra := 0; extra <= lengthEnumCap; extra++ {
		mark := m.Trail.Mark()
		fresh := make([]term.Term, extra)
		for i := range fresh {
			fresh[i] = term.NewVar("_")
		}
		if unify.Unify(tail, term.List(fresh...), &m.Trail) &&
			unify.Unify(args[1], term.Int(len(elems)+extra), &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
	}
	panic(prologError{ball: term.New("resource_error", term.Atom("length_enumeration_cap"))})
}

func biMsort(m *Machine, args []term.Term, _ int, k Cont) Result {
	elems, tail := term.ListSlice(args[0])
	if tail != term.NilAtom {
		panic(typeError("list", args[0]))
	}
	sorted := make([]term.Term, len(elems))
	for i, e := range elems {
		sorted[i] = unify.Resolve(e)
	}
	term.SortTerms(sorted)
	return unifyK(m, args[1], term.List(sorted...), k)
}

func biSort(m *Machine, args []term.Term, _ int, k Cont) Result {
	elems, tail := term.ListSlice(args[0])
	if tail != term.NilAtom {
		panic(typeError("list", args[0]))
	}
	sorted := make([]term.Term, len(elems))
	for i, e := range elems {
		sorted[i] = unify.Resolve(e)
	}
	term.SortTerms(sorted)
	dedup := sorted[:0]
	for i, e := range sorted {
		if i == 0 || term.Compare(sorted[i-1], e) != 0 {
			dedup = append(dedup, e)
		}
	}
	return unifyK(m, args[1], term.List(dedup...), k)
}

func biFindall(m *Machine, args []term.Term, depth int, k Cont) Result {
	template, goal, out := args[0], args[1], args[2]
	var results []term.Term
	mark := m.Trail.Mark()
	r := m.solve(goal, depth+1, func() Result {
		results = append(results, term.Rename(unify.Resolve(template)))
		return Fail // keep enumerating
	})
	m.Trail.Undo(mark)
	if r == Stop {
		return Stop
	}
	return unifyK(m, out, term.List(results...), k)
}

func biAssertz(m *Machine, args []term.Term, _ int, k Cont) Result {
	if err := m.Assertz(unify.Resolve(args[0])); err != nil {
		panic(prologError{ball: term.New("error", term.Atom("assert_failed"), term.Atom(err.Error()))})
	}
	return k()
}

func biAsserta(m *Machine, args []term.Term, _ int, k Cont) Result {
	if err := m.Asserta(unify.Resolve(args[0])); err != nil {
		panic(prologError{ball: term.New("error", term.Atom("assert_failed"), term.Atom(err.Error()))})
	}
	return k()
}

func biRetract(m *Machine, args []term.Term, _ int, k Cont) Result {
	// Retract must unify the removed clause with the argument. Find,
	// unify, remove.
	head, body, err := splitClause(args[0])
	if err != nil {
		panic(typeError("clause", args[0]))
	}
	pi, err := IndicatorOf(head)
	if err != nil {
		panic(typeError("callable", head))
	}
	mod := m.Module(m.CurrentModule)
	m.mu.Lock()
	p := mod.Proc(pi, false)
	var snapshot []*Clause
	if p != nil {
		snapshot = append(snapshot, p.Clauses...)
	}
	m.mu.Unlock()
	for _, cl := range snapshot {
		mark := m.Trail.Mark()
		h, b := cl.Renamed()
		if unify.Unify(head, h, &m.Trail) && unify.Unify(body, b, &m.Trail) {
			m.mu.Lock()
			for i, cur := range p.Clauses {
				if cur == cl {
					p.Clauses = append(p.Clauses[:i:i], p.Clauses[i+1:]...)
					p.index = nil
					break
				}
			}
			m.mu.Unlock()
			if r := k(); r != Fail {
				return r
			}
			m.Trail.Undo(mark)
			return Fail // retract is semi-deterministic per removal
		}
		m.Trail.Undo(mark)
	}
	return Fail
}

func biClause(m *Machine, args []term.Term, _ int, k Cont) Result {
	pi, err := IndicatorOf(args[0])
	if err != nil {
		panic(typeError("callable", args[0]))
	}
	proc := m.lookupProc(pi)
	if proc == nil {
		return Fail
	}
	clauses, cerr := proc.candidates(term.Deref(args[0]))
	if cerr != nil {
		panic(prologError{ball: term.New("retrieval_error", term.Atom(pi.String()))})
	}
	for _, cl := range clauses {
		mark := m.Trail.Mark()
		h, b := cl.Renamed()
		if unify.Unify(args[0], h, &m.Trail) && unify.Unify(args[1], b, &m.Trail) {
			if r := k(); r != Fail {
				return r
			}
		}
		m.Trail.Undo(mark)
	}
	return Fail
}

func biWrite(m *Machine, args []term.Term, _ int, k Cont) Result {
	fmt.Fprint(m.Out, unify.Resolve(args[0]).String())
	return k()
}

func biWriteln(m *Machine, args []term.Term, _ int, k Cont) Result {
	fmt.Fprintln(m.Out, unify.Resolve(args[0]).String())
	return k()
}

func biNl(m *Machine, _ []term.Term, _ int, k Cont) Result {
	fmt.Fprintln(m.Out)
	return k()
}

func biTab(m *Machine, args []term.Term, _ int, k Cont) Result {
	n, ok := term.Deref(args[0]).(term.Int)
	if !ok {
		panic(typeError("integer", args[0]))
	}
	fmt.Fprint(m.Out, strings.Repeat(" ", int(n)))
	return k()
}

func biOp(m *Machine, args []term.Term, _ int, k Cont) Result {
	prio, ok := term.Deref(args[0]).(term.Int)
	if !ok {
		panic(typeError("integer", args[0]))
	}
	typ, ok := term.Deref(args[1]).(term.Atom)
	if !ok {
		panic(typeError("atom", args[1]))
	}
	var ot parse.OpType
	switch typ {
	case "xfx":
		ot = parse.XFX
	case "xfy":
		ot = parse.XFY
	case "yfx":
		ot = parse.YFX
	case "fy":
		ot = parse.FY
	case "fx":
		ot = parse.FX
	case "xf":
		ot = parse.XF
	case "yf":
		ot = parse.YF
	default:
		panic(domainError("operator_specifier", args[1]))
	}
	name, ok := term.Deref(args[2]).(term.Atom)
	if !ok {
		panic(typeError("atom", args[2]))
	}
	m.ops.Add(parse.Op{Priority: int(prio), Type: ot, Name: string(name)})
	return k()
}
