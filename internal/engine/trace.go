package engine

// Port tracing in the classic Byrd box model: CALL when a predicate is
// invoked, EXIT on each solution, REDO when backtracking asks it for more,
// FAIL when it runs out. Enabled by setting Machine.Trace to a writer (the
// trace/0 and notrace/0 built-ins toggle it onto Machine.Out).

import (
	"fmt"
	"io"

	"clare/internal/term"
	"clare/internal/unify"
)

// SetTrace directs port tracing to w (nil disables).
func (m *Machine) SetTrace(w io.Writer) { m.trace = w }

// traceGoal renders a goal for the trace with current bindings resolved.
func traceGoal(name string, args []term.Term) string {
	if len(args) == 0 {
		return name
	}
	return unify.Resolve(term.New(name, args...)).String()
}

func (m *Machine) tracef(port, goal string, depth int) {
	if m.trace == nil {
		return
	}
	fmt.Fprintf(m.trace, "%*s%s: %s\n", depth%40, "", port, goal)
}

// biTrace enables tracing to the machine's output stream.
func biTrace(m *Machine, _ []term.Term, _ int, k Cont) Result {
	m.trace = m.Out
	return k()
}

// biNotrace disables tracing.
func biNotrace(m *Machine, _ []term.Term, _ int, k Cont) Result {
	m.trace = nil
	return k()
}

// biListing prints the clauses of a predicate: listing(name) lists every
// arity, listing(name/arity) one procedure.
func biListing(m *Machine, args []term.Term, _ int, k Cont) Result {
	var name string
	arity := -1
	switch spec := term.Deref(args[0]).(type) {
	case term.Atom:
		name = string(spec)
	case *term.Compound:
		if spec.Functor != "/" || len(spec.Args) != 2 {
			panic(domainError("predicate_indicator", args[0]))
		}
		a, okA := term.Deref(spec.Args[0]).(term.Atom)
		n, okN := term.Deref(spec.Args[1]).(term.Int)
		if !okA || !okN {
			panic(domainError("predicate_indicator", args[0]))
		}
		name, arity = string(a), int(n)
	default:
		panic(domainError("predicate_indicator", args[0]))
	}

	m.mu.RLock()
	var clauses []*Clause
	for _, modName := range []string{m.CurrentModule, "user"} {
		mod, ok := m.modules[modName]
		if !ok {
			continue
		}
		for pi, p := range mod.procs {
			if pi.Name != name || (arity >= 0 && pi.Arity != arity) {
				continue
			}
			clauses = append(clauses, p.Clauses...)
		}
		if len(clauses) > 0 {
			break
		}
	}
	m.mu.RUnlock()

	for _, cl := range clauses {
		fmt.Fprintln(m.Out, cl.String())
	}
	return k()
}
