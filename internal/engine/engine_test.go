package engine

import (
	"strings"
	"testing"

	"clare/internal/parse"
	"clare/internal/term"
)

// newMachine returns a machine with output discarded.
func newMachine(t *testing.T) *Machine {
	t.Helper()
	m := New()
	m.Out = &strings.Builder{}
	return m
}

func consult(t *testing.T, m *Machine, src string) {
	t.Helper()
	if err := m.ConsultString(src); err != nil {
		t.Fatalf("consult: %v", err)
	}
}

// solutions runs a query and returns all its solutions (capped at 1000).
func solutions(t *testing.T, m *Machine, q string) []Solution {
	t.Helper()
	sols, err := m.Query(q, 1000)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return sols
}

func proves(t *testing.T, m *Machine, q string) bool {
	t.Helper()
	ok, err := m.ProveString(q)
	if err != nil {
		t.Fatalf("prove %q: %v", q, err)
	}
	return ok
}

func TestFactsAndRules(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		parent(tom, bob).
		parent(tom, liz).
		parent(bob, ann).
		parent(bob, pat).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	sols := solutions(t, m, "grandparent(tom, W)")
	if len(sols) != 2 {
		t.Fatalf("got %d solutions: %v", len(sols), sols)
	}
	if sols[0]["W"].String() != "ann" || sols[1]["W"].String() != "pat" {
		t.Errorf("solutions = %v", sols)
	}
}

func TestClauseOrderPreserved(t *testing.T) {
	// The paper stresses that user clause order is semantically
	// significant (§1). Solutions must come in clause order.
	m := newMachine(t)
	consult(t, m, "c(3). c(1). c(2).")
	sols := solutions(t, m, "c(X)")
	got := []string{sols[0]["X"].String(), sols[1]["X"].String(), sols[2]["X"].String()}
	if got[0] != "3" || got[1] != "1" || got[2] != "2" {
		t.Errorf("solution order = %v, want [3 1 2]", got)
	}
}

func TestBacktrackingUndoesBindings(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		p(1). p(2).
		q(2).
		r(X) :- p(X), q(X).
	`)
	sols := solutions(t, m, "r(X)")
	if len(sols) != 1 || sols[0]["X"].String() != "2" {
		t.Errorf("solutions = %v", sols)
	}
}

func TestCutCommitsToClause(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		first(X) :- member(X, [a,b,c]), !.
	`)
	sols := solutions(t, m, "first(X)")
	if len(sols) != 1 || sols[0]["X"].String() != "a" {
		t.Errorf("cut failed: %v", sols)
	}
}

func TestCutPrunesClauses(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
	`)
	sols := solutions(t, m, "max(3, 2, M)")
	if len(sols) != 1 || sols[0]["M"].String() != "3" {
		t.Errorf("max(3,2) = %v", sols)
	}
	sols = solutions(t, m, "max(2, 3, M)")
	if len(sols) != 1 || sols[0]["M"].String() != "3" {
		t.Errorf("max(2,3) = %v", sols)
	}
}

func TestCutLocalToCall(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "p(1). p(2).")
	// Cut inside call/1 must not prune p's alternatives.
	sols := solutions(t, m, "p(X), call((!, true))")
	if len(sols) != 2 {
		t.Errorf("cut leaked through call/1: %d solutions", len(sols))
	}
}

func TestIfThenElse(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		classify(X, neg) :- ( X < 0 -> true ; fail ).
		sign_of(X, S) :- ( X < 0 -> S = neg ; X =:= 0 -> S = zero ; S = pos ).
	`)
	for q, want := range map[string]string{
		"sign_of(-5, S)": "neg",
		"sign_of(0, S)":  "zero",
		"sign_of(7, S)":  "pos",
	} {
		sols := solutions(t, m, q)
		if len(sols) != 1 || sols[0]["S"].String() != want {
			t.Errorf("%s = %v, want %s", q, sols, want)
		}
	}
	// Condition commits to first solution.
	consult(t, m, "t(1). t(2).")
	sols := solutions(t, m, "( t(X) -> true ; true )")
	if len(sols) != 1 {
		t.Errorf("-> should commit to first condition solution, got %d", len(sols))
	}
}

func TestNegationAsFailure(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "p(1).")
	if !proves(t, m, "\\+ p(2)") {
		t.Error("\\+ p(2) should succeed")
	}
	if proves(t, m, "\\+ p(1)") {
		t.Error("\\+ p(1) should fail")
	}
}

func TestArithmetic(t *testing.T) {
	m := newMachine(t)
	cases := map[string]string{
		"X is 1 + 2":         "3",
		"X is 2 * 3 + 4":     "10",
		"X is 10 / 4":        "2.5",
		"X is 10 / 5":        "2",
		"X is 7 // 2":        "3",
		"X is 7 mod 3":       "1",
		"X is -7 mod 3":      "2",
		"X is -7 rem 3":      "-1",
		"X is 2 ** 10":       "1024.0",
		"X is 2 ^ 10":        "1024",
		"X is abs(-5)":       "5",
		"X is min(3, 8)":     "3",
		"X is max(3, 8)":     "8",
		"X is truncate(3.7)": "3",
		"X is 5 /\\ 3":       "1",
		"X is 5 \\/ 3":       "7",
		"X is 5 xor 3":       "6",
		"X is 1 << 4":        "16",
		"X is gcd(12, 18)":   "6",
	}
	for q, want := range cases {
		sols := solutions(t, m, q)
		if len(sols) != 1 || sols[0]["X"].String() != want {
			t.Errorf("%s = %v, want %s", q, sols, want)
		}
	}
}

func TestArithmeticComparisons(t *testing.T) {
	m := newMachine(t)
	for _, q := range []string{"1 < 2", "2 =< 2", "3 > 2", "3 >= 3", "1 =:= 1.0", "1 =\\= 2"} {
		if !proves(t, m, q) {
			t.Errorf("%s should succeed", q)
		}
	}
	for _, q := range []string{"2 < 1", "1 =:= 2"} {
		if proves(t, m, q) {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	m := newMachine(t)
	_, err := m.Query("X is 1 / 0", 1)
	if err == nil {
		t.Fatal("expected evaluation error")
	}
	if ball, ok := IsPrologError(err); !ok || !strings.Contains(ball.String(), "zero_divisor") {
		t.Errorf("error = %v", err)
	}
}

func TestTypeTests(t *testing.T) {
	m := newMachine(t)
	yes := []string{
		"var(_)", "nonvar(a)", "atom(foo)", "atom([])", "integer(3)",
		"float(3.5)", "number(3)", "number(3.5)", "atomic(a)", "atomic(3)",
		"compound(f(x))", "compound([a])", "callable(foo)", "callable(f(x))",
		"is_list([1,2])", "ground(f(a))",
	}
	for _, q := range yes {
		if !proves(t, m, q) {
			t.Errorf("%s should succeed", q)
		}
	}
	no := []string{
		"var(a)", "atom(3)", "atom(f(x))", "integer(3.5)", "compound(a)",
		"is_list([1|_])", "ground(f(_))",
	}
	for _, q := range no {
		if proves(t, m, q) {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestTermOrderBuiltins(t *testing.T) {
	m := newMachine(t)
	for _, q := range []string{
		"a == a", "a \\== b", "a @< b", "f(a) @> a", "1.5 @< 1",
		"compare(<, a, b)", "compare(=, f(X), f(X))",
	} {
		if !proves(t, m, q) {
			t.Errorf("%s should succeed", q)
		}
	}
}

func TestFunctorArgUniv(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "functor(f(a,b), N, A)")
	if len(sols) != 1 || sols[0]["N"].String() != "f" || sols[0]["A"].String() != "2" {
		t.Errorf("functor decompose = %v", sols)
	}
	sols = solutions(t, m, "functor(T, foo, 3)")
	if len(sols) != 1 || sols[0]["T"].Indicator() != "foo/3" {
		t.Errorf("functor construct = %v", sols)
	}
	sols = solutions(t, m, "arg(2, f(a,b,c), X)")
	if len(sols) != 1 || sols[0]["X"].String() != "b" {
		t.Errorf("arg = %v", sols)
	}
	sols = solutions(t, m, "f(a,b) =.. L")
	if len(sols) != 1 || sols[0]["L"].String() != "[f,a,b]" {
		t.Errorf("univ decompose = %v", sols)
	}
	sols = solutions(t, m, "T =.. [g, 1, 2]")
	if len(sols) != 1 || sols[0]["T"].String() != "g(1,2)" {
		t.Errorf("univ construct = %v", sols)
	}
}

func TestCopyTerm(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "copy_term(f(X, X, Y), C)")
	if len(sols) != 1 {
		t.Fatal("copy_term failed")
	}
	c := sols[0]["C"].(*term.Compound)
	if !term.Equal(c.Args[0], c.Args[1]) {
		t.Error("copy lost sharing")
	}
	if term.Equal(c.Args[0], c.Args[2]) {
		t.Error("distinct vars merged")
	}
}

func TestFindall(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "num(1). num(2). num(3).")
	sols := solutions(t, m, "findall(X, num(X), L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[1,2,3]" {
		t.Errorf("findall = %v", sols)
	}
	// Empty result.
	sols = solutions(t, m, "findall(X, (num(X), X > 10), L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[]" {
		t.Errorf("findall empty = %v", sols)
	}
	// Bindings inside goal do not leak.
	sols = solutions(t, m, "findall(Y, num(Y), _), Y = free")
	if len(sols) != 1 || sols[0]["Y"].String() != "free" {
		t.Errorf("findall leaked bindings: %v", sols)
	}
}

func TestBetween(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "between(1, 4, X)")
	if len(sols) != 4 {
		t.Errorf("between gave %d solutions", len(sols))
	}
	if !proves(t, m, "between(1, 10, 5)") {
		t.Error("between check failed")
	}
	if proves(t, m, "between(1, 10, 50)") {
		t.Error("between out of range succeeded")
	}
}

func TestAssertRetract(t *testing.T) {
	m := newMachine(t)
	if proves(t, m, "catch(dyn(_), _, fail)") {
		t.Error("dyn should be undefined initially")
	}
	if !proves(t, m, "assertz(dyn(1)), assertz(dyn(2)), asserta(dyn(0))") {
		t.Fatal("assert failed")
	}
	sols := solutions(t, m, "dyn(X)")
	got := make([]string, len(sols))
	for i, s := range sols {
		got[i] = s["X"].String()
	}
	if strings.Join(got, ",") != "0,1,2" {
		t.Errorf("dyn order = %v, want 0,1,2", got)
	}
	if !proves(t, m, "retract(dyn(1))") {
		t.Fatal("retract failed")
	}
	sols = solutions(t, m, "dyn(X)")
	if len(sols) != 2 {
		t.Errorf("after retract: %v", sols)
	}
	// Assert a rule.
	if !proves(t, m, "assertz((even(X) :- 0 is X mod 2))") {
		t.Fatal("assert rule failed")
	}
	if !proves(t, m, "even(4)") || proves(t, m, "even(3)") {
		t.Error("asserted rule misbehaves")
	}
}

func TestClauseBuiltin(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "p(1). p(X) :- q(X).")
	sols := solutions(t, m, "clause(p(Y), B)")
	if len(sols) != 2 {
		t.Fatalf("clause/2 gave %d solutions", len(sols))
	}
	if sols[0]["B"].String() != "true" {
		t.Errorf("first body = %v", sols[0]["B"])
	}
	if sols[1]["B"].Indicator() != "q/1" {
		t.Errorf("second body = %v", sols[1]["B"])
	}
}

func TestCatchThrow(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "catch(throw(my_ball), B, true)")
	if len(sols) != 1 || sols[0]["B"].String() != "my_ball" {
		t.Errorf("catch = %v", sols)
	}
	// Uncaught: different catcher rethrows.
	_, err := m.Query("catch(throw(a), b, true)", 1)
	if err == nil {
		t.Error("mismatched catcher should rethrow")
	}
	// Undefined procedure raises existence_error, catchable.
	if !proves(t, m, "catch(undefined_pred_xyz, error(existence_error(_, _), _), true)") {
		t.Error("existence error not catchable")
	}
}

func TestHalt(t *testing.T) {
	m := newMachine(t)
	_, err := m.Query("halt(3)", 1)
	if err != ErrHalt {
		t.Fatalf("err = %v, want ErrHalt", err)
	}
	halted, code := m.Halted()
	if !halted || code != 3 {
		t.Errorf("Halted = %v, %d", halted, code)
	}
}

func TestAtomBuiltins(t *testing.T) {
	m := newMachine(t)
	cases := map[string]string{
		"atom_codes(abc, L)":       "[97,98,99]",
		"atom_codes(A, [104,105])": "",
		"atom_chars(abc, L)":       "[a,b,c]",
		"atom_length(hello, L)":    "5",
		"atom_concat(foo, bar, A)": "",
		"char_code(a, C)":          "97",
		"number_codes(42, L)":      "[52,50]",
		"atom_number('17', N)":     "17",
		"atom_number('3.5', N)":    "3.5",
	}
	for q := range cases {
		if !proves(t, m, q) {
			t.Errorf("%s should succeed", q)
		}
	}
	sols := solutions(t, m, "atom_concat(foo, bar, A)")
	if sols[0]["A"].String() != "foobar" {
		t.Errorf("atom_concat = %v", sols)
	}
	// Decomposition mode enumerates splits.
	sols = solutions(t, m, "atom_concat(X, Y, ab)")
	if len(sols) != 3 {
		t.Errorf("atom_concat splits = %d, want 3", len(sols))
	}
}

func TestListBuiltins(t *testing.T) {
	m := newMachine(t)
	cases := map[string]string{
		"length([a,b,c], N)":   "N = 3",
		"length(L, 2)":         "",
		"msort([c,a,b,a], L)":  "L = [a,a,b,c]",
		"sort([c,a,b,a], L)":   "L = [a,b,c]",
		"append([1,2],[3],L)":  "L = [1,2,3]",
		"reverse([1,2,3], R)":  "R = [3,2,1]",
		"nth0(1, [a,b,c], E)":  "E = b",
		"nth1(1, [a,b,c], E)":  "E = a",
		"last([1,2,3], X)":     "X = 3",
		"sum_list([1,2,3], S)": "S = 6",
		"max_list([3,9,2], M)": "M = 9",
		"min_list([3,9,2], M)": "M = 2",
		"numlist(1, 4, L)":     "L = [1,2,3,4]",
	}
	for q, want := range cases {
		sols := solutions(t, m, q)
		if len(sols) == 0 {
			t.Errorf("%s failed", q)
			continue
		}
		if want != "" && sols[0].String() != want {
			t.Errorf("%s = %v, want %s", q, sols[0], want)
		}
	}
	// append in generative mode.
	sols := solutions(t, m, "append(X, Y, [1,2])")
	if len(sols) != 3 {
		t.Errorf("append generative = %d solutions, want 3", len(sols))
	}
	// member enumeration.
	sols = solutions(t, m, "member(X, [a,b])")
	if len(sols) != 2 {
		t.Errorf("member = %d solutions", len(sols))
	}
}

func TestForallOnceIgnore(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "n(1). n(2). n(3).")
	if !proves(t, m, "forall(n(X), X > 0)") {
		t.Error("forall should succeed")
	}
	if proves(t, m, "forall(n(X), X > 1)") {
		t.Error("forall should fail (n(1) violates)")
	}
	sols := solutions(t, m, "once(n(X))")
	if len(sols) != 1 || sols[0]["X"].String() != "1" {
		t.Errorf("once = %v", sols)
	}
	if !proves(t, m, "ignore(fail)") {
		t.Error("ignore(fail) should succeed")
	}
}

func TestModuleDirective(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		:- module(zoo).
		animal(lion).
	`)
	if m.CurrentModule != "zoo" {
		t.Fatalf("CurrentModule = %s", m.CurrentModule)
	}
	if !proves(t, m, "animal(lion)") {
		t.Error("predicate in current module not found")
	}
	// Fall back to user for library predicates.
	if !proves(t, m, "append([a],[b],[a,b])") {
		t.Error("user-module library not visible from zoo")
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "loop :- loop.")
	_, err := m.Query("loop", 1)
	if err == nil {
		t.Fatal("infinite recursion should error, not hang or crash")
	}
}

func TestWriteOutput(t *testing.T) {
	m := New()
	var buf strings.Builder
	m.Out = &buf
	if ok, err := m.ProveString("write(f(a,1)), nl, writeln(done)"); err != nil || !ok {
		t.Fatalf("write query: %v %v", ok, err)
	}
	if got := buf.String(); got != "f(a,1)\ndone\n" {
		t.Errorf("output = %q", got)
	}
}

func TestOpDirective(t *testing.T) {
	m := newMachine(t)
	consult(t, m, ":- op(700, xfx, ===).")
	consult(t, m, "eq(X === Y) :- X = Y.")
	if !proves(t, m, "eq(a === a)") {
		t.Error("custom operator clause failed")
	}
}

func TestQueryMaxSolutions(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "b(1). b(2). b(3). b(4).")
	sols, err := m.Query("b(X)", 2)
	if err != nil || len(sols) != 2 {
		t.Errorf("Query max=2 gave %d, err %v", len(sols), err)
	}
}

func TestSolveBindingsUndoneAfter(t *testing.T) {
	m := newMachine(t)
	goal := parse.MustTerm("X = 1")
	x := goal.(*term.Compound).Args[0]
	err := m.Solve(goal, func() bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if _, unbound := term.Deref(x).(*term.Var); !unbound {
		t.Error("Solve leaked bindings after return")
	}
}

func TestCallWithExtraArgs(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "add(X, Y, Z) :- Z is X + Y.")
	sols := solutions(t, m, "call(add(1), 2, Z)")
	if len(sols) != 1 || sols[0]["Z"].String() != "3" {
		t.Errorf("call/3 = %v", sols)
	}
}

func TestMaplist(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "double(X, Y) :- Y is 2 * X.")
	sols := solutions(t, m, "maplist(double, [1,2,3], L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[2,4,6]" {
		t.Errorf("maplist = %v", sols)
	}
}

func TestSetofSimple(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "c(3). c(1). c(3). c(2).")
	sols := solutions(t, m, "setof_simple(X, c(X), L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[1,2,3]" {
		t.Errorf("setof_simple = %v", sols)
	}
}

func TestEvalAPI(t *testing.T) {
	n, err := Eval(parse.MustTerm("3 * 7"))
	if err != nil || n.IsFloat || n.I != 21 {
		t.Errorf("Eval = %+v, %v", n, err)
	}
	if _, err := Eval(parse.MustTerm("foo + 1")); err == nil {
		t.Error("Eval of non-evaluable should error")
	}
}

func TestNestedControl(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		fizzbuzz(N, fizzbuzz) :- 0 is N mod 15, !.
		fizzbuzz(N, fizz) :- 0 is N mod 3, !.
		fizzbuzz(N, buzz) :- 0 is N mod 5, !.
		fizzbuzz(N, N).
	`)
	for n, want := range map[string]string{"15": "fizzbuzz", "9": "fizz", "10": "buzz", "7": "7"} {
		sols := solutions(t, m, "fizzbuzz("+n+", R)")
		if len(sols) != 1 || sols[0]["R"].String() != want {
			t.Errorf("fizzbuzz(%s) = %v, want %s", n, sols, want)
		}
	}
}

func TestNaiveReverseBenchmarkProgram(t *testing.T) {
	// The classic LIPS benchmark program runs correctly.
	m := newMachine(t)
	consult(t, m, `
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
	`)
	sols := solutions(t, m, "nrev([1,2,3,4,5], R)")
	if len(sols) != 1 || sols[0]["R"].String() != "[5,4,3,2,1]" {
		t.Errorf("nrev = %v", sols)
	}
}
