package engine

import (
	"os"
	"testing"
)

func TestDCGBasicGrammar(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		greeting --> [hello], name.
		name --> [world].
		name --> [prolog].
	`)
	if !proves(t, m, "phrase(greeting, [hello, world])") {
		t.Error("greeting should parse [hello, world]")
	}
	if !proves(t, m, "phrase(greeting, [hello, prolog])") {
		t.Error("greeting should parse [hello, prolog]")
	}
	if proves(t, m, "phrase(greeting, [hello])") {
		t.Error("incomplete input should fail")
	}
	if proves(t, m, "phrase(greeting, [goodbye, world])") {
		t.Error("wrong terminal should fail")
	}
}

func TestDCGNonterminalArguments(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		digits([D|T]) --> digit(D), digits(T).
		digits([D]) --> digit(D).
		digit(D) --> [D], { integer(D) }.
	`)
	sols := solutions(t, m, "phrase(digits(L), [1,2,3])")
	if len(sols) != 1 || sols[0]["L"].String() != "[1,2,3]" {
		t.Errorf("digits = %v", sols)
	}
}

func TestDCGPhrase3Rest(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `ab --> [a], [b].`)
	sols := solutions(t, m, "phrase(ab, [a,b,c,d], Rest)")
	if len(sols) != 1 || sols[0]["Rest"].String() != "[c,d]" {
		t.Errorf("Rest = %v", sols)
	}
}

func TestDCGDisjunctionAndCurly(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		sign(pos) --> [+].
		sign(neg) --> [-].
		num(N) --> ( sign(pos) ; sign(neg) ), [D], { N is D }.
	`)
	sols := solutions(t, m, "phrase(num(N), [+, 7])")
	if len(sols) != 1 || sols[0]["N"].String() != "7" {
		t.Errorf("num = %v", sols)
	}
	if !proves(t, m, "phrase(num(_), [-, 3])") {
		t.Error("negative sign branch failed")
	}
}

func TestDCGEmptyProduction(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		opt_ws --> [ws], opt_ws.
		opt_ws --> [].
	`)
	for _, input := range []string{"[]", "[ws]", "[ws, ws, ws]"} {
		if !proves(t, m, "phrase(opt_ws, "+input+")") {
			t.Errorf("opt_ws should accept %s", input)
		}
	}
}

func TestDCGGeneration(t *testing.T) {
	m := newMachine(t)
	consult(t, m, `
		greeting --> [hello], name.
		name --> [world].
		name --> [prolog].
	`)
	sols := solutions(t, m, "phrase(greeting, L)")
	if len(sols) != 2 {
		t.Fatalf("generation gave %d solutions", len(sols))
	}
	if sols[0]["L"].String() != "[hello,world]" {
		t.Errorf("first generated = %v", sols[0]["L"])
	}
}

func TestStatisticsInferences(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "p(1). p(2). p(3).")
	sols := solutions(t, m, "statistics(inferences, N)")
	if len(sols) != 1 {
		t.Fatal("statistics failed")
	}
	before := sols[0]["N"].String()
	solutions(t, m, "findall(X, p(X), _)")
	sols = solutions(t, m, "statistics(inferences, N)")
	if sols[0]["N"].String() == before {
		t.Error("inference counter should advance")
	}
	if !proves(t, m, "statistics(clauses, C), C > 0") {
		t.Error("clause count should be positive")
	}
}

func TestSubAtom(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "sub_atom(hello, 1, 3, A, S)")
	if len(sols) != 1 || sols[0]["S"].String() != "ell" || sols[0]["A"].String() != "1" {
		t.Errorf("sub_atom = %v", sols)
	}
	// Ground sub-atom: find occurrences.
	sols = solutions(t, m, "sub_atom(banana, B, _, _, an)")
	if len(sols) != 2 {
		t.Fatalf("an occurrences = %d, want 2", len(sols))
	}
	if sols[0]["B"].String() != "1" || sols[1]["B"].String() != "3" {
		t.Errorf("positions = %v", sols)
	}
	// Full enumeration count: (n+1)(n+2)/2 substrings for n=2 → 6.
	sols = solutions(t, m, "sub_atom(ab, _, _, _, S)")
	if len(sols) != 6 {
		t.Errorf("ab substrings = %d, want 6", len(sols))
	}
}

func TestTermToAtom(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "term_to_atom(f(X, [1,2]), A)")
	if len(sols) != 1 || sols[0]["A"].String() != "'f(X,[1,2])'" {
		t.Errorf("term_to_atom = %v", sols)
	}
	sols = solutions(t, m, "term_to_atom(T, 'g(a, B)')")
	if len(sols) != 1 || sols[0]["T"].Indicator() != "g/2" {
		t.Errorf("reverse term_to_atom = %v", sols)
	}
}

func TestKeysort(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "keysort([b-2, a-1, c-3, a-0], L)")
	// Canonical printing is functional; the order is what matters: stable
	// by key.
	if len(sols) != 1 || sols[0]["L"].String() != "[-(a,1),-(a,0),-(b,2),-(c,3)]" {
		t.Errorf("keysort = %v", sols)
	}
}

func TestBagofSetof(t *testing.T) {
	m := newMachine(t)
	consult(t, m, "age(tom, 30). age(ann, 25). age(bob, 30).")
	sols := solutions(t, m, "bagof(P, A^age(P, A), L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[tom,ann,bob]" {
		t.Errorf("bagof = %v", sols)
	}
	sols = solutions(t, m, "setof(A, P^age(P, A), L)")
	if len(sols) != 1 || sols[0]["L"].String() != "[25,30]" {
		t.Errorf("setof = %v", sols)
	}
	// Empty: bagof/setof fail where findall gives [].
	if proves(t, m, "bagof(X, age(X, 99), _)") {
		t.Error("bagof on empty solution set should fail")
	}
	if !proves(t, m, "findall(X, age(X, 99), [])") {
		t.Error("findall on empty solution set should give []")
	}
}

func TestNumberChars(t *testing.T) {
	m := newMachine(t)
	sols := solutions(t, m, "number_chars(42, L)")
	// The character atoms quote when printed ('4' would read as a number).
	if len(sols) != 1 || sols[0]["L"].String() != "['4','2']" {
		t.Errorf("number_chars = %v", sols)
	}
	sols = solutions(t, m, "number_chars(N, ['3', '.', '5'])")
	if len(sols) != 1 || sols[0]["N"].String() != "3.5" {
		t.Errorf("number_chars reverse = %v", sols)
	}
}

func TestConsultBuiltin(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/facts.pl"
	if err := os.WriteFile(path, []byte("fact_from_file(42).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if !proves(t, m, "consult('"+path+"')") {
		t.Fatal("consult/1 failed")
	}
	if !proves(t, m, "fact_from_file(42)") {
		t.Error("consulted fact not visible")
	}
	// Missing file raises a catchable existence error.
	if !proves(t, m, "catch(consult('/nonexistent/file.pl'), error(existence_error(_,_),_), true)") {
		t.Error("missing file should raise existence_error")
	}
}
