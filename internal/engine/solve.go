package engine

import (
	"errors"
	"fmt"

	"clare/internal/term"
	"clare/internal/unify"
)

// Result is the outcome of exploring a proof branch.
type Result uint8

const (
	// Fail: this branch is exhausted; the caller should try alternatives.
	Fail Result = iota
	// Stop: the solution consumer asked to end the whole search.
	Stop
	// Cut: a cut was backtracked into; alternatives up to the enclosing
	// predicate-call barrier must be discarded.
	Cut
)

// Cont is a success continuation. It returns Stop to end the search or
// Fail to request more solutions (backtracking).
type Cont func() Result

// prologError carries a thrown Prolog term through Go panics so catch/3 can
// intercept it.
type prologError struct{ ball term.Term }

func (e prologError) Error() string { return "uncaught exception: " + e.ball.String() }

// ErrHalt is returned from Solve when halt/0 or halt/1 executes.
var ErrHalt = errors.New("engine: halted")

type haltSignal struct{ code int }

// Solve proves goal, invoking onSolution for every solution found (with
// bindings live in the trail). The search ends when onSolution returns
// true, when alternatives are exhausted, or on error. Bindings are undone
// before Solve returns.
func (m *Machine) Solve(goal term.Term, onSolution func() (stop bool)) (err error) {
	mark := m.Trail.Mark()
	defer m.Trail.Undo(mark)
	defer func() {
		if r := recover(); r != nil {
			switch sig := r.(type) {
			case prologError:
				err = sig
			case haltSignal:
				m.halted, m.haltCode = true, sig.code
				err = ErrHalt
			default:
				panic(r)
			}
		}
	}()
	k := func() Result {
		if onSolution() {
			return Stop
		}
		return Fail
	}
	r := m.solve(goal, 0, k)
	if r == Cut {
		// A cut with no enclosing call barrier: treated as a plain
		// failure of the top-level goal, matching call/1 semantics.
		r = Fail
	}
	_ = r
	return nil
}

// maxDepth caps recursion to turn runaway programs into errors instead of
// stack exhaustion. The CPS solver burns a few Go frames per Prolog call,
// so this must stay comfortably below the Go stack ceiling.
const maxDepth = 250_000

// solve explores goal depth-first. depth counts call-frame nesting.
func (m *Machine) solve(goal term.Term, depth int, k Cont) Result {
	if depth > maxDepth {
		panic(prologError{ball: term.New("resource_error", term.Atom("depth_limit_exceeded"))})
	}
	goal = term.Deref(goal)

	switch g := goal.(type) {
	case *term.Var:
		panic(instantiationError())
	case term.Int, term.Float:
		panic(typeError("callable", goal))
	case term.Atom:
		return m.call(string(g), nil, depth, k)
	case *term.Compound:
		switch g.Functor {
		case ",":
			if len(g.Args) == 2 {
				return m.solve(g.Args[0], depth, func() Result {
					return m.solve(g.Args[1], depth, k)
				})
			}
		case ";":
			if len(g.Args) == 2 {
				return m.solveDisjunction(g, depth, k)
			}
		case "->":
			if len(g.Args) == 2 {
				// Bare if-then: (C -> T) ≡ (C -> T ; fail).
				return m.solveIfThenElse(g.Args[0], g.Args[1], term.Atom("fail"), depth, k)
			}
		case "\\+":
			if len(g.Args) == 1 {
				return m.solveNegation(g.Args[0], depth, k)
			}
		}
		return m.call(g.Functor, g.Args, depth, k)
	}
	panic(typeError("callable", goal))
}

func (m *Machine) solveDisjunction(g *term.Compound, depth int, k Cont) Result {
	// (C -> T ; E)
	if ite, ok := term.Deref(g.Args[0]).(*term.Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
		return m.solveIfThenElse(ite.Args[0], ite.Args[1], g.Args[1], depth, k)
	}
	mark := m.Trail.Mark()
	if r := m.solve(g.Args[0], depth, k); r != Fail {
		return r
	}
	m.Trail.Undo(mark)
	return m.solve(g.Args[1], depth, k)
}

func (m *Machine) solveIfThenElse(cond, then, els term.Term, depth int, k Cont) Result {
	mark := m.Trail.Mark()
	condMet := false
	// The condition is opaque to cut and committed to its first solution.
	r := m.solve(cond, depth+1, func() Result {
		condMet = true
		return Stop
	})
	if r == Stop && !condMet {
		return Stop // consumer stop propagated from within cond — cannot happen with our cont, kept for safety
	}
	if condMet {
		return m.solve(then, depth, k)
	}
	m.Trail.Undo(mark)
	return m.solve(els, depth, k)
}

func (m *Machine) solveNegation(goal term.Term, depth int, k Cont) Result {
	mark := m.Trail.Mark()
	proved := false
	m.solve(goal, depth+1, func() Result {
		proved = true
		return Stop
	})
	m.Trail.Undo(mark)
	if proved {
		return Fail
	}
	return k()
}

// call dispatches a predicate call: builtin or user-defined.
func (m *Machine) call(name string, args []term.Term, depth int, k Cont) Result {
	m.inferences++
	pi := Indicator{Name: name, Arity: len(args)}

	if m.trace != nil && name != "trace" && name != "notrace" {
		goal := traceGoal(name, args)
		m.tracef("CALL", goal, depth)
		inner := k
		k = func() Result {
			m.tracef("EXIT", traceGoal(name, args), depth)
			r := inner()
			if r == Fail {
				m.tracef("REDO", goal, depth)
			}
			return r
		}
	}

	if bi, ok := m.builtins[pi]; ok {
		r := bi(m, args, depth, k)
		if r == Fail && m.trace != nil {
			m.tracef("FAIL", traceGoal(name, args), depth)
		}
		return r
	}

	proc := m.lookupProc(pi)
	if proc == nil {
		panic(existenceError("procedure", term.Atom(pi.String())))
	}

	goal := term.New(name, args...)
	clauses, err := proc.candidatesIndexed(goal)
	if err != nil {
		panic(prologError{ball: term.New("retrieval_error", term.Atom(pi.String()), term.Atom(err.Error()))})
	}

	for _, cl := range clauses {
		mark := m.Trail.Mark()
		head, body := cl.Renamed()
		if !unify.Unify(goal, head, &m.Trail) {
			m.Trail.Undo(mark)
			continue
		}
		r := m.solve(body, depth+1, k)
		switch r {
		case Stop:
			return Stop
		case Cut:
			// The clause body cut away the remaining clauses.
			m.Trail.Undo(mark)
			if m.trace != nil {
				m.tracef("FAIL", traceGoal(name, args), depth)
			}
			return Fail
		}
		m.Trail.Undo(mark)
	}
	if m.trace != nil {
		m.tracef("FAIL", traceGoal(name, args), depth)
	}
	return Fail
}

// Errors in ISO style (simplified: error(Kind, Culprit)).

func instantiationError() prologError {
	return prologError{ball: term.New("error", term.Atom("instantiation_error"), term.Atom("?"))}
}

func typeError(expected string, culprit term.Term) prologError {
	return prologError{ball: term.New("error",
		term.New("type_error", term.Atom(expected), unify.Resolve(culprit)),
		term.Atom("?"))}
}

func existenceError(kind string, what term.Term) prologError {
	return prologError{ball: term.New("error",
		term.New("existence_error", term.Atom(kind), what),
		term.Atom("?"))}
}

func domainError(domain string, culprit term.Term) prologError {
	return prologError{ball: term.New("error",
		term.New("domain_error", term.Atom(domain), unify.Resolve(culprit)),
		term.Atom("?"))}
}

func evaluationError(what string) prologError {
	return prologError{ball: term.New("error",
		term.New("evaluation_error", term.Atom(what)),
		term.Atom("?"))}
}

// Throw raises a Prolog exception carrying ball.
func Throw(ball term.Term) {
	panic(prologError{ball: unify.Resolve(ball)})
}

// IsPrologError reports whether err is a Prolog exception and returns the
// thrown term.
func IsPrologError(err error) (term.Term, bool) {
	var pe prologError
	if errors.As(err, &pe) {
		return pe.ball, true
	}
	return nil, false
}

var _ = fmt.Sprintf // keep fmt import if error helpers change
