package engine

// Additional built-ins: atom inspection (sub_atom/5), term/atom
// conversion, key sorting, all-solutions with ^/2 witnesses, and
// statistics.

import (
	"os"
	"sort"
	"strings"

	"clare/internal/parse"
	"clare/internal/term"
	"clare/internal/unify"
)

func (m *Machine) registerExtraBuiltins() {
	reg := func(name string, arity int, fn Builtin) {
		m.builtins[Indicator{Name: name, Arity: arity}] = fn
	}
	reg("sub_atom", 5, biSubAtom)
	reg("consult", 1, biConsult)
	reg("trace", 0, biTrace)
	reg("notrace", 0, biNotrace)
	reg("listing", 1, biListing)
	reg("number_chars", 2, biNumberChars)
	reg("term_to_atom", 2, biTermToAtom)
	reg("keysort", 2, biKeysort)
	reg("bagof", 3, biBagof)
	reg("setof", 3, biSetof)
	reg("statistics", 2, biStatistics)
	reg("phrase", 2, biPhrase)
	reg("phrase", 3, biPhrase)
	reg("succ_or_zero", 1, func(m *Machine, args []term.Term, _ int, k Cont) Result {
		if n, ok := term.Deref(args[0]).(term.Int); ok && n >= 0 {
			return k()
		}
		return Fail
	})
}

// biConsult loads a Prolog source file into the machine.
func biConsult(m *Machine, args []term.Term, _ int, k Cont) Result {
	file, ok := term.Deref(args[0]).(term.Atom)
	if !ok {
		panic(typeError("atom", args[0]))
	}
	src, err := os.ReadFile(string(file))
	if err != nil {
		panic(existenceError("source_file", file))
	}
	if err := m.ConsultString(string(src)); err != nil {
		panic(prologError{ball: term.New("error",
			term.New("consult_error", file), term.Atom(err.Error()))})
	}
	return k()
}

// biSubAtom enumerates sub-atoms: sub_atom(Atom, Before, Length, After,
// SubAtom).
func biSubAtom(m *Machine, args []term.Term, _ int, k Cont) Result {
	whole, ok := term.Deref(args[0]).(term.Atom)
	if !ok {
		panic(typeError("atom", args[0]))
	}
	runes := []rune(string(whole))
	n := len(runes)
	// If SubAtom is ground, enumerate its occurrences directly.
	if sub, ok := term.Deref(args[4]).(term.Atom); ok {
		s := string(sub)
		sl := len([]rune(s))
		for b := 0; b+sl <= n; b++ {
			if string(runes[b:b+sl]) != s {
				continue
			}
			mark := m.Trail.Mark()
			if unify.Unify(args[1], term.Int(b), &m.Trail) &&
				unify.Unify(args[2], term.Int(sl), &m.Trail) &&
				unify.Unify(args[3], term.Int(n-b-sl), &m.Trail) {
				if r := k(); r != Fail {
					return r
				}
			}
			m.Trail.Undo(mark)
		}
		return Fail
	}
	for b := 0; b <= n; b++ {
		for l := 0; b+l <= n; l++ {
			mark := m.Trail.Mark()
			if unify.Unify(args[1], term.Int(b), &m.Trail) &&
				unify.Unify(args[2], term.Int(l), &m.Trail) &&
				unify.Unify(args[3], term.Int(n-b-l), &m.Trail) &&
				unify.Unify(args[4], term.Atom(string(runes[b:b+l])), &m.Trail) {
				if r := k(); r != Fail {
					return r
				}
			}
			m.Trail.Undo(mark)
		}
	}
	return Fail
}

func biNumberChars(m *Machine, args []term.Term, _ int, k Cont) Result {
	switch v := term.Deref(args[0]).(type) {
	case term.Int, term.Float:
		s := v.String()
		chars := make([]term.Term, 0, len(s))
		for _, r := range s {
			chars = append(chars, term.Atom(string(r)))
		}
		return unifyK(m, args[1], term.List(chars...), k)
	}
	elems, tail := term.ListSlice(args[1])
	if !term.Equal(tail, term.NilAtom) {
		panic(instantiationError())
	}
	var b strings.Builder
	for _, e := range elems {
		a, ok := term.Deref(e).(term.Atom)
		if !ok {
			panic(typeError("character", e))
		}
		b.WriteString(string(a))
	}
	v, err := parseNumber(b.String())
	if err != nil {
		panic(prologError{ball: term.New("error", term.New("syntax_error", term.Atom("number")), term.Atom(b.String()))})
	}
	return unifyK(m, args[0], v, k)
}

// biTermToAtom converts between a term and its canonical source text.
func biTermToAtom(m *Machine, args []term.Term, _ int, k Cont) Result {
	t := term.Deref(args[0])
	if _, isVar := t.(*term.Var); !isVar {
		return unifyK(m, args[1], term.Atom(unify.Resolve(t).String()), k)
	}
	a, ok := term.Deref(args[1]).(term.Atom)
	if !ok {
		panic(instantiationError())
	}
	p, err := parse.NewWithOps(string(a)+" .", m.ops)
	if err != nil {
		panic(prologError{ball: term.New("error", term.New("syntax_error", term.Atom("term")), a)})
	}
	parsed, err := p.ReadTerm()
	if err != nil {
		panic(prologError{ball: term.New("error", term.New("syntax_error", term.Atom("term")), a)})
	}
	return unifyK(m, args[0], parsed, k)
}

// biKeysort sorts a list of Key-Value pairs by key, stably.
func biKeysort(m *Machine, args []term.Term, _ int, k Cont) Result {
	elems, tail := term.ListSlice(args[0])
	if !term.Equal(tail, term.NilAtom) {
		panic(typeError("list", args[0]))
	}
	pairs := make([]term.Term, len(elems))
	for i, e := range elems {
		c, ok := term.Deref(e).(*term.Compound)
		if !ok || c.Functor != "-" || len(c.Args) != 2 {
			panic(typeError("pair", e))
		}
		pairs[i] = unify.Resolve(e)
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		ci := pairs[i].(*term.Compound)
		cj := pairs[j].(*term.Compound)
		return term.Compare(ci.Args[0], cj.Args[0]) < 0
	})
	return unifyK(m, args[1], term.List(pairs...), k)
}

// stripCarets removes V^Goal witness prefixes (bagof/setof).
func stripCarets(goal term.Term) term.Term {
	for {
		c, ok := term.Deref(goal).(*term.Compound)
		if !ok || c.Functor != "^" || len(c.Args) != 2 {
			return goal
		}
		goal = c.Args[1]
	}
}

// biBagof is a practical bagof/3: ^/2 witnesses are stripped (treated as
// existentially quantified), solutions collected in order, failure on an
// empty bag. Grouping by free variables is not performed (documented
// simplification).
func biBagof(m *Machine, args []term.Term, depth int, k Cont) Result {
	goal := stripCarets(args[1])
	var results []term.Term
	mark := m.Trail.Mark()
	r := m.solve(goal, depth+1, func() Result {
		results = append(results, term.Rename(unify.Resolve(args[0])))
		return Fail
	})
	m.Trail.Undo(mark)
	if r == Stop {
		return Stop
	}
	if len(results) == 0 {
		return Fail
	}
	return unifyK(m, args[2], term.List(results...), k)
}

// biSetof is bagof + sort with duplicate removal.
func biSetof(m *Machine, args []term.Term, depth int, k Cont) Result {
	goal := stripCarets(args[1])
	var results []term.Term
	mark := m.Trail.Mark()
	r := m.solve(goal, depth+1, func() Result {
		results = append(results, term.Rename(unify.Resolve(args[0])))
		return Fail
	})
	m.Trail.Undo(mark)
	if r == Stop {
		return Stop
	}
	if len(results) == 0 {
		return Fail
	}
	term.SortTerms(results)
	dedup := results[:0]
	for i, e := range results {
		if i == 0 || term.Compare(results[i-1], e) != 0 {
			dedup = append(dedup, e)
		}
	}
	return unifyK(m, args[2], term.List(dedup...), k)
}

// biStatistics reports engine counters: statistics(inferences, N) and
// statistics(clauses, N).
func biStatistics(m *Machine, args []term.Term, _ int, k Cont) Result {
	key, ok := term.Deref(args[0]).(term.Atom)
	if !ok {
		panic(typeError("atom", args[0]))
	}
	var v term.Term
	switch key {
	case "inferences":
		v = term.Int(m.inferences)
	case "clauses":
		n := 0
		m.mu.RLock()
		for _, mod := range m.modules {
			for _, p := range mod.procs {
				n += len(p.Clauses)
			}
		}
		m.mu.RUnlock()
		v = term.Int(int64(n))
	default:
		panic(domainError("statistics_key", args[0]))
	}
	return unifyK(m, args[1], v, k)
}
