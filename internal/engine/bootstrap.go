package engine

// bootstrapLibrary is the Prolog-source part of the system library,
// consulted into module "user" at machine start. Keeping list utilities in
// Prolog keeps the Go core small and exercises the solver itself.
const bootstrapLibrary = `
% --- list utilities -------------------------------------------------------

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

nth0(I, L, E) :- nth_(L, 0, I, E).
nth1(I, L, E) :- nth_(L, 1, I, E).
nth_([H|_], N, N, H).
nth_([_|T], N0, N, E) :- N1 is N0 + 1, nth_(T, N1, N, E).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

exclude(_, [], []).
exclude(P, [H|T], R) :-
    ( call(P, H) -> R = R1 ; R = [H|R1] ),
    exclude(P, T, R1).

include(_, [], []).
include(P, [H|T], R) :-
    ( call(P, H) -> R = [H|R1] ; R = R1 ),
    include(P, T, R1).

maplist(_, []).
maplist(P, [H|T]) :- call(P, H), maplist(P, T).

maplist(_, [], []).
maplist(P, [H|T], [H2|T2]) :- call(P, H, H2), maplist(P, T, T2).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S0), S is S0 + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, M0), M is max(H, M0).

min_list([X], X).
min_list([H|T], M) :- min_list(T, M0), M is min(H, M0).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

% --- all-solutions helpers -------------------------------------------------

bagof_simple(T, G, L) :- findall(T, G, L), L \= [].
setof_simple(T, G, S) :- findall(T, G, L), L \= [], sort(L, S).

aggregate_count(G, N) :- findall(x, G, L), length(L, N).

% --- misc ------------------------------------------------------------------

ignore(G) :- ( call(G) -> true ; true ).
once(G) :- call(G), !.
`
