package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAdminMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clare_retrievals_total", "served", Labels{"mode": "fs2"}).Add(3)
	srv := httptest.NewServer(AdminMux(reg, NewTracer(4)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), `clare_retrievals_total{mode="fs2"} 3`) {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
}

func TestAdminMuxTrace(t *testing.T) {
	tracer := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr := tracer.Start("retrieve")
		tr.Root().End()
		tracer.Finish(tr)
	}
	srv := httptest.NewServer(AdminMux(NewRegistry(), tracer))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if got := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; got != 2 {
		t.Errorf("/trace?n=2 returned %d lines:\n%s", got, body)
	}

	if resp, err := http.Get(srv.URL + "/trace?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/trace?n=bogus status = %d, want 400", resp.StatusCode)
		}
	}
}

func TestAdminMuxPprofAndNils(t *testing.T) {
	srv := httptest.NewServer(AdminMux(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/trace", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}
