package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAdminMuxMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clare_retrievals_total", "served", Labels{"mode": "fs2"}).Add(3)
	srv := httptest.NewServer(AdminMux(reg, NewTracer(4)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), `clare_retrievals_total{mode="fs2"} 3`) {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
}

func TestAdminMuxTrace(t *testing.T) {
	tracer := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr := tracer.Start("retrieve")
		tr.Root().End()
		tracer.Finish(tr)
	}
	srv := httptest.NewServer(AdminMux(NewRegistry(), tracer))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if got := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; got != 2 {
		t.Errorf("/trace?n=2 returned %d lines:\n%s", got, body)
	}

	if resp, err := http.Get(srv.URL + "/trace?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/trace?n=bogus status = %d, want 400", resp.StatusCode)
		}
	}
}

func TestAdminMuxPprofAndNils(t *testing.T) {
	srv := httptest.NewServer(AdminMux(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/trace", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestAdminMuxFlight(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Record(&FlightRecord{Predicate: "p/1", Mode: "fs1", Total: 30})
	}
	srv := httptest.NewServer(NewAdminMux(AdminConfig{Flight: f}))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	status, body := get("/flight")
	if status != http.StatusOK {
		t.Fatalf("/flight status = %d", status)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 5 {
		t.Fatalf("/flight returned %d lines, want 5:\n%s", len(lines), body)
	}
	var rec FlightRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Predicate != "p/1" {
		t.Errorf("bad flight line (%v): %s", err, lines[0])
	}

	if _, body := get("/flight?n=2"); strings.Count(strings.TrimSpace(body), "\n")+1 != 2 {
		t.Errorf("/flight?n=2 did not truncate:\n%s", body)
	}
	if status, _ := get("/flight?n=bogus"); status != http.StatusBadRequest {
		t.Errorf("/flight?n=bogus status = %d, want 400", status)
	}
}

func TestAdminMuxSLOAndSlowlog(t *testing.T) {
	tr := NewSLOTracker(SLO{P99: time.Millisecond})
	tr.Observe("p/1", time.Second, false)
	sl := NewSlowQueryLog(4, time.Millisecond)
	sl.Add(&SlowCapture{Predicate: "p/1", Goal: "p(X)"})
	srv := httptest.NewServer(NewAdminMux(AdminConfig{SLO: tr, SlowLog: sl}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st SLOStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/slo not JSON: %v\n%s", err, body)
	}
	if st.Requests != 1 || st.Slow != 1 {
		t.Errorf("/slo status = %+v", st)
	}

	resp, err = http.Get(srv.URL + "/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var c SlowCapture
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(body))), &c); err != nil || c.Goal != "p(X)" {
		t.Errorf("/slowlog line bad (%v):\n%s", err, body)
	}
}

// The observability endpoints of an unarmed daemon must serve empty
// documents, not crash — every AdminConfig field is optional.
func TestAdminMuxObservabilityNils(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(AdminConfig{}))
	defer srv.Close()
	for _, path := range []string{"/flight", "/slo", "/slowlog"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

// A dump racing live recording must stay well-formed: every line valid
// JSON, sequences strictly increasing. Run with -race this also proves
// the ring's memory safety.
func TestAdminMuxFlightConcurrentDump(t *testing.T) {
	f := NewFlightRecorder(32)
	srv := httptest.NewServer(NewAdminMux(AdminConfig{Flight: f}))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f.Record(&FlightRecord{Predicate: "p/1", WallNS: int64(i)})
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/flight")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var lastSeq uint64
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if line == "" {
				continue
			}
			var rec FlightRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("torn flight line: %v\n%s", err, line)
			}
			if rec.Seq <= lastSeq {
				t.Fatalf("sequence went backwards: %d after %d", rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
		}
	}
	close(stop)
	wg.Wait()
}
