package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// KV is one key/value pair of a captured EXPLAIN profile, kept as
// strings so the telemetry package needs no knowledge of core's types.
type KV struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SlowCapture is one slow-query log entry: the retrieval that tripped
// the threshold plus the full EXPLAIN funnel profile re-run capture-side
// right after it.
type SlowCapture struct {
	Seq         uint64 `json:"seq"`
	TS          int64  `json:"ts_unix_nano"`
	Predicate   string `json:"predicate"`
	Mode        string `json:"mode"`
	Goal        string `json:"goal"`
	WallNS      int64  `json:"wall_ns"`
	ThresholdNS int64  `json:"threshold_ns"`
	TraceID     uint64 `json:"trace_id,omitempty"`
	Profile     []KV   `json:"profile,omitempty"`
}

// SlowQueryLog is a rate-limited ring of SlowCaptures. Offer gates the
// expensive capture-side EXPLAIN re-run per predicate, so a pathological
// predicate cannot flood the log or burn the engine re-profiling itself;
// Add publishes a finished capture. Nil-safe throughout.
type SlowQueryLog struct {
	mu         sync.Mutex
	ring       []*SlowCapture
	next       int
	seq        uint64
	captured   int64
	suppressed int64
	lastOffer  map[string]time.Time
	minGap     time.Duration
	now        func() time.Time
}

// DefaultSlowLogSize is the capture ring size when -slow-log is unset.
const DefaultSlowLogSize = 64

// DefaultSlowGap is the per-predicate minimum spacing between captures.
const DefaultSlowGap = time.Second

// NewSlowQueryLog builds a log of n entries (DefaultSlowLogSize when
// n <= 0) spacing per-predicate captures at least minGap apart
// (DefaultSlowGap when <= 0).
func NewSlowQueryLog(n int, minGap time.Duration) *SlowQueryLog {
	if n <= 0 {
		n = DefaultSlowLogSize
	}
	if minGap <= 0 {
		minGap = DefaultSlowGap
	}
	return &SlowQueryLog{
		ring:      make([]*SlowCapture, 0, n),
		lastOffer: make(map[string]time.Time),
		minGap:    minGap,
		now:       time.Now,
	}
}

// Offer asks whether a capture for pred should proceed now. It returns
// false — and counts a suppression — when the predicate was captured
// less than minGap ago.
func (l *SlowQueryLog) Offer(pred string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if last, ok := l.lastOffer[pred]; ok && now.Sub(last) < l.minGap {
		l.suppressed++
		return false
	}
	l.lastOffer[pred] = now
	return true
}

// Add publishes a finished capture into the ring, stamping its sequence
// number and timestamp.
func (l *SlowQueryLog) Add(c *SlowCapture) {
	if l == nil || c == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	c.Seq = l.seq
	if c.TS == 0 {
		c.TS = l.now().UnixNano()
	}
	l.captured++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, c)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = c
	l.next = (l.next + 1) % len(l.ring)
}

// Captured reports how many captures have ever been published.
func (l *SlowQueryLog) Captured() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.captured
}

// Suppressed reports how many offers the rate limit declined.
func (l *SlowQueryLog) Suppressed() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suppressed
}

// Tail returns up to n of the most recent captures, oldest first.
// n <= 0 means everything the ring holds.
func (l *SlowQueryLog) Tail(n int) []*SlowCapture {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*SlowCapture, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSONL dumps up to n captures (oldest first) as one JSON object
// per line.
func (l *SlowQueryLog) WriteJSONL(w io.Writer, n int) error {
	for _, c := range l.Tail(n) {
		blob, err := json.Marshal(c)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", blob); err != nil {
			return err
		}
	}
	return nil
}
