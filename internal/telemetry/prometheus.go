package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order and series in
// creation order. No external dependency: the format is a few lines of
// HELP/TYPE headers plus one sample per series (histograms expand into
// cumulative _bucket samples, _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family/series structure under the lock, then format
	// outside it: atomically-read values may trail each other by an
	// update, which Prometheus scrapes tolerate by design.
	type row struct {
		f *family
		s []*series
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			ss = append(ss, f.series[key])
		}
		rows = append(rows, row{f: f, s: ss})
	}
	r.mu.Unlock()

	for _, rw := range rows {
		if rw.f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", rw.f.name, rw.f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.f.name, rw.f.kind); err != nil {
			return err
		}
		for _, s := range rw.s {
			if err := writeSeries(w, rw.f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch m := s.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.rendered), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.rendered), fmtFloat(m.Value()))
		return err
	case *Histogram:
		var cum int64
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			le := fmtFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLE(s.rendered, le), cum); err != nil {
				return err
			}
		}
		cum += m.counts[len(m.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLE(s.rendered, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.rendered), fmtFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.rendered), m.Count())
		return err
	}
	return nil
}

func braced(rendered string) string {
	if rendered == "" {
		return ""
	}
	return "{" + rendered + "}"
}

func bracedLE(rendered, le string) string {
	if rendered == "" {
		return `{le="` + le + `"}`
	}
	return "{" + rendered + `,le="` + le + `"}`
}

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Buckets builds an explicit bucket slice — a convenience mirroring the
// common client-library helpers.
func Buckets(bounds ...float64) []float64 {
	out := append([]float64(nil), bounds...)
	sort.Float64s(out)
	return out
}
