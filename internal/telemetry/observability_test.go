package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWireSpanRoundTrip: a trace's wire form survives encode/decode and
// grafts back with remapped IDs and origin markers.
func TestWireSpanRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	remote := tr.Start("retrieve")
	root := remote.Root()
	child := remote.Span(root, "fs1_scan")
	child.SetAttr("chunk", "0")
	child.End()
	root.End()

	tok := EncodeWireSpans(remote.Wire(0))
	spans, err := DecodeWireSpans(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Name != "retrieve" || spans[1].Attrs["chunk"] != "0" {
		t.Fatalf("round trip mangled spans: %+v", spans)
	}

	local := tr.Start("route")
	net := local.Span(local.Root(), "net")
	local.Graft(net, spans)
	all := local.Wire(0)
	if len(all) != 4 { // route, net, retrieve, fs1_scan
		t.Fatalf("grafted trace has %d spans, want 4", len(all))
	}
	byName := make(map[string]WireSpan)
	for _, ws := range all {
		byName[ws.Name] = ws
	}
	if byName["retrieve"].Parent != net.ID {
		t.Errorf("grafted subtree root hangs from %d, want net span %d", byName["retrieve"].Parent, net.ID)
	}
	if byName["fs1_scan"].Parent != byName["retrieve"].ID {
		t.Error("grafted child lost its parent link")
	}
	if byName["retrieve"].Attrs["remote_span"] != "1" {
		t.Errorf("grafted span remote_span = %q, want original ID 1", byName["retrieve"].Attrs["remote_span"])
	}
}

// TestWireTruncation: an oversized trace truncates to the cap and marks
// the root, without mutating the live span.
func TestWireTruncation(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.Start("retrieve")
	for i := 0; i < MaxWireSpans+10; i++ {
		trace.Span(nil, fmt.Sprintf("chunk%d", i)).End()
	}
	out := trace.Wire(0)
	if len(out) != MaxWireSpans {
		t.Fatalf("wire form has %d spans, want cap %d", len(out), MaxWireSpans)
	}
	if out[0].Attrs["truncated"] != "true" {
		t.Error("truncated tree not marked on the root")
	}
	if trace.Root().Attrs["truncated"] != "" {
		t.Error("truncation marker leaked into the live span")
	}
}

// TestTracerResizeConcurrent hammers Resize against Start/Finish; the
// race detector is the assertion.
func TestTracerResizeConcurrent(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			trace := tr.Start("retrieve")
			trace.Span(nil, "fs1_scan").End()
			tr.Finish(trace)
		}
	}()
	go func() {
		defer wg.Done()
		sizes := []int{4, 64, 1, 16}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Resize(sizes[i%len(sizes)])
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTracerResizePreservesNewest: shrinking keeps the newest traces,
// growing keeps everything.
func TestTracerResizePreservesNewest(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 6; i++ {
		trace := tr.Start(fmt.Sprintf("t%d", i))
		tr.Finish(trace)
	}
	tr.Resize(3)
	if tr.Cap() != 3 {
		t.Fatalf("cap = %d, want 3", tr.Cap())
	}
	got := tr.Last(0)
	if len(got) != 3 || got[0].Name != "t3" || got[2].Name != "t5" {
		t.Fatalf("resize kept %v, want t3..t5", names(got))
	}
	tr.Resize(10)
	trace := tr.Start("t6")
	tr.Finish(trace)
	got = tr.Last(0)
	if len(got) != 4 || got[3].Name != "t6" {
		t.Fatalf("after grow: %v, want t3..t6", names(got))
	}
}

func names(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.Name
	}
	return out
}

// TestLatencyTrackerQuantiles: nearest-rank quantiles over a known
// sample set, hottest-first Top ordering.
func TestLatencyTrackerQuantiles(t *testing.T) {
	lt := NewLatencyTracker(0)
	for i := 1; i <= 100; i++ {
		lt.Observe("hot/2", time.Duration(i)*time.Millisecond)
	}
	lt.Observe("cold/1", 5*time.Millisecond)

	top := lt.Top(10)
	if len(top) != 2 || top[0].Key != "hot/2" || top[1].Key != "cold/1" {
		t.Fatalf("Top order wrong: %+v", top)
	}
	h := top[0]
	if h.Count != 100 {
		t.Errorf("count = %d, want 100", h.Count)
	}
	if h.P50 != 50*time.Millisecond || h.P90 != 90*time.Millisecond || h.P99 != 99*time.Millisecond {
		t.Errorf("quantiles = %v/%v/%v, want 50ms/90ms/99ms", h.P50, h.P90, h.P99)
	}
	if h.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", h.Max)
	}

	// The window drops old samples but lifetime count/sum keep running.
	for i := 0; i < DefaultLatencyWindow; i++ {
		lt.Observe("hot/2", time.Millisecond)
	}
	h = lt.Top(1)[0]
	if h.Count != uint64(100+DefaultLatencyWindow) {
		t.Errorf("lifetime count = %d", h.Count)
	}
	if h.P99 != time.Millisecond {
		t.Errorf("windowed P99 = %v, want 1ms after the window rolled", h.P99)
	}
}

// TestAdminMuxTop: /top serves the hottest predicates as JSON; bad n is
// a 400; a mux without a tracker serves an empty list.
func TestAdminMuxTop(t *testing.T) {
	lt := NewLatencyTracker(0)
	lt.Observe("married_couple/2", 3*time.Millisecond)
	lt.Observe("route0/2", time.Millisecond)
	mux := AdminMux(NewRegistry(), nil, lt)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/top?n=1", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("GET /top: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var snaps []LatencySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("bad /top payload %q: %v", rec.Body.String(), err)
	}
	if len(snaps) != 1 || snaps[0].Key != "married_couple/2" {
		t.Errorf("/top?n=1 = %+v, want the hottest predicate only", snaps)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/top?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	AdminMux(NewRegistry(), nil).ServeHTTP(rec, httptest.NewRequest("GET", "/top", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("trackerless /top = %d %q, want 200 []", rec.Code, rec.Body.String())
	}
}

// TestLintPrometheusCatchesDrift: each rule fires on a minimal bad
// exposition and stays quiet on a clean one.
func TestLintPrometheusCatchesDrift(t *testing.T) {
	clean := `# HELP clare_requests_total requests served
# TYPE clare_requests_total counter
clare_requests_total{mode="fs1"} 3
clare_requests_total{mode="fs2"} 1
# TYPE clare_boards_free gauge
clare_boards_free 4
# TYPE clare_latency_seconds histogram
clare_latency_seconds_bucket{le="0.1"} 2
clare_latency_seconds_bucket{le="+Inf"} 3
clare_latency_seconds_sum 0.4
clare_latency_seconds_count 3
`
	if got, err := LintPrometheus(strings.NewReader(clean)); err != nil || len(got) != 0 {
		t.Fatalf("clean exposition flagged: %v %v", got, err)
	}

	cases := []struct {
		name, text, want string
	}{
		{"dup help", "# HELP a x\n# HELP a y\n# TYPE a gauge\na 1\n", "duplicate HELP"},
		{"dup type", "# TYPE a gauge\n# TYPE a gauge\na 1\n", "duplicate TYPE"},
		{"counter suffix", "# TYPE clare_requests counter\nclare_requests 3\n", "does not end in _total"},
		{"dup series", "# TYPE a gauge\na{x=\"1\"} 2\na{x=\"1\"} 3\n", "duplicate series"},
		{"dup series label order", "# TYPE a gauge\na{x=\"1\",y=\"2\"} 2\na{y=\"2\",x=\"1\"} 3\n", "duplicate series"},
		{"type after sample", "a 1\n# TYPE a gauge\n", "after its samples"},
	}
	for _, c := range cases {
		got, err := LintPrometheus(strings.NewReader(c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) == 0 || !strings.Contains(strings.Join(got, "\n"), c.want) {
			t.Errorf("%s: problems %v, want one containing %q", c.name, got, c.want)
		}
	}
}

// TestLintPrometheusOnLiveRegistry: the registry's own exposition must
// pass its own linter — this is the CI gate in miniature.
func TestLintPrometheusOnLiveRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clare_requests_total", "requests", Labels{"mode": "fs1"}).Inc()
	reg.Gauge("clare_boards_free", "free boards", nil).Set(3)
	reg.Histogram("clare_latency_seconds", "latency", DurationBuckets, nil).Observe(0.01)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := LintPrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("registry exposition fails its own lint:\n%s\nproblems: %v", sb.String(), got)
	}
}
