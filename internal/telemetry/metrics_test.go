package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "requests", Labels{"mode": "fs1"})
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same handle.
	if c2 := reg.Counter("requests_total", "requests", Labels{"mode": "fs1"}); c2 != c {
		t.Error("re-resolving a series returned a different handle")
	}
	// Different labels: a distinct series.
	if c3 := reg.Counter("requests_total", "requests", Labels{"mode": "fs2"}); c3 == c {
		t.Error("distinct label set shared a handle")
	}

	g := reg.Gauge("boards_busy", "busy boards", nil)
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", Buckets(0.01, 0.1, 1), nil)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 5.555 {
		t.Errorf("sum = %v, want 5.555", got)
	}
	h.ObserveDuration(20 * time.Millisecond)
	if got := h.Count(); got != 5 {
		t.Errorf("count after ObserveDuration = %d, want 5", got)
	}
}

func TestNilRegistryAndHandlesNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "", nil)
	g := reg.Gauge("y", "", nil)
	h := reg.Histogram("z", "", nil, nil)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c != nil || g != nil || h != nil {
		t.Error("nil registry should hand out nil handles")
	}
	if got := reg.Gather(); got != nil {
		t.Errorf("nil registry Gather = %v, want nil", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", sb.String(), err)
	}
}

func TestKindMismatchReturnsDetached(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dual", "", nil)
	c.Inc()
	g := reg.Gauge("dual", "", nil) // wrong kind for the family
	if g == nil {
		t.Fatal("kind mismatch returned nil")
	}
	g.Set(42) // must not corrupt the family
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dual 1") {
		t.Errorf("family reading lost after kind mismatch:\n%s", sb.String())
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clare_retrievals_total", "retrievals served", Labels{"mode": "fs1+fs2"}).Add(7)
	reg.Gauge("clare_boards_busy", "busy boards", nil).Set(2)
	h := reg.Histogram("clare_stage_seconds", "stage time", Buckets(0.001, 1), Labels{"stage": "fs1_scan", "clock": "sim"})
	h.Observe(0.0009765625) // binary-exact values keep the _sum assertion exact
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE clare_retrievals_total counter",
		`clare_retrievals_total{mode="fs1+fs2"} 7`,
		"# TYPE clare_boards_busy gauge",
		"clare_boards_busy 2",
		"# TYPE clare_stage_seconds histogram",
		`clare_stage_seconds_bucket{clock="sim",stage="fs1_scan",le="0.001"} 1`,
		`clare_stage_seconds_bucket{clock="sim",stage="fs1_scan",le="1"} 2`,
		`clare_stage_seconds_bucket{clock="sim",stage="fs1_scan",le="+Inf"} 3`,
		`clare_stage_seconds_sum{clock="sim",stage="fs1_scan"} 2.5009765625`,
		`clare_stage_seconds_count{clock="sim",stage="fs1_scan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", Labels{"goal": `p("a\b` + "\n" + `")`}).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `goal="p(\"a\\b\n\")"`) {
		t.Errorf("labels not escaped:\n%s", sb.String())
	}
}

func TestGatherOrderAndValues(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("b_metric", "", Labels{"x": "1"}).Set(1.5)
	reg.Gauge("a_metric", "", nil).Set(2.5)
	reg.Gauge("b_metric", "", Labels{"x": "2"}).Set(3.5)
	got := reg.Gather()
	if len(got) != 3 {
		t.Fatalf("gathered %d series, want 3", len(got))
	}
	// Registration order, not alphabetical: families then series.
	if got[0].Name != "b_metric" || got[0].Labels["x"] != "1" || got[0].Value != 1.5 {
		t.Errorf("series 0 = %+v", got[0])
	}
	if got[1].Name != "b_metric" || got[1].Labels["x"] != "2" || got[1].Value != 3.5 {
		t.Errorf("series 1 = %+v", got[1])
	}
	if got[2].Name != "a_metric" || got[2].Value != 2.5 {
		t.Errorf("series 2 = %+v", got[2])
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				reg.Counter("conc_total", "", Labels{"w": string(rune('a' + i%4))}).Inc()
				reg.Histogram("conc_seconds", "", nil, nil).Observe(float64(j) / 1000)
				if j%50 == 0 {
					var sb strings.Builder
					_ = reg.WritePrometheus(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, sv := range reg.Gather() {
		if sv.Name == "conc_total" {
			total += int64(sv.Value)
		}
	}
	if total != 8*200 {
		t.Errorf("counter total = %d, want %d", total, 8*200)
	}
}
