package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// LatencyTracker keeps a sliding window of recent durations per key
// (keys are predicate indicators in the CRS server, "shard<i>" in the
// router) and serves quantile snapshots over them. It backs the /top
// admin endpoint: "which predicates are eating the wall clock right
// now", without the unbounded label growth a histogram-per-predicate
// would cost in /metrics.
type LatencyTracker struct {
	mu     sync.Mutex
	window int
	keys   map[string]*latencyWindow
}

// DefaultLatencyWindow is the per-key sample capacity when
// NewLatencyTracker is given n <= 0.
const DefaultLatencyWindow = 512

type latencyWindow struct {
	samples []time.Duration // ring, len == cap once filled
	next    int
	filled  bool
	count   uint64        // lifetime observations
	sum     time.Duration // lifetime wall total
}

// NewLatencyTracker returns a tracker retaining the last n samples per
// key.
func NewLatencyTracker(n int) *LatencyTracker {
	if n <= 0 {
		n = DefaultLatencyWindow
	}
	return &LatencyTracker{window: n, keys: make(map[string]*latencyWindow)}
}

// Window reports the per-key sample capacity the tracker was built
// with (0 for a nil tracker).
func (lt *LatencyTracker) Window() int {
	if lt == nil {
		return 0
	}
	return lt.window
}

// Quantile reads one key's nearest-rank q-quantile over its current
// window. ok is false when the key has no samples yet (or the tracker
// is nil) — callers fall back to their own floor.
func (lt *LatencyTracker) Quantile(key string, q float64) (d time.Duration, ok bool) {
	if lt == nil {
		return 0, false
	}
	lt.mu.Lock()
	w := lt.keys[key]
	if w == nil {
		lt.mu.Unlock()
		return 0, false
	}
	live := w.samples[:w.next]
	if w.filled {
		live = w.samples
	}
	sorted := make([]time.Duration, len(live))
	copy(sorted, live)
	lt.mu.Unlock()
	if len(sorted) == 0 {
		return 0, false
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantile(sorted, q), true
}

// Observe records one duration for key. Nil-safe: a nil tracker is a
// no-op, so call sites need no guards.
func (lt *LatencyTracker) Observe(key string, d time.Duration) {
	if lt == nil {
		return
	}
	lt.mu.Lock()
	w := lt.keys[key]
	if w == nil {
		w = &latencyWindow{samples: make([]time.Duration, lt.window)}
		lt.keys[key] = w
	}
	w.samples[w.next] = d
	w.next++
	if w.next == len(w.samples) {
		w.next = 0
		w.filled = true
	}
	w.count++
	w.sum += d
	lt.mu.Unlock()
}

// LatencySnapshot is one key's window summary. Quantiles are computed
// over the window only; Count and Sum are lifetime.
type LatencySnapshot struct {
	Key   string        `json:"key"`
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Top returns up to n keys ordered hottest first (by lifetime Sum, ties
// by key for determinism). n <= 0 means all keys.
func (lt *LatencyTracker) Top(n int) []LatencySnapshot {
	if lt == nil {
		return nil
	}
	lt.mu.Lock()
	out := make([]LatencySnapshot, 0, len(lt.keys))
	for k, w := range lt.keys {
		live := w.samples[:w.next]
		if w.filled {
			live = w.samples
		}
		sorted := make([]time.Duration, len(live))
		copy(sorted, live)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		snap := LatencySnapshot{Key: k, Count: w.count, Sum: w.sum}
		if len(sorted) > 0 {
			snap.P50 = quantile(sorted, 0.50)
			snap.P90 = quantile(sorted, 0.90)
			snap.P99 = quantile(sorted, 0.99)
			snap.Max = sorted[len(sorted)-1]
		}
		out = append(out, snap)
	}
	lt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sum != out[j].Sum {
			return out[i].Sum > out[j].Sum
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// quantile reads the nearest-rank q-quantile from an ascending slice:
// rank ceil(q·N), so the P50 of 1..100 is the 50th sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteJSON exports the top-n snapshot as a JSON array.
func (lt *LatencyTracker) WriteJSON(w io.Writer, n int) error {
	snaps := lt.Top(n)
	if snaps == nil {
		snaps = []LatencySnapshot{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snaps)
}
