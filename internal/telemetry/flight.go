package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// FlightRecord is one retrieval's black-box entry: the compact facts a
// post-mortem needs to reconstruct what the engine decided and how the
// candidate funnel behaved, without the weight of a full trace.
type FlightRecord struct {
	Seq       uint64 `json:"seq"`
	TS        int64  `json:"ts_unix_nano"`
	TraceID   uint64 `json:"trace_id,omitempty"`
	Predicate string `json:"predicate"`
	Shape     string `json:"shape,omitempty"`
	Mode      string `json:"mode"`
	Plan      string `json:"plan,omitempty"`
	Total     int64  `json:"candidates_total"`
	AfterFS1  int64  `json:"after_fs1"`
	AfterFS2  int64  `json:"after_fs2"`
	SimNS     int64  `json:"sim_ns"`
	WallNS    int64  `json:"wall_ns"`
	Degraded  string `json:"degraded,omitempty"`
	Faults    int64  `json:"faults,omitempty"`
	Retries   int64  `json:"retries,omitempty"`
	Hedged    bool   `json:"hedged,omitempty"`
}

// FlightRecorder is a fixed-size ring of FlightRecords written
// lock-freely on every retrieval. A slot is an atomic pointer, so a
// writer publishes a fully-built record with one store and a concurrent
// dump never observes a half-written entry; the global sequence counter
// both orders records and picks the slot, so the ring always holds the
// most recent len(ring) retrievals. All methods are nil-receiver safe:
// a nil recorder records nothing and dumps empty, so call sites need no
// "is the recorder on" branches.
type FlightRecorder struct {
	ring []atomic.Pointer[FlightRecord]
	seq  atomic.Uint64
}

// DefaultFlightSize is the ring size daemons use when no -flight flag
// overrides it: enough history to cover a burst, small enough that a
// snapshot is a quick read.
const DefaultFlightSize = 1024

// NewFlightRecorder builds a ring of n slots (DefaultFlightSize when
// n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSize
	}
	return &FlightRecorder{ring: make([]atomic.Pointer[FlightRecord], n)}
}

// Record stamps rec with the next sequence number and publishes it into
// its ring slot. The caller must not reuse or mutate rec afterwards.
func (f *FlightRecorder) Record(rec *FlightRecord) {
	if f == nil || rec == nil {
		return
	}
	seq := f.seq.Add(1)
	rec.Seq = seq
	f.ring[seq%uint64(len(f.ring))].Store(rec)
}

// Size reports the ring capacity; 0 on a nil recorder.
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Recorded reports how many records have ever been written (not how
// many the ring still holds).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Snapshot collects up to n of the most recent records, oldest first.
// n <= 0 means the whole ring. Concurrent writers may overwrite slots
// mid-collection; the sort by sequence number keeps whatever was read
// consistent and ordered.
func (f *FlightRecorder) Snapshot(n int) []*FlightRecord {
	if f == nil {
		return nil
	}
	recs := make([]*FlightRecord, 0, len(f.ring))
	for i := range f.ring {
		if r := f.ring[i].Load(); r != nil {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// WriteJSONL dumps up to n records (oldest first) as one JSON object
// per line — the /flight admin endpoint and FLIGHT wire verb body.
func (f *FlightRecorder) WriteJSONL(w io.Writer, n int) error {
	for _, rec := range f.Snapshot(n) {
		blob, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", blob); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotToFile writes the whole ring as JSONL to path atomically
// (temp file + rename), creating parent directories as needed. Used on
// SIGTERM, panic, and SLO breach so the black box survives the process.
func (f *FlightRecorder) SnapshotToFile(path string) error {
	if f == nil || path == "" {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".flight-*")
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(tmp, 0); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
