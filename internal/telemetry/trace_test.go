package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.Start("retrieve")
	root := trace.Root()
	if root == nil || root.ID != 1 || root.Parent != 0 || root.Name != "retrieve" {
		t.Fatalf("root span = %+v", root)
	}
	enc := trace.Span(root, "encode")
	enc.SetAttr("cache", "miss")
	enc.End()
	chunk := trace.Span(root, "chunk")
	scan := trace.Span(chunk, "fs1_scan")
	scan.AddSim(3 * time.Millisecond)
	scan.AddSim(1 * time.Millisecond)
	scan.End()
	chunk.End()
	root.End()
	tr.Finish(trace)

	if len(trace.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(trace.Spans))
	}
	if scan.Parent != chunk.ID || chunk.Parent != root.ID || enc.Parent != root.ID {
		t.Errorf("parent links wrong: enc=%d chunk=%d scan=%d", enc.Parent, chunk.Parent, scan.Parent)
	}
	if scan.Sim != 4*time.Millisecond {
		t.Errorf("scan sim = %v, want 4ms", scan.Sim)
	}
	if enc.Attrs["cache"] != "miss" {
		t.Errorf("attrs = %v", enc.Attrs)
	}
	// A nil parent on a non-empty trace attaches to the root.
	orphan := trace.Span(nil, "late")
	if orphan.Parent != root.ID {
		t.Errorf("nil-parent span parent = %d, want root %d", orphan.Parent, root.ID)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		trace := tr.Start(fmt.Sprintf("op%d", i))
		tr.Finish(trace)
	}
	last := tr.Last(0)
	if len(last) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(last))
	}
	// Oldest first: op2, op3, op4.
	for i, want := range []string{"op2", "op3", "op4"} {
		if last[i].Name != want {
			t.Errorf("ring[%d] = %s, want %s", i, last[i].Name, want)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[1].Name != "op4" {
		t.Errorf("Last(2) = %v", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("x")
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	sp := trace.Span(nil, "y")
	sp.SetAttr("a", "b")
	sp.AddSim(time.Second)
	sp.End()
	tr.Finish(trace)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 10); err != nil || sb.Len() != 0 {
		t.Errorf("nil tracer JSON = %q, %v", sb.String(), err)
	}
}

func TestWriteJSONLines(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 2; i++ {
		trace := tr.Start("retrieve")
		sp := trace.Span(nil, "fs2_match")
		sp.AddSim(time.Millisecond)
		sp.End()
		trace.Root().End()
		tr.Finish(trace)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var decoded Trace
		if err := json.Unmarshal(sc.Bytes(), &decoded); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if decoded.Name != "retrieve" || len(decoded.Spans) != 2 {
			t.Errorf("decoded trace = %+v", &decoded)
		}
		if decoded.Spans[1].Sim != time.Millisecond {
			t.Errorf("sim duration lost in JSON: %v", decoded.Spans[1].Sim)
		}
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}
