package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SLO is one service-level objective: a P99 latency bound and/or an
// error-rate bound, parsed from the daemons' `-slo p99=Xms,err=Y%`
// flag. The implicit latency error budget is 1% (that is what "p99"
// means); the error budget is Y/100.
type SLO struct {
	P99     time.Duration // 0 = no latency objective
	ErrRate float64       // fraction (0.01 for "1%"); 0 = no error objective
}

// ParseSLO reads a `-slo` spec: comma-separated `p99=<dur>` and
// `err=<pct>%` clauses, e.g. "p99=5ms,err=0.1%". Either clause may be
// omitted; an empty spec is an error (use no flag for no SLO).
func ParseSLO(spec string) (SLO, error) {
	var s SLO
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, fmt.Errorf("slo: empty spec")
	}
	for _, clause := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return s, fmt.Errorf("slo: clause %q is not key=value", clause)
		}
		switch k {
		case "p99":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return s, fmt.Errorf("slo: bad p99 duration %q", v)
			}
			s.P99 = d
		case "err":
			pct, ok := strings.CutSuffix(v, "%")
			if !ok {
				return s, fmt.Errorf("slo: err wants a percentage, got %q", v)
			}
			var f float64
			if _, err := fmt.Sscanf(pct, "%g", &f); err != nil || f <= 0 || f >= 100 {
				return s, fmt.Errorf("slo: bad err percentage %q", v)
			}
			s.ErrRate = f / 100
		default:
			return s, fmt.Errorf("slo: unknown clause %q", k)
		}
	}
	if s.P99 == 0 && s.ErrRate == 0 {
		return s, fmt.Errorf("slo: spec %q sets no objective", spec)
	}
	return s, nil
}

// String renders the spec back in flag syntax.
func (s SLO) String() string {
	var parts []string
	if s.P99 > 0 {
		parts = append(parts, "p99="+s.P99.String())
	}
	if s.ErrRate > 0 {
		parts = append(parts, fmt.Sprintf("err=%g%%", s.ErrRate*100))
	}
	return strings.Join(parts, ",")
}

// Multi-window burn-rate windows: the short window catches fast burns
// (page now), the long window catches slow leaks (ticket). Sizes follow
// the usual 1:10 ratio.
const (
	sloShortWindow = time.Minute
	sloLongWindow  = 10 * time.Minute
	sloBuckets     = 20 // per window ring; granularity = window/buckets
)

// sloBucket is one time slice of observation counts.
type sloBucket struct {
	epoch    int64 // bucket index since Unix zero; stale slices are reset lazily
	requests int64
	slow     int64
	errors   int64
}

// sloWindow is a bucketed sliding window of request/slow/error counts.
type sloWindow struct {
	width   time.Duration // one bucket's span
	buckets [sloBuckets]sloBucket
}

func newSLOWindow(span time.Duration) *sloWindow {
	return &sloWindow{width: span / sloBuckets}
}

func (w *sloWindow) observe(now time.Time, slow, isErr bool) {
	b := w.bucket(now)
	b.requests++
	if slow {
		b.slow++
	}
	if isErr {
		b.errors++
	}
}

func (w *sloWindow) bucket(now time.Time) *sloBucket {
	epoch := now.UnixNano() / int64(w.width)
	b := &w.buckets[epoch%sloBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	return b
}

// totals sums the live buckets (those within the window of now).
func (w *sloWindow) totals(now time.Time) (requests, slow, errors int64) {
	epoch := now.UnixNano() / int64(w.width)
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch > epoch-sloBuckets && b.epoch <= epoch {
			requests += b.requests
			slow += b.slow
			errors += b.errors
		}
	}
	return
}

// burnRate converts window totals into a burn rate: the fraction of the
// error budget consumed per unit of budgeted fraction. A burn of 1.0
// means the service is exactly spending its budget; 10 means it will
// exhaust a month's budget in ~3 days.
func burnRate(slo SLO, requests, slow, errors int64) float64 {
	return BurnRate(slo, requests, slow, errors)
}

// BurnRate converts window totals into a burn rate against slo.
// Exported so the cluster router can recompute a cluster-wide burn from
// summed per-backend window counts (summing burn rates would weight a
// near-idle backend the same as a loaded one; summing the counts first
// weights each backend by its own traffic).
func BurnRate(slo SLO, requests, slow, errors int64) float64 {
	if requests == 0 {
		return 0
	}
	var burn float64
	if slo.P99 > 0 {
		// The p99 objective implies a 1% slow-request budget.
		burn = float64(slow) / float64(requests) / 0.01
	}
	if slo.ErrRate > 0 {
		if eb := float64(errors) / float64(requests) / slo.ErrRate; eb > burn {
			burn = eb
		}
	}
	return burn
}

// SLOTracker measures one process's compliance with an SLO over short
// and long sliding windows, per-service and per-key (predicate). All
// methods are nil-safe. The breach callback fires (throttled) when the
// short-window burn rate crosses the breach threshold — the flight
// recorder snapshots on it.
type SLOTracker struct {
	slo SLO
	now func() time.Time

	mu       sync.Mutex
	short    *sloWindow
	long     *sloWindow
	perKey   map[string]*sloWindow // short-window only: worst offenders
	requests int64
	slow     int64
	errors   int64
	breaches int64
	breached bool // short burn currently >= threshold

	// OnBreach, when set, is called (outside the lock) each time the
	// short-window burn crosses breachBurn from below, at most once per
	// breachCooldown.
	OnBreach   func(burn float64)
	lastBreach time.Time

	// Prometheus handles (nil-safe; see Instrument).
	gShort, gLong           *Gauge
	cReq, cSlow, cErr, cBrc *Counter
}

const (
	// breachBurn is the short-window burn rate considered a breach: the
	// classic fast-burn page threshold for a 1m window.
	breachBurn = 14.4
	// breachCooldown throttles OnBreach so a sustained breach does not
	// snapshot the flight ring in a loop.
	breachCooldown = time.Minute
)

// NewSLOTracker builds a tracker for the given objective.
func NewSLOTracker(slo SLO) *SLOTracker {
	return &SLOTracker{
		slo:    slo,
		now:    time.Now,
		short:  newSLOWindow(sloShortWindow),
		long:   newSLOWindow(sloLongWindow),
		perKey: make(map[string]*sloWindow),
	}
}

// Instrument wires the tracker to a metrics registry: observations land
// in clare_slo_requests_total / clare_slo_slow_total /
// clare_slo_errors_total, breaches in clare_slo_breaches_total, and the
// live burn rates in clare_slo_burn_rate{window=short|long}.
func (t *SLOTracker) Instrument(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.gShort = reg.Gauge("clare_slo_burn_rate", "SLO error-budget burn rate per sliding window",
		Labels{"window": "short"})
	t.gLong = reg.Gauge("clare_slo_burn_rate", "SLO error-budget burn rate per sliding window",
		Labels{"window": "long"})
	t.cReq = reg.Counter("clare_slo_requests_total", "requests observed against the SLO", nil)
	t.cSlow = reg.Counter("clare_slo_slow_total", "requests slower than the SLO latency objective", nil)
	t.cErr = reg.Counter("clare_slo_errors_total", "failed requests observed against the SLO", nil)
	t.cBrc = reg.Counter("clare_slo_breaches_total", "short-window fast-burn breaches", nil)
}

// SLO reports the tracked objective (zero value on a nil tracker).
func (t *SLOTracker) SLO() SLO {
	if t == nil {
		return SLO{}
	}
	return t.slo
}

// Observe records one request outcome under the given key (predicate
// indicator). d is the wall latency; isErr marks a failed request.
func (t *SLOTracker) Observe(key string, d time.Duration, isErr bool) {
	if t == nil {
		return
	}
	slow := t.slo.P99 > 0 && d > t.slo.P99
	now := t.now()

	t.mu.Lock()
	t.requests++
	if slow {
		t.slow++
	}
	if isErr {
		t.errors++
	}
	t.short.observe(now, slow, isErr)
	t.long.observe(now, slow, isErr)
	if key != "" {
		kw := t.perKey[key]
		if kw == nil {
			kw = newSLOWindow(sloShortWindow)
			t.perKey[key] = kw
		}
		kw.observe(now, slow, isErr)
	}
	var fire func(float64)
	req, sl, er := t.short.totals(now)
	burn := burnRate(t.slo, req, sl, er)
	if burn >= breachBurn && req >= 10 {
		if !t.breached {
			t.breached = true
			t.breaches++
			t.cBrc.Inc()
			if t.OnBreach != nil && now.Sub(t.lastBreach) >= breachCooldown {
				t.lastBreach = now
				fire = t.OnBreach
			}
		}
	} else {
		t.breached = false
	}
	t.gShort.Set(burn)
	if t.gLong != nil {
		lreq, lsl, ler := t.long.totals(now)
		t.gLong.Set(burnRate(t.slo, lreq, lsl, ler))
	}
	t.cReq.Inc()
	if slow {
		t.cSlow.Inc()
	}
	if isErr {
		t.cErr.Inc()
	}
	t.mu.Unlock()

	if fire != nil {
		fire(burn)
	}
}

// SLOStatus is one Snapshot: the objective, lifetime counters, and both
// windows' totals and burn rates.
type SLOStatus struct {
	SLO          string          `json:"slo"`
	P99Millis    float64         `json:"p99_ms,omitempty"`
	ErrRate      float64         `json:"err_rate,omitempty"`
	Requests     int64           `json:"requests"`
	Slow         int64           `json:"slow"`
	Errors       int64           `json:"errors"`
	Breaches     int64           `json:"breaches"`
	BreachActive bool            `json:"breach_active"`
	Short        SLOWindowStatus `json:"short"`
	Long         SLOWindowStatus `json:"long"`
	PerKey       []SLOKeyStatus  `json:"per_key,omitempty"`
}

// SLOWindowStatus is one window's live totals and burn rate.
type SLOWindowStatus struct {
	Window   string  `json:"window"`
	Requests int64   `json:"requests"`
	Slow     int64   `json:"slow"`
	Errors   int64   `json:"errors"`
	Burn     float64 `json:"burn"`
}

// SLOKeyStatus is one key's short-window burn, for the /slo endpoint's
// worst-offender list.
type SLOKeyStatus struct {
	Key      string  `json:"key"`
	Requests int64   `json:"requests"`
	Slow     int64   `json:"slow"`
	Errors   int64   `json:"errors"`
	Burn     float64 `json:"burn"`
}

// Status reports the tracker's current state. Per-key entries are
// sorted by burn rate descending, then key, and only keys with live
// short-window traffic appear.
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	sreq, sslow, serr := t.short.totals(now)
	lreq, lslow, lerr := t.long.totals(now)
	st := SLOStatus{
		SLO:          t.slo.String(),
		P99Millis:    float64(t.slo.P99) / float64(time.Millisecond),
		ErrRate:      t.slo.ErrRate,
		Requests:     t.requests,
		Slow:         t.slow,
		Errors:       t.errors,
		Breaches:     t.breaches,
		BreachActive: t.breached,
		Short: SLOWindowStatus{
			Window: sloShortWindow.String(), Requests: sreq, Slow: sslow, Errors: serr,
			Burn: burnRate(t.slo, sreq, sslow, serr),
		},
		Long: SLOWindowStatus{
			Window: sloLongWindow.String(), Requests: lreq, Slow: lslow, Errors: lerr,
			Burn: burnRate(t.slo, lreq, lslow, lerr),
		},
	}
	for key, w := range t.perKey {
		req, slow, errs := w.totals(now)
		if req == 0 {
			continue
		}
		st.PerKey = append(st.PerKey, SLOKeyStatus{
			Key: key, Requests: req, Slow: slow, Errors: errs,
			Burn: burnRate(t.slo, req, slow, errs),
		})
	}
	sort.Slice(st.PerKey, func(i, j int) bool {
		if st.PerKey[i].Burn != st.PerKey[j].Burn {
			return st.PerKey[i].Burn > st.PerKey[j].Burn
		}
		return st.PerKey[i].Key < st.PerKey[j].Key
	})
	return st
}

// WriteJSON renders Status as one indented JSON document — the /slo
// admin endpoint body.
func (t *SLOTracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Status())
}
