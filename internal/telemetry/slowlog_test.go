package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogRateLimit(t *testing.T) {
	l := NewSlowQueryLog(8, time.Second)
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.now = func() time.Time { return clock }

	if !l.Offer("p/1") {
		t.Fatal("first offer declined")
	}
	if l.Offer("p/1") {
		t.Error("second offer inside the gap accepted")
	}
	if !l.Offer("q/2") {
		t.Error("different predicate throttled by p/1's gap")
	}
	clock = clock.Add(2 * time.Second)
	if !l.Offer("p/1") {
		t.Error("offer after the gap declined")
	}
	if got := l.Suppressed(); got != 1 {
		t.Errorf("suppressed = %d, want 1", got)
	}
}

func TestSlowLogRingWrap(t *testing.T) {
	l := NewSlowQueryLog(3, time.Millisecond)
	for i := 1; i <= 5; i++ {
		l.Add(&SlowCapture{Predicate: "p/1", WallNS: int64(i)})
	}
	if got := l.Captured(); got != 5 {
		t.Errorf("captured = %d, want 5", got)
	}
	tail := l.Tail(0)
	if len(tail) != 3 {
		t.Fatalf("tail holds %d, want ring size 3", len(tail))
	}
	// Oldest first, newest 3 kept (seqs 3..5).
	for i, c := range tail {
		if want := uint64(3 + i); c.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d", i, c.Seq, want)
		}
	}
	if got := len(l.Tail(2)); got != 2 {
		t.Errorf("Tail(2) = %d entries", got)
	}
}

func TestSlowLogJSONL(t *testing.T) {
	l := NewSlowQueryLog(4, time.Millisecond)
	l.Add(&SlowCapture{Predicate: "p/1", Goal: "p(a, X)", WallNS: 7e6, ThresholdNS: 5e6,
		Profile: []KV{{Key: "candidates.total", Value: "30"}}})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var c SlowCapture
	if err := json.Unmarshal(buf.Bytes(), &c); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if c.Goal != "p(a, X)" || len(c.Profile) != 1 || c.Profile[0].Key != "candidates.total" {
		t.Errorf("round trip = %+v", c)
	}
	if !strings.Contains(buf.String(), `"threshold_ns":5000000`) {
		t.Errorf("JSON field names drifted:\n%s", buf.String())
	}
}

func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowQueryLog
	if l.Offer("p/1") {
		t.Error("nil log accepted an offer")
	}
	l.Add(&SlowCapture{}) // must not panic
	if l.Captured() != 0 || l.Suppressed() != 0 || l.Tail(0) != nil {
		t.Error("nil log not inert")
	}
}
