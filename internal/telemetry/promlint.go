package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// LintPrometheus validates a Prometheus text-format (0.0.4) exposition
// the way the CI metrics-lint step does, returning one message per
// problem (empty means clean):
//
//   - every metric has at most one HELP and one TYPE line, and they
//     precede its first sample;
//   - no series (metric name plus label set) appears twice;
//   - counter-typed metric names end in _total.
//
// The linter reads the exposition only — it needs no registry, so it can
// scrape a live /metrics endpoint.
func LintPrometheus(r io.Reader) ([]string, error) {
	var problems []string
	helpSeen := make(map[string]bool)
	typeSeen := make(map[string]string)
	sampled := make(map[string]bool)
	series := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if helpSeen[name] {
				problems = append(problems, fmt.Sprintf("line %d: duplicate HELP for %s", lineNo, name))
			}
			if sampled[name] {
				problems = append(problems, fmt.Sprintf("line %d: HELP for %s after its samples", lineNo, name))
			}
			helpSeen[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			if _, dup := typeSeen[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
			}
			if sampled[name] {
				problems = append(problems, fmt.Sprintf("line %d: TYPE for %s after its samples", lineNo, name))
			}
			typeSeen[name] = kind
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				problems = append(problems, fmt.Sprintf("line %d: counter %s does not end in _total", lineNo, name))
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key, name, err := seriesKey(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		sampled[name] = true
		series[key]++
		if series[key] == 2 { // report each duplicate series once
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s", lineNo, key))
		}
	}
	if err := sc.Err(); err != nil {
		return problems, err
	}
	return problems, nil
}

// seriesKey canonicalises one sample line into its identity: the metric
// name plus its label pairs in sorted order (label order is not
// significant in the exposition format). The bare metric name is
// returned too, with histogram/summary suffixes stripped to their base
// so _bucket/_sum/_count samples pair with their TYPE block.
func seriesKey(line string) (key, name string, err error) {
	metric := line
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		metric = line[:i+1]
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		metric = line[:i]
	}
	name = metric
	labels := ""
	if i := strings.IndexByte(metric, '{'); i >= 0 {
		if !strings.HasSuffix(metric, "}") {
			return "", "", fmt.Errorf("malformed sample %q", line)
		}
		name = metric[:i]
		pairs := splitLabels(metric[i+1 : len(metric)-1])
		sort.Strings(pairs)
		labels = "{" + strings.Join(pairs, ",") + "}"
	}
	if name == "" {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	key = name + labels
	// The key keeps the full sample name (a histogram's _sum and _count
	// are distinct series); only the HELP/TYPE pairing name strips the
	// expansion suffixes back to the family.
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	return key, name, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var pairs []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			if cur.Len() > 0 {
				pairs = append(pairs, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		pairs = append(pairs, cur.String())
	}
	return pairs
}
