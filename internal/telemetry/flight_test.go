package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderWrapAndOrder(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		f.Record(&FlightRecord{Predicate: "p/1", WallNS: int64(i)})
	}
	if got := f.Recorded(); got != 10 {
		t.Errorf("Recorded() = %d, want 10", got)
	}
	recs := f.Snapshot(0)
	if len(recs) != 4 {
		t.Fatalf("Snapshot holds %d records, want ring size 4", len(recs))
	}
	// Oldest first, and the ring keeps the newest 4 (seqs 7..10).
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestFlightRecorderTruncation(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Record(&FlightRecord{Predicate: "p/1"})
	}
	if got := len(f.Snapshot(2)); got != 2 {
		t.Errorf("Snapshot(2) = %d records, want 2", got)
	}
	if got := len(f.Snapshot(100)); got != 5 {
		t.Errorf("Snapshot(100) = %d records, want 5", got)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(&FlightRecord{}) // must not panic
	if f.Size() != 0 || f.Recorded() != 0 || f.Snapshot(0) != nil {
		t.Error("nil recorder not inert")
	}
	if err := f.WriteJSONL(&bytes.Buffer{}, 0); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := f.SnapshotToFile("ignored"); err != nil {
		t.Errorf("nil SnapshotToFile: %v", err)
	}
}

func TestFlightRecorderConcurrentDumpWhileRecording(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f.Record(&FlightRecord{Predicate: "p/1", WallNS: int64(i)})
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		recs := f.Snapshot(0)
		for j := 1; j < len(recs); j++ {
			if recs[j].Seq <= recs[j-1].Seq {
				t.Fatalf("snapshot out of order: seq %d after %d", recs[j].Seq, recs[j-1].Seq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(&FlightRecord{TraceID: 0xabcd, Predicate: "married_couple/2", Mode: "fs1+fs2",
		Total: 30, AfterFS1: 10, AfterFS2: 2, WallNS: 1234})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var rec FlightRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSONL line not valid JSON: %v\n%s", err, buf.String())
	}
	if rec.Predicate != "married_couple/2" || rec.Total != 30 || rec.TraceID != 0xabcd {
		t.Errorf("round-trip mismatch: %+v", rec)
	}
	if !strings.Contains(buf.String(), `"candidates_total":30`) {
		t.Errorf("JSON field names drifted:\n%s", buf.String())
	}
}

func TestFlightSnapshotToFile(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(&FlightRecord{Predicate: "p/1"})
	f.Record(&FlightRecord{Predicate: "q/2"})
	path := filepath.Join(t.TempDir(), "sub", "crash.flight")
	if err := f.SnapshotToFile(path); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("snapshot holds %d lines, want 2:\n%s", len(lines), body)
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Errorf("snapshot line not valid JSON: %s", ln)
		}
	}
	// No temp droppings left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("snapshot dir holds %d entries, want just the snapshot", len(entries))
	}
}
