package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so an
// unconfigured logger behaves like a plain printer.
type Level int

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel reads a -log-level flag value; unknown strings default to
// info rather than erroring so a typo degrades to more logging, not a
// dead daemon.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger is the daemons' structured event stream: leveled, key=value or
// JSON lines, each carrying a timestamp, component, and any bound
// fields (trace IDs, shard numbers) so boot, drain, WAL-recovery, and
// anomaly events correlate with the retrieval telemetry. Stdlib-only
// and nil-safe: a nil logger drops everything, so library code can log
// unconditionally.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	asJSON bool
	fields []kvPair // bound by With, rendered on every line
	now    func() time.Time
}

type kvPair struct {
	k string
	v string
}

// NewLogger builds a logger writing to w at the given threshold.
// jsonLines selects one-JSON-object-per-line output; otherwise lines
// are logfmt-style `ts=... level=... msg=... k=v`.
func NewLogger(w io.Writer, level Level, jsonLines bool) *Logger {
	return &Logger{w: w, level: level, asJSON: jsonLines, now: time.Now}
}

// With returns a logger that prepends the given key/value pairs to
// every line — e.g. component=crsd or trace=<id>. Pairs are rendered in
// the order bound. The parent is unchanged.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := &Logger{w: l.w, level: l.level, asJSON: l.asJSON, now: l.now}
	child.fields = append(append([]kvPair{}, l.fields...), pairs(kv)...)
	return child
}

func pairs(kv []any) []kvPair {
	var out []kvPair
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, kvPair{fmt.Sprint(kv[i]), fmt.Sprint(kv[i+1])})
	}
	if len(kv)%2 == 1 {
		out = append(out, kvPair{"arg", fmt.Sprint(kv[len(kv)-1])})
	}
	return out
}

func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.level {
		return
	}
	line := l.fields
	if len(kv) > 0 {
		line = append(append([]kvPair{}, line...), pairs(kv)...)
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.asJSON {
		obj := map[string]string{"ts": ts, "level": level.String(), "msg": msg}
		for _, p := range line {
			// Bound fields must not clobber the envelope keys.
			if _, taken := obj[p.k]; !taken {
				obj[p.k] = p.v
			}
		}
		blob, err := json.Marshal(obj)
		if err != nil {
			return
		}
		fmt.Fprintf(l.w, "%s\n", blob)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%s level=%s msg=%s", ts, level.String(), quoteIfNeeded(msg))
	for _, p := range line {
		fmt.Fprintf(&b, " %s=%s", quoteIfNeeded(p.k), quoteIfNeeded(p.v))
	}
	fmt.Fprintln(l.w, b.String())
}

// quoteIfNeeded wraps values containing spaces or quotes so logfmt
// lines stay machine-splittable.
func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
