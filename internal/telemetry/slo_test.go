package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	good := map[string]SLO{
		"p99=5ms":           {P99: 5 * time.Millisecond},
		"err=0.1%":          {ErrRate: 0.001},
		"p99=10ms,err=1%":   {P99: 10 * time.Millisecond, ErrRate: 0.01},
		" p99=1s , err=5% ": {P99: time.Second, ErrRate: 0.05},
	}
	for spec, want := range good {
		got, err := ParseSLO(spec)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", spec, err)
			continue
		}
		if got.P99 != want.P99 || got.ErrRate < want.ErrRate-1e-12 || got.ErrRate > want.ErrRate+1e-12 {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", spec, got, want)
		}
	}
	for _, spec := range []string{"", "p99=", "p99=fast", "err=0.1", "err=200%", "err=-1%", "p50=5ms"} {
		if _, err := ParseSLO(spec); err == nil {
			t.Errorf("ParseSLO(%q) accepted", spec)
		}
	}
}

func TestBurnRate(t *testing.T) {
	slo := SLO{P99: 5 * time.Millisecond, ErrRate: 0.01}
	if got := BurnRate(slo, 0, 0, 0); got != 0 {
		t.Errorf("burn with no traffic = %v", got)
	}
	// 1% slow against a 1% budget = burn 1.0.
	if got := BurnRate(slo, 100, 1, 0); got != 1.0 {
		t.Errorf("burn(100 req, 1 slow) = %v, want 1", got)
	}
	// All-slow burns the whole budget 100x over.
	if got := BurnRate(slo, 10, 10, 0); got != 100 {
		t.Errorf("burn(all slow) = %v, want 100", got)
	}
	// The worse of the two objectives wins: 5% errors on a 1% budget.
	if got := BurnRate(slo, 100, 1, 5); got != 5 {
		t.Errorf("burn(err dominated) = %v, want 5", got)
	}
}

func TestSLOTrackerObserveAndStatus(t *testing.T) {
	tr := NewSLOTracker(SLO{P99: 5 * time.Millisecond})
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.now = func() time.Time { return clock }

	for i := 0; i < 90; i++ {
		tr.Observe("p/1", time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		tr.Observe("q/2", 50*time.Millisecond, false)
	}
	st := tr.Status()
	if st.Requests != 100 || st.Slow != 10 {
		t.Fatalf("requests=%d slow=%d, want 100/10", st.Requests, st.Slow)
	}
	// 10% slow over a 1% budget: burn 10 in both windows.
	if st.Short.Burn < 9.99 || st.Short.Burn > 10.01 {
		t.Errorf("short burn = %v, want 10", st.Short.Burn)
	}
	if st.Long.Burn < 9.99 || st.Long.Burn > 10.01 {
		t.Errorf("long burn = %v, want 10", st.Long.Burn)
	}
	// Worst offender first: q/2 is all-slow.
	if len(st.PerKey) != 2 || st.PerKey[0].Key != "q/2" {
		t.Errorf("per-key order = %+v", st.PerKey)
	}

	// The short window forgets; the long window still remembers.
	clock = clock.Add(2 * time.Minute)
	st = tr.Status()
	if st.Short.Requests != 0 {
		t.Errorf("short window after 2m holds %d requests", st.Short.Requests)
	}
	if st.Long.Requests != 100 {
		t.Errorf("long window after 2m holds %d requests, want 100", st.Long.Requests)
	}
}

func TestSLOTrackerBreachFires(t *testing.T) {
	tr := NewSLOTracker(SLO{P99: time.Millisecond})
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr.now = func() time.Time { return clock }
	var fired []float64
	tr.OnBreach = func(burn float64) { fired = append(fired, burn) }

	// 9 all-slow requests: burn 100 but under the 10-request floor.
	for i := 0; i < 9; i++ {
		tr.Observe("p/1", time.Second, false)
	}
	if len(fired) != 0 {
		t.Fatalf("breach fired below the request floor: %v", fired)
	}
	tr.Observe("p/1", time.Second, false)
	if len(fired) != 1 {
		t.Fatalf("breach did not fire at the floor: %v", fired)
	}
	if fired[0] < 14.4 {
		t.Errorf("breach burn = %v, want >= 14.4", fired[0])
	}
	// Sustained breach is edge-triggered + cooled down: no refire.
	for i := 0; i < 20; i++ {
		tr.Observe("p/1", time.Second, false)
	}
	if len(fired) != 1 {
		t.Errorf("sustained breach refired: %v", fired)
	}
	st := tr.Status()
	if !st.BreachActive || st.Breaches != 1 {
		t.Errorf("status breach_active=%v breaches=%d", st.BreachActive, st.Breaches)
	}

	// Recovery clears the edge; a later breach past the cooldown refires.
	clock = clock.Add(2 * time.Minute)
	tr.Observe("p/1", time.Microsecond, false)
	if tr.Status().BreachActive {
		t.Error("breach still active after recovery")
	}
	for i := 0; i < 10; i++ {
		tr.Observe("p/1", time.Second, false)
	}
	if len(fired) != 2 {
		t.Errorf("post-cooldown breach did not refire: %v", fired)
	}
}

func TestSLOTrackerErrorObjective(t *testing.T) {
	tr := NewSLOTracker(SLO{ErrRate: 0.1})
	clock := time.Now()
	tr.now = func() time.Time { return clock }
	for i := 0; i < 8; i++ {
		tr.Observe("p/1", time.Millisecond, false)
	}
	tr.Observe("p/1", time.Millisecond, true)
	tr.Observe("p/1", time.Millisecond, true)
	st := tr.Status()
	if st.Errors != 2 {
		t.Errorf("errors = %d", st.Errors)
	}
	// 20% errors on a 10% budget: burn 2.
	if st.Short.Burn < 1.99 || st.Short.Burn > 2.01 {
		t.Errorf("burn = %v, want 2", st.Short.Burn)
	}
}

func TestSLOTrackerWriteJSON(t *testing.T) {
	tr := NewSLOTracker(SLO{P99: 5 * time.Millisecond})
	tr.Observe("p/1", time.Millisecond, false)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var st SLOStatus
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if st.Requests != 1 || !strings.Contains(st.SLO, "p99=5ms") {
		t.Errorf("status = %+v", st)
	}
}

func TestSLOTrackerInstrument(t *testing.T) {
	reg := NewRegistry()
	tr := NewSLOTracker(SLO{P99: time.Millisecond})
	tr.Instrument(reg)
	tr.Observe("p/1", time.Second, false)
	tr.Observe("p/1", time.Microsecond, true)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"clare_slo_requests_total 2",
		"clare_slo_slow_total 1",
		"clare_slo_errors_total 1",
		`clare_slo_burn_rate{window="short"}`,
		`clare_slo_burn_rate{window="long"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("p/1", time.Second, true) // must not panic
	tr.Instrument(nil)
	if st := tr.Status(); st.Requests != 0 {
		t.Error("nil tracker not inert")
	}
}
