package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// AdminConfig names everything the admin HTTP surface can expose. Any
// field may be nil; the corresponding endpoint then serves an empty
// document rather than failing, so a partially-configured daemon still
// exposes what it has.
type AdminConfig struct {
	Registry *Registry
	Tracer   *Tracer
	Latency  *LatencyTracker
	Flight   *FlightRecorder
	SLO      *SLOTracker
	SlowLog  *SlowQueryLog
}

// AdminMux assembles the operational HTTP surface crsd serves on its
// -admin listener from positional arguments. Kept for older call
// sites; NewAdminMux takes the full config.
func AdminMux(reg *Registry, tracer *Tracer, lat ...*LatencyTracker) *http.ServeMux {
	cfg := AdminConfig{Registry: reg, Tracer: tracer}
	if len(lat) > 0 {
		cfg.Latency = lat[0]
	}
	return NewAdminMux(cfg)
}

// NewAdminMux assembles the operational HTTP surface:
//
//	/metrics       Prometheus text exposition of the registry
//	/trace?n=K     last K retrieval traces as JSON lines (default 16)
//	/top?n=K       hottest K latency keys (predicates) as JSON (default 10)
//	/flight?n=K    last K flight-recorder records as JSONL (default: whole ring)
//	/slo           SLO burn-rate status as one JSON document
//	/slowlog?n=K   last K slow-query captures as JSONL (default: whole ring)
//	/debug/pprof/  the standard Go profiling endpoints
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	reg, tracer, tracker := cfg.Registry, cfg.Tracer, cfg.Latency
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tracer.WriteJSON(w, n)
	})
	mux.HandleFunc("/top", func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "top: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tracker.WriteJSON(w, n)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		n, ok := queryN(w, r, "flight", 0)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = cfg.Flight.WriteJSONL(w, n)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cfg.SLO.WriteJSON(w)
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		n, ok := queryN(w, r, "slowlog", 0)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = cfg.SlowLog.WriteJSONL(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// queryN parses an optional non-negative ?n= query parameter, writing a
// 400 and reporting !ok on garbage.
func queryN(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return def, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 {
		http.Error(w, name+": n must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}
