package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
)

// AdminMux assembles the operational HTTP surface crsd serves on its
// -admin listener:
//
//	/metrics       Prometheus text exposition of reg
//	/trace?n=K     last K retrieval traces as JSON lines (default 16)
//	/top?n=K       hottest K latency keys (predicates) as JSON (default 10)
//	/debug/pprof/  the standard Go profiling endpoints
//
// Any argument may be nil; the corresponding endpoint then serves an
// empty document rather than failing, so a partially-configured daemon
// still exposes what it has. The latency tracker is variadic purely so
// older two-argument call sites keep compiling; at most one is used.
func AdminMux(reg *Registry, tracer *Tracer, lat ...*LatencyTracker) *http.ServeMux {
	var tracker *LatencyTracker
	if len(lat) > 0 {
		tracker = lat[0]
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 16
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tracer.WriteJSON(w, n)
	})
	mux.HandleFunc("/top", func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "top: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tracker.WriteJSON(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
