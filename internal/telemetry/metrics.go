// Package telemetry is CLARE's observability layer: a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms keyed by
// name+labels), a per-retrieval trace recorder that captures one span per
// pipeline stage in both wall-clock and simulated time, and the
// operational HTTP surface (/metrics in Prometheus text format, /trace,
// /debug/pprof) that crsd mounts on its admin listener.
//
// The paper's whole argument rests on where time goes — FS1 index scan vs
// clause fetch vs FS2 partial test unification vs host fallback — so the
// subsystem distinguishes two clocks everywhere: "sim" durations come from
// the component timing models (disk geometry, Table-1 op times), "wall"
// durations from the host actually running the simulation.
//
// Design: callers resolve metric handles once (Registry.Counter et al.
// take a family mutex) and then update them with single atomic operations
// on the hot path. Every handle type is nil-safe — a nil *Registry hands
// out nil handles whose methods no-op — so instrumented packages need no
// "is telemetry on?" branches.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is one metric series' label set. The zero value (nil) means an
// unlabelled series.
type Labels map[string]string

// Kind discriminates the metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "kind?"
}

// DurationBuckets are the default histogram bounds (seconds) for both
// clocks: wide enough to cover sub-microsecond host work and multi-second
// simulated disk scans.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float value (set or adjusted).
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds in the observed unit (seconds for durations); an implicit +Inf
// bucket catches the tail.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// series is one labelled instance within a family.
type series struct {
	labels   Labels
	rendered string // `k1="v1",k2="v2"`, escaped, sorted by key
	metric   any    // *Counter, *Gauge, or *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	series  map[string]*series
	order   []string // insertion order of series keys (stable exports)
}

// Registry holds the metric families. All methods are safe for concurrent
// use, and a nil *Registry is a valid no-op registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter resolves (creating on first use) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.resolve(name, help, KindCounter, nil, labels)
	if m == nil {
		return nil
	}
	return m.(*Counter)
}

// Gauge resolves (creating on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.resolve(name, help, KindGauge, nil, labels)
	if m == nil {
		return nil
	}
	return m.(*Gauge)
}

// Histogram resolves (creating on first use) the histogram name{labels}.
// buckets nil means DurationBuckets. The first resolution of a name fixes
// its buckets; later calls reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	m := r.resolve(name, help, KindHistogram, buckets, labels)
	if m == nil {
		return nil
	}
	return m.(*Histogram)
}

func (r *Registry) resolve(name, help string, kind Kind, buckets []float64, labels Labels) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if kind == KindHistogram && buckets == nil {
			buckets = DurationBuckets
		}
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		// Programmer error (one name, two kinds): hand back a detached
		// metric rather than corrupting the family or panicking a server.
		return detached(kind, buckets)
	}
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s.metric
	}
	s := &series{labels: copyLabels(labels), rendered: key, metric: detached(f.kind, f.buckets)}
	f.series[key] = s
	f.order = append(f.order, key)
	return s.metric
}

func detached(kind Kind, buckets []float64) any {
	switch kind {
	case KindCounter:
		return &Counter{}
	case KindGauge:
		return &Gauge{}
	default:
		if buckets == nil {
			buckets = DurationBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// renderLabels canonicalises a label set into the Prometheus inner form,
// sorted by key with values escaped.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(l[k]))
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", "\\\\", "\n", "\\n", "\"", "\\\"").Replace(v)
}

// SeriesValue is one series' current reading, as reported by Gather.
type SeriesValue struct {
	Name   string
	Labels Labels
	Kind   Kind
	// Value is the counter/gauge reading; for histograms it is the sum of
	// observations.
	Value float64
	// Count is the histogram observation count (0 otherwise).
	Count int64
}

// Gather snapshots every series in registration order — the machine-
// readable export consumers like clarebench build their reports from.
func (r *Registry) Gather() []SeriesValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SeriesValue
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			sv := SeriesValue{Name: f.name, Labels: s.labels, Kind: f.kind}
			switch m := s.metric.(type) {
			case *Counter:
				sv.Value = float64(m.Value())
			case *Gauge:
				sv.Value = m.Value()
			case *Histogram:
				sv.Value = m.Sum()
				sv.Count = m.Count()
			}
			out = append(out, sv)
		}
	}
	return out
}
