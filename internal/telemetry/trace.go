package telemetry

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one stage of a retrieval: encode, query-cache probe, board
// lease, an FS1 chunk scan, a disk access or stream, an FS2 match on one
// board, host matching. Spans form a tree within their trace via Parent
// (span IDs start at 1; the root's Parent is 0).
//
// Every span carries both clocks: Wall is host time actually spent, Sim
// is the component model's simulated duration (zero for stages that have
// no hardware analogue, like the query-cache probe).
type Span struct {
	ID     int               `json:"id"`
	Parent int               `json:"parent"`
	Name   string            `json:"name"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Start  time.Time         `json:"start"`
	Wall   time.Duration     `json:"wall_ns"`
	Sim    time.Duration     `json:"sim_ns"`

	tr *Trace
}

// SetAttr attaches a key/value to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// AddSim accumulates simulated time on the span.
func (s *Span) AddSim(d time.Duration) {
	if s == nil {
		return
	}
	s.Sim += d
}

// End stamps the span's wall duration from its start time. Safe to call
// once per span; later calls overwrite (longest measurement wins the
// final write).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Wall = time.Since(s.Start)
}

// TraceContext names a position in a (possibly remote) trace: the trace
// ID and the span under which further work should attach. It is what the
// CRS wire protocol carries in the RETRIEVE trace header, so a backend's
// span tree can be stitched back into the caller's.
type TraceContext struct {
	TraceID    uint64
	ParentSpan int
}

// String renders the wire form, "<traceid>:<parentspan>".
func (tc TraceContext) String() string {
	return fmt.Sprintf("%d:%d", tc.TraceID, tc.ParentSpan)
}

// ParseTraceContext parses the wire form produced by String.
func ParseTraceContext(s string) (TraceContext, error) {
	idText, spanText, ok := strings.Cut(s, ":")
	if !ok {
		return TraceContext{}, fmt.Errorf("telemetry: bad trace context %q", s)
	}
	id, err := strconv.ParseUint(idText, 10, 64)
	if err != nil {
		return TraceContext{}, fmt.Errorf("telemetry: bad trace id in %q", s)
	}
	parent, err := strconv.Atoi(spanText)
	if err != nil || parent < 0 {
		return TraceContext{}, fmt.Errorf("telemetry: bad parent span in %q", s)
	}
	return TraceContext{TraceID: id, ParentSpan: parent}, nil
}

// Trace is one retrieval's span tree. Span creation and grafting are
// safe for concurrent use (scatter-gather fan-out builds one trace from
// several worker goroutines); a trace becomes immutable once handed to
// Tracer.Finish, so exports need no further locking.
type Trace struct {
	// TraceID is unique per tracer.
	TraceID uint64 `json:"trace"`
	// Name is the root operation, e.g. "retrieve".
	Name string `json:"name"`
	// Begin is when the trace opened.
	Begin time.Time `json:"begin"`
	// Remote, when non-nil, is the caller's trace context this trace was
	// started under: the caller's trace ID and the caller-side span the
	// root logically hangs from. Cross-process stitching keys on it.
	Remote *TraceContext `json:"remote,omitempty"`
	// Spans holds the tree in creation order; Spans[0] is the root.
	Spans []*Span `json:"spans"`

	mu sync.Mutex
}

// Span opens a child span under parent (nil parent attaches to the root;
// for the first span of the trace it creates the root itself). Nil-safe:
// a nil trace returns a nil span, and every Span method accepts a nil
// receiver, so untraced runs pay only a pointer test. Safe for
// concurrent callers.
func (t *Trace) Span(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	pid := 0
	if parent != nil {
		pid = parent.ID
	} else if len(t.Spans) > 0 {
		pid = t.Spans[0].ID
	}
	s := &Span{ID: len(t.Spans) + 1, Parent: pid, Name: name, Start: time.Now(), tr: t}
	t.Spans = append(t.Spans, s)
	t.mu.Unlock()
	return s
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.Spans) == 0 {
		return nil
	}
	return t.Spans[0]
}

// WireSpan is the compact span form carried over the CRS wire when a
// reply appends its trace subtree. Field names are shortened to keep the
// serialized tree small; durations travel as nanoseconds.
type WireSpan struct {
	ID     int               `json:"i"`
	Parent int               `json:"p"`
	Name   string            `json:"n"`
	Attrs  map[string]string `json:"a,omitempty"`
	Start  time.Time         `json:"t"`
	Wall   int64             `json:"w"`
	Sim    int64             `json:"s"`
}

// MaxWireSpans bounds one serialized subtree: a chunked fs1+fs2 trace
// over a big predicate can carry thousands of chunk spans, and the wire
// reply must stay within one protocol line. A truncated tree keeps its
// earliest spans (the tree reads top-down) and marks the root attr
// "truncated".
const MaxWireSpans = 512

// Wire snapshots the trace's spans (up to max; <= 0 means MaxWireSpans)
// in creation order for wire serialization.
func (t *Trace) Wire(max int) []WireSpan {
	if t == nil {
		return nil
	}
	if max <= 0 {
		max = MaxWireSpans
	}
	t.mu.Lock()
	spans := t.Spans
	truncated := len(spans) > max
	if truncated {
		spans = spans[:max]
	}
	out := make([]WireSpan, len(spans))
	for i, s := range spans {
		out[i] = WireSpan{ID: s.ID, Parent: s.Parent, Name: s.Name, Attrs: s.Attrs,
			Start: s.Start, Wall: int64(s.Wall), Sim: int64(s.Sim)}
	}
	t.mu.Unlock()
	if truncated && len(out) > 0 {
		// Copy-on-write the root attrs: the live span map must not gain a
		// wire-only marker.
		attrs := make(map[string]string, len(out[0].Attrs)+1)
		for k, v := range out[0].Attrs {
			attrs[k] = v
		}
		attrs["truncated"] = "true"
		out[0].Attrs = attrs
	}
	return out
}

// EncodeWireSpans serializes a span subtree into a single opaque token
// (base64 of compact JSON) safe to embed in one wire-protocol line.
func EncodeWireSpans(spans []WireSpan) string {
	if len(spans) == 0 {
		return ""
	}
	blob, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return base64.RawStdEncoding.EncodeToString(blob)
}

// DecodeWireSpans reverses EncodeWireSpans. An empty token decodes to an
// empty tree.
func DecodeWireSpans(tok string) ([]WireSpan, error) {
	if tok == "" {
		return nil, nil
	}
	blob, err := base64.RawStdEncoding.DecodeString(tok)
	if err != nil {
		return nil, fmt.Errorf("telemetry: bad wire trace token: %w", err)
	}
	var spans []WireSpan
	if err := json.Unmarshal(blob, &spans); err != nil {
		return nil, fmt.Errorf("telemetry: bad wire trace payload: %w", err)
	}
	return spans, nil
}

// Graft splices a remote span subtree under parent (nil parent attaches
// to the root): remote IDs are remapped into this trace's ID space with
// parent links preserved, and each grafted span records its origin ID in
// attr "remote_span". Safe for concurrent callers. Remote spans whose
// parent is outside the subtree (the remote root, Parent 0 or unknown)
// hang directly from parent.
func (t *Trace) Graft(parent *Span, sub []WireSpan) {
	if t == nil || len(sub) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := 0
	if parent != nil {
		base = parent.ID
	} else if len(t.Spans) > 0 {
		base = t.Spans[0].ID
	}
	idMap := make(map[int]int, len(sub))
	for _, ws := range sub {
		id := len(t.Spans) + 1
		idMap[ws.ID] = id
		pid := base
		if mapped, ok := idMap[ws.Parent]; ok && ws.Parent != ws.ID {
			pid = mapped
		}
		attrs := make(map[string]string, len(ws.Attrs)+1)
		for k, v := range ws.Attrs {
			attrs[k] = v
		}
		attrs["remote_span"] = strconv.Itoa(ws.ID)
		t.Spans = append(t.Spans, &Span{
			ID: id, Parent: pid, Name: ws.Name, Attrs: attrs,
			Start: ws.Start, Wall: time.Duration(ws.Wall), Sim: time.Duration(ws.Sim), tr: t,
		})
	}
}

// Tracer records finished traces in a ring buffer (newest evicts
// oldest), the store behind crsd's /trace endpoint. The ring can be
// resized at runtime (crsd -trace-buf governs the boot size).
type Tracer struct {
	mu     sync.Mutex
	ring   []*Trace
	next   int
	filled bool
	nextID atomic.Uint64
}

// DefaultTraceRing is the ring capacity when NewTracer is given n <= 0.
const DefaultTraceRing = 64

// NewTracer returns a tracer retaining the last n traces.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceRing
	}
	return &Tracer{ring: make([]*Trace, n)}
}

// Start opens a trace whose root span carries name. Nil-safe: a nil
// tracer returns a nil trace.
func (tr *Tracer) Start(name string) *Trace {
	return tr.StartRemote(name, nil)
}

// StartRemote is Start joining a caller's trace: the new trace records
// tc so its span tree can be stitched back under the caller's parent
// span. tc nil is plain Start.
func (tr *Tracer) StartRemote(name string, tc *TraceContext) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{TraceID: tr.nextID.Add(1), Name: name, Begin: time.Now()}
	if tc != nil {
		ctx := *tc
		t.Remote = &ctx
	}
	t.Span(nil, name) // root
	return t
}

// Finish records a completed trace into the ring. Nil-safe on both sides.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.filled = true
	}
	tr.mu.Unlock()
}

// Resize changes the ring capacity, preserving the newest traces that
// fit. Safe under concurrent Start/Finish: Start never touches the ring,
// and Finish serializes on the same mutex. n <= 0 means DefaultTraceRing.
func (tr *Tracer) Resize(n int) {
	if tr == nil {
		return
	}
	if n <= 0 {
		n = DefaultTraceRing
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n == len(tr.ring) {
		return
	}
	all := tr.lastLocked(0)
	if len(all) > n {
		all = all[len(all)-n:]
	}
	tr.ring = make([]*Trace, n)
	copy(tr.ring, all)
	tr.filled = len(all) == n
	tr.next = len(all) % n
}

// Cap reports the current ring capacity.
func (tr *Tracer) Cap() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.ring)
}

// Last returns up to n of the most recent traces, oldest first. n <= 0
// means the whole ring.
func (tr *Tracer) Last(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	all := tr.lastLocked(0)
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// lastLocked collects the ring's contents oldest-first; the caller holds
// tr.mu.
func (tr *Tracer) lastLocked(_ int) []*Trace {
	var all []*Trace
	if tr.filled {
		all = append(all, tr.ring[tr.next:]...)
		all = append(all, tr.ring[:tr.next]...)
	} else {
		all = append(all, tr.ring[:tr.next]...)
	}
	return all
}

// WriteJSON exports the last n traces as JSON lines, one complete trace
// (with its span tree) per line — grep-able, tail-able, and trivially
// parseable.
func (tr *Tracer) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, t := range tr.Last(n) {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}
