package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one stage of a retrieval: encode, query-cache probe, board
// lease, an FS1 chunk scan, a disk access or stream, an FS2 match on one
// board, host matching. Spans form a tree within their trace via Parent
// (span IDs start at 1; the root's Parent is 0).
//
// Every span carries both clocks: Wall is host time actually spent, Sim
// is the component model's simulated duration (zero for stages that have
// no hardware analogue, like the query-cache probe).
type Span struct {
	ID     int               `json:"id"`
	Parent int               `json:"parent"`
	Name   string            `json:"name"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Start  time.Time         `json:"start"`
	Wall   time.Duration     `json:"wall_ns"`
	Sim    time.Duration     `json:"sim_ns"`

	tr *Trace
}

// SetAttr attaches a key/value to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// AddSim accumulates simulated time on the span.
func (s *Span) AddSim(d time.Duration) {
	if s == nil {
		return
	}
	s.Sim += d
}

// End stamps the span's wall duration from its start time. Safe to call
// once per span; later calls overwrite (longest measurement wins the
// final write).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Wall = time.Since(s.Start)
}

// Trace is one retrieval's span tree. A trace is built by a single
// goroutine (the retrieval) and becomes immutable once handed to
// Tracer.Finish, so exports need no span-level locking.
type Trace struct {
	// TraceID is unique per tracer.
	TraceID uint64 `json:"trace"`
	// Name is the root operation, e.g. "retrieve".
	Name string `json:"name"`
	// Begin is when the trace opened.
	Begin time.Time `json:"begin"`
	// Spans holds the tree in creation order; Spans[0] is the root.
	Spans []*Span `json:"spans"`
}

// Span opens a child span under parent (nil parent attaches to the root;
// for the first span of the trace it creates the root itself). Nil-safe:
// a nil trace returns a nil span, and every Span method accepts a nil
// receiver, so untraced runs pay only a pointer test.
func (t *Trace) Span(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	pid := 0
	if parent != nil {
		pid = parent.ID
	} else if len(t.Spans) > 0 {
		pid = t.Spans[0].ID
	}
	s := &Span{ID: len(t.Spans) + 1, Parent: pid, Name: name, Start: time.Now(), tr: t}
	t.Spans = append(t.Spans, s)
	return s
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil || len(t.Spans) == 0 {
		return nil
	}
	return t.Spans[0]
}

// Tracer records finished traces in a fixed-size ring buffer (newest
// evicts oldest), the store behind crsd's /trace endpoint.
type Tracer struct {
	mu     sync.Mutex
	ring   []*Trace
	next   int
	filled bool
	nextID atomic.Uint64
}

// DefaultTraceRing is the ring capacity when NewTracer is given n <= 0.
const DefaultTraceRing = 64

// NewTracer returns a tracer retaining the last n traces.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceRing
	}
	return &Tracer{ring: make([]*Trace, n)}
}

// Start opens a trace whose root span carries name. Nil-safe: a nil
// tracer returns a nil trace.
func (tr *Tracer) Start(name string) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{TraceID: tr.nextID.Add(1), Name: name, Begin: time.Now()}
	t.Span(nil, name) // root
	return t
}

// Finish records a completed trace into the ring. Nil-safe on both sides.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.filled = true
	}
	tr.mu.Unlock()
}

// Last returns up to n of the most recent traces, oldest first. n <= 0
// means the whole ring.
func (tr *Tracer) Last(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var all []*Trace
	if tr.filled {
		all = append(all, tr.ring[tr.next:]...)
		all = append(all, tr.ring[:tr.next]...)
	} else {
		all = append(all, tr.ring[:tr.next]...)
	}
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// WriteJSON exports the last n traces as JSON lines, one complete trace
// (with its span tree) per line — grep-able, tail-able, and trivially
// parseable.
func (tr *Tracer) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, t := range tr.Last(n) {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}
