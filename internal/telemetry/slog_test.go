package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }

func TestLoggerLogfmt(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, false)
	l.now = fixedNow
	l.Info("store loaded", "path", "kb.clare", "cold start", "1.2ms")
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{
		"ts=2026-08-08T12:00:00Z", "level=info", `msg="store loaded"`,
		"path=kb.clare", `"cold start"=1.2ms`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q:\n%s", want, line)
		}
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, true).With("daemon", "crsd")
	l.Warn("slow query captured", "predicate", "p/1", "wall", "7ms")
	var obj map[string]string
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if obj["level"] != "warn" || obj["msg"] != "slow query captured" ||
		obj["daemon"] != "crsd" || obj["predicate"] != "p/1" {
		t.Errorf("object = %v", obj)
	}
	if obj["ts"] == "" {
		t.Error("missing ts")
	}
}

func TestLoggerLevelThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, false)
	l.Debug("dropped")
	l.Info("dropped too")
	l.Warn("kept")
	l.Error("kept too")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("emitted %d lines, want 2:\n%s", got, buf.String())
	}
}

func TestLoggerWithDoesNotMutateParent(t *testing.T) {
	var buf bytes.Buffer
	parent := NewLogger(&buf, LevelInfo, false)
	child := parent.With("shard", 3)
	child.Info("child")
	parent.Info("parent")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], "shard=3") {
		t.Errorf("child line missing bound field: %s", lines[0])
	}
	if strings.Contains(lines[1], "shard=3") {
		t.Errorf("parent inherited child field: %s", lines[1])
	}
}

func TestLoggerJSONEnvelopeWins(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, true)
	l.Info("real message", "msg", "imposter")
	var obj map[string]string
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["msg"] != "real message" {
		t.Errorf("bound field clobbered the envelope: %v", obj)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("dropped")              // must not panic
	l.With("k", "v").Error("gone") // With on nil stays nil
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo, "": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
