// Package workload generates the synthetic knowledge bases and query
// streams the experiments run on, standing in for the Prolog database
// benchmark suite of Williams, Massey & Crammond ([6,7] in the paper) and
// for Warren's "medium-size knowledge based system" sizing (§1: "of the
// order of 3000 predicates, 30000 rules, 3000000 facts, and 30 Mbytes
// total size").
//
// All generators are deterministic in their seed, so experiment tables are
// reproducible run to run.
package workload

import (
	"fmt"
	"math/rand"

	"clare/internal/core"
	"clare/internal/term"
)

// Family generates the §2.1 married_couple workload: N couples of which
// every SameEvery-th shares one name (so shared-variable queries have a
// small true resolution set).
type Family struct {
	Couples   int
	SameEvery int // 0 disables same-name couples
}

// Clauses returns the married_couple/2 facts.
func (f Family) Clauses() []core.ClauseTerm {
	out := make([]core.ClauseTerm, f.Couples)
	for i := 0; i < f.Couples; i++ {
		h := term.Atom(fmt.Sprintf("husband%d", i))
		w := term.Atom(fmt.Sprintf("wife%d", i))
		if f.SameEvery > 0 && i%f.SameEvery == 0 {
			w = h
		}
		out[i] = core.ClauseTerm{Head: term.New("married_couple", h, w)}
	}
	return out
}

// SameNameCount is the number of couples a married_couple(S,S) query truly
// resolves to.
func (f Family) SameNameCount() int {
	if f.SameEvery <= 0 {
		return 0
	}
	return (f.Couples + f.SameEvery - 1) / f.SameEvery
}

// Relation generates a fact-intensive predicate with controllable
// selectivity: Facts rows over Domain distinct key values, so a ground
// probe on the first argument matches ≈Facts/Domain clauses.
type Relation struct {
	Name   string
	Facts  int
	Domain int
	Arity  int // ≥ 2: key, payloads
	Seed   int64
}

// Clauses returns the generated facts.
func (rl Relation) Clauses() []core.ClauseTerm {
	rng := rand.New(rand.NewSource(rl.Seed))
	arity := rl.Arity
	if arity < 2 {
		arity = 2
	}
	out := make([]core.ClauseTerm, rl.Facts)
	for i := 0; i < rl.Facts; i++ {
		args := make([]term.Term, arity)
		args[0] = term.Atom(fmt.Sprintf("k%d", rng.Intn(rl.Domain)))
		for j := 1; j < arity; j++ {
			args[j] = term.Int(int64(rng.Intn(1000)))
		}
		out[i] = core.ClauseTerm{Head: term.New(rl.Name, args...)}
	}
	return out
}

// Probe returns a query goal on key k with fresh variables elsewhere.
func (rl Relation) Probe(k int) term.Term {
	arity := rl.Arity
	if arity < 2 {
		arity = 2
	}
	args := make([]term.Term, arity)
	args[0] = term.Atom(fmt.Sprintf("k%d", k))
	for j := 1; j < arity; j++ {
		args[j] = term.NewVar(fmt.Sprintf("V%d", j))
	}
	return term.New(rl.Name, args...)
}

// Structured generates a predicate whose arguments carry nested structures
// and lists — the workload that separates the matching levels (§2.2).
// Each clause is shape(kI, point(X,Y,Z), [tagA,tagB], addr(street(S),N)).
type Structured struct {
	Name  string
	Facts int
	// DeepVariety controls how many distinct depth-2 values exist: small
	// values mean level 3 can rarely discriminate (more false drops).
	DeepVariety int
	Seed        int64
}

// Clauses returns the generated facts.
func (s Structured) Clauses() []core.ClauseTerm {
	rng := rand.New(rand.NewSource(s.Seed))
	dv := s.DeepVariety
	if dv < 1 {
		dv = 4
	}
	out := make([]core.ClauseTerm, s.Facts)
	for i := 0; i < s.Facts; i++ {
		out[i] = core.ClauseTerm{Head: term.New(s.Name,
			term.Atom(fmt.Sprintf("k%d", i)),
			term.New("point",
				term.Int(int64(rng.Intn(10))),
				term.Int(int64(rng.Intn(10))),
				term.New("depth", term.Int(int64(rng.Intn(dv))))),
			term.List(
				term.Atom(fmt.Sprintf("tag%d", rng.Intn(5))),
				term.Atom(fmt.Sprintf("tag%d", rng.Intn(5)))),
		)}
	}
	return out
}

// ProbeExact returns a fully ground probe equal to clause i's head shape
// with the given sub-values.
func (s Structured) ProbeStructure(x, y, d, t1, t2 int) term.Term {
	return term.New(s.Name,
		term.NewVar("K"),
		term.New("point", term.Int(int64(x)), term.Int(int64(y)),
			term.New("depth", term.Int(int64(d)))),
		term.List(term.Atom(fmt.Sprintf("tag%d", t1)), term.Atom(fmt.Sprintf("tag%d", t2))),
	)
}

// Rules generates a rule-intensive predicate: heads with variable
// arguments and real bodies, plus a few ground facts mixed in user order —
// the §1 "mixed relation" a coupled system cannot store.
type Rules struct {
	Name  string
	Rules int
	Facts int
	Seed  int64
}

// Clauses returns rules and facts interleaved deterministically.
func (r Rules) Clauses() []core.ClauseTerm {
	rng := rand.New(rand.NewSource(r.Seed))
	total := r.Rules + r.Facts
	out := make([]core.ClauseTerm, 0, total)
	ri, fi := 0, 0
	for len(out) < total {
		mkRule := ri < r.Rules && (fi >= r.Facts || rng.Intn(total) < r.Rules)
		if mkRule {
			x := term.NewVar("X")
			out = append(out, core.ClauseTerm{
				Head: term.New(r.Name, x, term.Atom(fmt.Sprintf("class%d", ri%7))),
				Body: term.New("helper", x, term.Int(int64(ri))),
			})
			ri++
		} else {
			out = append(out, core.ClauseTerm{
				Head: term.New(r.Name, term.Atom(fmt.Sprintf("c%d", fi)), term.Atom(fmt.Sprintf("class%d", fi%7))),
			})
			fi++
		}
	}
	return out
}

// WarrenKB scales Warren's medium-size knowledge base (§1). Scale 1.0
// means 3000 predicates / 30000 rules / 3,000,000 facts; the default
// experiments run a documented fraction of it.
type WarrenKB struct {
	Scale float64
	Seed  int64
}

// Dimensions returns the scaled predicate/rule/fact counts.
func (w WarrenKB) Dimensions() (preds, rules, facts int) {
	s := w.Scale
	if s <= 0 {
		s = 0.01
	}
	preds = max(1, int(3000*s))
	rules = max(1, int(30000*s))
	facts = max(1, int(3_000_000*s))
	return preds, rules, facts
}

// Predicate is one generated predicate's clause set.
type Predicate struct {
	Name    string
	Clauses []core.ClauseTerm
}

// Generate materialises the scaled knowledge base: facts and rules are
// spread over the predicates with a skew (some predicates much larger than
// others, as real KBs are).
func (w WarrenKB) Generate() []Predicate {
	preds, rules, facts := w.Dimensions()
	rng := rand.New(rand.NewSource(w.Seed))
	out := make([]Predicate, preds)
	for i := range out {
		out[i].Name = fmt.Sprintf("pred%d", i)
	}
	// Zipf-ish skew: predicate i gets weight 1/(i+1).
	weights := make([]float64, preds)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		sum += weights[i]
	}
	alloc := func(total int, f func(p *Predicate, n int)) {
		for i := range out {
			n := int(float64(total) * weights[i] / sum)
			if n == 0 && total > 0 {
				n = 1
			}
			f(&out[i], n)
		}
	}
	alloc(facts, func(p *Predicate, n int) {
		for j := 0; j < n; j++ {
			p.Clauses = append(p.Clauses, core.ClauseTerm{
				Head: term.New(p.Name,
					term.Atom(fmt.Sprintf("e%d", rng.Intn(n+1))),
					term.Int(int64(j))),
			})
		}
	})
	alloc(rules, func(p *Predicate, n int) {
		for j := 0; j < n; j++ {
			x := term.NewVar("X")
			p.Clauses = append(p.Clauses, core.ClauseTerm{
				Head: term.New(p.Name, x, term.Int(int64(-j-1))),
				Body: term.New("aux", x),
			})
		}
	})
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WideFacts generates facts of the given arity — the arity sweep used to
// demonstrate the 12-argument encoding truncation (§2.1).
type WideFacts struct {
	Name  string
	Facts int
	Arity int
	// DifferOnlyAt makes all facts identical except at this 0-based
	// argument index (so probes past the FS1 limit false-drop).
	DifferOnlyAt int
}

// Clauses returns the generated facts.
func (wf WideFacts) Clauses() []core.ClauseTerm {
	out := make([]core.ClauseTerm, wf.Facts)
	for i := 0; i < wf.Facts; i++ {
		args := make([]term.Term, wf.Arity)
		for j := range args {
			if j == wf.DifferOnlyAt {
				args[j] = term.Atom(fmt.Sprintf("v%d", i))
			} else {
				args[j] = term.Atom(fmt.Sprintf("const%d", j))
			}
		}
		out[i] = core.ClauseTerm{Head: term.New(wf.Name, args...)}
	}
	return out
}

// Probe returns a goal selecting the fact whose distinguishing argument is
// vI.
func (wf WideFacts) Probe(i int) term.Term {
	args := make([]term.Term, wf.Arity)
	for j := range args {
		if j == wf.DifferOnlyAt {
			args[j] = term.Atom(fmt.Sprintf("v%d", i))
		} else {
			args[j] = term.Atom(fmt.Sprintf("const%d", j))
		}
	}
	return term.New(wf.Name, args...)
}
