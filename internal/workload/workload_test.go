package workload

import (
	"testing"

	"clare/internal/term"
	"clare/internal/unify"
)

func TestFamilyGeneration(t *testing.T) {
	f := Family{Couples: 20, SameEvery: 4}
	cls := f.Clauses()
	if len(cls) != 20 {
		t.Fatalf("clauses = %d", len(cls))
	}
	same := 0
	for _, c := range cls {
		cc := c.Head.(*term.Compound)
		if cc.Functor != "married_couple" || len(cc.Args) != 2 {
			t.Fatalf("bad head %v", c.Head)
		}
		if term.Equal(cc.Args[0], cc.Args[1]) {
			same++
		}
	}
	if same != f.SameNameCount() || same != 5 {
		t.Errorf("same-name couples = %d, want %d", same, f.SameNameCount())
	}
	if (Family{Couples: 10}).SameNameCount() != 0 {
		t.Error("SameEvery=0 should have no same-name couples")
	}
}

func TestRelationSelectivity(t *testing.T) {
	rl := Relation{Name: "emp", Facts: 1000, Domain: 50, Arity: 3, Seed: 7}
	cls := rl.Clauses()
	if len(cls) != 1000 {
		t.Fatalf("facts = %d", len(cls))
	}
	probe := rl.Probe(7)
	hits := 0
	for _, c := range cls {
		if unify.Unifiable(probe, term.Rename(c.Head)) {
			hits++
		}
	}
	// Expected ≈ Facts/Domain = 20; allow generous statistical slack.
	if hits < 5 || hits > 60 {
		t.Errorf("probe hits = %d, expected ≈20", hits)
	}
	// Determinism.
	again := Relation{Name: "emp", Facts: 1000, Domain: 50, Arity: 3, Seed: 7}.Clauses()
	for i := range cls {
		if cls[i].Head.String() != again[i].Head.String() {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestStructuredShapes(t *testing.T) {
	s := Structured{Name: "shape", Facts: 50, DeepVariety: 3, Seed: 1}
	cls := s.Clauses()
	if len(cls) != 50 {
		t.Fatalf("facts = %d", len(cls))
	}
	h := cls[0].Head.(*term.Compound)
	if len(h.Args) != 3 {
		t.Fatalf("arity = %d", len(h.Args))
	}
	if term.Depth(h) < 3 {
		t.Errorf("depth = %d, want ≥3 (nested depth marker)", term.Depth(h))
	}
	probe := s.ProbeStructure(1, 2, 0, 1, 2)
	if term.Depth(probe) < 3 {
		t.Error("probe should be deep")
	}
}

func TestRulesMix(t *testing.T) {
	r := Rules{Name: "fly", Rules: 10, Facts: 30, Seed: 3}
	cls := r.Clauses()
	if len(cls) != 40 {
		t.Fatalf("clauses = %d", len(cls))
	}
	rules, facts := 0, 0
	for _, c := range cls {
		if c.Body != nil {
			rules++
		} else {
			facts++
		}
	}
	if rules != 10 || facts != 30 {
		t.Errorf("mix = %d rules, %d facts", rules, facts)
	}
	// Rule heads carry variables (mask-bit material).
	foundVarHead := false
	for _, c := range cls {
		if c.Body != nil && !term.Ground(c.Head) {
			foundVarHead = true
		}
	}
	if !foundVarHead {
		t.Error("rule heads should contain variables")
	}
}

func TestWarrenDimensions(t *testing.T) {
	w := WarrenKB{Scale: 1.0}
	p, r, f := w.Dimensions()
	if p != 3000 || r != 30000 || f != 3_000_000 {
		t.Errorf("full scale = %d/%d/%d, want 3000/30000/3000000 (§1)", p, r, f)
	}
	w = WarrenKB{Scale: 0.001}
	p, r, f = w.Dimensions()
	if p != 3 || r != 30 || f != 3000 {
		t.Errorf("milli scale = %d/%d/%d", p, r, f)
	}
}

func TestWarrenGenerate(t *testing.T) {
	w := WarrenKB{Scale: 0.001, Seed: 11}
	preds := w.Generate()
	if len(preds) != 3 {
		t.Fatalf("predicates = %d", len(preds))
	}
	total := 0
	for _, p := range preds {
		if len(p.Clauses) == 0 {
			t.Errorf("predicate %s empty", p.Name)
		}
		total += len(p.Clauses)
	}
	// Skew: first predicate largest.
	if len(preds[0].Clauses) <= len(preds[2].Clauses) {
		t.Error("expected size skew across predicates")
	}
	if total < 3000 {
		t.Errorf("total clauses = %d, want ≥ scaled facts", total)
	}
}

func TestWideFactsProbe(t *testing.T) {
	wf := WideFacts{Name: "wide", Facts: 10, Arity: 14, DifferOnlyAt: 13}
	cls := wf.Clauses()
	probe := wf.Probe(3)
	hits := 0
	for _, c := range cls {
		if unify.Unifiable(probe, term.Rename(c.Head)) {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("true unifiers = %d, want 1", hits)
	}
	// All facts agree on the first 13 arguments.
	h0 := cls[0].Head.(*term.Compound)
	h1 := cls[1].Head.(*term.Compound)
	for j := 0; j < 13; j++ {
		if !term.Equal(h0.Args[j], h1.Args[j]) {
			t.Errorf("arg %d differs between facts", j)
		}
	}
	if term.Equal(h0.Args[13], h1.Args[13]) {
		t.Error("distinguishing argument should differ")
	}
}
