package plan

import (
	"encoding/json"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"clare/internal/term"
)

func TestShapeOf(t *testing.T) {
	x := term.NewVar("X")
	cases := []struct {
		goal term.Term
		want Shape
	}{
		{term.New("p", term.Atom("a"), term.Int(3)), "gg"},
		{term.New("p", term.Atom("a"), term.NewVar("V")), "gv"},
		{term.New("p", term.NewVar("A"), term.NewVar("B")), "vv"},
		{term.New("p", x, x), "ss"},
		{term.New("p", x, term.New("f", x), term.NewVar("Y")), "ssv"},
		{term.Atom("p"), ""},
	}
	for _, c := range cases {
		if got := ShapeOf(c.goal); got != c.want {
			t.Errorf("ShapeOf(%v) = %q, want %q", c.goal, got, c.want)
		}
	}
	if !Shape("gsv").HasShared() || Shape("gv").HasShared() {
		t.Error("HasShared misclassifies")
	}
	if !Shape("vv").AllVars() || Shape("gv").AllVars() {
		t.Error("AllVars misclassifies")
	}
}

func TestDecideStructuralRules(t *testing.T) {
	p := New(Config{})

	// Shared variables must never plan onto the codeword filter.
	d := p.Decide("married_couple/2", "ss", 1000, 0)
	if d.Mode.UsesFS1() {
		t.Fatalf("shared-var shape planned onto FS1: %v", d)
	}
	if d.Reason != "shared-vars" {
		t.Fatalf("reason = %q, want shared-vars", d.Reason)
	}

	// All-variable shapes constrain nothing: software.
	if d := p.Decide("p/2", "vv", 1000, 0); d.Mode != ModeSoftware {
		t.Fatalf("all-vars shape planned %v, want software", d.Mode)
	}

	// A cold fact-intensive predicate takes the full pipeline, a
	// heavily-masked one skips the useless index scan — the §2.2
	// heuristic recovered from the cost model alone.
	if d := p.Decide("fact/2", "gv", 1000, 0); d.Mode != ModeFS1FS2 {
		t.Fatalf("cold fact pred planned %v, want fs1+fs2", d.Mode)
	}
	if d := p.Decide("rule/2", "gv", 1000, 950); d.Mode != ModeFS2 {
		t.Fatalf("cold masked pred planned %v, want fs2", d.Mode)
	}

	c := p.Counters()
	if c.Decisions != 4 || c.SharedVarSkips != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDecideLearns(t *testing.T) {
	p := New(Config{})
	// Feed the store a regime where fs2 is observed far cheaper than the
	// pipeline for this shape (say FS1 passes everything: sel1 ~ 1).
	for i := 0; i < 10; i++ {
		p.Observe("q/2", "gv", ModeFS1FS2, Observation{
			TotalClauses: 1000, AfterFS1: 1000, AfterFS2: 20,
			Sim: 80 * time.Millisecond,
		})
		p.Observe("q/2", "gv", ModeFS2, Observation{
			TotalClauses: 1000, AfterFS1: 1000, AfterFS2: 20,
			Sim: 8 * time.Millisecond,
		})
	}
	d := p.Decide("q/2", "gv", 1000, 0)
	if d.Mode != ModeFS2 {
		t.Fatalf("learned decision = %v (est %v), want fs2", d.Mode, d.Est)
	}
	if !d.Learned || d.Reason != "learned" {
		t.Fatalf("decision not marked learned: %+v", d)
	}
}

// randObs drives the store with a reproducible observation stream.
func randObs(rng *rand.Rand, p *Planner, n int) {
	preds := []string{"a/2", "b/3", "c/1"}
	shapes := []Shape{"gv", "vg", "ss", "gg", "vvv", "sgs", "v"}
	for i := 0; i < n; i++ {
		total := 10 + rng.Intn(5000)
		a1 := rng.Intn(total + 1)
		a2 := rng.Intn(a1 + 1)
		p.Observe(preds[rng.Intn(len(preds))], shapes[rng.Intn(len(shapes))],
			Mode(rng.Intn(NumModes)), Observation{
				TotalClauses: total, AfterFS1: a1, AfterFS2: a2,
				Sim:  time.Duration(rng.Int63n(int64(time.Second))),
				Wall: time.Duration(rng.Int63n(int64(time.Millisecond))),
			})
	}
}

// decisions samples the planner over a fixed query grid.
func decisions(p *Planner) []Decision {
	var out []Decision
	for _, pred := range []string{"a/2", "b/3", "c/1", "never_seen/4"} {
		for _, shape := range []Shape{"gv", "vg", "ss", "gg", "vvv", "v", ""} {
			for _, clauses := range []int{0, 7, 900, 5000} {
				out = append(out, p.Decide(pred, shape, clauses, clauses/3))
			}
		}
	}
	return out
}

// TestSnapshotRoundTrip is the property test: for any seeded
// observation stream, saving the store and loading it into a fresh
// planner reproduces both the exact store state and every decision.
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := New(Config{})
		randObs(rand.New(rand.NewSource(seed)), p, 400)
		path := filepath.Join(t.TempDir(), "profile.plan")
		if err := p.Save(path); err != nil {
			t.Fatal(err)
		}
		q := New(Config{})
		if err := q.Load(path); err != nil {
			t.Fatal(err)
		}

		pj, _ := json.Marshal(snapshot{Version: snapshotVersion, Alpha: p.alpha, Preds: p.preds})
		qj, _ := json.Marshal(snapshot{Version: snapshotVersion, Alpha: q.alpha, Preds: q.preds})
		if string(pj) != string(qj) {
			t.Fatalf("seed %d: store state did not round-trip", seed)
		}

		dp, dq := decisions(p), decisions(q)
		for i := range dp {
			if dp[i] != dq[i] {
				t.Fatalf("seed %d: decision %d diverged after restore: %+v vs %+v", seed, i, dp[i], dq[i])
			}
		}
	}
}

// TestDeterministicDecisions: two planners fed the same seeded stream
// decide identically — there is no hidden nondeterminism (map order,
// timing) in the decision path.
func TestDeterministicDecisions(t *testing.T) {
	const seed = 42
	p, q := New(Config{}), New(Config{})
	randObs(rand.New(rand.NewSource(seed)), p, 300)
	randObs(rand.New(rand.NewSource(seed)), q, 300)
	dp, dq := decisions(p), decisions(q)
	for i := range dp {
		if dp[i] != dq[i] {
			t.Fatalf("decision %d diverged between identical planners: %+v vs %+v", i, dp[i], dq[i])
		}
	}
}

func TestLoadMissingIsCold(t *testing.T) {
	p := New(Config{})
	if err := p.Load(filepath.Join(t.TempDir(), "absent.plan")); err != nil {
		t.Fatalf("missing snapshot should load cold, got %v", err)
	}
	if p.Predicates() != 0 {
		t.Fatal("cold load left stats behind")
	}
}
