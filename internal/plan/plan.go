// Package plan is the adaptive cost-based retrieval planner: it turns
// the observability the EXPLAIN profiles expose (candidate funnels,
// ghost ratios, per-stage costs) into per-query mode decisions. The
// paper leaves the choice among the four CRS search modes to the caller
// and documents one hard rule — shared-variable queries like
// married_couple(X,X) defeat the superimposed-codeword filter (§2.1) —
// so the planner combines that structural rule with a learned
// per-predicate statistics store: every retrieval's funnel is folded
// into EWMA-decayed selectivity and cost estimates keyed by the query's
// argument shape, and the next decision for that shape reads them back.
//
// The package is deliberately self-contained (it imports only the term
// walker): core attaches a *Planner via Config.Planner, the CRS server
// consults it for auto-mode retrievals, and the store snapshots to disk
// next to the KB store so a restarted server keeps its learned profile.
package plan

import (
	"fmt"

	"clare/internal/term"
)

// Mode is a CRS search mode. The values and wire spellings mirror
// core.SearchMode one for one (the package cannot import core — core
// imports it), so conversion between the two is a checked cast.
type Mode uint8

const (
	ModeSoftware Mode = iota
	ModeFS1
	ModeFS2
	ModeFS1FS2
	// NumModes sizes per-mode arrays.
	NumModes = 4
)

func (m Mode) String() string {
	switch m {
	case ModeSoftware:
		return "software"
	case ModeFS1:
		return "fs1"
	case ModeFS2:
		return "fs2"
	case ModeFS1FS2:
		return "fs1+fs2"
	}
	return "mode?"
}

// UsesFS1 reports whether the mode runs the superimposed-codeword scan —
// the stage shared-variable queries defeat.
func (m Mode) UsesFS1() bool { return m == ModeFS1 || m == ModeFS1FS2 }

// Shape is a query's argument signature: one byte per argument,
// 'g' ground, 'v' a variable occurring once in the goal, 's' an
// argument carrying a variable that occurs elsewhere in the goal too
// (a shared/cross-bound variable). The shape is the statistics store's
// second key: p(const,V) and p(V,const) select very differently through
// the same predicate, and p(X,X) must never be planned onto FS1.
type Shape string

// ShapeOf derives the goal's shape. Atoms (0-arity goals) have the
// empty shape.
func ShapeOf(goal term.Term) Shape {
	c, ok := term.Deref(goal).(*term.Compound)
	if !ok {
		return ""
	}
	counts := make(map[*term.Var]int)
	for _, a := range c.Args {
		countVarOccurrences(a, counts)
	}
	sig := make([]byte, len(c.Args))
	for i, a := range c.Args {
		sig[i] = argClass(a, counts)
	}
	return Shape(sig)
}

// countVarOccurrences tallies every occurrence (not distinct variables:
// p(X,X) counts X twice) of each unbound variable under t.
func countVarOccurrences(t term.Term, counts map[*term.Var]int) {
	switch t := term.Deref(t).(type) {
	case *term.Var:
		counts[t]++
	case *term.Compound:
		for _, a := range t.Args {
			countVarOccurrences(a, counts)
		}
	}
}

// argClass classifies one argument against the goal-wide occurrence
// counts.
func argClass(a term.Term, counts map[*term.Var]int) byte {
	ground := true
	shared := false
	var walk func(t term.Term)
	walk = func(t term.Term) {
		switch t := term.Deref(t).(type) {
		case *term.Var:
			ground = false
			if counts[t] > 1 {
				shared = true
			}
		case *term.Compound:
			for _, sub := range t.Args {
				walk(sub)
			}
		}
	}
	walk(a)
	switch {
	case ground:
		return 'g'
	case shared:
		return 's'
	default:
		return 'v'
	}
}

// HasShared reports whether any argument carries a cross-bound variable.
func (s Shape) HasShared() bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 's' {
			return true
		}
	}
	return false
}

// AllVars reports whether every argument is an unshared variable — the
// unconstrained query, where any filter hardware is pure overhead.
func (s Shape) AllVars() bool {
	for i := 0; i < len(s); i++ {
		if s[i] != 'v' {
			return false
		}
	}
	return true
}

// Decision is one planned retrieval: the chosen mode, why, and the
// per-mode cost estimates (nominal nanoseconds) the choice fell out of.
// It travels into the EXPLAIN profile as the plan.* entry family.
type Decision struct {
	Mode   Mode
	Shape  Shape
	Reason string
	// Learned reports that the decision used per-shape observed stats
	// rather than only the structural cost model.
	Learned bool
	// Est holds the estimated total cost per mode, indexed by Mode.
	Est [NumModes]float64
}

// String renders the decision compactly for logs.
func (d Decision) String() string {
	return fmt.Sprintf("plan{%s shape=%s reason=%s learned=%v}", d.Mode, d.Shape, d.Reason, d.Learned)
}

// DefaultSnapshotPath is where a planner profile lives relative to a
// compiled KB store: right next to it.
func DefaultSnapshotPath(kbPath string) string { return kbPath + ".plan" }
