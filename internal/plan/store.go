package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// The statistics store: per-predicate, per-shape EWMAs of what each
// mode's candidate funnel actually did. Everything here is owned by the
// Planner's mutex; the types are exported only so the snapshot format
// is visible and testable.

// ModeStats is one (predicate, shape, mode) cell.
type ModeStats struct {
	// Count is the lifetime observation count for the cell.
	Count uint64 `json:"count"`
	// SimNS and WallNS are EWMA-decayed per-retrieval costs: the
	// simulated time the retrieval charged and the host wall time it
	// took.
	SimNS  float64 `json:"sim_ns"`
	WallNS float64 `json:"wall_ns"`
	// SelFS1 is the EWMA fraction of the clause file surviving the FS1
	// codeword scan (meaningful only for modes that run FS1). SelOut is
	// the EWMA fraction the whole retrieval returned to the caller —
	// the candidate set the host must full-unify, ghosts included.
	SelFS1 float64 `json:"sel_fs1"`
	SelOut float64 `json:"sel_out"`
}

// ShapeStats aggregates one query shape against one predicate.
type ShapeStats struct {
	Count uint64               `json:"count"`
	Modes [NumModes]*ModeStats `json:"modes"`
}

// PredStats is one predicate's entry: its last-seen clause geometry
// plus the per-shape cells.
type PredStats struct {
	Clauses int                   `json:"clauses"`
	Masked  int                   `json:"masked"`
	Shapes  map[Shape]*ShapeStats `json:"shapes"`
}

// Observation is one completed retrieval's funnel, as the core engine
// reports it.
type Observation struct {
	// TotalClauses, AfterFS1, AfterFS2 are the candidate funnel rungs
	// (AfterFS1 equals TotalClauses when FS1 did not run; AfterFS2 is
	// the returned candidate count).
	TotalClauses int
	AfterFS1     int
	AfterFS2     int
	// Sim is the retrieval's simulated time, Wall its host time.
	Sim  time.Duration
	Wall time.Duration
}

// snapshot is the on-disk profile. The format is additive: unknown
// fields are ignored on load, so older profiles keep loading as the
// store grows fields.
type snapshot struct {
	Version int                   `json:"version"`
	Alpha   float64               `json:"alpha"`
	Preds   map[string]*PredStats `json:"preds"`
}

const snapshotVersion = 1

// ewma folds x into the decayed value v (first observation adopts x).
func ewma(v, x, alpha float64, first bool) float64 {
	if first {
		return x
	}
	return alpha*x + (1-alpha)*v
}

// observeLocked folds one retrieval into the store. Caller holds p.mu.
func (p *Planner) observeLocked(pred string, shape Shape, mode Mode, o Observation) {
	ps := p.preds[pred]
	if ps == nil {
		ps = &PredStats{Shapes: make(map[Shape]*ShapeStats)}
		p.preds[pred] = ps
	}
	if o.TotalClauses > 0 {
		ps.Clauses = o.TotalClauses
	}
	ss := ps.Shapes[shape]
	if ss == nil {
		ss = &ShapeStats{}
		ps.Shapes[shape] = ss
	}
	ss.Count++
	ms := ss.Modes[mode]
	if ms == nil {
		ms = &ModeStats{}
		ss.Modes[mode] = ms
	}
	first := ms.Count == 0
	ms.Count++
	ms.SimNS = ewma(ms.SimNS, float64(o.Sim.Nanoseconds()), p.alpha, first)
	ms.WallNS = ewma(ms.WallNS, float64(o.Wall.Nanoseconds()), p.alpha, first)
	if o.TotalClauses > 0 {
		n := float64(o.TotalClauses)
		if mode.UsesFS1() {
			ms.SelFS1 = ewma(ms.SelFS1, float64(o.AfterFS1)/n, p.alpha, first)
		}
		ms.SelOut = ewma(ms.SelOut, float64(o.AfterFS2)/n, p.alpha, first)
	}
}

// Save writes the profile snapshot atomically (temp file + rename in
// the destination directory).
func (p *Planner) Save(path string) error {
	p.mu.Lock()
	snap := snapshot{Version: snapshotVersion, Alpha: p.alpha, Preds: p.preds}
	blob, err := json.MarshalIndent(&snap, "", "  ")
	p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("plan: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load replaces the store with a saved profile. A missing file is not
// an error — a fresh server simply starts cold.
func (p *Planner) Load(path string) error {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("plan: %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("plan: %s: unknown snapshot version %d", path, snap.Version)
	}
	p.mu.Lock()
	if snap.Alpha > 0 && snap.Alpha <= 1 {
		p.alpha = snap.Alpha
	}
	p.preds = snap.Preds
	if p.preds == nil {
		p.preds = make(map[string]*PredStats)
	}
	for _, ps := range p.preds {
		if ps.Shapes == nil {
			ps.Shapes = make(map[Shape]*ShapeStats)
		}
	}
	p.mu.Unlock()
	return nil
}

// Predicates reports how many predicates the store holds stats for.
func (p *Planner) Predicates() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.preds)
}
