package plan

import "sync"

// Nominal per-clause stage costs, in nanoseconds. These seed the cost
// model before any observations exist; they mirror the simulation's
// defaults (a 50µs M68020-class host unification dominating everything,
// an index-entry scan that is two orders of magnitude cheaper, fetch
// and FS2 match in between), so a cold planner ranks the modes the way
// the paper's §2.2 heuristic does. Once a (predicate, shape, mode) cell
// has minLearnObs observations, its EWMA simulated cost replaces the
// model term outright.
const (
	costHostNS  = 50_000
	costScanNS  = 200
	costFetchNS = 2_000
	costFS2NS   = 5_000
)

// minLearnObs is how many observations a cell needs before its EWMA
// cost is trusted over the structural model.
const minLearnObs = 3

// Config parameterises a Planner.
type Config struct {
	// Alpha is the EWMA decay applied to every observed statistic: the
	// weight of the newest observation (0 means DefaultAlpha).
	Alpha float64
}

// DefaultAlpha balances adaptation speed against noise: ~10
// observations to mostly forget an old regime.
const DefaultAlpha = 0.3

// Counters is a snapshot of the planner's service counters, surfaced
// through the STATS wire section (plan.*).
type Counters struct {
	// Decisions counts Decide calls, ByMode splits them by chosen mode.
	Decisions int64
	ByMode    [NumModes]int64
	// SharedVarSkips counts decisions where a shared-variable shape
	// forced the codeword filter off.
	SharedVarSkips int64
	// Observations counts retrievals folded into the store.
	Observations int64
}

// Planner owns the statistics store and makes mode decisions from it.
// All methods are safe for concurrent use.
type Planner struct {
	mu       sync.Mutex
	alpha    float64
	preds    map[string]*PredStats
	counters Counters
}

// New builds an empty planner.
func New(cfg Config) *Planner {
	alpha := cfg.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Planner{alpha: alpha, preds: make(map[string]*PredStats)}
}

// Observe folds one completed retrieval into the store. Degraded or
// faulted retrievals should not be fed here — their costs describe the
// failure ladder, not the mode.
func (p *Planner) Observe(pred string, shape Shape, mode Mode, o Observation) {
	if p == nil || mode >= NumModes {
		return
	}
	p.mu.Lock()
	p.counters.Observations++
	p.observeLocked(pred, shape, mode, o)
	p.mu.Unlock()
}

// Counters returns the service counters.
func (p *Planner) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// Decide plans one retrieval: the goal's shape plus the predicate's
// clause geometry select among the four modes by estimated total cost
// (retrieval plus the host's full unification of whatever the mode
// returns). Two structural rules short-circuit the cost race:
//
//   - A shape with a cross-bound variable never runs FS1 — shared
//     variables defeat the codeword filter (§2.1), every clause would
//     survive the scan — so the race is FS2 (whose cross-binding check
//     exists for exactly this) against plain software.
//   - An all-variable shape constrains nothing: every clause truly
//     unifies and any filter hardware is pure overhead, so it is
//     matched in software.
//
// Decisions are deterministic functions of the store state: same
// profile, same inputs, same answer.
func (p *Planner) Decide(pred string, shape Shape, clauses, masked int) Decision {
	if p == nil {
		return Decision{Mode: ModeFS1FS2, Shape: shape, Reason: "no-planner"}
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	d := Decision{Shape: shape}
	d.Est, d.Learned = p.estimateLocked(pred, shape, clauses, masked)

	switch {
	case shape.HasShared():
		d.Mode = ModeFS2
		if d.Est[ModeSoftware] < d.Est[ModeFS2] {
			d.Mode = ModeSoftware
		}
		d.Reason = "shared-vars"
		p.counters.SharedVarSkips++
	case len(shape) > 0 && shape.AllVars():
		d.Mode = ModeSoftware
		d.Reason = "all-vars"
	default:
		// Preference order breaks exact ties toward the fuller pipeline.
		d.Mode = ModeFS1FS2
		for _, m := range [...]Mode{ModeFS2, ModeFS1, ModeSoftware} {
			if d.Est[m] < d.Est[d.Mode] {
				d.Mode = m
			}
		}
		d.Reason = "cost-model"
		if d.Learned {
			d.Reason = "learned"
		}
	}
	p.counters.Decisions++
	p.counters.ByMode[d.Mode]++
	// Keep the geometry fresh even before any retrieval is observed.
	ps := p.preds[pred]
	if ps == nil {
		ps = &PredStats{Shapes: make(map[Shape]*ShapeStats)}
		p.preds[pred] = ps
	}
	ps.Clauses, ps.Masked = clauses, masked
	return d
}

// estimateLocked prices every mode for (pred, shape): learned EWMA
// simulated cost where a cell has earned trust, the structural funnel
// model everywhere else, plus the downstream cost of host-unifying the
// mode's returned candidates (ghosts included — that is what a leaky
// filter costs).
func (p *Planner) estimateLocked(pred string, shape Shape, clauses, masked int) (est [NumModes]float64, learned bool) {
	n := float64(clauses)
	maskedFrac := 0.0
	if clauses > 0 {
		maskedFrac = float64(masked) / n
	}
	// Selectivity priors: FS1 passes every masked entry plus a small
	// collision tail; FS2 is an order of magnitude sharper; the stacked
	// filter multiplies.
	sel1 := maskedFrac + 0.05
	if sel1 > 1 {
		sel1 = 1
	}
	out := [NumModes]float64{
		ModeSoftware: 0.05,
		ModeFS1:      sel1,
		ModeFS2:      0.10,
		ModeFS1FS2:   sel1 * 0.2,
	}

	var ss *ShapeStats
	if ps := p.preds[pred]; ps != nil {
		ss = ps.Shapes[shape]
	}
	cell := func(m Mode) *ModeStats {
		if ss == nil {
			return nil
		}
		return ss.Modes[m]
	}
	// Learned selectivities refine the priors as soon as one
	// observation exists; learned costs replace the model only after
	// minLearnObs. FS1 mode returns exactly the codeword scan's
	// survivors, so its output fraction tracks sel1 however sel1 was
	// learned.
	if ms := cell(ModeFS1); ms != nil && ms.Count > 0 {
		sel1 = ms.SelFS1
	} else if ms := cell(ModeFS1FS2); ms != nil && ms.Count > 0 {
		sel1 = ms.SelFS1
	}
	out[ModeFS1] = sel1
	for _, m := range [...]Mode{ModeSoftware, ModeFS2, ModeFS1FS2} {
		if ms := cell(m); ms != nil && ms.Count > 0 {
			out[m] = ms.SelOut
		}
	}

	model := [NumModes]float64{
		ModeSoftware: n * costHostNS,
		ModeFS1:      n*costScanNS + sel1*n*costFetchNS,
		ModeFS2:      n * (costFetchNS + costFS2NS),
		ModeFS1FS2:   n*costScanNS + sel1*n*(costFetchNS+costFS2NS),
	}
	for m := Mode(0); m < NumModes; m++ {
		retrieval := model[m]
		if ms := cell(m); ms != nil && ms.Count >= minLearnObs {
			retrieval = ms.SimNS
			learned = true
		}
		est[m] = retrieval + out[m]*n*costHostNS
	}
	return est, learned
}
