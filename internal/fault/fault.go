// Package fault provides deterministic, seedable fault injection for the
// simulated CLARE hardware. The paper's engine is a physical pipeline —
// disk spindles, a VMEbus card cage, FS2 filter boards — and a production
// deployment must keep serving (degraded, observably) when any of them
// fails. This package is the failure generator the degradation machinery
// in internal/core is tested against.
//
// An Injector holds a set of Rules, each arming one injection site
// (optionally narrowed to one key — a chassis slot or a predicate
// indicator) with a probability-per-probe, an every-Nth-call trigger, or
// both, and an optional total fault budget. Components carry probe calls
// at their hardware operations; a nil *Injector never fires, so the
// probes cost one nil check in production configurations.
//
// All randomness comes from the injector's seed, so a single-goroutine
// fault schedule is exactly reproducible; concurrent probes serialise on
// the injector mutex and stay seedable, though interleaving then depends
// on goroutine scheduling.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clare/internal/telemetry"
)

// Standard injection sites. Sites are plain strings so subsystems can add
// their own without touching this package.
const (
	// SiteDiskRead is a clause-record read off the primary clause file:
	// a bad track or an unrecoverable ECC error under the data stream.
	SiteDiskRead = "disk.read"
	// SiteDiskIndex is a secondary-file (FS1 index) read: the paper's
	// index stream becoming unreadable forces the CRS to abandon FS1
	// filtering and fall back to a full FS2 scan.
	SiteDiskIndex = "disk.index"
	// SiteBus is a VMEbus control-register write that times out: the
	// board stops acknowledging the host.
	SiteBus = "vme.bus"
	// SiteFS2 is an FS2 board fault raised during a search call (a TUE
	// microprogram trap or parity error mid-stream).
	SiteFS2 = "fs2.match"
	// SiteRetrieve is a whole-retrieval fault probed by the CRS itself,
	// keyed by predicate indicator — the hook for predicate-targeted
	// chaos schedules.
	SiteRetrieve = "core.retrieve"
	// SiteWALAppend is a write-ahead-log frame write failing (bad
	// sector under the log file); the log absorbs it with a probe-free
	// retry.
	SiteWALAppend = "wal.append"
	// SiteWALFsync is an fsync of the log failing; the flush is skipped
	// (durability degrades for one policy window) and counted.
	SiteWALFsync = "wal.fsync"
	// SiteWALShip is a primary→replica log-shipping round failing;
	// replication lag grows until the replica trips the staleness bound,
	// like a sick board leaving the rotation.
	SiteWALShip = "wal.ship"
)

// IsKnownSite reports whether site is one of the standard injection
// sites above. Sites are open-ended by design, so an unknown site is
// not an error — but a tool accepting -fault specs can warn, since an
// unknown site usually means a typo that would silently never fire.
func IsKnownSite(site string) bool {
	switch site {
	case SiteDiskRead, SiteDiskIndex, SiteBus, SiteFS2, SiteRetrieve,
		SiteWALAppend, SiteWALFsync, SiteWALShip:
		return true
	}
	return false
}

// ErrInjected is the sentinel every injected fault matches via errors.Is.
var ErrInjected = errors.New("fault: injected")

// Error is one injected fault, carrying the site and key it fired at.
type Error struct {
	Site string
	Key  string
}

func (e *Error) Error() string {
	if e.Key == "" {
		return fmt.Sprintf("fault: injected %s fault", e.Site)
	}
	return fmt.Sprintf("fault: injected %s fault (key %s)", e.Site, e.Key)
}

// Is makes errors.Is(err, ErrInjected) match any injected fault.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Is reports whether err is (or wraps) an injected fault.
func Is(err error) bool { return errors.Is(err, ErrInjected) }

// SiteOf returns the injection site of an injected fault ("" when err is
// not one) — the dispatcher the degradation ladder switches on.
func SiteOf(err error) string {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Site
	}
	return ""
}

// Rule arms one injection site.
type Rule struct {
	// Site is the injection point ("" matches every site).
	Site string
	// Key narrows the rule to one probe key — a chassis slot ("0", "1",
	// ...) or a predicate indicator ("parent/2"). "" matches every key.
	Key string
	// Probability is the chance each matching probe fires, in [0, 1].
	Probability float64
	// Nth fires every Nth matching probe (0 disables the trigger). A rule
	// may combine Nth and Probability; either trigger fires it.
	Nth uint64
	// Limit caps the total faults this rule injects (0 = unlimited).
	Limit uint64
	// Delay turns the rule into a pure-latency injection: a firing probe
	// sleeps for Delay and returns no error, modelling a slow spindle or
	// a saturated bus rather than a broken one. Delay rules count in
	// Delayed(), not Injected().
	Delay time.Duration
}

// ruleState pairs a rule with its probe/fire counters.
type ruleState struct {
	Rule
	probes uint64
	fired  uint64
}

// Injector evaluates rules at component probes. All methods are safe for
// concurrent use, and a nil *Injector is a valid never-firing injector.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*ruleState
	injected atomic.Int64
	delayed  atomic.Int64

	// reg/metrics: per-site fault counters, resolved lazily (sites are
	// open-ended).
	reg   *telemetry.Registry
	met   map[string]*telemetry.Counter
	metMu sync.Mutex
}

// New returns an injector with no rules, seeded for reproducible
// schedules.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), met: make(map[string]*telemetry.Counter)}
}

// Add arms a rule and returns the injector (chainable).
func (i *Injector) Add(r Rule) *Injector {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	i.rules = append(i.rules, &ruleState{Rule: r})
	i.mu.Unlock()
	return i
}

// Instrument wires the injector to a metrics registry: injected faults
// land in clare_faults_injected_total{site=...}.
func (i *Injector) Instrument(reg *telemetry.Registry) {
	if i == nil {
		return
	}
	i.metMu.Lock()
	i.reg = reg
	i.metMu.Unlock()
}

func (i *Injector) siteCounter(site string) *telemetry.Counter {
	i.metMu.Lock()
	defer i.metMu.Unlock()
	if i.reg == nil {
		return nil
	}
	c, ok := i.met[site]
	if !ok {
		c = i.reg.Counter("clare_faults_injected_total", "hardware faults injected per site",
			telemetry.Labels{"site": site})
		i.met[site] = c
	}
	return c
}

// Probe evaluates the armed rules at one injection point. It returns nil
// when no fault fires, or an *Error naming the site. key identifies the
// probing component instance (chassis slot) or subject (predicate).
func (i *Injector) Probe(site, key string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	fired := false
	var delay time.Duration
	for _, rs := range i.rules {
		if rs.Site != "" && rs.Site != site {
			continue
		}
		if rs.Key != "" && rs.Key != key {
			continue
		}
		rs.probes++
		if rs.Limit > 0 && rs.fired >= rs.Limit {
			continue
		}
		if (rs.Nth > 0 && rs.probes%rs.Nth == 0) ||
			(rs.Probability > 0 && i.rng.Float64() < rs.Probability) {
			rs.fired++
			if rs.Delay > 0 {
				delay = rs.Delay
				continue // latency stacks with (and never masks) a real fault
			}
			fired = true
			break
		}
	}
	i.mu.Unlock()
	if delay > 0 {
		// The sleep happens outside the mutex so a slow probe does not
		// serialise every other site behind it.
		i.delayed.Add(1)
		time.Sleep(delay)
	}
	if !fired {
		return nil
	}
	i.injected.Add(1)
	i.siteCounter(site).Inc()
	return &Error{Site: site, Key: key}
}

// Injected reports the total faults fired so far.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	return i.injected.Load()
}

// Delayed reports the total pure-latency injections fired so far.
func (i *Injector) Delayed() int64 {
	if i == nil {
		return 0
	}
	return i.delayed.Load()
}

// ParseRule parses the CLI form of a rule, used by the daemons' -fault
// flags:
//
//	site[@key]=P        probability per probe, e.g. disk.read=0.05
//	site[@key]=1/N      every Nth probe, e.g. fs2.match@2=1/3
//
// Optional comma-separated suffixes: ",limit=L" caps the rule's total
// faults, and ",delay=D" (a Go duration, e.g. 50ms) makes the rule
// inject pure latency — the probe sleeps D and succeeds — instead of an
// error.
func ParseRule(spec string) (Rule, error) {
	var r Rule
	parts := strings.Split(spec, ",")
	body, opts := parts[0], parts[1:]
	lhs, rhs, ok := strings.Cut(body, "=")
	if !ok {
		return r, fmt.Errorf("fault: rule %q: want site[@key]=P or site[@key]=1/N", spec)
	}
	var keyed bool
	r.Site, r.Key, keyed = strings.Cut(lhs, "@")
	if r.Site == "" {
		return r, fmt.Errorf("fault: rule %q: empty site", spec)
	}
	if keyed && r.Key == "" {
		return r, fmt.Errorf("fault: rule %q: empty key after @ (drop the @ to match every key)", spec)
	}
	if num, den, isNth := strings.Cut(rhs, "/"); isNth {
		if num != "1" {
			return r, fmt.Errorf("fault: rule %q: nth trigger must be 1/N", spec)
		}
		n, err := strconv.ParseUint(den, 10, 64)
		if err != nil || n == 0 {
			return r, fmt.Errorf("fault: rule %q: bad N", spec)
		}
		r.Nth = n
	} else {
		p, err := strconv.ParseFloat(rhs, 64)
		if err != nil || p < 0 || p > 1 {
			return r, fmt.Errorf("fault: rule %q: probability must be in [0,1]", spec)
		}
		r.Probability = p
	}
	for _, opt := range opts {
		k, v, _ := strings.Cut(opt, "=")
		switch k {
		case "limit":
			l, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return r, fmt.Errorf("fault: rule %q: bad limit", spec)
			}
			r.Limit = l
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("fault: rule %q: bad delay (want a positive duration like 50ms)", spec)
			}
			r.Delay = d
		default:
			return r, fmt.Errorf("fault: rule %q: unknown option %q", spec, k)
		}
	}
	return r, nil
}
