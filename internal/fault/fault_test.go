package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"clare/internal/telemetry"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	for i := 0; i < 100; i++ {
		if err := inj.Probe(SiteDiskRead, "0"); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	if inj.Injected() != 0 {
		t.Fatalf("nil injector counted faults")
	}
	inj.Add(Rule{Site: SiteDiskRead, Probability: 1})
	inj.Instrument(telemetry.NewRegistry())
}

func TestNthTrigger(t *testing.T) {
	inj := New(1).Add(Rule{Site: SiteFS2, Nth: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if inj.Probe(SiteFS2, "0") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("Nth=3 fired at %v, want %v", fired, want)
	}
}

func TestProbabilityDeterministicAndBounded(t *testing.T) {
	run := func() []int {
		inj := New(42).Add(Rule{Site: SiteDiskRead, Probability: 0.3})
		var fired []int
		for i := 0; i < 200; i++ {
			if inj.Probe(SiteDiskRead, "0") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
}

func TestKeyTargeting(t *testing.T) {
	inj := New(7).Add(Rule{Site: SiteFS2, Key: "2", Probability: 1})
	if err := inj.Probe(SiteFS2, "0"); err != nil {
		t.Fatalf("slot 0 faulted under a slot-2 rule: %v", err)
	}
	err := inj.Probe(SiteFS2, "2")
	if err == nil {
		t.Fatal("slot 2 did not fault")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteFS2 || fe.Key != "2" {
		t.Fatalf("bad fault error: %#v", err)
	}
	if !Is(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("fault error does not match ErrInjected")
	}
	if SiteOf(err) != SiteFS2 {
		t.Fatalf("SiteOf = %q", SiteOf(err))
	}
	if SiteOf(errors.New("other")) != "" {
		t.Fatal("SiteOf matched a non-fault error")
	}
}

func TestLimit(t *testing.T) {
	inj := New(1).Add(Rule{Site: SiteBus, Probability: 1, Limit: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if inj.Probe(SiteBus, "0") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("limit=2 fired %d times", n)
	}
	if inj.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", inj.Injected())
	}
}

func TestInstrumentCountsPerSite(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := New(1).Add(Rule{Probability: 1, Limit: 3})
	inj.Instrument(reg)
	inj.Probe(SiteDiskRead, "0")
	inj.Probe(SiteDiskRead, "0")
	inj.Probe(SiteFS2, "1")
	bySite := map[string]float64{}
	for _, sv := range reg.Gather() {
		if sv.Name == "clare_faults_injected_total" {
			bySite[sv.Labels["site"]] = sv.Value
		}
	}
	if bySite[SiteDiskRead] != 2 || bySite[SiteFS2] != 1 {
		t.Fatalf("per-site counters = %v, want disk.read=2 fs2.match=1", bySite)
	}
}

func TestConcurrentProbes(t *testing.T) {
	inj := New(9).Add(Rule{Probability: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				inj.Probe(SiteDiskRead, "0")
			}
		}()
	}
	wg.Wait()
	n := inj.Injected()
	if n == 0 || n == 4000 {
		t.Fatalf("p=0.5 over 4000 probes fired %d times", n)
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
		bad  bool
	}{
		{spec: "disk.read=0.05", want: Rule{Site: "disk.read", Probability: 0.05}},
		{spec: "fs2.match@2=1/3", want: Rule{Site: "fs2.match", Key: "2", Nth: 3}},
		{spec: "vme.bus=1,limit=4", want: Rule{Site: "vme.bus", Probability: 1, Limit: 4}},
		{spec: "core.retrieve@parent/2=0.5", want: Rule{Site: "core.retrieve", Key: "parent/2", Probability: 0.5}},
		{spec: "nonsense", bad: true},
		{spec: "=0.5", bad: true},
		{spec: "disk.read=2", bad: true},
		{spec: "disk.read=2/3", bad: true},
		{spec: "disk.read=1/0", bad: true},
		{spec: "disk.read=0.5,limit=x", bad: true},
		{spec: "disk.read=0.5,cap=3", bad: true},
		{spec: "", bad: true},
		{spec: "disk.read", bad: true},
		{spec: "disk.read=", bad: true},
		{spec: "disk.read=-0.1", bad: true},
		{spec: "disk.read=1.01", bad: true},
		{spec: "disk.read=abc", bad: true},
		{spec: "disk.read=1/x", bad: true},
		{spec: "disk.read=1/-3", bad: true},
		{spec: "disk.read=1/", bad: true},
		{spec: "disk.read@=0.5", bad: true},
		{spec: "@2=0.5", bad: true},
		{spec: "disk.read=0.5,limit=", bad: true},
		{spec: "disk.read=0.5,limit=-1", bad: true},
		{spec: "disk.read=0.5,", bad: true},
	}
	for _, c := range cases {
		got, err := ParseRule(c.spec)
		if c.bad {
			if err == nil {
				t.Errorf("ParseRule(%q) accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseRuleErrorMessagesNameTheSpec(t *testing.T) {
	// Every rejection must quote the offending spec so a crsd operator
	// can tell which of several repeated -fault flags is broken.
	for _, spec := range []string{"nonsense", "disk.read=2", "disk.read@=0.5", "disk.read=0.5,cap=3"} {
		_, err := ParseRule(spec)
		if err == nil {
			t.Fatalf("ParseRule(%q) accepted", spec)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%q", spec)) {
			t.Errorf("ParseRule(%q) error %q does not quote the spec", spec, err)
		}
	}
}

func TestIsKnownSite(t *testing.T) {
	for _, site := range []string{SiteDiskRead, SiteDiskIndex, SiteBus, SiteFS2, SiteRetrieve} {
		if !IsKnownSite(site) {
			t.Errorf("IsKnownSite(%q) = false", site)
		}
	}
	for _, site := range []string{"", "disk", "disk.write", "fs2", "FS2.match"} {
		if IsKnownSite(site) {
			t.Errorf("IsKnownSite(%q) = true", site)
		}
	}
}
