// Package pif implements the Pseudo In-line Format of the paper's
// Appendix 1 (Table A1): the compiled argument representation that the FS2
// hardware walks during partial test unification.
//
// In PIF, each argument is an 8-bit type tag followed by a 24-bit content
// field (together one 32-bit word) with an optional 32-bit extension word.
// Facts and rule heads are compiled into PIF "ready for partial test
// unification" (§2.2); queries are compiled the same way with the
// query-side variable tags.
//
// Layout decisions the paper leaves open (documented substitutions):
//
//   - Nested complex terms inside an in-line complex term are encoded as
//     pointer words so the in-line run stays flat; pointer targets live in
//     a per-clause heap of words carried alongside the argument stream.
//   - An unterminated (tail-variable) list encodes its elements followed by
//     one variable word for the tail.
//   - A heap object is a count word (full arity), then for structures a
//     functor word, then the element words.
//   - In-line integers are 28-bit two's complement (4 tag nibble bits +
//     24 content bits), exactly the space Table A1 gives them.
package pif

import (
	"errors"
	"fmt"
	"strings"

	"clare/internal/symtab"
	"clare/internal/term"
)

// Tag is the 8-bit PIF type tag.
type Tag uint8

// Fixed tags from Table A1.
const (
	TagAnonVar Tag = 0x20 // anonymous variable
	TagSubDV   Tag = 0x24 // subsequent database variable
	TagSubQV   Tag = 0x25 // subsequent query variable
	TagFirstDV Tag = 0x26 // first-occurrence database variable
	TagFirstQV Tag = 0x27 // first-occurrence query variable

	TagAtomPtr  Tag = 0x08 // atom: content is a symbol table offset
	TagFloatPtr Tag = 0x09 // float: content is a symbol table offset

	// TagIntBase..TagIntBase|0x0F: integer in-line, low nibble is the most
	// significant nibble of the 28-bit value.
	TagIntBase Tag = 0x10
)

// Complex-term tag groups: the high 3 bits select the group, the low 5 bits
// carry the arity (1..31) for in-line forms.
const (
	GroupStructPtr    Tag = 0x40 // 010a aaaa
	GroupStructInline Tag = 0x60 // 011a aaaa
	GroupUListPtr     Tag = 0x80 // 100a aaaa (unterminated list pointer)
	GroupUListInline  Tag = 0xA0 // 101a aaaa (unterminated list in-line)
	GroupListPtr      Tag = 0xC0 // 110a aaaa (terminated list pointer)
	GroupListInline   Tag = 0xE0 // 111a aaaa (terminated list in-line)

	groupMask Tag = 0xE0
	arityMask Tag = 0x1F
)

// MaxInlineArity is the largest arity an in-line complex term can carry in
// its 5 arity bits.
const MaxInlineArity = 31

// MaxVarSlots bounds the distinct variables per clause or query: the TUE
// DB/Query memories are addressed by an 8-bit field (§3.3).
const MaxVarSlots = 256

// Integer in-line range: 28-bit two's complement.
const (
	MaxInlineInt = 1<<27 - 1
	MinInlineInt = -(1 << 27)
)

// Word is one 32-bit PIF word: tag in the top byte, content in the low 24
// bits.
type Word uint32

// MakeWord assembles a word from tag and 24-bit content.
func MakeWord(t Tag, content uint32) Word {
	return Word(uint32(t)<<24 | content&0xFFFFFF)
}

// Tag returns the word's type tag.
func (w Word) Tag() Tag { return Tag(w >> 24) }

// Content returns the word's 24-bit content field.
func (w Word) Content() uint32 { return uint32(w) & 0xFFFFFF }

// Category classifies tags the way Appendix 1 does: simple terms, variable
// terms and complex terms.
type Category uint8

const (
	CatSimple Category = iota
	CatVariable
	CatComplex
	CatInvalid
)

func (c Category) String() string {
	switch c {
	case CatSimple:
		return "simple"
	case CatVariable:
		return "variable"
	case CatComplex:
		return "complex"
	default:
		return "invalid"
	}
}

// CategoryOf returns the Appendix-1 category of a tag.
func CategoryOf(t Tag) Category {
	switch {
	case t == TagAnonVar, t == TagSubDV, t == TagSubQV, t == TagFirstDV, t == TagFirstQV:
		return CatVariable
	case t == TagAtomPtr, t == TagFloatPtr, t&0xF0 == Tag(TagIntBase):
		return CatSimple
	case t&0xC0 != 0:
		return CatComplex
	default:
		return CatInvalid
	}
}

// IsVariable reports whether t is one of the five variable tags.
func IsVariable(t Tag) bool { return CategoryOf(t) == CatVariable }

// IsInt reports whether t is an in-line integer tag.
func IsInt(t Tag) bool { return t&0xF0 == Tag(TagIntBase) }

// IsComplex reports whether t is a complex-term tag.
func IsComplex(t Tag) bool { return CategoryOf(t) == CatComplex }

// Group returns the complex-term group bits of t (meaningless for
// non-complex tags).
func Group(t Tag) Tag { return t & groupMask }

// InlineArity returns the arity bits of a complex tag.
func InlineArity(t Tag) int { return int(t & arityMask) }

// IsList reports whether t is one of the four list tags.
func IsList(t Tag) bool {
	g := Group(t)
	return g == GroupUListPtr || g == GroupUListInline || g == GroupListPtr || g == GroupListInline
}

// IsUnterminated reports whether t is an unterminated-list tag (the
// paper's "unlimited list": a list with a variable tail).
func IsUnterminated(t Tag) bool {
	g := Group(t)
	return g == GroupUListPtr || g == GroupUListInline
}

// IsStruct reports whether t is a structure tag.
func IsStruct(t Tag) bool {
	g := Group(t)
	return g == GroupStructPtr || g == GroupStructInline
}

// IsPointer reports whether t is a pointer-form complex tag.
func IsPointer(t Tag) bool {
	g := Group(t)
	return g == GroupStructPtr || g == GroupUListPtr || g == GroupListPtr
}

// TagName returns a human-readable tag name (for disassembly).
func TagName(t Tag) string {
	switch t {
	case TagAnonVar:
		return "AnonVar"
	case TagSubDV:
		return "SubDV"
	case TagSubQV:
		return "SubQV"
	case TagFirstDV:
		return "FirstDV"
	case TagFirstQV:
		return "FirstQV"
	case TagAtomPtr:
		return "AtomPtr"
	case TagFloatPtr:
		return "FloatPtr"
	}
	if IsInt(t) {
		return "IntInline"
	}
	switch Group(t) {
	case GroupStructPtr:
		return fmt.Sprintf("StructPtr/%d", InlineArity(t))
	case GroupStructInline:
		return fmt.Sprintf("StructInline/%d", InlineArity(t))
	case GroupUListPtr:
		return fmt.Sprintf("UListPtr/%d", InlineArity(t))
	case GroupUListInline:
		return fmt.Sprintf("UListInline/%d", InlineArity(t))
	case GroupListPtr:
		return fmt.Sprintf("ListPtr/%d", InlineArity(t))
	case GroupListInline:
		return fmt.Sprintf("ListInline/%d", InlineArity(t))
	}
	return fmt.Sprintf("Tag(0x%02x)", uint8(t))
}

// Side selects the variable tag family used while encoding: clauses from
// the data/knowledge base use DB tags, queries use query tags.
type Side uint8

const (
	// DBSide encodes data/knowledge-base clauses (FirstDV/SubDV).
	DBSide Side = iota
	// QuerySide encodes queries (FirstQV/SubQV).
	QuerySide
)

func (s Side) firstTag() Tag {
	if s == QuerySide {
		return TagFirstQV
	}
	return TagFirstDV
}

func (s Side) subTag() Tag {
	if s == QuerySide {
		return TagSubQV
	}
	return TagSubDV
}

// Encoded is a compiled PIF term: the flat argument stream plus the heap of
// pointer targets.
type Encoded struct {
	Functor string
	Arity   int
	Args    []Word // flat top-level stream, in-line elements included
	Heap    []Word // pointer targets
	NumVars int    // distinct named variables (slots 0..NumVars-1)
	// VarNames maps slot -> source variable name (decode support).
	VarNames []string
	Side     Side
}

// SizeBytes is the clause's size as streamed from disk: 4 bytes per word.
func (e *Encoded) SizeBytes() int { return 4 * (len(e.Args) + len(e.Heap)) }

// String disassembles the encoded term.
func (e *Encoded) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d vars=%d\n", e.Functor, e.Arity, e.NumVars)
	for i, w := range e.Args {
		fmt.Fprintf(&b, "  arg[%02d] %-14s content=%d\n", i, TagName(w.Tag()), w.Content())
	}
	for i, w := range e.Heap {
		fmt.Fprintf(&b, " heap[%02d] %-14s content=%d\n", i, TagName(w.Tag()), w.Content())
	}
	return b.String()
}

// Encoder compiles terms to PIF against a shared symbol table.
type Encoder struct {
	Symbols *symtab.Table
}

// NewEncoder returns an encoder interning into symbols.
func NewEncoder(symbols *symtab.Table) *Encoder { return &Encoder{Symbols: symbols} }

// Errors.
var (
	ErrTooManyVars = errors.New("pif: clause exceeds the variable slot limit")
	ErrIntRange    = errors.New("pif: integer outside the 28-bit in-line range")
	ErrNotCallable = errors.New("pif: term is not callable")
)

// encodeState tracks variable slot assignment during one encoding.
type encodeState struct {
	enc      *Encoder
	side     Side
	slots    map[*term.Var]int
	varNames []string
	heap     []Word
}

// Encode compiles a callable term (a fact, rule head or query goal) to PIF.
func (enc *Encoder) Encode(t term.Term, side Side) (*Encoded, error) {
	t = term.Deref(t)
	var functor string
	var args []term.Term
	switch t := t.(type) {
	case term.Atom:
		functor = string(t)
	case *term.Compound:
		functor, args = t.Functor, t.Args
	default:
		return nil, fmt.Errorf("%w: %v", ErrNotCallable, t)
	}

	st := &encodeState{enc: enc, side: side, slots: make(map[*term.Var]int)}
	var words []Word
	for _, a := range args {
		ws, err := st.encodeArg(a)
		if err != nil {
			return nil, err
		}
		words = append(words, ws...)
	}
	return &Encoded{
		Functor:  functor,
		Arity:    len(args),
		Args:     words,
		Heap:     st.heap,
		NumVars:  len(st.varNames),
		VarNames: st.varNames,
		Side:     side,
	}, nil
}

// encodeArg encodes one argument as a word run (1 word for simple/variable/
// pointer forms, 1+N for in-line complex forms).
func (st *encodeState) encodeArg(t term.Term) ([]Word, error) {
	t = term.Deref(t)
	switch t := t.(type) {
	case *term.Var:
		return st.encodeVar(t)
	case term.Atom:
		return []Word{MakeWord(TagAtomPtr, uint32(st.enc.Symbols.Atom(string(t))))}, nil
	case term.Float:
		return []Word{MakeWord(TagFloatPtr, uint32(st.enc.Symbols.Float(float64(t))))}, nil
	case term.Int:
		if t < MinInlineInt || t > MaxInlineInt {
			return nil, fmt.Errorf("%w: %d", ErrIntRange, int64(t))
		}
		v := uint32(int32(t)) & 0x0FFFFFFF
		tag := Tag(TagIntBase) | Tag(v>>24)
		return []Word{MakeWord(tag, v&0xFFFFFF)}, nil
	case *term.Compound:
		return st.encodeComplex(t)
	}
	return nil, fmt.Errorf("pif: cannot encode %v", t)
}

func (st *encodeState) encodeVar(v *term.Var) ([]Word, error) {
	if v.Name == "_" {
		return []Word{MakeWord(TagAnonVar, 0)}, nil
	}
	if slot, seen := st.slots[v]; seen {
		return []Word{MakeWord(st.side.subTag(), uint32(slot))}, nil
	}
	slot := len(st.varNames)
	if slot >= MaxVarSlots {
		return nil, ErrTooManyVars
	}
	st.slots[v] = slot
	st.varNames = append(st.varNames, v.Name)
	return []Word{MakeWord(st.side.firstTag(), uint32(slot))}, nil
}

func (st *encodeState) encodeComplex(c *term.Compound) ([]Word, error) {
	if _, _, ok := term.IsCons(c); ok {
		return st.encodeList(c)
	}
	arity := len(c.Args)
	fun := uint32(st.enc.Symbols.Atom(c.Functor))
	if arity > MaxInlineArity {
		// Structure pointer: content = functor, extension = heap offset.
		off, err := st.heapStruct(c)
		if err != nil {
			return nil, err
		}
		return []Word{MakeWord(GroupStructPtr, fun), Word(off)}, nil
	}
	words := []Word{MakeWord(GroupStructInline|Tag(arity), fun)}
	for _, a := range c.Args {
		ws, err := st.encodeElement(a)
		if err != nil {
			return nil, err
		}
		words = append(words, ws...)
	}
	return words, nil
}

func (st *encodeState) encodeList(c *term.Compound) ([]Word, error) {
	elems, tail := term.ListSlice(c)
	unterminated := tail != term.NilAtom
	if unterminated {
		if _, isVar := tail.(*term.Var); !isVar {
			return nil, fmt.Errorf("pif: improper list with non-variable tail %v", tail)
		}
	}
	if len(elems) > MaxInlineArity {
		off, err := st.heapList(elems, tail, unterminated)
		if err != nil {
			return nil, err
		}
		g := GroupListPtr
		if unterminated {
			g = GroupUListPtr
		}
		return []Word{MakeWord(g, off)}, nil
	}
	g := GroupListInline
	if unterminated {
		g = GroupUListInline
	}
	words := []Word{MakeWord(g|Tag(len(elems)), 0)}
	for _, e := range elems {
		ws, err := st.encodeElement(e)
		if err != nil {
			return nil, err
		}
		words = append(words, ws...)
	}
	if unterminated {
		tw, err := st.encodeVar(term.Deref(tail).(*term.Var))
		if err != nil {
			return nil, err
		}
		words = append(words, tw[0])
	}
	return words, nil
}

// encodeElement encodes a constituent of an in-line complex term: simple
// terms and variables in place (one word), nested lists as one pointer
// word, nested structures as a pointer word plus its extension word.
// Walkers step element-by-element using WordLen to skip extensions.
func (st *encodeState) encodeElement(t term.Term) ([]Word, error) {
	t = term.Deref(t)
	if c, ok := t.(*term.Compound); ok {
		if _, _, isList := term.IsCons(c); isList {
			elems, tail := term.ListSlice(c)
			unterminated := tail != term.NilAtom
			if unterminated {
				if _, isVar := tail.(*term.Var); !isVar {
					return nil, fmt.Errorf("pif: improper list with non-variable tail %v", tail)
				}
			}
			off, err := st.heapList(elems, tail, unterminated)
			if err != nil {
				return nil, err
			}
			g := GroupListPtr
			if unterminated {
				g = GroupUListPtr
			}
			arityBits := Tag(0)
			if len(elems) <= MaxInlineArity {
				arityBits = Tag(len(elems))
			}
			return []Word{MakeWord(g|arityBits, off)}, nil
		}
		off, err := st.heapStruct(c)
		if err != nil {
			return nil, err
		}
		arityBits := Tag(0)
		if len(c.Args) <= MaxInlineArity {
			arityBits = Tag(len(c.Args))
		}
		fun := uint32(st.enc.Symbols.Atom(c.Functor))
		return []Word{MakeWord(GroupStructPtr|arityBits, fun), Word(off)}, nil
	}
	return st.encodeArg(t)
}

// WordLen returns the number of words an element occupies in a run given
// its leading tag: structure pointers carry a one-word extension.
func WordLen(t Tag) int {
	if Group(t) == GroupStructPtr {
		return 2
	}
	return 1
}

// heapStruct stores a structure in the heap: count word, functor word,
// then the element words. Nested objects are emitted first so the parent
// stays contiguous. Returns the parent's heap offset.
func (st *encodeState) heapStruct(c *term.Compound) (uint32, error) {
	var elemWords []Word
	for _, a := range c.Args {
		ws, err := st.encodeElement(a)
		if err != nil {
			return 0, err
		}
		elemWords = append(elemWords, ws...)
	}
	off := uint32(len(st.heap))
	st.heap = append(st.heap, Word(len(c.Args)),
		MakeWord(TagAtomPtr, uint32(st.enc.Symbols.Atom(c.Functor))))
	st.heap = append(st.heap, elemWords...)
	return off, nil
}

// heapList stores a list in the heap: count word, element words, then the
// tail variable word for unterminated lists.
func (st *encodeState) heapList(elems []term.Term, tail term.Term, unterminated bool) (uint32, error) {
	var elemWords []Word
	for _, e := range elems {
		ws, err := st.encodeElement(e)
		if err != nil {
			return 0, err
		}
		elemWords = append(elemWords, ws...)
	}
	if unterminated {
		tw, err := st.encodeVar(term.Deref(tail).(*term.Var))
		if err != nil {
			return 0, err
		}
		elemWords = append(elemWords, tw[0])
	}
	off := uint32(len(st.heap))
	st.heap = append(st.heap, Word(len(elems)))
	st.heap = append(st.heap, elemWords...)
	return off, nil
}
