package pif

import (
	"encoding/binary"
	"fmt"
)

// Meta records are the mappable store's split of a PIF record: the
// variable-length metadata (functor, variable names, counts) stays a
// per-record blob, while the Args/Heap words of every record in a
// predicate live in one shared word slab the records consume in order.
// The slab can then be laid out little-endian and aligned on disk so a
// memory-mapped store decodes it zero-copy — Args/Heap become views into
// the mapping — while the heap path decodes the same bytes with a copy.
//
// Layout (big-endian, mirroring the v1 record minus the words):
//
//	magic      uint16  0xC1A6 ("meta")
//	side       uint8
//	arity      uint8
//	functorLen uint16
//	numVars    uint16
//	numArgs    uint32  (words, taken from the shared slab)
//	numHeap    uint32  (words, taken from the shared slab)
//	functor    [functorLen]byte
//	varNames   numVars x {uint16 len, bytes}
//
// A meta record plus 4 bytes per word is exactly the v1 record size,
// which keeps StoredClause.SizeBytes — and every stat derived from it —
// identical across store formats.

const metaMagic = 0xC1A6

// MarshalBinaryMeta serialises the record's metadata; the words are the
// caller's to lay into the shared slab (Args first, then Heap, in record
// order — the order UnmarshalBinaryMeta consumes them).
func (e *Encoded) MarshalBinaryMeta() ([]byte, error) {
	if len(e.Functor) > 0xFFFF {
		return nil, fmt.Errorf("pif: functor too long (%d bytes)", len(e.Functor))
	}
	if e.Arity > 0xFF {
		return nil, fmt.Errorf("pif: arity %d exceeds record limit", e.Arity)
	}
	if e.NumVars > 0xFFFF {
		return nil, fmt.Errorf("pif: too many variables (%d)", e.NumVars)
	}
	size := 2 + 1 + 1 + 2 + 2 + 4 + 4 + len(e.Functor)
	for _, n := range e.VarNames {
		size += 2 + len(n)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	put16 := func(v uint16) {
		binary.BigEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put16(metaMagic)
	buf = append(buf, byte(e.Side), byte(e.Arity))
	put16(uint16(len(e.Functor)))
	put16(uint16(e.NumVars))
	put32(uint32(len(e.Args)))
	put32(uint32(len(e.Heap)))
	buf = append(buf, e.Functor...)
	for _, n := range e.VarNames {
		put16(uint16(len(n)))
		buf = append(buf, n...)
	}
	return buf, nil
}

// UnmarshalBinaryMeta parses a meta record, taking its Args/Heap words
// from the shared word view in order. Every failure is an error, never a
// panic — truncated metadata, a short slab, or a foreign magic all fail
// closed.
func (e *Encoded) UnmarshalBinaryMeta(data []byte, wv *WordView) error {
	r := reader{data: data}
	if m := r.u16(); m != metaMagic {
		return fmt.Errorf("pif: bad meta record magic 0x%04x", m)
	}
	e.Side = Side(r.u8())
	e.Arity = int(r.u8())
	funLen := int(r.u16())
	e.NumVars = int(r.u16())
	nArgs := int(r.u32())
	nHeap := int(r.u32())
	fun := r.bytes(funLen)
	if r.err != nil {
		return r.err
	}
	e.Functor = string(fun)
	e.VarNames = make([]string, e.NumVars)
	for i := range e.VarNames {
		n := int(r.u16())
		e.VarNames[i] = string(r.bytes(n))
	}
	if r.err != nil {
		return r.err
	}
	if r.pos != len(data) {
		return fmt.Errorf("pif: %d trailing bytes in meta record", len(data)-r.pos)
	}
	var err error
	if e.Args, err = wv.Take(nArgs); err != nil {
		return fmt.Errorf("pif: args: %w", err)
	}
	if e.Heap, err = wv.Take(nHeap); err != nil {
		return fmt.Errorf("pif: heap: %w", err)
	}
	return nil
}

// WordView hands out sequential views of a shared word slab — the
// consuming counterpart of the store writer's word layout. The backing
// slice may be heap-decoded words or a zero-copy cast of a read-only
// mapping; either way views are full-cap sub-slices, so appends can
// never bleed into a neighbouring record.
type WordView struct {
	words []Word
	off   int
}

// NewWordView wraps a word slab.
func NewWordView(words []Word) *WordView { return &WordView{words: words} }

// Take returns the next n words (nil for n == 0). Requests beyond the
// slab fail closed.
func (v *WordView) Take(n int) ([]Word, error) {
	if n == 0 {
		return nil, nil
	}
	if n < 0 || n > len(v.words)-v.off {
		return nil, fmt.Errorf("pif: word slab exhausted (want %d words, have %d)", n, len(v.words)-v.off)
	}
	w := v.words[v.off : v.off+n : v.off+n]
	v.off += n
	return w, nil
}

// Remaining reports the unconsumed words — a store-level integrity
// check: after decoding every record it must be zero.
func (v *WordView) Remaining() int { return len(v.words) - v.off }
