package pif

import (
	"testing"

	"clare/internal/symtab"
	"clare/internal/term"
)

// TestSlabRoundTrip checks slab-backed decoding is bit-identical to the
// per-record form and that views cannot grow into each other.
func TestSlabRoundTrip(t *testing.T) {
	syms := symtab.New()
	enc := NewEncoder(syms)
	terms := []term.Term{
		term.New("p", term.Atom("a"), term.Int(3)),
		term.New("p", term.NewVar("X"), term.New("f", term.NewVar("X"), term.Atom("b"))),
		term.New("p", term.ListTail(term.NewVar("T"), term.Int(1), term.Int(2)), term.Float(2.5)),
	}
	slab := NewSlab(8)
	for i, tm := range terms {
		e, err := enc.Encode(tm, DBSide)
		if err != nil {
			t.Fatal(err)
		}
		data, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var plain, slabbed Encoded
		if err := plain.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if err := slabbed.UnmarshalBinaryInto(data, slab); err != nil {
			t.Fatal(err)
		}
		if len(plain.Args) != len(slabbed.Args) || len(plain.Heap) != len(slabbed.Heap) {
			t.Fatalf("term %d: slab decode shapes differ", i)
		}
		for j := range plain.Args {
			if plain.Args[j] != slabbed.Args[j] {
				t.Fatalf("term %d arg word %d: %08x != %08x", i, j, plain.Args[j], slabbed.Args[j])
			}
		}
		for j := range plain.Heap {
			if plain.Heap[j] != slabbed.Heap[j] {
				t.Fatalf("term %d heap word %d: %08x != %08x", i, j, plain.Heap[j], slabbed.Heap[j])
			}
		}
		// Views must be capacity-capped: appending to one cannot touch
		// the slab words handed to the next record.
		if cap(slabbed.Args) != len(slabbed.Args) || cap(slabbed.Heap) != len(slabbed.Heap) {
			t.Fatalf("term %d: slab views not capacity-capped", i)
		}
	}
	if slab.TotalWords == 0 {
		t.Fatal("slab was never used")
	}
}

// TestSlabGrowth checks block exhaustion allocates a fresh block without
// disturbing earlier views.
func TestSlabGrowth(t *testing.T) {
	s := NewSlab(4)
	a := s.Take(3)
	a[0] = 7
	b := s.Take(3) // exceeds the first block
	b[0] = 9
	c := s.Take(slabBlockWords + 1) // bigger than a default block
	if len(c) != slabBlockWords+1 {
		t.Fatalf("oversized Take returned %d words", len(c))
	}
	if a[0] != 7 || b[0] != 9 {
		t.Fatal("earlier views disturbed by growth")
	}
	if s.TotalWords != 3+3+slabBlockWords+1 {
		t.Fatalf("TotalWords = %d", s.TotalWords)
	}
	if s.Take(0) != nil {
		t.Fatal("Take(0) should be nil")
	}
}
